// Package leb128 implements the LEB128 variable-length integer encoding used
// throughout the WebAssembly binary format (unsigned for sizes and indices,
// signed for integer constants).
package leb128

import (
	"errors"
	"fmt"
)

// ErrOverflow is returned when a varint does not fit the requested width.
var ErrOverflow = errors.New("leb128: integer representation too long or too large")

// ErrUnexpectedEOF is returned when the input ends mid-varint.
var ErrUnexpectedEOF = errors.New("leb128: unexpected end of input")

// AppendU32 appends the unsigned LEB128 encoding of v to dst.
func AppendU32(dst []byte, v uint32) []byte {
	for {
		b := byte(v & 0x7f)
		v >>= 7
		if v != 0 {
			b |= 0x80
		}
		dst = append(dst, b)
		if v == 0 {
			return dst
		}
	}
}

// AppendU64 appends the unsigned LEB128 encoding of v to dst.
func AppendU64(dst []byte, v uint64) []byte {
	for {
		b := byte(v & 0x7f)
		v >>= 7
		if v != 0 {
			b |= 0x80
		}
		dst = append(dst, b)
		if v == 0 {
			return dst
		}
	}
}

// AppendS32 appends the signed LEB128 encoding of v to dst.
func AppendS32(dst []byte, v int32) []byte {
	return AppendS64(dst, int64(v))
}

// SizeU32 returns the encoded length of AppendU32(nil, v) without encoding.
func SizeU32(v uint32) int {
	n := 1
	for v >>= 7; v != 0; v >>= 7 {
		n++
	}
	return n
}

// SizeS32 returns the encoded length of AppendS32(nil, v) without encoding.
func SizeS32(v int32) int { return SizeS64(int64(v)) }

// SizeS64 returns the encoded length of AppendS64(nil, v) without encoding.
func SizeS64(v int64) int {
	n := 1
	for {
		b := byte(v & 0x7f)
		v >>= 7
		if (v == 0 && b&0x40 == 0) || (v == -1 && b&0x40 != 0) {
			return n
		}
		n++
	}
}

// AppendS64 appends the signed LEB128 encoding of v to dst.
func AppendS64(dst []byte, v int64) []byte {
	for {
		b := byte(v & 0x7f)
		v >>= 7 // arithmetic shift
		if (v == 0 && b&0x40 == 0) || (v == -1 && b&0x40 != 0) {
			return append(dst, b)
		}
		dst = append(dst, b|0x80)
	}
}

// U32 decodes an unsigned 32-bit varint from p, returning the value and the
// number of bytes consumed.
func U32(p []byte) (uint32, int, error) {
	v, n, err := decodeUnsigned(p, 32)
	return uint32(v), n, err
}

// U64 decodes an unsigned 64-bit varint from p.
func U64(p []byte) (uint64, int, error) {
	return decodeUnsigned(p, 64)
}

// S32 decodes a signed 32-bit varint from p.
func S32(p []byte) (int32, int, error) {
	v, n, err := decodeSigned(p, 32)
	return int32(v), n, err
}

// S33 decodes a signed 33-bit varint from p (used for block types).
func S33(p []byte) (int64, int, error) {
	return decodeSigned(p, 33)
}

// S64 decodes a signed 64-bit varint from p.
func S64(p []byte) (int64, int, error) {
	return decodeSigned(p, 64)
}

func decodeUnsigned(p []byte, bits int) (uint64, int, error) {
	var v uint64
	maxBytes := (bits + 6) / 7
	for i := 0; i < maxBytes; i++ {
		if i >= len(p) {
			return 0, 0, ErrUnexpectedEOF
		}
		b := p[i]
		payload := uint64(b & 0x7f)
		shift := uint(7 * i)
		// Check that the payload bits fit within the target width.
		if shift+7 > uint(bits) {
			excess := shift + 7 - uint(bits)
			if payload>>(7-excess) != 0 {
				return 0, 0, fmt.Errorf("%w (u%d)", ErrOverflow, bits)
			}
		}
		v |= payload << shift
		if b&0x80 == 0 {
			return v, i + 1, nil
		}
	}
	return 0, 0, fmt.Errorf("%w (u%d)", ErrOverflow, bits)
}

func decodeSigned(p []byte, bits int) (int64, int, error) {
	var v int64
	maxBytes := (bits + 6) / 7
	for i := 0; i < maxBytes; i++ {
		if i >= len(p) {
			return 0, 0, ErrUnexpectedEOF
		}
		b := p[i]
		payload := int64(b & 0x7f)
		shift := uint(7 * i)
		if shift+7 > uint(bits) {
			// The remaining high bits must be a sign extension.
			excess := shift + 7 - uint(bits)
			signBits := payload >> (6 - excess) // includes the sign bit
			mask := int64(1)<<(excess+1) - 1
			if signBits != 0 && signBits != mask {
				return 0, 0, fmt.Errorf("%w (s%d)", ErrOverflow, bits)
			}
		}
		v |= payload << shift
		if b&0x80 == 0 {
			// Sign-extend from bit 7*i+6.
			shift += 7
			if shift < 64 && b&0x40 != 0 {
				v |= -1 << shift
			}
			return v, i + 1, nil
		}
	}
	return 0, 0, fmt.Errorf("%w (s%d)", ErrOverflow, bits)
}
