package leb128

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestU32RoundTrip(t *testing.T) {
	cases := []uint32{0, 1, 127, 128, 129, 0xFF, 0x3FFF, 0x4000, 1 << 20, math.MaxUint32}
	for _, v := range cases {
		enc := AppendU32(nil, v)
		got, n, err := U32(enc)
		if err != nil || got != v || n != len(enc) {
			t.Errorf("U32(%d): got %d (n=%d, err=%v), enc=%x", v, got, n, err, enc)
		}
	}
}

func TestS64RoundTrip(t *testing.T) {
	cases := []int64{0, 1, -1, 63, 64, -64, -65, 127, 128, -128,
		math.MaxInt32, math.MinInt32, math.MaxInt64, math.MinInt64}
	for _, v := range cases {
		enc := AppendS64(nil, v)
		got, n, err := S64(enc)
		if err != nil || got != v || n != len(enc) {
			t.Errorf("S64(%d): got %d (n=%d, err=%v), enc=%x", v, got, n, err, enc)
		}
	}
}

// Property: every value round-trips through its encoder/decoder pair.
func TestQuickRoundTrips(t *testing.T) {
	if err := quick.Check(func(v uint32) bool {
		got, n, err := U32(AppendU32(nil, v))
		return err == nil && got == v && n == len(AppendU32(nil, v))
	}, nil); err != nil {
		t.Error(err)
	}
	if err := quick.Check(func(v uint64) bool {
		got, _, err := U64(AppendU64(nil, v))
		return err == nil && got == v
	}, nil); err != nil {
		t.Error(err)
	}
	if err := quick.Check(func(v int32) bool {
		got, _, err := S32(AppendS32(nil, v))
		return err == nil && got == v
	}, nil); err != nil {
		t.Error(err)
	}
	if err := quick.Check(func(v int64) bool {
		got, _, err := S64(AppendS64(nil, v))
		return err == nil && got == v
	}, nil); err != nil {
		t.Error(err)
	}
}

// Property: encodings are minimal-length monotone — appending to a prefix
// never changes the decoded prefix value.
func TestEncodingLengths(t *testing.T) {
	if n := len(AppendU32(nil, 127)); n != 1 {
		t.Errorf("127 should encode in 1 byte, got %d", n)
	}
	if n := len(AppendU32(nil, 128)); n != 2 {
		t.Errorf("128 should encode in 2 bytes, got %d", n)
	}
	if n := len(AppendU32(nil, math.MaxUint32)); n != 5 {
		t.Errorf("MaxUint32 should encode in 5 bytes, got %d", n)
	}
	if n := len(AppendS64(nil, -1)); n != 1 {
		t.Errorf("-1 should encode in 1 byte, got %d", n)
	}
	if n := len(AppendS64(nil, math.MinInt64)); n != 10 {
		t.Errorf("MinInt64 should encode in 10 bytes, got %d", n)
	}
}

func TestDecodeErrors(t *testing.T) {
	// Truncated input.
	if _, _, err := U32([]byte{0x80}); !errors.Is(err, ErrUnexpectedEOF) {
		t.Errorf("truncated: got %v", err)
	}
	if _, _, err := U32(nil); !errors.Is(err, ErrUnexpectedEOF) {
		t.Errorf("empty: got %v", err)
	}
	// Too many continuation bytes for u32.
	if _, _, err := U32([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x01}); !errors.Is(err, ErrOverflow) {
		t.Errorf("overlong: got %v", err)
	}
	// Payload bits beyond 32.
	if _, _, err := U32([]byte{0x80, 0x80, 0x80, 0x80, 0x7F}); !errors.Is(err, ErrOverflow) {
		t.Errorf("overflow bits: got %v", err)
	}
	// Signed: high bits must be a sign extension.
	if _, _, err := S32([]byte{0x80, 0x80, 0x80, 0x80, 0x3F}); !errors.Is(err, ErrOverflow) {
		t.Errorf("bad sign extension: got %v", err)
	}
}

// Non-minimal ("padded") encodings are legal LEB128 and must decode to the
// same value; wasm producers may emit them (the paper notes Wasabi's encoder
// sometimes shrinks binaries by re-encoding minimally).
func TestNonMinimalEncodings(t *testing.T) {
	// 0 encoded in 2 bytes: 0x80 0x00.
	got, n, err := U32([]byte{0x80, 0x00})
	if err != nil || got != 0 || n != 2 {
		t.Errorf("padded zero: %d, %d, %v", got, n, err)
	}
	// -1 (s32) encoded in 5 bytes.
	gotS, n, err := S32([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	if err != nil || gotS != -1 || n != 5 {
		t.Errorf("padded -1: %d, %d, %v", gotS, n, err)
	}
}

func TestAppendReusesBuffer(t *testing.T) {
	buf := make([]byte, 0, 16)
	out := AppendU32(buf, 300)
	if &out[0] != &buf[:1][0] {
		t.Error("AppendU32 should reuse the provided buffer capacity")
	}
	if !bytes.Equal(out, []byte{0xAC, 0x02}) {
		t.Errorf("encoding of 300 = %x", out)
	}
}

func TestS33(t *testing.T) {
	// Block types use s33; -64 is the common 0x40 (empty) case.
	v, n, err := S33([]byte{0x40})
	if err != nil || v != -64 || n != 1 {
		t.Errorf("S33(0x40) = %d, %d, %v", v, n, err)
	}
}
