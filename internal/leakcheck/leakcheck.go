// Package leakcheck is a stdlib-only goroutine-leak guard for tests: it
// snapshots the live goroutines when a test starts and fails the test if,
// by the end (with a grace period for asynchronous teardown), goroutines
// that were not running at the start are still alive. The stream consumer
// goroutines, InvokeContext deadline watchers, and failpoint teardown paths
// are all required to terminate — a leaked goroutine is a containment bug
// even when every assertion about values passed.
package leakcheck

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// retryFor is how long Check waits for stragglers to exit before declaring
// a leak: long enough for scheduler hiccups under -race, short enough not
// to stall the suite.
const retryFor = 2 * time.Second

// Check installs the guard on t: it snapshots the current goroutines and,
// via t.Cleanup, fails the test if new ones are still running when the test
// (including later-registered cleanups) finishes.
func Check(t testing.TB) {
	t.Helper()
	before := ids(snapshot())
	t.Cleanup(func() {
		deadline := time.Now().Add(retryFor)
		var leaked []string
		for {
			leaked = leaked[:0]
			for _, g := range snapshot() {
				if _, ok := before[g.id]; !ok && interesting(g.stack) {
					leaked = append(leaked, g.stack)
				}
			}
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("leakcheck: %d goroutine(s) leaked:\n\n%s",
			len(leaked), strings.Join(leaked, "\n\n"))
	})
}

// goroutine is one parsed stack block.
type goroutine struct {
	id    string
	stack string
}

// snapshot parses runtime.Stack's all-goroutine dump into blocks.
func snapshot() []goroutine {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var out []goroutine
	for _, block := range strings.Split(string(buf), "\n\n") {
		header, _, ok := strings.Cut(block, "\n")
		if !ok || !strings.HasPrefix(header, "goroutine ") {
			continue
		}
		var id int
		if _, err := fmt.Sscanf(header, "goroutine %d ", &id); err != nil {
			continue
		}
		out = append(out, goroutine{id: fmt.Sprint(id), stack: block})
	}
	return out
}

func ids(gs []goroutine) map[string]bool {
	m := make(map[string]bool, len(gs))
	for _, g := range gs {
		m[g.id] = true
	}
	return m
}

// interesting filters out goroutines the test framework and runtime own:
// those are expected to appear and disappear outside the test's control.
func interesting(stack string) bool {
	for _, frame := range []string{
		"testing.(*T).Run",
		"testing.tRunner",
		"testing.runTests",
		"testing.(*M).",
		"runtime.gc",
		"runtime.ReadTrace",
		"runtime/trace",
		"os/signal.signal_recv",
		"created by runtime",
	} {
		if strings.Contains(stack, frame) {
			return false
		}
	}
	return true
}
