// Package wat renders modules in a WebAssembly-text-like format for
// debugging, examples, and golden tests. It prints the folded linear form
// (one instruction per line with block indentation), not full s-expressions.
package wat

import (
	"fmt"
	"io"
	"strings"

	"wasabi/internal/wasm"
)

// Print writes a text rendering of the module to w.
func Print(w io.Writer, m *wasm.Module) error {
	p := &printer{w: w}
	p.printf("(module")
	p.indent++
	for i, ft := range m.Types {
		p.printf("(type %d %s)", i, ft)
	}
	for _, imp := range m.Imports {
		switch imp.Kind {
		case wasm.ExternFunc:
			p.printf("(import %q %q (func (type %d)))", imp.Module, imp.Name, imp.TypeIdx)
		case wasm.ExternMemory:
			p.printf("(import %q %q (memory %s))", imp.Module, imp.Name, limits(imp.Mem))
		case wasm.ExternTable:
			p.printf("(import %q %q (table %s funcref))", imp.Module, imp.Name, limits(imp.Table))
		case wasm.ExternGlobal:
			p.printf("(import %q %q (global %s))", imp.Module, imp.Name, imp.Global)
		}
	}
	for _, t := range m.Tables {
		p.printf("(table %s funcref)", limits(t))
	}
	for _, mem := range m.Memories {
		p.printf("(memory %s)", limits(mem))
	}
	for i, g := range m.Globals {
		p.printf("(global %d %s %s)", m.NumImportedGlobals()+i, g.Type, exprString(g.Init))
	}
	for i := range m.Funcs {
		p.printFunc(m, i)
	}
	for _, e := range m.Exports {
		p.printf("(export %q (%s %d))", e.Name, e.Kind, e.Idx)
	}
	if m.Start != nil {
		p.printf("(start %d)", *m.Start)
	}
	for _, e := range m.Elems {
		p.printf("(elem %s funcs=%v)", exprString(e.Offset), e.Funcs)
	}
	for _, d := range m.Datas {
		p.printf("(data %s len=%d)", exprString(d.Offset), len(d.Data))
	}
	p.indent--
	p.printf(")")
	return p.err
}

// ToString renders the module to a string.
func ToString(m *wasm.Module) string {
	var sb strings.Builder
	_ = Print(&sb, m)
	return sb.String()
}

type printer struct {
	w      io.Writer
	indent int
	err    error
}

func (p *printer) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, "%s%s\n", strings.Repeat("  ", p.indent), fmt.Sprintf(format, args...))
}

func (p *printer) printFunc(m *wasm.Module, defined int) {
	f := &m.Funcs[defined]
	idx := m.NumImportedFuncs() + defined
	sig := ""
	if int(f.TypeIdx) < len(m.Types) {
		sig = " " + m.Types[f.TypeIdx].String()
	}
	p.printf("(func %d (; %s ;)%s", idx, m.FuncName(uint32(idx)), sig)
	p.indent++
	if len(f.Locals) > 0 {
		parts := make([]string, len(f.Locals))
		for i, t := range f.Locals {
			parts[i] = t.String()
		}
		p.printf("(local %s)", strings.Join(parts, " "))
	}
	for _, in := range f.Body {
		switch in.Op {
		case wasm.OpEnd, wasm.OpElse:
			p.indent--
			p.printf("%s", in.StringWithPool(f.BrTargets))
			if in.Op == wasm.OpElse {
				p.indent++
			}
		case wasm.OpBlock, wasm.OpLoop, wasm.OpIf:
			p.printf("%s", in.StringWithPool(f.BrTargets))
			p.indent++
		default:
			p.printf("%s", in.StringWithPool(f.BrTargets))
		}
	}
	// The function-level end already popped the indent added after "(func".
}

func limits(l wasm.Limits) string {
	if l.HasMax {
		return fmt.Sprintf("%d %d", l.Min, l.Max)
	}
	return fmt.Sprintf("%d", l.Min)
}

func exprString(expr []wasm.Instr) string {
	parts := make([]string, 0, len(expr))
	for _, in := range expr {
		if in.Op == wasm.OpEnd {
			continue
		}
		parts = append(parts, in.String())
	}
	return "(" + strings.Join(parts, "; ") + ")"
}
