package wat

import (
	"fmt"
	"strconv"
	"strings"

	"wasabi/internal/wasm"
)

// Parse reads a module in the WebAssembly text format (the linear-
// instruction subset commonly emitted by wat2wasm round-trips): named
// functions, params/results/locals, block/loop/if…end control flow with
// numeric labels or no labels, imports, memory, table, globals, elem, data,
// export, and start. Folded instruction expressions are supported only for
// the constant initializers of globals, elem, and data.
func Parse(src string) (*wasm.Module, error) {
	p := &parser{toks: lex(src)}
	m, err := p.module()
	if err != nil {
		return nil, fmt.Errorf("wat: %w", err)
	}
	return m, nil
}

// --- lexer ---

type token struct {
	kind byte // '(' ')' 'a'tom 's'tring
	text string
	pos  int
}

func lex(src string) []token {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == ';' && i+1 < len(src) && src[i+1] == ';': // line comment
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '(' && i+1 < len(src) && src[i+1] == ';': // block comment
			depth := 1
			i += 2
			for i+1 < len(src) && depth > 0 {
				if src[i] == ';' && src[i+1] == ')' {
					depth--
					i += 2
				} else if src[i] == '(' && src[i+1] == ';' {
					depth++
					i += 2
				} else {
					i++
				}
			}
		case c == '(' || c == ')':
			toks = append(toks, token{kind: c, text: string(c), pos: i})
			i++
		case c == '"':
			j := i + 1
			var sb strings.Builder
			for j < len(src) && src[j] != '"' {
				if src[j] == '\\' && j+1 < len(src) {
					j++
					switch src[j] {
					case 'n':
						sb.WriteByte('\n')
					case 't':
						sb.WriteByte('\t')
					case '\\', '"':
						sb.WriteByte(src[j])
					default:
						// Two-digit hex escape.
						if j+1 < len(src) {
							if v, err := strconv.ParseUint(src[j:j+2], 16, 8); err == nil {
								sb.WriteByte(byte(v))
								j++
							}
						}
					}
					j++
				} else {
					sb.WriteByte(src[j])
					j++
				}
			}
			toks = append(toks, token{kind: 's', text: sb.String(), pos: i})
			i = j + 1
		default:
			j := i
			for j < len(src) && !strings.ContainsRune(" \t\n\r()\";", rune(src[j])) {
				j++
			}
			toks = append(toks, token{kind: 'a', text: src[i:j], pos: i})
			i = j
		}
	}
	return toks
}

// --- parser ---

type parser struct {
	toks []token
	pos  int

	funcNames   map[string]uint32
	globalNames map[string]uint32
	typeOf      map[uint32]wasm.FuncType // declared func signatures by index

	// fixups run after all declarations so references (start, elem,
	// export) may point forward to later functions.
	fixups []func() error
}

func (p *parser) peek() (token, bool) {
	if p.pos >= len(p.toks) {
		return token{}, false
	}
	return p.toks[p.pos], true
}

func (p *parser) next() (token, error) {
	t, ok := p.peek()
	if !ok {
		return token{}, fmt.Errorf("unexpected end of input")
	}
	p.pos++
	return t, nil
}

func (p *parser) expect(kind byte) (token, error) {
	t, err := p.next()
	if err != nil {
		return t, err
	}
	if t.kind != kind {
		return t, fmt.Errorf("expected %q, got %q at offset %d", string(kind), t.text, t.pos)
	}
	return t, nil
}

func (p *parser) atom() (string, error) {
	t, err := p.expect('a')
	return t.text, err
}

// pendingFunc is a function whose body is parsed after all declarations so
// forward references to function names resolve.
type pendingFunc struct {
	defined int
	params  map[string]uint32 // named params/locals
	body    []token
}

func (p *parser) module() (*wasm.Module, error) {
	p.funcNames = make(map[string]uint32)
	p.globalNames = make(map[string]uint32)
	p.typeOf = make(map[uint32]wasm.FuncType)
	m := &wasm.Module{}

	if _, err := p.expect('('); err != nil {
		return nil, err
	}
	if kw, err := p.atom(); err != nil || kw != "module" {
		return nil, fmt.Errorf("expected (module ...)")
	}

	var pendings []pendingFunc
	for {
		t, ok := p.peek()
		if !ok {
			return nil, fmt.Errorf("unterminated module")
		}
		if t.kind == ')' {
			p.pos++
			break
		}
		if _, err := p.expect('('); err != nil {
			return nil, err
		}
		kw, err := p.atom()
		if err != nil {
			return nil, err
		}
		switch kw {
		case "func":
			pending, err := p.funcDecl(m)
			if err != nil {
				return nil, err
			}
			pendings = append(pendings, pending)
		case "import":
			if err := p.importDecl(m); err != nil {
				return nil, err
			}
		case "memory":
			lim, err := p.limits()
			if err != nil {
				return nil, err
			}
			m.Memories = append(m.Memories, lim)
			if err := p.closeParen(); err != nil {
				return nil, err
			}
		case "table":
			lim, err := p.limits()
			if err != nil {
				return nil, err
			}
			// Optional "funcref".
			if t, ok := p.peek(); ok && t.kind == 'a' && t.text == "funcref" {
				p.pos++
			}
			m.Tables = append(m.Tables, lim)
			if err := p.closeParen(); err != nil {
				return nil, err
			}
		case "global":
			if err := p.globalDecl(m); err != nil {
				return nil, err
			}
		case "export":
			if err := p.exportDecl(m); err != nil {
				return nil, err
			}
		case "elem":
			if err := p.elemDecl(m); err != nil {
				return nil, err
			}
		case "data":
			if err := p.dataDecl(m); err != nil {
				return nil, err
			}
		case "start":
			t, err := p.next()
			if err != nil {
				return nil, err
			}
			p.fixups = append(p.fixups, func() error {
				idx, err := p.resolve(t.text, p.funcNames)
				if err != nil {
					return err
				}
				m.Start = &idx
				return nil
			})
			if err := p.closeParen(); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("unsupported module field %q", kw)
		}
	}

	// Resolve forward references, then assemble bodies with all names known.
	for _, fix := range p.fixups {
		if err := fix(); err != nil {
			return nil, err
		}
	}
	for _, pending := range pendings {
		body, locals, brTargets, err := p.assembleBody(m, pending)
		if err != nil {
			return nil, err
		}
		m.Funcs[pending.defined].Locals = locals
		m.Funcs[pending.defined].Body = body
		m.Funcs[pending.defined].BrTargets = brTargets
	}
	return m, nil
}

func (p *parser) closeParen() error {
	_, err := p.expect(')')
	return err
}

func valType(s string) (wasm.ValType, bool) {
	switch s {
	case "i32":
		return wasm.I32, true
	case "i64":
		return wasm.I64, true
	case "f32":
		return wasm.F32, true
	case "f64":
		return wasm.F64, true
	}
	return 0, false
}

// sig parses (param ...)* (result ...)? groups, also collecting named
// parameters into names (if non-nil).
func (p *parser) sig(names map[string]uint32) (wasm.FuncType, error) {
	var ft wasm.FuncType
	for {
		t, ok := p.peek()
		if !ok || t.kind != '(' {
			return ft, nil
		}
		save := p.pos
		p.pos++
		kw, err := p.atom()
		if err != nil {
			return ft, err
		}
		switch kw {
		case "param":
			for {
				t, ok := p.peek()
				if !ok {
					return ft, fmt.Errorf("unterminated param")
				}
				if t.kind == ')' {
					p.pos++
					break
				}
				name := ""
				if strings.HasPrefix(t.text, "$") {
					name = t.text
					p.pos++
					t, _ = p.peek()
				}
				vt, okT := valType(t.text)
				if !okT {
					return ft, fmt.Errorf("bad param type %q", t.text)
				}
				p.pos++
				if name != "" && names != nil {
					names[name] = uint32(len(ft.Params))
				}
				ft.Params = append(ft.Params, vt)
			}
		case "result":
			for {
				t, ok := p.peek()
				if !ok {
					return ft, fmt.Errorf("unterminated result")
				}
				if t.kind == ')' {
					p.pos++
					break
				}
				vt, okT := valType(t.text)
				if !okT {
					return ft, fmt.Errorf("bad result type %q", t.text)
				}
				p.pos++
				ft.Results = append(ft.Results, vt)
			}
		default:
			p.pos = save
			return ft, nil
		}
	}
}

func (p *parser) funcDecl(m *wasm.Module) (pendingFunc, error) {
	pending := pendingFunc{params: make(map[string]uint32)}
	idx := uint32(m.NumFuncs())

	// Optional $name.
	if t, ok := p.peek(); ok && t.kind == 'a' && strings.HasPrefix(t.text, "$") {
		p.funcNames[t.text] = idx
		if m.FuncNames == nil {
			m.FuncNames = make(map[uint32]string)
		}
		m.FuncNames[idx] = strings.TrimPrefix(t.text, "$")
		p.pos++
	}
	// Optional inline (export "name").
	for {
		t, ok := p.peek()
		if !ok || t.kind != '(' {
			break
		}
		save := p.pos
		p.pos++
		kw, _ := p.atom()
		if kw != "export" {
			p.pos = save
			break
		}
		name, err := p.expect('s')
		if err != nil {
			return pending, err
		}
		m.Exports = append(m.Exports, wasm.Export{Name: name.text, Kind: wasm.ExternFunc, Idx: idx})
		if err := p.closeParen(); err != nil {
			return pending, err
		}
	}
	ft, err := p.sig(pending.params)
	if err != nil {
		return pending, err
	}
	p.typeOf[idx] = ft
	m.Funcs = append(m.Funcs, wasm.Func{TypeIdx: m.AddType(ft)})
	pending.defined = len(m.Funcs) - 1

	// Collect the raw body tokens up to the matching ')'.
	depth := 0
	for {
		t, err := p.next()
		if err != nil {
			return pending, err
		}
		if t.kind == '(' {
			depth++
		}
		if t.kind == ')' {
			if depth == 0 {
				break
			}
			depth--
		}
		pending.body = append(pending.body, t)
	}
	return pending, nil
}

func (p *parser) importDecl(m *wasm.Module) error {
	mod, err := p.expect('s')
	if err != nil {
		return err
	}
	name, err := p.expect('s')
	if err != nil {
		return err
	}
	if _, err := p.expect('('); err != nil {
		return err
	}
	kw, err := p.atom()
	if err != nil {
		return err
	}
	imp := wasm.Import{Module: mod.text, Name: name.text}
	switch kw {
	case "func":
		imp.Kind = wasm.ExternFunc
		idx := uint32(m.NumImportedFuncs())
		if len(m.Funcs) > 0 {
			return fmt.Errorf("imports must precede defined functions")
		}
		if t, ok := p.peek(); ok && strings.HasPrefix(t.text, "$") {
			p.funcNames[t.text] = idx
			p.pos++
		}
		ft, err := p.sig(nil)
		if err != nil {
			return err
		}
		p.typeOf[idx] = ft
		imp.TypeIdx = m.AddType(ft)
	case "memory":
		imp.Kind = wasm.ExternMemory
		lim, err := p.limits()
		if err != nil {
			return err
		}
		imp.Mem = lim
	case "table":
		imp.Kind = wasm.ExternTable
		lim, err := p.limits()
		if err != nil {
			return err
		}
		if t, ok := p.peek(); ok && t.text == "funcref" {
			p.pos++
		}
		imp.Table = lim
	case "global":
		imp.Kind = wasm.ExternGlobal
		gt, err := p.globalType()
		if err != nil {
			return err
		}
		imp.Global = gt
	default:
		return fmt.Errorf("unsupported import kind %q", kw)
	}
	m.Imports = append(m.Imports, imp)
	if err := p.closeParen(); err != nil {
		return err
	}
	return p.closeParen()
}

func (p *parser) limits() (wasm.Limits, error) {
	var l wasm.Limits
	s, err := p.atom()
	if err != nil {
		return l, err
	}
	v, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return l, fmt.Errorf("bad limit %q", s)
	}
	l.Min = uint32(v)
	if t, ok := p.peek(); ok && t.kind == 'a' {
		if v, err := strconv.ParseUint(t.text, 10, 32); err == nil {
			l.HasMax = true
			l.Max = uint32(v)
			p.pos++
		}
	}
	return l, nil
}

func (p *parser) globalType() (wasm.GlobalType, error) {
	t, err := p.next()
	if err != nil {
		return wasm.GlobalType{}, err
	}
	if t.kind == '(' {
		kw, err := p.atom()
		if err != nil || kw != "mut" {
			return wasm.GlobalType{}, fmt.Errorf("expected (mut t)")
		}
		ts, err := p.atom()
		if err != nil {
			return wasm.GlobalType{}, err
		}
		vt, ok := valType(ts)
		if !ok {
			return wasm.GlobalType{}, fmt.Errorf("bad global type %q", ts)
		}
		if err := p.closeParen(); err != nil {
			return wasm.GlobalType{}, err
		}
		return wasm.GlobalType{Type: vt, Mutable: true}, nil
	}
	vt, ok := valType(t.text)
	if !ok {
		return wasm.GlobalType{}, fmt.Errorf("bad global type %q", t.text)
	}
	return wasm.GlobalType{Type: vt}, nil
}

// constExpr parses a folded single-instruction initializer: (i32.const N)
// or (global.get $g).
func (p *parser) constExpr() ([]wasm.Instr, error) {
	if _, err := p.expect('('); err != nil {
		return nil, err
	}
	op, err := p.atom()
	if err != nil {
		return nil, err
	}
	arg, err := p.next()
	if err != nil {
		return nil, err
	}
	var in wasm.Instr
	switch op {
	case "i32.const":
		v, err := strconv.ParseInt(arg.text, 0, 64)
		if err != nil {
			return nil, fmt.Errorf("bad i32.const %q", arg.text)
		}
		in = wasm.I32Const(int32(v))
	case "i64.const":
		v, err := strconv.ParseInt(arg.text, 0, 64)
		if err != nil {
			return nil, fmt.Errorf("bad i64.const %q", arg.text)
		}
		in = wasm.I64ConstInstr(v)
	case "f32.const":
		v, err := strconv.ParseFloat(arg.text, 32)
		if err != nil {
			return nil, fmt.Errorf("bad f32.const %q", arg.text)
		}
		in = wasm.F32ConstInstr(float32(v))
	case "f64.const":
		v, err := strconv.ParseFloat(arg.text, 64)
		if err != nil {
			return nil, fmt.Errorf("bad f64.const %q", arg.text)
		}
		in = wasm.F64ConstInstr(v)
	case "global.get":
		idx, err := p.resolve(arg.text, p.globalNames)
		if err != nil {
			return nil, err
		}
		in = wasm.GlobalGet(idx)
	default:
		return nil, fmt.Errorf("unsupported constant instruction %q", op)
	}
	if err := p.closeParen(); err != nil {
		return nil, err
	}
	return []wasm.Instr{in, wasm.End()}, nil
}

func (p *parser) globalDecl(m *wasm.Module) error {
	idx := uint32(m.NumImportedGlobals() + len(m.Globals))
	if t, ok := p.peek(); ok && strings.HasPrefix(t.text, "$") {
		p.globalNames[t.text] = idx
		p.pos++
	}
	gt, err := p.globalType()
	if err != nil {
		return err
	}
	init, err := p.constExpr()
	if err != nil {
		return err
	}
	m.Globals = append(m.Globals, wasm.Global{Type: gt, Init: init})
	return p.closeParen()
}

func (p *parser) exportDecl(m *wasm.Module) error {
	name, err := p.expect('s')
	if err != nil {
		return err
	}
	if _, err := p.expect('('); err != nil {
		return err
	}
	kw, err := p.atom()
	if err != nil {
		return err
	}
	ref, err := p.next()
	if err != nil {
		return err
	}
	e := wasm.Export{Name: name.text}
	switch kw {
	case "func":
		e.Kind = wasm.ExternFunc
	case "memory":
		e.Kind = wasm.ExternMemory
	case "table":
		e.Kind = wasm.ExternTable
	case "global":
		e.Kind = wasm.ExternGlobal
	default:
		return fmt.Errorf("unsupported export kind %q", kw)
	}
	m.Exports = append(m.Exports, e)
	expIdx := len(m.Exports) - 1
	kind := e.Kind
	p.fixups = append(p.fixups, func() error {
		names := p.funcNames
		if kind == wasm.ExternGlobal {
			names = p.globalNames
		}
		if kind == wasm.ExternFunc || kind == wasm.ExternGlobal {
			idx, err := p.resolve(ref.text, names)
			if err != nil {
				return err
			}
			m.Exports[expIdx].Idx = idx
		}
		return nil
	})
	if err := p.closeParen(); err != nil {
		return err
	}
	return p.closeParen()
}

func (p *parser) elemDecl(m *wasm.Module) error {
	offset, err := p.constExpr()
	if err != nil {
		return err
	}
	seg := wasm.ElemSegment{Offset: offset}
	var refs []string
	for {
		t, ok := p.peek()
		if !ok {
			return fmt.Errorf("unterminated elem")
		}
		if t.kind == ')' {
			p.pos++
			break
		}
		tok, err := p.next()
		if err != nil {
			return err
		}
		refs = append(refs, tok.text)
	}
	m.Elems = append(m.Elems, seg)
	segIdx := len(m.Elems) - 1
	p.fixups = append(p.fixups, func() error {
		for _, ref := range refs {
			idx, err := p.resolve(ref, p.funcNames)
			if err != nil {
				return err
			}
			m.Elems[segIdx].Funcs = append(m.Elems[segIdx].Funcs, idx)
		}
		return nil
	})
	return nil
}

func (p *parser) dataDecl(m *wasm.Module) error {
	offset, err := p.constExpr()
	if err != nil {
		return err
	}
	var data []byte
	for {
		t, ok := p.peek()
		if !ok {
			return fmt.Errorf("unterminated data")
		}
		if t.kind == ')' {
			p.pos++
			break
		}
		s, err := p.expect('s')
		if err != nil {
			return err
		}
		data = append(data, s.text...)
	}
	m.Datas = append(m.Datas, wasm.DataSegment{Offset: offset, Data: data})
	return nil
}

// resolve turns $name or a numeric index into an index.
func (p *parser) resolve(s string, names map[string]uint32) (uint32, error) {
	if strings.HasPrefix(s, "$") {
		idx, ok := names[s]
		if !ok {
			return 0, fmt.Errorf("unknown name %q", s)
		}
		return idx, nil
	}
	v, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad index %q", s)
	}
	return uint32(v), nil
}
