package wat

import (
	"fmt"
	"strconv"
	"strings"

	"wasabi/internal/wasm"
)

// assembleBody turns the raw token stream of a function body into locals,
// instructions, and the function's br_table target pool, resolving names
// against the module-level symbol tables.
func (p *parser) assembleBody(m *wasm.Module, pf pendingFunc) ([]wasm.Instr, []wasm.ValType, []uint32, error) {
	b := &bodyAsm{parser: p, m: m, toks: pf.body, locals: pf.params}
	numParams := len(p.typeOf[uint32(m.NumImportedFuncs()+pf.defined)].Params)

	// Leading (local $x t) groups.
	var localTypes []wasm.ValType
	for b.pos < len(b.toks) && b.toks[b.pos].kind == '(' {
		if b.pos+1 >= len(b.toks) || b.toks[b.pos+1].text != "local" {
			break
		}
		b.pos += 2
		for b.pos < len(b.toks) && b.toks[b.pos].kind != ')' {
			t := b.toks[b.pos]
			name := ""
			if strings.HasPrefix(t.text, "$") {
				name = t.text
				b.pos++
				t = b.toks[b.pos]
			}
			vt, ok := valType(t.text)
			if !ok {
				return nil, nil, nil, fmt.Errorf("bad local type %q", t.text)
			}
			if name != "" {
				b.locals[name] = uint32(numParams + len(localTypes))
			}
			localTypes = append(localTypes, vt)
			b.pos++
		}
		b.pos++ // ')'
	}

	var body []wasm.Instr
	for b.pos < len(b.toks) {
		in, err := b.instr()
		if err != nil {
			return nil, nil, nil, err
		}
		body = append(body, in)
	}
	body = append(body, wasm.End())
	return body, localTypes, b.brTargets, nil
}

type bodyAsm struct {
	*parser
	m      *wasm.Module
	toks   []token
	pos    int
	locals map[string]uint32

	// brTargets collects br_table target labels; it becomes the assembled
	// function's BrTargets pool.
	brTargets []uint32
}

func (b *bodyAsm) tok() (token, error) {
	if b.pos >= len(b.toks) {
		return token{}, fmt.Errorf("unexpected end of function body")
	}
	t := b.toks[b.pos]
	b.pos++
	return t, nil
}

// blockType parses an optional (result t) annotation.
func (b *bodyAsm) blockType() (wasm.BlockType, error) {
	if b.pos+1 < len(b.toks) && b.toks[b.pos].kind == '(' && b.toks[b.pos+1].text == "result" {
		b.pos += 2
		t, err := b.tok()
		if err != nil {
			return 0, err
		}
		vt, ok := valType(t.text)
		if !ok {
			return 0, fmt.Errorf("bad block result type %q", t.text)
		}
		if t, err := b.tok(); err != nil || t.kind != ')' {
			return 0, fmt.Errorf("unterminated (result)")
		}
		return wasm.BlockType(vt), nil
	}
	return wasm.BlockEmpty, nil
}

func (b *bodyAsm) index(names map[string]uint32) (uint32, error) {
	t, err := b.tok()
	if err != nil {
		return 0, err
	}
	return b.resolve(t.text, names)
}

func (b *bodyAsm) intImm(bits int) (int64, error) {
	t, err := b.tok()
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseInt(t.text, 0, 64)
	if err != nil {
		// Allow unsigned spellings of negative bit patterns.
		u, uerr := strconv.ParseUint(t.text, 0, 64)
		if uerr != nil {
			return 0, fmt.Errorf("bad integer %q", t.text)
		}
		v = int64(u)
	}
	if bits == 32 {
		v = int64(int32(v))
	}
	return v, nil
}

func (b *bodyAsm) floatImm() (float64, error) {
	t, err := b.tok()
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseFloat(t.text, 64)
	if err != nil {
		return 0, fmt.Errorf("bad float %q", t.text)
	}
	return v, nil
}

// memArg parses optional offset=N and align=N annotations; align defaults
// to the natural alignment of the access.
func (b *bodyAsm) memArg(op wasm.Opcode) (wasm.MemArg, error) {
	_, size := op.LoadStoreType()
	align := uint32(0)
	for s := size; s > 1; s >>= 1 {
		align++
	}
	ma := wasm.MemArg{Align: align}
	for b.pos < len(b.toks) && b.toks[b.pos].kind == 'a' {
		t := b.toks[b.pos]
		switch {
		case strings.HasPrefix(t.text, "offset="):
			v, err := strconv.ParseUint(t.text[7:], 0, 32)
			if err != nil {
				return ma, fmt.Errorf("bad offset %q", t.text)
			}
			ma.Offset = uint32(v)
			b.pos++
		case strings.HasPrefix(t.text, "align="):
			v, err := strconv.ParseUint(t.text[6:], 0, 32)
			if err != nil {
				return ma, fmt.Errorf("bad align %q", t.text)
			}
			// The text format gives alignment in bytes; store log2.
			log := uint32(0)
			for a := uint32(v); a > 1; a >>= 1 {
				log++
			}
			ma.Align = log
			b.pos++
		default:
			return ma, nil
		}
	}
	return ma, nil
}

func (b *bodyAsm) instr() (wasm.Instr, error) {
	t, err := b.tok()
	if err != nil {
		return wasm.Instr{}, err
	}
	if t.kind != 'a' {
		return wasm.Instr{}, fmt.Errorf("expected instruction, got %q (folded expressions are not supported in bodies)", t.text)
	}
	name := t.text
	op, ok := wasm.OpcodeByName(name)
	if !ok {
		return wasm.Instr{}, fmt.Errorf("unknown instruction %q", name)
	}
	in := wasm.Instr{Op: op}
	switch op {
	case wasm.OpBlock, wasm.OpLoop, wasm.OpIf:
		bt, err := b.blockType()
		if err != nil {
			return in, err
		}
		in.Block = bt
	case wasm.OpBr, wasm.OpBrIf:
		v, err := b.intImm(32)
		if err != nil {
			return in, err
		}
		in.Idx = uint32(v)
	case wasm.OpBrTable:
		var targets []uint32
		for b.pos < len(b.toks) && b.toks[b.pos].kind == 'a' {
			if _, err := strconv.ParseUint(b.toks[b.pos].text, 10, 32); err != nil {
				break
			}
			v, _ := strconv.ParseUint(b.toks[b.pos].text, 10, 32)
			targets = append(targets, uint32(v))
			b.pos++
		}
		if len(targets) == 0 {
			return in, fmt.Errorf("br_table needs at least a default target")
		}
		in = wasm.AppendBrTable(&b.brTargets, targets[:len(targets)-1], targets[len(targets)-1])
	case wasm.OpCall:
		idx, err := b.index(b.funcNames)
		if err != nil {
			return in, err
		}
		in.Idx = idx
	case wasm.OpCallIndirect:
		ft, err := b.foldedSig()
		if err != nil {
			return in, err
		}
		in.Idx = b.m.AddType(ft)
	case wasm.OpLocalGet, wasm.OpLocalSet, wasm.OpLocalTee:
		idx, err := b.index(b.locals)
		if err != nil {
			return in, err
		}
		in.Idx = idx
	case wasm.OpGlobalGet, wasm.OpGlobalSet:
		idx, err := b.index(b.globalNames)
		if err != nil {
			return in, err
		}
		in.Idx = idx
	case wasm.OpI32Const:
		v, err := b.intImm(32)
		if err != nil {
			return in, err
		}
		in.Bits = uint64(uint32(v))
	case wasm.OpI64Const:
		v, err := b.intImm(64)
		if err != nil {
			return in, err
		}
		in.Bits = uint64(v)
	case wasm.OpF32Const:
		v, err := b.floatImm()
		if err != nil {
			return in, err
		}
		in = wasm.F32ConstInstr(float32(v))
	case wasm.OpF64Const:
		v, err := b.floatImm()
		if err != nil {
			return in, err
		}
		in = wasm.F64ConstInstr(v)
	default:
		if op.IsLoad() || op.IsStore() {
			ma, err := b.memArg(op)
			if err != nil {
				return in, err
			}
			in = wasm.MemInstr(op, ma.Align, ma.Offset)
		}
	}
	return in, nil
}

// foldedSig parses the (param ...)* (result ...)? annotation of
// call_indirect using the shared sig parser over the body's token window.
func (b *bodyAsm) foldedSig() (wasm.FuncType, error) {
	// Reuse the module-level sig parser by splicing: create a sub-parser
	// over the remaining body tokens.
	sub := &parser{toks: b.toks, pos: b.pos, funcNames: b.funcNames, globalNames: b.globalNames, typeOf: b.typeOf}
	ft, err := sub.sig(nil)
	if err != nil {
		return ft, err
	}
	b.pos = sub.pos
	return ft, nil
}
