package wat_test

import (
	"strings"
	"testing"

	"wasabi"
	"wasabi/internal/analyses"
	"wasabi/internal/interp"
	"wasabi/internal/validate"
	"wasabi/internal/wat"
)

const factorialWat = `
(module
  ;; iterative factorial with a loop and named locals
  (memory 1)
  (global $calls (mut i32) (i32.const 0))
  (func $fact (export "fact") (param $n i32) (result i32)
    (local $acc i32)
    global.get $calls
    i32.const 1
    i32.add
    global.set $calls
    i32.const 1
    local.set $acc
    block
      loop
        local.get $n
        i32.const 1
        i32.le_s
        br_if 1
        local.get $acc
        local.get $n
        i32.mul
        local.set $acc
        local.get $n
        i32.const 1
        i32.sub
        local.set $n
        br 0
      end
    end
    local.get $acc
  )
  (func $store (export "store") (param i32) (result i32)
    i32.const 16
    local.get 0
    i32.store offset=4
    i32.const 16
    i32.load offset=4
  )
)`

func TestParseAndRun(t *testing.T) {
	m, err := wat.Parse(factorialWat)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := validate.Module(m); err != nil {
		t.Fatalf("validate: %v\n%s", err, wat.ToString(m))
	}
	inst, err := interp.Instantiate(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range [][2]int32{{0, 1}, {1, 1}, {5, 120}, {10, 3628800}} {
		res, err := inst.Invoke("fact", interp.I32(c[0]))
		if err != nil {
			t.Fatal(err)
		}
		if got := interp.AsI32(res[0]); got != c[1] {
			t.Errorf("fact(%d) = %d, want %d", c[0], got, c[1])
		}
	}
	res, err := inst.Invoke("store", interp.I32(77))
	if err != nil {
		t.Fatal(err)
	}
	if got := interp.AsI32(res[0]); got != 77 {
		t.Errorf("store round-trip = %d", got)
	}
}

// TestParsedModuleInstruments: .wat source → parse → instrument → run under
// an analysis, end to end.
func TestParsedModuleInstruments(t *testing.T) {
	m, err := wat.Parse(factorialWat)
	if err != nil {
		t.Fatal(err)
	}
	mix := analyses.NewInstructionMix()
	sess, err := wasabi.Analyze(m, mix)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := sess.Instantiate("", nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := inst.Invoke("fact", interp.I32(6))
	if err != nil {
		t.Fatal(err)
	}
	if got := interp.AsI32(res[0]); got != 720 {
		t.Errorf("fact(6) = %d", got)
	}
	if mix.Counts["i32.mul"] != 5 {
		t.Errorf("observed %d multiplications, want 5", mix.Counts["i32.mul"])
	}
}

const richWat = `
(module
  (import "env" "log" (func $log (param i32)))
  (table 2 funcref)
  (func $a (param i32) (result i32) local.get 0)
  (func $b (param i32) (result i32) local.get 0 i32.const 2 i32.mul)
  (elem (i32.const 0) $a $b)
  (func $go (export "go") (param i32) (result i32)
    local.get 0
    call $log
    local.get 0
    local.get 0
    i32.const 1
    i32.and
    call_indirect (param i32) (result i32)
  )
  (data (i32.const 0) "hi\00")
  (memory 1)
  (start $setup)
  (func $setup)
)`

func TestParseImportsTablesElemStart(t *testing.T) {
	m, err := wat.Parse(richWat)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := validate.Module(m); err != nil {
		t.Fatalf("validate: %v", err)
	}
	var logged []int32
	inst, err := interp.Instantiate(m, interp.Imports{"env": {
		"log": &interp.HostFunc{
			Type: m.Types[m.Imports[0].TypeIdx],
			Fn: func(_ *interp.Instance, args []interp.Value) ([]interp.Value, error) {
				logged = append(logged, interp.AsI32(args[0]))
				return nil, nil
			},
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := inst.Invoke("go", interp.I32(7)) // odd -> table slot 1 -> $b
	if err != nil {
		t.Fatal(err)
	}
	if got := interp.AsI32(res[0]); got != 14 {
		t.Errorf("go(7) = %d, want 14", got)
	}
	res, _ = inst.Invoke("go", interp.I32(4)) // even -> $a
	if got := interp.AsI32(res[0]); got != 4 {
		t.Errorf("go(4) = %d, want 4", got)
	}
	if len(logged) != 2 || logged[0] != 7 {
		t.Errorf("logged = %v", logged)
	}
	if len(m.Datas) != 1 || string(m.Datas[0].Data) != "hi\x00" {
		t.Errorf("data = %q", m.Datas)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"not a module":  "(func)",
		"unknown instr": "(module (func i32.bogus))",
		"unknown name":  "(module (func call $nope))",
		"unterminated":  "(module (func",
		"bad field":     "(module (fnuc))",
		"folded body":   "(module (func (result i32) (i32.const 1)))",
	}
	for name, src := range cases {
		if _, err := wat.Parse(src); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestCommentsAndStrings(t *testing.T) {
	src := `(module
	  ;; line comment
	  (; block (; nested ;) comment ;)
	  (memory 1)
	  (data (i32.const 0) "\41\42C\n")
	  (func (export "f") (result i32) i32.const 3)
	)`
	m, err := wat.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if string(m.Datas[0].Data) != "ABC\n" {
		t.Errorf("escapes: %q", m.Datas[0].Data)
	}
	if !strings.Contains(wat.ToString(m), "i32.const 3") {
		t.Error("body lost")
	}
}
