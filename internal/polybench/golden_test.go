package polybench

import "testing"

// goldenChecksums pins the exact f64 checksum of every kernel at problem
// size 12. The values were produced by the Go reference evaluator and
// verified bit-for-bit against the wasm modules run on the interpreter; any
// change here means the numeric semantics of a kernel, the IR backends, or
// the interpreter drifted.
var goldenChecksums = map[string]float64{
	"2mm":            1442.5249999999994,
	"3mm":            3962.999999999998,
	"adi":            156.91887480499219,
	"atax":           357.7083333333333,
	"bicg":           203.66666666666663,
	"cholesky":       60.895895743303115,
	"correlation":    92.99764670882679,
	"covariance":     21.609469521252304,
	"deriche":        385.62007118335777,
	"doitgen":        3521.0000000000223,
	"durbin":         -0.7271841772770912,
	"fdtd-2d":        232.41674374999994,
	"floyd-warshall": 916,
	"gemm":           381.9,
	"gemver":         6.460677849305554e+06,
	"gesummv":        200.29999999999998,
	"gramschmidt":    200.1025361100455,
	"heat-3d":        504.00000000000034,
	"jacobi-1d":      15.382363652984534,
	"jacobi-2d":      99.257248,
	"lu":             159.11781864360364,
	"ludcmp":         1.2050326821574093,
	"mvt":            458.6666666666668,
	"nussinov":       152,
	"seidel-2d":      48.63797406761023,
	"symm":           242.77500000000003,
	"syr2k":          406.7833333333335,
	"syrk":           270.8791666666667,
	"trisolv":        1.3314553040678008,
	"trmm":           278.3125,
}

// TestGoldenChecksums guards against silent semantic drift in the kernels.
func TestGoldenChecksums(t *testing.T) {
	if len(goldenChecksums) != 30 {
		t.Fatalf("golden table has %d entries", len(goldenChecksums))
	}
	for _, k := range Kernels() {
		want, ok := goldenChecksums[k.Name]
		if !ok {
			t.Errorf("%s: no golden checksum", k.Name)
			continue
		}
		if got := k.Reference(12); got != want {
			t.Errorf("%s: reference checksum %v, golden %v", k.Name, got, want)
		}
		got, _, err := Run(k.Module(12), nil)
		if err != nil {
			t.Errorf("%s: %v", k.Name, err)
			continue
		}
		if got != want {
			t.Errorf("%s: wasm checksum %v, golden %v", k.Name, got, want)
		}
	}
}
