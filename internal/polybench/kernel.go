package polybench

import (
	"sort"

	"wasabi/internal/builder"
	"wasabi/internal/wasm"
)

// Kernel is one PolyBench benchmark: a name and a definition function that
// populates a Ctx with arrays and statements for problem size n.
type Kernel struct {
	Name  string
	Build func(n int32, c *Ctx)
}

// registry of all kernels, populated by the kernel definition files.
var kernels []Kernel

func register(name string, build func(n int32, c *Ctx)) {
	kernels = append(kernels, Kernel{Name: name, Build: build})
}

// Kernels returns all registered kernels sorted by name.
func Kernels() []Kernel {
	out := append([]Kernel(nil), kernels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName returns the kernel with the given name.
func ByName(name string) (Kernel, bool) {
	for _, k := range kernels {
		if k.Name == name {
			return k, true
		}
	}
	return Kernel{}, false
}

// Module emits the kernel as a WebAssembly module for problem size n. The
// module imports env.print_f64, exports memory, and exports a "kernel"
// function () -> f64 that runs the computation and returns (and prints) the
// checksum of all output arrays.
func (k Kernel) Module(n int32) *wasm.Module {
	c := &Ctx{}
	k.Build(n, c)

	b := builder.New()
	print64 := b.ImportFunc("env", "print_f64", builder.Sig(builder.V(wasm.F64), nil))

	// Lay out arrays at 8-byte-aligned offsets, then size the memory.
	bases := make([]int32, len(c.arrays))
	var offset int32
	for i, a := range c.arrays {
		bases[i] = offset
		offset += a.size * 8
	}
	pages := uint32(offset/wasm.PageSize) + 1
	b.Memory(pages).ExportMemory("memory")

	fb := b.Func("kernel", nil, builder.V(wasm.F64))
	g := &gen{fb: fb, bases: bases}
	for i := 0; i < c.nIVars; i++ {
		g.ivars = append(g.ivars, fb.Local(wasm.I32))
	}
	for i := 0; i < c.nFVars; i++ {
		g.fvars = append(g.fvars, fb.Local(wasm.F64))
	}
	for _, st := range c.stmts {
		st.emitS(g)
	}

	// Checksum loop over all output arrays.
	acc := fb.Local(wasm.F64)
	idx := fb.Local(wasm.I32)
	fb.F64(0).Set(acc)
	for ai, a := range c.arrays {
		if !a.out {
			continue
		}
		size := a.size
		base := bases[ai]
		fb.ForI32(idx, func(fb *builder.FuncBuilder) { fb.I32(size) }, func(fb *builder.FuncBuilder) {
			fb.Get(acc)
			fb.Get(idx).I32(8).Op(wasm.OpI32Mul)
			if base != 0 {
				fb.I32(base).Op(wasm.OpI32Add)
			}
			fb.Load(wasm.OpF64Load, 0)
			fb.Op(wasm.OpF64Add).Set(acc)
		})
	}
	fb.Get(acc).Call(print64)
	fb.Get(acc)
	fb.Done()
	return b.Build()
}

// Reference evaluates the kernel directly in Go and returns the checksum the
// wasm module must reproduce (RQ2 faithfulness oracle).
func (k Kernel) Reference(n int32) float64 {
	c := &Ctx{}
	k.Build(n, c)
	e := &env{
		ivals:  make([]int32, c.nIVars),
		fvals:  make([]float64, c.nFVars),
		arrays: make([][]float64, len(c.arrays)),
	}
	for i, a := range c.arrays {
		e.arrays[i] = make([]float64, a.size)
	}
	for _, st := range c.stmts {
		st.exec(e)
	}
	var sum float64
	for i, a := range c.arrays {
		if !a.out {
			continue
		}
		for _, v := range e.arrays[i] {
			sum += v
		}
	}
	return sum
}
