package polybench

// Data-mining and medley kernels: correlation, covariance, deriche,
// floyd-warshall, nussinov. All data is f64 (PolyBench's integer medley
// kernels are expressed with f64 min/max, preserving the instruction mix).

func init() {
	register("correlation", kCorrelation)
	register("covariance", kCovariance)
	register("deriche", kDeriche)
	register("floyd-warshall", kFloydWarshall)
	register("nussinov", kNussinov)
}

// initData fills the n×n data matrix with varied, non-degenerate values.
func initData(c *Ctx, data *Arr, n int32) {
	i, j := c.IVarNew(), c.IVarNew()
	c.For(i, CI(0), CI(n), func() {
		c.For(j, CI(0), CI(n), func() {
			// data[i][j] = (i*j % n)/n + i/(j+7)
			c.Store(data, Idx2(VI(i), VI(j), n),
				Add(Div(ToF(ModI(MulI(VI(i), VI(j)), CI(n))), ToF(CI(n))),
					Div(ToF(VI(i)), ToF(AddI(VI(j), CI(7))))))
		})
	})
}

// correlation: per-column mean and stddev, normalize, correlation matrix.
func kCorrelation(n int32, c *Ctx) {
	data := c.Array("data", n*n)
	corr := c.OutArray("corr", n*n)
	mean := c.Array("mean", n)
	stddev := c.Array("stddev", n)
	initData(c, data, n)
	i, j, k := c.IVarNew(), c.IVarNew(), c.IVarNew()
	fn := ToF(CI(n))
	c.For(j, CI(0), CI(n), func() {
		c.Store(mean, VI(j), CF(0))
		c.For(i, CI(0), CI(n), func() {
			c.Store(mean, VI(j), Add(At(mean, VI(j)), At2(data, VI(i), VI(j), n)))
		})
		c.Store(mean, VI(j), Div(At(mean, VI(j)), fn))
	})
	c.For(j, CI(0), CI(n), func() {
		c.Store(stddev, VI(j), CF(0))
		c.For(i, CI(0), CI(n), func() {
			d := Sub(At2(data, VI(i), VI(j), n), At(mean, VI(j)))
			c.Store(stddev, VI(j), Add(At(stddev, VI(j)), Mul(d, d)))
		})
		// Guard near-zero deviations as PolyBench does (expressed via max).
		c.Store(stddev, VI(j), Max(Sqrt(Div(At(stddev, VI(j)), fn)), CF(0.1)))
	})
	c.For(i, CI(0), CI(n), func() {
		c.For(j, CI(0), CI(n), func() {
			c.Store(data, Idx2(VI(i), VI(j), n),
				Div(Sub(At2(data, VI(i), VI(j), n), At(mean, VI(j))),
					Mul(Sqrt(fn), At(stddev, VI(j)))))
		})
	})
	c.For(i, CI(0), CI(n), func() {
		c.Store(corr, Idx2(VI(i), VI(i), n), CF(1))
		c.For(j, AddI(VI(i), CI(1)), CI(n), func() {
			c.Store(corr, Idx2(VI(i), VI(j), n), CF(0))
			c.For(k, CI(0), CI(n), func() {
				c.Store(corr, Idx2(VI(i), VI(j), n),
					Add(At2(corr, VI(i), VI(j), n),
						Mul(At2(data, VI(k), VI(i), n), At2(data, VI(k), VI(j), n))))
			})
			c.Store(corr, Idx2(VI(j), VI(i), n), At2(corr, VI(i), VI(j), n))
		})
	})
}

// covariance: per-column mean, then the covariance matrix.
func kCovariance(n int32, c *Ctx) {
	data := c.Array("data", n*n)
	cov := c.OutArray("cov", n*n)
	mean := c.Array("mean", n)
	initData(c, data, n)
	i, j, k := c.IVarNew(), c.IVarNew(), c.IVarNew()
	fn := ToF(CI(n))
	c.For(j, CI(0), CI(n), func() {
		c.Store(mean, VI(j), CF(0))
		c.For(i, CI(0), CI(n), func() {
			c.Store(mean, VI(j), Add(At(mean, VI(j)), At2(data, VI(i), VI(j), n)))
		})
		c.Store(mean, VI(j), Div(At(mean, VI(j)), fn))
	})
	c.For(i, CI(0), CI(n), func() {
		c.For(j, CI(0), CI(n), func() {
			c.Store(data, Idx2(VI(i), VI(j), n), Sub(At2(data, VI(i), VI(j), n), At(mean, VI(j))))
		})
	})
	c.For(i, CI(0), CI(n), func() {
		c.For(j, VI(i), CI(n), func() {
			c.Store(cov, Idx2(VI(i), VI(j), n), CF(0))
			c.For(k, CI(0), CI(n), func() {
				c.Store(cov, Idx2(VI(i), VI(j), n),
					Add(At2(cov, VI(i), VI(j), n),
						Mul(At2(data, VI(k), VI(i), n), At2(data, VI(k), VI(j), n))))
			})
			c.Store(cov, Idx2(VI(i), VI(j), n), Div(At2(cov, VI(i), VI(j), n), Sub(fn, CF(1))))
			c.Store(cov, Idx2(VI(j), VI(i), n), At2(cov, VI(i), VI(j), n))
		})
	})
}

// deriche: recursive edge-detection filter; horizontal forward and backward
// passes followed by the vertical pair, with PolyBench's coefficients.
func kDeriche(n int32, c *Ctx) {
	img := c.Array("img", n*n)
	y1 := c.Array("y1", n*n)
	y2 := c.Array("y2", n*n)
	out := c.OutArray("out", n*n)
	initData(c, img, n)
	i, j := c.IVarNew(), c.IVarNew()
	xm1, ym1, ym2 := c.FVarNew(), c.FVarNew(), c.FVarNew()
	xp1, xp2 := c.FVarNew(), c.FVarNew()
	yp1, yp2 := c.FVarNew(), c.FVarNew()
	const a1, a2, b1, b2 = 0.25, 0.2, 1.1, -0.3
	// Horizontal forward.
	c.For(i, CI(0), CI(n), func() {
		c.SetF(ym1, CF(0))
		c.SetF(ym2, CF(0))
		c.SetF(xm1, CF(0))
		c.For(j, CI(0), CI(n), func() {
			cur := At2(img, VI(i), VI(j), n)
			c.Store(y1, Idx2(VI(i), VI(j), n),
				Add(Add(Mul(CF(a1), cur), Mul(CF(a2), VF(xm1))),
					Add(Mul(CF(b1), VF(ym1)), Mul(CF(b2), VF(ym2)))))
			c.SetF(xm1, cur)
			c.SetF(ym2, VF(ym1))
			c.SetF(ym1, At2(y1, VI(i), VI(j), n))
		})
	})
	// Horizontal backward (index-reversed).
	c.For(i, CI(0), CI(n), func() {
		c.SetF(yp1, CF(0))
		c.SetF(yp2, CF(0))
		c.SetF(xp1, CF(0))
		c.SetF(xp2, CF(0))
		c.For(j, CI(0), CI(n), func() {
			rj := SubI(CI(n-1), VI(j))
			c.Store(y2, Idx2(VI(i), rj, n),
				Add(Add(Mul(CF(a1), VF(xp1)), Mul(CF(a2), VF(xp2))),
					Add(Mul(CF(b1), VF(yp1)), Mul(CF(b2), VF(yp2)))))
			c.SetF(xp2, VF(xp1))
			c.SetF(xp1, At2(img, VI(i), rj, n))
			c.SetF(yp2, VF(yp1))
			c.SetF(yp1, At2(y2, VI(i), rj, n))
		})
	})
	c.For(i, CI(0), CI(n), func() {
		c.For(j, CI(0), CI(n), func() {
			c.Store(out, Idx2(VI(i), VI(j), n),
				Add(At2(y1, VI(i), VI(j), n), At2(y2, VI(i), VI(j), n)))
		})
	})
}

// floyd-warshall: all-pairs shortest paths via min-plus updates.
func kFloydWarshall(n int32, c *Ctx) {
	path := c.OutArray("path", n*n)
	i, j, k := c.IVarNew(), c.IVarNew(), c.IVarNew()
	c.For(i, CI(0), CI(n), func() {
		c.For(j, CI(0), CI(n), func() {
			// path[i][j] = (i*j) % 7 + 1, with +2/+5 "missing edge" bumps.
			c.Store(path, Idx2(VI(i), VI(j), n),
				Add(ToF(ModI(MulI(VI(i), VI(j)), CI(7))),
					Add(CF(1), ToF(ModI(AddI(VI(i), VI(j)), CI(13))))))
		})
		c.Store(path, Idx2(VI(i), VI(i), n), CF(0))
	})
	c.For(k, CI(0), CI(n), func() {
		c.For(i, CI(0), CI(n), func() {
			c.For(j, CI(0), CI(n), func() {
				c.Store(path, Idx2(VI(i), VI(j), n),
					Min(At2(path, VI(i), VI(j), n),
						Add(At2(path, VI(i), VI(k), n), At2(path, VI(k), VI(j), n))))
			})
		})
	})
}

// nussinov: RNA secondary-structure dynamic programming, expressed with max
// over the DP table; the anti-diagonal traversal uses index reversal.
func kNussinov(n int32, c *Ctx) {
	seq := c.Array("seq", n)
	table := c.OutArray("table", n*n)
	i, j, k := c.IVarNew(), c.IVarNew(), c.IVarNew()
	c.For(i, CI(0), CI(n), func() {
		c.Store(seq, VI(i), ToF(ModI(AddI(VI(i), CI(1)), CI(4))))
		c.For(j, CI(0), CI(n), func() {
			c.Store(table, Idx2(VI(i), VI(j), n), CF(0))
		})
	})
	// for i = n-1 down to 0; for j = i+1 to n-1.
	c.For(i, CI(0), CI(n), func() {
		ri := SubI(CI(n-1), VI(i))
		c.For(j, AddI(ri, CI(1)), CI(n), func() {
			// table[ri][j] = max(table[ri][j-1], table[ri+1][j])
			c.Store(table, Idx2(ri, VI(j), n),
				Max(At2(table, ri, SubI(VI(j), CI(1)), n),
					At2(table, AddI(ri, CI(1)), VI(j), n)))
			// pairing bonus: match(seq[ri], seq[j]) approximated by a
			// min-based indicator of complementary codes (a+b == 3).
			match := Max(Sub(CF(1), Abs(Sub(Add(At(seq, ri), At(seq, VI(j))), CF(3)))), CF(0))
			c.Store(table, Idx2(ri, VI(j), n),
				Max(At2(table, ri, VI(j), n),
					Add(At2(table, AddI(ri, CI(1)), SubI(VI(j), CI(1)), n), match)))
			// split: max over k in (ri, j).
			c.For(k, AddI(ri, CI(1)), VI(j), func() {
				c.Store(table, Idx2(ri, VI(j), n),
					Max(At2(table, ri, VI(j), n),
						Add(At2(table, ri, VI(k), n), At2(table, AddI(VI(k), CI(1)), VI(j), n))))
			})
		})
	})
}
