package polybench

import (
	"fmt"

	"wasabi/internal/builder"
	"wasabi/internal/interp"
	"wasabi/internal/wasm"
)

// HostImports returns the env imports PolyBench modules need. Printed values
// are appended to *printed, mirroring the paper's use of printed intermediate
// results as the faithfulness oracle (RQ2).
func HostImports(printed *[]float64) interp.Imports {
	return interp.Imports{
		"env": {
			"print_f64": &interp.HostFunc{
				Type: builder.Sig(builder.V(wasm.F64), nil),
				Fn: func(_ *interp.Instance, args []interp.Value) ([]interp.Value, error) {
					if printed != nil {
						*printed = append(*printed, interp.AsF64(args[0]))
					}
					return nil, nil
				},
			},
		},
	}
}

// Run instantiates a kernel module and executes its "kernel" export,
// returning the checksum and everything printed through env.print_f64.
func Run(m *wasm.Module, extraImports interp.Imports) (float64, []float64, error) {
	var printed []float64
	imports := HostImports(&printed)
	for mod, fields := range extraImports {
		imports[mod] = fields
	}
	inst, err := interp.Instantiate(m, imports)
	if err != nil {
		return 0, nil, fmt.Errorf("polybench: instantiate: %w", err)
	}
	res, err := inst.Invoke("kernel")
	if err != nil {
		return 0, nil, fmt.Errorf("polybench: run: %w", err)
	}
	return interp.AsF64(res[0]), printed, nil
}
