package polybench

// The stencil kernels. Time-step counts are fixed small values; the problem
// size n scales the spatial grid, as in PolyBench's dataset presets.

const stencilSteps = 4

func init() {
	register("jacobi-1d", kJacobi1d)
	register("jacobi-2d", kJacobi2d)
	register("seidel-2d", kSeidel2d)
	register("fdtd-2d", kFdtd2d)
	register("heat-3d", kHeat3d)
	register("adi", kAdi)
}

// jacobi-1d: A, B ping-pong averaging of three neighbours.
func kJacobi1d(n int32, c *Ctx) {
	A := c.OutArray("A", n)
	B := c.OutArray("B", n)
	i, t := c.IVarNew(), c.IVarNew()
	c.For(i, CI(0), CI(n), func() {
		c.Store(A, VI(i), Div(ToF(AddI(VI(i), CI(2))), ToF(CI(n))))
		c.Store(B, VI(i), Div(ToF(AddI(VI(i), CI(3))), ToF(CI(n))))
	})
	c.For(t, CI(0), CI(stencilSteps), func() {
		c.For(i, CI(1), CI(n-1), func() {
			c.Store(B, VI(i), Mul(CF(0.33333),
				Add(At(A, SubI(VI(i), CI(1))), Add(At(A, VI(i)), At(A, AddI(VI(i), CI(1)))))))
		})
		c.For(i, CI(1), CI(n-1), func() {
			c.Store(A, VI(i), Mul(CF(0.33333),
				Add(At(B, SubI(VI(i), CI(1))), Add(At(B, VI(i)), At(B, AddI(VI(i), CI(1)))))))
		})
	})
}

// jacobi-2d: five-point stencil on two ping-pong grids.
func kJacobi2d(n int32, c *Ctx) {
	A := c.OutArray("A", n*n)
	B := c.OutArray("B", n*n)
	i, j, t := c.IVarNew(), c.IVarNew(), c.IVarNew()
	c.For(i, CI(0), CI(n), func() {
		c.For(j, CI(0), CI(n), func() {
			c.Store(A, Idx2(VI(i), VI(j), n), initAt(VI(i), VI(j), 2, n))
			c.Store(B, Idx2(VI(i), VI(j), n), initAt(VI(i), VI(j), 3, n))
		})
	})
	five := func(dst, src *Arr) {
		c.For(i, CI(1), CI(n-1), func() {
			c.For(j, CI(1), CI(n-1), func() {
				c.Store(dst, Idx2(VI(i), VI(j), n), Mul(CF(0.2),
					Add(At2(src, VI(i), VI(j), n),
						Add(At2(src, VI(i), SubI(VI(j), CI(1)), n),
							Add(At2(src, VI(i), AddI(VI(j), CI(1)), n),
								Add(At2(src, SubI(VI(i), CI(1)), VI(j), n),
									At2(src, AddI(VI(i), CI(1)), VI(j), n)))))))
			})
		})
	}
	c.For(t, CI(0), CI(stencilSteps), func() {
		five(B, A)
		five(A, B)
	})
}

// seidel-2d: in-place nine-point Gauss-Seidel sweep.
func kSeidel2d(n int32, c *Ctx) {
	A := c.OutArray("A", n*n)
	i, j, t := c.IVarNew(), c.IVarNew(), c.IVarNew()
	c.For(i, CI(0), CI(n), func() {
		c.For(j, CI(0), CI(n), func() {
			c.Store(A, Idx2(VI(i), VI(j), n), initAt(VI(i), VI(j), 2, n))
		})
	})
	c.For(t, CI(0), CI(stencilSteps), func() {
		c.For(i, CI(1), CI(n-1), func() {
			c.For(j, CI(1), CI(n-1), func() {
				sum := Add(At2(A, SubI(VI(i), CI(1)), SubI(VI(j), CI(1)), n),
					Add(At2(A, SubI(VI(i), CI(1)), VI(j), n),
						Add(At2(A, SubI(VI(i), CI(1)), AddI(VI(j), CI(1)), n),
							Add(At2(A, VI(i), SubI(VI(j), CI(1)), n),
								Add(At2(A, VI(i), VI(j), n),
									Add(At2(A, VI(i), AddI(VI(j), CI(1)), n),
										Add(At2(A, AddI(VI(i), CI(1)), SubI(VI(j), CI(1)), n),
											Add(At2(A, AddI(VI(i), CI(1)), VI(j), n),
												At2(A, AddI(VI(i), CI(1)), AddI(VI(j), CI(1)), n)))))))))
				c.Store(A, Idx2(VI(i), VI(j), n), Div(sum, CF(9)))
			})
		})
	})
}

// fdtd-2d: 2-D finite-difference time-domain kernel over three fields.
func kFdtd2d(n int32, c *Ctx) {
	ex := c.OutArray("ex", n*n)
	ey := c.OutArray("ey", n*n)
	hz := c.OutArray("hz", n*n)
	i, j, t := c.IVarNew(), c.IVarNew(), c.IVarNew()
	c.For(i, CI(0), CI(n), func() {
		c.For(j, CI(0), CI(n), func() {
			c.Store(ex, Idx2(VI(i), VI(j), n), initAt(VI(i), VI(j), 1, n))
			c.Store(ey, Idx2(VI(i), VI(j), n), initAt(VI(i), VI(j), 2, n))
			c.Store(hz, Idx2(VI(i), VI(j), n), initAt(VI(i), VI(j), 3, n))
		})
	})
	c.For(t, CI(0), CI(stencilSteps), func() {
		c.For(j, CI(0), CI(n), func() {
			c.Store(ey, Idx2(CI(0), VI(j), n), ToF(VI(t)))
		})
		c.For(i, CI(1), CI(n), func() {
			c.For(j, CI(0), CI(n), func() {
				c.Store(ey, Idx2(VI(i), VI(j), n),
					Sub(At2(ey, VI(i), VI(j), n),
						Mul(CF(0.5), Sub(At2(hz, VI(i), VI(j), n), At2(hz, SubI(VI(i), CI(1)), VI(j), n)))))
			})
		})
		c.For(i, CI(0), CI(n), func() {
			c.For(j, CI(1), CI(n), func() {
				c.Store(ex, Idx2(VI(i), VI(j), n),
					Sub(At2(ex, VI(i), VI(j), n),
						Mul(CF(0.5), Sub(At2(hz, VI(i), VI(j), n), At2(hz, VI(i), SubI(VI(j), CI(1)), n)))))
			})
		})
		c.For(i, CI(0), CI(n-1), func() {
			c.For(j, CI(0), CI(n-1), func() {
				c.Store(hz, Idx2(VI(i), VI(j), n),
					Sub(At2(hz, VI(i), VI(j), n),
						Mul(CF(0.7),
							Add(Sub(At2(ex, VI(i), AddI(VI(j), CI(1)), n), At2(ex, VI(i), VI(j), n)),
								Sub(At2(ey, AddI(VI(i), CI(1)), VI(j), n), At2(ey, VI(i), VI(j), n))))))
			})
		})
	})
}

// heat-3d: seven-point 3-D stencil on ping-pong grids.
func kHeat3d(n int32, c *Ctx) {
	A := c.OutArray("A", n*n*n)
	B := c.OutArray("B", n*n*n)
	i, j, k, t := c.IVarNew(), c.IVarNew(), c.IVarNew(), c.IVarNew()
	idx3 := func(a, b, d IExpr) IExpr { return AddI(MulI(AddI(MulI(a, CI(n)), b), CI(n)), d) }
	c.For(i, CI(0), CI(n), func() {
		c.For(j, CI(0), CI(n), func() {
			c.For(k, CI(0), CI(n), func() {
				v := Div(ToF(AddI(AddI(VI(i), VI(j)), SubI(CI(n), VI(k)))), ToF(CI(10*n)))
				c.Store(A, idx3(VI(i), VI(j), VI(k)), v)
				c.Store(B, idx3(VI(i), VI(j), VI(k)), v)
			})
		})
	})
	seven := func(dst, src *Arr) {
		c.For(i, CI(1), CI(n-1), func() {
			c.For(j, CI(1), CI(n-1), func() {
				c.For(k, CI(1), CI(n-1), func() {
					lap := func(p, m IExpr, q, r IExpr, s, u IExpr) FExpr {
						return Sub(Add(At(src, idx3(p, q, s)), At(src, idx3(m, r, u))),
							Mul(CF(2), At(src, idx3(VI(i), VI(j), VI(k)))))
					}
					c.Store(dst, idx3(VI(i), VI(j), VI(k)),
						Add(At(src, idx3(VI(i), VI(j), VI(k))),
							Mul(CF(0.125),
								Add(lap(AddI(VI(i), CI(1)), SubI(VI(i), CI(1)), VI(j), VI(j), VI(k), VI(k)),
									Add(lap(VI(i), VI(i), AddI(VI(j), CI(1)), SubI(VI(j), CI(1)), VI(k), VI(k)),
										lap(VI(i), VI(i), VI(j), VI(j), AddI(VI(k), CI(1)), SubI(VI(k), CI(1))))))))
				})
			})
		})
	}
	c.For(t, CI(0), CI(2), func() {
		seven(B, A)
		seven(A, B)
	})
}

// adi: alternating-direction implicit integration, simplified sweeps with
// the backward passes expressed through index reversal.
func kAdi(n int32, c *Ctx) {
	u := c.OutArray("u", n*n)
	v := c.Array("v", n*n)
	p := c.Array("p", n*n)
	q := c.Array("q", n*n)
	i, j, t := c.IVarNew(), c.IVarNew(), c.IVarNew()
	c.For(i, CI(0), CI(n), func() {
		c.For(j, CI(0), CI(n), func() {
			c.Store(u, Idx2(VI(i), VI(j), n), Div(ToF(AddI(VI(i), AddI(VI(j), CI(2)))), ToF(CI(n))))
		})
	})
	const a, b2, d = 0.2, 0.6, 0.2
	c.For(t, CI(0), CI(2), func() {
		// Column sweep building v.
		c.For(i, CI(1), CI(n-1), func() {
			c.Store(v, Idx2(CI(0), VI(i), n), CF(1))
			c.Store(p, Idx2(VI(i), CI(0), n), CF(0))
			c.Store(q, Idx2(VI(i), CI(0), n), CF(1))
			c.For(j, CI(1), CI(n-1), func() {
				c.Store(p, Idx2(VI(i), VI(j), n),
					Div(CF(-d), Add(Mul(CF(a), At2(p, VI(i), SubI(VI(j), CI(1)), n)), CF(b2))))
				c.Store(q, Idx2(VI(i), VI(j), n),
					Div(Sub(At2(u, VI(j), VI(i), n),
						Mul(CF(a), At2(q, VI(i), SubI(VI(j), CI(1)), n))),
						Add(Mul(CF(a), At2(p, VI(i), SubI(VI(j), CI(1)), n)), CF(b2))))
			})
			c.Store(v, Idx2(CI(n-1), VI(i), n), CF(1))
			c.For(j, CI(1), CI(n-1), func() {
				rj := SubI(CI(n-1), VI(j)) // backward pass
				c.Store(v, Idx2(rj, VI(i), n),
					Add(Mul(At2(p, VI(i), rj, n), At2(v, AddI(rj, CI(1)), VI(i), n)),
						At2(q, VI(i), rj, n)))
			})
		})
		// Row sweep rebuilding u from v.
		c.For(i, CI(1), CI(n-1), func() {
			c.Store(u, Idx2(VI(i), CI(0), n), CF(1))
			c.Store(p, Idx2(VI(i), CI(0), n), CF(0))
			c.Store(q, Idx2(VI(i), CI(0), n), CF(1))
			c.For(j, CI(1), CI(n-1), func() {
				c.Store(p, Idx2(VI(i), VI(j), n),
					Div(CF(-a), Add(Mul(CF(d), At2(p, VI(i), SubI(VI(j), CI(1)), n)), CF(b2))))
				c.Store(q, Idx2(VI(i), VI(j), n),
					Div(Sub(At2(v, VI(i), VI(j), n),
						Mul(CF(d), At2(q, VI(i), SubI(VI(j), CI(1)), n))),
						Add(Mul(CF(d), At2(p, VI(i), SubI(VI(j), CI(1)), n)), CF(b2))))
			})
			c.Store(u, Idx2(VI(i), CI(n-1), n), CF(1))
			c.For(j, CI(1), CI(n-1), func() {
				rj := SubI(CI(n-1), VI(j))
				c.Store(u, Idx2(VI(i), rj, n),
					Add(Mul(At2(p, VI(i), rj, n), At2(u, VI(i), AddI(rj, CI(1)), n)),
						At2(q, VI(i), rj, n)))
			})
		})
	})
}
