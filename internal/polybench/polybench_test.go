package polybench

import (
	"math"
	"testing"

	"wasabi/internal/binary"
	"wasabi/internal/validate"
)

// TestKernelCount checks the full PolyBench suite is present.
func TestKernelCount(t *testing.T) {
	if got := len(Kernels()); got != 30 {
		names := make([]string, 0)
		for _, k := range Kernels() {
			names = append(names, k.Name)
		}
		t.Fatalf("have %d kernels, want 30: %v", got, names)
	}
}

// TestKernelsValidateAndMatchReference builds every kernel module, validates
// it, round-trips it through the binary codec, runs it on the interpreter,
// and compares the checksum bit-for-bit against the Go reference evaluation.
func TestKernelsValidateAndMatchReference(t *testing.T) {
	const n = 12
	for _, k := range Kernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			m := k.Module(n)
			if err := validate.Module(m); err != nil {
				t.Fatalf("validate: %v", err)
			}
			data, err := binary.Encode(m)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			m2, err := binary.Decode(data)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			got, printed, err := Run(m2, nil)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			want := k.Reference(n)
			if math.IsNaN(want) || math.IsInf(want, 0) {
				t.Fatalf("reference checksum is not finite: %v", want)
			}
			if got != want {
				t.Errorf("checksum = %v, reference = %v", got, want)
			}
			if len(printed) != 1 || printed[0] != want {
				t.Errorf("printed %v, want [%v]", printed, want)
			}
		})
	}
}

// TestKernelSizesScale sanity-checks that module size grows with n for a
// representative kernel (the structure is n-independent; only loop bounds
// and memory pages change, so growth should be modest).
func TestKernelSizesScale(t *testing.T) {
	k, ok := ByName("gemm")
	if !ok {
		t.Fatal("gemm not registered")
	}
	small := k.Module(8)
	large := k.Module(64)
	if small.CountInstrs() != large.CountInstrs() {
		t.Errorf("instruction count should not depend on n: %d vs %d",
			small.CountInstrs(), large.CountInstrs())
	}
	if len(large.Memories) == 0 || len(small.Memories) == 0 {
		t.Fatal("kernels must declare memory")
	}
	if large.Memories[0].Min <= small.Memories[0].Min {
		t.Errorf("memory should grow with n: %d vs %d pages",
			small.Memories[0].Min, large.Memories[0].Min)
	}
}
