package polybench

// The linear-solver kernels: factorizations and substitutions. Inputs are
// made diagonally dominant so pivots never vanish.

func init() {
	register("cholesky", kCholesky)
	register("durbin", kDurbin)
	register("gramschmidt", kGramschmidt)
	register("lu", kLu)
	register("ludcmp", kLudcmp)
	register("trisolv", kTrisolv)
}

// initSPD fills A with a symmetric, strictly diagonally dominant matrix.
func initSPD(c *Ctx, A *Arr, n int32) {
	i, j := c.IVarNew(), c.IVarNew()
	c.For(i, CI(0), CI(n), func() {
		c.For(j, CI(0), CI(n), func() {
			// A[i][j] = ((i+j) % n) / (2n)
			c.Store(A, Idx2(VI(i), VI(j), n),
				Div(ToF(ModI(AddI(VI(i), VI(j)), CI(n))), ToF(CI(2*n))))
		})
		// Dominant diagonal: A[i][i] = n.
		c.Store(A, Idx2(VI(i), VI(i), n), ToF(CI(n)))
	})
}

// cholesky: in-place lower-triangular factorization A = L L^T.
func kCholesky(n int32, c *Ctx) {
	A := c.OutArray("A", n*n)
	initSPD(c, A, n)
	i, j, k := c.IVarNew(), c.IVarNew(), c.IVarNew()
	c.For(i, CI(0), CI(n), func() {
		c.For(j, CI(0), VI(i), func() {
			c.For(k, CI(0), VI(j), func() {
				c.Store(A, Idx2(VI(i), VI(j), n),
					Sub(At2(A, VI(i), VI(j), n), Mul(At2(A, VI(i), VI(k), n), At2(A, VI(j), VI(k), n))))
			})
			c.Store(A, Idx2(VI(i), VI(j), n), Div(At2(A, VI(i), VI(j), n), At2(A, VI(j), VI(j), n)))
		})
		c.For(k, CI(0), VI(i), func() {
			c.Store(A, Idx2(VI(i), VI(i), n),
				Sub(At2(A, VI(i), VI(i), n), Mul(At2(A, VI(i), VI(k), n), At2(A, VI(i), VI(k), n))))
		})
		c.Store(A, Idx2(VI(i), VI(i), n), Sqrt(At2(A, VI(i), VI(i), n)))
	})
}

// durbin: Levinson-Durbin recursion for Toeplitz systems.
func kDurbin(n int32, c *Ctx) {
	r := c.Array("r", n)
	y := c.OutArray("y", n)
	z := c.Array("z", n)
	i, k := c.IVarNew(), c.IVarNew()
	alpha, beta, sum := c.FVarNew(), c.FVarNew(), c.FVarNew()
	// r[i] = (n+1-i) / (2n), decreasing and < 1 keeps the recursion stable.
	c.For(i, CI(0), CI(n), func() {
		c.Store(r, VI(i), Div(ToF(SubI(CI(n+1), VI(i))), ToF(CI(2*n))))
	})
	c.Store(y, CI(0), Mul(CF(-1), At(r, CI(0))))
	c.SetF(beta, CF(1))
	c.SetF(alpha, Mul(CF(-1), At(r, CI(0))))
	c.For(k, CI(1), CI(n), func() {
		c.SetF(beta, Mul(Sub(CF(1), Mul(VF(alpha), VF(alpha))), VF(beta)))
		c.SetF(sum, CF(0))
		c.For(i, CI(0), VI(k), func() {
			c.SetF(sum, Add(VF(sum), Mul(At(r, SubI(SubI(VI(k), VI(i)), CI(1))), At(y, VI(i)))))
		})
		c.SetF(alpha, Mul(CF(-1), Div(Add(At(r, VI(k)), VF(sum)), VF(beta))))
		c.For(i, CI(0), VI(k), func() {
			c.Store(z, VI(i), Add(At(y, VI(i)), Mul(VF(alpha), At(y, SubI(SubI(VI(k), VI(i)), CI(1))))))
		})
		c.For(i, CI(0), VI(k), func() {
			c.Store(y, VI(i), At(z, VI(i)))
		})
		c.Store(y, VI(k), VF(alpha))
	})
}

// gramschmidt: QR decomposition by modified Gram-Schmidt.
func kGramschmidt(n int32, c *Ctx) {
	A := c.Array("A", n*n)
	Q := c.OutArray("Q", n*n)
	R := c.OutArray("R", n*n)
	i, j, k := c.IVarNew(), c.IVarNew(), c.IVarNew()
	nrm := c.FVarNew()
	// Init: identity-dominant to keep columns independent.
	c.For(i, CI(0), CI(n), func() {
		c.For(j, CI(0), CI(n), func() {
			c.Store(A, Idx2(VI(i), VI(j), n), initAt(VI(i), VI(j), 1, n))
			c.Store(R, Idx2(VI(i), VI(j), n), CF(0))
		})
		c.Store(A, Idx2(VI(i), VI(i), n), ToF(CI(n)))
	})
	c.For(k, CI(0), CI(n), func() {
		c.SetF(nrm, CF(0))
		c.For(i, CI(0), CI(n), func() {
			c.SetF(nrm, Add(VF(nrm), Mul(At2(A, VI(i), VI(k), n), At2(A, VI(i), VI(k), n))))
		})
		c.Store(R, Idx2(VI(k), VI(k), n), Sqrt(VF(nrm)))
		c.For(i, CI(0), CI(n), func() {
			c.Store(Q, Idx2(VI(i), VI(k), n), Div(At2(A, VI(i), VI(k), n), At2(R, VI(k), VI(k), n)))
		})
		c.For(j, AddI(VI(k), CI(1)), CI(n), func() {
			c.Store(R, Idx2(VI(k), VI(j), n), CF(0))
			c.For(i, CI(0), CI(n), func() {
				c.Store(R, Idx2(VI(k), VI(j), n),
					Add(At2(R, VI(k), VI(j), n), Mul(At2(Q, VI(i), VI(k), n), At2(A, VI(i), VI(j), n))))
			})
			c.For(i, CI(0), CI(n), func() {
				c.Store(A, Idx2(VI(i), VI(j), n),
					Sub(At2(A, VI(i), VI(j), n), Mul(At2(Q, VI(i), VI(k), n), At2(R, VI(k), VI(j), n))))
			})
		})
	})
}

// lu: in-place LU decomposition without pivoting.
func kLu(n int32, c *Ctx) {
	A := c.OutArray("A", n*n)
	initSPD(c, A, n)
	i, j, k := c.IVarNew(), c.IVarNew(), c.IVarNew()
	c.For(i, CI(0), CI(n), func() {
		c.For(j, CI(0), VI(i), func() {
			c.For(k, CI(0), VI(j), func() {
				c.Store(A, Idx2(VI(i), VI(j), n),
					Sub(At2(A, VI(i), VI(j), n), Mul(At2(A, VI(i), VI(k), n), At2(A, VI(k), VI(j), n))))
			})
			c.Store(A, Idx2(VI(i), VI(j), n), Div(At2(A, VI(i), VI(j), n), At2(A, VI(j), VI(j), n)))
		})
		c.For(j, VI(i), CI(n), func() {
			c.For(k, CI(0), VI(i), func() {
				c.Store(A, Idx2(VI(i), VI(j), n),
					Sub(At2(A, VI(i), VI(j), n), Mul(At2(A, VI(i), VI(k), n), At2(A, VI(k), VI(j), n))))
			})
		})
	})
}

// ludcmp: LU decomposition followed by forward and backward substitution.
func kLudcmp(n int32, c *Ctx) {
	A := c.Array("A", n*n)
	b := c.Array("b", n)
	x := c.OutArray("x", n)
	y := c.Array("y", n)
	initSPD(c, A, n)
	initVector(c, b, n, 1)
	i, j, k := c.IVarNew(), c.IVarNew(), c.IVarNew()
	w := c.FVarNew()
	c.For(i, CI(0), CI(n), func() {
		c.For(j, CI(0), VI(i), func() {
			c.SetF(w, At2(A, VI(i), VI(j), n))
			c.For(k, CI(0), VI(j), func() {
				c.SetF(w, Sub(VF(w), Mul(At2(A, VI(i), VI(k), n), At2(A, VI(k), VI(j), n))))
			})
			c.Store(A, Idx2(VI(i), VI(j), n), Div(VF(w), At2(A, VI(j), VI(j), n)))
		})
		c.For(j, VI(i), CI(n), func() {
			c.SetF(w, At2(A, VI(i), VI(j), n))
			c.For(k, CI(0), VI(i), func() {
				c.SetF(w, Sub(VF(w), Mul(At2(A, VI(i), VI(k), n), At2(A, VI(k), VI(j), n))))
			})
			c.Store(A, Idx2(VI(i), VI(j), n), VF(w))
		})
	})
	c.For(i, CI(0), CI(n), func() {
		c.SetF(w, At(b, VI(i)))
		c.For(j, CI(0), VI(i), func() {
			c.SetF(w, Sub(VF(w), Mul(At2(A, VI(i), VI(j), n), At(y, VI(j)))))
		})
		c.Store(y, VI(i), VF(w))
	})
	// Backward substitution, expressed with the transform i' = n-1-i.
	c.For(i, CI(0), CI(n), func() {
		ri := SubI(CI(n-1), VI(i))
		c.SetF(w, At(y, ri))
		c.For(j, AddI(ri, CI(1)), CI(n), func() {
			c.SetF(w, Sub(VF(w), Mul(At2(A, ri, VI(j), n), At(x, VI(j)))))
		})
		c.Store(x, ri, Div(VF(w), At2(A, ri, ri, n)))
	})
}

// trisolv: forward substitution for a lower-triangular system.
func kTrisolv(n int32, c *Ctx) {
	L := c.Array("L", n*n)
	x := c.OutArray("x", n)
	b := c.Array("b", n)
	initSPD(c, L, n)
	initVector(c, b, n, 1)
	i, j := c.IVarNew(), c.IVarNew()
	c.For(i, CI(0), CI(n), func() {
		c.Store(x, VI(i), At(b, VI(i)))
		c.For(j, CI(0), VI(i), func() {
			c.Store(x, VI(i), Sub(At(x, VI(i)), Mul(At2(L, VI(i), VI(j), n), At(x, VI(j)))))
		})
		c.Store(x, VI(i), Div(At(x, VI(i)), At2(L, VI(i), VI(i), n)))
	})
}
