// Package polybench re-creates the PolyBench/C benchmark suite — the 30
// numeric kernels the paper's evaluation runs — as WebAssembly modules.
//
// The paper compiles PolyBench with emscripten; our substitute is a small
// kernel IR with two backends: one emits a WebAssembly module through the
// builder DSL, the other evaluates the kernel directly in Go and serves as
// the reference for faithfulness checks (RQ2). Both backends walk the same
// AST, so the wasm module and the reference compute identical results
// (IEEE-754 double arithmetic, identical evaluation order).
//
// All kernel data is f64, stored in linear memory; every kernel finishes by
// summing its output arrays into a checksum, printing it through the
// imported env.print_f64 host function (the paper's "output intermediate
// results" faithfulness device), and returning it.
package polybench

import (
	"math"

	"wasabi/internal/builder"
	"wasabi/internal/wasm"
)

// IExpr is an integer (i32) expression.
type IExpr interface {
	emit(g *gen)
	eval(e *env) int32
}

// FExpr is a float (f64) expression.
type FExpr interface {
	emitF(g *gen)
	evalF(e *env) float64
}

// Stmt is a statement.
type Stmt interface {
	emitS(g *gen)
	exec(e *env)
}

// Arr is a handle to an f64 array in linear memory.
type Arr struct {
	name string
	size int32
	out  bool
	id   int
}

// IVar is a handle to an i32 scalar variable (a wasm local / Go int32).
type IVar struct{ id int }

// FVar is a handle to an f64 scalar variable.
type FVar struct{ id int }

// Ctx accumulates the kernel program: array declarations, variables, and a
// statement list. Kernel definitions drive it through the helper methods.
type Ctx struct {
	arrays []*Arr
	nIVars int
	nFVars int
	stmts  []Stmt
	frames [][]Stmt
}

// Array declares an f64 array with the given element count.
func (c *Ctx) Array(name string, size int32) *Arr {
	a := &Arr{name: name, size: size, id: len(c.arrays)}
	c.arrays = append(c.arrays, a)
	return a
}

// OutArray declares an array that contributes to the kernel checksum.
func (c *Ctx) OutArray(name string, size int32) *Arr {
	a := c.Array(name, size)
	a.out = true
	return a
}

// IVarNew allocates an integer scalar.
func (c *Ctx) IVarNew() *IVar {
	c.nIVars++
	return &IVar{id: c.nIVars - 1}
}

// FVarNew allocates a float scalar.
func (c *Ctx) FVarNew() *FVar {
	c.nFVars++
	return &FVar{id: c.nFVars - 1}
}

func (c *Ctx) add(s Stmt) { c.stmts = append(c.stmts, s) }

// For appends a counted loop: for v := lo; v < hi; v++ { body }.
func (c *Ctx) For(v *IVar, lo, hi IExpr, body func()) {
	c.frames = append(c.frames, c.stmts)
	c.stmts = nil
	body()
	inner := c.stmts
	c.stmts = c.frames[len(c.frames)-1]
	c.frames = c.frames[:len(c.frames)-1]
	c.add(&sFor{v: v, lo: lo, hi: hi, body: inner})
}

// Store appends arr[idx] = val.
func (c *Ctx) Store(arr *Arr, idx IExpr, val FExpr) {
	c.add(&sStore{arr: arr, idx: idx, val: val})
}

// SetF appends v = val.
func (c *Ctx) SetF(v *FVar, val FExpr) { c.add(&sSetF{v: v, val: val}) }

// SetI appends v = val.
func (c *Ctx) SetI(v *IVar, val IExpr) { c.add(&sSetI{v: v, val: val}) }

// Integer expression constructors.

type iConst struct{ v int32 }
type iVar struct{ v *IVar }
type iBin struct {
	op   byte // + - * / %
	a, b IExpr
}

// CI is an i32 constant.
func CI(v int32) IExpr { return &iConst{v} }

// VI reads an integer variable (including loop counters).
func VI(v *IVar) IExpr { return &iVar{v} }

// AddI, SubI, MulI, DivI, ModI build integer arithmetic.
func AddI(a, b IExpr) IExpr { return &iBin{'+', a, b} }
func SubI(a, b IExpr) IExpr { return &iBin{'-', a, b} }
func MulI(a, b IExpr) IExpr { return &iBin{'*', a, b} }
func DivI(a, b IExpr) IExpr { return &iBin{'/', a, b} }
func ModI(a, b IExpr) IExpr { return &iBin{'%', a, b} }

// Idx2 computes the linear index i*cols + j.
func Idx2(i, j IExpr, cols int32) IExpr { return AddI(MulI(i, CI(cols)), j) }

// Float expression constructors.

type fConst struct{ v float64 }
type fVar struct{ v *FVar }
type fLoad struct {
	arr *Arr
	idx IExpr
}
type fBin struct {
	op   byte // + - * / m(min) M(max)
	a, b FExpr
}
type fSqrt struct{ a FExpr }
type fAbs struct{ a FExpr }
type fFromI struct{ a IExpr }

// CF is an f64 constant.
func CF(v float64) FExpr { return &fConst{v} }

// VF reads a float variable.
func VF(v *FVar) FExpr { return &fVar{v} }

// At reads arr[idx].
func At(arr *Arr, idx IExpr) FExpr { return &fLoad{arr, idx} }

// At2 reads arr[i*cols+j].
func At2(arr *Arr, i, j IExpr, cols int32) FExpr { return &fLoad{arr, Idx2(i, j, cols)} }

// Add, Sub, Mul, Div, Min, Max build float arithmetic.
func Add(a, b FExpr) FExpr { return &fBin{'+', a, b} }
func Sub(a, b FExpr) FExpr { return &fBin{'-', a, b} }
func Mul(a, b FExpr) FExpr { return &fBin{'*', a, b} }
func Div(a, b FExpr) FExpr { return &fBin{'/', a, b} }
func Min(a, b FExpr) FExpr { return &fBin{'m', a, b} }
func Max(a, b FExpr) FExpr { return &fBin{'M', a, b} }

// Sqrt and Abs are the unary float operations kernels need.
func Sqrt(a FExpr) FExpr { return &fSqrt{a} }
func Abs(a FExpr) FExpr  { return &fAbs{a} }

// ToF converts an integer expression to f64 (signed).
func ToF(a IExpr) FExpr { return &fFromI{a} }

// Statements.

type sFor struct {
	v      *IVar
	lo, hi IExpr
	body   []Stmt
}
type sStore struct {
	arr *Arr
	idx IExpr
	val FExpr
}
type sSetF struct {
	v   *FVar
	val FExpr
}
type sSetI struct {
	v   *IVar
	val IExpr
}

// --- wasm backend ---

type gen struct {
	fb    *builder.FuncBuilder
	ivars []uint32 // IVar id → local index
	fvars []uint32 // FVar id → local index
	bases []int32  // array id → byte offset in memory
}

func (x *iConst) emit(g *gen) { g.fb.I32(x.v) }
func (x *iVar) emit(g *gen)   { g.fb.Get(g.ivars[x.v.id]) }
func (x *iBin) emit(g *gen) {
	x.a.emit(g)
	x.b.emit(g)
	switch x.op {
	case '+':
		g.fb.Op(wasm.OpI32Add)
	case '-':
		g.fb.Op(wasm.OpI32Sub)
	case '*':
		g.fb.Op(wasm.OpI32Mul)
	case '/':
		g.fb.Op(wasm.OpI32DivS)
	case '%':
		g.fb.Op(wasm.OpI32RemS)
	}
}

func (x *fConst) emit(g *gen) { g.fb.F64(x.v) }
func (x *fVar) emit(g *gen)   { g.fb.Get(g.fvars[x.v.id]) }
func (x *fLoad) emit(g *gen) {
	g.emitAddr(x.arr, x.idx)
	g.fb.Load(wasm.OpF64Load, 0)
}
func (x *fBin) emit(g *gen) {
	x.a.emitF(g)
	x.b.emitF(g)
	switch x.op {
	case '+':
		g.fb.Op(wasm.OpF64Add)
	case '-':
		g.fb.Op(wasm.OpF64Sub)
	case '*':
		g.fb.Op(wasm.OpF64Mul)
	case '/':
		g.fb.Op(wasm.OpF64Div)
	case 'm':
		g.fb.Op(wasm.OpF64Min)
	case 'M':
		g.fb.Op(wasm.OpF64Max)
	}
}
func (x *fSqrt) emit(g *gen) {
	x.a.emitF(g)
	g.fb.Op(wasm.OpF64Sqrt)
}
func (x *fAbs) emit(g *gen) {
	x.a.emitF(g)
	g.fb.Op(wasm.OpF64Abs)
}
func (x *fFromI) emit(g *gen) {
	x.a.emit(g)
	g.fb.Op(wasm.OpF64ConvertI32S)
}

// The FExpr interface methods delegate to emit; declared separately so both
// expression families can share the gen type.
func (x *fConst) emitF(g *gen) { x.emit(g) }
func (x *fVar) emitF(g *gen)   { x.emit(g) }
func (x *fLoad) emitF(g *gen)  { x.emit(g) }
func (x *fBin) emitF(g *gen)   { x.emit(g) }
func (x *fSqrt) emitF(g *gen)  { x.emit(g) }
func (x *fAbs) emitF(g *gen)   { x.emit(g) }
func (x *fFromI) emitF(g *gen) { x.emit(g) }

// emitAddr pushes the byte address of arr[idx].
func (g *gen) emitAddr(arr *Arr, idx IExpr) {
	idx.emit(g)
	g.fb.I32(8)
	g.fb.Op(wasm.OpI32Mul)
	if base := g.bases[arr.id]; base != 0 {
		g.fb.I32(base)
		g.fb.Op(wasm.OpI32Add)
	}
}

func (s *sFor) emitS(g *gen) {
	fb := g.fb
	v := g.ivars[s.v.id]
	s.lo.emit(g)
	fb.Set(v)
	fb.Block().Loop()
	fb.Get(v)
	s.hi.emit(g)
	fb.Op(wasm.OpI32GeS).BrIf(1)
	for _, st := range s.body {
		st.emitS(g)
	}
	fb.Get(v).I32(1).Op(wasm.OpI32Add).Set(v)
	fb.Br(0)
	fb.End().End()
}

func (s *sStore) emitS(g *gen) {
	g.emitAddr(s.arr, s.idx)
	s.val.emitF(g)
	g.fb.Store(wasm.OpF64Store, 0)
}

func (s *sSetF) emitS(g *gen) {
	s.val.emitF(g)
	g.fb.Set(g.fvars[s.v.id])
}

func (s *sSetI) emitS(g *gen) {
	s.val.emit(g)
	g.fb.Set(g.ivars[s.v.id])
}

// --- evaluation backend (the Go reference) ---

type env struct {
	ivals  []int32
	fvals  []float64
	arrays [][]float64
}

func (x *iConst) eval(e *env) int32 { return x.v }
func (x *iVar) eval(e *env) int32   { return e.ivals[x.v.id] }
func (x *iBin) eval(e *env) int32 {
	a, b := x.a.eval(e), x.b.eval(e)
	switch x.op {
	case '+':
		return a + b
	case '-':
		return a - b
	case '*':
		return a * b
	case '/':
		return a / b
	default:
		return a % b
	}
}

func (x *fConst) evalF(e *env) float64 { return x.v }
func (x *fVar) evalF(e *env) float64   { return e.fvals[x.v.id] }
func (x *fLoad) evalF(e *env) float64  { return e.arrays[x.arr.id][x.idx.eval(e)] }
func (x *fBin) evalF(e *env) float64 {
	a, b := x.a.evalF(e), x.b.evalF(e)
	switch x.op {
	case '+':
		return a + b
	case '-':
		return a - b
	case '*':
		return a * b
	case '/':
		return a / b
	case 'm':
		return wasmMin(a, b)
	default:
		return wasmMax(a, b)
	}
}
func (x *fSqrt) evalF(e *env) float64  { return math.Sqrt(x.a.evalF(e)) }
func (x *fAbs) evalF(e *env) float64   { return math.Abs(x.a.evalF(e)) }
func (x *fFromI) evalF(e *env) float64 { return float64(x.a.eval(e)) }

func (s *sFor) exec(e *env) {
	for v := s.lo.eval(e); v < s.hi.eval(e); v++ {
		e.ivals[s.v.id] = v
		for _, st := range s.body {
			st.exec(e)
		}
	}
}

func (s *sStore) exec(e *env) { e.arrays[s.arr.id][s.idx.eval(e)] = s.val.evalF(e) }
func (s *sSetF) exec(e *env)  { e.fvals[s.v.id] = s.val.evalF(e) }
func (s *sSetI) exec(e *env)  { e.ivals[s.v.id] = s.val.eval(e) }

// wasmMin/wasmMax match the interpreter's f64.min/f64.max semantics so both
// backends agree bit-for-bit.
func wasmMin(a, b float64) float64 {
	switch {
	case math.IsNaN(a) || math.IsNaN(b):
		return math.NaN()
	case a == 0 && b == 0 && math.Signbit(a):
		return a
	case a < b:
		return a
	default:
		return b
	}
}

func wasmMax(a, b float64) float64 {
	switch {
	case math.IsNaN(a) || math.IsNaN(b):
		return math.NaN()
	case a == 0 && b == 0 && !math.Signbit(a):
		return a
	case a > b:
		return a
	default:
		return b
	}
}
