package polybench

// The linear-algebra kernels of PolyBench: BLAS-like routines and kernels
// built from them. Formulas follow PolyBench 4.2; data initialization uses
// the PolyBench convention of small rationals derived from the indices.

// initAt returns the standard initializer ((i*(j+k)) % n) / n.
func initAt(i, j IExpr, k, n int32) FExpr {
	return Div(ToF(ModI(MulI(i, AddI(j, CI(k))), CI(n))), ToF(CI(n)))
}

// initVec returns (i % n) / n + c.
func initVec(i IExpr, n int32, c float64) FExpr {
	return Add(Div(ToF(ModI(i, CI(n))), ToF(CI(n))), CF(c))
}

func init() {
	register("gemm", kGemm)
	register("2mm", k2mm)
	register("3mm", k3mm)
	register("atax", kAtax)
	register("bicg", kBicg)
	register("mvt", kMvt)
	register("gesummv", kGesummv)
	register("gemver", kGemver)
	register("syrk", kSyrk)
	register("syr2k", kSyr2k)
	register("symm", kSymm)
	register("trmm", kTrmm)
	register("doitgen", kDoitgen)
}

// initMatrix fills an n×n array with the standard initializer.
func initMatrix(c *Ctx, a *Arr, n int32, k int32) {
	i, j := c.IVarNew(), c.IVarNew()
	c.For(i, CI(0), CI(n), func() {
		c.For(j, CI(0), CI(n), func() {
			c.Store(a, Idx2(VI(i), VI(j), n), initAt(VI(i), VI(j), k, n))
		})
	})
}

// initVector fills an n-element array.
func initVector(c *Ctx, a *Arr, n int32, off float64) {
	i := c.IVarNew()
	c.For(i, CI(0), CI(n), func() {
		c.Store(a, VI(i), initVec(VI(i), n, off))
	})
}

// gemm: C = alpha*A*B + beta*C.
func kGemm(n int32, c *Ctx) {
	A := c.Array("A", n*n)
	B := c.Array("B", n*n)
	C := c.OutArray("C", n*n)
	initMatrix(c, A, n, 1)
	initMatrix(c, B, n, 2)
	initMatrix(c, C, n, 3)
	i, j, k := c.IVarNew(), c.IVarNew(), c.IVarNew()
	c.For(i, CI(0), CI(n), func() {
		c.For(j, CI(0), CI(n), func() {
			c.Store(C, Idx2(VI(i), VI(j), n), Mul(At2(C, VI(i), VI(j), n), CF(1.2)))
			c.For(k, CI(0), CI(n), func() {
				c.Store(C, Idx2(VI(i), VI(j), n),
					Add(At2(C, VI(i), VI(j), n),
						Mul(CF(1.5), Mul(At2(A, VI(i), VI(k), n), At2(B, VI(k), VI(j), n)))))
			})
		})
	})
}

// matmulInto emits D = A*B (both n×n), zeroing D first.
func matmulInto(c *Ctx, D, A, B *Arr, n int32) {
	i, j, k := c.IVarNew(), c.IVarNew(), c.IVarNew()
	c.For(i, CI(0), CI(n), func() {
		c.For(j, CI(0), CI(n), func() {
			c.Store(D, Idx2(VI(i), VI(j), n), CF(0))
			c.For(k, CI(0), CI(n), func() {
				c.Store(D, Idx2(VI(i), VI(j), n),
					Add(At2(D, VI(i), VI(j), n),
						Mul(At2(A, VI(i), VI(k), n), At2(B, VI(k), VI(j), n))))
			})
		})
	})
}

// 2mm: D = alpha*A*B*C + beta*D.
func k2mm(n int32, c *Ctx) {
	A := c.Array("A", n*n)
	B := c.Array("B", n*n)
	Cm := c.Array("C", n*n)
	D := c.OutArray("D", n*n)
	tmp := c.Array("tmp", n*n)
	initMatrix(c, A, n, 1)
	initMatrix(c, B, n, 2)
	initMatrix(c, Cm, n, 3)
	initMatrix(c, D, n, 4)
	matmulInto(c, tmp, A, B, n)
	i, j, k := c.IVarNew(), c.IVarNew(), c.IVarNew()
	c.For(i, CI(0), CI(n), func() {
		c.For(j, CI(0), CI(n), func() {
			c.Store(D, Idx2(VI(i), VI(j), n), Mul(At2(D, VI(i), VI(j), n), CF(1.2)))
			c.For(k, CI(0), CI(n), func() {
				c.Store(D, Idx2(VI(i), VI(j), n),
					Add(At2(D, VI(i), VI(j), n),
						Mul(CF(1.5), Mul(At2(tmp, VI(i), VI(k), n), At2(Cm, VI(k), VI(j), n)))))
			})
		})
	})
}

// 3mm: G = (A*B) * (C*D).
func k3mm(n int32, c *Ctx) {
	A := c.Array("A", n*n)
	B := c.Array("B", n*n)
	Cm := c.Array("C", n*n)
	D := c.Array("D", n*n)
	E := c.Array("E", n*n)
	F := c.Array("F", n*n)
	G := c.OutArray("G", n*n)
	initMatrix(c, A, n, 1)
	initMatrix(c, B, n, 2)
	initMatrix(c, Cm, n, 3)
	initMatrix(c, D, n, 4)
	matmulInto(c, E, A, B, n)
	matmulInto(c, F, Cm, D, n)
	matmulInto(c, G, E, F, n)
}

// atax: y = A^T (A x).
func kAtax(n int32, c *Ctx) {
	A := c.Array("A", n*n)
	x := c.Array("x", n)
	y := c.OutArray("y", n)
	tmp := c.Array("tmp", n)
	initMatrix(c, A, n, 1)
	initVector(c, x, n, 1)
	i, j := c.IVarNew(), c.IVarNew()
	c.For(i, CI(0), CI(n), func() { c.Store(y, VI(i), CF(0)) })
	c.For(i, CI(0), CI(n), func() {
		c.Store(tmp, VI(i), CF(0))
		c.For(j, CI(0), CI(n), func() {
			c.Store(tmp, VI(i), Add(At(tmp, VI(i)), Mul(At2(A, VI(i), VI(j), n), At(x, VI(j)))))
		})
		c.For(j, CI(0), CI(n), func() {
			c.Store(y, VI(j), Add(At(y, VI(j)), Mul(At2(A, VI(i), VI(j), n), At(tmp, VI(i)))))
		})
	})
}

// bicg: s = A^T r;  q = A p.
func kBicg(n int32, c *Ctx) {
	A := c.Array("A", n*n)
	r := c.Array("r", n)
	p := c.Array("p", n)
	s := c.OutArray("s", n)
	q := c.OutArray("q", n)
	initMatrix(c, A, n, 1)
	initVector(c, r, n, 1)
	initVector(c, p, n, 2)
	i, j := c.IVarNew(), c.IVarNew()
	c.For(i, CI(0), CI(n), func() { c.Store(s, VI(i), CF(0)) })
	c.For(i, CI(0), CI(n), func() {
		c.Store(q, VI(i), CF(0))
		c.For(j, CI(0), CI(n), func() {
			c.Store(s, VI(j), Add(At(s, VI(j)), Mul(At(r, VI(i)), At2(A, VI(i), VI(j), n))))
			c.Store(q, VI(i), Add(At(q, VI(i)), Mul(At2(A, VI(i), VI(j), n), At(p, VI(j)))))
		})
	})
}

// mvt: x1 += A y1;  x2 += A^T y2.
func kMvt(n int32, c *Ctx) {
	A := c.Array("A", n*n)
	x1 := c.OutArray("x1", n)
	x2 := c.OutArray("x2", n)
	y1 := c.Array("y1", n)
	y2 := c.Array("y2", n)
	initMatrix(c, A, n, 1)
	initVector(c, x1, n, 1)
	initVector(c, x2, n, 2)
	initVector(c, y1, n, 3)
	initVector(c, y2, n, 4)
	i, j := c.IVarNew(), c.IVarNew()
	c.For(i, CI(0), CI(n), func() {
		c.For(j, CI(0), CI(n), func() {
			c.Store(x1, VI(i), Add(At(x1, VI(i)), Mul(At2(A, VI(i), VI(j), n), At(y1, VI(j)))))
		})
	})
	c.For(i, CI(0), CI(n), func() {
		c.For(j, CI(0), CI(n), func() {
			c.Store(x2, VI(i), Add(At(x2, VI(i)), Mul(At2(A, VI(j), VI(i), n), At(y2, VI(j)))))
		})
	})
}

// gesummv: y = alpha*A*x + beta*B*x.
func kGesummv(n int32, c *Ctx) {
	A := c.Array("A", n*n)
	B := c.Array("B", n*n)
	x := c.Array("x", n)
	y := c.OutArray("y", n)
	tmp := c.Array("tmp", n)
	initMatrix(c, A, n, 1)
	initMatrix(c, B, n, 2)
	initVector(c, x, n, 1)
	i, j := c.IVarNew(), c.IVarNew()
	c.For(i, CI(0), CI(n), func() {
		c.Store(tmp, VI(i), CF(0))
		c.Store(y, VI(i), CF(0))
		c.For(j, CI(0), CI(n), func() {
			c.Store(tmp, VI(i), Add(At(tmp, VI(i)), Mul(At2(A, VI(i), VI(j), n), At(x, VI(j)))))
			c.Store(y, VI(i), Add(At(y, VI(i)), Mul(At2(B, VI(i), VI(j), n), At(x, VI(j)))))
		})
		c.Store(y, VI(i), Add(Mul(CF(1.5), At(tmp, VI(i))), Mul(CF(1.2), At(y, VI(i)))))
	})
}

// gemver: A += u1 v1^T + u2 v2^T;  x = beta A^T y + z;  w = alpha A x.
func kGemver(n int32, c *Ctx) {
	A := c.Array("A", n*n)
	u1 := c.Array("u1", n)
	v1 := c.Array("v1", n)
	u2 := c.Array("u2", n)
	v2 := c.Array("v2", n)
	x := c.Array("x", n)
	y := c.Array("y", n)
	z := c.Array("z", n)
	w := c.OutArray("w", n)
	initMatrix(c, A, n, 1)
	initVector(c, u1, n, 1)
	initVector(c, v1, n, 2)
	initVector(c, u2, n, 3)
	initVector(c, v2, n, 4)
	initVector(c, y, n, 5)
	initVector(c, z, n, 6)
	i, j := c.IVarNew(), c.IVarNew()
	c.For(i, CI(0), CI(n), func() {
		c.Store(x, VI(i), CF(0))
		c.Store(w, VI(i), CF(0))
		c.For(j, CI(0), CI(n), func() {
			c.Store(A, Idx2(VI(i), VI(j), n),
				Add(At2(A, VI(i), VI(j), n),
					Add(Mul(At(u1, VI(i)), At(v1, VI(j))), Mul(At(u2, VI(i)), At(v2, VI(j))))))
		})
	})
	c.For(i, CI(0), CI(n), func() {
		c.For(j, CI(0), CI(n), func() {
			c.Store(x, VI(i), Add(At(x, VI(i)), Mul(CF(1.2), Mul(At2(A, VI(j), VI(i), n), At(y, VI(j))))))
		})
		c.Store(x, VI(i), Add(At(x, VI(i)), At(z, VI(i))))
	})
	c.For(i, CI(0), CI(n), func() {
		c.For(j, CI(0), CI(n), func() {
			c.Store(w, VI(i), Add(At(w, VI(i)), Mul(CF(1.5), Mul(At2(A, VI(i), VI(j), n), At(x, VI(j))))))
		})
	})
}

// syrk: C = alpha*A*A^T + beta*C, lower triangle.
func kSyrk(n int32, c *Ctx) {
	A := c.Array("A", n*n)
	C := c.OutArray("C", n*n)
	initMatrix(c, A, n, 1)
	initMatrix(c, C, n, 2)
	i, j, k := c.IVarNew(), c.IVarNew(), c.IVarNew()
	c.For(i, CI(0), CI(n), func() {
		c.For(j, CI(0), AddI(VI(i), CI(1)), func() {
			c.Store(C, Idx2(VI(i), VI(j), n), Mul(At2(C, VI(i), VI(j), n), CF(1.2)))
			c.For(k, CI(0), CI(n), func() {
				c.Store(C, Idx2(VI(i), VI(j), n),
					Add(At2(C, VI(i), VI(j), n),
						Mul(CF(1.5), Mul(At2(A, VI(i), VI(k), n), At2(A, VI(j), VI(k), n)))))
			})
		})
	})
}

// syr2k: C = alpha*(A*B^T + B*A^T) + beta*C, lower triangle.
func kSyr2k(n int32, c *Ctx) {
	A := c.Array("A", n*n)
	B := c.Array("B", n*n)
	C := c.OutArray("C", n*n)
	initMatrix(c, A, n, 1)
	initMatrix(c, B, n, 2)
	initMatrix(c, C, n, 3)
	i, j, k := c.IVarNew(), c.IVarNew(), c.IVarNew()
	c.For(i, CI(0), CI(n), func() {
		c.For(j, CI(0), AddI(VI(i), CI(1)), func() {
			c.Store(C, Idx2(VI(i), VI(j), n), Mul(At2(C, VI(i), VI(j), n), CF(1.2)))
			c.For(k, CI(0), CI(n), func() {
				c.Store(C, Idx2(VI(i), VI(j), n),
					Add(At2(C, VI(i), VI(j), n),
						Mul(CF(1.5),
							Add(Mul(At2(A, VI(i), VI(k), n), At2(B, VI(j), VI(k), n)),
								Mul(At2(B, VI(i), VI(k), n), At2(A, VI(j), VI(k), n))))))
			})
		})
	})
}

// symm: C = alpha*A*B + beta*C with symmetric A (simplified dense form).
func kSymm(n int32, c *Ctx) {
	A := c.Array("A", n*n)
	B := c.Array("B", n*n)
	C := c.OutArray("C", n*n)
	initMatrix(c, A, n, 1)
	initMatrix(c, B, n, 2)
	initMatrix(c, C, n, 3)
	i, j, k := c.IVarNew(), c.IVarNew(), c.IVarNew()
	tmp := c.FVarNew()
	c.For(i, CI(0), CI(n), func() {
		c.For(j, CI(0), CI(n), func() {
			c.SetF(tmp, CF(0))
			c.For(k, CI(0), AddI(VI(i), CI(1)), func() {
				c.SetF(tmp, Add(VF(tmp), Mul(At2(A, VI(i), VI(k), n), At2(B, VI(k), VI(j), n))))
			})
			c.Store(C, Idx2(VI(i), VI(j), n),
				Add(Mul(CF(1.2), At2(C, VI(i), VI(j), n)), Mul(CF(1.5), VF(tmp))))
		})
	})
}

// trmm: B = alpha*A*B with lower-triangular A.
func kTrmm(n int32, c *Ctx) {
	A := c.Array("A", n*n)
	B := c.OutArray("B", n*n)
	initMatrix(c, A, n, 1)
	initMatrix(c, B, n, 2)
	i, j, k := c.IVarNew(), c.IVarNew(), c.IVarNew()
	c.For(i, CI(0), CI(n), func() {
		c.For(j, CI(0), CI(n), func() {
			c.For(k, AddI(VI(i), CI(1)), CI(n), func() {
				c.Store(B, Idx2(VI(i), VI(j), n),
					Add(At2(B, VI(i), VI(j), n), Mul(At2(A, VI(k), VI(i), n), At2(B, VI(k), VI(j), n))))
			})
			c.Store(B, Idx2(VI(i), VI(j), n), Mul(CF(1.5), At2(B, VI(i), VI(j), n)))
		})
	})
}

// doitgen: A[r][q][p] = sum_s A[r][q][s] * C4[s][p].
func kDoitgen(n int32, c *Ctx) {
	A := c.OutArray("A", n*n*n)
	C4 := c.Array("C4", n*n)
	sum := c.Array("sum", n)
	initMatrix(c, C4, n, 1)
	r, q, p, s := c.IVarNew(), c.IVarNew(), c.IVarNew(), c.IVarNew()
	idx3 := func(a, b, d IExpr) IExpr { return AddI(MulI(AddI(MulI(a, CI(n)), b), CI(n)), d) }
	c.For(r, CI(0), CI(n), func() {
		c.For(q, CI(0), CI(n), func() {
			c.For(p, CI(0), CI(n), func() {
				c.Store(A, idx3(VI(r), VI(q), VI(p)),
					Div(ToF(ModI(AddI(MulI(VI(r), VI(q)), VI(p)), CI(n))), ToF(CI(n))))
			})
		})
	})
	c.For(r, CI(0), CI(n), func() {
		c.For(q, CI(0), CI(n), func() {
			c.For(p, CI(0), CI(n), func() {
				c.Store(sum, VI(p), CF(0))
				c.For(s, CI(0), CI(n), func() {
					c.Store(sum, VI(p), Add(At(sum, VI(p)),
						Mul(At(A, idx3(VI(r), VI(q), VI(s))), At2(C4, VI(s), VI(p), n))))
				})
			})
			c.For(p, CI(0), CI(n), func() {
				c.Store(A, idx3(VI(r), VI(q), VI(p)), At(sum, VI(p)))
			})
		})
	})
}
