package validate

import (
	"errors"
	"fmt"
)

// ErrUnsupported reports an instruction from a post-MVP proposal the runtime
// does not implement yet (passive data/element segments and the table forms
// of bulk memory: memory.init, data.drop, table.init, elem.drop,
// table.copy). Sign-extension, saturating truncation, and
// memory.copy/memory.fill are implemented and no longer rejected. The
// decoder represents the remaining instructions so the rejection happens
// here, typed and positioned, rather than as a decode failure or a runtime
// fault. Matched with errors.Is through the positioned *Error wrap.
var ErrUnsupported = errors.New("validate: instruction from an unimplemented proposal")

// UnsupportedError is the typed form of ErrUnsupported: which instruction
// was encountered and which proposal it belongs to. Position (function,
// instruction index) is carried by the enclosing *Error.
type UnsupportedError struct {
	Name     string // text-format instruction name, e.g. "i32.extend8_s"
	Proposal string // source proposal, e.g. "sign-extension"
}

func (e *UnsupportedError) Error() string {
	return fmt.Sprintf("%s not supported (%s proposal not implemented)", e.Name, e.Proposal)
}

func (e *UnsupportedError) Unwrap() error { return ErrUnsupported }
