package validate

import (
	"fmt"

	"wasabi/internal/wasm"
)

// Error is a position-annotated validation failure. FuncIdx (whole function
// index space) and Instr (original instruction index) are -1 when the
// failure is not scoped to a function or instruction; Op is meaningful only
// when Instr >= 0. The rendered message matches the historical wrapped
// formats ("func %d (%s): instr %d (%s): ..."), so callers that matched on
// strings keep working while new callers use errors.As.
type Error struct {
	FuncIdx  int
	FuncName string
	Instr    int
	Op       wasm.Opcode
	Err      error
}

func (e *Error) Error() string {
	msg := e.Err.Error()
	if e.Instr >= 0 {
		msg = fmt.Sprintf("instr %d (%s): %s", e.Instr, e.Op, msg)
	}
	if e.FuncIdx >= 0 {
		msg = fmt.Sprintf("func %d (%s): %s", e.FuncIdx, e.FuncName, msg)
	}
	return msg
}

func (e *Error) Unwrap() error { return e.Err }

// annotateFunc attaches function context to an error coming out of checkFunc:
// typed errors are filled in place, anything else is wrapped.
func annotateFunc(err error, idx int, name string) error {
	if ve, ok := err.(*Error); ok {
		ve.FuncIdx, ve.FuncName = idx, name
		return ve
	}
	return &Error{FuncIdx: idx, FuncName: name, Instr: -1, Err: err}
}
