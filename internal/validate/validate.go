package validate

import (
	"fmt"

	"wasabi/internal/wasm"
)

// Module validates a whole module: section consistency, index ranges,
// constant expressions, and the type-correctness of every function body.
// It plays the role wasm-validate plays in the paper's RQ2 evaluation.
func Module(m *wasm.Module) error {
	if err := checkTypes(m); err != nil {
		return err
	}
	if err := checkImports(m); err != nil {
		return err
	}
	if err := checkTablesAndMemories(m); err != nil {
		return err
	}
	if err := checkGlobals(m); err != nil {
		return err
	}
	if err := checkExports(m); err != nil {
		return err
	}
	if err := checkStart(m); err != nil {
		return err
	}
	if err := checkElems(m); err != nil {
		return err
	}
	if err := checkDatas(m); err != nil {
		return err
	}
	for i := range m.Funcs {
		if err := checkFunc(m, i); err != nil {
			idx := m.NumImportedFuncs() + i
			return annotateFunc(err, idx, m.FuncName(uint32(idx)))
		}
	}
	return nil
}

// Func validates a single defined function body.
func Func(m *wasm.Module, definedIdx int) error {
	return checkFunc(m, definedIdx)
}

func checkTypes(m *wasm.Module) error {
	for i, ft := range m.Types {
		if len(ft.Results) > 1 {
			return fmt.Errorf("validate: type %d has %d results; MVP allows at most one", i, len(ft.Results))
		}
		for _, p := range ft.Params {
			if !p.Valid() {
				return fmt.Errorf("validate: type %d has invalid param type", i)
			}
		}
		for _, r := range ft.Results {
			if !r.Valid() {
				return fmt.Errorf("validate: type %d has invalid result type", i)
			}
		}
	}
	return nil
}

func checkImports(m *wasm.Module) error {
	for i, imp := range m.Imports {
		switch imp.Kind {
		case wasm.ExternFunc:
			if int(imp.TypeIdx) >= len(m.Types) {
				return fmt.Errorf("validate: import %d: type index %d out of range", i, imp.TypeIdx)
			}
		case wasm.ExternTable, wasm.ExternMemory, wasm.ExternGlobal:
		default:
			return fmt.Errorf("validate: import %d: unknown kind", i)
		}
	}
	return nil
}

func checkTablesAndMemories(m *wasm.Module) error {
	nt := len(m.Tables)
	nm := len(m.Memories)
	for _, imp := range m.Imports {
		switch imp.Kind {
		case wasm.ExternTable:
			nt++
		case wasm.ExternMemory:
			nm++
		}
	}
	if nt > 1 {
		return fmt.Errorf("validate: at most one table is allowed, have %d", nt)
	}
	if nm > 1 {
		return fmt.Errorf("validate: at most one memory is allowed, have %d", nm)
	}
	for _, l := range append(append([]wasm.Limits{}, m.Tables...), m.Memories...) {
		if l.HasMax && l.Max < l.Min {
			return fmt.Errorf("validate: limits max %d below min %d", l.Max, l.Min)
		}
	}
	return nil
}

func checkGlobals(m *wasm.Module) error {
	for i, g := range m.Globals {
		t, err := constExprType(m, g.Init, true)
		if err != nil {
			return fmt.Errorf("validate: global %d init: %w", i, err)
		}
		if t != g.Type.Type {
			return fmt.Errorf("validate: global %d init type %s does not match declared %s", i, t, g.Type.Type)
		}
	}
	return nil
}

func checkExports(m *wasm.Module) error {
	seen := make(map[string]bool, len(m.Exports))
	for _, e := range m.Exports {
		if seen[e.Name] {
			return fmt.Errorf("validate: duplicate export name %q", e.Name)
		}
		seen[e.Name] = true
		switch e.Kind {
		case wasm.ExternFunc:
			if int(e.Idx) >= m.NumFuncs() {
				return fmt.Errorf("validate: export %q: function index %d out of range", e.Name, e.Idx)
			}
		case wasm.ExternGlobal:
			if _, err := m.GlobalType(e.Idx); err != nil {
				return fmt.Errorf("validate: export %q: %w", e.Name, err)
			}
		case wasm.ExternTable, wasm.ExternMemory:
			// With at most one of each, index 0 is the only valid value.
			if e.Idx != 0 {
				return fmt.Errorf("validate: export %q: index %d out of range", e.Name, e.Idx)
			}
		}
	}
	return nil
}

func checkStart(m *wasm.Module) error {
	if m.Start == nil {
		return nil
	}
	ft, err := m.FuncType(*m.Start)
	if err != nil {
		return fmt.Errorf("validate: start: %w", err)
	}
	if len(ft.Params) != 0 || len(ft.Results) != 0 {
		return fmt.Errorf("validate: start function must have type []->[], has %s", ft)
	}
	return nil
}

func checkElems(m *wasm.Module) error {
	for i, e := range m.Elems {
		if e.TableIdx != 0 {
			return fmt.Errorf("validate: elem %d: table index %d out of range", i, e.TableIdx)
		}
		t, err := constExprType(m, e.Offset, true)
		if err != nil {
			return fmt.Errorf("validate: elem %d offset: %w", i, err)
		}
		if t != wasm.I32 {
			return fmt.Errorf("validate: elem %d offset must be i32, is %s", i, t)
		}
		for _, f := range e.Funcs {
			if int(f) >= m.NumFuncs() {
				return fmt.Errorf("validate: elem %d references function %d out of range", i, f)
			}
		}
	}
	return nil
}

func checkDatas(m *wasm.Module) error {
	for i, d := range m.Datas {
		if d.MemIdx != 0 {
			return fmt.Errorf("validate: data %d: memory index %d out of range", i, d.MemIdx)
		}
		t, err := constExprType(m, d.Offset, true)
		if err != nil {
			return fmt.Errorf("validate: data %d offset: %w", i, err)
		}
		if t != wasm.I32 {
			return fmt.Errorf("validate: data %d offset must be i32, is %s", i, t)
		}
	}
	return nil
}

// constExprType checks a constant expression and returns its result type.
// Constant expressions are a single const or global.get of an (imported,
// immutable) global, terminated by end.
func constExprType(m *wasm.Module, expr []wasm.Instr, importedOnly bool) (wasm.ValType, error) {
	if len(expr) != 2 || expr[1].Op != wasm.OpEnd {
		return 0, fmt.Errorf("must be a single constant instruction followed by end")
	}
	in := expr[0]
	switch in.Op {
	case wasm.OpI32Const:
		return wasm.I32, nil
	case wasm.OpI64Const:
		return wasm.I64, nil
	case wasm.OpF32Const:
		return wasm.F32, nil
	case wasm.OpF64Const:
		return wasm.F64, nil
	case wasm.OpGlobalGet:
		if importedOnly && int(in.Idx) >= m.NumImportedGlobals() {
			return 0, fmt.Errorf("global.get in constant expression may only reference imported globals")
		}
		gt, err := m.GlobalType(in.Idx)
		if err != nil {
			return 0, err
		}
		if gt.Mutable {
			return 0, fmt.Errorf("global.get in constant expression must reference an immutable global")
		}
		return gt.Type, nil
	}
	return 0, fmt.Errorf("non-constant instruction %s", in.Op)
}

func checkFunc(m *wasm.Module, defined int) error {
	f := &m.Funcs[defined]
	if int(f.TypeIdx) >= len(m.Types) {
		return fmt.Errorf("validate: type index %d out of range", f.TypeIdx)
	}
	sig := m.Types[f.TypeIdx]
	tr := NewTracker(m, sig, f.Locals, f.BrTargets)
	for i := range f.Body {
		if name, proposal, ok := wasm.UnsupportedInfo(f.Body[i]); ok {
			return &Error{FuncIdx: -1, Instr: i, Op: f.Body[i].Op,
				Err: &UnsupportedError{Name: name, Proposal: proposal}}
		}
		if err := tr.Step(f.Body[i]); err != nil {
			return &Error{FuncIdx: -1, Instr: i, Op: f.Body[i].Op, Err: err}
		}
	}
	if !tr.Done() {
		return fmt.Errorf("validate: function body has %d unclosed blocks", tr.Depth())
	}
	return nil
}
