package validate

import (
	"strings"
	"testing"

	"wasabi/internal/wasm"
)

// testBrPool is the shared br_table target pool of test bodies: entries
// [0:2] = {0, 1} and [2:3] = {1}.
var (
	testBrPool  []uint32
	brTable01   = wasm.AppendBrTable(&testBrPool, []uint32{0, 1}, 0)
	brTable1of2 = wasm.AppendBrTable(&testBrPool, []uint32{1}, 0)
)

// mod wraps a single function body (type [i32] -> [i32], one extra f64
// local) into a minimal module with memory, table, and a global.
func mod(body ...wasm.Instr) *wasm.Module {
	return &wasm.Module{
		Types: []wasm.FuncType{
			{Params: []wasm.ValType{wasm.I32}, Results: []wasm.ValType{wasm.I32}},
			{}, // [] -> []
		},
		Funcs: []wasm.Func{
			{TypeIdx: 0, Locals: []wasm.ValType{wasm.F64}, Body: body, BrTargets: testBrPool},
			{TypeIdx: 1, Body: []wasm.Instr{wasm.End()}},
		},
		Tables:   []wasm.Limits{{Min: 1}},
		Memories: []wasm.Limits{{Min: 1}},
		Globals: []wasm.Global{
			{Type: wasm.GlobalType{Type: wasm.I64, Mutable: true}, Init: []wasm.Instr{wasm.I64ConstInstr(0), wasm.End()}},
			{Type: wasm.GlobalType{Type: wasm.F32}, Init: []wasm.Instr{wasm.F32ConstInstr(1), wasm.End()}},
		},
	}
}

func TestValidBodies(t *testing.T) {
	cases := map[string][]wasm.Instr{
		"identity": {wasm.LocalGet(0), wasm.End()},
		"arith": {
			wasm.LocalGet(0), wasm.I32Const(1), wasm.Op1(wasm.OpI32Add), wasm.End(),
		},
		"block result": {
			wasm.BlockInstr(wasm.BlockType(wasm.I32)),
			wasm.LocalGet(0),
			wasm.End(),
			wasm.End(),
		},
		"if else": {
			wasm.LocalGet(0),
			wasm.IfInstr(wasm.BlockType(wasm.I32)),
			wasm.I32Const(1),
			{Op: wasm.OpElse},
			wasm.I32Const(2),
			wasm.End(),
			wasm.End(),
		},
		"loop with br_if": {
			wasm.BlockInstr(wasm.BlockEmpty),
			wasm.LoopInstr(wasm.BlockEmpty),
			wasm.LocalGet(0),
			wasm.BrIf(1),
			wasm.Br(0),
			wasm.End(),
			wasm.End(),
			wasm.LocalGet(0),
			wasm.End(),
		},
		"dead code after br is polymorphic": {
			wasm.BlockInstr(wasm.BlockEmpty),
			wasm.Br(0),
			// Unreachable: drop of a conjured value is fine.
			wasm.Op1(wasm.OpDrop),
			wasm.Op1(wasm.OpI32Add),
			wasm.Op1(wasm.OpDrop),
			wasm.End(),
			wasm.LocalGet(0),
			wasm.End(),
		},
		"return then junk": {
			wasm.LocalGet(0), wasm.Op1(wasm.OpReturn),
			wasm.Op1(wasm.OpF64Add), wasm.Op1(wasm.OpDrop),
			wasm.End(),
		},
		"unreachable satisfies any result": {
			wasm.Op1(wasm.OpUnreachable),
			wasm.End(),
		},
		"select same types": {
			wasm.LocalGet(0), wasm.LocalGet(0), wasm.LocalGet(0),
			wasm.Op1(wasm.OpSelect),
			wasm.End(),
		},
		"globals": {
			wasm.GlobalGet(0), wasm.I64ConstInstr(1), wasm.Op1(wasm.OpI64Add), wasm.GlobalSet(0),
			wasm.LocalGet(0), wasm.End(),
		},
		"memory": {
			wasm.I32Const(0), wasm.MemInstr(wasm.OpI32Load, 2, 0),
			wasm.End(),
		},
		"br_table": {
			wasm.BlockInstr(wasm.BlockEmpty),
			wasm.BlockInstr(wasm.BlockEmpty),
			wasm.LocalGet(0),
			brTable01,
			wasm.End(),
			wasm.End(),
			wasm.LocalGet(0),
			wasm.End(),
		},
		"call and call_indirect": {
			wasm.Call(1),
			wasm.I32Const(0),
			{Op: wasm.OpCallIndirect, Idx: 1},
			wasm.LocalGet(0),
			wasm.End(),
		},
	}
	for name, body := range cases {
		if err := Module(mod(body...)); err != nil {
			t.Errorf("%s: unexpected error: %v", name, err)
		}
	}
}

func TestInvalidBodies(t *testing.T) {
	cases := map[string]struct {
		body []wasm.Instr
		want string
	}{
		"missing result":    {[]wasm.Instr{wasm.End()}, "underflow"},
		"wrong result type": {[]wasm.Instr{wasm.F64ConstInstr(1), wasm.End()}, "type mismatch"},
		"stack underflow":   {[]wasm.Instr{wasm.Op1(wasm.OpI32Add), wasm.End()}, "underflow"},
		"operand type": {
			[]wasm.Instr{wasm.LocalGet(0), wasm.LocalGet(1), wasm.Op1(wasm.OpI32Add), wasm.End()},
			"type mismatch",
		},
		"bad label": {
			[]wasm.Instr{wasm.Br(2), wasm.End()},
			"label",
		},
		"superfluous value": {
			[]wasm.Instr{wasm.I32Const(1), wasm.I32Const(2), wasm.I32Const(3),
				wasm.Op1(wasm.OpDrop), wasm.Op1(wasm.OpDrop), wasm.I32Const(4), wasm.End()},
			"superfluous",
		},
		"select mixed types": {
			[]wasm.Instr{wasm.LocalGet(0), wasm.LocalGet(1), wasm.LocalGet(0),
				wasm.Op1(wasm.OpSelect), wasm.End()},
			"select",
		},
		"set immutable global": {
			[]wasm.Instr{wasm.F32ConstInstr(0), wasm.GlobalSet(1), wasm.LocalGet(0), wasm.End()},
			"immutable",
		},
		"bad local index": {
			[]wasm.Instr{wasm.LocalGet(9), wasm.End()},
			"local index",
		},
		"if without else needing result": {
			[]wasm.Instr{wasm.LocalGet(0), wasm.IfInstr(wasm.BlockType(wasm.I32)),
				wasm.I32Const(1), wasm.End(), wasm.End()},
			"else",
		},
		"else without if": {
			[]wasm.Instr{wasm.BlockInstr(wasm.BlockEmpty), {Op: wasm.OpElse}, wasm.End(),
				wasm.LocalGet(0), wasm.End()},
			"else",
		},
		"unclosed block": {
			[]wasm.Instr{wasm.BlockInstr(wasm.BlockEmpty), wasm.LocalGet(0), wasm.Op1(wasm.OpDrop)},
			"unclosed",
		},
		"br_table arity mismatch": {
			[]wasm.Instr{
				wasm.BlockInstr(wasm.BlockType(wasm.I32)),
				wasm.BlockInstr(wasm.BlockEmpty),
				wasm.LocalGet(0),
				brTable1of2,
				wasm.End(),
				wasm.LocalGet(0),
				wasm.End(),
				wasm.End(),
			},
			"arity",
		},
		"over-aligned load": {
			[]wasm.Instr{wasm.I32Const(0), wasm.MemInstr(wasm.OpI32Load, 5, 0),
				wasm.End()},
			"alignment",
		},
	}
	for name, c := range cases {
		err := Module(mod(c.body...))
		if err == nil {
			t.Errorf("%s: expected error", name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", name, err, c.want)
		}
	}
}

func TestModuleLevelChecks(t *testing.T) {
	base := func() *wasm.Module { return mod(wasm.LocalGet(0), wasm.End()) }

	t.Run("duplicate export", func(t *testing.T) {
		m := base()
		m.Exports = []wasm.Export{
			{Name: "x", Kind: wasm.ExternFunc, Idx: 0},
			{Name: "x", Kind: wasm.ExternFunc, Idx: 1},
		}
		if err := Module(m); err == nil || !strings.Contains(err.Error(), "duplicate") {
			t.Errorf("got %v", err)
		}
	})
	t.Run("two memories", func(t *testing.T) {
		m := base()
		m.Memories = append(m.Memories, wasm.Limits{Min: 1})
		if err := Module(m); err == nil {
			t.Error("expected error")
		}
	})
	t.Run("start with params", func(t *testing.T) {
		m := base()
		s := uint32(0) // type [i32]->[i32]
		m.Start = &s
		if err := Module(m); err == nil || !strings.Contains(err.Error(), "start") {
			t.Errorf("got %v", err)
		}
	})
	t.Run("global init type mismatch", func(t *testing.T) {
		m := base()
		m.Globals[0].Init = []wasm.Instr{wasm.I32Const(1), wasm.End()}
		if err := Module(m); err == nil {
			t.Error("expected error")
		}
	})
	t.Run("global init referencing defined global", func(t *testing.T) {
		m := base()
		m.Globals[1].Init = []wasm.Instr{wasm.GlobalGet(0), wasm.End()}
		if err := Module(m); err == nil {
			t.Error("expected error")
		}
	})
	t.Run("elem function out of range", func(t *testing.T) {
		m := base()
		m.Elems = []wasm.ElemSegment{{Offset: []wasm.Instr{wasm.I32Const(0), wasm.End()}, Funcs: []uint32{99}}}
		if err := Module(m); err == nil {
			t.Error("expected error")
		}
	})
	t.Run("multi-result type", func(t *testing.T) {
		m := base()
		m.Types = append(m.Types, wasm.FuncType{Results: []wasm.ValType{wasm.I32, wasm.I32}})
		if err := Module(m); err == nil || !strings.Contains(err.Error(), "results") {
			t.Errorf("got %v", err)
		}
	})
}

// TestTrackerTopAndUnreachable covers the introspection the instrumenter
// depends on.
func TestTrackerTopAndUnreachable(t *testing.T) {
	m := mod(wasm.LocalGet(0), wasm.End())
	tr := NewTracker(m, m.Types[0], m.Funcs[0].Locals, m.Funcs[0].BrTargets)
	step := func(in wasm.Instr) {
		t.Helper()
		if err := tr.Step(in); err != nil {
			t.Fatalf("step %s: %v", in, err)
		}
	}
	step(wasm.I32Const(1))
	step(wasm.F64ConstInstr(2))
	if got := tr.Top(0); got != wasm.F64 {
		t.Errorf("Top(0) = %s", got)
	}
	if got := tr.Top(1); got != wasm.I32 {
		t.Errorf("Top(1) = %s", got)
	}
	if tr.UnreachableNow() {
		t.Error("should be reachable")
	}
	step(wasm.Op1(wasm.OpDrop))
	step(wasm.Op1(wasm.OpReturn))
	if !tr.UnreachableNow() {
		t.Error("should be unreachable after return")
	}
	if got := tr.Top(0); got != Unknown {
		t.Errorf("Top in dead code = %s, want Unknown", got)
	}
	step(wasm.End())
	if !tr.Done() {
		t.Error("tracker should be done")
	}
}
