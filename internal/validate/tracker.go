// Package validate implements WebAssembly validation: a full module
// validator and, at its heart, Tracker, an incremental implementation of the
// spec's abstract type-checking algorithm (value stack + control-frame
// stack). Tracker is shared with the Wasabi instrumenter, which needs to know
// stack-top types to monomorphize hooks for polymorphic instructions such as
// drop and select (paper §2.4.3), and block nesting to resolve branch labels
// (paper §2.4.4).
package validate

import (
	"fmt"

	"wasabi/internal/wasm"
)

// Unknown is the bottom type that appears on the abstract stack in
// unreachable code, where any value type can be conjured.
const Unknown wasm.ValType = 0

// ControlFrame describes one entry of the abstract control stack: a
// function, block, loop, if, or else construct currently open at this point
// of the instruction stream.
type ControlFrame struct {
	Op          wasm.Opcode // OpCall marks the implicit function-body frame
	StartTypes  []wasm.ValType
	EndTypes    []wasm.ValType
	Height      int  // value-stack height at frame entry
	Unreachable bool // set after br/return/unreachable inside this frame
}

// LabelTypes returns the types a branch to this frame must provide: the
// start types for loops (branch = backward jump to the loop header), the end
// types for everything else.
func (f *ControlFrame) LabelTypes() []wasm.ValType {
	if f.Op == wasm.OpLoop {
		return f.StartTypes
	}
	return f.EndTypes
}

// Tracker type-checks one function body instruction by instruction.
type Tracker struct {
	mod       *wasm.Module
	locals    []wasm.ValType // params followed by declared locals
	brTargets []uint32       // the function's br_table target pool
	vals      []wasm.ValType
	ctrl      []ControlFrame
}

// NewTracker prepares type checking of a function with the given signature
// and declared locals. The implicit function frame is pushed immediately.
// The brTargets pool is the function's br_table target pool (Func.BrTargets),
// needed to type-check br_table instructions.
func NewTracker(mod *wasm.Module, sig wasm.FuncType, locals []wasm.ValType, brTargets []uint32) *Tracker {
	t := &Tracker{}
	t.Reset(mod, sig, locals, brTargets)
	return t
}

// Reset reinitializes the tracker for another function body, reusing the
// locals, value-stack, and control-stack buffers. This keeps per-function
// type tracking allocation-free when a tracker is reused across the many
// functions of one instrumentation run.
func (t *Tracker) Reset(mod *wasm.Module, sig wasm.FuncType, locals []wasm.ValType, brTargets []uint32) {
	t.mod = mod
	t.locals = append(t.locals[:0], sig.Params...)
	t.locals = append(t.locals, locals...)
	t.brTargets = brTargets
	t.vals = t.vals[:0]
	t.ctrl = t.ctrl[:0]
	t.pushCtrl(wasm.OpCall, nil, sig.Results)
}

// Clear drops every module-derived reference (module, locals, br_table
// pool, control-frame type slices) while keeping buffer capacity, so a
// pooled tracker does not keep a finished module reachable. Reset must be
// called before the tracker is used again.
func (t *Tracker) Clear() {
	t.mod = nil
	t.brTargets = nil
	t.locals = t.locals[:0]
	t.vals = t.vals[:0]
	clear(t.ctrl[:cap(t.ctrl)])
	t.ctrl = t.ctrl[:0]
}

// Done reports whether the body is complete (the implicit function frame has
// been popped by its final end instruction).
func (t *Tracker) Done() bool { return len(t.ctrl) == 0 }

// Depth returns the current control-stack depth (number of open frames).
func (t *Tracker) Depth() int { return len(t.ctrl) }

// Frame returns the control frame n levels from the top (0 = innermost).
func (t *Tracker) Frame(n int) (*ControlFrame, error) {
	if n >= len(t.ctrl) {
		return nil, fmt.Errorf("validate: branch label %d exceeds control depth %d", n, len(t.ctrl))
	}
	return &t.ctrl[len(t.ctrl)-1-n], nil
}

// UnreachableNow reports whether the current position is statically
// unreachable (dead code after br/return/unreachable within the innermost
// frame). The instrumenter skips hook insertion in unreachable code.
func (t *Tracker) UnreachableNow() bool {
	if len(t.ctrl) == 0 {
		return true
	}
	return t.ctrl[len(t.ctrl)-1].Unreachable
}

// Top returns the type of the value n entries from the top of the abstract
// stack (0 = top of stack). In unreachable code it returns Unknown.
func (t *Tracker) Top(n int) wasm.ValType {
	frame := &t.ctrl[len(t.ctrl)-1]
	if len(t.vals)-1-n < frame.Height {
		if frame.Unreachable {
			return Unknown
		}
		return Unknown // caller detects underflow via Step's error
	}
	return t.vals[len(t.vals)-1-n]
}

// LocalType returns the type of the local at idx (params included).
func (t *Tracker) LocalType(idx uint32) (wasm.ValType, error) {
	if int(idx) >= len(t.locals) {
		return 0, fmt.Errorf("validate: local index %d out of range (have %d)", idx, len(t.locals))
	}
	return t.locals[idx], nil
}

func (t *Tracker) pushVal(v wasm.ValType) { t.vals = append(t.vals, v) }

func (t *Tracker) popVal() (wasm.ValType, error) {
	frame := &t.ctrl[len(t.ctrl)-1]
	if len(t.vals) == frame.Height {
		if frame.Unreachable {
			return Unknown, nil
		}
		return 0, fmt.Errorf("validate: value stack underflow")
	}
	v := t.vals[len(t.vals)-1]
	t.vals = t.vals[:len(t.vals)-1]
	return v, nil
}

func (t *Tracker) popExpect(expect wasm.ValType) (wasm.ValType, error) {
	got, err := t.popVal()
	if err != nil {
		return 0, err
	}
	if got != expect && got != Unknown && expect != Unknown {
		return 0, fmt.Errorf("validate: type mismatch: expected %s, got %s", expect, got)
	}
	return got, nil
}

func (t *Tracker) popMany(expect []wasm.ValType) error {
	for i := len(expect) - 1; i >= 0; i-- {
		if _, err := t.popExpect(expect[i]); err != nil {
			return err
		}
	}
	return nil
}

func (t *Tracker) pushMany(ts []wasm.ValType) {
	for _, v := range ts {
		t.pushVal(v)
	}
}

func (t *Tracker) pushCtrl(op wasm.Opcode, start, end []wasm.ValType) {
	t.ctrl = append(t.ctrl, ControlFrame{
		Op:         op,
		StartTypes: start,
		EndTypes:   end,
		Height:     len(t.vals),
	})
	t.pushMany(start)
}

func (t *Tracker) popCtrl() (ControlFrame, error) {
	if len(t.ctrl) == 0 {
		return ControlFrame{}, fmt.Errorf("validate: control stack underflow")
	}
	frame := t.ctrl[len(t.ctrl)-1]
	if err := t.popMany(frame.EndTypes); err != nil {
		return ControlFrame{}, err
	}
	if len(t.vals) != frame.Height {
		return ControlFrame{}, fmt.Errorf("validate: %d superfluous values at end of block", len(t.vals)-frame.Height)
	}
	t.ctrl = t.ctrl[:len(t.ctrl)-1]
	return frame, nil
}

func (t *Tracker) markUnreachable() {
	frame := &t.ctrl[len(t.ctrl)-1]
	t.vals = t.vals[:frame.Height]
	frame.Unreachable = true
}

// Step type-checks a single instruction and advances the abstract state.
func (t *Tracker) Step(in wasm.Instr) error {
	if len(t.ctrl) == 0 {
		return fmt.Errorf("validate: instruction %s after end of function body", in.Op)
	}
	op := in.Op

	// Fixed-signature numeric instructions (consts, comparisons, arithmetic,
	// conversions) are handled uniformly via the signature table.
	if ins, outs, ok := wasm.NumericSig(op); ok {
		if err := t.popMany(ins); err != nil {
			return fmt.Errorf("validate: %s: %w", op, err)
		}
		t.pushMany(outs)
		return nil
	}

	switch op {
	case wasm.OpNop:
	case wasm.OpUnreachable:
		t.markUnreachable()

	case wasm.OpBlock, wasm.OpLoop:
		t.pushCtrl(op, nil, in.Block.Results())
	case wasm.OpIf:
		if _, err := t.popExpect(wasm.I32); err != nil {
			return fmt.Errorf("validate: if condition: %w", err)
		}
		t.pushCtrl(op, nil, in.Block.Results())
	case wasm.OpElse:
		frame, err := t.popCtrl()
		if err != nil {
			return fmt.Errorf("validate: else: %w", err)
		}
		if frame.Op != wasm.OpIf {
			return fmt.Errorf("validate: else without matching if")
		}
		t.pushCtrl(wasm.OpElse, frame.StartTypes, frame.EndTypes)
	case wasm.OpEnd:
		frame, err := t.popCtrl()
		if err != nil {
			return fmt.Errorf("validate: end: %w", err)
		}
		if frame.Op == wasm.OpIf && len(frame.EndTypes) > 0 {
			return fmt.Errorf("validate: if with result type %v lacks an else arm", frame.EndTypes)
		}
		t.pushMany(frame.EndTypes)

	case wasm.OpBr:
		frame, err := t.Frame(int(in.Idx))
		if err != nil {
			return err
		}
		if err := t.popMany(frame.LabelTypes()); err != nil {
			return fmt.Errorf("validate: br: %w", err)
		}
		t.markUnreachable()
	case wasm.OpBrIf:
		if _, err := t.popExpect(wasm.I32); err != nil {
			return fmt.Errorf("validate: br_if condition: %w", err)
		}
		frame, err := t.Frame(int(in.Idx))
		if err != nil {
			return err
		}
		lt := frame.LabelTypes()
		if err := t.popMany(lt); err != nil {
			return fmt.Errorf("validate: br_if: %w", err)
		}
		t.pushMany(lt)
	case wasm.OpBrTable:
		if _, err := t.popExpect(wasm.I32); err != nil {
			return fmt.Errorf("validate: br_table index: %w", err)
		}
		dflt, err := t.Frame(int(in.Idx))
		if err != nil {
			return err
		}
		off, cnt := in.BrTableSpan()
		if off+cnt > len(t.brTargets) {
			return fmt.Errorf("validate: br_table target span exceeds pool (%d+%d > %d)", off, cnt, len(t.brTargets))
		}
		arity := len(dflt.LabelTypes())
		for _, target := range in.BrTargets(t.brTargets) {
			f, err := t.Frame(int(target))
			if err != nil {
				return err
			}
			if len(f.LabelTypes()) != arity {
				return fmt.Errorf("validate: br_table targets have inconsistent arity")
			}
		}
		if err := t.popMany(dflt.LabelTypes()); err != nil {
			return fmt.Errorf("validate: br_table: %w", err)
		}
		t.markUnreachable()
	case wasm.OpReturn:
		// Branch to the outermost (function) frame.
		frame := &t.ctrl[0]
		if err := t.popMany(frame.EndTypes); err != nil {
			return fmt.Errorf("validate: return: %w", err)
		}
		t.markUnreachable()

	case wasm.OpCall:
		ft, err := t.mod.FuncType(in.Idx)
		if err != nil {
			return err
		}
		if err := t.popMany(ft.Params); err != nil {
			return fmt.Errorf("validate: call %d: %w", in.Idx, err)
		}
		t.pushMany(ft.Results)
	case wasm.OpCallIndirect:
		if len(t.mod.Tables) == 0 && !hasImportedTable(t.mod) {
			return fmt.Errorf("validate: call_indirect requires a table")
		}
		if int(in.Idx) >= len(t.mod.Types) {
			return fmt.Errorf("validate: call_indirect type index %d out of range", in.Idx)
		}
		if _, err := t.popExpect(wasm.I32); err != nil {
			return fmt.Errorf("validate: call_indirect table index: %w", err)
		}
		ft := t.mod.Types[in.Idx]
		if err := t.popMany(ft.Params); err != nil {
			return fmt.Errorf("validate: call_indirect: %w", err)
		}
		t.pushMany(ft.Results)

	case wasm.OpDrop:
		if _, err := t.popVal(); err != nil {
			return fmt.Errorf("validate: drop: %w", err)
		}
	case wasm.OpSelect:
		if _, err := t.popExpect(wasm.I32); err != nil {
			return fmt.Errorf("validate: select condition: %w", err)
		}
		a, err := t.popVal()
		if err != nil {
			return fmt.Errorf("validate: select: %w", err)
		}
		b, err := t.popVal()
		if err != nil {
			return fmt.Errorf("validate: select: %w", err)
		}
		if a != b && a != Unknown && b != Unknown {
			return fmt.Errorf("validate: select operands differ: %s vs %s", a, b)
		}
		if a == Unknown {
			t.pushVal(b)
		} else {
			t.pushVal(a)
		}

	case wasm.OpLocalGet:
		lt, err := t.LocalType(in.Idx)
		if err != nil {
			return err
		}
		t.pushVal(lt)
	case wasm.OpLocalSet:
		lt, err := t.LocalType(in.Idx)
		if err != nil {
			return err
		}
		if _, err := t.popExpect(lt); err != nil {
			return fmt.Errorf("validate: local.set %d: %w", in.Idx, err)
		}
	case wasm.OpLocalTee:
		lt, err := t.LocalType(in.Idx)
		if err != nil {
			return err
		}
		if _, err := t.popExpect(lt); err != nil {
			return fmt.Errorf("validate: local.tee %d: %w", in.Idx, err)
		}
		t.pushVal(lt)
	case wasm.OpGlobalGet:
		gt, err := t.mod.GlobalType(in.Idx)
		if err != nil {
			return err
		}
		t.pushVal(gt.Type)
	case wasm.OpGlobalSet:
		gt, err := t.mod.GlobalType(in.Idx)
		if err != nil {
			return err
		}
		if !gt.Mutable {
			return fmt.Errorf("validate: global.set on immutable global %d", in.Idx)
		}
		if _, err := t.popExpect(gt.Type); err != nil {
			return fmt.Errorf("validate: global.set %d: %w", in.Idx, err)
		}

	case wasm.OpMemorySize:
		if err := t.requireMemory(); err != nil {
			return err
		}
		t.pushVal(wasm.I32)
	case wasm.OpMemoryGrow:
		if err := t.requireMemory(); err != nil {
			return err
		}
		if _, err := t.popExpect(wasm.I32); err != nil {
			return fmt.Errorf("validate: memory.grow: %w", err)
		}
		t.pushVal(wasm.I32)

	case wasm.OpMiscPrefix:
		// Only implemented subopcodes reach here: checkFunc rejects the
		// recognized-but-unimplemented ones with a typed, positioned
		// unsupported error before stepping the tracker.
		if from, to, ok := wasm.MiscTruncSatSig(in.Idx); ok {
			if _, err := t.popExpect(from); err != nil {
				return fmt.Errorf("validate: %s: %w", wasm.MiscName(in.Idx), err)
			}
			t.pushVal(to)
			return nil
		}
		switch in.Idx {
		case wasm.MiscMemoryCopy, wasm.MiscMemoryFill:
			// memory.copy: dst, src, len; memory.fill: dst, val, len — all i32.
			if err := t.requireMemory(); err != nil {
				return err
			}
			for i := 0; i < 3; i++ {
				if _, err := t.popExpect(wasm.I32); err != nil {
					return fmt.Errorf("validate: %s: %w", wasm.MiscName(in.Idx), err)
				}
			}
		default:
			return fmt.Errorf("validate: unhandled 0xfc subopcode %d", in.Idx)
		}

	default:
		switch {
		case op.IsLoad():
			if err := t.requireMemory(); err != nil {
				return err
			}
			vt, size := op.LoadStoreType()
			if err := checkAlign(in.MemAlign(), size, op); err != nil {
				return err
			}
			if _, err := t.popExpect(wasm.I32); err != nil {
				return fmt.Errorf("validate: %s address: %w", op, err)
			}
			t.pushVal(vt)
		case op.IsStore():
			if err := t.requireMemory(); err != nil {
				return err
			}
			vt, size := op.LoadStoreType()
			if err := checkAlign(in.MemAlign(), size, op); err != nil {
				return err
			}
			if _, err := t.popExpect(vt); err != nil {
				return fmt.Errorf("validate: %s value: %w", op, err)
			}
			if _, err := t.popExpect(wasm.I32); err != nil {
				return fmt.Errorf("validate: %s address: %w", op, err)
			}
		default:
			return fmt.Errorf("validate: unhandled opcode %s", op)
		}
	}
	return nil
}

func (t *Tracker) requireMemory() error {
	if len(t.mod.Memories) > 0 || hasImportedMemory(t.mod) {
		return nil
	}
	return fmt.Errorf("validate: memory instruction without a memory")
}

func checkAlign(align, size uint32, op wasm.Opcode) error {
	// align is log2 of the alignment and must not exceed the natural one.
	natural := uint32(0)
	for s := size; s > 1; s >>= 1 {
		natural++
	}
	if align > natural {
		return fmt.Errorf("validate: %s alignment 2^%d exceeds natural alignment %d", op, align, size)
	}
	return nil
}

func hasImportedTable(m *wasm.Module) bool {
	for _, imp := range m.Imports {
		if imp.Kind == wasm.ExternTable {
			return true
		}
	}
	return false
}

func hasImportedMemory(m *wasm.Module) bool {
	for _, imp := range m.Imports {
		if imp.Kind == wasm.ExternMemory {
			return true
		}
	}
	return false
}
