// Package failpoint provides named fault-injection points for the host-side
// seams of the runtime: places where the host allocates, registers, or hands
// off resources on behalf of a guest, and where a failure must degrade into
// a typed error — never a panic, a leaked goroutine, or a wedged Engine.
//
// A failpoint is a named site compiled into production code as
//
//	if err := failpoint.Inject(failpoint.EmitterFlush); err != nil { ... }
//
// Disabled (the default), Inject is a single atomic load of a package
// counter followed by a predictable branch — no map lookup, no allocation,
// no per-site state touched. TestArmed pins that shape. Points are armed by
// tests (Arm/Disarm) or via the WASABI_FAILPOINTS environment variable
// (comma-separated point names) for whole-process experiments.
//
// The graceful-degradation invariants every armed point must uphold are
// asserted by the scheduler suite in the root package (failpoint_test.go):
// a typed error surfaces, live streams end with a terminal Stream.Err, the
// Session/Engine remain usable, registry names are released, and no
// goroutines leak.
package failpoint

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"sync/atomic"
)

// Point names one injection site. The value is an index into the armed
// table, so Inject's per-point check is an array load, not a map lookup.
type Point int

// The registered injection points: the host-side seams the containment
// layer (PR 6) does not cover.
const (
	// EmitterEmit fires in the event emitter's per-event append path, where
	// a full batch forces acquisition of the next buffer.
	EmitterEmit Point = iota
	// EmitterFlush fires when the emitter hands a finished batch to the
	// consumer side.
	EmitterFlush
	// RegistryReserve fires while reserving an instance name in the
	// engine's registry, before any instance state exists.
	RegistryReserve
	// RegistryCommit fires at the point a reserved name would be committed,
	// after the instance is fully built.
	RegistryCommit
	// ValuePoolGet fires when hook dispatch borrows a value buffer from the
	// engine's pool.
	ValuePoolGet
	// HostCall fires at the host-call boundary, as a guest-visible host
	// function is about to run.
	HostCall
	// InstrumentCache fires when the engine is about to insert a freshly
	// instrumented module into its compiled-analysis cache.
	InstrumentCache
	// WASIHostCall fires at the WASI syscall boundary, as a
	// wasi_snapshot_preview1 host function is about to service a guest
	// request (before any fd/clock/random state is touched).
	WASIHostCall

	numPoints int = iota
)

var pointNames = [numPoints]string{
	EmitterEmit:     "emitter-emit",
	EmitterFlush:    "emitter-flush",
	RegistryReserve: "registry-reserve",
	RegistryCommit:  "registry-commit",
	ValuePoolGet:    "value-pool-get",
	HostCall:        "host-call",
	InstrumentCache: "instrument-cache",
	WASIHostCall:    "wasi-host-call",
}

// String returns the point's stable name (also its WASABI_FAILPOINTS token).
func (p Point) String() string {
	if p < 0 || int(p) >= numPoints {
		return fmt.Sprintf("failpoint(%d)", int(p))
	}
	return pointNames[p]
}

// Points lists every registered point, for scheduler-style test suites.
func Points() []Point {
	out := make([]Point, numPoints)
	for i := range out {
		out[i] = Point(i)
	}
	return out
}

// ErrInjected is the sentinel every injected failure wraps; errors.Is
// against it identifies an injected fault regardless of the site.
var ErrInjected = errors.New("failpoint: injected fault")

// InjectedError is the typed error returned by an armed Inject.
type InjectedError struct {
	Point Point
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("failpoint %s: injected fault", e.Point)
}

// Unwrap makes errors.Is(err, ErrInjected) true.
func (e *InjectedError) Unwrap() error { return ErrInjected }

// armedTotal counts armed points process-wide. It is the ONLY state the
// disabled fast path reads: zero means every Inject returns nil after one
// atomic load.
var armedTotal atomic.Int32

// armed holds the per-point armed flags, consulted only when armedTotal is
// nonzero.
var armed [numPoints]atomic.Bool

// Inject reports whether the named point should fail. It returns nil when
// the point (or the whole layer) is disarmed, and an *InjectedError when
// armed. The disabled path is a single atomic load and branch.
func Inject(p Point) error {
	if armedTotal.Load() == 0 {
		return nil
	}
	return injectSlow(p)
}

// injectSlow is kept out of Inject so the fast path stays inlinable.
func injectSlow(p Point) error {
	if p >= 0 && int(p) < numPoints && armed[p].Load() {
		return &InjectedError{Point: p}
	}
	return nil
}

// Enabled reports whether the point is currently armed. Sites whose seam
// cannot return an error (panic-contract paths) use it to decide whether to
// simulate the failure in their own idiom.
func Enabled(p Point) bool {
	if armedTotal.Load() == 0 {
		return false
	}
	return p >= 0 && int(p) < numPoints && armed[p].Load()
}

// Arm activates the point. Arming an already-armed point is a no-op.
func Arm(p Point) {
	if p < 0 || int(p) >= numPoints {
		panic(fmt.Sprintf("failpoint: unknown point %d", int(p)))
	}
	if armed[p].CompareAndSwap(false, true) {
		armedTotal.Add(1)
	}
}

// Disarm deactivates the point. Disarming an already-disarmed point is a
// no-op.
func Disarm(p Point) {
	if p < 0 || int(p) >= numPoints {
		return
	}
	if armed[p].CompareAndSwap(true, false) {
		armedTotal.Add(-1)
	}
}

// DisarmAll deactivates every point.
func DisarmAll() {
	for i := range armed {
		Disarm(Point(i))
	}
}

// FromName resolves a point by its stable name.
func FromName(name string) (Point, bool) {
	for i, n := range pointNames {
		if n == name {
			return Point(i), true
		}
	}
	return -1, false
}

// init arms points named in WASABI_FAILPOINTS (comma-separated), enabling
// whole-process fault experiments without code changes. Unknown names are
// ignored: an experiment must not turn into a crash at import time.
func init() {
	for _, name := range strings.Split(os.Getenv("WASABI_FAILPOINTS"), ",") {
		if p, ok := FromName(strings.TrimSpace(name)); ok {
			Arm(p)
		}
	}
}
