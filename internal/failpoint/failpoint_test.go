package failpoint

import (
	"errors"
	"testing"
)

// TestDisabledFastPath pins the structural guarantee the package comment
// makes: with nothing armed, Inject and Enabled are pure reads — no
// allocation, nil/false for every point, including out-of-range values.
func TestDisabledFastPath(t *testing.T) {
	DisarmAll()
	for _, p := range Points() {
		if err := Inject(p); err != nil {
			t.Fatalf("Inject(%s) with nothing armed = %v, want nil", p, err)
		}
		if Enabled(p) {
			t.Fatalf("Enabled(%s) with nothing armed = true", p)
		}
	}
	for _, p := range []Point{-1, Point(numPoints), Point(numPoints + 7)} {
		if err := Inject(p); err != nil {
			t.Fatalf("Inject(%d) out of range = %v, want nil", int(p), err)
		}
	}
	if n := testing.AllocsPerRun(1000, func() {
		for _, p := range Points() {
			if Inject(p) != nil {
				t.Fatal("armed mid-benchmark")
			}
		}
	}); n != 0 {
		t.Fatalf("disabled Inject allocates: %v allocs/run, want 0", n)
	}
}

// TestArmed covers the armed path: the typed error, its sentinel unwrap,
// per-point isolation, and Enabled for panic-contract sites.
func TestArmed(t *testing.T) {
	t.Cleanup(DisarmAll)
	for _, p := range Points() {
		DisarmAll()
		Arm(p)
		err := Inject(p)
		if err == nil {
			t.Fatalf("Inject(%s) armed = nil, want error", p)
		}
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("Inject(%s) = %v, not errors.Is ErrInjected", p, err)
		}
		var inj *InjectedError
		if !errors.As(err, &inj) || inj.Point != p {
			t.Fatalf("Inject(%s) = %v, want *InjectedError for the same point", p, err)
		}
		if !Enabled(p) {
			t.Fatalf("Enabled(%s) armed = false", p)
		}
		// Arming one point must not trip the others.
		for _, q := range Points() {
			if q == p {
				continue
			}
			if err := Inject(q); err != nil {
				t.Fatalf("Inject(%s) with only %s armed = %v", q, p, err)
			}
		}
	}
}

// TestArmDisarmIdempotent checks the counter cannot be skewed by repeated
// Arm/Disarm: the fast path depends on armedTotal reaching exactly zero.
func TestArmDisarmIdempotent(t *testing.T) {
	t.Cleanup(DisarmAll)
	DisarmAll()
	Arm(HostCall)
	Arm(HostCall)
	Arm(EmitterEmit)
	Disarm(HostCall)
	if Enabled(HostCall) {
		t.Fatal("HostCall still enabled after Disarm")
	}
	if !Enabled(EmitterEmit) {
		t.Fatal("EmitterEmit disarmed by an unrelated Disarm")
	}
	Disarm(EmitterEmit)
	Disarm(EmitterEmit)
	if got := armedTotal.Load(); got != 0 {
		t.Fatalf("armedTotal after balanced arm/disarm = %d, want 0", got)
	}
	if err := Inject(HostCall); err != nil {
		t.Fatalf("Inject after full disarm = %v", err)
	}
}

// TestNames pins the stable names: they are the WASABI_FAILPOINTS vocabulary
// and the scheduler suite's subtest names.
func TestNames(t *testing.T) {
	want := map[Point]string{
		EmitterEmit:     "emitter-emit",
		EmitterFlush:    "emitter-flush",
		RegistryReserve: "registry-reserve",
		RegistryCommit:  "registry-commit",
		ValuePoolGet:    "value-pool-get",
		HostCall:        "host-call",
		InstrumentCache: "instrument-cache",
		WASIHostCall:    "wasi-host-call",
	}
	if len(want) != numPoints {
		t.Fatalf("test covers %d points, package registers %d", len(want), numPoints)
	}
	for p, name := range want {
		if p.String() != name {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), name)
		}
		got, ok := FromName(name)
		if !ok || got != p {
			t.Errorf("FromName(%q) = %v, %v, want %v, true", name, got, ok, p)
		}
	}
	if _, ok := FromName("no-such-point"); ok {
		t.Error("FromName accepted an unknown name")
	}
	if s := Point(-3).String(); s != "failpoint(-3)" {
		t.Errorf("out-of-range String() = %q", s)
	}
}

// BenchmarkInjectDisabled measures the cost every production seam pays when
// the layer is off — the number the "zero overhead disabled" claim rests on.
func BenchmarkInjectDisabled(b *testing.B) {
	DisarmAll()
	for i := 0; i < b.N; i++ {
		if Inject(EmitterEmit) != nil {
			b.Fatal("armed")
		}
	}
}
