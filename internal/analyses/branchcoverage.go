package analyses

import (
	"fmt"
	"io"

	"wasabi/internal/analysis"
)

// BranchCoverage records which direction every branching instruction took,
// reproducing Figure 7 of the paper: it implements exactly the if, br_if,
// br_table, and select hooks.
type BranchCoverage struct {
	// Taken maps a branch location to the set of observed decisions:
	// 0/1 for two-way branches, the selected index for br_table.
	Taken map[analysis.Location]map[uint32]bool
}

// NewBranchCoverage returns an empty branch-coverage analysis.
func NewBranchCoverage() *BranchCoverage {
	return &BranchCoverage{Taken: make(map[analysis.Location]map[uint32]bool)}
}

func (a *BranchCoverage) add(loc analysis.Location, branch uint32) {
	set := a.Taken[loc]
	if set == nil {
		set = make(map[uint32]bool)
		a.Taken[loc] = set
	}
	set[branch] = true
}

func boolBit(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// If records the taken direction of an if.
func (a *BranchCoverage) If(loc analysis.Location, cond bool) { a.add(loc, boolBit(cond)) }

// BrIf records whether a conditional branch was taken.
func (a *BranchCoverage) BrIf(loc analysis.Location, _ analysis.BranchTarget, cond bool) {
	a.add(loc, boolBit(cond))
}

// BrTable records the selected branch-table entry.
func (a *BranchCoverage) BrTable(loc analysis.Location, _ []analysis.BranchTarget, _ analysis.BranchTarget, idx uint32) {
	a.add(loc, idx)
}

// Select records which operand a select picked.
func (a *BranchCoverage) Select(loc analysis.Location, cond bool, _, _ analysis.Value) {
	a.add(loc, boolBit(cond))
}

// BlockCovered opts the analysis into block-probe mode under a
// static-analysis engine; the probes themselves carry no decision, so the
// callback only exists to set analysis.CapBlockCoverage.
func (a *BranchCoverage) BlockCovered(analysis.Location, int) {}

// BlockModeHooks keeps the four decision-carrying hooks alive in block-probe
// mode: which direction a branch took cannot be reconstructed from
// block-entry events alone.
func (a *BranchCoverage) BlockModeHooks() analysis.HookSet {
	return analysis.Set(analysis.KindIf, analysis.KindBrIf, analysis.KindBrTable, analysis.KindSelect)
}

// FullyCovered returns how many branch sites saw ≥2 distinct decisions and
// the total number of observed branch sites.
func (a *BranchCoverage) FullyCovered() (full, total int) {
	for _, set := range a.Taken {
		total++
		if len(set) >= 2 {
			full++
		}
	}
	return full, total
}

// Report writes a per-site summary.
func (a *BranchCoverage) Report(w io.Writer) {
	full, total := a.FullyCovered()
	fmt.Fprintf(w, "branch sites observed: %d, both/multiple directions: %d\n", total, full)
}
