package analyses

import (
	"fmt"
	"io"

	"wasabi/internal/analysis"
)

// Cryptominer reproduces the profiling part of the SEISMIC cryptomining
// detector from Figure 1 of the paper: it gathers a signature from the
// execution frequency of the binary instructions characteristic of mining
// kernels. It implements only the binary hook.
type Cryptominer struct {
	Signature map[string]uint64
	Other     uint64
}

// NewCryptominer returns an empty miner-detection analysis.
func NewCryptominer() *Cryptominer {
	return &Cryptominer{Signature: make(map[string]uint64)}
}

// Binary accumulates the instruction signature (cf. Figure 1).
func (a *Cryptominer) Binary(_ analysis.Location, op string, _, _, _ analysis.Value) {
	switch op {
	case "i32.add", "i32.and", "i32.shl", "i32.shr_u", "i32.xor":
		a.Signature[op]++
	default:
		a.Other++
	}
}

// Suspicious applies the hash-kernel heuristic: mining workloads show a high
// proportion of integer bit operations (xor/shift/and) among all binary
// instructions.
func (a *Cryptominer) Suspicious() bool {
	bitops := a.Signature["i32.xor"] + a.Signature["i32.shl"] + a.Signature["i32.shr_u"] + a.Signature["i32.and"]
	total := a.Other
	for _, n := range a.Signature {
		total += n
	}
	return total > 10000 && bitops*2 > total
}

// Report writes the signature and the verdict.
func (a *Cryptominer) Report(w io.Writer) {
	for _, op := range []string{"i32.add", "i32.and", "i32.shl", "i32.shr_u", "i32.xor"} {
		fmt.Fprintf(w, "%12d  %s\n", a.Signature[op], op)
	}
	fmt.Fprintf(w, "suspicious: %v\n", a.Suspicious())
}
