package analyses

import (
	"fmt"
	"io"

	"wasabi/internal/analysis"
	"wasabi/internal/wasm"
)

// StreamTracer is the tracer ported to the event-stream surface: it consumes
// batches of packed records and reconstructs, line for line, the exact trace
// the callback Tracer produces. It doubles as the executable specification
// of the record format — the stream/callback parity test runs both tracers
// over the same workload and asserts identical output, which pins the
// per-kind record layouts, the i64 re-joins, the br_table end replay, and
// the continuation-record reassembly of call arguments.
type StreamTracer struct {
	Lines []string
	// MaxEvents bounds the trace; 0 means unbounded.
	MaxEvents int

	tbl     *analysis.EventTable
	scratch []analysis.Value // reused decode buffer for call/return vectors
}

// NewStreamTracer returns an unbounded stream tracer.
func NewStreamTracer() *StreamTracer { return &StreamTracer{} }

// StreamCaps declares that the tracer consumes every event class.
func (tr *StreamTracer) StreamCaps() analysis.Cap { return analysis.AllCaps }

// SetEventTable receives the decode table before events flow.
func (tr *StreamTracer) SetEventTable(tbl *analysis.EventTable) { tr.tbl = tbl }

func (tr *StreamTracer) emit(format string, args ...any) {
	if tr.MaxEvents > 0 && len(tr.Lines) >= tr.MaxEvents {
		return
	}
	tr.Lines = append(tr.Lines, fmt.Sprintf(format, args...))
}

// Events consumes one borrowed batch. Formats mirror Tracer method for
// method; every value is re-typed through the spec the record points at.
func (tr *StreamTracer) Events(batch []analysis.Event) {
	for i := 0; i < len(batch); {
		e := &batch[i]
		if e.Hook == analysis.EventCont {
			i++ // defensive: continuations are consumed by AppendValues below
			continue
		}
		// Synthesized records (br_table end replays without an end hook
		// spec) have no hook-table entry; every case that reaches spec
		// below is backed by a real hook.
		var spec *analysis.EventSpec
		if e.Hook != analysis.EventSynth {
			spec = tr.tbl.Spec(e)
		}
		l := e.Loc()
		switch e.Kind {
		case analysis.KindNop:
			tr.emit("%v nop", l)
		case analysis.KindUnreachable:
			tr.emit("%v unreachable", l)
		case analysis.KindIf:
			tr.emit("%v if %v", l, e.Aux != 0)
		case analysis.KindBr:
			tr.emit("%v br ->%v", l, analysis.Location{Func: l.Func, Instr: int(int32(uint32(e.Vals[0])))})
		case analysis.KindBrIf:
			tr.emit("%v br_if %v ->%v", l, e.Aux != 0,
				analysis.Location{Func: l.Func, Instr: int(int32(uint32(e.Vals[1])))})
		case analysis.KindBrTable:
			tr.emit("%v br_table [%d]", l, e.Aux)
		case analysis.KindBegin:
			tr.emit("%v begin %s", l, spec.Block)
		case analysis.KindEnd:
			// End records are self-describing (block kind code in Vals[0]),
			// so synthesized br_table replays decode like instrumented ends.
			tr.emit("%v end %s (begin %v)", l, analysis.BlockKindOf(uint32(e.Vals[0])),
				analysis.Location{Func: l.Func, Instr: int(int32(e.Aux))})
		case analysis.KindConst:
			tr.emit("%v const %v", l, val(spec.Types[0], e.Vals[0]))
		case analysis.KindDrop:
			tr.emit("%v drop %v", l, val(spec.Types[0], e.Vals[0]))
		case analysis.KindSelect:
			t := spec.Types[1]
			tr.emit("%v select %v %v %v", l, e.Aux != 0, val(t, e.Vals[0]), val(t, e.Vals[1]))
		case analysis.KindUnary:
			tr.emit("%v %s %v -> %v", l, spec.Op, val(spec.Types[0], e.Vals[0]), val(spec.Types[1], e.Vals[1]))
		case analysis.KindBinary:
			tr.emit("%v %s %v %v -> %v", l, spec.Op,
				val(spec.Types[0], e.Vals[0]), val(spec.Types[1], e.Vals[1]), val(spec.Types[2], e.Vals[2]))
		case analysis.KindLocal, analysis.KindGlobal:
			tr.emit("%v %s %d %v", l, spec.Op, e.Aux, val(spec.Types[1], e.Vals[0]))
		case analysis.KindLoad:
			m := analysis.MemArg{Addr: uint32(e.Vals[0]), Offset: e.Aux}
			tr.emit("%v %s @%d -> %v", l, spec.Op, m.EffAddr(), val(spec.Types[2], e.Vals[1]))
		case analysis.KindStore:
			m := analysis.MemArg{Addr: uint32(e.Vals[0]), Offset: e.Aux}
			tr.emit("%v %s @%d <- %v", l, spec.Op, m.EffAddr(), val(spec.Types[2], e.Vals[1]))
		case analysis.KindMemorySize:
			tr.emit("%v memory.size %d", l, e.Aux)
		case analysis.KindMemoryGrow:
			tr.emit("%v memory.grow %d %d", l, e.Aux, uint32(e.Vals[0]))
		case analysis.KindCall:
			if spec.Post {
				var vs []analysis.Value
				vs, i = tr.tbl.AppendValues(tr.scratch[:0], batch, i)
				tr.scratch = vs[:0]
				tr.emit("%v call_post %v", l, vs)
				continue
			}
			var vs []analysis.Value
			vs, i = tr.tbl.AppendValues(tr.scratch[:0], batch, i)
			tr.scratch = vs[:0]
			tr.emit("%v call_pre f%d args=%v tbl=%d", l, int(int32(e.Aux)), vs, int64(e.Vals[0]))
			continue
		case analysis.KindReturn:
			var vs []analysis.Value
			vs, i = tr.tbl.AppendValues(tr.scratch[:0], batch, i)
			tr.scratch = vs[:0]
			tr.emit("%v return %v", l, vs)
			continue
		case analysis.KindStart:
			tr.emit("%v start", l)
		}
		i++
	}
}

// val boxes a raw record slot into a typed Value.
func val(t wasm.ValType, bits uint64) analysis.Value { return analysis.Value{Type: t, Bits: bits} }

// Report prints the trace.
func (tr *StreamTracer) Report(w io.Writer) {
	for _, e := range tr.Lines {
		fmt.Fprintln(w, e)
	}
}
