package analyses_test

import (
	"strings"
	"testing"

	"wasabi"
	"wasabi/internal/analyses"
	"wasabi/internal/analysis"
	"wasabi/internal/builder"
	"wasabi/internal/interp"
	"wasabi/internal/wasm"
)

// runOn instruments m for the analysis and invokes entry(arg).
func runOn(t *testing.T, m *wasm.Module, a any, entry string, arg int32) {
	t.Helper()
	sess, err := wasabi.Analyze(m, a)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := sess.Instantiate("", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Invoke(entry, interp.I32(arg)); err != nil {
		t.Fatal(err)
	}
}

// loopModule: n iterations of mixed arithmetic with memory traffic.
func loopModule() *wasm.Module {
	b := builder.New()
	b.Memory(1)
	f := b.Func("main", builder.V(wasm.I32), builder.V(wasm.I32))
	i := f.Local(wasm.I32)
	acc := f.Local(wasm.I32)
	f.ForI32(i, func(fb *builder.FuncBuilder) { fb.Get(0) }, func(fb *builder.FuncBuilder) {
		fb.Get(acc).Get(i).Op(wasm.OpI32Add).Set(acc)
		fb.Get(acc).Get(i).Op(wasm.OpI32Xor).Set(acc)
		fb.Get(i).I32(4).Op(wasm.OpI32Mul).Get(acc).Store(wasm.OpI32Store, 0)
		fb.Get(i).I32(4).Op(wasm.OpI32Mul).Load(wasm.OpI32Load, 0).Set(acc)
	})
	f.Get(acc)
	f.Done()
	return b.Build()
}

func TestRegistryComplete(t *testing.T) {
	names := analyses.Names()
	if len(names) != 11 { // 8 paper analyses + empty + trace + origin
		t.Errorf("registry has %d analyses: %v", len(names), names)
	}
	for _, n := range names {
		a, err := analyses.New(n)
		if err != nil || a == nil {
			t.Errorf("New(%s): %v", n, err)
		}
	}
	if _, err := analyses.New("nope"); err == nil {
		t.Error("unknown name should fail")
	}
}

func TestEmptyImplementsEverything(t *testing.T) {
	if got := analysis.HooksOf(&analyses.Empty{}); got != analysis.AllHooks {
		t.Errorf("Empty hook set = %s", got)
	}
}

func TestInstructionMixCounts(t *testing.T) {
	mix := analyses.NewInstructionMix()
	runOn(t, loopModule(), mix, "main", 10)
	// 10 iterations × 2 adds? i32.add appears twice per iteration (acc+i,
	// i*4 twice is mul)... count exact: per iter: add ×1 (acc+i), xor ×1,
	// mul ×2, plus the loop increment add ×1 and bound check ge_s ×1.
	if got := mix.Counts["i32.xor"]; got != 10 {
		t.Errorf("i32.xor = %d, want 10", got)
	}
	if got := mix.Counts["i32.mul"]; got != 20 {
		t.Errorf("i32.mul = %d, want 20", got)
	}
	if got := mix.Counts["i32.store"]; got != 10 {
		t.Errorf("i32.store = %d, want 10", got)
	}
	if mix.Total() == 0 || mix.Counts["i32.const"] == 0 {
		t.Error("mix missed basic instructions")
	}
	var sb strings.Builder
	mix.Report(&sb)
	if !strings.Contains(sb.String(), "i32.add") {
		t.Error("report missing rows")
	}
}

func TestBlockProfileHotLoop(t *testing.T) {
	prof := analyses.NewBlockProfile()
	runOn(t, loopModule(), prof, "main", 25)
	hot := prof.Hottest(1)
	if len(hot) != 1 {
		t.Fatal("no blocks profiled")
	}
	// The hottest block must be the loop header: 25 body iterations plus
	// the final pass that only evaluates the exit condition.
	if got := prof.Counts[hot[0]]; got != 26 {
		t.Errorf("hottest block count = %d, want 26", got)
	}
	if prof.Kinds[hot[0]] != analysis.BlockLoop {
		t.Errorf("hottest block kind = %s, want loop", prof.Kinds[hot[0]])
	}
}

func TestInstructionCoverageGrows(t *testing.T) {
	cov := analyses.NewInstructionCoverage()
	m := loopModule()
	sess, err := wasabi.Analyze(m, cov)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := sess.Instantiate("", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Invoke("main", interp.I32(0)); err != nil {
		t.Fatal(err)
	}
	zeroIter := len(cov.Covered)
	if zeroIter == 0 {
		t.Fatal("no coverage at all")
	}
	if _, err := inst.Invoke("main", interp.I32(3)); err != nil {
		t.Fatal(err)
	}
	if len(cov.Covered) <= zeroIter {
		t.Errorf("coverage did not grow: %d -> %d", zeroIter, len(cov.Covered))
	}
	// Coverage is a set: running again must not change it.
	after := len(cov.Covered)
	if _, err := inst.Invoke("main", interp.I32(3)); err != nil {
		t.Fatal(err)
	}
	if len(cov.Covered) != after {
		t.Error("coverage is not idempotent")
	}
}

func TestBranchCoverageDirections(t *testing.T) {
	cov := analyses.NewBranchCoverage()
	m := loopModule()
	sess, err := wasabi.Analyze(m, cov)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := sess.Instantiate("", nil)
	if err != nil {
		t.Fatal(err)
	}
	// One iteration: the loop bound br_if sees false then true.
	if _, err := inst.Invoke("main", interp.I32(1)); err != nil {
		t.Fatal(err)
	}
	full, total := cov.FullyCovered()
	if total == 0 || full != total {
		t.Errorf("with 1 iteration the bound check sees both directions: %d/%d", full, total)
	}
}

func TestCallGraphEdges(t *testing.T) {
	b := builder.New()
	b.Table(1)
	leaf := b.Func("leaf", builder.V(wasm.I32), builder.V(wasm.I32))
	leaf.Get(0)
	leaf.Done()
	mid := b.Func("mid", builder.V(wasm.I32), builder.V(wasm.I32))
	mid.Get(0).Call(leaf.Index)
	mid.Done()
	b.Elem(0, leaf.Index)
	main := b.Func("main", builder.V(wasm.I32), builder.V(wasm.I32))
	main.Get(0).Call(mid.Index)
	main.Get(0).I32(0).CallIndirect(builder.V(wasm.I32), builder.V(wasm.I32))
	main.Op(wasm.OpI32Add)
	main.Done()
	m := b.Build()

	cg := analyses.NewCallGraph()
	runOn(t, m, cg, "main", 5)

	mainIdx, midIdx, leafIdx := int(main.Index), int(mid.Index), int(leaf.Index)
	if cg.Edges[[2]int{mainIdx, midIdx}] != 1 {
		t.Errorf("main->mid edge missing: %v", cg.Edges)
	}
	if cg.Edges[[2]int{midIdx, leafIdx}] != 1 {
		t.Errorf("mid->leaf edge missing: %v", cg.Edges)
	}
	indirectEdge := [2]int{mainIdx, leafIdx}
	if cg.Edges[indirectEdge] != 1 || !cg.Indirect[indirectEdge] {
		t.Errorf("indirect main->leaf edge missing or not marked: %v %v", cg.Edges, cg.Indirect)
	}
	reach := cg.Reachable(mainIdx)
	if !reach[leafIdx] || !reach[midIdx] {
		t.Errorf("reachability wrong: %v", reach)
	}
}

func TestTaintThroughMemoryAndCalls(t *testing.T) {
	b := builder.New()
	b.Memory(1)
	src := b.ImportFunc("env", "source", builder.Sig(nil, builder.V(wasm.I32)))
	sink := b.ImportFunc("env", "sink", builder.Sig(builder.V(wasm.I32), nil))
	id := b.Func("id", builder.V(wasm.I32), builder.V(wasm.I32))
	id.Get(0)
	id.Done()
	f := b.Func("main", builder.V(wasm.I32), builder.V(wasm.I32))
	v := f.Local(wasm.I32)
	// taint → through id() → through memory → sink
	f.Call(src).Call(id.Index).Set(v)
	f.I32(8).Get(v).Store(wasm.OpI32Store, 0)
	f.I32(8).Load(wasm.OpI32Load, 0).Call(sink)
	// clean value to the sink too
	f.I32(1).Call(sink)
	f.Get(0)
	f.Done()
	m := b.Build()

	taint := analyses.NewTaint()
	taint.Sources[int(src)] = true
	taint.Sinks[int(sink)] = true

	sess, err := wasabi.Analyze(m, taint)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := sess.Instantiate("", interp.Imports{"env": {
		"source": &interp.HostFunc{Type: builder.Sig(nil, builder.V(wasm.I32)),
			Fn: func(*interp.Instance, []interp.Value) ([]interp.Value, error) {
				return []interp.Value{interp.I32(99)}, nil
			}},
		"sink": &interp.HostFunc{Type: builder.Sig(builder.V(wasm.I32), nil),
			Fn: func(*interp.Instance, []interp.Value) ([]interp.Value, error) {
				return nil, nil
			}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Invoke("main", interp.I32(0)); err != nil {
		t.Fatal(err)
	}
	if len(taint.Flows) != 1 {
		t.Fatalf("flows = %d (%v), want exactly the memory-mediated one", len(taint.Flows), taint.Flows)
	}
	if taint.Flows[0].Sink != int(sink) || taint.Flows[0].ArgIdx != 0 {
		t.Errorf("flow = %+v", taint.Flows[0])
	}
}

func TestCryptominerSignature(t *testing.T) {
	miner := analyses.NewCryptominer()
	runOn(t, loopModule(), miner, "main", 100)
	if miner.Signature["i32.xor"] != 100 {
		t.Errorf("xor count = %d", miner.Signature["i32.xor"])
	}
	// 100 iterations is far below the volume threshold.
	if miner.Suspicious() {
		t.Error("small workload must not be flagged")
	}
}

func TestMemoryTraceCapAndLocality(t *testing.T) {
	tr := analyses.NewMemoryTrace()
	tr.Cap = 5
	runOn(t, loopModule(), tr, "main", 10)
	if len(tr.Accesses) != 5 {
		t.Errorf("cap not enforced: %d", len(tr.Accesses))
	}
	if tr.Dropped != 15 { // 10 loads + 10 stores - 5 kept
		t.Errorf("dropped = %d, want 15", tr.Dropped)
	}
	tr2 := analyses.NewMemoryTrace()
	runOn(t, loopModule(), tr2, "main", 10)
	if len(tr2.Accesses) != 20 {
		t.Errorf("unbounded trace = %d, want 20", len(tr2.Accesses))
	}
	// Sequential 4-byte strides are perfectly local at 64B.
	if loc := tr2.Strided(64); loc != 1 {
		t.Errorf("locality = %v", loc)
	}
}

func TestLinesOfCode(t *testing.T) {
	loc, err := analyses.LinesOfCode("cryptominer.go")
	if err != nil || loc < 10 || loc > 100 {
		t.Errorf("LinesOfCode = %d, %v", loc, err)
	}
	if _, err := analyses.LinesOfCode("missing.go"); err == nil {
		t.Error("missing file should error")
	}
}
