package analyses

import (
	"fmt"
	"io"

	"wasabi/internal/analysis"
)

// MemoryTrace records every memory access for later off-line analysis, e.g.
// detecting cache-unfriendly access patterns (Table 4 row 8). It implements
// the load and store hooks only.
type MemoryTrace struct {
	Accesses []MemAccess
	// Cap bounds the stored trace (0 = unbounded); further accesses are
	// counted in Dropped so summaries stay correct for long runs.
	Cap     int
	Dropped uint64
}

// MemAccess is one recorded load or store.
type MemAccess struct {
	Loc   analysis.Location
	Op    string
	Addr  uint64 // effective address
	Store bool
}

// NewMemoryTrace returns an unbounded memory tracer.
func NewMemoryTrace() *MemoryTrace { return &MemoryTrace{} }

func (a *MemoryTrace) record(acc MemAccess) {
	if a.Cap > 0 && len(a.Accesses) >= a.Cap {
		a.Dropped++
		return
	}
	a.Accesses = append(a.Accesses, acc)
}

// Load records one memory read.
func (a *MemoryTrace) Load(loc analysis.Location, op string, m analysis.MemArg, _ analysis.Value) {
	a.record(MemAccess{Loc: loc, Op: op, Addr: m.EffAddr()})
}

// Store records one memory write.
func (a *MemoryTrace) Store(loc analysis.Location, op string, m analysis.MemArg, _ analysis.Value) {
	a.record(MemAccess{Loc: loc, Op: op, Addr: m.EffAddr(), Store: true})
}

// Strided estimates the fraction of accesses whose address is within stride
// bytes of the previous access — a simple locality metric an off-line cache
// analysis would start from.
func (a *MemoryTrace) Strided(stride uint64) float64 {
	if len(a.Accesses) < 2 {
		return 1
	}
	near := 0
	for i := 1; i < len(a.Accesses); i++ {
		d := int64(a.Accesses[i].Addr) - int64(a.Accesses[i-1].Addr)
		if d < 0 {
			d = -d
		}
		if uint64(d) <= stride {
			near++
		}
	}
	return float64(near) / float64(len(a.Accesses)-1)
}

// Report summarizes the trace.
func (a *MemoryTrace) Report(w io.Writer) {
	loads, stores := 0, 0
	for _, acc := range a.Accesses {
		if acc.Store {
			stores++
		} else {
			loads++
		}
	}
	fmt.Fprintf(w, "loads: %d, stores: %d, dropped: %d, locality(64B): %.2f\n",
		loads, stores, a.Dropped, a.Strided(64))
}
