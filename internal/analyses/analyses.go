// Package analyses bundles the eight dynamic analyses of Table 4 in the
// paper, implemented against the high-level hook API. Each analysis lives in
// its own file; the sources are embedded so the Table 4 harness can report
// lines of code per analysis.
package analyses

import (
	"embed"
	"fmt"
	"sort"
	"strings"
)

//go:embed *.go
var sources embed.FS

// Registry maps analysis names to constructors, for the CLI and harnesses.
var Registry = map[string]func() any{
	"instruction-mix":      func() any { return NewInstructionMix() },
	"block-profile":        func() any { return NewBlockProfile() },
	"instruction-coverage": func() any { return NewInstructionCoverage() },
	"branch-coverage":      func() any { return NewBranchCoverage() },
	"call-graph":           func() any { return NewCallGraph() },
	"taint":                func() any { return NewTaint() },
	"cryptominer":          func() any { return NewCryptominer() },
	"memory-trace":         func() any { return NewMemoryTrace() },
	"empty":                func() any { return &Empty{} },
}

// Names returns the registered analysis names, sorted.
func Names() []string {
	names := make([]string, 0, len(Registry))
	for n := range Registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// New constructs a registered analysis by name.
func New(name string) (any, error) {
	ctor, ok := Registry[name]
	if !ok {
		return nil, fmt.Errorf("analyses: unknown analysis %q (have: %s)", name, strings.Join(Names(), ", "))
	}
	return ctor(), nil
}

// Empty is the empty analysis: it implements every hook with a no-op body.
// The paper's runtime-overhead measurements (RQ5, Figure 9) use it to
// isolate the instrumentation cost from analysis work.
type Empty struct{ full }

// LinesOfCode counts the non-blank, non-comment lines of one analysis
// source file, reproducing the LOC column of Table 4.
func LinesOfCode(file string) (int, error) {
	data, err := sources.ReadFile(file)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, line := range strings.Split(string(data), "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "//") {
			continue
		}
		n++
	}
	return n, nil
}
