package analyses

import (
	"fmt"
	"io"
	"strings"

	"wasabi/internal/analysis"
)

// Taint is a dynamic taint analysis with memory shadowing (Table 4 row 6,
// paper §2.3): it associates a taint with every value and tracks propagation
// through the operand stack, locals, globals, calls, and linear memory. A
// value becomes tainted when produced by a configured source function;
// a flow is reported when a tainted value reaches an argument of a sink
// function. The shadow state lives entirely on the host side, in a separate
// heap that never interferes with the program's memory (faithful execution,
// paper §2.3).
type Taint struct {
	// Sources and Sinks are function indices (original index space).
	Sources map[int]bool
	Sinks   map[int]bool

	// Flows records (source-tainted) values reaching sinks.
	Flows []Flow

	frames  []*taintFrame
	globals map[uint32]bool
	mem     map[uint64]bool // shadow memory, one taint bit per byte
}

// Flow is one detected source→sink flow.
type Flow struct {
	Sink   int
	ArgIdx int
	Loc    analysis.Location
}

type taintFrame struct {
	stack   []bool
	locals  map[uint32]bool
	retTnt  bool // taint of the returned value(s)
	calling struct {
		active bool
		taints []bool
		target int
	}
}

// NewTaint returns a taint analysis with no sources or sinks configured.
func NewTaint() *Taint {
	t := &Taint{
		Sources: make(map[int]bool),
		Sinks:   make(map[int]bool),
		globals: make(map[uint32]bool),
		mem:     make(map[uint64]bool),
	}
	t.frames = []*taintFrame{newTaintFrame()}
	return t
}

func newTaintFrame() *taintFrame {
	return &taintFrame{locals: make(map[uint32]bool)}
}

func (t *Taint) top() *taintFrame { return t.frames[len(t.frames)-1] }

func (f *taintFrame) push(v bool) { f.stack = append(f.stack, v) }

func (f *taintFrame) pop() bool {
	if len(f.stack) == 0 {
		return false // conservative: desynced shadow stack reads as clean
	}
	v := f.stack[len(f.stack)-1]
	f.stack = f.stack[:len(f.stack)-1]
	return v
}

// Stack-shape hooks: mirror the operand stack.

func (t *Taint) Const(analysis.Location, analysis.Value) { t.top().push(false) }

func (t *Taint) Drop(analysis.Location, analysis.Value) { t.top().pop() }

func (t *Taint) Select(_ analysis.Location, cond bool, _, _ analysis.Value) {
	f := t.top()
	f.pop() // condition
	second := f.pop()
	first := f.pop()
	if cond {
		f.push(first)
	} else {
		f.push(second)
	}
}

func (t *Taint) Unary(analysis.Location, string, analysis.Value, analysis.Value) {
	f := t.top()
	f.push(f.pop())
}

func (t *Taint) Binary(analysis.Location, string, analysis.Value, analysis.Value, analysis.Value) {
	f := t.top()
	b, a := f.pop(), f.pop()
	f.push(a || b)
}

// Locals and globals.

func (t *Taint) Local(_ analysis.Location, op string, idx uint32, _ analysis.Value) {
	f := t.top()
	switch op {
	case "local.get":
		f.push(f.locals[idx])
	case "local.set":
		f.locals[idx] = f.pop()
	case "local.tee":
		if len(f.stack) > 0 {
			f.locals[idx] = f.stack[len(f.stack)-1]
		}
	}
}

func (t *Taint) Global(_ analysis.Location, op string, idx uint32, _ analysis.Value) {
	f := t.top()
	if op == "global.get" {
		f.push(t.globals[idx])
	} else {
		t.globals[idx] = f.pop()
	}
}

// Memory shadowing: taints propagate through loads and stores byte-wise.

func (t *Taint) Load(_ analysis.Location, op string, m analysis.MemArg, _ analysis.Value) {
	f := t.top()
	f.pop() // address
	tainted := false
	for i := uint64(0); i < accessBytes(op); i++ {
		tainted = tainted || t.mem[m.EffAddr()+i]
	}
	f.push(tainted)
}

func (t *Taint) Store(_ analysis.Location, op string, m analysis.MemArg, _ analysis.Value) {
	f := t.top()
	v := f.pop()
	f.pop() // address
	for i := uint64(0); i < accessBytes(op); i++ {
		if v {
			t.mem[m.EffAddr()+i] = true
		} else {
			delete(t.mem, m.EffAddr()+i)
		}
	}
}

func (t *Taint) MemorySize(analysis.Location, uint32) { t.top().push(false) }

func (t *Taint) MemoryGrow(analysis.Location, uint32, uint32) {
	f := t.top()
	f.pop()
	f.push(false)
}

func (t *Taint) If(analysis.Location, bool) { t.top().pop() }

func (t *Taint) BrIf(analysis.Location, analysis.BranchTarget, bool) { t.top().pop() }

func (t *Taint) BrTable(analysis.Location, []analysis.BranchTarget, analysis.BranchTarget, uint32) {
	t.top().pop()
}

// Calls: argument taints transfer into the callee frame; result taints
// transfer back at call_post. Sink checking happens at call_pre.

func (t *Taint) CallPre(loc analysis.Location, target int, args []analysis.Value, tableIdx int64) {
	f := t.top()
	taints := make([]bool, len(args))
	for i := len(args) - 1; i >= 0; i-- {
		taints[i] = f.pop()
	}
	if tableIdx >= 0 {
		f.pop() // the table index operand
	}
	if t.Sinks[target] {
		for i, tainted := range taints {
			if tainted {
				t.Flows = append(t.Flows, Flow{Sink: target, ArgIdx: i, Loc: loc})
			}
		}
	}
	callee := newTaintFrame()
	for i, tnt := range taints {
		callee.locals[uint32(i)] = tnt
	}
	callee.calling.target = target
	t.frames = append(t.frames, callee)
}

func (t *Taint) Return(_ analysis.Location, results []analysis.Value) {
	f := t.top()
	ret := false
	for range results {
		ret = ret || f.pop()
	}
	f.retTnt = f.retTnt || ret
}

func (t *Taint) CallPost(_ analysis.Location, results []analysis.Value) {
	callee := t.top()
	if len(t.frames) > 1 {
		t.frames = t.frames[:len(t.frames)-1]
	}
	f := t.top()
	tainted := callee.retTnt || t.Sources[callee.calling.target]
	for range results {
		f.push(tainted)
	}
}

// TaintedBytes returns the current number of tainted shadow-memory bytes.
func (t *Taint) TaintedBytes() int { return len(t.mem) }

// Report writes all detected flows.
func (t *Taint) Report(w io.Writer) {
	for _, fl := range t.Flows {
		fmt.Fprintf(w, "flow: tainted arg %d reaches sink func %d (call at %s)\n", fl.ArgIdx, fl.Sink, fl.Loc)
	}
	fmt.Fprintf(w, "%d flows, %d tainted bytes\n", len(t.Flows), t.TaintedBytes())
}

// accessBytes derives the access width in bytes from the instruction name
// (e.g. i32.load8_s → 1, i64.load32_u → 4, f64.store → 8).
func accessBytes(op string) uint64 {
	switch {
	case strings.Contains(op, "8"):
		return 1
	case strings.Contains(op, "16"):
		return 2
	case strings.Contains(op[3:], "32"): // i64.load32_s / i64.store32
		return 4
	case strings.HasPrefix(op, "i32") || strings.HasPrefix(op, "f32"):
		return 4
	default:
		return 8
	}
}
