package analyses

import (
	"fmt"
	"io"

	"wasabi/internal/analysis"
)

// Tracer records every hook event as one formatted line, in order. It serves
// two purposes: as a debugging analysis (`wasabi-run -analysis trace` prints
// an execution trace), and as the executable specification of Wasabi's hook
// ordering — the golden tests in tracer_test.go pin down exactly when each
// hook fires relative to the others (e.g. call_pre before the callee's
// begin(function), end hooks of traversed blocks before a taken branch).
type Tracer struct {
	Events []string
	// MaxEvents bounds the trace; 0 means unbounded.
	MaxEvents int
}

// NewTracer returns an unbounded tracer.
func NewTracer() *Tracer { return &Tracer{} }

func (tr *Tracer) emit(format string, args ...any) {
	if tr.MaxEvents > 0 && len(tr.Events) >= tr.MaxEvents {
		return
	}
	tr.Events = append(tr.Events, fmt.Sprintf(format, args...))
}

func (tr *Tracer) Nop(l analysis.Location)         { tr.emit("%v nop", l) }
func (tr *Tracer) Unreachable(l analysis.Location) { tr.emit("%v unreachable", l) }
func (tr *Tracer) If(l analysis.Location, c bool)  { tr.emit("%v if %v", l, c) }
func (tr *Tracer) Br(l analysis.Location, t analysis.BranchTarget) {
	tr.emit("%v br ->%v", l, t.Location)
}
func (tr *Tracer) BrIf(l analysis.Location, t analysis.BranchTarget, c bool) {
	tr.emit("%v br_if %v ->%v", l, c, t.Location)
}
func (tr *Tracer) BrTable(l analysis.Location, tbl []analysis.BranchTarget, d analysis.BranchTarget, idx uint32) {
	tr.emit("%v br_table [%d]", l, idx)
}
func (tr *Tracer) Begin(l analysis.Location, k analysis.BlockKind) { tr.emit("%v begin %s", l, k) }
func (tr *Tracer) End(l analysis.Location, k analysis.BlockKind, b analysis.Location) {
	tr.emit("%v end %s (begin %v)", l, k, b)
}
func (tr *Tracer) Const(l analysis.Location, v analysis.Value) { tr.emit("%v const %v", l, v) }
func (tr *Tracer) Drop(l analysis.Location, v analysis.Value)  { tr.emit("%v drop %v", l, v) }
func (tr *Tracer) Select(l analysis.Location, c bool, a, b analysis.Value) {
	tr.emit("%v select %v %v %v", l, c, a, b)
}
func (tr *Tracer) Unary(l analysis.Location, op string, in, out analysis.Value) {
	tr.emit("%v %s %v -> %v", l, op, in, out)
}
func (tr *Tracer) Binary(l analysis.Location, op string, a, b, r analysis.Value) {
	tr.emit("%v %s %v %v -> %v", l, op, a, b, r)
}
func (tr *Tracer) Local(l analysis.Location, op string, i uint32, v analysis.Value) {
	tr.emit("%v %s %d %v", l, op, i, v)
}
func (tr *Tracer) Global(l analysis.Location, op string, i uint32, v analysis.Value) {
	tr.emit("%v %s %d %v", l, op, i, v)
}
func (tr *Tracer) Load(l analysis.Location, op string, m analysis.MemArg, v analysis.Value) {
	tr.emit("%v %s @%d -> %v", l, op, m.EffAddr(), v)
}
func (tr *Tracer) Store(l analysis.Location, op string, m analysis.MemArg, v analysis.Value) {
	tr.emit("%v %s @%d <- %v", l, op, m.EffAddr(), v)
}
func (tr *Tracer) MemorySize(l analysis.Location, p uint32) { tr.emit("%v memory.size %d", l, p) }
func (tr *Tracer) MemoryGrow(l analysis.Location, d, p uint32) {
	tr.emit("%v memory.grow %d %d", l, d, p)
}
func (tr *Tracer) CallPre(l analysis.Location, target int, args []analysis.Value, ti int64) {
	tr.emit("%v call_pre f%d args=%v tbl=%d", l, target, args, ti)
}
func (tr *Tracer) CallPost(l analysis.Location, results []analysis.Value) {
	tr.emit("%v call_post %v", l, results)
}
func (tr *Tracer) Return(l analysis.Location, results []analysis.Value) {
	tr.emit("%v return %v", l, results)
}
func (tr *Tracer) Start(l analysis.Location) { tr.emit("%v start", l) }

// Report prints the trace.
func (tr *Tracer) Report(w io.Writer) {
	for _, e := range tr.Events {
		fmt.Fprintln(w, e)
	}
}

func init() {
	Registry["trace"] = func() any { return NewTracer() }
}
