package analyses_test

import (
	"testing"

	"wasabi"
	"wasabi/internal/analyses"
	"wasabi/internal/analysis"
	"wasabi/internal/builder"
	"wasabi/internal/interp"
	"wasabi/internal/wasm"
)

// TestOriginOfZero: a zero produced by a subtraction is stored to memory,
// loaded back, and the analysis must point at the subtraction.
func TestOriginOfZero(t *testing.T) {
	b := builder.New()
	b.Memory(1)
	f := b.Func("main", builder.V(wasm.I32), builder.V(wasm.I32))
	// instr 0-2: x - x (always 0), produced at instr 2 (i32.sub)
	f.Get(0).Get(0).Op(wasm.OpI32Sub)
	v := f.Local(wasm.I32)
	f.Set(v)
	// store it at address 32, then load it back
	f.I32(32).Get(v).Store(wasm.OpI32Store, 0)
	f.I32(32).Load(wasm.OpI32Load, 0)
	f.Done()
	m := b.Build()

	o := analyses.NewOrigin()
	sess, err := wasabi.Analyze(m, o)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := sess.Instantiate("", nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := inst.Invoke("main", interp.I32(5))
	if err != nil {
		t.Fatal(err)
	}
	if interp.AsI32(res[0]) != 0 {
		t.Fatalf("result = %d", interp.AsI32(res[0]))
	}
	if len(o.ZeroLoads) != 1 {
		t.Fatalf("zero loads: %v", o.ZeroLoads)
	}
	for loadLoc, origin := range o.ZeroLoads {
		if origin.Instr != 2 { // the i32.sub
			t.Errorf("zero at %v traced to %v, want instr 2 (i32.sub)", loadLoc, origin)
		}
	}
}

// TestOriginThroughCall: origins propagate through a call's return value.
func TestOriginThroughCall(t *testing.T) {
	b := builder.New()
	b.Memory(1)
	zero := b.Func("zero", nil, builder.V(wasm.I32))
	zero.I32(0) // instr 0 in func 0: the const producing the zero
	zero.Done()
	f := b.Func("main", nil, builder.V(wasm.I32))
	f.I32(64).Call(zero.Index).Store(wasm.OpI32Store, 0)
	f.I32(64).Load(wasm.OpI32Load, 0)
	f.Done()
	m := b.Build()

	o := analyses.NewOrigin()
	sess, err := wasabi.Analyze(m, o)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := sess.Instantiate("", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Invoke("main"); err != nil {
		t.Fatal(err)
	}
	if len(o.ZeroLoads) != 1 {
		t.Fatalf("zero loads: %v", o.ZeroLoads)
	}
	for _, origin := range o.ZeroLoads {
		want := analysis.Location{Func: int(zero.Index), Instr: 0}
		if origin != want {
			t.Errorf("origin = %v, want %v (the i32.const 0 inside zero())", origin, want)
		}
	}
}
