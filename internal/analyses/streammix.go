package analyses

import (
	"wasabi/internal/analysis"
)

// StreamInstructionMix is the instruction-mix analysis ported to the
// event-stream surface: identical counts to InstructionMix, computed from
// packed records instead of callbacks. Kinds the callback version observes
// but does not count (begin/end/call_post/start) are ignored here the same
// way.
type StreamInstructionMix struct {
	Counts map[string]uint64
	tbl    *analysis.EventTable
}

// NewStreamInstructionMix returns an empty stream instruction-mix analysis.
func NewStreamInstructionMix() *StreamInstructionMix {
	return &StreamInstructionMix{Counts: make(map[string]uint64)}
}

// StreamCaps mirrors the callback version's full instrumentation shape.
func (a *StreamInstructionMix) StreamCaps() analysis.Cap { return analysis.AllCaps }

// SetEventTable receives the decode table before events flow.
func (a *StreamInstructionMix) SetEventTable(tbl *analysis.EventTable) { a.tbl = tbl }

// Events consumes one borrowed batch.
func (a *StreamInstructionMix) Events(batch []analysis.Event) {
	for i := range batch {
		e := &batch[i]
		if e.Hook == analysis.EventCont {
			continue
		}
		switch e.Kind {
		case analysis.KindNop:
			a.Counts["nop"]++
		case analysis.KindUnreachable:
			a.Counts["unreachable"]++
		case analysis.KindIf:
			a.Counts["if"]++
		case analysis.KindBr:
			a.Counts["br"]++
		case analysis.KindBrIf:
			a.Counts["br_if"]++
		case analysis.KindBrTable:
			a.Counts["br_table"]++
		case analysis.KindConst:
			a.Counts[a.tbl.Spec(e).Types[0].String()+".const"]++
		case analysis.KindDrop:
			a.Counts["drop"]++
		case analysis.KindSelect:
			a.Counts["select"]++
		case analysis.KindUnary, analysis.KindBinary,
			analysis.KindLocal, analysis.KindGlobal,
			analysis.KindLoad, analysis.KindStore:
			a.Counts[a.tbl.Spec(e).Op]++
		case analysis.KindMemorySize:
			a.Counts["memory.size"]++
		case analysis.KindMemoryGrow:
			a.Counts["memory.grow"]++
		case analysis.KindCall:
			spec := a.tbl.Spec(e)
			switch {
			case spec.Post: // not counted, like the callback version
			case spec.Indirect:
				a.Counts["call_indirect"]++
			default:
				a.Counts["call"]++
			}
		case analysis.KindReturn:
			a.Counts["return"]++
		}
	}
}

// Total returns the total executed-instruction count observed.
func (a *StreamInstructionMix) Total() uint64 {
	var t uint64
	for _, c := range a.Counts {
		t += c
	}
	return t
}
