package analyses

import (
	"fmt"
	"io"

	"wasabi/internal/analysis"
)

// InstructionCoverage records which instructions executed at least once,
// useful to assess test quality (Table 4 row 3). It uses all hooks so that
// every executed instruction is observed.
type InstructionCoverage struct {
	full
	Covered map[analysis.Location]bool
	info    *analysis.ModuleInfo
}

// NewInstructionCoverage returns an empty coverage analysis.
func NewInstructionCoverage() *InstructionCoverage {
	return &InstructionCoverage{Covered: make(map[analysis.Location]bool)}
}

// SetModuleInfo lets the analysis report per-function totals.
func (a *InstructionCoverage) SetModuleInfo(info *analysis.ModuleInfo) { a.info = info }

func (a *InstructionCoverage) mark(loc analysis.Location) {
	if loc.Instr >= 0 {
		a.Covered[loc] = true
	}
}

func (a *InstructionCoverage) Nop(loc analysis.Location)                         { a.mark(loc) }
func (a *InstructionCoverage) Unreachable(loc analysis.Location)                 { a.mark(loc) }
func (a *InstructionCoverage) If(loc analysis.Location, _ bool)                  { a.mark(loc) }
func (a *InstructionCoverage) Br(loc analysis.Location, _ analysis.BranchTarget) { a.mark(loc) }
func (a *InstructionCoverage) BrIf(loc analysis.Location, _ analysis.BranchTarget, _ bool) {
	a.mark(loc)
}
func (a *InstructionCoverage) BrTable(loc analysis.Location, _ []analysis.BranchTarget, _ analysis.BranchTarget, _ uint32) {
	a.mark(loc)
}
func (a *InstructionCoverage) Begin(loc analysis.Location, _ analysis.BlockKind) { a.mark(loc) }
func (a *InstructionCoverage) End(loc analysis.Location, _ analysis.BlockKind, _ analysis.Location) {
	a.mark(loc)
}
func (a *InstructionCoverage) Const(loc analysis.Location, _ analysis.Value) { a.mark(loc) }
func (a *InstructionCoverage) Drop(loc analysis.Location, _ analysis.Value)  { a.mark(loc) }
func (a *InstructionCoverage) Select(loc analysis.Location, _ bool, _, _ analysis.Value) {
	a.mark(loc)
}
func (a *InstructionCoverage) Unary(loc analysis.Location, _ string, _, _ analysis.Value) {
	a.mark(loc)
}
func (a *InstructionCoverage) Binary(loc analysis.Location, _ string, _, _, _ analysis.Value) {
	a.mark(loc)
}
func (a *InstructionCoverage) Local(loc analysis.Location, _ string, _ uint32, _ analysis.Value) {
	a.mark(loc)
}
func (a *InstructionCoverage) Global(loc analysis.Location, _ string, _ uint32, _ analysis.Value) {
	a.mark(loc)
}
func (a *InstructionCoverage) Load(loc analysis.Location, _ string, _ analysis.MemArg, _ analysis.Value) {
	a.mark(loc)
}
func (a *InstructionCoverage) Store(loc analysis.Location, _ string, _ analysis.MemArg, _ analysis.Value) {
	a.mark(loc)
}
func (a *InstructionCoverage) MemorySize(loc analysis.Location, _ uint32)    { a.mark(loc) }
func (a *InstructionCoverage) MemoryGrow(loc analysis.Location, _, _ uint32) { a.mark(loc) }
func (a *InstructionCoverage) CallPre(loc analysis.Location, _ int, _ []analysis.Value, _ int64) {
	a.mark(loc)
}
func (a *InstructionCoverage) Return(loc analysis.Location, _ []analysis.Value) { a.mark(loc) }

// BlockCovered marks the whole basic block [loc.Instr, end] covered from one
// probe event. Implementing it declares the analysis coverage-class
// (analysis.CapBlockCoverage): a static-analysis-enabled engine instruments
// one probe per CFG block instead of hooks at every instruction, which
// reaches the same covered set over non-structural instructions (`end` and
// `else` are block delimiters; per-instruction mode observes some of them
// via frame-exit events that block mode deliberately does not reconstruct).
func (a *InstructionCoverage) BlockCovered(loc analysis.Location, end int) {
	for i := loc.Instr; i <= end; i++ {
		a.mark(analysis.Location{Func: loc.Func, Instr: i})
	}
}

// CoveredInFunc returns how many distinct instruction locations were covered
// in the given function.
func (a *InstructionCoverage) CoveredInFunc(fn int) int {
	n := 0
	for loc := range a.Covered {
		if loc.Func == fn {
			n++
		}
	}
	return n
}

// Report writes per-function coverage counts.
func (a *InstructionCoverage) Report(w io.Writer) {
	perFunc := make(map[int]int)
	for loc := range a.Covered {
		perFunc[loc.Func]++
	}
	for fn := 0; a.info != nil && fn < len(a.info.FuncNames); fn++ {
		if n := perFunc[fn]; n > 0 {
			fmt.Fprintf(w, "%6d instr locations covered in %s\n", n, a.info.FuncName(fn))
		}
	}
}
