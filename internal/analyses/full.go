package analyses

import "wasabi/internal/analysis"

// full is an embeddable no-op implementation of every hook interface.
// Analyses that need "all" hooks (instruction mix, coverage, taint) embed it
// and override what they use; Empty embeds it unchanged.
type full struct{}

func (full) Nop(analysis.Location)                                                             {}
func (full) Unreachable(analysis.Location)                                                     {}
func (full) If(analysis.Location, bool)                                                        {}
func (full) Br(analysis.Location, analysis.BranchTarget)                                       {}
func (full) BrIf(analysis.Location, analysis.BranchTarget, bool)                               {}
func (full) BrTable(analysis.Location, []analysis.BranchTarget, analysis.BranchTarget, uint32) {}
func (full) Begin(analysis.Location, analysis.BlockKind)                                       {}
func (full) End(analysis.Location, analysis.BlockKind, analysis.Location)                      {}
func (full) Const(analysis.Location, analysis.Value)                                           {}
func (full) Drop(analysis.Location, analysis.Value)                                            {}
func (full) Select(analysis.Location, bool, analysis.Value, analysis.Value)                    {}
func (full) Unary(analysis.Location, string, analysis.Value, analysis.Value)                   {}
func (full) Binary(analysis.Location, string, analysis.Value, analysis.Value, analysis.Value)  {}
func (full) Local(analysis.Location, string, uint32, analysis.Value)                           {}
func (full) Global(analysis.Location, string, uint32, analysis.Value)                          {}
func (full) Load(analysis.Location, string, analysis.MemArg, analysis.Value)                   {}
func (full) Store(analysis.Location, string, analysis.MemArg, analysis.Value)                  {}
func (full) MemorySize(analysis.Location, uint32)                                              {}
func (full) MemoryGrow(analysis.Location, uint32, uint32)                                      {}
func (full) CallPre(analysis.Location, int, []analysis.Value, int64)                           {}
func (full) CallPost(analysis.Location, []analysis.Value)                                      {}
func (full) Return(analysis.Location, []analysis.Value)                                        {}
func (full) Start(analysis.Location)                                                           {}
