package analyses

import (
	"fmt"
	"io"
	"sort"

	"wasabi/internal/analysis"
)

// BlockProfile counts how often each function, block, and loop is executed —
// classic basic-block profiling, useful for finding hot code (Table 4 row 2).
// It implements only the begin hook, so selective instrumentation keeps the
// overhead to block entries.
type BlockProfile struct {
	Counts map[analysis.Location]uint64
	Kinds  map[analysis.Location]analysis.BlockKind
}

// NewBlockProfile returns an empty basic-block profiler.
func NewBlockProfile() *BlockProfile {
	return &BlockProfile{
		Counts: make(map[analysis.Location]uint64),
		Kinds:  make(map[analysis.Location]analysis.BlockKind),
	}
}

// Begin counts one entry of the block at loc.
func (a *BlockProfile) Begin(loc analysis.Location, kind analysis.BlockKind) {
	a.Counts[loc]++
	a.Kinds[loc] = kind
}

// Hottest returns the n most executed blocks.
func (a *BlockProfile) Hottest(n int) []analysis.Location {
	locs := make([]analysis.Location, 0, len(a.Counts))
	for loc := range a.Counts {
		locs = append(locs, loc)
	}
	sort.Slice(locs, func(i, j int) bool {
		if a.Counts[locs[i]] != a.Counts[locs[j]] {
			return a.Counts[locs[i]] > a.Counts[locs[j]]
		}
		return less(locs[i], locs[j])
	})
	if n < len(locs) {
		locs = locs[:n]
	}
	return locs
}

// Report writes the hottest blocks.
func (a *BlockProfile) Report(w io.Writer) {
	for _, loc := range a.Hottest(20) {
		fmt.Fprintf(w, "%12d  %-8s at %s\n", a.Counts[loc], a.Kinds[loc], loc)
	}
}

func less(a, b analysis.Location) bool {
	if a.Func != b.Func {
		return a.Func < b.Func
	}
	return a.Instr < b.Instr
}
