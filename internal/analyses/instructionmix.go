package analyses

import (
	"fmt"
	"io"
	"sort"

	"wasabi/internal/analysis"
)

// InstructionMix counts how often each kind of instruction executes, a basis
// for performance and security analyses (Table 4 row 1).
type InstructionMix struct {
	full
	Counts map[string]uint64
}

// NewInstructionMix returns an empty instruction-mix analysis.
func NewInstructionMix() *InstructionMix {
	return &InstructionMix{Counts: make(map[string]uint64)}
}

func (a *InstructionMix) bump(key string) { a.Counts[key]++ }

func (a *InstructionMix) Nop(analysis.Location)                               { a.bump("nop") }
func (a *InstructionMix) Unreachable(analysis.Location)                       { a.bump("unreachable") }
func (a *InstructionMix) If(analysis.Location, bool)                          { a.bump("if") }
func (a *InstructionMix) Br(analysis.Location, analysis.BranchTarget)         { a.bump("br") }
func (a *InstructionMix) BrIf(analysis.Location, analysis.BranchTarget, bool) { a.bump("br_if") }
func (a *InstructionMix) BrTable(analysis.Location, []analysis.BranchTarget, analysis.BranchTarget, uint32) {
	a.bump("br_table")
}
func (a *InstructionMix) Const(_ analysis.Location, v analysis.Value) {
	a.bump(v.Type.String() + ".const")
}
func (a *InstructionMix) Drop(analysis.Location, analysis.Value) { a.bump("drop") }
func (a *InstructionMix) Select(analysis.Location, bool, analysis.Value, analysis.Value) {
	a.bump("select")
}
func (a *InstructionMix) Unary(_ analysis.Location, op string, _, _ analysis.Value) { a.bump(op) }
func (a *InstructionMix) Binary(_ analysis.Location, op string, _, _, _ analysis.Value) {
	a.bump(op)
}
func (a *InstructionMix) Local(_ analysis.Location, op string, _ uint32, _ analysis.Value) {
	a.bump(op)
}
func (a *InstructionMix) Global(_ analysis.Location, op string, _ uint32, _ analysis.Value) {
	a.bump(op)
}
func (a *InstructionMix) Load(_ analysis.Location, op string, _ analysis.MemArg, _ analysis.Value) {
	a.bump(op)
}
func (a *InstructionMix) Store(_ analysis.Location, op string, _ analysis.MemArg, _ analysis.Value) {
	a.bump(op)
}
func (a *InstructionMix) MemorySize(analysis.Location, uint32)         { a.bump("memory.size") }
func (a *InstructionMix) MemoryGrow(analysis.Location, uint32, uint32) { a.bump("memory.grow") }
func (a *InstructionMix) CallPre(_ analysis.Location, _ int, _ []analysis.Value, tableIdx int64) {
	if tableIdx >= 0 {
		a.bump("call_indirect")
	} else {
		a.bump("call")
	}
}
func (a *InstructionMix) Return(analysis.Location, []analysis.Value) { a.bump("return") }

// Total returns the total executed-instruction count observed.
func (a *InstructionMix) Total() uint64 {
	var t uint64
	for _, c := range a.Counts {
		t += c
	}
	return t
}

// Report writes the mix sorted by descending count.
func (a *InstructionMix) Report(w io.Writer) {
	type kv struct {
		op string
		n  uint64
	}
	rows := make([]kv, 0, len(a.Counts))
	for op, n := range a.Counts {
		rows = append(rows, kv{op, n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].op < rows[j].op
	})
	for _, r := range rows {
		fmt.Fprintf(w, "%12d  %s\n", r.n, r.op)
	}
}
