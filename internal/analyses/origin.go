package analyses

import (
	"fmt"
	"io"
	"sort"

	"wasabi/internal/analysis"
)

// Origin tracks the provenance of values: for every value it records the
// instruction that produced it, propagating origins through locals, globals,
// and linear memory. When a "suspect" value (by default: a zero used as a
// divisor candidate or loaded from memory) is observed, the analysis can
// answer where it came from — the dynamic analysis the paper cites as
// "tracking the origin of null and undefined values" (Bond et al.,
// OOPSLA 2007). It is an extension beyond the paper's eight analyses and
// demonstrates shadow-state tracking at value granularity.
type Origin struct {
	// Shadow state: origin (producing location) per local/global/stack slot
	// and per memory word.
	frames  []*originFrame
	globals map[uint32]analysis.Location
	mem     map[uint64]analysis.Location

	// ZeroLoads records, for every load that produced a zero, the location
	// that last stored to the address (the "origin" of the zero), keyed by
	// the load location.
	ZeroLoads map[analysis.Location]analysis.Location
}

type originFrame struct {
	stack  []analysis.Location
	locals map[uint32]analysis.Location
	ret    analysis.Location
}

var unknownLoc = analysis.Location{Func: -1, Instr: -1}

// NewOrigin returns an empty origin-tracking analysis.
func NewOrigin() *Origin {
	o := &Origin{
		globals:   make(map[uint32]analysis.Location),
		mem:       make(map[uint64]analysis.Location),
		ZeroLoads: make(map[analysis.Location]analysis.Location),
	}
	o.frames = []*originFrame{newOriginFrame()}
	return o
}

func newOriginFrame() *originFrame {
	return &originFrame{locals: make(map[uint32]analysis.Location)}
}

func (o *Origin) top() *originFrame { return o.frames[len(o.frames)-1] }

func (f *originFrame) push(l analysis.Location) { f.stack = append(f.stack, l) }

func (f *originFrame) pop() analysis.Location {
	if len(f.stack) == 0 {
		return unknownLoc
	}
	l := f.stack[len(f.stack)-1]
	f.stack = f.stack[:len(f.stack)-1]
	return l
}

func (o *Origin) Const(loc analysis.Location, _ analysis.Value) { o.top().push(loc) }

func (o *Origin) Drop(analysis.Location, analysis.Value) { o.top().pop() }

func (o *Origin) Select(loc analysis.Location, cond bool, _, _ analysis.Value) {
	f := o.top()
	f.pop()
	second := f.pop()
	first := f.pop()
	if cond {
		f.push(first)
	} else {
		f.push(second)
	}
}

// Results of operations originate at the operation itself.

func (o *Origin) Unary(loc analysis.Location, _ string, _, _ analysis.Value) {
	f := o.top()
	f.pop()
	f.push(loc)
}

func (o *Origin) Binary(loc analysis.Location, _ string, _, _, _ analysis.Value) {
	f := o.top()
	f.pop()
	f.pop()
	f.push(loc)
}

func (o *Origin) Local(_ analysis.Location, op string, idx uint32, _ analysis.Value) {
	f := o.top()
	switch op {
	case "local.get":
		f.push(f.locals[idx])
	case "local.set":
		f.locals[idx] = f.pop()
	case "local.tee":
		if len(f.stack) > 0 {
			f.locals[idx] = f.stack[len(f.stack)-1]
		}
	}
}

func (o *Origin) Global(_ analysis.Location, op string, idx uint32, _ analysis.Value) {
	f := o.top()
	if op == "global.get" {
		f.push(o.globals[idx])
	} else {
		o.globals[idx] = f.pop()
	}
}

func (o *Origin) Load(loc analysis.Location, _ string, m analysis.MemArg, v analysis.Value) {
	f := o.top()
	f.pop() // address
	origin, ok := o.mem[m.EffAddr()]
	if !ok {
		origin = unknownLoc
	}
	if v.Bits == 0 {
		o.ZeroLoads[loc] = origin
	}
	f.push(origin)
}

func (o *Origin) Store(_ analysis.Location, _ string, m analysis.MemArg, _ analysis.Value) {
	f := o.top()
	origin := f.pop() // value origin
	f.pop()           // address
	o.mem[m.EffAddr()] = origin
}

func (o *Origin) MemorySize(loc analysis.Location, _ uint32) { o.top().push(loc) }

func (o *Origin) MemoryGrow(loc analysis.Location, _, _ uint32) {
	f := o.top()
	f.pop()
	f.push(loc)
}

func (o *Origin) If(analysis.Location, bool)                          { o.top().pop() }
func (o *Origin) BrIf(analysis.Location, analysis.BranchTarget, bool) { o.top().pop() }
func (o *Origin) BrTable(analysis.Location, []analysis.BranchTarget, analysis.BranchTarget, uint32) {
	o.top().pop()
}

func (o *Origin) CallPre(loc analysis.Location, _ int, args []analysis.Value, tableIdx int64) {
	f := o.top()
	origins := make([]analysis.Location, len(args))
	for i := len(args) - 1; i >= 0; i-- {
		origins[i] = f.pop()
	}
	if tableIdx >= 0 {
		f.pop()
	}
	callee := newOriginFrame()
	for i, or := range origins {
		callee.locals[uint32(i)] = or
	}
	callee.ret = unknownLoc
	o.frames = append(o.frames, callee)
}

func (o *Origin) Return(_ analysis.Location, results []analysis.Value) {
	f := o.top()
	for range results {
		f.ret = f.pop()
	}
}

func (o *Origin) CallPost(loc analysis.Location, results []analysis.Value) {
	callee := o.top()
	if len(o.frames) > 1 {
		o.frames = o.frames[:len(o.frames)-1]
	}
	f := o.top()
	origin := callee.ret
	if origin == unknownLoc {
		// Host functions (no return hook): the call site is the origin.
		origin = loc
	}
	for range results {
		f.push(origin)
	}
}

// Report lists zero-valued loads and where their value was produced.
func (o *Origin) Report(w io.Writer) {
	keys := make([]analysis.Location, 0, len(o.ZeroLoads))
	for k := range o.ZeroLoads {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return less(keys[i], keys[j]) })
	for _, k := range keys {
		origin := o.ZeroLoads[k]
		if origin == unknownLoc {
			fmt.Fprintf(w, "zero loaded at %v from untracked memory (never stored)\n", k)
		} else {
			fmt.Fprintf(w, "zero loaded at %v originates from %v\n", k, origin)
		}
	}
	fmt.Fprintf(w, "%d zero-valued loads observed\n", len(o.ZeroLoads))
}

func init() {
	Registry["origin"] = func() any { return NewOrigin() }
}
