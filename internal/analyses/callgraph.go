package analyses

import (
	"fmt"
	"io"
	"sort"

	"wasabi/internal/analysis"
)

// CallGraph builds a dynamic call graph, including indirect calls resolved
// to their actual targets and calls between internal functions (Table 4
// row 5). Useful for dead-code detection and reverse engineering.
type CallGraph struct {
	// Edges counts caller→callee transitions; Indirect marks edges observed
	// through call_indirect.
	Edges    map[[2]int]uint64
	Indirect map[[2]int]bool
	info     *analysis.ModuleInfo
}

// NewCallGraph returns an empty call-graph analysis.
func NewCallGraph() *CallGraph {
	return &CallGraph{
		Edges:    make(map[[2]int]uint64),
		Indirect: make(map[[2]int]bool),
	}
}

// SetModuleInfo is used to print function names in reports.
func (a *CallGraph) SetModuleInfo(info *analysis.ModuleInfo) { a.info = info }

// CallPre records one edge; the caller is the hook location's function.
func (a *CallGraph) CallPre(loc analysis.Location, target int, _ []analysis.Value, tableIdx int64) {
	edge := [2]int{loc.Func, target}
	a.Edges[edge]++
	if tableIdx >= 0 {
		a.Indirect[edge] = true
	}
}

// Callees returns the distinct callees observed for a function.
func (a *CallGraph) Callees(caller int) []int {
	var out []int
	for e := range a.Edges {
		if e[0] == caller {
			out = append(out, e[1])
		}
	}
	sort.Ints(out)
	return out
}

// Reachable returns all functions reachable from the given roots in the
// recorded graph (dynamically dead code = everything else).
func (a *CallGraph) Reachable(roots ...int) map[int]bool {
	seen := make(map[int]bool)
	work := append([]int(nil), roots...)
	for len(work) > 0 {
		f := work[len(work)-1]
		work = work[:len(work)-1]
		if seen[f] {
			continue
		}
		seen[f] = true
		work = append(work, a.Callees(f)...)
	}
	return seen
}

func (a *CallGraph) name(f int) string {
	if a.info != nil {
		return a.info.FuncName(f)
	}
	return fmt.Sprintf("func%d", f)
}

// Report writes the edges sorted by call count.
func (a *CallGraph) Report(w io.Writer) {
	type row struct {
		e [2]int
		n uint64
	}
	rows := make([]row, 0, len(a.Edges))
	for e, n := range a.Edges {
		rows = append(rows, row{e, n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].e[0] < rows[j].e[0]
	})
	for _, r := range rows {
		kind := ""
		if a.Indirect[r.e] {
			kind = " (indirect)"
		}
		fmt.Fprintf(w, "%10d  %s -> %s%s\n", r.n, a.name(r.e[0]), a.name(r.e[1]), kind)
	}
}
