package analyses_test

import (
	"strings"
	"testing"

	"wasabi"
	"wasabi/internal/analyses"
	"wasabi/internal/builder"
	"wasabi/internal/interp"
	"wasabi/internal/wasm"
)

// TestTraceGoldenOrdering pins the exact hook-ordering semantics on a small
// program exercising calls, branches, and block nesting. If this test breaks,
// the observable event model of the framework changed.
func TestTraceGoldenOrdering(t *testing.T) {
	b := builder.New()
	callee := b.Func("callee", builder.V(wasm.I32), builder.V(wasm.I32))
	callee.Get(0).I32(1).Op(wasm.OpI32Add)
	callee.Done()

	f := b.Func("main", builder.V(wasm.I32), builder.V(wasm.I32))
	f.Block()                   // instr 0
	f.Get(0)                    // 1
	f.BrIf(0)                   // 2 : taken when arg != 0
	f.Op(wasm.OpNop)            // 3
	f.End()                     // 4
	f.Get(0).Call(callee.Index) // 5, 6
	f.Done()                    // 7 implicit-return end

	tr := analyses.NewTracer()
	sess, err := wasabi.Analyze(b.Build(), tr)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := sess.Instantiate("", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Invoke("main", interp.I32(5)); err != nil {
		t.Fatal(err)
	}

	want := []string{
		"1:-1 begin function", // main entry (function index 1)
		"1:0 begin block",
		"1:1 local.get 0 5:i32",
		"1:2 br_if true ->1:5",      // resolved target: after the block's end
		"1:4 end block (begin 1:0)", // traversed-block end, fired on the taken branch
		"1:5 local.get 0 5:i32",
		"1:6 call_pre f0 args=[5:i32] tbl=-1",
		"0:-1 begin function", // callee entry, after call_pre
		"0:0 local.get 0 5:i32",
		"0:1 const 1:i32",
		"0:2 i32.add 5:i32 1:i32 -> 6:i32",
		"0:3 return [6:i32]", // implicit return at callee's final end
		"0:3 end function (begin 0:-1)",
		"1:6 call_post [6:i32]", // after the callee completed
		"1:7 return [6:i32]",
		"1:7 end function (begin 1:-1)",
	}
	got := tr.Events
	if len(got) != len(want) {
		t.Fatalf("trace has %d events, want %d:\n%s", len(got), len(want), strings.Join(got, "\n"))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d:\n got %q\nwant %q", i, got[i], want[i])
		}
	}
}

// TestTraceNotTakenBranch checks the complementary path: a br_if that is not
// taken must NOT fire the traversed-end hooks, and the block must end via
// its normal end instead.
func TestTraceNotTakenBranch(t *testing.T) {
	b := builder.New()
	f := b.Func("main", builder.V(wasm.I32), builder.V(wasm.I32))
	f.Block()
	f.Get(0)
	f.BrIf(0)
	f.Op(wasm.OpNop)
	f.End()
	f.Get(0)
	f.Done()

	tr := analyses.NewTracer()
	sess, err := wasabi.Analyze(b.Build(), tr)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := sess.Instantiate("", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Invoke("main", interp.I32(0)); err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(tr.Events, "\n")
	if !strings.Contains(joined, "br_if false") {
		t.Fatalf("missing br_if event:\n%s", joined)
	}
	if !strings.Contains(joined, "0:3 nop") {
		t.Errorf("fallthrough nop missing:\n%s", joined)
	}
	// Exactly one end-of-block event (the natural one at instr 4).
	if got := strings.Count(joined, "end block"); got != 1 {
		t.Errorf("expected exactly 1 block end, got %d:\n%s", got, joined)
	}
}
