package faithfulness

import (
	"math/rand"
	"testing"

	"wasabi"
	"wasabi/internal/analyses"
	"wasabi/internal/analysis"
	"wasabi/internal/core"
	"wasabi/internal/interp"
	"wasabi/internal/synthapp"
	"wasabi/internal/validate"
)

// TestRandomModulesRandomHookSubsets is the widest property sweep in the
// repository: randomly generated diverse modules instrumented with random
// hook subsets must (a) still validate and (b) compute identical results.
// This covers interactions between hook kinds that the per-kind tests miss
// (e.g. br_if end-blocks combined with call hooks on the same instruction
// stream).
func TestRandomModulesRandomHookSubsets(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 24; trial++ {
		seed := uint64(trial)*7 + 1
		m := synthapp.Generate(synthapp.Config{TargetBytes: 25_000, Seed: seed, Helpers: 12})
		want, err := synthapp.Run(m, 40)
		if err != nil {
			t.Fatalf("trial %d: original run: %v", trial, err)
		}

		set := analysis.HookSet(rng.Uint32()) & analysis.AllHooks
		sess, err := wasabi.AnalyzeWithOptions(m, &analyses.Empty{}, core.Options{Hooks: set})
		if err != nil {
			t.Fatalf("trial %d (hooks %s): instrument: %v", trial, set, err)
		}
		if err := validate.Module(sess.Module()); err != nil {
			t.Fatalf("trial %d (hooks %s): instrumented module invalid: %v", trial, set, err)
		}
		inst, err := sess.Instantiate("", nil)
		if err != nil {
			t.Fatalf("trial %d (hooks %s): instantiate: %v", trial, set, err)
		}
		res, err := inst.Invoke("main", interp.I32(40))
		if err != nil {
			t.Fatalf("trial %d (hooks %s): run: %v", trial, set, err)
		}
		if got := interp.AsI32(res[0]); got != want {
			t.Errorf("trial %d (hooks %s): result %d != original %d", trial, set, got, want)
		}
	}
}

// TestRandomModulesWithRecordingAnalysis runs random modules under an
// analysis that implements every hook (not the no-op one), checking that a
// busy analysis never perturbs results either.
func TestRandomModulesWithRecordingAnalysis(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		seed := uint64(trial)*13 + 3
		m := synthapp.Generate(synthapp.Config{TargetBytes: 20_000, Seed: seed, Helpers: 8})
		want, err := synthapp.Run(m, 32)
		if err != nil {
			t.Fatal(err)
		}
		mix := analyses.NewInstructionMix()
		sess, err := wasabi.Analyze(m, mix)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := sess.Instantiate("", nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := inst.Invoke("main", interp.I32(32))
		if err != nil {
			t.Fatal(err)
		}
		if got := interp.AsI32(res[0]); got != want {
			t.Errorf("trial %d: result %d != %d", trial, got, want)
		}
		if mix.Total() == 0 {
			t.Errorf("trial %d: analysis observed nothing", trial)
		}
	}
}
