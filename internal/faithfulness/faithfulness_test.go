// Package faithfulness holds the RQ2 evaluation of the paper: instrumented
// programs must behave exactly like the originals. It runs the full
// PolyBench suite and the synthetic applications original vs. fully
// instrumented (with the empty analysis), compares the printed results and
// return values, and validates every instrumented binary — the roles played
// in the paper by the PolyBench output check, the Unreal reference frames,
// and wasm-validate.
package faithfulness

import (
	"testing"

	"wasabi"
	"wasabi/internal/analyses"
	"wasabi/internal/analysis"
	"wasabi/internal/core"
	"wasabi/internal/interp"
	"wasabi/internal/polybench"
	"wasabi/internal/synthapp"
	"wasabi/internal/validate"
)

const problemSize = 10

// TestPolyBenchFaithfulness runs all 30 kernels original vs fully
// instrumented and compares checksums bit-for-bit (and against the Go
// reference evaluation).
func TestPolyBenchFaithfulness(t *testing.T) {
	for _, k := range polybench.Kernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			m := k.Module(problemSize)
			want := k.Reference(problemSize)

			orig, _, err := polybench.Run(m, nil)
			if err != nil {
				t.Fatalf("original run: %v", err)
			}
			if orig != want {
				t.Fatalf("original checksum %v != reference %v", orig, want)
			}

			sess, err := wasabi.AnalyzeWithOptions(m, &analyses.Empty{}, core.Options{Hooks: analysis.AllHooks})
			if err != nil {
				t.Fatalf("instrument: %v", err)
			}
			if err := validate.Module(sess.Module()); err != nil {
				t.Fatalf("instrumented module fails validation: %v", err)
			}
			var printed []float64
			inst, err := sess.Instantiate("", polybench.HostImports(&printed))
			if err != nil {
				t.Fatalf("instantiate instrumented: %v", err)
			}
			res, err := inst.Invoke("kernel")
			if err != nil {
				t.Fatalf("run instrumented: %v", err)
			}
			got := interp.AsF64(res[0])
			if got != want {
				t.Errorf("instrumented checksum %v != original %v", got, want)
			}
			if len(printed) != 1 || printed[0] != want {
				t.Errorf("instrumented printed %v, want [%v]", printed, want)
			}
		})
	}
}

// TestPolyBenchPerHookFaithfulness runs a representative kernel under every
// single-hook selective instrumentation and checks the result each time
// (instrumentations for different instruction kinds must be independent,
// paper §2.4.2).
func TestPolyBenchPerHookFaithfulness(t *testing.T) {
	k, ok := polybench.ByName("gemm")
	if !ok {
		t.Fatal("gemm missing")
	}
	m := k.Module(8)
	want := k.Reference(8)
	for kind := analysis.HookKind(0); int(kind) < analysis.NumKinds; kind++ {
		kind := kind
		if kind == analysis.KindBlockProbe {
			continue // probes need a static plan; exercised just below
		}
		t.Run(kind.String(), func(t *testing.T) {
			sess, err := wasabi.AnalyzeWithOptions(m, &analyses.Empty{},
				core.Options{Hooks: analysis.Set(kind)})
			if err != nil {
				t.Fatalf("instrument: %v", err)
			}
			if err := validate.Module(sess.Module()); err != nil {
				t.Fatalf("validation: %v", err)
			}
			inst, err := sess.Instantiate("", polybench.HostImports(nil))
			if err != nil {
				t.Fatalf("instantiate: %v", err)
			}
			res, err := inst.Invoke("kernel")
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if got := interp.AsF64(res[0]); got != want {
				t.Errorf("checksum %v != %v with only %s instrumented", got, want, kind)
			}
		})
	}

	// Block-probe instrumentation (the static plan's coverage collapse) is
	// the one hook kind the loop above cannot drive: probes only exist where
	// a plan places them. Run the kernel through a static-analysis engine
	// with a coverage analysis and check the checksum is untouched.
	t.Run("block_probe", func(t *testing.T) {
		eng, err := wasabi.NewEngine(wasabi.WithStaticAnalysis())
		if err != nil {
			t.Fatal(err)
		}
		ca, err := eng.InstrumentFor(m, analyses.NewInstructionCoverage())
		if err != nil {
			t.Fatalf("instrument: %v", err)
		}
		if err := validate.Module(ca.Module()); err != nil {
			t.Fatalf("validation: %v", err)
		}
		sess, err := ca.NewSession(analyses.NewInstructionCoverage())
		if err != nil {
			t.Fatalf("session: %v", err)
		}
		defer sess.Close()
		inst, err := sess.Instantiate("", polybench.HostImports(nil))
		if err != nil {
			t.Fatalf("instantiate: %v", err)
		}
		res, err := inst.Invoke("kernel")
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		if got := interp.AsF64(res[0]); got != want {
			t.Errorf("checksum %v != %v under block-probe instrumentation", got, want)
		}
	})
}

// TestSynthAppFaithfulness checks the diverse synthetic application computes
// identical results fully instrumented, across several seeds.
func TestSynthAppFaithfulness(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		m := synthapp.Generate(synthapp.Config{TargetBytes: 50_000, Seed: seed})
		want, err := synthapp.Run(m, 64)
		if err != nil {
			t.Fatalf("seed %d: original: %v", seed, err)
		}
		sess, err := wasabi.AnalyzeWithOptions(m, &analyses.Empty{}, core.Options{Hooks: analysis.AllHooks})
		if err != nil {
			t.Fatalf("seed %d: instrument: %v", seed, err)
		}
		if err := validate.Module(sess.Module()); err != nil {
			t.Fatalf("seed %d: validation: %v", seed, err)
		}
		inst, err := sess.Instantiate("", nil)
		if err != nil {
			t.Fatalf("seed %d: instantiate: %v", seed, err)
		}
		res, err := inst.Invoke("main", interp.I32(64))
		if err != nil {
			t.Fatalf("seed %d: run: %v", seed, err)
		}
		if got := interp.AsI32(res[0]); got != want {
			t.Errorf("seed %d: instrumented result %d != original %d", seed, got, want)
		}
	}
}

// TestRealAnalysesPreserveBehavior runs a kernel under each bundled analysis
// (not just the empty one) and checks the checksum is unchanged — analyses
// must observe, never interfere.
func TestRealAnalysesPreserveBehavior(t *testing.T) {
	k, _ := polybench.ByName("atax")
	m := k.Module(10)
	want := k.Reference(10)
	for _, name := range analyses.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			a, err := analyses.New(name)
			if err != nil {
				t.Fatal(err)
			}
			sess, err := wasabi.Analyze(m, a)
			if err != nil {
				t.Fatalf("instrument: %v", err)
			}
			inst, err := sess.Instantiate("", polybench.HostImports(nil))
			if err != nil {
				t.Fatalf("instantiate: %v", err)
			}
			res, err := inst.Invoke("kernel")
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if got := interp.AsF64(res[0]); got != want {
				t.Errorf("analysis %s changed checksum: %v != %v", name, got, want)
			}
		})
	}
}
