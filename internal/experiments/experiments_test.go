package experiments

import (
	"strings"
	"testing"
)

// smallConfig keeps the experiment smoke tests fast.
func smallConfig() Config {
	return Config{PolyN: 8, PSPDFBytes: 30_000, UnrealBytes: 60_000, Reps: 1, RunN: 16}
}

func TestTable4(t *testing.T) {
	var sb strings.Builder
	if err := Table4(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"instruction-mix", "taint", "cryptominer", "binary", "begin"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 4 output missing %q", want)
		}
	}
}

func TestRQ2(t *testing.T) {
	var sb strings.Builder
	if err := RQ2(&sb, smallConfig()); err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "0 failed") {
		t.Errorf("RQ2 output: %s", sb.String())
	}
}

func TestTable5(t *testing.T) {
	var sb strings.Builder
	if err := Table5(&sb, smallConfig()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "PolyBench (avg.)") {
		t.Errorf("Table 5 output: %s", sb.String())
	}
}

func TestFig8(t *testing.T) {
	var sb strings.Builder
	if err := Fig8(&sb, smallConfig()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// 21 hook rows plus "all".
	if got := strings.Count(out, "%"); got < 22*3 {
		t.Errorf("Fig 8 output too small (%d data points):\n%s", got, out)
	}
	if !strings.Contains(out, "all") {
		t.Error("Fig 8 missing the all row")
	}
}

func TestMono(t *testing.T) {
	var sb strings.Builder
	if err := Mono(&sb, smallConfig()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "PolyBench range") {
		t.Errorf("Mono output: %s", sb.String())
	}
}

func TestFig9(t *testing.T) {
	var sb strings.Builder
	if err := Fig9(&sb, smallConfig(), []string{"gemm"}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "all") || !strings.Contains(out, "binary") {
		t.Errorf("Fig 9 output: %s", out)
	}
}

func TestWorkloadConstruction(t *testing.T) {
	wls := PolyBenchWorkloads(8)
	if len(wls) != 30 {
		t.Errorf("PolyBench workloads: %d", len(wls))
	}
	for _, wl := range wls {
		if len(wl.Bytes) == 0 || wl.Mod == nil || wl.Name == "" {
			t.Errorf("bad workload %+v", wl.Name)
		}
	}
	app := AppWorkload("x", 50_000, 1)
	if len(app.Bytes) < 25_000 {
		t.Errorf("app workload too small: %d", len(app.Bytes))
	}
}

func TestStats(t *testing.T) {
	m, s := meanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if m != 5 || s != 2 {
		t.Errorf("meanStd = %v, %v", m, s)
	}
	if g := geomean([]float64{1, 4}); g != 2 {
		t.Errorf("geomean = %v", g)
	}
	if m, s := meanStd(nil); m != 0 || s != 0 {
		t.Error("empty meanStd")
	}
}
