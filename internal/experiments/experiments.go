// Package experiments regenerates the tables and figures of the paper's
// evaluation (Section 4): Table 4 (analyses and their size), the RQ2
// faithfulness check, Table 5 (instrumentation time and throughput),
// Figure 8 (code-size increase per hook), the §4.5 on-demand
// monomorphization counts, and Figure 9 (runtime overhead per hook). The
// cmd/wasabi-bench binary and the repository benchmarks are thin wrappers
// around this package.
package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"wasabi/internal/analyses"
	"wasabi/internal/analysis"
	"wasabi/internal/binary"
	"wasabi/internal/core"
	"wasabi/internal/interp"
	"wasabi/internal/polybench"
	wruntime "wasabi/internal/runtime"
	"wasabi/internal/synthapp"
	"wasabi/internal/validate"
	"wasabi/internal/wasm"
)

// Config scales the experiments. The defaults are laptop-friendly; pass
// -full to cmd/wasabi-bench for the paper-scale binary sizes.
type Config struct {
	// PolyN is the PolyBench problem size used when kernels are executed.
	PolyN int32
	// PSPDFBytes / UnrealBytes are the synthetic-app binary sizes standing
	// in for PSPDFKit (paper: 9.6 MB) and the Unreal Engine (39.5 MB).
	PSPDFBytes  int
	UnrealBytes int
	// Reps is the number of timing repetitions (paper: 20).
	Reps int
	// RunN is the argument to the synthetic apps' main when executed.
	RunN int32
}

// DefaultConfig returns the laptop-scale defaults.
func DefaultConfig() Config {
	return Config{
		PolyN:       16,
		PSPDFBytes:  1 << 20, // 1 MiB stand-in
		UnrealBytes: 4 << 20, // 4 MiB stand-in
		Reps:        5,
		RunN:        512,
	}
}

// PaperScale returns the full paper-scale sizes (slower).
func PaperScale() Config {
	c := DefaultConfig()
	c.PSPDFBytes = 9_600_000
	c.UnrealBytes = 39_500_000
	c.Reps = 20
	return c
}

// Workload is a named module with its encoded size.
type Workload struct {
	Name  string
	Mod   *wasm.Module
	Bytes []byte
}

// PolyBenchWorkloads builds all 30 kernels at problem size n.
func PolyBenchWorkloads(n int32) []Workload {
	var out []Workload
	for _, k := range polybench.Kernels() {
		m := k.Module(n)
		data, err := binary.Encode(m)
		if err != nil {
			panic(err)
		}
		out = append(out, Workload{Name: k.Name, Mod: m, Bytes: data})
	}
	return out
}

// AppWorkload builds one synthetic application of the given size.
func AppWorkload(name string, bytes int, seed uint64) Workload {
	m := synthapp.Generate(synthapp.Config{TargetBytes: bytes, Seed: seed})
	data, err := binary.Encode(m)
	if err != nil {
		panic(err)
	}
	return Workload{Name: name, Mod: m, Bytes: data}
}

// hookKinds is the x-axis of Figures 8 and 9 (paper order).
var hookKinds = []analysis.HookKind{
	analysis.KindNop, analysis.KindUnreachable, analysis.KindMemorySize,
	analysis.KindMemoryGrow, analysis.KindSelect, analysis.KindDrop,
	analysis.KindLoad, analysis.KindStore, analysis.KindCall,
	analysis.KindReturn, analysis.KindConst, analysis.KindUnary,
	analysis.KindBinary, analysis.KindGlobal, analysis.KindLocal,
	analysis.KindBegin, analysis.KindEnd, analysis.KindIf,
	analysis.KindBr, analysis.KindBrIf, analysis.KindBrTable,
}

// Table4 prints the bundled analyses with their hook sets and lines of code
// (paper Table 4).
func Table4(w io.Writer) error {
	rows := []struct {
		name, file string
	}{
		{"instruction-mix", "instructionmix.go"},
		{"block-profile", "blockprofile.go"},
		{"instruction-coverage", "coverage.go"},
		{"branch-coverage", "branchcoverage.go"},
		{"call-graph", "callgraph.go"},
		{"taint", "taint.go"},
		{"cryptominer", "cryptominer.go"},
		{"memory-trace", "memtrace.go"},
	}
	fmt.Fprintf(w, "Table 4: analyses built on top of Wasabi\n")
	fmt.Fprintf(w, "%-22s %-55s %5s\n", "Analysis", "Hooks", "LOC")
	for _, r := range rows {
		a, err := analyses.New(r.name)
		if err != nil {
			return err
		}
		loc, err := analyses.LinesOfCode(r.file)
		if err != nil {
			return err
		}
		hooks := analysis.HooksOf(a).String()
		fmt.Fprintf(w, "%-22s %-55s %5d\n", r.name, hooks, loc)
	}
	return nil
}

// RQ2 re-runs the faithfulness evaluation: every PolyBench kernel and
// several synthetic apps, original vs fully instrumented, plus validation
// of every instrumented binary.
func RQ2(w io.Writer, cfg Config) error {
	fmt.Fprintf(w, "RQ2: faithfulness of execution\n")
	pass, fail := 0, 0
	check := func(name string, ok bool, detail string) {
		if ok {
			pass++
			return
		}
		fail++
		fmt.Fprintf(w, "  FAIL %-20s %s\n", name, detail)
	}
	for _, k := range polybench.Kernels() {
		m := k.Module(cfg.PolyN)
		want := k.Reference(cfg.PolyN)
		inst, md, err := core.Instrument(m, core.Options{Hooks: analysis.AllHooks})
		if err != nil {
			check(k.Name, false, err.Error())
			continue
		}
		check(k.Name+"/validate", validate.Module(inst) == nil, "instrumented module invalid")
		got, err := runInstrumentedKernel(inst, md)
		check(k.Name+"/result", err == nil && got == want,
			fmt.Sprintf("got %v want %v err %v", got, want, err))
	}
	for seed := uint64(1); seed <= 3; seed++ {
		name := fmt.Sprintf("synthapp-%d", seed)
		m := synthapp.Generate(synthapp.Config{TargetBytes: 40_000, Seed: seed})
		want, err := synthapp.Run(m, cfg.RunN)
		if err != nil {
			check(name, false, err.Error())
			continue
		}
		inst, md, err := core.Instrument(m, core.Options{Hooks: analysis.AllHooks})
		if err != nil {
			check(name, false, err.Error())
			continue
		}
		check(name+"/validate", validate.Module(inst) == nil, "instrumented module invalid")
		got, err := runInstrumentedApp(inst, md, cfg.RunN)
		check(name+"/result", err == nil && got == want,
			fmt.Sprintf("got %v want %v err %v", got, want, err))
	}
	fmt.Fprintf(w, "  %d checks passed, %d failed\n", pass, fail)
	if fail > 0 {
		return fmt.Errorf("rq2: %d faithfulness checks failed", fail)
	}
	return nil
}

// Table5 measures instrumentation time and throughput (paper Table 5), and
// the single-threaded vs parallel ratio reported in §4.4.
func Table5(w io.Writer, cfg Config) error {
	poly := PolyBenchWorkloads(cfg.PolyN)
	pspdf := AppWorkload("pspdfkit-scale", cfg.PSPDFBytes, 11)
	unreal := AppWorkload("unreal-scale", cfg.UnrealBytes, 13)

	fmt.Fprintf(w, "Table 5: time to instrument (full instrumentation, %d reps)\n", cfg.Reps)
	fmt.Fprintf(w, "%-18s %14s %16s %10s\n", "Program", "Binary size", "Runtime", "MB/s")

	// PolyBench row: mean over the 30 programs.
	var sizes, times []float64
	for _, wl := range poly {
		t, _ := timeInstrument(wl.Mod, cfg.Reps, 0)
		sizes = append(sizes, float64(len(wl.Bytes)))
		times = append(times, t.Seconds())
	}
	meanSize, sdSize := meanStd(sizes)
	meanTime, sdTime := meanStd(times)
	fmt.Fprintf(w, "%-18s %7.0f±%-4.0f B %9.2f±%.2fms %10.2f\n",
		"PolyBench (avg.)", meanSize, sdSize, meanTime*1e3, sdTime*1e3, meanSize/meanTime/1e6)

	for _, wl := range []Workload{pspdf, unreal} {
		var ts []float64
		for r := 0; r < cfg.Reps; r++ {
			t, _ := timeInstrument(wl.Mod, 1, 0)
			ts = append(ts, t.Seconds())
		}
		mt, st := meanStd(ts)
		fmt.Fprintf(w, "%-18s %12d B %9.0f±%.0fms %10.2f\n",
			wl.Name, len(wl.Bytes), mt*1e3, st*1e3, float64(len(wl.Bytes))/mt/1e6)
	}

	// Parallelization ratio on the largest binary (paper: 15.5/26.5 ≈ 0.58).
	tPar, _ := timeInstrument(unreal.Mod, 1, 0)
	tSeq, _ := timeInstrument(unreal.Mod, 1, 1)
	fmt.Fprintf(w, "parallel/single-threaded on %s: %.2f (paper: ~0.58 on 2 cores)\n",
		unreal.Name, tPar.Seconds()/tSeq.Seconds())
	return nil
}

// Fig8 measures binary-size increase per instrumented hook (paper Figure 8).
func Fig8(w io.Writer, cfg Config) error {
	poly := PolyBenchWorkloads(cfg.PolyN)
	pspdf := AppWorkload("pspdfkit-scale", cfg.PSPDFBytes, 11)
	unreal := AppWorkload("unreal-scale", cfg.UnrealBytes, 13)

	fmt.Fprintf(w, "Figure 8: binary size increase per hook (%% of original size)\n")
	fmt.Fprintf(w, "%-12s %15s %15s %15s\n", "Hook", "PolyBench(mean)", "pspdfkit-scale", "unreal-scale")

	row := func(label string, set analysis.HookSet) error {
		var polyIncs []float64
		for _, wl := range poly {
			inc, err := sizeIncrease(wl, set)
			if err != nil {
				return err
			}
			polyIncs = append(polyIncs, inc)
		}
		meanPoly, _ := meanStd(polyIncs)
		incP, err := sizeIncrease(pspdf, set)
		if err != nil {
			return err
		}
		incU, err := sizeIncrease(unreal, set)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-12s %14.1f%% %14.1f%% %14.1f%%\n", label, meanPoly, incP, incU)
		return nil
	}
	for _, k := range hookKinds {
		if err := row(k.String(), analysis.Set(k)); err != nil {
			return err
		}
	}
	return row("all", analysis.AllHooks)
}

// Mono reports the on-demand monomorphization hook counts of §4.5 and the
// eager bound they avoid.
func Mono(w io.Writer, cfg Config) error {
	fmt.Fprintf(w, "On-demand monomorphization (paper 4.5)\n")
	fmt.Fprintf(w, "%-18s %12s %14s %22s\n", "Program", "Hooks", "Max call args", "Eager call-hook bound")
	report := func(wl Workload) error {
		_, md, err := core.Instrument(wl.Mod, core.Options{Hooks: analysis.AllHooks})
		if err != nil {
			return err
		}
		maxArgs := 0
		for i := range wl.Mod.Types {
			if n := len(wl.Mod.Types[i].Params); n > maxArgs {
				maxArgs = n
			}
		}
		eager := math.Pow(4, float64(maxArgs))
		fmt.Fprintf(w, "%-18s %12d %14d %22.0f\n", wl.Name, len(md.Hooks), maxArgs, eager)
		return nil
	}
	poly := PolyBenchWorkloads(cfg.PolyN)
	lo, hi := poly[0], poly[0]
	loMd, _, _ := hookCount(lo)
	hiMd := loMd
	for _, wl := range poly[1:] {
		n, _, err := hookCount(wl)
		if err != nil {
			return err
		}
		if n < loMd {
			lo, loMd = wl, n
		}
		if n > hiMd {
			hi, hiMd = wl, n
		}
	}
	fmt.Fprintf(w, "PolyBench range: %d (%s) to %d (%s) hooks\n", loMd, lo.Name, hiMd, hi.Name)
	if err := report(AppWorkload("pspdfkit-scale", cfg.PSPDFBytes, 11)); err != nil {
		return err
	}
	return report(AppWorkload("unreal-scale", cfg.UnrealBytes, 13))
}

func hookCount(wl Workload) (int, *core.Metadata, error) {
	_, md, err := core.Instrument(wl.Mod, core.Options{Hooks: analysis.AllHooks})
	if err != nil {
		return 0, nil, err
	}
	return len(md.Hooks), md, nil
}

// Fig9 measures the runtime of instrumented programs relative to the
// uninstrumented runtime, per hook, with the empty analysis (paper
// Figure 9). kernels limits the PolyBench subset (nil = a representative
// five) to keep the harness fast.
func Fig9(w io.Writer, cfg Config, kernels []string) error {
	if kernels == nil {
		kernels = []string{"gemm", "atax", "jacobi-2d", "floyd-warshall", "cholesky"}
	}
	type target struct {
		name string
		mod  *wasm.Module
		run  func(inst *interp.Instance) error
	}
	var targets []target
	for _, name := range kernels {
		k, ok := polybench.ByName(name)
		if !ok {
			return fmt.Errorf("fig9: unknown kernel %q", name)
		}
		m := k.Module(cfg.PolyN)
		targets = append(targets, target{name: name, mod: m, run: func(inst *interp.Instance) error {
			_, err := inst.Invoke("kernel")
			return err
		}})
	}
	app := AppWorkload("synthapp", 150_000, 11)
	runN := cfg.RunN
	targets = append(targets, target{name: app.Name, mod: app.Mod, run: func(inst *interp.Instance) error {
		_, err := inst.Invoke("main", interp.I32(runN))
		return err
	}})

	fmt.Fprintf(w, "Figure 9: relative runtime per hook (instrumented / original, empty analysis)\n")
	fmt.Fprintf(w, "%-12s %12s %12s\n", "Hook", "PolyBench", "synthapp")

	// Baselines.
	base := make([]float64, len(targets))
	for i, tg := range targets {
		d, err := timeRun(tg.mod, nil, tg.run, cfg.Reps)
		if err != nil {
			return fmt.Errorf("fig9: baseline %s: %w", tg.name, err)
		}
		base[i] = d.Seconds()
	}

	row := func(label string, set analysis.HookSet) error {
		var polyRatios []float64
		var appRatio float64
		for i, tg := range targets {
			inst, md, err := core.Instrument(tg.mod, core.Options{Hooks: set})
			if err != nil {
				return err
			}
			d, err := timeRunInstrumented(inst, md, tg.run, cfg.Reps)
			if err != nil {
				return fmt.Errorf("fig9: %s under %s: %w", tg.name, label, err)
			}
			ratio := d.Seconds() / base[i]
			if tg.name == "synthapp" {
				appRatio = ratio
			} else {
				polyRatios = append(polyRatios, ratio)
			}
		}
		fmt.Fprintf(w, "%-12s %11.2fx %11.2fx\n", label, geomean(polyRatios), appRatio)
		return nil
	}
	for _, k := range hookKinds {
		if err := row(k.String(), analysis.Set(k)); err != nil {
			return err
		}
	}
	return row("all", analysis.AllHooks)
}

// --- helpers ---

// instantiateWithEmpty instantiates an instrumented module with the empty
// analysis providing the hook imports, merged with any program imports.
func instantiateWithEmpty(m *wasm.Module, md *core.Metadata, extra interp.Imports) (*interp.Instance, error) {
	rt := wruntime.New(md, &analyses.Empty{})
	merged := interp.Imports{}
	for k, v := range extra {
		merged[k] = v
	}
	for k, v := range rt.Imports() {
		merged[k] = v
	}
	return interp.Instantiate(m, merged)
}

func timeInstrument(m *wasm.Module, reps, parallelism int) (time.Duration, error) {
	best := time.Duration(math.MaxInt64)
	for i := 0; i < reps; i++ {
		start := time.Now()
		_, _, err := core.Instrument(m, core.Options{
			Hooks: analysis.AllHooks, Parallelism: parallelism, SkipValidation: true,
		})
		if err != nil {
			return 0, err
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best, nil
}

func sizeIncrease(wl Workload, set analysis.HookSet) (float64, error) {
	inst, _, err := core.Instrument(wl.Mod, core.Options{Hooks: set, SkipValidation: true})
	if err != nil {
		return 0, err
	}
	data, err := binary.Encode(inst)
	if err != nil {
		return 0, err
	}
	return 100 * (float64(len(data))/float64(len(wl.Bytes)) - 1), nil
}

func runInstrumentedKernel(m *wasm.Module, md *core.Metadata) (float64, error) {
	inst, err := instantiateWithEmpty(m, md, polybench.HostImports(nil))
	if err != nil {
		return 0, err
	}
	res, err := inst.Invoke("kernel")
	if err != nil {
		return 0, err
	}
	return interp.AsF64(res[0]), nil
}

func runInstrumentedApp(m *wasm.Module, md *core.Metadata, n int32) (int32, error) {
	inst, err := instantiateWithEmpty(m, md, nil)
	if err != nil {
		return 0, err
	}
	res, err := inst.Invoke("main", interp.I32(n))
	if err != nil {
		return 0, err
	}
	return interp.AsI32(res[0]), nil
}

func timeRun(m *wasm.Module, _ *core.Metadata, run func(*interp.Instance) error, reps int) (time.Duration, error) {
	imports := polybench.HostImports(nil)
	best := time.Duration(math.MaxInt64)
	// One untimed warmup rep stabilizes CPU frequency and allocator state;
	// without it the first-measured configuration reads systematically slow.
	for i := 0; i < reps+1; i++ {
		inst, err := interp.Instantiate(m, imports)
		if err != nil {
			return 0, err
		}
		start := time.Now()
		if err := run(inst); err != nil {
			return 0, err
		}
		if d := time.Since(start); i > 0 && d < best {
			best = d
		}
	}
	return best, nil
}

func timeRunInstrumented(m *wasm.Module, md *core.Metadata, run func(*interp.Instance) error, reps int) (time.Duration, error) {
	best := time.Duration(math.MaxInt64)
	for i := 0; i < reps+1; i++ {
		inst, err := instantiateWithEmpty(m, md, polybench.HostImports(nil))
		if err != nil {
			return 0, err
		}
		start := time.Now()
		if err := run(inst); err != nil {
			return 0, err
		}
		if d := time.Since(start); i > 0 && d < best {
			best = d
		}
	}
	return best, nil
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}

func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}
