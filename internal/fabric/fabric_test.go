package fabric

import (
	"errors"
	"sync"
	"testing"
	"time"

	"wasabi/internal/analysis"
)

// fakeSource feeds scripted batches through the Exchange contract and
// counts the spares handed back, so tests can assert the buffer economy
// without a real emitter.
type fakeSource struct {
	mu      sync.Mutex
	batches [][]analysis.Event
	next    int
	spares  int
	closed  chan struct{}
}

func newFakeSource(batches ...[]analysis.Event) *fakeSource {
	return &fakeSource{batches: batches, closed: make(chan struct{})}
}

func (s *fakeSource) Exchange(spare []analysis.Event) ([]analysis.Event, bool) {
	s.mu.Lock()
	if spare != nil {
		s.spares++
	}
	if s.next < len(s.batches) {
		b := s.batches[s.next]
		s.next++
		s.mu.Unlock()
		return b, true
	}
	s.mu.Unlock()
	<-s.closed
	return nil, false
}

func (s *fakeSource) BatchSize() int { return 8 }

func (s *fakeSource) end() { close(s.closed) }

// sparesFed returns how many replacement buffers the distributor handed
// back.
func (s *fakeSource) sparesFed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.spares
}

// mkBatch builds a batch whose records carry seq in Aux, so delivery order
// and identity are checkable.
func mkBatch(seq uint32, n int) []analysis.Event {
	b := make([]analysis.Event, n)
	for i := range b {
		b[i].Aux = seq
		b[i].Instr = int32(i)
	}
	return b
}

func collect(t *testing.T, sub *Subscription) []analysis.Event {
	t.Helper()
	var got []analysis.Event
	for {
		batch, ok := sub.Next()
		if !ok {
			return got
		}
		got = append(got, batch...)
	}
}

func TestBroadcastParity(t *testing.T) {
	const batches, perBatch = 16, 4
	src := newFakeSource()
	var want []analysis.Event
	for i := 0; i < batches; i++ {
		b := mkBatch(uint32(i), perBatch)
		src.batches = append(src.batches, b)
		want = append(want, b...)
	}
	f := New(src)
	const subscribers = 4
	subs := make([]*Subscription, subscribers)
	for i := range subs {
		var err error
		if subs[i], err = f.Subscribe(2, false); err != nil {
			t.Fatalf("Subscribe: %v", err)
		}
	}
	results := make([][]analysis.Event, subscribers)
	var wg sync.WaitGroup
	for i, sub := range subs {
		wg.Add(1)
		go func(i int, sub *Subscription) {
			defer wg.Done()
			results[i] = collect(t, sub)
		}(i, sub)
	}
	src.end()
	wg.Wait()
	for i, got := range results {
		if len(got) != len(want) {
			t.Fatalf("subscriber %d: %d records, want %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("subscriber %d: record %d = %+v, want %+v", i, j, got[j], want[j])
			}
		}
		if d := subs[i].Dropped(); d != 0 {
			t.Errorf("subscriber %d: Dropped() = %d on a Block subscription", i, d)
		}
	}
	<-f.Done()
}

func TestSlowDropSubscriberNeverStalls(t *testing.T) {
	const batches = 32
	src := newFakeSource()
	for i := 0; i < batches; i++ {
		src.batches = append(src.batches, mkBatch(uint32(i), 4))
	}
	f := New(src)
	// The Drop subscriber has a 1-batch queue and no consumer at all.
	slow, err := f.Subscribe(1, true)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	fast, err := f.Subscribe(2, false)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	done := make(chan []analysis.Event, 1)
	go func() {
		var got []analysis.Event
		for {
			batch, ok := fast.Next()
			if !ok {
				done <- got
				return
			}
			got = append(got, batch...)
		}
	}()
	src.end()
	select {
	case got := <-done:
		if len(got) != batches*4 {
			t.Fatalf("block peer saw %d records, want %d", len(got), batches*4)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("block peer stalled behind an undrained Drop subscriber")
	}
	if slow.Dropped() == 0 {
		t.Error("undrained 1-deep Drop subscription reported no drops")
	}
	// The undrained queue still holds references; Close releases them.
	if err := slow.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestSubscribeAfterCloseFails(t *testing.T) {
	src := newFakeSource()
	f := New(src)
	src.end()
	<-f.Done()
	if _, err := f.Subscribe(1, false); !errors.Is(err, ErrClosed) {
		t.Fatalf("Subscribe after end = %v, want ErrClosed", err)
	}
}

func TestDoubleSubscriptionClose(t *testing.T) {
	src := newFakeSource(mkBatch(0, 2))
	f := New(src)
	sub, err := f.Subscribe(1, false)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	if err := sub.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := sub.Close(); !errors.Is(err, ErrSubscriptionClosed) {
		t.Fatalf("second Close = %v, want ErrSubscriptionClosed", err)
	}
	if _, ok := sub.Next(); ok {
		t.Fatal("Next after Close delivered a batch")
	}
	src.end()
	<-f.Done()
}

// TestKillUnwedgesBlockedDistributor covers the teardown path: a Block
// subscriber that stops draining wedges the distributor mid-delivery, and
// Kill must still return promptly.
func TestKillUnwedgesBlockedDistributor(t *testing.T) {
	src := newFakeSource()
	for i := 0; i < 8; i++ {
		src.batches = append(src.batches, mkBatch(uint32(i), 2))
	}
	f := New(src)
	if _, err := f.Subscribe(1, false); err != nil { // never drained
		t.Fatalf("Subscribe: %v", err)
	}
	done := make(chan struct{})
	go func() {
		f.Kill()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Kill did not unwedge the distributor")
	}
	src.end() // release the fake source's end channel for cleanliness
}

// TestBufferEconomy pins the retain/replace contract: every retained batch
// is compensated by a spare fed back through Exchange.
func TestBufferEconomy(t *testing.T) {
	const batches = 12
	src := newFakeSource()
	for i := 0; i < batches; i++ {
		src.batches = append(src.batches, mkBatch(uint32(i), 2))
	}
	f := New(src)
	sub, err := f.Subscribe(2, false)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	go func() {
		src.end()
	}()
	if got := collect(t, sub); len(got) != batches*2 {
		t.Fatalf("got %d records, want %d", len(got), batches*2)
	}
	<-f.Done()
	// One spare per Exchange call that returned a batch, plus the eager
	// first spare: every call fed one back.
	if fed := src.sparesFed(); fed < batches {
		t.Errorf("distributor fed %d spares for %d retained batches", fed, batches)
	}
}
