// Package fabric broadcasts one session's event stream to N subscribers.
//
// A Fabric sits between the per-session Emitter (one producer, one stream of
// filled batch buffers) and any number of Subscriptions. One distributor
// goroutine pulls each batch off the emitter with the retain/recycle
// Exchange hand-off and enqueues a refcounted reference to it on every
// subscriber's ring — no per-subscriber copy: all subscribers read the same
// batch memory, and the buffer returns to circulation when the last holder
// releases it.
//
// Backpressure is per subscriber. A Block subscription makes the distributor
// wait for room in that subscriber's queue — lossless, and (transitively,
// once the emitter's own ring fills) it stalls the producer exactly like a
// lagging single-consumer Block stream. A Drop subscription never delays
// anyone: when its queue is full the batch is skipped for that subscriber
// and the miss is counted on it. A slow Drop subscriber therefore cannot
// stall the producer or its peers; only Block subscribers buy losslessness
// with shared backpressure.
//
// Buffer economy: for every batch it retains, the distributor feeds a spare
// buffer back into the emitter's free ring (Exchange does both in one step),
// so the producer's ring population — and its 0 allocs/op steady state — is
// unaffected by how long subscribers hold batches. Released buffers land in
// the fabric's spare pool and become the replacement for a later batch;
// after warm-up the pool reaches the working-set size and distribution
// allocates nothing either.
package fabric

import (
	"errors"
	"sync"
	"sync/atomic"

	"wasabi/internal/analysis"
)

// ErrClosed reports Fabric.Subscribe after the producer side ended the
// stream (Close, session teardown, or a terminal stream error): a late
// subscriber could only ever observe silence, which is never what the
// caller meant.
var ErrClosed = errors.New("wasabi: fabric is closed to new subscribers")

// ErrSubscriptionClosed reports a second Subscription.Close: the first
// Close already released the subscription's in-flight batches, so a double
// close is a lifecycle bug on the caller's side, not a no-op.
var ErrSubscriptionClosed = errors.New("wasabi: subscription is already closed")

// Source is the producer-side hand-off a Fabric distributes from,
// satisfied by *runtime.Emitter.
type Source interface {
	// Exchange feeds spare into the free ring and returns the next filled
	// batch, retained, blocking until one is flushed or the stream ends
	// (ok == false).
	Exchange(spare []analysis.Event) ([]analysis.Event, bool)
	// BatchSize is the capacity replacement buffers must be created with.
	BatchSize() int
}

// batchRef is one retained batch in flight: the buffer plus the number of
// holders (enqueued subscriptions, the distributor while it enqueues, a
// consumer between Next calls). The last release returns the buffer to the
// fabric's spare pool.
type batchRef struct {
	buf  []analysis.Event
	refs atomic.Int32
	f    *Fabric
}

func (r *batchRef) release() {
	if r.refs.Add(-1) == 0 {
		r.f.recycle(r)
	}
}

// Fabric fans one emitter's batch stream out to N subscriptions.
type Fabric struct {
	src Source

	mu     sync.Mutex
	subs   []*Subscription
	spares [][]analysis.Event // released buffers, future Exchange replacements
	refs   []*batchRef        // released refs, reused for later batches
	closed bool               // no new subscribers

	stop    chan struct{} // Kill: abandon distribution without draining
	stopped atomic.Bool
	done    chan struct{} // closed when the distributor has exited
}

// New starts distributing src. Batches flushed while no subscription exists
// are retained and immediately released (the stream does not wait for its
// first subscriber); subscribe before running the producer to observe a
// complete sequence.
func New(src Source) *Fabric {
	f := &Fabric{
		src:  src,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go f.run()
	return f
}

// Subscribe adds a subscriber with its own queue of up to queue batches and
// its own backpressure policy (drop == false blocks the distributor when
// the queue is full; drop == true skips and counts). Fails with ErrClosed
// once the stream has ended.
func (f *Fabric) Subscribe(queue int, drop bool) (*Subscription, error) {
	if queue < 1 {
		queue = 1
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, ErrClosed
	}
	s := &Subscription{
		f:    f,
		ch:   make(chan *batchRef, queue),
		drop: drop,
		gone: make(chan struct{}),
	}
	f.subs = append(f.subs, s)
	return s, nil
}

// Kill abandons distribution without draining: the distributor releases
// what it holds and exits, and every subscription's channel is closed
// (consumers still drain what was already queued). The teardown path —
// Session.Close uses it so closing a session cannot hang on a subscriber
// that stopped draining. Idempotent; waits for the distributor to exit, so
// the source must already be closed (or closing) when Kill is called.
func (f *Fabric) Kill() {
	if f.stopped.CompareAndSwap(false, true) {
		close(f.stop)
	}
	<-f.done
}

// Done is closed when the distributor has exited: every batch the stream
// will ever carry is either enqueued on the surviving subscriptions or
// released.
func (f *Fabric) Done() <-chan struct{} { return f.done }

// run is the distributor: one batch in, one reference out per subscriber.
func (f *Fabric) run() {
	defer close(f.done)
	// The eager first spare keeps the emitter's ring population intact from
	// the very first retained batch (Exchange pushes it before receiving).
	spare := make([]analysis.Event, 0, f.src.BatchSize())
	var scratch []*Subscription
	for {
		buf, ok := f.src.Exchange(spare)
		if !ok {
			f.finish()
			return
		}
		spare = f.takeSpare()

		f.mu.Lock()
		scratch = append(scratch[:0], f.subs...)
		f.mu.Unlock()

		ref := f.newRef(buf)
		// Holders: every subscriber we will try, plus the distributor itself
		// (released after the loop). Counting up front — not incrementally as
		// sends succeed — keeps the count correct even when a consumer
		// receives and releases before the loop finishes.
		ref.refs.Store(int32(len(scratch)) + 1)
		aborted := false
		for i, s := range scratch {
			if s.drop {
				select {
				case s.ch <- ref:
				default:
					s.dropped.Add(uint64(len(buf)))
					ref.release()
				}
				continue
			}
			select {
			case s.ch <- ref:
			case <-s.gone:
				ref.release()
			case <-f.stop:
				// Teardown while blocked on a subscriber that stopped
				// draining: drop this delivery and the remaining ones.
				for range scratch[i:] {
					ref.release()
				}
				aborted = true
			}
			if aborted {
				break
			}
		}
		ref.release()
		if aborted {
			f.finish()
			return
		}
	}
}

// finish ends the subscriber side: no new subscriptions, and every
// subscription channel is closed so consumers observe end-of-stream once
// they drain what is queued.
func (f *Fabric) finish() {
	f.mu.Lock()
	f.closed = true
	subs := f.subs
	f.subs = nil
	f.mu.Unlock()
	for _, s := range subs {
		close(s.ch)
	}
}

// takeSpare pops a released buffer for the next Exchange, falling back to an
// allocation while the pool is below the stream's working-set size.
func (f *Fabric) takeSpare() []analysis.Event {
	f.mu.Lock()
	if n := len(f.spares); n > 0 {
		buf := f.spares[n-1]
		f.spares = f.spares[:n-1]
		f.mu.Unlock()
		return buf
	}
	f.mu.Unlock()
	return make([]analysis.Event, 0, f.src.BatchSize())
}

func (f *Fabric) newRef(buf []analysis.Event) *batchRef {
	f.mu.Lock()
	if n := len(f.refs); n > 0 {
		r := f.refs[n-1]
		f.refs = f.refs[:n-1]
		f.mu.Unlock()
		r.buf = buf //borrowcheck:ignore -- refcounted retention IS the fabric's job; the buffer returns via release/recycle
		return r
	}
	f.mu.Unlock()
	return &batchRef{buf: buf, f: f} //borrowcheck:ignore -- see above
}

// recycle returns a fully released batch to the pools.
func (f *Fabric) recycle(r *batchRef) {
	buf := r.buf
	r.buf = nil
	f.mu.Lock()
	f.spares = append(f.spares, buf)
	f.refs = append(f.refs, r)
	f.mu.Unlock()
}

// removeSub unlinks a closed subscription so the distributor stops
// delivering to it.
func (f *Fabric) removeSub(s *Subscription) {
	f.mu.Lock()
	for i, x := range f.subs {
		if x == s {
			f.subs = append(f.subs[:i], f.subs[i+1:]...)
			break
		}
	}
	f.mu.Unlock()
}

// Subscription is one subscriber's end of a Fabric: the same Next/Serve
// consumption surface as a single-consumer Stream. Exactly one goroutine
// may consume a subscription, and Close belongs to that goroutine too.
type Subscription struct {
	f       *Fabric
	ch      chan *batchRef
	drop    bool
	gone    chan struct{} // closed by Close; unblocks a blocked distributor
	closed  bool
	prev    *batchRef // batch last handed out by Next
	dropped atomic.Uint64
}

// Next returns the next batch, blocking until the distributor delivers one
// or the stream ends (ok == false). The batch is BORROWED and read-only: it
// is shared with every other subscriber and recycled after the next Next
// call releases this subscription's hold on it.
func (s *Subscription) Next() ([]analysis.Event, bool) {
	if s.prev != nil {
		s.prev.release()
		s.prev = nil
	}
	if s.closed {
		return nil, false
	}
	ref, ok := <-s.ch
	if !ok {
		return nil, false
	}
	s.prev = ref
	return ref.buf, true
}

// Serve pulls batches and hands each to sink until the stream ends or the
// subscription is closed.
func (s *Subscription) Serve(sink analysis.EventSink) {
	for {
		batch, ok := s.Next()
		if !ok {
			return
		}
		sink.Events(batch)
	}
}

// Close unsubscribes: queued batches are released unseen and the
// distributor stops delivering here (a Block subscription stops exerting
// backpressure). Consumer-side, like Next. A second Close fails with
// ErrSubscriptionClosed. Closing is optional for subscriptions consumed to
// end-of-stream; it exists so a subscriber can leave early without wedging
// a Block fabric.
func (s *Subscription) Close() error {
	if s.closed {
		return ErrSubscriptionClosed
	}
	s.closed = true
	if s.prev != nil {
		s.prev.release()
		s.prev = nil
	}
	close(s.gone)
	s.f.removeSub(s)
	// Release what was queued. A delivery racing the removal above can slip
	// one more reference into the channel after this drain; its buffer is
	// reclaimed by the GC and replaced in the pool by an allocation — a
	// bounded, harmless leak, never a stall.
	for {
		select {
		case ref, ok := <-s.ch:
			if !ok {
				return nil
			}
			ref.release()
		default:
			return nil
		}
	}
}

// Dropped returns how many event records the distributor skipped for this
// subscription because its queue was full (always 0 for Block
// subscriptions).
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }
