package interp_test

// Tests for the threaded-code compile pass: pre-resolved branches, stack
// adjustments, dead-code elision, and the fusion peepholes — in particular
// the cases where a fused group could illegally straddle a branch target.

import (
	"strings"
	"testing"

	"wasabi/internal/builder"
	"wasabi/internal/interp"
	"wasabi/internal/wasm"
)

// TestDeadCodeSkipped: instructions after a return are statically dead and
// must be skipped by the compile pass, even when they would not type-check
// (the spec's polymorphic-stack rule makes them valid).
func TestDeadCodeSkipped(t *testing.T) {
	b := builder.New()
	f := b.Func("f", builder.V(wasm.I32), builder.V(wasm.I32))
	f.Get(0).Return()
	// Dead: operand-stack underflow, nested dead blocks, a dead else.
	f.Op(wasm.OpI32Add)
	f.Block().Loop().Br(0).End().End()
	f.If().I32(1).Else().I32(2).End()
	f.Done()
	inst, err := interp.Instantiate(b.Build(), nil)
	if err != nil {
		t.Fatalf("dead code must compile: %v", err)
	}
	if got := invokeI32(t, inst, "f", interp.I32(9)); got != 9 {
		t.Errorf("f(9) = %d", got)
	}
}

// TestBrTableToFunctionLabel: a br_table target may be the function label
// itself, which the compiled form resolves to the final return.
func TestBrTableToFunctionLabel(t *testing.T) {
	// f(x): index 0 returns x+100 directly via the function label; any other
	// index leaves the block carrying x+100 and adds 1 on the way out.
	b := builder.New()
	f := b.Func("f", builder.V(wasm.I32), builder.V(wasm.I32))
	f.BlockT(wasm.I32)
	f.Get(0).I32(100).Op(wasm.OpI32Add) // carried value
	f.Get(0)                            // br_table index
	f.BrTable([]uint32{1}, 0)           // 0 -> function label, default -> block end
	f.End()
	f.I32(1).Op(wasm.OpI32Add)
	f.Done()
	m := b.Build()
	inst, err := interp.Instantiate(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range [][2]int32{{0, 100}, {1, 102}, {9, 110}} {
		if got := invokeI32(t, inst, "f", interp.I32(c[0])); got != c[1] {
			t.Errorf("f(%d) = %d, want %d", c[0], got, c[1])
		}
	}
}

// TestBrCarriesValueWithDiscard: a br that carries a block result over
// to-be-discarded stack values exercises the adjusting branch form.
func TestBrCarriesValueWithDiscard(t *testing.T) {
	b := builder.New()
	f := b.Func("f", builder.V(wasm.I32), builder.V(wasm.I32))
	f.BlockT(wasm.I32)
	f.I32(11).I32(22) // two extra values below the carried one
	f.I32(33)
	f.Get(0).BrIf(0) // taken: discard 11/22, carry 33
	f.Drop().Drop().Drop().I32(44)
	f.End()
	f.Done()
	inst, err := interp.Instantiate(b.Build(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := invokeI32(t, inst, "f", interp.I32(1)); got != 33 {
		t.Errorf("taken: %d, want 33", got)
	}
	if got := invokeI32(t, inst, "f", interp.I32(0)); got != 44 {
		t.Errorf("fallthrough: %d, want 44", got)
	}
}

// TestBrIfBackEdgeWithDiscard: a conditional back-edge to a loop header with
// extra operands on the stack must cut the stack on the taken path only.
func TestBrIfBackEdgeWithDiscard(t *testing.T) {
	b := builder.New()
	f := b.Func("f", builder.V(wasm.I32), builder.V(wasm.I32))
	i := f.Local(wasm.I32)
	f.Loop()
	f.I32(7) // extra operand alive across the br_if
	f.Get(i).I32(1).Op(wasm.OpI32Add).Set(i)
	f.Get(i).Get(0).Op(wasm.OpI32LtS).BrIf(0) // taken: must discard the 7
	f.Drop()
	f.End()
	f.Get(i)
	f.Done()
	inst, err := interp.Instantiate(b.Build(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := invokeI32(t, inst, "f", interp.I32(5)); got != 5 {
		t.Errorf("f(5) = %d, want 5", got)
	}
	if got := invokeI32(t, inst, "f", interp.I32(0)); got != 1 {
		t.Errorf("f(0) = %d, want 1", got)
	}
}

// TestFusionBarrierAtElse: the add after the if must not fuse into the
// else arm's constant — the end of the if is a branch target.
func TestFusionBarrierAtElse(t *testing.T) {
	b := builder.New()
	f := b.Func("f", builder.V(wasm.I32), builder.V(wasm.I32))
	f.Get(0)
	f.IfT(wasm.I32).I32(1).Else().I32(2).End()
	f.I32(5).Op(wasm.OpI32Add)
	f.Done()
	inst, err := interp.Instantiate(b.Build(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := invokeI32(t, inst, "f", interp.I32(1)); got != 6 {
		t.Errorf("then: %d, want 6", got)
	}
	if got := invokeI32(t, inst, "f", interp.I32(0)); got != 7 {
		t.Errorf("else: %d, want 7", got)
	}
}

// TestConstFolding: const;const;op folds at compile time for pure ops but
// must preserve the runtime trap of div/rem.
func TestConstFolding(t *testing.T) {
	b := builder.New()
	f := b.Func("folded", nil, builder.V(wasm.I32))
	f.I32(6).I32(7).Op(wasm.OpI32Mul)
	f.Done()
	g := b.Func("divtrap", nil, builder.V(wasm.I32))
	g.I32(1).I32(0).Op(wasm.OpI32DivU)
	g.Done()
	h := b.Func("divok", nil, builder.V(wasm.I32))
	h.I32(91).I32(13).Op(wasm.OpI32DivU)
	h.Done()
	inst, err := interp.Instantiate(b.Build(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := invokeI32(t, inst, "folded"); got != 42 {
		t.Errorf("folded = %d", got)
	}
	if got := invokeI32(t, inst, "divok"); got != 7 {
		t.Errorf("divok = %d", got)
	}
	_, err = inst.Invoke("divtrap")
	if err == nil || !strings.Contains(err.Error(), interp.TrapDivByZero) {
		t.Errorf("division by constant zero must trap at runtime, got %v", err)
	}
}

// TestSetThenGetRewrite: set x; get x behaves exactly like tee x.
func TestSetThenGetRewrite(t *testing.T) {
	b := builder.New()
	f := b.Func("f", builder.V(wasm.I32), builder.V(wasm.I32))
	x := f.Local(wasm.I32)
	y := f.Local(wasm.I32)
	// y = (x0*2 stored to x, reloaded) + 1; returns y + x
	f.Get(0).I32(2).Op(wasm.OpI32Mul).Set(x)
	f.Get(x).I32(1).Op(wasm.OpI32Add).Set(y)
	f.Get(y).Get(x).Op(wasm.OpI32Add)
	f.Done()
	inst, err := interp.Instantiate(b.Build(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := invokeI32(t, inst, "f", interp.I32(10)); got != 41 {
		t.Errorf("f(10) = %d, want 41", got)
	}
}

// TestSetTeeFusion: the set;tee pair written by the instrumenter around
// every hooked binary op.
func TestSetTeeFusion(t *testing.T) {
	b := builder.New()
	f := b.Func("f", builder.V(wasm.I32, wasm.I32), builder.V(wasm.I32))
	sa := f.Local(wasm.I32)
	sb := f.Local(wasm.I32)
	f.Get(0).Get(1)
	f.Emit(wasm.LocalSet(sb), wasm.LocalTee(sa)) // the fused pair
	f.Get(sb).Op(wasm.OpI32Sub)
	f.Get(sa).Op(wasm.OpI32Mul)
	f.Done()
	inst, err := interp.Instantiate(b.Build(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// (a-b)*a with a=9,b=4 -> 45
	res, err := inst.Invoke("f", interp.I32(9), interp.I32(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := interp.AsI32(res[0]); got != 45 {
		t.Errorf("f(9,4) = %d, want 45", got)
	}
}

// TestDropPeepholes: drop cancelling fused multi-pushes.
func TestDropPeepholes(t *testing.T) {
	b := builder.New()
	f := b.Func("f", builder.V(wasm.I32), builder.V(wasm.I32))
	f.Get(0).Get(0).Drop()                // get-get, then peel one
	f.I32(3).I32(4).Drop()                // const pair, then peel one
	f.Op(wasm.OpI32Add)                   // x + 3
	f.Get(0).Get(0).Get(0).Drop()         // get-get-get, peel to a pair
	f.Op(wasm.OpI32Mul).Op(wasm.OpI32Add) // + x*x
	f.Done()
	inst, err := interp.Instantiate(b.Build(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := invokeI32(t, inst, "f", interp.I32(5)); got != 33 {
		t.Errorf("f(5) = %d, want 33", got)
	}
}

// TestMalformedBodiesRejected: structurally broken bodies fail at
// instantiation, not by corrupting the interpreter at run time.
func TestMalformedBodiesRejected(t *testing.T) {
	cases := []struct {
		name  string
		build func(f *builder.FuncBuilder)
	}{
		{"underflow", func(f *builder.FuncBuilder) { f.Op(wasm.OpI32Add) }},
		{"unclosed block", func(f *builder.FuncBuilder) { f.Block().I32(1).Drop() }},
		{"bad branch depth", func(f *builder.FuncBuilder) { f.Br(3) }},
		{"bad local", func(f *builder.FuncBuilder) { f.Get(99).Drop() }},
		{"else without if", func(f *builder.FuncBuilder) { f.Block().Else().End() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := builder.New()
			f := b.Func("f", nil, nil)
			tc.build(f)
			f.Done()
			if _, err := interp.Instantiate(b.Build(), nil); err == nil {
				t.Error("expected instantiation error")
			}
		})
	}
}
