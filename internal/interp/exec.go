package interp

import (
	"math"
	"math/bits"

	"wasabi/internal/wasm"
)

// exec runs one compiled function body to completion and returns its
// results. The body is the flat threaded-code form produced by compileFunc:
// branch targets and stack adjustments are pre-resolved, so the loop below
// never touches a label stack — control flow is pc assignment plus, for
// value-carrying branches, one packed stack cut.
//
// Traps propagate as panics and are recovered in call. The frame fr provides
// the reusable locals/stack/result buffers for this call depth; the returned
// slice aliases fr.result and is only valid until the next call at the same
// depth (Instance.call copies it before returning to embedders).
func (inst *Instance) exec(cf *compiledFunc, args []Value, fr *frame) []Value {
	if cap(fr.locals) < cf.numLocals {
		fr.locals = make([]Value, cf.numLocals+16)
	}
	locals := fr.locals[:cf.numLocals]
	n := copy(locals, args)
	clear(locals[n:])

	// The compile pass knows the exact operand-stack high-water mark (the
	// static dataflow pass computes the same number independently and a test
	// asserts they agree over the spec corpus), so the stack is a flat buffer
	// sized to exactly that mark: no append, no growth checks, no slack.
	if cap(fr.stack) < cf.maxStack {
		fr.stack = make([]Value, cf.maxStack)
	}
	stack := fr.stack[:cap(fr.stack)]
	fr.stack = stack
	sp := 0

	code := cf.code
	pc := 0
	for {
		in := &code[pc]
		pc++
		switch in.op {
		case iGuard:
			// Containment guard (Config.Guarded): one interrupt check and one
			// fuel decrement per basic block. Cost a is the block's source
			// instruction count, so consumption is deterministic; b records
			// the source offset for trap/fault context.
			inst.curPC = in.b
			if inst.intr.Load() != 0 {
				trap(TrapInterrupted)
			}
			inst.fuel -= int64(in.a)
			if inst.fuel < 0 {
				inst.fuel = 0
				trap(TrapFuelExhausted)
			}
		case iConst:
			stack[sp] = in.bits
			sp++
		case iLocalGet:
			stack[sp] = locals[in.a]
			sp++
		case iLocalSet:
			sp--
			locals[in.a] = stack[sp]
		case iLocalTee:
			locals[in.a] = stack[sp-1]
		case iConst2:
			stack[sp] = uint64(in.a)
			stack[sp+1] = uint64(in.b)
			sp += 2
		case iGetGet:
			stack[sp] = locals[in.a]
			stack[sp+1] = locals[in.b]
			sp += 2
		case iGetGetGet:
			stack[sp] = locals[in.a]
			stack[sp+1] = locals[in.b]
			stack[sp+2] = locals[in.bits]
			sp += 3
		case iSetTee:
			sp--
			locals[in.a] = stack[sp]
			locals[in.b] = stack[sp-1]

		case iGetGetBin:
			stack[sp] = binop(wasm.Opcode(in.bits), locals[in.a], locals[in.b])
			sp++
		case iGetBin:
			stack[sp-1] = binop(wasm.Opcode(in.bits), stack[sp-1], locals[in.a])
		case iConstBin:
			stack[sp-1] = binop(wasm.Opcode(in.a), stack[sp-1], in.bits)
		case iBin:
			sp--
			stack[sp-1] = binop(wasm.Opcode(in.a), stack[sp-1], stack[sp])
		case iUn:
			stack[sp-1] = unop(wasm.Opcode(in.a), stack[sp-1])
		case iTruncSat:
			stack[sp-1] = truncSat(in.a, stack[sp-1])

		case iMemCopy:
			sp -= 3
			inst.Memory.copyWithin(uint32(stack[sp]), uint32(stack[sp+1]), uint32(stack[sp+2]))
		case iMemFill:
			sp -= 3
			inst.Memory.fill(uint32(stack[sp]), byte(stack[sp+1]), uint32(stack[sp+2]))

		case iGetConstCmpBrIf:
			if binop(wasm.Opcode(in.a>>24), locals[in.a&fuseLocalMask], in.bits) != 0 {
				pc = int(in.b)
			}
		case iBr:
			pc = int(in.a)
		case iBrAdjust:
			h := int(in.b) >> 1
			if in.b&1 != 0 {
				stack[h] = stack[sp-1]
				sp = h + 1
			} else {
				sp = h
			}
			pc = int(in.a)
		case iBrIf:
			sp--
			if uint32(stack[sp]) != 0 {
				pc = int(in.a)
			}
		case iBrIfAdjust:
			sp--
			if uint32(stack[sp]) != 0 {
				h := int(in.b) >> 1
				if in.b&1 != 0 {
					stack[h] = stack[sp-1]
					sp = h + 1
				} else {
					sp = h
				}
				pc = int(in.a)
			}
		case iBrIfZero:
			sp--
			if uint32(stack[sp]) == 0 {
				pc = int(in.a)
			}
		case iBrTable:
			sp--
			idx := uint32(stack[sp])
			if idx > in.b {
				idx = in.b // default entry, stored last
			}
			e := cf.brPool[in.a+idx]
			h := int(e.adj) >> 1
			if e.adj&1 != 0 {
				stack[h] = stack[sp-1]
				sp = h + 1
			} else {
				sp = h
			}
			pc = int(e.target)
		case iReturn:
			arity := int(in.b)
			result := append(fr.result[:0], stack[sp-arity:sp]...)
			fr.result = result
			return result

		case iCall:
			np := int(in.b)
			res := inst.invoke(in.a, stack[sp-np:sp])
			sp -= np
			sp += copy(stack[sp:], res)
		case iCallHost:
			// The compile pass proved the target is an imported host
			// function, so the generic invoke dispatch is skipped.
			np := int(in.b)
			res := inst.callHost(inst.funcs[in.a].host, stack[sp-np:sp])
			sp -= np
			sp += copy(stack[sp:], res)
		case iCallHostFast:
			// Zero-copy host call (the hook-call fast path of the
			// instrumented setting): the callee receives a read-only window
			// of the operand stack and returns no results, so there is no
			// argument copy and no result handling. The compile pass proved
			// the target result-less and Fast-capable.
			np := int(in.b)
			hostErr(inst.funcs[in.a].host.Fast(inst, stack[sp-np:sp]))
			sp -= np
		case iCallHostEmit:
			// Record-emit twin of iCallHostFast: the encoder appends one
			// packed event record (or a short group of them) to the session's
			// batch buffer and signals failure only via a trap panic, so the
			// hot loop has no error check here at all.
			np := int(in.b)
			inst.funcs[in.a].host.Emit(inst, stack[sp-np:sp])
			sp -= np
		case iCallIndirect:
			sp--
			ti := uint32(stack[sp])
			if inst.Table == nil || int(ti) >= len(inst.Table.Elems) {
				trapf(TrapTableOutOfBounds, "table index %d", ti)
			}
			fidx := inst.Table.Elems[ti]
			if fidx < 0 || int(fidx) >= len(inst.funcs) {
				trapf(TrapUndefinedElement, "table slot %d uninitialized", ti)
			}
			want := inst.Module.Types[in.a]
			have := inst.Module.Types[inst.funcs[fidx].typeIdx]
			if !want.Equal(have) {
				trapf(TrapIndirectMismatch, "want %s, have %s", want, have)
			}
			np := int(in.b)
			res := inst.invoke(uint32(fidx), stack[sp-np:sp])
			sp -= np
			sp += copy(stack[sp:], res)

		case iDrop:
			sp--
		case iDropN:
			sp -= int(in.a)
		case iSelect:
			sp -= 2
			if uint32(stack[sp+1]) == 0 {
				stack[sp-1] = stack[sp]
			}

		case iGlobalGet:
			stack[sp] = inst.Globals[in.a].Val
			sp++
		case iGlobalSet:
			sp--
			inst.Globals[in.a].Val = stack[sp]

		case iMemorySize:
			stack[sp] = uint64(inst.Memory.Pages())
			sp++
		case iMemoryGrow:
			delta := uint32(stack[sp-1])
			stack[sp-1] = uint64(uint32(inst.Memory.Grow(delta)))

		case iLoad:
			stack[sp-1] = inst.Memory.loadAt(uint32(stack[sp-1]), uint32(in.bits), in.a)
		case iGetLoad:
			stack[sp] = inst.Memory.loadAt(uint32(locals[in.a]), uint32(in.bits), in.b)
			sp++
		case iStore:
			sp -= 2
			inst.Memory.store(uint32(stack[sp]), uint32(in.bits), stSizes[in.a], stack[sp+1])
		case iGetStore:
			sp--
			inst.Memory.store(uint32(stack[sp]), uint32(in.bits), stSizes[in.b], locals[in.a])

		case iUnreachable:
			trap(TrapUnreachable)
		default:
			faultf("interp: corrupt threaded code: opcode %d", in.op)
		}
	}
}

// loadAt performs a pre-decoded memory load: mode selects the access width
// and sign extension computed at compile time.
func (m *Memory) loadAt(addr, offset, mode uint32) Value {
	switch mode {
	case ldRaw32:
		return m.load(addr, offset, 4)
	case ldRaw64:
		return m.load(addr, offset, 8)
	case ld8U:
		return m.load(addr, offset, 1)
	case ld16U:
		return m.load(addr, offset, 2)
	case ld8S32:
		return uint64(uint32(int32(int8(m.load(addr, offset, 1)))))
	case ld16S32:
		return uint64(uint32(int32(int16(m.load(addr, offset, 2)))))
	case ld8S64:
		return uint64(int64(int8(m.load(addr, offset, 1))))
	case ld16S64:
		return uint64(int64(int16(m.load(addr, offset, 2))))
	default: // ld32S64
		return uint64(int64(int32(m.load(addr, offset, 4))))
	}
}

func b2i(b bool) Value {
	if b {
		return 1
	}
	return 0
}

// binop implements every fixed-signature binary numeric instruction on raw
// 64-bit stack values. It is shared by the plain iBin dispatch and by the
// fused superinstructions, which only differ in where the operands come from.
func binop(op wasm.Opcode, a, b Value) Value {
	switch op {
	// i32 comparisons.
	case wasm.OpI32Eq:
		return b2i(uint32(a) == uint32(b))
	case wasm.OpI32Ne:
		return b2i(uint32(a) != uint32(b))
	case wasm.OpI32LtS:
		return b2i(int32(a) < int32(b))
	case wasm.OpI32LtU:
		return b2i(uint32(a) < uint32(b))
	case wasm.OpI32GtS:
		return b2i(int32(a) > int32(b))
	case wasm.OpI32GtU:
		return b2i(uint32(a) > uint32(b))
	case wasm.OpI32LeS:
		return b2i(int32(a) <= int32(b))
	case wasm.OpI32LeU:
		return b2i(uint32(a) <= uint32(b))
	case wasm.OpI32GeS:
		return b2i(int32(a) >= int32(b))
	case wasm.OpI32GeU:
		return b2i(uint32(a) >= uint32(b))

	// i64 comparisons.
	case wasm.OpI64Eq:
		return b2i(a == b)
	case wasm.OpI64Ne:
		return b2i(a != b)
	case wasm.OpI64LtS:
		return b2i(int64(a) < int64(b))
	case wasm.OpI64LtU:
		return b2i(a < b)
	case wasm.OpI64GtS:
		return b2i(int64(a) > int64(b))
	case wasm.OpI64GtU:
		return b2i(a > b)
	case wasm.OpI64LeS:
		return b2i(int64(a) <= int64(b))
	case wasm.OpI64LeU:
		return b2i(a <= b)
	case wasm.OpI64GeS:
		return b2i(int64(a) >= int64(b))
	case wasm.OpI64GeU:
		return b2i(a >= b)

	// f32 comparisons.
	case wasm.OpF32Eq:
		return b2i(AsF32(a) == AsF32(b))
	case wasm.OpF32Ne:
		return b2i(AsF32(a) != AsF32(b))
	case wasm.OpF32Lt:
		return b2i(AsF32(a) < AsF32(b))
	case wasm.OpF32Gt:
		return b2i(AsF32(a) > AsF32(b))
	case wasm.OpF32Le:
		return b2i(AsF32(a) <= AsF32(b))
	case wasm.OpF32Ge:
		return b2i(AsF32(a) >= AsF32(b))

	// f64 comparisons.
	case wasm.OpF64Eq:
		return b2i(AsF64(a) == AsF64(b))
	case wasm.OpF64Ne:
		return b2i(AsF64(a) != AsF64(b))
	case wasm.OpF64Lt:
		return b2i(AsF64(a) < AsF64(b))
	case wasm.OpF64Gt:
		return b2i(AsF64(a) > AsF64(b))
	case wasm.OpF64Le:
		return b2i(AsF64(a) <= AsF64(b))
	case wasm.OpF64Ge:
		return b2i(AsF64(a) >= AsF64(b))

	// i32 arithmetic.
	case wasm.OpI32Add:
		return uint64(uint32(a) + uint32(b))
	case wasm.OpI32Sub:
		return uint64(uint32(a) - uint32(b))
	case wasm.OpI32Mul:
		return uint64(uint32(a) * uint32(b))
	case wasm.OpI32DivS:
		return uint64(uint32(i32DivS(int32(a), int32(b))))
	case wasm.OpI32DivU:
		if uint32(b) == 0 {
			trap(TrapDivByZero)
		}
		return uint64(uint32(a) / uint32(b))
	case wasm.OpI32RemS:
		if int32(b) == 0 {
			trap(TrapDivByZero)
		}
		if int32(a) == math.MinInt32 && int32(b) == -1 {
			return 0
		}
		return uint64(uint32(int32(a) % int32(b)))
	case wasm.OpI32RemU:
		if uint32(b) == 0 {
			trap(TrapDivByZero)
		}
		return uint64(uint32(a) % uint32(b))
	case wasm.OpI32And:
		return uint64(uint32(a) & uint32(b))
	case wasm.OpI32Or:
		return uint64(uint32(a) | uint32(b))
	case wasm.OpI32Xor:
		return uint64(uint32(a) ^ uint32(b))
	case wasm.OpI32Shl:
		return uint64(uint32(a) << (uint32(b) & 31))
	case wasm.OpI32ShrS:
		return uint64(uint32(int32(a) >> (uint32(b) & 31)))
	case wasm.OpI32ShrU:
		return uint64(uint32(a) >> (uint32(b) & 31))
	case wasm.OpI32Rotl:
		return uint64(bits.RotateLeft32(uint32(a), int(uint32(b)&31)))
	case wasm.OpI32Rotr:
		return uint64(bits.RotateLeft32(uint32(a), -int(uint32(b)&31)))

	// i64 arithmetic.
	case wasm.OpI64Add:
		return a + b
	case wasm.OpI64Sub:
		return a - b
	case wasm.OpI64Mul:
		return a * b
	case wasm.OpI64DivS:
		return uint64(i64DivS(int64(a), int64(b)))
	case wasm.OpI64DivU:
		if b == 0 {
			trap(TrapDivByZero)
		}
		return a / b
	case wasm.OpI64RemS:
		if int64(b) == 0 {
			trap(TrapDivByZero)
		}
		if int64(a) == math.MinInt64 && int64(b) == -1 {
			return 0
		}
		return uint64(int64(a) % int64(b))
	case wasm.OpI64RemU:
		if b == 0 {
			trap(TrapDivByZero)
		}
		return a % b
	case wasm.OpI64And:
		return a & b
	case wasm.OpI64Or:
		return a | b
	case wasm.OpI64Xor:
		return a ^ b
	case wasm.OpI64Shl:
		return a << (b & 63)
	case wasm.OpI64ShrS:
		return uint64(int64(a) >> (b & 63))
	case wasm.OpI64ShrU:
		return a >> (b & 63)
	case wasm.OpI64Rotl:
		return bits.RotateLeft64(a, int(b&63))
	case wasm.OpI64Rotr:
		return bits.RotateLeft64(a, -int(b&63))

	// f32 arithmetic.
	case wasm.OpF32Add:
		return F32(AsF32(a) + AsF32(b))
	case wasm.OpF32Sub:
		return F32(AsF32(a) - AsF32(b))
	case wasm.OpF32Mul:
		return F32(AsF32(a) * AsF32(b))
	case wasm.OpF32Div:
		return F32(AsF32(a) / AsF32(b))
	case wasm.OpF32Min:
		return F32(float32(fmin(float64(AsF32(a)), float64(AsF32(b)))))
	case wasm.OpF32Max:
		return F32(float32(fmax(float64(AsF32(a)), float64(AsF32(b)))))
	case wasm.OpF32Copysign:
		return F32(float32(math.Copysign(float64(AsF32(a)), float64(AsF32(b)))))

	// f64 arithmetic.
	case wasm.OpF64Add:
		return F64(AsF64(a) + AsF64(b))
	case wasm.OpF64Sub:
		return F64(AsF64(a) - AsF64(b))
	case wasm.OpF64Mul:
		return F64(AsF64(a) * AsF64(b))
	case wasm.OpF64Div:
		return F64(AsF64(a) / AsF64(b))
	case wasm.OpF64Min:
		return F64(fmin(AsF64(a), AsF64(b)))
	case wasm.OpF64Max:
		return F64(fmax(AsF64(a), AsF64(b)))
	case wasm.OpF64Copysign:
		return F64(math.Copysign(AsF64(a), AsF64(b)))
	}
	// A typed fault, not a plain panic: a decoder/compiler gap surfaces as a
	// failed invocation (*RuntimeFault) instead of crashing the host process.
	faultf("interp: unhandled binary opcode %s", op)
	return 0
}

// unop implements every fixed-signature unary numeric instruction (tests,
// bit counts, float unary math, conversions) on raw 64-bit stack values.
// The reinterpret instructions never reach here: they are identities on the
// stack representation and the compile pass elides them.
func unop(op wasm.Opcode, v Value) Value {
	switch op {
	case wasm.OpI32Eqz:
		return b2i(uint32(v) == 0)
	case wasm.OpI64Eqz:
		return b2i(v == 0)

	case wasm.OpI32Clz:
		return uint64(uint32(bits.LeadingZeros32(uint32(v))))
	case wasm.OpI32Ctz:
		return uint64(uint32(bits.TrailingZeros32(uint32(v))))
	case wasm.OpI32Popcnt:
		return uint64(uint32(bits.OnesCount32(uint32(v))))
	case wasm.OpI64Clz:
		return uint64(bits.LeadingZeros64(v))
	case wasm.OpI64Ctz:
		return uint64(bits.TrailingZeros64(v))
	case wasm.OpI64Popcnt:
		return uint64(bits.OnesCount64(v))

	case wasm.OpF32Abs:
		return F32(float32(math.Abs(float64(AsF32(v)))))
	case wasm.OpF32Neg:
		return v ^ 0x80000000
	case wasm.OpF32Ceil:
		return F32(float32(math.Ceil(float64(AsF32(v)))))
	case wasm.OpF32Floor:
		return F32(float32(math.Floor(float64(AsF32(v)))))
	case wasm.OpF32Trunc:
		return F32(float32(math.Trunc(float64(AsF32(v)))))
	case wasm.OpF32Nearest:
		return F32(float32(math.RoundToEven(float64(AsF32(v)))))
	case wasm.OpF32Sqrt:
		return F32(float32(math.Sqrt(float64(AsF32(v)))))

	case wasm.OpF64Abs:
		return F64(math.Abs(AsF64(v)))
	case wasm.OpF64Neg:
		return v ^ 0x8000000000000000
	case wasm.OpF64Ceil:
		return F64(math.Ceil(AsF64(v)))
	case wasm.OpF64Floor:
		return F64(math.Floor(AsF64(v)))
	case wasm.OpF64Trunc:
		return F64(math.Trunc(AsF64(v)))
	case wasm.OpF64Nearest:
		return F64(math.RoundToEven(AsF64(v)))
	case wasm.OpF64Sqrt:
		return F64(math.Sqrt(AsF64(v)))

	// Conversions.
	case wasm.OpI32WrapI64:
		return uint64(uint32(v))
	case wasm.OpI32TruncF32S:
		return uint64(uint32(truncToI32(float64(AsF32(v)))))
	case wasm.OpI32TruncF32U:
		return uint64(truncToU32(float64(AsF32(v))))
	case wasm.OpI32TruncF64S:
		return uint64(uint32(truncToI32(AsF64(v))))
	case wasm.OpI32TruncF64U:
		return uint64(truncToU32(AsF64(v)))
	case wasm.OpI64ExtendI32S:
		return uint64(int64(int32(v)))
	case wasm.OpI64ExtendI32U:
		return uint64(uint32(v))
	case wasm.OpI64TruncF32S:
		return uint64(truncToI64(float64(AsF32(v))))
	case wasm.OpI64TruncF32U:
		return truncToU64(float64(AsF32(v)))
	case wasm.OpI64TruncF64S:
		return uint64(truncToI64(AsF64(v)))
	case wasm.OpI64TruncF64U:
		return truncToU64(AsF64(v))
	case wasm.OpF32ConvertI32S:
		return F32(float32(int32(v)))
	case wasm.OpF32ConvertI32U:
		return F32(float32(uint32(v)))
	case wasm.OpF32ConvertI64S:
		return F32(float32(int64(v)))
	case wasm.OpF32ConvertI64U:
		return F32(float32(v))
	case wasm.OpF32DemoteF64:
		return F32(float32(AsF64(v)))
	case wasm.OpF64ConvertI32S:
		return F64(float64(int32(v)))
	case wasm.OpF64ConvertI32U:
		return F64(float64(uint32(v)))
	case wasm.OpF64ConvertI64S:
		return F64(float64(int64(v)))
	case wasm.OpF64ConvertI64U:
		return F64(float64(v))
	case wasm.OpF64PromoteF32:
		return F64(float64(AsF32(v)))
	case wasm.OpI32ReinterpretF32, wasm.OpI64ReinterpretF64,
		wasm.OpF32ReinterpretI32, wasm.OpF64ReinterpretI64:
		return v

	// Sign-extension operators (the 0xC0–0xC4 proposal).
	case wasm.OpI32Extend8S:
		return uint64(uint32(int32(int8(v))))
	case wasm.OpI32Extend16S:
		return uint64(uint32(int32(int16(v))))
	case wasm.OpI64Extend8S:
		return uint64(int64(int8(v)))
	case wasm.OpI64Extend16S:
		return uint64(int64(int16(v)))
	case wasm.OpI64Extend32S:
		return uint64(int64(int32(v)))
	}
	faultf("interp: unhandled unary opcode %s", op) // typed fault, like binop
	return 0
}

// truncSat implements the saturating float→int truncations (0xFC subopcodes
// 0–7) on raw stack values: NaN produces 0 and out-of-range values clamp to
// the target type's bounds instead of trapping.
func truncSat(sub uint32, v Value) Value {
	switch sub {
	case wasm.MiscI32TruncSatF32S:
		return uint64(uint32(truncSatI32(float64(AsF32(v)))))
	case wasm.MiscI32TruncSatF32U:
		return uint64(truncSatU32(float64(AsF32(v))))
	case wasm.MiscI32TruncSatF64S:
		return uint64(uint32(truncSatI32(AsF64(v))))
	case wasm.MiscI32TruncSatF64U:
		return uint64(truncSatU32(AsF64(v)))
	case wasm.MiscI64TruncSatF32S:
		return uint64(truncSatI64(float64(AsF32(v))))
	case wasm.MiscI64TruncSatF32U:
		return truncSatU64(float64(AsF32(v)))
	case wasm.MiscI64TruncSatF64S:
		return uint64(truncSatI64(AsF64(v)))
	case wasm.MiscI64TruncSatF64U:
		return truncSatU64(AsF64(v))
	}
	faultf("interp: unhandled trunc_sat subopcode %d", sub) // typed fault
	return 0
}
