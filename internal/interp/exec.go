package interp

import (
	"math"
	"math/bits"

	"wasabi/internal/wasm"
)

// label is a runtime control-stack entry.
type label struct {
	op     wasm.Opcode
	pc     int // pc of the structured instruction (block/loop/if/else)
	endPC  int
	height int // value-stack height at entry
	arity  int // values carried by a branch targeting this label
}

// exec runs one function body to completion and returns its results. Traps
// propagate as panics and are recovered in call. The frame fr provides the
// reusable locals/stack/labels/result buffers for this call depth; the
// returned slice aliases fr.result and is only valid until the next call at
// the same depth (Instance.call copies it before returning to embedders).
func (inst *Instance) exec(cf *compiledFunc, args []Value, fr *frame) []Value {
	if cap(fr.locals) < cf.numLocals {
		fr.locals = make([]Value, cf.numLocals+16)
	}
	locals := fr.locals[:cf.numLocals]
	n := copy(locals, args)
	clear(locals[n:])
	if fr.stack == nil {
		fr.stack = make([]Value, 0, 32)
	}
	stack := fr.stack[:0]
	if cap(fr.labels) < 1 {
		fr.labels = make([]label, 0, 8)
	}
	labels := fr.labels[:1]
	labels[0] = label{op: wasm.OpCall, pc: -1, endPC: len(cf.body) - 1, arity: len(cf.sig.Results)}

	body := cf.body
	pc := 0

	push := func(v Value) { stack = append(stack, v) }
	pop := func() Value {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return v
	}

	var result []Value
	// setResult copies the function's results into the frame's reusable
	// result buffer.
	setResult := func(res []Value) {
		result = append(fr.result[:0], res...)
		fr.result = result
	}
	// branch performs a branch to the n-th enclosing label. It returns true
	// when the branch leaves the function (the function-level label).
	branch := func(n int) bool {
		target := labels[len(labels)-1-n]
		if target.op == wasm.OpLoop {
			stack = stack[:target.height]
			labels = labels[:len(labels)-n] // keep the loop label itself
			pc = target.pc + 1
			return false
		}
		carried := target.arity
		copy(stack[target.height:], stack[len(stack)-carried:])
		stack = stack[:target.height+carried]
		labels = labels[:len(labels)-1-n]
		if len(labels) == 0 {
			setResult(stack)
			return true
		}
		pc = target.endPC + 1
		return false
	}

	// Grown stack/label buffers are written back to the frame on exit so the
	// next call at this depth starts at steady-state capacity.
	defer func() {
		fr.stack = stack[:0]
		fr.labels = labels[:0]
	}()

	for {
		in := &body[pc]
		opPC := pc
		pc++
		switch in.Op {
		case wasm.OpNop:
		case wasm.OpUnreachable:
			trap(TrapUnreachable)

		case wasm.OpBlock:
			labels = append(labels, label{op: wasm.OpBlock, pc: opPC, endPC: int(cf.matchEnd[opPC]), height: len(stack), arity: len(in.Block.Results())})
		case wasm.OpLoop:
			labels = append(labels, label{op: wasm.OpLoop, pc: opPC, endPC: int(cf.matchEnd[opPC]), height: len(stack), arity: 0})
		case wasm.OpIf:
			cond := pop()
			labels = append(labels, label{op: wasm.OpIf, pc: opPC, endPC: int(cf.matchEnd[opPC]), height: len(stack), arity: len(in.Block.Results())})
			if uint32(cond) == 0 {
				if elsePC := cf.matchElse[opPC]; elsePC >= 0 {
					pc = int(elsePC) + 1
				} else {
					pc = int(cf.matchEnd[opPC]) // the end pops the label
				}
			}
		case wasm.OpElse:
			// Reached by falling out of the then-branch: skip to end.
			pc = labels[len(labels)-1].endPC
		case wasm.OpEnd:
			lbl := labels[len(labels)-1]
			labels = labels[:len(labels)-1]
			if len(labels) == 0 {
				setResult(stack[len(stack)-lbl.arity:])
				return result
			}
		case wasm.OpBr:
			if branch(int(in.Idx)) {
				return result
			}
		case wasm.OpBrIf:
			cond := pop()
			if uint32(cond) != 0 {
				if branch(int(in.Idx)) {
					return result
				}
			}
		case wasm.OpBrTable:
			idx := uint32(pop())
			n := in.Idx // default
			if off, cnt := in.BrTableSpan(); int(idx) < cnt {
				n = cf.brTargets[off+int(idx)]
			}
			if branch(int(n)) {
				return result
			}
		case wasm.OpReturn:
			if branch(len(labels) - 1) {
				return result
			}

		case wasm.OpCall:
			stack = inst.doCall(in.Idx, stack)
		case wasm.OpCallIndirect:
			ti := uint32(pop())
			if inst.Table == nil || int(ti) >= len(inst.Table.Elems) {
				trapf(TrapTableOutOfBounds, "table index %d", ti)
			}
			fidx := inst.Table.Elems[ti]
			if fidx < 0 {
				trapf(TrapUndefinedElement, "table slot %d uninitialized", ti)
			}
			want := inst.Module.Types[in.Idx]
			have := inst.Module.Types[inst.funcs[fidx].typeIdx]
			if !want.Equal(have) {
				trapf(TrapIndirectMismatch, "want %s, have %s", want, have)
			}
			stack = inst.doCall(uint32(fidx), stack)

		case wasm.OpDrop:
			pop()
		case wasm.OpSelect:
			cond := pop()
			b := pop()
			a := pop()
			if uint32(cond) != 0 {
				push(a)
			} else {
				push(b)
			}

		case wasm.OpLocalGet:
			push(locals[in.Idx])
		case wasm.OpLocalSet:
			locals[in.Idx] = pop()
		case wasm.OpLocalTee:
			locals[in.Idx] = stack[len(stack)-1]
		case wasm.OpGlobalGet:
			push(inst.Globals[in.Idx].Val)
		case wasm.OpGlobalSet:
			inst.Globals[in.Idx].Val = pop()

		case wasm.OpMemorySize:
			push(uint64(inst.Memory.Pages()))
		case wasm.OpMemoryGrow:
			delta := uint32(pop())
			push(uint64(uint32(inst.Memory.Grow(delta))))

		case wasm.OpI32Const, wasm.OpI64Const, wasm.OpF32Const, wasm.OpF64Const:
			push(in.ConstValue())

		default:
			switch {
			case in.Op.IsLoad():
				addr := uint32(pop())
				push(inst.doLoad(in.Op, addr, in.MemOffset()))
			case in.Op.IsStore():
				v := pop()
				addr := uint32(pop())
				inst.doStore(in.Op, addr, in.MemOffset(), v)
			default:
				stack = execNumeric(in.Op, stack)
			}
		}
	}
}

func (inst *Instance) doCall(fidx uint32, stack []Value) []Value {
	ft := inst.Module.Types[inst.funcs[fidx].typeIdx]
	np := len(ft.Params)
	args := stack[len(stack)-np:]
	res := inst.invoke(fidx, args)
	stack = stack[:len(stack)-np]
	return append(stack, res...)
}

func (inst *Instance) doLoad(op wasm.Opcode, addr, offset uint32) Value {
	_, size := op.LoadStoreType()
	raw := inst.Memory.load(addr, offset, size)
	switch op {
	case wasm.OpI32Load, wasm.OpF32Load, wasm.OpI64Load, wasm.OpF64Load,
		wasm.OpI32Load8U, wasm.OpI32Load16U, wasm.OpI64Load8U, wasm.OpI64Load16U, wasm.OpI64Load32U:
		return raw
	case wasm.OpI32Load8S:
		return uint64(uint32(int32(int8(raw))))
	case wasm.OpI32Load16S:
		return uint64(uint32(int32(int16(raw))))
	case wasm.OpI64Load8S:
		return uint64(int64(int8(raw)))
	case wasm.OpI64Load16S:
		return uint64(int64(int16(raw)))
	case wasm.OpI64Load32S:
		return uint64(int64(int32(raw)))
	}
	panic("interp: bad load opcode")
}

func (inst *Instance) doStore(op wasm.Opcode, addr, offset uint32, v Value) {
	_, size := op.LoadStoreType()
	inst.Memory.store(addr, offset, size, v)
}

// execNumeric implements all fixed-signature numeric instructions on the
// raw value stack.
func execNumeric(op wasm.Opcode, stack []Value) []Value {
	pop := func() Value {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return v
	}
	push := func(v Value) { stack = append(stack, v) }
	pushBool := func(b bool) {
		if b {
			push(1)
		} else {
			push(0)
		}
	}

	switch op {
	// i32 comparisons.
	case wasm.OpI32Eqz:
		pushBool(uint32(pop()) == 0)
	case wasm.OpI32Eq:
		b, a := uint32(pop()), uint32(pop())
		pushBool(a == b)
	case wasm.OpI32Ne:
		b, a := uint32(pop()), uint32(pop())
		pushBool(a != b)
	case wasm.OpI32LtS:
		b, a := int32(pop()), int32(pop())
		pushBool(a < b)
	case wasm.OpI32LtU:
		b, a := uint32(pop()), uint32(pop())
		pushBool(a < b)
	case wasm.OpI32GtS:
		b, a := int32(pop()), int32(pop())
		pushBool(a > b)
	case wasm.OpI32GtU:
		b, a := uint32(pop()), uint32(pop())
		pushBool(a > b)
	case wasm.OpI32LeS:
		b, a := int32(pop()), int32(pop())
		pushBool(a <= b)
	case wasm.OpI32LeU:
		b, a := uint32(pop()), uint32(pop())
		pushBool(a <= b)
	case wasm.OpI32GeS:
		b, a := int32(pop()), int32(pop())
		pushBool(a >= b)
	case wasm.OpI32GeU:
		b, a := uint32(pop()), uint32(pop())
		pushBool(a >= b)

	// i64 comparisons.
	case wasm.OpI64Eqz:
		pushBool(pop() == 0)
	case wasm.OpI64Eq:
		b, a := pop(), pop()
		pushBool(a == b)
	case wasm.OpI64Ne:
		b, a := pop(), pop()
		pushBool(a != b)
	case wasm.OpI64LtS:
		b, a := int64(pop()), int64(pop())
		pushBool(a < b)
	case wasm.OpI64LtU:
		b, a := pop(), pop()
		pushBool(a < b)
	case wasm.OpI64GtS:
		b, a := int64(pop()), int64(pop())
		pushBool(a > b)
	case wasm.OpI64GtU:
		b, a := pop(), pop()
		pushBool(a > b)
	case wasm.OpI64LeS:
		b, a := int64(pop()), int64(pop())
		pushBool(a <= b)
	case wasm.OpI64LeU:
		b, a := pop(), pop()
		pushBool(a <= b)
	case wasm.OpI64GeS:
		b, a := int64(pop()), int64(pop())
		pushBool(a >= b)
	case wasm.OpI64GeU:
		b, a := pop(), pop()
		pushBool(a >= b)

	// f32 comparisons.
	case wasm.OpF32Eq:
		b, a := AsF32(pop()), AsF32(pop())
		pushBool(a == b)
	case wasm.OpF32Ne:
		b, a := AsF32(pop()), AsF32(pop())
		pushBool(a != b)
	case wasm.OpF32Lt:
		b, a := AsF32(pop()), AsF32(pop())
		pushBool(a < b)
	case wasm.OpF32Gt:
		b, a := AsF32(pop()), AsF32(pop())
		pushBool(a > b)
	case wasm.OpF32Le:
		b, a := AsF32(pop()), AsF32(pop())
		pushBool(a <= b)
	case wasm.OpF32Ge:
		b, a := AsF32(pop()), AsF32(pop())
		pushBool(a >= b)

	// f64 comparisons.
	case wasm.OpF64Eq:
		b, a := AsF64(pop()), AsF64(pop())
		pushBool(a == b)
	case wasm.OpF64Ne:
		b, a := AsF64(pop()), AsF64(pop())
		pushBool(a != b)
	case wasm.OpF64Lt:
		b, a := AsF64(pop()), AsF64(pop())
		pushBool(a < b)
	case wasm.OpF64Gt:
		b, a := AsF64(pop()), AsF64(pop())
		pushBool(a > b)
	case wasm.OpF64Le:
		b, a := AsF64(pop()), AsF64(pop())
		pushBool(a <= b)
	case wasm.OpF64Ge:
		b, a := AsF64(pop()), AsF64(pop())
		pushBool(a >= b)

	// i32 arithmetic.
	case wasm.OpI32Clz:
		push(uint64(uint32(bits.LeadingZeros32(uint32(pop())))))
	case wasm.OpI32Ctz:
		push(uint64(uint32(bits.TrailingZeros32(uint32(pop())))))
	case wasm.OpI32Popcnt:
		push(uint64(uint32(bits.OnesCount32(uint32(pop())))))
	case wasm.OpI32Add:
		b, a := uint32(pop()), uint32(pop())
		push(uint64(a + b))
	case wasm.OpI32Sub:
		b, a := uint32(pop()), uint32(pop())
		push(uint64(a - b))
	case wasm.OpI32Mul:
		b, a := uint32(pop()), uint32(pop())
		push(uint64(a * b))
	case wasm.OpI32DivS:
		b, a := int32(pop()), int32(pop())
		push(uint64(uint32(i32DivS(a, b))))
	case wasm.OpI32DivU:
		b, a := uint32(pop()), uint32(pop())
		if b == 0 {
			trap(TrapDivByZero)
		}
		push(uint64(a / b))
	case wasm.OpI32RemS:
		b, a := int32(pop()), int32(pop())
		if b == 0 {
			trap(TrapDivByZero)
		}
		if a == math.MinInt32 && b == -1 {
			push(0)
		} else {
			push(uint64(uint32(a % b)))
		}
	case wasm.OpI32RemU:
		b, a := uint32(pop()), uint32(pop())
		if b == 0 {
			trap(TrapDivByZero)
		}
		push(uint64(a % b))
	case wasm.OpI32And:
		b, a := uint32(pop()), uint32(pop())
		push(uint64(a & b))
	case wasm.OpI32Or:
		b, a := uint32(pop()), uint32(pop())
		push(uint64(a | b))
	case wasm.OpI32Xor:
		b, a := uint32(pop()), uint32(pop())
		push(uint64(a ^ b))
	case wasm.OpI32Shl:
		b, a := uint32(pop()), uint32(pop())
		push(uint64(a << (b & 31)))
	case wasm.OpI32ShrS:
		b, a := uint32(pop()), int32(pop())
		push(uint64(uint32(a >> (b & 31))))
	case wasm.OpI32ShrU:
		b, a := uint32(pop()), uint32(pop())
		push(uint64(a >> (b & 31)))
	case wasm.OpI32Rotl:
		b, a := uint32(pop()), uint32(pop())
		push(uint64(bits.RotateLeft32(a, int(b&31))))
	case wasm.OpI32Rotr:
		b, a := uint32(pop()), uint32(pop())
		push(uint64(bits.RotateLeft32(a, -int(b&31))))

	// i64 arithmetic.
	case wasm.OpI64Clz:
		push(uint64(bits.LeadingZeros64(pop())))
	case wasm.OpI64Ctz:
		push(uint64(bits.TrailingZeros64(pop())))
	case wasm.OpI64Popcnt:
		push(uint64(bits.OnesCount64(pop())))
	case wasm.OpI64Add:
		b, a := pop(), pop()
		push(a + b)
	case wasm.OpI64Sub:
		b, a := pop(), pop()
		push(a - b)
	case wasm.OpI64Mul:
		b, a := pop(), pop()
		push(a * b)
	case wasm.OpI64DivS:
		b, a := int64(pop()), int64(pop())
		push(uint64(i64DivS(a, b)))
	case wasm.OpI64DivU:
		b, a := pop(), pop()
		if b == 0 {
			trap(TrapDivByZero)
		}
		push(a / b)
	case wasm.OpI64RemS:
		b, a := int64(pop()), int64(pop())
		if b == 0 {
			trap(TrapDivByZero)
		}
		if a == math.MinInt64 && b == -1 {
			push(0)
		} else {
			push(uint64(a % b))
		}
	case wasm.OpI64RemU:
		b, a := pop(), pop()
		if b == 0 {
			trap(TrapDivByZero)
		}
		push(a % b)
	case wasm.OpI64And:
		b, a := pop(), pop()
		push(a & b)
	case wasm.OpI64Or:
		b, a := pop(), pop()
		push(a | b)
	case wasm.OpI64Xor:
		b, a := pop(), pop()
		push(a ^ b)
	case wasm.OpI64Shl:
		b, a := pop(), pop()
		push(a << (b & 63))
	case wasm.OpI64ShrS:
		b, a := pop(), int64(pop())
		push(uint64(a >> (b & 63)))
	case wasm.OpI64ShrU:
		b, a := pop(), pop()
		push(a >> (b & 63))
	case wasm.OpI64Rotl:
		b, a := pop(), pop()
		push(bits.RotateLeft64(a, int(b&63)))
	case wasm.OpI64Rotr:
		b, a := pop(), pop()
		push(bits.RotateLeft64(a, -int(b&63)))

	// f32 arithmetic.
	case wasm.OpF32Abs:
		push(F32(float32(math.Abs(float64(AsF32(pop()))))))
	case wasm.OpF32Neg:
		push(pop() ^ 0x80000000)
	case wasm.OpF32Ceil:
		push(F32(float32(math.Ceil(float64(AsF32(pop()))))))
	case wasm.OpF32Floor:
		push(F32(float32(math.Floor(float64(AsF32(pop()))))))
	case wasm.OpF32Trunc:
		push(F32(float32(math.Trunc(float64(AsF32(pop()))))))
	case wasm.OpF32Nearest:
		push(F32(float32(math.RoundToEven(float64(AsF32(pop()))))))
	case wasm.OpF32Sqrt:
		push(F32(float32(math.Sqrt(float64(AsF32(pop()))))))
	case wasm.OpF32Add:
		b, a := AsF32(pop()), AsF32(pop())
		push(F32(a + b))
	case wasm.OpF32Sub:
		b, a := AsF32(pop()), AsF32(pop())
		push(F32(a - b))
	case wasm.OpF32Mul:
		b, a := AsF32(pop()), AsF32(pop())
		push(F32(a * b))
	case wasm.OpF32Div:
		b, a := AsF32(pop()), AsF32(pop())
		push(F32(a / b))
	case wasm.OpF32Min:
		b, a := AsF32(pop()), AsF32(pop())
		push(F32(float32(fmin(float64(a), float64(b)))))
	case wasm.OpF32Max:
		b, a := AsF32(pop()), AsF32(pop())
		push(F32(float32(fmax(float64(a), float64(b)))))
	case wasm.OpF32Copysign:
		b, a := AsF32(pop()), AsF32(pop())
		push(F32(float32(math.Copysign(float64(a), float64(b)))))

	// f64 arithmetic.
	case wasm.OpF64Abs:
		push(F64(math.Abs(AsF64(pop()))))
	case wasm.OpF64Neg:
		push(pop() ^ 0x8000000000000000)
	case wasm.OpF64Ceil:
		push(F64(math.Ceil(AsF64(pop()))))
	case wasm.OpF64Floor:
		push(F64(math.Floor(AsF64(pop()))))
	case wasm.OpF64Trunc:
		push(F64(math.Trunc(AsF64(pop()))))
	case wasm.OpF64Nearest:
		push(F64(math.RoundToEven(AsF64(pop()))))
	case wasm.OpF64Sqrt:
		push(F64(math.Sqrt(AsF64(pop()))))
	case wasm.OpF64Add:
		b, a := AsF64(pop()), AsF64(pop())
		push(F64(a + b))
	case wasm.OpF64Sub:
		b, a := AsF64(pop()), AsF64(pop())
		push(F64(a - b))
	case wasm.OpF64Mul:
		b, a := AsF64(pop()), AsF64(pop())
		push(F64(a * b))
	case wasm.OpF64Div:
		b, a := AsF64(pop()), AsF64(pop())
		push(F64(a / b))
	case wasm.OpF64Min:
		b, a := AsF64(pop()), AsF64(pop())
		push(F64(fmin(a, b)))
	case wasm.OpF64Max:
		b, a := AsF64(pop()), AsF64(pop())
		push(F64(fmax(a, b)))
	case wasm.OpF64Copysign:
		b, a := AsF64(pop()), AsF64(pop())
		push(F64(math.Copysign(a, b)))

	// Conversions.
	case wasm.OpI32WrapI64:
		push(uint64(uint32(pop())))
	case wasm.OpI32TruncF32S:
		push(uint64(uint32(truncToI32(float64(AsF32(pop()))))))
	case wasm.OpI32TruncF32U:
		push(uint64(truncToU32(float64(AsF32(pop())))))
	case wasm.OpI32TruncF64S:
		push(uint64(uint32(truncToI32(AsF64(pop())))))
	case wasm.OpI32TruncF64U:
		push(uint64(truncToU32(AsF64(pop()))))
	case wasm.OpI64ExtendI32S:
		push(uint64(int64(int32(pop()))))
	case wasm.OpI64ExtendI32U:
		push(uint64(uint32(pop())))
	case wasm.OpI64TruncF32S:
		push(uint64(truncToI64(float64(AsF32(pop())))))
	case wasm.OpI64TruncF32U:
		push(truncToU64(float64(AsF32(pop()))))
	case wasm.OpI64TruncF64S:
		push(uint64(truncToI64(AsF64(pop()))))
	case wasm.OpI64TruncF64U:
		push(truncToU64(AsF64(pop())))
	case wasm.OpF32ConvertI32S:
		push(F32(float32(int32(pop()))))
	case wasm.OpF32ConvertI32U:
		push(F32(float32(uint32(pop()))))
	case wasm.OpF32ConvertI64S:
		push(F32(float32(int64(pop()))))
	case wasm.OpF32ConvertI64U:
		push(F32(float32(pop())))
	case wasm.OpF32DemoteF64:
		push(F32(float32(AsF64(pop()))))
	case wasm.OpF64ConvertI32S:
		push(F64(float64(int32(pop()))))
	case wasm.OpF64ConvertI32U:
		push(F64(float64(uint32(pop()))))
	case wasm.OpF64ConvertI64S:
		push(F64(float64(int64(pop()))))
	case wasm.OpF64ConvertI64U:
		push(F64(float64(pop())))
	case wasm.OpF64PromoteF32:
		push(F64(float64(AsF32(pop()))))
	case wasm.OpI32ReinterpretF32, wasm.OpI64ReinterpretF64,
		wasm.OpF32ReinterpretI32, wasm.OpF64ReinterpretI64:
		// Bit patterns are already the stack representation.

	default:
		panic("interp: unhandled opcode " + op.String())
	}
	return stack
}
