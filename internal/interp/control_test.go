package interp_test

import (
	"strings"
	"testing"

	"wasabi/internal/builder"
	"wasabi/internal/interp"
	"wasabi/internal/validate"
	"wasabi/internal/wasm"
)

func instantiate(t *testing.T, b *builder.Builder, imports interp.Imports) *interp.Instance {
	t.Helper()
	m := b.Build()
	if err := validate.Module(m); err != nil {
		t.Fatalf("test module invalid: %v", err)
	}
	inst, err := interp.Instantiate(m, imports)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func invokeI32(t *testing.T, inst *interp.Instance, name string, args ...interp.Value) int32 {
	t.Helper()
	res, err := inst.Invoke(name, args...)
	if err != nil {
		t.Fatalf("invoke %s: %v", name, err)
	}
	return interp.AsI32(res[0])
}

func TestIfElse(t *testing.T) {
	b := builder.New()
	f := b.Func("f", builder.V(wasm.I32), builder.V(wasm.I32))
	f.Get(0)
	f.IfT(wasm.I32).I32(100).Else().I32(200).End()
	f.Done()
	inst := instantiate(t, b, nil)
	if got := invokeI32(t, inst, "f", interp.I32(1)); got != 100 {
		t.Errorf("true arm: %d", got)
	}
	if got := invokeI32(t, inst, "f", interp.I32(0)); got != 200 {
		t.Errorf("false arm: %d", got)
	}
	if got := invokeI32(t, inst, "f", interp.I32(-7)); got != 100 {
		t.Errorf("nonzero is true: %d", got)
	}
}

func TestIfWithoutElse(t *testing.T) {
	b := builder.New()
	f := b.Func("f", builder.V(wasm.I32), builder.V(wasm.I32))
	acc := f.Local(wasm.I32)
	f.I32(1).Set(acc)
	f.Get(0).If().I32(41).Get(acc).Op(wasm.OpI32Add).Set(acc).End()
	f.Get(acc)
	f.Done()
	inst := instantiate(t, b, nil)
	if got := invokeI32(t, inst, "f", interp.I32(1)); got != 42 {
		t.Errorf("taken: %d", got)
	}
	if got := invokeI32(t, inst, "f", interp.I32(0)); got != 1 {
		t.Errorf("skipped: %d", got)
	}
}

func TestBrTable(t *testing.T) {
	// f(x): 0 -> 10, 1 -> 11, 2 -> 12, else -> 99.
	b := builder.New()
	f := b.Func("f", builder.V(wasm.I32), builder.V(wasm.I32))
	out := f.Local(wasm.I32)
	f.Block().Block().Block().Block()
	f.Get(0)
	f.BrTable([]uint32{0, 1, 2}, 3)
	f.End().I32(10).Set(out).Br(2)
	f.End().I32(11).Set(out).Br(1)
	f.End().I32(12).Set(out).Br(0)
	f.End()
	f.Get(out)
	// default falls out of the outermost block with out still 0; patch it:
	f.IfT(wasm.I32).Get(out).Else().I32(99).End()
	f.Done()
	inst := instantiate(t, b, nil)
	for _, c := range [][2]int32{{0, 10}, {1, 11}, {2, 12}, {3, 99}, {1000, 99}, {-1, 99}} {
		if got := invokeI32(t, inst, "f", interp.I32(c[0])); got != c[1] {
			t.Errorf("f(%d) = %d, want %d", c[0], got, c[1])
		}
	}
}

func TestLoopBackEdgeAndBlockResult(t *testing.T) {
	// Collatz length, capped: exercises loop back-edges, br_if, if/else.
	b := builder.New()
	f := b.Func("collatz", builder.V(wasm.I32), builder.V(wasm.I32))
	n := uint32(0)
	steps := f.Local(wasm.I32)
	f.Block().Loop()
	// if n <= 1 break
	f.Get(n).I32(1).Op(wasm.OpI32LeU).BrIf(1)
	// if steps > 1000 break (safety)
	f.Get(steps).I32(1000).Op(wasm.OpI32GtS).BrIf(1)
	// n = n%2 == 0 ? n/2 : 3n+1
	f.Get(n).I32(1).Op(wasm.OpI32And)
	f.IfT(wasm.I32)
	f.Get(n).I32(3).Op(wasm.OpI32Mul).I32(1).Op(wasm.OpI32Add)
	f.Else()
	f.Get(n).I32(1).Op(wasm.OpI32ShrU)
	f.End()
	f.Set(n)
	f.Get(steps).I32(1).Op(wasm.OpI32Add).Set(steps)
	f.Br(0)
	f.End().End()
	f.Get(steps)
	f.Done()
	inst := instantiate(t, b, nil)
	for _, c := range [][2]int32{{1, 0}, {2, 1}, {3, 7}, {6, 8}, {27, 111}} {
		if got := invokeI32(t, inst, "collatz", interp.I32(c[0])); got != c[1] {
			t.Errorf("collatz(%d) = %d, want %d", c[0], got, c[1])
		}
	}
}

func TestBrCarriesBlockResult(t *testing.T) {
	b := builder.New()
	f := b.Func("f", builder.V(wasm.I32), builder.V(wasm.I32))
	f.BlockT(wasm.I32)
	f.I32(7)
	f.Get(0).BrIf(0) // carry 7 out if arg != 0
	f.Drop().I32(13)
	f.End()
	f.Done()
	inst := instantiate(t, b, nil)
	if got := invokeI32(t, inst, "f", interp.I32(1)); got != 7 {
		t.Errorf("taken: %d", got)
	}
	if got := invokeI32(t, inst, "f", interp.I32(0)); got != 13 {
		t.Errorf("fallthrough: %d", got)
	}
}

func TestEarlyReturn(t *testing.T) {
	b := builder.New()
	f := b.Func("f", builder.V(wasm.I32), builder.V(wasm.I32))
	f.Get(0).If().I32(1).Return().End()
	f.I32(2)
	f.Done()
	inst := instantiate(t, b, nil)
	if got := invokeI32(t, inst, "f", interp.I32(5)); got != 1 {
		t.Errorf("early: %d", got)
	}
	if got := invokeI32(t, inst, "f", interp.I32(0)); got != 2 {
		t.Errorf("normal: %d", got)
	}
}

func TestRecursionAndStackExhaustion(t *testing.T) {
	b := builder.New()
	f := b.Func("fib", builder.V(wasm.I32), builder.V(wasm.I32))
	f.Get(0).I32(2).Op(wasm.OpI32LtS)
	f.IfT(wasm.I32)
	f.Get(0)
	f.Else()
	f.Get(0).I32(1).Op(wasm.OpI32Sub).Call(f.Index)
	f.Get(0).I32(2).Op(wasm.OpI32Sub).Call(f.Index)
	f.Op(wasm.OpI32Add)
	f.End()
	f.Done()

	inf := b.Func("forever", nil, nil)
	inf.Call(inf.Index)
	inf.Done()

	inst := instantiate(t, b, nil)
	if got := invokeI32(t, inst, "fib", interp.I32(15)); got != 610 {
		t.Errorf("fib(15) = %d", got)
	}
	_, err := inst.Invoke("forever")
	if err == nil || !strings.Contains(err.Error(), interp.TrapStackExhausted) {
		t.Errorf("infinite recursion: %v", err)
	}
	// The instance must remain usable after a trap.
	if got := invokeI32(t, inst, "fib", interp.I32(10)); got != 55 {
		t.Errorf("fib(10) after trap = %d", got)
	}
}

func TestCallIndirectTraps(t *testing.T) {
	b := builder.New()
	b.Table(4)
	g := b.Func("g", nil, builder.V(wasm.I32))
	g.I32(7)
	g.Done()
	h := b.Func("h", builder.V(wasm.F64), builder.V(wasm.F64)) // different type
	h.Get(0)
	h.Done()
	b.Elem(0, g.Index, h.Index) // slots 0,1 filled; 2,3 null
	f := b.Func("f", builder.V(wasm.I32), builder.V(wasm.I32))
	f.Get(0).CallIndirect(nil, builder.V(wasm.I32))
	f.Done()
	inst := instantiate(t, b, nil)

	if got := invokeI32(t, inst, "f", interp.I32(0)); got != 7 {
		t.Errorf("valid indirect call: %d", got)
	}
	_, err := inst.Invoke("f", interp.I32(1))
	if err == nil || !strings.Contains(err.Error(), interp.TrapIndirectMismatch) {
		t.Errorf("type mismatch: %v", err)
	}
	_, err = inst.Invoke("f", interp.I32(2))
	if err == nil || !strings.Contains(err.Error(), interp.TrapUndefinedElement) {
		t.Errorf("null slot: %v", err)
	}
	_, err = inst.Invoke("f", interp.I32(100))
	if err == nil || !strings.Contains(err.Error(), interp.TrapTableOutOfBounds) {
		t.Errorf("out of bounds: %v", err)
	}
}

func TestMemoryOps(t *testing.T) {
	b := builder.New()
	b.Memory(1)
	f := b.Func("roundtrip", builder.V(wasm.I32), builder.V(wasm.I32))
	// store8 then load8_s: sign extension through memory.
	f.I32(10).Get(0).Store(wasm.OpI32Store8, 0)
	f.I32(10).Load(wasm.OpI32Load8S, 0)
	f.Done()

	grow := b.Func("grow", builder.V(wasm.I32), builder.V(wasm.I32))
	grow.Get(0).Emit(wasm.Instr{Op: wasm.OpMemoryGrow})
	grow.Done()

	size := b.Func("size", nil, builder.V(wasm.I32))
	size.Emit(wasm.Instr{Op: wasm.OpMemorySize})
	size.Done()

	oob := b.Func("oob", builder.V(wasm.I32), builder.V(wasm.I32))
	oob.Get(0).Load(wasm.OpI32Load, 0)
	oob.Done()

	inst := instantiate(t, b, nil)
	if got := invokeI32(t, inst, "roundtrip", interp.I32(-1)); got != -1 {
		t.Errorf("store8/load8_s(-1) = %d", got)
	}
	if got := invokeI32(t, inst, "roundtrip", interp.I32(130)); got != -126 {
		t.Errorf("store8/load8_s(130) = %d", got)
	}
	if got := invokeI32(t, inst, "size"); got != 1 {
		t.Errorf("initial size = %d", got)
	}
	if got := invokeI32(t, inst, "grow", interp.I32(2)); got != 1 {
		t.Errorf("grow returned %d, want previous size 1", got)
	}
	if got := invokeI32(t, inst, "size"); got != 3 {
		t.Errorf("size after grow = %d", got)
	}
	// Growing past the cap reports -1 and leaves the memory usable.
	if got := invokeI32(t, inst, "grow", interp.I32(1<<20)); got != -1 {
		t.Errorf("oversized grow returned %d, want -1", got)
	}
	_, err := inst.Invoke("oob", interp.I32(3*wasm.PageSize-3))
	if err == nil || !strings.Contains(err.Error(), interp.TrapOutOfBounds) {
		t.Errorf("oob: %v", err)
	}
	// The last in-bounds word still works.
	if got := invokeI32(t, inst, "oob", interp.I32(3*wasm.PageSize-4)); got != 0 {
		t.Errorf("last word = %d", got)
	}
}

func TestGlobalsAndStart(t *testing.T) {
	b := builder.New()
	g := b.GlobalI32(true, 10)
	setup := b.Func("", nil, nil)
	setup.GGet(g).I32(32).Op(wasm.OpI32Add).GSet(g)
	b.Start(setup.Done())
	f := b.Func("get", nil, builder.V(wasm.I32))
	f.GGet(g)
	f.Done()
	inst := instantiate(t, b, nil)
	if got := invokeI32(t, inst, "get"); got != 42 {
		t.Errorf("start function did not run: global = %d", got)
	}
}

func TestHostFunctionInterop(t *testing.T) {
	var observed []int64
	b := builder.New()
	host := b.ImportFunc("env", "observe", builder.Sig(builder.V(wasm.I64), builder.V(wasm.I64)))
	f := b.Func("f", builder.V(wasm.I64), builder.V(wasm.I64))
	f.Get(0).Call(host).I64(1).Op(wasm.OpI64Add)
	f.Done()
	inst := instantiate(t, b, interp.Imports{
		"env": {
			"observe": &interp.HostFunc{
				Type: builder.Sig(builder.V(wasm.I64), builder.V(wasm.I64)),
				Fn: func(_ *interp.Instance, args []interp.Value) ([]interp.Value, error) {
					observed = append(observed, interp.AsI64(args[0]))
					return []interp.Value{interp.I64(interp.AsI64(args[0]) * 2)}, nil
				},
			},
		},
	})
	res, err := inst.Invoke("f", interp.I64(21))
	if err != nil {
		t.Fatal(err)
	}
	if got := interp.AsI64(res[0]); got != 43 {
		t.Errorf("f(21) = %d, want 43", got)
	}
	if len(observed) != 1 || observed[0] != 21 {
		t.Errorf("host observed %v", observed)
	}
	// Import type mismatch must fail instantiation.
	_, err = interp.Instantiate(b.Build(), interp.Imports{
		"env": {"observe": &interp.HostFunc{Type: builder.Sig(nil, nil), Fn: nil}},
	})
	if err == nil {
		t.Error("expected type-mismatch instantiation error")
	}
}

func TestUnreachableTrap(t *testing.T) {
	b := builder.New()
	f := b.Func("f", nil, nil)
	f.Op(wasm.OpUnreachable)
	f.Done()
	inst := instantiate(t, b, nil)
	_, err := inst.Invoke("f")
	if err == nil || !strings.Contains(err.Error(), interp.TrapUnreachable) {
		t.Errorf("got %v", err)
	}
}
