package interp_test

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"wasabi/internal/builder"
	"wasabi/internal/interp"
	"wasabi/internal/wasm"
)

// unop builds and runs `op` applied to one constant.
func runUnop(t *testing.T, op wasm.Opcode, arg interp.Value) (interp.Value, error) {
	t.Helper()
	in, out, ok := wasm.NumericSig(op)
	if !ok || len(in) != 1 {
		t.Fatalf("%s is not unary", op)
	}
	b := builder.New()
	f := b.Func("f", builder.V(in[0]), builder.V(out[0]))
	f.Get(0).Op(op)
	f.Done()
	inst, err := interp.Instantiate(b.Build(), nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := inst.Invoke("f", arg)
	if err != nil {
		return 0, err
	}
	return res[0], nil
}

// runBinop builds and runs a binary op on two arguments.
func runBinop(t *testing.T, op wasm.Opcode, a, b interp.Value) (interp.Value, error) {
	t.Helper()
	in, out, ok := wasm.NumericSig(op)
	if !ok || len(in) != 2 {
		t.Fatalf("%s is not binary", op)
	}
	bb := builder.New()
	f := bb.Func("f", builder.V(in[0], in[1]), builder.V(out[0]))
	f.Get(0).Get(1).Op(op)
	f.Done()
	inst, err := interp.Instantiate(bb.Build(), nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := inst.Invoke("f", a, b)
	if err != nil {
		return 0, err
	}
	return res[0], nil
}

func TestI32Arithmetic(t *testing.T) {
	cases := []struct {
		op   wasm.Opcode
		a, b int32
		want int32
	}{
		{wasm.OpI32Add, 2, 3, 5},
		{wasm.OpI32Add, math.MaxInt32, 1, math.MinInt32}, // wraparound
		{wasm.OpI32Sub, 2, 3, -1},
		{wasm.OpI32Mul, -4, 3, -12},
		{wasm.OpI32DivS, 7, -2, -3}, // truncation toward zero
		{wasm.OpI32DivU, -1, 2, math.MaxInt32},
		{wasm.OpI32RemS, 7, -2, 1},
		{wasm.OpI32RemS, math.MinInt32, -1, 0}, // special case: no trap
		{wasm.OpI32RemU, 7, 3, 1},
		{wasm.OpI32And, 0b1100, 0b1010, 0b1000},
		{wasm.OpI32Or, 0b1100, 0b1010, 0b1110},
		{wasm.OpI32Xor, 0b1100, 0b1010, 0b0110},
		{wasm.OpI32Shl, 1, 35, 8},   // shift count mod 32
		{wasm.OpI32ShrS, -8, 1, -4}, // arithmetic
		{wasm.OpI32ShrU, -8, 1, 0x7FFFFFFC},
		{wasm.OpI32Rotl, -0x7FFFFFFF, 1, 3}, // 0x80000001 rotl 1 = 3
		{wasm.OpI32Rotr, 3, 1, -0x7FFFFFFF},
	}
	for _, c := range cases {
		got, err := runBinop(t, c.op, interp.I32(c.a), interp.I32(c.b))
		if err != nil {
			t.Errorf("%s(%d, %d): %v", c.op, c.a, c.b, err)
			continue
		}
		if interp.AsI32(got) != c.want {
			t.Errorf("%s(%d, %d) = %d, want %d", c.op, c.a, c.b, interp.AsI32(got), c.want)
		}
	}
}

func TestI32UnaryAndComparisons(t *testing.T) {
	if got, _ := runUnop(t, wasm.OpI32Clz, interp.I32(1)); interp.AsI32(got) != 31 {
		t.Errorf("clz(1) = %d", interp.AsI32(got))
	}
	if got, _ := runUnop(t, wasm.OpI32Ctz, interp.I32(8)); interp.AsI32(got) != 3 {
		t.Errorf("ctz(8) = %d", interp.AsI32(got))
	}
	if got, _ := runUnop(t, wasm.OpI32Clz, interp.I32(0)); interp.AsI32(got) != 32 {
		t.Errorf("clz(0) = %d", interp.AsI32(got))
	}
	if got, _ := runUnop(t, wasm.OpI32Popcnt, interp.I32(-1)); interp.AsI32(got) != 32 {
		t.Errorf("popcnt(-1) = %d", interp.AsI32(got))
	}
	if got, _ := runUnop(t, wasm.OpI32Eqz, interp.I32(0)); interp.AsI32(got) != 1 {
		t.Errorf("eqz(0) = %d", interp.AsI32(got))
	}
	cmp := []struct {
		op   wasm.Opcode
		a, b int32
		want int32
	}{
		{wasm.OpI32LtS, -1, 1, 1},
		{wasm.OpI32LtU, -1, 1, 0}, // -1 is large unsigned
		{wasm.OpI32GeU, -1, 1, 1},
		{wasm.OpI32GtS, 5, 5, 0},
		{wasm.OpI32LeS, 5, 5, 1},
		{wasm.OpI32Eq, 5, 5, 1},
		{wasm.OpI32Ne, 5, 5, 0},
	}
	for _, c := range cmp {
		got, err := runBinop(t, c.op, interp.I32(c.a), interp.I32(c.b))
		if err != nil || interp.AsI32(got) != c.want {
			t.Errorf("%s(%d, %d) = %d (%v), want %d", c.op, c.a, c.b, interp.AsI32(got), err, c.want)
		}
	}
}

func TestIntegerTraps(t *testing.T) {
	cases := []struct {
		op   wasm.Opcode
		a, b interp.Value
		want string
	}{
		{wasm.OpI32DivS, interp.I32(1), interp.I32(0), interp.TrapDivByZero},
		{wasm.OpI32DivU, interp.I32(1), interp.I32(0), interp.TrapDivByZero},
		{wasm.OpI32RemS, interp.I32(1), interp.I32(0), interp.TrapDivByZero},
		{wasm.OpI32DivS, interp.I32(math.MinInt32), interp.I32(-1), interp.TrapIntOverflow},
		{wasm.OpI64DivS, interp.I64(math.MinInt64), interp.I64(-1), interp.TrapIntOverflow},
		{wasm.OpI64RemU, interp.I64(1), interp.I64(0), interp.TrapDivByZero},
	}
	for _, c := range cases {
		_, err := runBinop(t, c.op, c.a, c.b)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want %q", c.op, err, c.want)
		}
	}
}

func TestTruncTraps(t *testing.T) {
	cases := []struct {
		op   wasm.Opcode
		arg  interp.Value
		want string
	}{
		{wasm.OpI32TruncF64S, interp.F64(math.NaN()), interp.TrapInvalidConversion},
		{wasm.OpI32TruncF64S, interp.F64(3e9), interp.TrapIntOverflow},
		{wasm.OpI32TruncF64U, interp.F64(-1), interp.TrapIntOverflow},
		{wasm.OpI32TruncF32S, interp.F32(float32(math.Inf(1))), interp.TrapIntOverflow},
		{wasm.OpI64TruncF64S, interp.F64(1e19), interp.TrapIntOverflow},
		{wasm.OpI64TruncF64U, interp.F64(2e19), interp.TrapIntOverflow},
	}
	for _, c := range cases {
		_, err := runUnop(t, c.op, c.arg)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want %q", c.op, err, c.want)
		}
	}
	// Boundary values that must NOT trap.
	if got, err := runUnop(t, wasm.OpI32TruncF64S, interp.F64(-2147483648.0)); err != nil || interp.AsI32(got) != math.MinInt32 {
		t.Errorf("trunc(-2^31) = %v, %v", got, err)
	}
	if got, err := runUnop(t, wasm.OpI32TruncF64U, interp.F64(4294967295.0)); err != nil || uint32(got) != math.MaxUint32 {
		t.Errorf("trunc(2^32-1) = %v, %v", got, err)
	}
	if got, err := runUnop(t, wasm.OpI64TruncF64S, interp.F64(-9.223372036854776e18)); err != nil || interp.AsI64(got) != math.MinInt64 {
		t.Errorf("trunc(-2^63) = %v, %v", got, err)
	}
}

func TestFloatSemantics(t *testing.T) {
	// NaN propagation in min/max.
	got, _ := runBinop(t, wasm.OpF64Min, interp.F64(1), interp.F64(math.NaN()))
	if !math.IsNaN(interp.AsF64(got)) {
		t.Error("f64.min(1, NaN) should be NaN")
	}
	// Signed zeros.
	got, _ = runBinop(t, wasm.OpF64Min, interp.F64(math.Copysign(0, -1)), interp.F64(0))
	if !math.Signbit(interp.AsF64(got)) {
		t.Error("f64.min(-0, +0) should be -0")
	}
	got, _ = runBinop(t, wasm.OpF64Max, interp.F64(math.Copysign(0, -1)), interp.F64(0))
	if math.Signbit(interp.AsF64(got)) {
		t.Error("f64.max(-0, +0) should be +0")
	}
	// neg must flip the sign bit even of NaN.
	got, _ = runUnop(t, wasm.OpF64Neg, interp.F64(math.NaN()))
	if !math.Signbit(interp.AsF64(got)) {
		t.Error("f64.neg(NaN) should have the sign bit set")
	}
	// nearest = round half to even.
	got, _ = runUnop(t, wasm.OpF64Nearest, interp.F64(2.5))
	if interp.AsF64(got) != 2.0 {
		t.Errorf("nearest(2.5) = %v, want 2", interp.AsF64(got))
	}
	got, _ = runUnop(t, wasm.OpF64Nearest, interp.F64(3.5))
	if interp.AsF64(got) != 4.0 {
		t.Errorf("nearest(3.5) = %v, want 4", interp.AsF64(got))
	}
	// f32 arithmetic must round to single precision.
	got, _ = runBinop(t, wasm.OpF32Add, interp.F32(1), interp.F32(1e-10))
	if interp.AsF32(got) != 1.0 {
		t.Errorf("f32 1 + 1e-10 = %v, want 1 (single precision)", interp.AsF32(got))
	}
	// Division by zero is Inf, not a trap.
	got, err := runBinop(t, wasm.OpF64Div, interp.F64(1), interp.F64(0))
	if err != nil || !math.IsInf(interp.AsF64(got), 1) {
		t.Errorf("f64 1/0 = %v, %v", interp.AsF64(got), err)
	}
}

func TestConversions(t *testing.T) {
	if got, _ := runUnop(t, wasm.OpI32WrapI64, interp.I64(0x1_0000_0005)); interp.AsI32(got) != 5 {
		t.Errorf("wrap = %d", interp.AsI32(got))
	}
	if got, _ := runUnop(t, wasm.OpI64ExtendI32S, interp.I32(-1)); interp.AsI64(got) != -1 {
		t.Errorf("extend_s = %d", interp.AsI64(got))
	}
	if got, _ := runUnop(t, wasm.OpI64ExtendI32U, interp.I32(-1)); interp.AsI64(got) != 0xFFFFFFFF {
		t.Errorf("extend_u = %d", interp.AsI64(got))
	}
	if got, _ := runUnop(t, wasm.OpF64ConvertI64U, interp.I64(-1)); interp.AsF64(got) != 1.8446744073709552e19 {
		t.Errorf("convert_u = %v", interp.AsF64(got))
	}
	if got, _ := runUnop(t, wasm.OpF32DemoteF64, interp.F64(1e300)); !math.IsInf(float64(interp.AsF32(got)), 1) {
		t.Errorf("demote overflow = %v", interp.AsF32(got))
	}
	// Reinterpretations preserve bits exactly.
	if got, _ := runUnop(t, wasm.OpI64ReinterpretF64, interp.F64(1.0)); uint64(got) != 0x3FF0000000000000 {
		t.Errorf("reinterpret = %#x", got)
	}
	if got, _ := runUnop(t, wasm.OpF32ReinterpretI32, interp.I32(0x7FC00000)); !math.IsNaN(float64(interp.AsF32(got))) {
		t.Error("reinterpret to NaN failed")
	}
}

// Properties: the interpreter's i32/i64 arithmetic agrees with Go's
// fixed-width semantics for arbitrary inputs.
func TestQuickIntSemantics(t *testing.T) {
	check := func(name string, f func(a, b int32) bool) {
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	check("add", func(a, b int32) bool {
		got, err := runBinop(t, wasm.OpI32Add, interp.I32(a), interp.I32(b))
		return err == nil && interp.AsI32(got) == a+b
	})
	check("mul", func(a, b int32) bool {
		got, err := runBinop(t, wasm.OpI32Mul, interp.I32(a), interp.I32(b))
		return err == nil && interp.AsI32(got) == a*b
	})
	check("shr_u", func(a, b int32) bool {
		got, err := runBinop(t, wasm.OpI32ShrU, interp.I32(a), interp.I32(b))
		return err == nil && uint32(got) == uint32(a)>>(uint32(b)&31)
	})
	check("div_s agrees with Go when defined", func(a, b int32) bool {
		if b == 0 || (a == math.MinInt32 && b == -1) {
			return true
		}
		got, err := runBinop(t, wasm.OpI32DivS, interp.I32(a), interp.I32(b))
		return err == nil && interp.AsI32(got) == a/b
	})
	if err := quick.Check(func(a, b int64) bool {
		got, err := runBinop(t, wasm.OpI64Xor, interp.I64(a), interp.I64(b))
		return err == nil && interp.AsI64(got) == a^b
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Errorf("i64 xor: %v", err)
	}
	// f64 add agrees with Go float64 (bit-for-bit, NaN aside).
	if err := quick.Check(func(a, b float64) bool {
		got, err := runBinop(t, wasm.OpF64Add, interp.F64(a), interp.F64(b))
		if err != nil {
			return false
		}
		want := a + b
		if math.IsNaN(want) {
			return math.IsNaN(interp.AsF64(got))
		}
		return interp.AsF64(got) == want
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Errorf("f64 add: %v", err)
	}
}
