package interp

import "math"

// Default resource limits. Each is the effective bound when the matching
// Config field is zero; embedders raise or lower them per instance through
// InstantiateWith (or per engine through the wasabi options).
const (
	// MaxCallDepthDefault bounds wasm call recursion.
	MaxCallDepthDefault = 8192
	// DefaultMaxMemoryPages bounds linear-memory growth to 512 MiB.
	DefaultMaxMemoryPages = 8192
	// DefaultMaxTableElems bounds host-driven table growth.
	DefaultMaxTableElems = 1 << 20
	// DefaultMaxFuncStack bounds the per-function operand-stack high-water
	// mark the compile pass accepts. The threaded form pre-allocates one flat
	// buffer of this many values per active call, so the bound is what keeps
	// a hostile function body from demanding an absurd allocation.
	DefaultMaxFuncStack = 1 << 16
)

// Config is the containment configuration of one instance: whether the
// compile pass weaves fuel/interruption guards into the threaded code, and
// the resource limits instantiation and execution enforce. The zero value is
// the permissive default — unguarded code (zero metering overhead, not
// interruptible) under the package's default limits.
type Config struct {
	// Guarded compiles containment guards into the threaded form: one fused
	// fuel-decrement + interrupt-check instruction per basic block. Required
	// for fuel metering and asynchronous interruption; costs nothing when
	// false because no guard instructions are emitted at all.
	Guarded bool

	// Fuel is the initial fuel budget of a guarded instance. Each guard
	// charges the number of source instructions its basic block covers, so
	// consumption is deterministic: the same invocation consumes the same
	// fuel. Zero means unlimited (guards still check the interrupt flag).
	// Instance.SetFuel adjusts the budget between invocations.
	Fuel uint64

	// MaxMemoryPages caps linear-memory size in 64 KiB pages, growth and
	// initial allocation alike. Zero means DefaultMaxMemoryPages.
	MaxMemoryPages uint32

	// MaxTableElems caps table size, growth and initial allocation alike.
	// Zero means DefaultMaxTableElems.
	MaxTableElems uint32

	// MaxCallDepth caps wasm call recursion. Zero means MaxCallDepthDefault.
	MaxCallDepth int

	// MaxFuncStack caps the operand-stack high-water mark of a single
	// function body; compile rejects bodies beyond it with ErrLimit. Zero
	// means DefaultMaxFuncStack.
	MaxFuncStack int
}

func (c *Config) maxMemoryPages() uint32 {
	if c.MaxMemoryPages == 0 {
		return DefaultMaxMemoryPages
	}
	return c.MaxMemoryPages
}

func (c *Config) maxTableElems() uint32 {
	if c.MaxTableElems == 0 {
		return DefaultMaxTableElems
	}
	return c.MaxTableElems
}

func (c *Config) maxCallDepth() int {
	if c.MaxCallDepth == 0 {
		return MaxCallDepthDefault
	}
	return c.MaxCallDepth
}

func (c *Config) maxFuncStack() int {
	if c.MaxFuncStack == 0 {
		return DefaultMaxFuncStack
	}
	return c.MaxFuncStack
}

// initialFuel maps the configured budget to the runtime representation:
// unlimited is MaxInt64, never reachable by per-block decrements.
func (c *Config) initialFuel() int64 {
	if c.Fuel == 0 || c.Fuel > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(c.Fuel)
}
