package interp

import (
	"wasabi/internal/wasm"
)

// Memory is an instantiated linear memory. HasMax records whether the module
// declared a maximum at all: a declared maximum of 0 is a real limit (the
// memory may never grow), which is different from "no maximum". Cap is the
// host-side ceiling beyond the declared maximum: instantiation sets it from
// Config.MaxMemoryPages (0 means DefaultMaxMemoryPages) so a module without
// a declared maximum still cannot grow the host without bound.
type Memory struct {
	Data   []byte
	MaxPgs uint32 // the declared maximum; meaningful only when HasMax
	HasMax bool
	Cap    uint32 // host-configured page ceiling; 0 means DefaultMaxMemoryPages
}

// NewMemory allocates a memory with the given limits.
func NewMemory(l wasm.Limits) *Memory {
	return &Memory{
		Data:   make([]byte, int(l.Min)*wasm.PageSize),
		MaxPgs: l.Max,
		HasMax: l.HasMax,
	}
}

// Pages returns the current size in 64 KiB pages.
func (m *Memory) Pages() uint32 { return uint32(len(m.Data) / wasm.PageSize) }

// Grow adds delta pages, returning the previous page count, or -1 on failure
// (the memory.grow semantics). Growth fails past the declared maximum — even
// a declared maximum of 0 — or past the host-configured cap.
func (m *Memory) Grow(delta uint32) int32 {
	old := m.Pages()
	newPages := uint64(old) + uint64(delta)
	limit := uint64(DefaultMaxMemoryPages)
	if m.Cap != 0 {
		limit = uint64(m.Cap)
	}
	if m.HasMax && uint64(m.MaxPgs) < limit {
		limit = uint64(m.MaxPgs)
	}
	if newPages > limit {
		return -1
	}
	if delta > 0 {
		m.Data = append(m.Data, make([]byte, int(delta)*wasm.PageSize)...)
	}
	return int32(old)
}

// effective address computation with overflow checking; traps when the
// access [addr+offset, addr+offset+size) is out of bounds.
func (m *Memory) span(addr uint32, offset uint32, size uint32) []byte {
	ea := uint64(addr) + uint64(offset)
	if ea+uint64(size) > uint64(len(m.Data)) {
		trapf(TrapOutOfBounds, "address %d+%d size %d exceeds memory size %d", addr, offset, size, len(m.Data))
	}
	return m.Data[ea : ea+uint64(size)]
}

func (m *Memory) load(addr, offset, size uint32) uint64 {
	b := m.span(addr, offset, size)
	var v uint64
	switch size {
	case 1:
		v = uint64(b[0])
	case 2:
		v = uint64(b[0]) | uint64(b[1])<<8
	case 4:
		v = uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24
	case 8:
		v = uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
			uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
	}
	return v
}

func (m *Memory) store(addr, offset, size uint32, v uint64) {
	b := m.span(addr, offset, size)
	switch size {
	case 1:
		b[0] = byte(v)
	case 2:
		b[0], b[1] = byte(v), byte(v>>8)
	case 4:
		b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	case 8:
		b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		b[4], b[5], b[6], b[7] = byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56)
	}
}

// copyWithin implements memory.copy: bounds are checked up front (a trap
// leaves memory untouched, even for len 0 past the end) and overlapping
// ranges copy with memmove semantics.
func (m *Memory) copyWithin(dst, src, n uint32) {
	if uint64(dst)+uint64(n) > uint64(len(m.Data)) || uint64(src)+uint64(n) > uint64(len(m.Data)) {
		trapf(TrapOutOfBounds, "memory.copy dst %d src %d len %d exceeds memory size %d", dst, src, n, len(m.Data))
	}
	copy(m.Data[dst:uint64(dst)+uint64(n)], m.Data[src:uint64(src)+uint64(n)])
}

// fill implements memory.fill: bounds are checked up front, then [dst,
// dst+n) is set to val.
func (m *Memory) fill(dst uint32, val byte, n uint32) {
	if uint64(dst)+uint64(n) > uint64(len(m.Data)) {
		trapf(TrapOutOfBounds, "memory.fill dst %d len %d exceeds memory size %d", dst, n, len(m.Data))
	}
	b := m.Data[dst : uint64(dst)+uint64(n)]
	for i := range b {
		b[i] = val
	}
}

// Table is an instantiated funcref table; -1 marks uninitialized slots.
// Like Memory, HasMax distinguishes a declared maximum of 0 (a real limit)
// from "no maximum", and Cap is the host-configured element ceiling
// (Config.MaxTableElems; 0 means DefaultMaxTableElems).
type Table struct {
	Elems  []int64
	Max    uint32 // the declared maximum; meaningful only when HasMax
	HasMax bool
	Cap    uint32 // host-configured element ceiling; 0 means DefaultMaxTableElems
}

// NewTable allocates a table with the given limits.
func NewTable(l wasm.Limits) *Table {
	t := &Table{Elems: make([]int64, l.Min), Max: l.Max, HasMax: l.HasMax}
	for i := range t.Elems {
		t.Elems[i] = -1
	}
	return t
}

// Grow adds delta uninitialized slots, returning the previous element count,
// or -1 when growth would exceed the declared maximum (even a maximum of 0)
// or the host-configured cap. The MVP has no table.grow instruction; this is
// the embedder-facing path (reference-types-style semantics).
func (t *Table) Grow(delta uint32) int32 {
	old := uint32(len(t.Elems))
	newLen := uint64(old) + uint64(delta)
	limit := uint64(DefaultMaxTableElems)
	if t.Cap != 0 {
		limit = uint64(t.Cap)
	}
	if t.HasMax && uint64(t.Max) < limit {
		limit = uint64(t.Max)
	}
	if newLen > limit {
		return -1
	}
	t.Elems = append(t.Elems, make([]int64, delta)...)
	for i := old; i < uint32(newLen); i++ {
		t.Elems[i] = -1
	}
	return int32(old)
}
