package interp

import (
	"wasabi/internal/wasm"
)

// Memory is an instantiated linear memory.
type Memory struct {
	Data   []byte
	MaxPgs uint32 // 0 means limited only by the implementation cap
}

// maxPagesCap bounds memory growth to 512 MiB to protect the host process.
const maxPagesCap = 8192

// NewMemory allocates a memory with the given limits.
func NewMemory(l wasm.Limits) *Memory {
	m := &Memory{Data: make([]byte, int(l.Min)*wasm.PageSize)}
	if l.HasMax {
		m.MaxPgs = l.Max
	}
	return m
}

// Pages returns the current size in 64 KiB pages.
func (m *Memory) Pages() uint32 { return uint32(len(m.Data) / wasm.PageSize) }

// Grow adds delta pages, returning the previous page count, or -1 on failure
// (the memory.grow semantics).
func (m *Memory) Grow(delta uint32) int32 {
	old := m.Pages()
	newPages := uint64(old) + uint64(delta)
	limit := uint64(maxPagesCap)
	if m.MaxPgs != 0 && uint64(m.MaxPgs) < limit {
		limit = uint64(m.MaxPgs)
	}
	if newPages > limit {
		return -1
	}
	if delta > 0 {
		m.Data = append(m.Data, make([]byte, int(delta)*wasm.PageSize)...)
	}
	return int32(old)
}

// effective address computation with overflow checking; traps when the
// access [addr+offset, addr+offset+size) is out of bounds.
func (m *Memory) span(addr uint32, offset uint32, size uint32) []byte {
	ea := uint64(addr) + uint64(offset)
	if ea+uint64(size) > uint64(len(m.Data)) {
		trapf(TrapOutOfBounds, "address %d+%d size %d exceeds memory size %d", addr, offset, size, len(m.Data))
	}
	return m.Data[ea : ea+uint64(size)]
}

func (m *Memory) load(addr, offset, size uint32) uint64 {
	b := m.span(addr, offset, size)
	var v uint64
	switch size {
	case 1:
		v = uint64(b[0])
	case 2:
		v = uint64(b[0]) | uint64(b[1])<<8
	case 4:
		v = uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24
	case 8:
		v = uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
			uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
	}
	return v
}

func (m *Memory) store(addr, offset, size uint32, v uint64) {
	b := m.span(addr, offset, size)
	switch size {
	case 1:
		b[0] = byte(v)
	case 2:
		b[0], b[1] = byte(v), byte(v>>8)
	case 4:
		b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	case 8:
		b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		b[4], b[5], b[6], b[7] = byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56)
	}
}

// Table is an instantiated funcref table; -1 marks uninitialized slots.
type Table struct {
	Elems []int64
	Max   uint32
}

// NewTable allocates a table with the given limits.
func NewTable(l wasm.Limits) *Table {
	t := &Table{Elems: make([]int64, l.Min)}
	for i := range t.Elems {
		t.Elems[i] = -1
	}
	if l.HasMax {
		t.Max = l.Max
	}
	return t
}
