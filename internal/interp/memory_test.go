package interp_test

// Regression tests for the limits semantics of Memory and Table: a declared
// maximum of 0 is a real bound ((memory 0 0) may never grow), distinct from
// an absent maximum, which is bounded only by the implementation cap.

import (
	"strings"
	"testing"

	"wasabi/internal/builder"
	"wasabi/internal/interp"
	"wasabi/internal/wasm"
)

func TestMemoryGrowLimits(t *testing.T) {
	t.Run("grow to declared max", func(t *testing.T) {
		m := interp.NewMemory(wasm.Limits{Min: 1, Max: 3, HasMax: true})
		if got := m.Grow(2); got != 1 {
			t.Fatalf("Grow(2) = %d, want previous size 1", got)
		}
		if got := m.Pages(); got != 3 {
			t.Fatalf("Pages() = %d, want 3", got)
		}
	})
	t.Run("grow past declared max fails", func(t *testing.T) {
		m := interp.NewMemory(wasm.Limits{Min: 1, Max: 2, HasMax: true})
		if got := m.Grow(2); got != -1 {
			t.Fatalf("Grow(2) past max = %d, want -1", got)
		}
		if got := m.Pages(); got != 1 {
			t.Fatalf("failed grow must not change size: %d", got)
		}
		// Exactly reaching the max still works afterwards.
		if got := m.Grow(1); got != 1 {
			t.Fatalf("Grow(1) to max = %d, want 1", got)
		}
	})
	t.Run("declared max of zero is a real bound", func(t *testing.T) {
		m := interp.NewMemory(wasm.Limits{Min: 0, Max: 0, HasMax: true})
		if got := m.Grow(1); got != -1 {
			t.Fatalf("(memory 0 0).Grow(1) = %d, want -1", got)
		}
		if got := m.Grow(0); got != 0 {
			t.Fatalf("(memory 0 0).Grow(0) = %d, want 0", got)
		}
	})
	t.Run("no declared max is capped only by the implementation", func(t *testing.T) {
		m := interp.NewMemory(wasm.Limits{Min: 0})
		if got := m.Grow(1); got != 0 {
			t.Fatalf("Grow(1) without max = %d, want 0", got)
		}
		if got := m.Grow(1 << 20); got != -1 {
			t.Fatalf("Grow past the implementation cap = %d, want -1", got)
		}
	})
}

// TestMemoryGrowMaxZeroInModule runs the same fix through actual wasm
// execution: memory.grow inside a module with (memory 0 0) reports -1.
func TestMemoryGrowMaxZeroInModule(t *testing.T) {
	b := builder.New()
	b.Memory(0) // builder.Memory declares min only; set a real max=0 below
	f := b.Func("grow", builder.V(wasm.I32), builder.V(wasm.I32))
	f.Get(0).Emit(wasm.Instr{Op: wasm.OpMemoryGrow})
	f.Done()
	m := b.Build()
	m.Memories[0] = wasm.Limits{Min: 0, Max: 0, HasMax: true}
	inst, err := interp.Instantiate(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := inst.Invoke("grow", interp.I32(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := interp.AsI32(res[0]); got != -1 {
		t.Errorf("memory.grow on (memory 0 0) = %d, want -1", got)
	}
	if got := interp.AsI32(mustInvoke(t, inst, "grow", interp.I32(0))); got != 0 {
		t.Errorf("memory.grow(0) = %d, want 0", got)
	}
}

func mustInvoke(t *testing.T, inst *interp.Instance, name string, args ...interp.Value) interp.Value {
	t.Helper()
	res, err := inst.Invoke(name, args...)
	if err != nil {
		t.Fatal(err)
	}
	return res[0]
}

func TestTableGrowLimits(t *testing.T) {
	t.Run("grow to declared max", func(t *testing.T) {
		tb := interp.NewTable(wasm.Limits{Min: 2, Max: 4, HasMax: true})
		if got := tb.Grow(2); got != 2 {
			t.Fatalf("Grow(2) = %d, want previous size 2", got)
		}
		if len(tb.Elems) != 4 {
			t.Fatalf("len = %d, want 4", len(tb.Elems))
		}
		if tb.Elems[3] != -1 {
			t.Fatalf("new slots must be uninitialized, got %d", tb.Elems[3])
		}
	})
	t.Run("grow past declared max fails", func(t *testing.T) {
		tb := interp.NewTable(wasm.Limits{Min: 2, Max: 3, HasMax: true})
		if got := tb.Grow(2); got != -1 {
			t.Fatalf("Grow(2) past max = %d, want -1", got)
		}
		if len(tb.Elems) != 2 {
			t.Fatalf("failed grow must not change size: %d", len(tb.Elems))
		}
	})
	t.Run("declared max of zero is a real bound", func(t *testing.T) {
		tb := interp.NewTable(wasm.Limits{Min: 0, Max: 0, HasMax: true})
		if got := tb.Grow(1); got != -1 {
			t.Fatalf("(table 0 0).Grow(1) = %d, want -1", got)
		}
		if got := tb.Grow(0); got != 0 {
			t.Fatalf("(table 0 0).Grow(0) = %d, want 0", got)
		}
	})
	t.Run("no declared max is capped only by the implementation", func(t *testing.T) {
		tb := interp.NewTable(wasm.Limits{Min: 0})
		if got := tb.Grow(8); got != 0 {
			t.Fatalf("Grow(8) without max = %d, want 0", got)
		}
		if got := tb.Grow(1 << 21); got != -1 {
			t.Fatalf("Grow past the implementation cap = %d, want -1", got)
		}
	})
}

// TestMemoryOOBAfterFailedGrow: a failed grow leaves bounds checking intact.
func TestMemoryOOBAfterFailedGrow(t *testing.T) {
	b := builder.New()
	b.Memory(1)
	f := b.Func("oob", builder.V(wasm.I32), builder.V(wasm.I32))
	f.Get(0).Load(wasm.OpI32Load, 0)
	f.Done()
	m := b.Build()
	m.Memories[0] = wasm.Limits{Min: 1, Max: 1, HasMax: true}
	inst, err := interp.Instantiate(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := inst.Memory.Grow(1); got != -1 {
		t.Fatalf("Grow(1) at max = %d, want -1", got)
	}
	_, err = inst.Invoke("oob", interp.I32(int32(wasm.PageSize-2)))
	if err == nil || !strings.Contains(err.Error(), interp.TrapOutOfBounds) {
		t.Errorf("expected out-of-bounds trap, got %v", err)
	}
}
