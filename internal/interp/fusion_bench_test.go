package interp_test

// BenchmarkFusion_* isolate one superinstruction class each, so a regression
// in a single fusion shows up as a regression in exactly one benchmark.
// Every module runs the same shape of counted loop; the loop bodies differ
// only in which fused pattern they are saturated with.

import (
	"testing"

	"wasabi/internal/builder"
	"wasabi/internal/interp"
	"wasabi/internal/wasm"
)

const fusionLoopN = 10_000

// benchLoop instantiates the module and times repeated Invoke("run", n).
func benchLoop(b *testing.B, m *wasm.Module) {
	b.Helper()
	inst, err := interp.Instantiate(m, nil)
	if err != nil {
		b.Fatal(err)
	}
	args := []interp.Value{interp.I32(fusionLoopN)}
	if _, err := inst.Invoke("run", args...); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inst.Invoke("run", args...); err != nil {
			b.Fatal(err)
		}
	}
}

// loopModule builds `run(n)`: a loop executing body n times with locals
// i (index) and acc, returning acc. The loop condition is itself the fused
// compare-and-branch pattern.
func loopModule(body func(f *builder.FuncBuilder, i, acc uint32)) *wasm.Module {
	b := builder.New()
	b.Memory(1)
	f := b.Func("run", builder.V(wasm.I32), builder.V(wasm.I32))
	i := f.Local(wasm.I32)
	acc := f.Local(wasm.I32)
	f.Block().Loop()
	f.Get(i).Get(0).Op(wasm.OpI32GeS).BrIf(1)
	body(f, i, acc)
	f.Get(i).I32(1).Op(wasm.OpI32Add).Set(i)
	f.Br(0)
	f.End().End()
	f.Get(acc)
	f.Done()
	return b.Build()
}

// BenchmarkFusion_GetGetBin: local.get;local.get;binop → one instruction.
func BenchmarkFusion_GetGetBin(b *testing.B) {
	benchLoop(b, loopModule(func(f *builder.FuncBuilder, i, acc uint32) {
		f.Get(acc).Get(i).Op(wasm.OpI32Add).Set(acc)
		f.Get(acc).Get(i).Op(wasm.OpI32Xor).Set(acc)
	}))
}

// BenchmarkFusion_ConstBin: const;binop → one instruction.
func BenchmarkFusion_ConstBin(b *testing.B) {
	benchLoop(b, loopModule(func(f *builder.FuncBuilder, i, acc uint32) {
		f.Get(acc).I32(3).Op(wasm.OpI32Mul).I32(7).Op(wasm.OpI32Add).Set(acc)
	}))
}

// BenchmarkFusion_GetConstCmpBrIf: the dominant loop-condition pattern
// local.get;const;compare;br_if → one instruction (the loop header of every
// module here uses the two-local variant; this body adds the const form).
func BenchmarkFusion_GetConstCmpBrIf(b *testing.B) {
	benchLoop(b, loopModule(func(f *builder.FuncBuilder, i, acc uint32) {
		f.Block()
		f.Get(i).I32(1 << 30).Op(wasm.OpI32LtS).BrIf(0) // fused, almost always taken
		f.Get(acc).I32(1).Op(wasm.OpI32Add).Set(acc)    // nearly never runs
		f.End()
		f.Get(acc).I32(1).Op(wasm.OpI32Add).Set(acc)
	}))
}

// BenchmarkFusion_GetLoadStore: local.get;load and local.get;store with the
// static offset folded into the instruction.
func BenchmarkFusion_GetLoadStore(b *testing.B) {
	benchLoop(b, loopModule(func(f *builder.FuncBuilder, i, acc uint32) {
		f.I32(48).Get(i).Store(wasm.OpI32Store, 0)   // iGetStore: value from a local
		f.Get(acc).Load(wasm.OpI32Load, 16).Set(acc) // iGetLoad: address from a local
		f.Get(i).Load(wasm.OpI32Load8U, 4).Drop()    // iGetLoad with sign/zero mode
	}))
}

// BenchmarkFusion_MultiPush: const;const and local.get;local.get;local.get
// hook-prologue shapes (iConst2 / iGetGetGet feeding a call-free sink).
func BenchmarkFusion_MultiPush(b *testing.B) {
	benchLoop(b, loopModule(func(f *builder.FuncBuilder, i, acc uint32) {
		f.I32(11).I32(13).Op(wasm.OpI32Add) // iConst2 folds to a const here
		f.Get(acc).Get(i).Get(i)            // iGetGetGet
		f.Op(wasm.OpI32Mul).Op(wasm.OpI32Add)
		f.Op(wasm.OpI32Add).Set(acc)
	}))
}

// BenchmarkFusion_SetTee: the set;tee scratch-local pair the instrumenter
// wraps around every hooked binary instruction.
func BenchmarkFusion_SetTee(b *testing.B) {
	benchLoop(b, loopModule(func(f *builder.FuncBuilder, i, acc uint32) {
		s := f.Local(wasm.I32)
		f.Get(acc).Get(i)
		f.Emit(wasm.LocalSet(s), wasm.LocalTee(acc)) // the scratch pair
		f.Drop()
		f.Get(acc).Get(s).Op(wasm.OpI32Add).Set(acc)
	}))
}
