package interp

// This file is the interpreter's compile pass: it lowers a function body from
// the structured wasm.Instr form into a flat, direct-threaded internal
// instruction array in which every control decision has been resolved ahead
// of time. Where the previous interpreter re-walked a runtime label stack and
// consulted matchEnd/matchElse maps on every step, the compiled form knows,
// for each branch, the exact target pc and the exact operand-stack height to
// cut back to — the hot loop only does table-driven jumps, the moral
// equivalent of running on a pre-decoded wasm3-style threaded interpreter
// instead of re-interpreting structure (the overhead the paper's Fig 9
// setting avoids by running on a JIT-ing engine).
//
// The pass is a single forward scan with an abstract stack-height
// interpretation (the same algorithm the validator runs, minus types):
//
//   - block/loop/if/else/end emit no runtime instructions at all; they only
//     move compile-time bookkeeping (control frames, branch fixups).
//   - br/br_if/br_table/return become jumps carrying a pre-computed
//     stack adjustment (target height + carried arity), or plain gotos when
//     the heights already line up.
//   - statically dead code (after br/return/unreachable) is not emitted.
//   - adjacent instruction pairs that dominate real instruction streams are
//     fused into superinstructions (see the iGet* / iConst* opcodes below).
//
// Fusion discipline: a fused group must never straddle a position some
// branch can land on. Every time a branch target is recorded or patched
// (loop headers, else starts, block ends), `barrier` is advanced to the
// current emit position, and peepholes refuse to reach back across it.
// Collapses only ever rewrite the suffix beyond the newest barrier, so
// recorded targets stay valid.
//
// To add a fusion: pick the trigger instruction (the last of the pattern),
// extend the corresponding emit helper (emitBin, the load/store cases, or
// compileBrIf) with a peephole that checks the already-emitted suffix
// against `barrier`, and add an exec case plus a BenchmarkFusion_* in
// fusion_bench_test.go. Keep fused groups semantically identical to the
// unfused sequence — branches may land on the group's first position.

import (
	"fmt"

	"wasabi/internal/wasm"
)

// iop is an internal threaded-code opcode.
type iop uint8

const (
	iInvalid iop = iota
	iUnreachable

	// Control flow. Branch targets are absolute pcs into the code array.
	iBr       // pc = a (heights already line up; plain goto)
	iBrAdjust // pc = a, cut the stack to the packed height/arity in b
	iBrIf     // pop cond; if nonzero: pc = a
	iBrIfAdjust
	iBrIfZero // pop cond; if zero: pc = a (the compiled form of `if`)
	iBrTable  // pop idx; brPool[a : a+b+1], last entry is the default
	iReturn   // return the top b values

	iCall         // a = function index (defined function), b = param count
	iCallHost     // a = function index (imported host function), b = param count
	iCallHostFast // iCallHost via the zero-copy Fast convention (result-less)
	iCallHostEmit // iCallHostFast's record-emit twin (Emit convention: no error path)
	iCallIndirect // a = type index, b = param count

	iDrop
	iDropN // sp -= a (residue of a dead-hook call whose args could not all be unpushed)
	iSelect
	iLocalGet  // push locals[a]
	iLocalSet  // locals[a] = pop
	iLocalTee  // locals[a] = top
	iGlobalGet // push globals[a].Val
	iGlobalSet // globals[a].Val = pop
	iMemorySize
	iMemoryGrow
	iConst // push bits
	iLoad  // pop addr; push load(addr, offset=bits, mode=a)
	iStore // pop value, addr; store (mode=a, offset=bits)
	iUn    // unary numeric; a = wasm opcode
	iBin   // binary numeric; a = wasm opcode

	iTruncSat // saturating truncation; a = 0xFC subopcode (0–7)
	iMemCopy  // pop len, src, dst; copy within linear memory
	iMemFill  // pop len, val, dst; fill linear memory

	// Superinstructions, fused from the dominant adjacent pairs/triples.
	// Instrumented code is full of hook-call prologues (two i32 location
	// constants, then the saved operands from scratch locals), which is why
	// the multi-push fusions pay off so well under hooks.
	iGetGetBin       // push binop(op=bits, locals[a], locals[b])
	iGetBin          // push binop(op=bits, pop, locals[a])
	iConstBin        // push binop(op=a, pop, const=bits)
	iGetConstCmpBrIf // if binop(op=a>>24, locals[a&fuseLocalMask], bits) != 0: pc = b
	iGetLoad         // push load(locals[a], offset=bits, mode=b)
	iGetStore        // pop addr; store(addr, offset=bits, mode=b, value=locals[a])
	iConst2          // push a, then b (two consts whose payloads fit 32 bits)
	iGetGet          // push locals[a], then locals[b]
	iGetGetGet       // push locals[a], locals[b], locals[bits]
	iSetTee          // pop into locals[a]; then locals[b] = top (set;tee pair)

	// Containment guard, emitted only under Config.Guarded: one per basic
	// block, at the first real instruction of the block. a = fuel cost (the
	// number of source instructions the block covers, patched when the block
	// closes), b = source-instruction offset (fault/trap context). Guards sit
	// on every loop header and before every call, so they bound both loops
	// and recursion; a disabled config emits none of them (zero overhead).
	iGuard
)

// fuseLocalMask bounds the local index a fused compare-and-branch can encode
// (the wasm opcode shares the a field's top byte).
const fuseLocalMask = (1 << 24) - 1

// instr is one pre-decoded threaded-code instruction: 24 bytes, pointer-free.
// Which fields are meaningful depends on op (see the iop comments).
type instr struct {
	op   iop
	a, b uint32
	bits uint64
}

// brEntry is one pre-resolved br_table target: the absolute target pc and the
// packed stack adjustment (height<<1 | carriedArity).
type brEntry struct {
	target uint32
	adj    uint32
}

// Memory access modes, pre-decoded from the load/store opcode so exec does a
// single dense switch instead of re-deriving size and sign extension.
const (
	ldRaw32 = iota // 4 bytes, zero-extended (i32.load, f32.load, i64.load32_u)
	ldRaw64        // 8 bytes (i64.load, f64.load)
	ld8U           // 1 byte, zero-extended
	ld16U          // 2 bytes, zero-extended
	ld8S32         // 1 byte, sign-extended to i32
	ld16S32
	ld8S64 // 1 byte, sign-extended to i64
	ld16S64
	ld32S64
)

const (
	st8 = iota
	st16
	st32
	st64
)

// stSizes maps store modes to byte counts.
var stSizes = [4]uint32{1, 2, 4, 8}

func loadModeOf(op wasm.Opcode) uint32 {
	switch op {
	case wasm.OpI32Load, wasm.OpF32Load, wasm.OpI64Load32U:
		return ldRaw32
	case wasm.OpI64Load, wasm.OpF64Load:
		return ldRaw64
	case wasm.OpI32Load8U, wasm.OpI64Load8U:
		return ld8U
	case wasm.OpI32Load16U, wasm.OpI64Load16U:
		return ld16U
	case wasm.OpI32Load8S:
		return ld8S32
	case wasm.OpI32Load16S:
		return ld16S32
	case wasm.OpI64Load8S:
		return ld8S64
	case wasm.OpI64Load16S:
		return ld16S64
	default: // wasm.OpI64Load32S
		return ld32S64
	}
}

func storeModeOf(op wasm.Opcode) uint32 {
	switch op {
	case wasm.OpI32Store8, wasm.OpI64Store8:
		return st8
	case wasm.OpI32Store16, wasm.OpI64Store16:
		return st16
	case wasm.OpI32Store, wasm.OpF32Store, wasm.OpI64Store32:
		return st32
	default: // i64.store, f64.store
		return st64
	}
}

func isCompare(op wasm.Opcode) bool {
	return (op >= wasm.OpI32Eq && op <= wasm.OpI32GeU) ||
		(op >= wasm.OpI64Eq && op <= wasm.OpI64GeU) ||
		(op >= wasm.OpF32Eq && op <= wasm.OpF64Ge)
}

// cframe is one compile-time control frame. Nothing of it survives into the
// compiled code: it exists only to resolve branches.
type cframe struct {
	op        wasm.Opcode // OpBlock/OpLoop/OpIf/OpElse; OpCall marks the function frame
	height    int         // operand-stack height at frame entry
	arity     int         // block result count (0 or 1 in the MVP)
	loopStart int         // branch target of a loop frame
	elseJump  int         // code index of an if's pending false-edge jump, -1 otherwise
	fixCode   []int       // code indices to patch to this frame's end position
	fixPool   []int       // brPool indices to patch to this frame's end position
}

// branchArity returns the number of values a branch targeting this frame
// carries: loops take branches back to their header (no results in the MVP),
// everything else receives the block results.
func (fr *cframe) branchArity() int {
	if fr.op == wasm.OpLoop {
		return 0
	}
	return fr.arity
}

type compiler struct {
	m        *wasm.Module
	f        *wasm.Func
	hosts    []*HostFunc // resolved imported functions, indexed by function index
	nLocals  int         // params + declared locals
	code     []instr
	brPool   []brEntry
	ctrl     []cframe
	height   int
	maxStack int
	barrier  int  // peepholes must not reach into code[:barrier]
	dead     bool // current position is statically unreachable
	deadSkip int  // nesting depth of fully-dead blocks being skipped

	// Containment-guard bookkeeping (Config.Guarded): the pending iGuard of
	// the current basic block and the fuel cost accumulated for it. Guards
	// are emitted lazily at the block's first charged instruction and their
	// cost is patched when the block closes (closeGuard), so bookkeeping
	// opcodes never grow the code and a disabled config emits nothing.
	guarded   bool
	srcPC     int    // source-instruction offset of the instruction being compiled
	guardIdx  int    // code index of the pending guard, -1 when none
	guardCost uint32 // source instructions charged to the pending guard
}

// compileFunc lowers one function body into the threaded-code form. It
// rejects structurally broken bodies (unbalanced control, operand underflow,
// out-of-range indices), so a malformed module fails at instantiation
// instead of corrupting the interpreter mid-run. hosts is the resolved
// imported-function vector (may be nil when compiling without an instance);
// it lets the pass pick the Fast host-call convention and elide calls to
// no-op hooks together with their argument lowering.
func compileFunc(m *wasm.Module, sig wasm.FuncType, f *wasm.Func, hosts []*HostFunc, cfg *Config) (*compiledFunc, error) {
	c := &compiler{
		m: m, f: f, hosts: hosts,
		nLocals:  len(sig.Params) + len(f.Locals),
		guarded:  cfg.Guarded,
		guardIdx: -1,
	}
	c.ctrl = append(c.ctrl, cframe{op: wasm.OpCall, arity: len(sig.Results), elseJump: -1})
	for pc := range f.Body {
		c.srcPC = pc
		if err := c.step(f.Body[pc]); err != nil {
			return nil, fmt.Errorf("pc %d (%s): %w", pc, f.Body[pc].Op, err)
		}
	}
	if len(c.ctrl) != 0 {
		return nil, fmt.Errorf("%d unclosed blocks", len(c.ctrl))
	}
	if max := cfg.maxFuncStack(); c.maxStack > max {
		return nil, fmt.Errorf("%w: operand-stack high-water mark %d exceeds limit %d", ErrLimit, c.maxStack, max)
	}
	return &compiledFunc{
		sig:       sig,
		numParams: len(sig.Params),
		numLocals: len(sig.Params) + len(f.Locals),
		code:      c.code,
		brPool:    c.brPool,
		maxStack:  c.maxStack,
	}, nil
}

func (c *compiler) emit(in instr) { c.code = append(c.code, in) }

// patch sets the branch-target field of the instruction at idx. The fused
// compare-and-branch keeps its target in b (a holds the opcode and local);
// every other branch keeps it in a.
func (c *compiler) patch(idx, target int) {
	if c.code[idx].op == iGetConstCmpBrIf {
		c.code[idx].b = uint32(target)
	} else {
		c.code[idx].a = uint32(target)
	}
}

func (c *compiler) push(n int) {
	c.height += n
	if c.height > c.maxStack {
		c.maxStack = c.height
	}
}

func (c *compiler) popN(n int) error {
	if c.height-n < c.ctrl[len(c.ctrl)-1].height {
		return fmt.Errorf("operand stack underflow")
	}
	c.height -= n
	return nil
}

// chargeGuard accounts one source instruction to the current basic block's
// containment guard, emitting the guard lazily at the block's first charged
// instruction. Structural opcodes (block/loop/if/else/end/nop) are never
// charged — they emit no runtime work — so step calls this only for real
// instructions.
func (c *compiler) chargeGuard() {
	if c.guardIdx < 0 {
		c.guardIdx = len(c.code)
		c.emit(instr{op: iGuard, b: uint32(c.srcPC)})
	}
	c.guardCost++
}

// closeGuard patches the pending guard with the fuel cost accumulated for
// its basic block; the next charged instruction opens a fresh one. Called
// wherever a basic block ends: loop headers (so every iteration re-executes
// the header's guard), if/else edges, frame ends, and after conditional
// branches (so the taken path is not charged for the fall-through).
func (c *compiler) closeGuard() {
	if c.guardIdx >= 0 {
		c.code[c.guardIdx].a = c.guardCost
		c.guardIdx = -1
		c.guardCost = 0
	}
}

// markDead starts a statically-unreachable region: nothing is emitted until
// the enclosing frame is closed (or its else arm begins).
func (c *compiler) markDead() {
	c.dead = true
	c.height = c.ctrl[len(c.ctrl)-1].height
	c.barrier = len(c.code)
}

func adjPack(height, arity int) (uint32, error) {
	if arity > 1 {
		return 0, fmt.Errorf("branch carrying %d values (MVP allows at most 1)", arity)
	}
	return uint32(height)<<1 | uint32(arity), nil
}

// step compiles a single instruction.
func (c *compiler) step(in wasm.Instr) error {
	op := in.Op
	if len(c.ctrl) == 0 {
		return fmt.Errorf("instruction after function-level end")
	}

	if c.dead {
		switch op {
		case wasm.OpBlock, wasm.OpLoop, wasm.OpIf:
			c.deadSkip++
		case wasm.OpElse:
			if c.deadSkip == 0 {
				return c.beginElse()
			}
		case wasm.OpEnd:
			if c.deadSkip > 0 {
				c.deadSkip--
				return nil
			}
			return c.endFrame()
		}
		return nil
	}

	if c.guarded {
		switch op {
		case wasm.OpNop, wasm.OpBlock, wasm.OpLoop, wasm.OpIf, wasm.OpElse, wasm.OpEnd:
			// Structural opcodes are free: they emit no runtime instructions.
		default:
			c.chargeGuard()
		}
	}

	switch op {
	case wasm.OpNop:
		// Emits nothing: the threaded form has no use for it.
	case wasm.OpUnreachable:
		c.emit(instr{op: iUnreachable})
		c.markDead()

	case wasm.OpBlock:
		c.ctrl = append(c.ctrl, cframe{op: op, height: c.height, arity: len(in.Block.Results()), elseJump: -1})
	case wasm.OpLoop:
		// The loop body is its own basic block: its guard sits at the header
		// position (the branch target), so every iteration re-executes it.
		c.closeGuard()
		c.ctrl = append(c.ctrl, cframe{op: op, height: c.height, arity: len(in.Block.Results()), loopStart: len(c.code), elseJump: -1})
		c.barrier = len(c.code) // the header is a branch target
	case wasm.OpIf:
		if err := c.popN(1); err != nil {
			return fmt.Errorf("if condition: %w", err)
		}
		c.ctrl = append(c.ctrl, cframe{op: op, height: c.height, arity: len(in.Block.Results()), elseJump: len(c.code)})
		c.emit(instr{op: iBrIfZero}) // target patched at else/end
		c.closeGuard()               // the then arm is a new basic block
	case wasm.OpElse:
		return c.beginElse()
	case wasm.OpEnd:
		return c.endFrame()

	case wasm.OpBr:
		if err := c.compileBr(int(in.Idx)); err != nil {
			return err
		}
		c.markDead()
	case wasm.OpBrIf:
		if err := c.compileBrIf(int(in.Idx)); err != nil {
			return err
		}
		c.closeGuard() // the fall-through is a new basic block
	case wasm.OpBrTable:
		if err := c.compileBrTable(in); err != nil {
			return err
		}
		c.markDead()
	case wasm.OpReturn:
		if err := c.compileBr(len(c.ctrl) - 1); err != nil {
			return err
		}
		c.markDead()

	case wasm.OpCall:
		ft, err := c.m.FuncType(in.Idx)
		if err != nil {
			return err
		}
		if err := c.popN(len(ft.Params)); err != nil {
			return fmt.Errorf("call %d: %w", in.Idx, err)
		}
		c.push(len(ft.Results))
		// Host calls (hook dispatch in the instrumented setting) are resolved
		// at compile time: the function index space puts imports first. With
		// the resolved import vector in hand the pass goes further: no-op
		// hooks are not called at all — their argument lowering is unwound —
		// and Fast-convention hooks get the zero-copy stack-window opcode.
		callOp := iCall
		if int(in.Idx) < c.m.NumImportedFuncs() {
			callOp = iCallHost
			if int(in.Idx) < len(c.hosts) && c.hosts[in.Idx] != nil && len(ft.Results) == 0 {
				hf := c.hosts[in.Idx]
				if hf.NoOp {
					c.elideArgs(len(ft.Params))
					return nil
				}
				if hf.Emit != nil {
					// Record encoders (the stream dispatch pipeline): same
					// stack-window convention as Fast, but the callee cannot
					// return an error, so the exec case skips the error check.
					callOp = iCallHostEmit
				} else if hf.Fast != nil {
					callOp = iCallHostFast
				}
			}
		}
		c.emit(instr{op: callOp, a: in.Idx, b: uint32(len(ft.Params))})
	case wasm.OpCallIndirect:
		if int(in.Idx) >= len(c.m.Types) {
			return fmt.Errorf("call_indirect type index %d out of range", in.Idx)
		}
		ft := c.m.Types[in.Idx]
		if err := c.popN(1 + len(ft.Params)); err != nil {
			return fmt.Errorf("call_indirect: %w", err)
		}
		c.push(len(ft.Results))
		c.emit(instr{op: iCallIndirect, a: in.Idx, b: uint32(len(ft.Params))})

	case wasm.OpDrop:
		if err := c.popN(1); err != nil {
			return fmt.Errorf("drop: %w", err)
		}
		// Dropping a value some pure instruction just pushed cancels the
		// push (or peels the newest push off a fused multi-push).
		if k := len(c.code); k > c.barrier {
			switch prev := &c.code[k-1]; prev.op {
			case iConst, iLocalGet, iGlobalGet:
				c.code = c.code[:k-1]
				return nil
			case iConst2:
				*prev = instr{op: iConst, bits: uint64(prev.a)}
				return nil
			case iGetGet:
				*prev = instr{op: iLocalGet, a: prev.a}
				return nil
			case iGetGetGet:
				*prev = instr{op: iGetGet, a: prev.a, b: prev.b}
				return nil
			}
		}
		c.emit(instr{op: iDrop})
	case wasm.OpSelect:
		if err := c.popN(3); err != nil {
			return fmt.Errorf("select: %w", err)
		}
		c.push(1)
		c.emit(instr{op: iSelect})

	case wasm.OpLocalGet:
		if err := c.checkLocal(in.Idx); err != nil {
			return err
		}
		c.push(1)
		if k := len(c.code); k > c.barrier {
			switch prev := &c.code[k-1]; prev.op {
			case iLocalGet:
				*prev = instr{op: iGetGet, a: prev.a, b: in.Idx}
				return nil
			case iGetGet:
				*prev = instr{op: iGetGetGet, a: prev.a, b: prev.b, bits: uint64(in.Idx)}
				return nil
			case iLocalSet:
				if prev.a == in.Idx {
					// set x; get x is exactly tee x.
					*prev = instr{op: iLocalTee, a: in.Idx}
					return nil
				}
			}
		}
		c.emit(instr{op: iLocalGet, a: in.Idx})
	case wasm.OpLocalSet:
		if err := c.checkLocal(in.Idx); err != nil {
			return err
		}
		if err := c.popN(1); err != nil {
			return fmt.Errorf("local.set: %w", err)
		}
		c.emit(instr{op: iLocalSet, a: in.Idx})
	case wasm.OpLocalTee:
		if err := c.checkLocal(in.Idx); err != nil {
			return err
		}
		if err := c.popN(1); err != nil {
			return fmt.Errorf("local.tee: %w", err)
		}
		c.push(1)
		if k := len(c.code); k > c.barrier && c.code[k-1].op == iLocalSet {
			c.code[k-1] = instr{op: iSetTee, a: c.code[k-1].a, b: in.Idx}
			return nil
		}
		c.emit(instr{op: iLocalTee, a: in.Idx})
	case wasm.OpGlobalGet:
		if _, err := c.m.GlobalType(in.Idx); err != nil {
			return err
		}
		c.push(1)
		c.emit(instr{op: iGlobalGet, a: in.Idx})
	case wasm.OpGlobalSet:
		if _, err := c.m.GlobalType(in.Idx); err != nil {
			return err
		}
		if err := c.popN(1); err != nil {
			return fmt.Errorf("global.set: %w", err)
		}
		c.emit(instr{op: iGlobalSet, a: in.Idx})

	case wasm.OpMemorySize:
		c.push(1)
		c.emit(instr{op: iMemorySize})
	case wasm.OpMemoryGrow:
		if err := c.popN(1); err != nil {
			return fmt.Errorf("memory.grow: %w", err)
		}
		c.push(1)
		c.emit(instr{op: iMemoryGrow})

	case wasm.OpI32Const, wasm.OpI64Const, wasm.OpF32Const, wasm.OpF64Const:
		c.push(1)
		v := in.ConstValue()
		if k := len(c.code); k > c.barrier && c.code[k-1].op == iConst &&
			c.code[k-1].bits <= 0xFFFFFFFF && v <= 0xFFFFFFFF {
			c.code[k-1] = instr{op: iConst2, a: uint32(c.code[k-1].bits), b: uint32(v)}
			return nil
		}
		c.emit(instr{op: iConst, bits: v})

	default:
		switch {
		case op.IsLoad():
			if err := c.popN(1); err != nil {
				return fmt.Errorf("%s address: %w", op, err)
			}
			c.push(1)
			mode := loadModeOf(op)
			offset := uint64(in.MemOffset())
			if k := len(c.code); k > c.barrier {
				switch prev := &c.code[k-1]; prev.op {
				case iLocalGet:
					*prev = instr{op: iGetLoad, a: prev.a, b: mode, bits: offset}
					return nil
				case iGetGet:
					addr := prev.b
					*prev = instr{op: iLocalGet, a: prev.a}
					c.emit(instr{op: iGetLoad, a: addr, b: mode, bits: offset})
					return nil
				case iGetGetGet:
					addr := uint32(prev.bits)
					*prev = instr{op: iGetGet, a: prev.a, b: prev.b}
					c.emit(instr{op: iGetLoad, a: addr, b: mode, bits: offset})
					return nil
				}
			}
			c.emit(instr{op: iLoad, a: mode, bits: offset})
		case op.IsStore():
			if err := c.popN(2); err != nil {
				return fmt.Errorf("%s: %w", op, err)
			}
			mode := storeModeOf(op)
			if k := len(c.code); k > c.barrier && c.code[k-1].op == iLocalGet {
				c.code[k-1] = instr{op: iGetStore, a: c.code[k-1].a, b: mode, bits: uint64(in.MemOffset())}
			} else {
				c.emit(instr{op: iStore, a: mode, bits: uint64(in.MemOffset())})
			}
		case op.IsUnary():
			if err := c.popN(1); err != nil {
				return fmt.Errorf("%s: %w", op, err)
			}
			c.push(1)
			switch op {
			case wasm.OpI32ReinterpretF32, wasm.OpI64ReinterpretF64,
				wasm.OpF32ReinterpretI32, wasm.OpF64ReinterpretI64:
				// Identity on the raw stack representation: emit nothing.
			default:
				c.emit(instr{op: iUn, a: uint32(op)})
			}
		case op.IsBinary():
			if err := c.popN(2); err != nil {
				return fmt.Errorf("%s: %w", op, err)
			}
			c.push(1)
			c.emitBin(op)
		case op == wasm.OpMiscPrefix:
			if _, _, ok := wasm.MiscTruncSatSig(in.Idx); ok {
				if err := c.popN(1); err != nil {
					return fmt.Errorf("%s: %w", wasm.MiscName(in.Idx), err)
				}
				c.push(1)
				c.emit(instr{op: iTruncSat, a: in.Idx})
				return nil
			}
			switch in.Idx {
			case wasm.MiscMemoryCopy:
				if err := c.popN(3); err != nil {
					return fmt.Errorf("memory.copy: %w", err)
				}
				c.emit(instr{op: iMemCopy})
			case wasm.MiscMemoryFill:
				if err := c.popN(3); err != nil {
					return fmt.Errorf("memory.fill: %w", err)
				}
				c.emit(instr{op: iMemFill})
			default:
				return fmt.Errorf("unsupported 0xfc subopcode %d (%s)", in.Idx, wasm.MiscName(in.Idx))
			}
		default:
			return fmt.Errorf("unsupported opcode %s", op)
		}
	}
	return nil
}

// elideArgs removes the lowering of the top n operand-stack values, used
// when a call to a no-op hook is elided (dead-hook elision): the pushes that
// materialized its arguments are unwound from the emitted suffix as long as
// they are provably pure — constants, local reads, global reads, and the
// fused multi-push forms of those (which are peeled value by value). Anything
// else (a branch target boundary, a value produced by a call or a trapping
// op) stops the unwind and the residue is discarded with a single iDropN.
func (c *compiler) elideArgs(n int) {
	for n > 0 && len(c.code) > c.barrier {
		k := len(c.code)
		switch prev := &c.code[k-1]; prev.op {
		case iConst, iLocalGet, iGlobalGet:
			c.code = c.code[:k-1]
			n--
		case iConst2:
			if n >= 2 {
				c.code = c.code[:k-1]
				n -= 2
			} else {
				*prev = instr{op: iConst, bits: uint64(prev.a)}
				n--
			}
		case iGetGet:
			if n >= 2 {
				c.code = c.code[:k-1]
				n -= 2
			} else {
				*prev = instr{op: iLocalGet, a: prev.a}
				n--
			}
		case iGetGetGet:
			switch {
			case n >= 3:
				c.code = c.code[:k-1]
				n -= 3
			case n == 2:
				*prev = instr{op: iLocalGet, a: prev.a}
				n -= 2
			default:
				*prev = instr{op: iGetGet, a: prev.a, b: prev.b}
				n--
			}
		default:
			goto done
		}
	}
done:
	if n > 0 {
		c.emit(instr{op: iDropN, a: uint32(n)})
	}
}

func (c *compiler) checkLocal(idx uint32) error {
	if int(idx) >= c.nLocals {
		return fmt.Errorf("local index %d out of range (have %d)", idx, c.nLocals)
	}
	return nil
}

// trappingBinop reports whether a binary numeric op can trap (and so must
// not be constant-folded at compile time).
func trappingBinop(op wasm.Opcode) bool {
	switch op {
	case wasm.OpI32DivS, wasm.OpI32DivU, wasm.OpI32RemS, wasm.OpI32RemU,
		wasm.OpI64DivS, wasm.OpI64DivU, wasm.OpI64RemS, wasm.OpI64RemU:
		return true
	}
	return false
}

// emitBin emits a binary numeric op, fusing with the values just pushed when
// they came from constants or locals (the dominant operand sources). Two
// constants feeding a non-trapping op fold to a constant outright.
func (c *compiler) emitBin(op wasm.Opcode) {
	k := len(c.code)
	if k > c.barrier {
		switch prev := &c.code[k-1]; prev.op {
		case iConst:
			*prev = instr{op: iConstBin, a: uint32(op), bits: prev.bits}
			return
		case iConst2:
			if !trappingBinop(op) {
				*prev = instr{op: iConst, bits: binop(op, uint64(prev.a), uint64(prev.b))}
			} else {
				rhs := uint64(prev.b)
				*prev = instr{op: iConst, bits: uint64(prev.a)}
				c.emit(instr{op: iConstBin, a: uint32(op), bits: rhs})
			}
			return
		case iGetGet:
			*prev = instr{op: iGetGetBin, a: prev.a, b: prev.b, bits: uint64(op)}
			return
		case iGetGetGet:
			la, lb, lc := prev.a, prev.b, uint32(prev.bits)
			*prev = instr{op: iLocalGet, a: la}
			c.emit(instr{op: iGetGetBin, a: lb, b: lc, bits: uint64(op)})
			return
		case iLocalGet:
			*prev = instr{op: iGetBin, a: prev.a, bits: uint64(op)}
			return
		}
	}
	c.emit(instr{op: iBin, a: uint32(op)})
}

// compileBr emits an unconditional branch to the n-th enclosing label.
func (c *compiler) compileBr(n int) error {
	if n >= len(c.ctrl) {
		return fmt.Errorf("branch label %d exceeds control depth %d", n, len(c.ctrl))
	}
	fr := &c.ctrl[len(c.ctrl)-1-n]
	arity := fr.branchArity()
	if c.height < fr.height+arity {
		return fmt.Errorf("branch carries %d values but stack height is %d (target height %d)", arity, c.height, fr.height)
	}
	plain := c.height == fr.height+arity
	var ins instr
	if plain {
		ins = instr{op: iBr}
	} else {
		adj, err := adjPack(fr.height, arity)
		if err != nil {
			return err
		}
		ins = instr{op: iBrAdjust, b: adj}
	}
	if fr.op == wasm.OpLoop {
		ins.a = uint32(fr.loopStart)
		c.emit(ins)
		return nil
	}
	fr.fixCode = append(fr.fixCode, len(c.code))
	c.emit(ins)
	return nil
}

// compileBrIf emits a conditional branch, fusing the dominant loop-condition
// pattern `local.get; const; compare; br_if` into one instruction when the
// branch needs no stack adjustment.
func (c *compiler) compileBrIf(n int) error {
	if err := c.popN(1); err != nil {
		return fmt.Errorf("br_if condition: %w", err)
	}
	if n >= len(c.ctrl) {
		return fmt.Errorf("branch label %d exceeds control depth %d", n, len(c.ctrl))
	}
	fr := &c.ctrl[len(c.ctrl)-1-n]
	arity := fr.branchArity()
	if c.height < fr.height+arity {
		return fmt.Errorf("br_if carries %d values but stack height is %d (target height %d)", arity, c.height, fr.height)
	}
	plain := c.height == fr.height+arity

	if plain {
		if k := len(c.code); k-1 > c.barrier &&
			c.code[k-1].op == iConstBin && isCompare(wasm.Opcode(c.code[k-1].a)) &&
			c.code[k-2].op == iLocalGet && c.code[k-2].a <= fuseLocalMask {
			fused := instr{
				op:   iGetConstCmpBrIf,
				a:    c.code[k-1].a<<24 | c.code[k-2].a,
				bits: c.code[k-1].bits,
			}
			c.code[k-2] = fused
			c.code = c.code[:k-1]
			idx := k - 2
			if fr.op == wasm.OpLoop {
				c.code[idx].b = uint32(fr.loopStart)
			} else {
				fr.fixCode = append(fr.fixCode, idx)
			}
			return nil
		}
		ins := instr{op: iBrIf}
		if fr.op == wasm.OpLoop {
			ins.a = uint32(fr.loopStart)
			c.emit(ins)
			return nil
		}
		fr.fixCode = append(fr.fixCode, len(c.code))
		c.emit(ins)
		return nil
	}

	adj, err := adjPack(fr.height, arity)
	if err != nil {
		return err
	}
	ins := instr{op: iBrIfAdjust, b: adj}
	if fr.op == wasm.OpLoop {
		ins.a = uint32(fr.loopStart)
		c.emit(ins)
		return nil
	}
	fr.fixCode = append(fr.fixCode, len(c.code))
	c.emit(ins)
	return nil
}

// compileBrTable lowers a br_table into a pool of pre-resolved branch
// descriptors: one per target plus the default as the final entry.
func (c *compiler) compileBrTable(in wasm.Instr) error {
	if err := c.popN(1); err != nil {
		return fmt.Errorf("br_table index: %w", err)
	}
	off, cnt := in.BrTableSpan()
	if off+cnt > len(c.f.BrTargets) {
		return fmt.Errorf("br_table target span [%d:%d] exceeds pool (%d)", off, off+cnt, len(c.f.BrTargets))
	}
	poolOff := len(c.brPool)
	addEntry := func(n int) error {
		if n >= len(c.ctrl) {
			return fmt.Errorf("br_table label %d exceeds control depth %d", n, len(c.ctrl))
		}
		fr := &c.ctrl[len(c.ctrl)-1-n]
		arity := fr.branchArity()
		if c.height < fr.height+arity {
			return fmt.Errorf("br_table carries %d values but stack height is %d", arity, c.height)
		}
		adj, err := adjPack(fr.height, arity)
		if err != nil {
			return err
		}
		e := brEntry{adj: adj}
		if fr.op == wasm.OpLoop {
			e.target = uint32(fr.loopStart)
		} else {
			fr.fixPool = append(fr.fixPool, len(c.brPool))
		}
		c.brPool = append(c.brPool, e)
		return nil
	}
	for _, t := range c.f.BrTargets[off : off+cnt] {
		if err := addEntry(int(t)); err != nil {
			return err
		}
	}
	if err := addEntry(int(in.Idx)); err != nil { // default, last
		return err
	}
	c.emit(instr{op: iBrTable, a: uint32(poolOff), b: uint32(cnt)})
	return nil
}

// beginElse switches compilation from an if's then arm to its else arm.
func (c *compiler) beginElse() error {
	fr := &c.ctrl[len(c.ctrl)-1]
	if fr.op != wasm.OpIf {
		return fmt.Errorf("else without matching if")
	}
	c.closeGuard() // the then arm's block ends here
	if !c.dead {
		if c.height != fr.height+fr.arity {
			return fmt.Errorf("stack height %d at else, want %d", c.height, fr.height+fr.arity)
		}
		// The then arm falls through over the else arm to the end.
		fr.fixCode = append(fr.fixCode, len(c.code))
		c.emit(instr{op: iBr})
	}
	// The if's false edge lands here, at the start of the else arm.
	c.patch(fr.elseJump, len(c.code))
	fr.elseJump = -1
	fr.op = wasm.OpElse
	c.height = fr.height
	c.barrier = len(c.code)
	c.dead = false
	c.deadSkip = 0
	return nil
}

// endFrame closes the innermost control frame, patching every branch that
// targets its end. Closing the function frame emits the final return.
func (c *compiler) endFrame() error {
	fr := &c.ctrl[len(c.ctrl)-1]
	if !c.dead && c.height != fr.height+fr.arity {
		return fmt.Errorf("stack height %d at end, want %d", c.height, fr.height+fr.arity)
	}
	c.closeGuard() // the frame's last basic block ends here
	end := len(c.code)
	if fr.elseJump >= 0 {
		// if without else: the false edge lands at the end. (Validation
		// guarantees such ifs have no results.)
		c.patch(fr.elseJump, end)
	}
	for _, idx := range fr.fixCode {
		c.patch(idx, end)
	}
	for _, idx := range fr.fixPool {
		c.brPool[idx].target = uint32(end)
	}
	c.height = fr.height + fr.arity
	c.barrier = end
	c.dead = false
	c.deadSkip = 0
	isFunc := fr.op == wasm.OpCall
	arity := fr.arity
	c.ctrl = c.ctrl[:len(c.ctrl)-1]
	if isFunc {
		c.emit(instr{op: iReturn, b: uint32(arity)})
	}
	return nil
}
