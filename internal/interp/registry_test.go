package interp

import (
	"errors"
	"strings"
	"testing"

	"wasabi/internal/wasm"
)

// regTestModule builds a module that calls an imported ("env", "boom") func
// from its start function.
func regTestModule() *wasm.Module {
	m := &wasm.Module{
		Types: []wasm.FuncType{{}},
		Imports: []wasm.Import{
			{Module: "env", Name: "boom", Kind: wasm.ExternFunc, TypeIdx: 0},
		},
		Funcs: []wasm.Func{{TypeIdx: 0, Body: []wasm.Instr{
			{Op: wasm.OpCall, Idx: 0},
			{Op: wasm.OpEnd},
		}}},
	}
	start := uint32(1)
	m.Start = &start
	return m
}

// TestInstantiateInReleasesNameOnPanic: a panic out of a host import during
// instantiation (here: the start function) must surface as a *RuntimeFault
// (fault isolation — the host process never sees the panic) AND release the
// reserved name — committing a half-built instance would poison later
// lookups and block retries (regression test for the err==nil-during-unwind
// commit bug).
func TestInstantiateInReleasesNameOnPanic(t *testing.T) {
	reg := NewRegistry()
	m := regTestModule()
	panicking := Imports{"env": {"boom": &HostFunc{
		Type: wasm.FuncType{},
		Fn: func(*Instance, []Value) ([]Value, error) {
			panic("host bug") // non-*Trap: converted to a RuntimeFault
		},
	}}}

	_, err := InstantiateIn(reg, "app", m, panicking)
	if err == nil {
		t.Fatal("expected the host panic to fail instantiation")
	}
	var fault *RuntimeFault
	if !errors.As(err, &fault) {
		t.Fatalf("expected a *RuntimeFault, got %T: %v", err, err)
	}
	if fault.Panic != any("host bug") {
		t.Errorf("fault carries panic value %v, want \"host bug\"", fault.Panic)
	}
	if !errors.Is(err, ErrRuntimeFault) {
		t.Error("fault does not match ErrRuntimeFault under errors.Is")
	}

	if _, ok := reg.Lookup("app"); ok {
		t.Error("panicked instantiation left a half-built instance registered")
	}
	// The name must be reusable: a working instantiation succeeds.
	ok := Imports{"env": {"boom": &HostFunc{
		Type: wasm.FuncType{},
		Fn:   func(*Instance, []Value) ([]Value, error) { return nil, nil },
	}}}
	if _, err := InstantiateIn(reg, "app", m, ok); err != nil {
		t.Fatalf("retry under the same name failed: %v", err)
	}
	if _, found := reg.Lookup("app"); !found {
		t.Error("successful retry not registered")
	}
}

// TestInstantiateInReleasesNameOnError: a plain instantiation error (trap in
// the start function) releases the reservation too.
func TestInstantiateInReleasesNameOnError(t *testing.T) {
	reg := NewRegistry()
	m := regTestModule()
	failing := Imports{"env": {"boom": &HostFunc{
		Type: wasm.FuncType{},
		Fn: func(*Instance, []Value) ([]Value, error) {
			return nil, &Trap{Code: "boom"}
		},
	}}}
	if _, err := InstantiateIn(reg, "app", m, failing); err == nil {
		t.Fatal("expected the start-function trap to fail instantiation")
	} else if !strings.Contains(err.Error(), "start function") {
		t.Errorf("unexpected error: %v", err)
	}
	if _, ok := reg.Lookup("app"); ok {
		t.Error("failed instantiation left the name registered")
	}
}
