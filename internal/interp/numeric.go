package interp

import "math"

func i32DivS(a, b int32) int32 {
	if b == 0 {
		trap(TrapDivByZero)
	}
	if a == math.MinInt32 && b == -1 {
		trap(TrapIntOverflow)
	}
	return a / b
}

func i64DivS(a, b int64) int64 {
	if b == 0 {
		trap(TrapDivByZero)
	}
	if a == math.MinInt64 && b == -1 {
		trap(TrapIntOverflow)
	}
	return a / b
}

// fmin implements WebAssembly float min: NaN-propagating, and -0 < +0.
func fmin(a, b float64) float64 {
	switch {
	case math.IsNaN(a) || math.IsNaN(b):
		return math.NaN()
	case a == 0 && b == 0:
		if math.Signbit(a) {
			return a
		}
		return b
	case a < b:
		return a
	default:
		return b
	}
}

// fmax implements WebAssembly float max: NaN-propagating, and +0 > -0.
func fmax(a, b float64) float64 {
	switch {
	case math.IsNaN(a) || math.IsNaN(b):
		return math.NaN()
	case a == 0 && b == 0:
		if !math.Signbit(a) {
			return a
		}
		return b
	case a > b:
		return a
	default:
		return b
	}
}

// Truncating float→int conversions trap on NaN and on results outside the
// target range, per the spec.

func truncToI32(f float64) int32 {
	if math.IsNaN(f) {
		trap(TrapInvalidConversion)
	}
	t := math.Trunc(f)
	if t < -2147483648 || t > 2147483647 {
		trap(TrapIntOverflow)
	}
	return int32(t)
}

func truncToU32(f float64) uint32 {
	if math.IsNaN(f) {
		trap(TrapInvalidConversion)
	}
	t := math.Trunc(f)
	if t < 0 || t > 4294967295 {
		trap(TrapIntOverflow)
	}
	return uint32(t)
}

func truncToI64(f float64) int64 {
	if math.IsNaN(f) {
		trap(TrapInvalidConversion)
	}
	t := math.Trunc(f)
	// 2^63 is exactly representable; the valid range is [-2^63, 2^63).
	if t < -9223372036854775808 || t >= 9223372036854775808 {
		trap(TrapIntOverflow)
	}
	return int64(t)
}

func truncToU64(f float64) uint64 {
	if math.IsNaN(f) {
		trap(TrapInvalidConversion)
	}
	t := math.Trunc(f)
	if t < 0 || t >= 18446744073709551616 {
		trap(TrapIntOverflow)
	}
	return uint64(t)
}

// Saturating float→int conversions (the 0xFC trunc_sat family) never trap:
// NaN maps to 0 and out-of-range values clamp to the target type's bounds.

func truncSatI32(f float64) int32 {
	if math.IsNaN(f) {
		return 0
	}
	t := math.Trunc(f)
	switch {
	case t < -2147483648:
		return math.MinInt32
	case t > 2147483647:
		return math.MaxInt32
	}
	return int32(t)
}

func truncSatU32(f float64) uint32 {
	if math.IsNaN(f) {
		return 0
	}
	t := math.Trunc(f)
	switch {
	case t < 0:
		return 0
	case t > 4294967295:
		return math.MaxUint32
	}
	return uint32(t)
}

func truncSatI64(f float64) int64 {
	if math.IsNaN(f) {
		return 0
	}
	t := math.Trunc(f)
	switch {
	case t < -9223372036854775808:
		return math.MinInt64
	case t >= 9223372036854775808:
		return math.MaxInt64
	}
	return int64(t)
}

func truncSatU64(f float64) uint64 {
	if math.IsNaN(f) {
		return 0
	}
	t := math.Trunc(f)
	switch {
	case t < 0:
		return 0
	case t >= 18446744073709551616:
		return math.MaxUint64
	}
	return uint64(t)
}
