package interp_test

import (
	"testing"

	"wasabi/internal/builder"
	"wasabi/internal/interp"
	"wasabi/internal/wasm"
)

// buildLoopModule returns a module with an exported function running a small
// loop with nested calls, exercising locals, stack, labels, and the
// cross-frame result path.
func buildLoopModule(t *testing.T) *wasm.Module {
	t.Helper()
	b := builder.New()

	leaf := b.Func("leaf", builder.V(wasm.I32), builder.V(wasm.I32))
	leaf.Get(0).I32(3).Op(wasm.OpI32Mul)
	leaf.Done()

	f := b.Func("run", builder.V(wasm.I32), builder.V(wasm.I32))
	acc := f.Local(wasm.I32)
	i := f.Local(wasm.I32)
	f.Block().Loop()
	f.Get(i).Get(0).Op(wasm.OpI32GeU).BrIf(1)
	f.Get(acc).Get(i).Call(leaf.Index).Op(wasm.OpI32Add).Set(acc)
	f.Get(i).I32(1).Op(wasm.OpI32Add).Set(i)
	f.Br(0)
	f.End().End()
	f.Get(acc)
	f.Done()
	return b.Build()
}

// TestInvokeAllocs guards the interpreter's frame-arena contract: once the
// per-depth frames have grown to steady state, repeated Invoke calls — each
// running a loop with nested wasm->wasm calls — allocate only the single
// caller-owned result copy the public API promises (≤ 1 alloc per call).
func TestInvokeAllocs(t *testing.T) {
	m := buildLoopModule(t)
	inst, err := interp.Instantiate(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the frame arena.
	res, err := inst.Invoke("run", interp.I32(50))
	if err != nil {
		t.Fatal(err)
	}
	if got := interp.AsI32(res[0]); got != 3*(49*50/2) {
		t.Fatalf("run(50) = %d", got)
	}
	args := []interp.Value{interp.I32(50)}
	avg := testing.AllocsPerRun(100, func() {
		if _, err := inst.Invoke("run", args...); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 1 {
		t.Errorf("Invoke allocates %.2f/call, want <= 1 (the result copy)", avg)
	}
}

// TestFrameReuseCorrectness checks that frame reuse cannot leak state
// between calls: locals beyond the arguments must be freshly zeroed, and
// results of earlier calls must not bleed into later ones.
func TestFrameReuseCorrectness(t *testing.T) {
	m := buildLoopModule(t)
	inst, err := interp.Instantiate(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := func(n int32) int32 { return 3 * (n - 1) * n / 2 }
	for _, n := range []int32{50, 1, 13, 0, 50} {
		res, err := inst.Invoke("run", interp.I32(n))
		if err != nil {
			t.Fatal(err)
		}
		if got := interp.AsI32(res[0]); got != want(n) {
			t.Errorf("run(%d) = %d, want %d", n, got, want(n))
		}
	}
}
