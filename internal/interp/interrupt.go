package interp

import (
	"context"
	"errors"
)

// InterruptError is an interruption trap joined with the context condition
// that caused it: errors.Is matches both ErrInterrupted (the trap side) and
// the context error (context.Canceled / context.DeadlineExceeded, or a
// custom cancel cause).
type InterruptError struct {
	Trap  error // the TrapInterrupted that stopped the guest
	Cause error // the context's cancellation cause
}

func (e *InterruptError) Error() string { return e.Trap.Error() + " (" + e.Cause.Error() + ")" }

// Unwrap exposes both sides to errors.Is/errors.As.
func (e *InterruptError) Unwrap() []error { return []error{e.Trap, e.Cause} }

// InvokeContext is Invoke under a context: when ctx is cancelled or its
// deadline expires mid-run, the instance is interrupted and the invocation
// returns an *InterruptError matching both ErrInterrupted and the context
// error. Interruption requires a Guarded instance — on unguarded code the
// context is only checked on entry. The interrupt flag is re-armed before
// returning, so the instance stays usable.
func (inst *Instance) InvokeContext(ctx context.Context, name string, args ...Value) ([]Value, error) {
	return inst.invokeInterruptible(ctx, nil, func() ([]Value, error) {
		return inst.Invoke(name, args...)
	})
}

// InvokeInterruptible is InvokeContext with a hook fired on the interrupting
// goroutine right after the instance's flag is raised — the session layer
// unwedges its blocked stream producer there. onInterrupt must be safe to
// call from an arbitrary goroutine; nil means no hook.
func (inst *Instance) InvokeInterruptible(ctx context.Context, onInterrupt func(), name string, args ...Value) ([]Value, error) {
	return inst.invokeInterruptible(ctx, onInterrupt, func() ([]Value, error) {
		return inst.Invoke(name, args...)
	})
}

// invokeInterruptible runs fn with ctx driving the instance's interrupt
// flag. onInterrupt, when non-nil, runs once right after the flag is raised
// (the session layer unwedges a blocked stream producer there). It is the
// shared engine under the Instance- and Session-level InvokeContext.
func (inst *Instance) invokeInterruptible(ctx context.Context, onInterrupt func(), fn func() ([]Value, error)) ([]Value, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// AfterFunc runs on an arbitrary goroutine; Interrupt (an atomic store)
	// and onInterrupt implementations must be safe for that. fired provides
	// the happens-before edge for the cleanup below: when stop() reports the
	// callback started, wait for it to finish before re-arming the flag.
	fired := make(chan struct{})
	stop := context.AfterFunc(ctx, func() {
		inst.Interrupt()
		if onInterrupt != nil {
			onInterrupt()
		}
		close(fired)
	})
	res, err := fn()
	if !stop() {
		<-fired
		inst.ClearInterrupt()
		if err != nil && errors.Is(err, ErrInterrupted) {
			if cause := context.Cause(ctx); cause != nil {
				return res, &InterruptError{Trap: err, Cause: cause}
			}
		}
	}
	return res, err
}
