package interp

// Named-instance registry: the linking substrate for multi-module workloads.
// Instances instantiated into the same Registry under a name become import
// providers for later instantiations — an import (mod, field) that the
// explicit Imports map does not satisfy resolves against the exports of the
// registered instance named mod, the way wazero's namespace (and the wasm JS
// embedding's import object of prior instances) links modules.

import (
	"fmt"
	"sort"
	"sync"

	"wasabi/internal/failpoint"
	"wasabi/internal/wasm"
)

// Registry maps instance names to instantiated modules. It is safe for
// concurrent use; the instances themselves are not (each instance must still
// be driven from one goroutine at a time).
type Registry struct {
	mu        sync.Mutex
	instances map[string]*Instance // nil value = name reserved, instantiation in flight
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{instances: make(map[string]*Instance)}
}

// Register adds a fully instantiated instance under name. It fails if the
// name is already taken (or reserved by an in-flight InstantiateIn).
func (r *Registry) Register(name string, inst *Instance) error {
	if name == "" {
		return fmt.Errorf("interp: cannot register an instance under the empty name")
	}
	if inst == nil {
		return fmt.Errorf("interp: cannot register a nil instance as %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, taken := r.instances[name]; taken {
		return fmt.Errorf("interp: instance name %q already registered", name)
	}
	r.instances[name] = inst
	return nil
}

// Lookup returns the instance registered under name.
func (r *Registry) Lookup(name string) (*Instance, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	inst, ok := r.instances[name]
	return inst, ok && inst != nil
}

// Remove unregisters name (e.g. when retiring a long-running server's
// instance). Removing an unknown name is a no-op.
func (r *Registry) Remove(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.instances, name)
}

// Names returns the registered instance names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.instances))
	for name, inst := range r.instances {
		if inst != nil {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// reserve claims name for an in-flight instantiation so concurrent
// InstantiateIn calls cannot race to the same name.
func (r *Registry) reserve(name string) error {
	// Fault-injection seam: a reservation failure must surface as a typed
	// error before any instance state exists.
	if err := failpoint.Inject(failpoint.RegistryReserve); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, taken := r.instances[name]; taken {
		return fmt.Errorf("interp: instance name %q already registered", name)
	}
	r.instances[name] = nil
	return nil
}

// commit fills a reservation; release drops it (instantiation failed).
func (r *Registry) commit(name string, inst *Instance) {
	r.mu.Lock()
	r.instances[name] = inst
	r.mu.Unlock()
}

func (r *Registry) release(name string) {
	r.mu.Lock()
	delete(r.instances, name)
	r.mu.Unlock()
}

// Export resolves one export of the instance into an importable value: a
// *HostFunc wrapper for functions (calls run on this instance), the *Memory,
// *Table, or *Global itself otherwise. The function wrapper makes
// cross-instance calls first-class: the importing instance sees a host
// function, so hooks of an instrumented callee still fire in the callee's
// own session. The error distinguishes a missing export from one that
// exists but cannot be resolved (corrupt index/signature).
func (inst *Instance) Export(field string) (any, error) {
	for _, e := range inst.Module.Exports {
		if e.Name != field {
			continue
		}
		switch e.Kind {
		case wasm.ExternFunc:
			idx := e.Idx
			sig, err := inst.FuncSig(idx)
			if err != nil {
				return nil, fmt.Errorf("export %q: %w", field, err)
			}
			return &HostFunc{
				Type: sig,
				Fn: func(_ *Instance, args []Value) ([]Value, error) {
					return inst.InvokeIdx(idx, args...)
				},
			}, nil
		case wasm.ExternMemory:
			if inst.Memory != nil {
				return inst.Memory, nil
			}
		case wasm.ExternTable:
			if inst.Table != nil {
				return inst.Table, nil
			}
		case wasm.ExternGlobal:
			if int(e.Idx) < len(inst.Globals) {
				return inst.Globals[e.Idx], nil
			}
		}
		return nil, fmt.Errorf("export %q (kind %d, index %d) is unresolvable", field, e.Kind, e.Idx)
	}
	return nil, fmt.Errorf("no export %q", field)
}
