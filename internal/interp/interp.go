// Package interp is a WebAssembly (MVP) interpreter. It is the execution
// substrate of this reproduction: where the paper runs instrumented binaries
// in a browser engine, we run them here. The interpreter implements the
// complete MVP instruction set with spec trap semantics, linear memory,
// tables with indirect calls, imported host functions, and a start function.
package interp

import (
	"fmt"
	"math"
	"runtime/debug"
	"sync/atomic"

	"wasabi/internal/failpoint"
	"wasabi/internal/wasm"
)

// Value is a raw 64-bit representation of any WebAssembly value: i32 values
// are zero-extended, i64 values are stored as-is, and floats are stored as
// their IEEE 754 bit patterns (f32 zero-extended).
type Value = uint64

// I32 converts a Go int32 to the stack representation.
func I32(v int32) Value { return uint64(uint32(v)) }

// I64 converts a Go int64 to the stack representation.
func I64(v int64) Value { return uint64(v) }

// F32 converts a Go float32 to the stack representation.
func F32(v float32) Value { return uint64(math.Float32bits(v)) }

// F64 converts a Go float64 to the stack representation.
func F64(v float64) Value { return math.Float64bits(v) }

// AsI32 extracts an i32 from the stack representation.
func AsI32(v Value) int32 { return int32(uint32(v)) }

// AsI64 extracts an i64 from the stack representation.
func AsI64(v Value) int64 { return int64(v) }

// AsF32 extracts an f32 from the stack representation.
func AsF32(v Value) float32 { return math.Float32frombits(uint32(v)) }

// AsF64 extracts an f64 from the stack representation.
func AsF64(v Value) float64 { return math.Float64frombits(v) }

// HostFunc is a function provided by the embedder (the "JavaScript side" in
// the paper's setting). The Wasabi runtime's low-level hooks are HostFuncs.
//
// At least one of Fn and Fast must be set. Fast is the zero-copy hook-call
// convention: the interpreter's direct host-call opcode passes it a window
// of the operand stack (args aliases stack[sp-n:sp]) instead of copying the
// arguments into a fresh slice. The aliasing rules for Fast implementations:
// args is read-only, only valid for the duration of the call, and must not
// be retained or mutated — the same backing array is reused by the very next
// instruction. Fast is only consulted for result-less signatures; functions
// with results always go through Fn.
type HostFunc struct {
	Type wasm.FuncType
	Fn   func(inst *Instance, args []Value) ([]Value, error)

	// Fast, when non-nil, is preferred by the threaded-code host-call path
	// for result-less signatures. See the aliasing rules above.
	Fast func(inst *Instance, args []Value) error

	// Emit, when non-nil, takes precedence over Fast: it is the record-emit
	// twin of the zero-copy convention, used by the Wasabi runtime's stream
	// encoders. Same stack-window aliasing rules as Fast, but the callee
	// reports failure only by panicking with a *Trap (record encoders have
	// no error path), so the dispatch opcode skips the per-call error check.
	// Only honored for result-less signatures.
	Emit func(inst *Instance, args []Value)

	// NoOp declares the function observably side-effect free (the runtime
	// sets it for hooks the analysis does not implement). Calls to a no-op
	// host function are elided at compile time, including the lowering of
	// their arguments where the compiler can prove the pushes pure
	// (dead-hook elision). Only honored for result-less signatures.
	NoOp bool
}

// Imports maps module name → field name → provided value. Supported values:
// *HostFunc, *Memory, *Table, and Global (for imported globals).
type Imports map[string]map[string]any

// Global is an instantiated global variable.
type Global struct {
	Type wasm.GlobalType
	Val  Value
}

// funcKind discriminates the two function representations.
type funcInst struct {
	typeIdx uint32 // index into instance types
	host    *HostFunc
	code    *compiledFunc // nil for host functions
}

// compiledFunc is a defined function lowered to the direct-threaded internal
// form: a flat instruction array with pre-resolved branch targets, packed
// stack adjustments, fused superinstructions, and a precomputed operand-stack
// high-water mark (see compile.go).
type compiledFunc struct {
	sig       wasm.FuncType
	numParams int
	numLocals int // params + declared locals
	code      []instr
	brPool    []brEntry // pre-resolved br_table targets
	maxStack  int       // operand-stack high-water mark
}

// frame is one reusable interpreter activation record: the locals, value
// stack, and result buffer of a call at one nesting depth. The instance
// keeps an arena of frames indexed by call depth, so repeated calls allocate
// nothing once the arena's buffers have grown to steady state.
type frame struct {
	locals []Value
	stack  []Value
	result []Value
}

// Instance is an instantiated module ready for invocation. An instance is
// not safe for concurrent use: the frame arena (like globals and memory) is
// per-instance mutable state.
type Instance struct {
	Module  *wasm.Module
	Memory  *Memory
	Table   *Table
	Globals []*Global

	funcs []funcInst

	// frames is the reusable frame arena, indexed by callDepth-1. It grows
	// lazily with actual call depth, not to maxDepth.
	frames []*frame

	// callDepth guards against runaway recursion.
	callDepth int
	maxDepth  int

	// Containment state (see Config). fuel is the remaining budget consumed
	// by the guard instructions of a Guarded instance (MaxInt64 when
	// unlimited); intr is the asynchronous interrupt flag those same guards
	// check — the ONLY Instance field that may be touched from another
	// goroutine. curFunc/curPC are the best-effort execution context for
	// RuntimeFault: the innermost active function and the source offset of
	// the last executed guard.
	guarded bool
	fuel    int64
	intr    atomic.Uint32
	curFunc uint32
	curPC   uint32

	// onTopReturn, when set, runs after every top-level call completes —
	// err is nil on normal return, the *Trap or *RuntimeFault otherwise. The
	// Wasabi runtime's stream sessions flush their partial event batch here
	// (so consumers observe every event of an Invoke without waiting for the
	// next one) and tear the stream down on failure.
	onTopReturn func(err error)
}

// frameAt returns the reusable frame for depth d, growing the arena lazily.
func (inst *Instance) frameAt(d int) *frame {
	for len(inst.frames) <= d {
		inst.frames = append(inst.frames, &frame{})
	}
	return inst.frames[d]
}

// Instantiate allocates and initializes an instance: resolves imports,
// allocates table/memory/globals, applies element and data segments, and
// runs the start function.
func Instantiate(m *wasm.Module, imports Imports) (*Instance, error) {
	return InstantiateWith(nil, "", m, imports, Config{})
}

// InstantiateIn is Instantiate with cross-instance linking: imports are
// resolved first from the explicit Imports map and then — when the import
// module name matches a registered instance — from that instance's exports.
// On success the new instance is registered in reg under name (name "" stays
// anonymous). The name is reserved for the duration of the call, so
// concurrent instantiations cannot claim the same name.
func InstantiateIn(reg *Registry, name string, m *wasm.Module, imports Imports) (*Instance, error) {
	return InstantiateWith(reg, name, m, imports, Config{})
}

// InstantiateWith is InstantiateIn under an explicit containment Config:
// guarded compilation (fuel metering + interruption), resource limits, and
// recursion bounds. Limit violations at instantiation time (a declared
// memory or table minimum beyond the configured cap, a function body whose
// operand stack exceeds MaxFuncStack) fail with errors wrapping ErrLimit.
func InstantiateWith(reg *Registry, name string, m *wasm.Module, imports Imports, cfg Config) (inst *Instance, err error) {
	if name != "" && reg == nil {
		return nil, fmt.Errorf("interp: named instantiation %q requires a registry", name)
	}
	committed := false
	if name != "" {
		if err := reg.reserve(name); err != nil {
			return nil, err
		}
		// Release the reservation on every non-success exit, including a
		// panic out of a host import or start function (err is still nil
		// while unwinding, so commit must NOT key off err == nil).
		defer func() {
			if !committed {
				reg.release(name)
			}
		}()
	}

	inst = &Instance{
		Module:   m,
		maxDepth: cfg.maxCallDepth(),
		guarded:  cfg.Guarded,
		fuel:     cfg.initialFuel(),
	}

	lookup := func(mod, name string) (any, error) {
		if fields, ok := imports[mod]; ok {
			if v, ok := fields[name]; ok {
				return v, nil
			}
		}
		if reg != nil {
			if provider, ok := reg.Lookup(mod); ok {
				v, err := provider.Export(name)
				if err != nil {
					return nil, fmt.Errorf("interp: import from instance %q: %w", mod, err)
				}
				return v, nil
			}
		}
		if _, ok := imports[mod]; ok {
			return nil, fmt.Errorf("interp: unknown import %q.%q", mod, name)
		}
		return nil, fmt.Errorf("interp: unknown import module %q", mod)
	}

	for _, imp := range m.Imports {
		v, err := lookup(imp.Module, imp.Name)
		if err != nil {
			return nil, err
		}
		switch imp.Kind {
		case wasm.ExternFunc:
			hf, ok := v.(*HostFunc)
			if !ok {
				return nil, fmt.Errorf("interp: import %q.%q is not a function", imp.Module, imp.Name)
			}
			if int(imp.TypeIdx) >= len(m.Types) {
				return nil, fmt.Errorf("interp: import %q.%q type index out of range", imp.Module, imp.Name)
			}
			want := m.Types[imp.TypeIdx]
			if !hf.Type.Equal(want) {
				return nil, fmt.Errorf("interp: import %q.%q type mismatch: want %s, have %s", imp.Module, imp.Name, want, hf.Type)
			}
			if hf.Fn == nil && hf.Fast == nil && hf.Emit == nil {
				return nil, fmt.Errorf("interp: import %q.%q has neither Fn, Fast, nor Emit", imp.Module, imp.Name)
			}
			if hf.Fn == nil && len(hf.Type.Results) != 0 {
				return nil, fmt.Errorf("interp: import %q.%q: Fast/Emit-only host functions must be result-less", imp.Module, imp.Name)
			}
			inst.funcs = append(inst.funcs, funcInst{typeIdx: imp.TypeIdx, host: hf})
		case wasm.ExternMemory:
			mem, ok := v.(*Memory)
			if !ok {
				return nil, fmt.Errorf("interp: import %q.%q is not a memory", imp.Module, imp.Name)
			}
			inst.Memory = mem
		case wasm.ExternTable:
			tbl, ok := v.(*Table)
			if !ok {
				return nil, fmt.Errorf("interp: import %q.%q is not a table", imp.Module, imp.Name)
			}
			inst.Table = tbl
		case wasm.ExternGlobal:
			g, ok := v.(*Global)
			if !ok {
				return nil, fmt.Errorf("interp: import %q.%q is not a global", imp.Module, imp.Name)
			}
			inst.Globals = append(inst.Globals, g)
		}
	}

	// Defined functions. The compile pass sees the already-resolved host
	// imports so it can specialize host calls: Fast-convention targets get
	// the zero-copy opcode and calls to no-op hooks are elided outright.
	hosts := make([]*HostFunc, len(inst.funcs))
	for i := range inst.funcs {
		hosts[i] = inst.funcs[i].host
	}
	for i := range m.Funcs {
		f := &m.Funcs[i]
		if int(f.TypeIdx) >= len(m.Types) {
			return nil, fmt.Errorf("interp: function %d type index out of range", i)
		}
		cf, err := compileFunc(m, m.Types[f.TypeIdx], f, hosts, &cfg)
		if err != nil {
			return nil, fmt.Errorf("interp: function %d: %w", i, err)
		}
		inst.funcs = append(inst.funcs, funcInst{typeIdx: f.TypeIdx, code: cf})
	}

	// Defined table and memory, bounded by the configured caps: a declared
	// minimum beyond the cap is refused outright, and the caps carry into
	// Grow so guest- or host-driven growth cannot exceed them either.
	for _, t := range m.Tables {
		if t.Min > cfg.maxTableElems() {
			return nil, fmt.Errorf("%w: table minimum %d elements exceeds limit %d", ErrLimit, t.Min, cfg.maxTableElems())
		}
		inst.Table = NewTable(t)
		inst.Table.Cap = cfg.MaxTableElems
	}
	for _, mem := range m.Memories {
		if mem.Min > cfg.maxMemoryPages() {
			return nil, fmt.Errorf("%w: memory minimum %d pages exceeds limit %d", ErrLimit, mem.Min, cfg.maxMemoryPages())
		}
		inst.Memory = NewMemory(mem)
		inst.Memory.Cap = cfg.MaxMemoryPages
	}

	// Defined globals.
	for i := range m.Globals {
		g := &m.Globals[i]
		val, err := inst.evalConstExpr(g.Init)
		if err != nil {
			return nil, fmt.Errorf("interp: global %d init: %w", i, err)
		}
		inst.Globals = append(inst.Globals, &Global{Type: g.Type, Val: val})
	}

	// Element segments.
	for i, e := range m.Elems {
		if inst.Table == nil {
			return nil, fmt.Errorf("interp: elem segment %d without table", i)
		}
		off, err := inst.evalConstExpr(e.Offset)
		if err != nil {
			return nil, fmt.Errorf("interp: elem %d offset: %w", i, err)
		}
		start := uint32(off)
		if uint64(start)+uint64(len(e.Funcs)) > uint64(len(inst.Table.Elems)) {
			return nil, fmt.Errorf("interp: elem segment %d out of table bounds", i)
		}
		for j, fidx := range e.Funcs {
			inst.Table.Elems[start+uint32(j)] = int64(fidx)
		}
	}

	// Data segments.
	for i, d := range m.Datas {
		if inst.Memory == nil {
			return nil, fmt.Errorf("interp: data segment %d without memory", i)
		}
		off, err := inst.evalConstExpr(d.Offset)
		if err != nil {
			return nil, fmt.Errorf("interp: data %d offset: %w", i, err)
		}
		start := uint32(off)
		if uint64(start)+uint64(len(d.Data)) > uint64(len(inst.Memory.Data)) {
			return nil, fmt.Errorf("interp: data segment %d out of memory bounds", i)
		}
		copy(inst.Memory.Data[start:], d.Data)
	}

	// Start function.
	if m.Start != nil {
		if _, err := inst.call(*m.Start, nil); err != nil {
			return nil, fmt.Errorf("interp: start function: %w", err)
		}
	}
	if name != "" {
		// Checked before commit so the deferred release still frees the
		// reservation: an injected commit fault must not leak the name.
		if err := failpoint.Inject(failpoint.RegistryCommit); err != nil {
			return nil, err
		}
		reg.commit(name, inst)
		committed = true
	}
	return inst, nil
}

func (inst *Instance) evalConstExpr(expr []wasm.Instr) (Value, error) {
	if len(expr) != 2 || expr[1].Op != wasm.OpEnd {
		return 0, fmt.Errorf("unsupported constant expression")
	}
	in := expr[0]
	switch in.Op {
	case wasm.OpI32Const, wasm.OpI64Const, wasm.OpF32Const, wasm.OpF64Const:
		return in.ConstValue(), nil
	case wasm.OpGlobalGet:
		if int(in.Idx) >= len(inst.Globals) {
			return 0, fmt.Errorf("global index %d out of range", in.Idx)
		}
		return inst.Globals[in.Idx].Val, nil
	}
	return 0, fmt.Errorf("non-constant instruction %s", in.Op)
}

// Invoke calls an exported function by name.
func (inst *Instance) Invoke(name string, args ...Value) ([]Value, error) {
	idx, ok := inst.Module.ExportedFunc(name)
	if !ok {
		return nil, fmt.Errorf("interp: no exported function %q", name)
	}
	return inst.call(idx, args)
}

// InvokeIdx calls the function at the given index in the function index space.
func (inst *Instance) InvokeIdx(idx uint32, args ...Value) ([]Value, error) {
	return inst.call(idx, args)
}

// FuncSig returns the signature of the function at the given index.
func (inst *Instance) FuncSig(idx uint32) (wasm.FuncType, error) {
	if int(idx) >= len(inst.funcs) {
		return wasm.FuncType{}, fmt.Errorf("interp: function index %d out of range", idx)
	}
	return inst.Module.Types[inst.funcs[idx].typeIdx], nil
}

// SetTopReturnHook installs f to run after every top-level call completes —
// err is nil on normal return and the *Trap or *RuntimeFault otherwise (see
// the field comment). Pass nil to clear.
func (inst *Instance) SetTopReturnHook(f func(err error)) { inst.onTopReturn = f }

// SetFuel sets the remaining fuel budget. Fuel is consumed by the guard
// instructions of a Guarded instance (one unit per source instruction) and
// persists across invocations: top up between calls to grant a fresh budget.
// Values above MaxInt64 are clamped. No-op semantics on an unguarded
// instance (nothing consumes fuel there).
func (inst *Instance) SetFuel(n uint64) {
	if n > math.MaxInt64 {
		n = math.MaxInt64
	}
	inst.fuel = int64(n)
}

// Fuel returns the remaining fuel budget.
func (inst *Instance) Fuel() uint64 {
	if inst.fuel < 0 {
		return 0
	}
	return uint64(inst.fuel)
}

// Guarded reports whether the instance was compiled with containment guards
// (fuel metering + asynchronous interruption).
func (inst *Instance) Guarded() bool { return inst.guarded }

// Interrupt requests asynchronous interruption: the next guard instruction
// the instance executes raises TrapInterrupted. It is the one Instance
// method safe to call from another goroutine, and the flag stays set (every
// subsequent invocation traps immediately) until ClearInterrupt. On an
// unguarded instance it only affects future guarded behavior — nothing
// checks the flag mid-run.
func (inst *Instance) Interrupt() { inst.intr.Store(1) }

// ClearInterrupt re-arms an interrupted instance. Producer-side: call it
// only while no code of the instance runs.
func (inst *Instance) ClearInterrupt() { inst.intr.Store(0) }

// ResolveTable returns the function index stored at table slot i, or -1.
func (inst *Instance) ResolveTable(i uint32) int64 {
	if inst.Table == nil || int(i) >= len(inst.Table.Elems) {
		return -1
	}
	return inst.Table.Elems[i]
}

// call invokes a function by index, catching traps and converting every
// other panic into a *RuntimeFault (fault isolation: a host-function bug or
// an interpreter gap fails the call, never the host process). The returned
// slice is a copy owned by the caller: the internal result buffers live in
// the frame arena and are reused by later calls.
func (inst *Instance) call(idx uint32, args []Value) (results []Value, err error) {
	savedDepth := inst.callDepth
	// Registered before the trap recovery below, so it runs after it
	// (LIFO): the hook observes the instance in its settled state. Only the
	// outermost call fires it.
	defer func() {
		if savedDepth == 0 && inst.onTopReturn != nil {
			inst.onTopReturn(err)
		}
	}()
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		// Unwind the call-depth accounting past the aborted frames so the
		// instance stays usable after a trap or fault.
		inst.callDepth = savedDepth
		results = nil
		switch p := r.(type) {
		case *Trap:
			err = p
		case *RuntimeFault:
			// An internal faultf panic: attach the execution context.
			p.FuncIdx = inst.curFunc
			p.FuncName = inst.Module.FuncNames[inst.curFunc]
			p.PC = inst.curPC
			p.Stack = debug.Stack()
			err = p
		default:
			err = &RuntimeFault{
				FuncIdx:  inst.curFunc,
				FuncName: inst.Module.FuncNames[inst.curFunc],
				PC:       inst.curPC,
				Panic:    r,
				Stack:    debug.Stack(),
			}
		}
	}()
	if res := inst.invoke(idx, args); len(res) > 0 {
		results = append([]Value(nil), res...)
	}
	return results, nil
}

// invoke is the trap-panicking internal call path.
func (inst *Instance) invoke(idx uint32, args []Value) []Value {
	if int(idx) >= len(inst.funcs) {
		trapf(TrapUndefinedElement, "function index %d out of range", idx)
	}
	fi := &inst.funcs[idx]
	if fi.host != nil {
		return inst.callHost(fi.host, args)
	}
	inst.callDepth++
	if inst.callDepth > inst.maxDepth {
		trap(TrapStackExhausted)
	}
	savedFunc := inst.curFunc
	inst.curFunc = idx
	fr := inst.frameAt(inst.callDepth - 1)
	res := inst.exec(fi.code, args, fr)
	inst.curFunc = savedFunc
	inst.callDepth--
	return res
}

// callHost invokes a host function, converting its error into a trap panic.
// Shared by invoke and exec's generic host-call opcode (iCallHost). Fast- and
// Emit-only host functions (no Fn) are result-less by the Instantiate-time
// check.
func (inst *Instance) callHost(hf *HostFunc, args []Value) []Value {
	// Fault-injection seam for the host-call boundary: an injected fault is
	// indistinguishable from the host function failing, i.e. a typed trap.
	hostErr(failpoint.Inject(failpoint.HostCall))
	if hf.Fn == nil {
		if hf.Emit != nil {
			hf.Emit(inst, args)
			return nil
		}
		hostErr(hf.Fast(inst, args))
		return nil
	}
	res, err := hf.Fn(inst, args)
	hostErr(err)
	return res
}

// hostErr converts a host-function error into a trap panic.
func hostErr(err error) {
	if err == nil {
		return
	}
	if t, ok := err.(*Trap); ok {
		panic(t)
	}
	panic(&Trap{Code: "host function error", Info: err.Error(), Cause: err})
}
