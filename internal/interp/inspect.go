package interp

import (
	"fmt"

	"wasabi/internal/wasm"
)

// StackHighWater compiles every defined function of m and returns the compile
// pass's exact operand-stack high-water mark per defined function — the exact
// buffer size exec allocates (there is no slack; see exec.go). The numbers
// are independent of guard/fusion/host-elision settings, which only rewrite
// the emitted code, so the plain configuration used here is representative.
// It exists so the static dataflow pass (internal/static) can be asserted
// equal to the interpreter's own height tracking, and for inspection tooling.
func StackHighWater(m *wasm.Module) ([]int, error) {
	cfg := Config{}
	out := make([]int, len(m.Funcs))
	for di := range m.Funcs {
		f := &m.Funcs[di]
		if int(f.TypeIdx) >= len(m.Types) {
			return nil, fmt.Errorf("interp: func %d: type index %d out of range", m.NumImportedFuncs()+di, f.TypeIdx)
		}
		cf, err := compileFunc(m, m.Types[f.TypeIdx], f, nil, &cfg)
		if err != nil {
			return nil, fmt.Errorf("interp: func %d: %w", m.NumImportedFuncs()+di, err)
		}
		out[di] = cf.maxStack
	}
	return out, nil
}
