package interp

import (
	"errors"
	"fmt"
)

// Trap is the error type for WebAssembly runtime traps. Code identifies the
// trap kind with the spec's wording.
type Trap struct {
	Code string
	Info string

	// Cause, when non-nil, is the originating host-function error: the
	// host-call boundary preserves it so typed host errors (e.g. the WASI
	// provider's ExitError) stay recoverable with errors.As/errors.Is after
	// the conversion to a trap.
	Cause error
}

func (t *Trap) Error() string {
	if t.Info == "" {
		return "wasm trap: " + t.Code
	}
	return "wasm trap: " + t.Code + ": " + t.Info
}

// Unwrap maps the containment trap kinds onto their sentinel errors so
// embedders can match with errors.Is without inspecting Code strings, and
// surfaces the host-error cause when there is one.
func (t *Trap) Unwrap() error {
	switch t.Code {
	case TrapFuelExhausted:
		return ErrFuelExhausted
	case TrapInterrupted:
		return ErrInterrupted
	}
	return t.Cause
}

// Trap codes, mirroring the spec's execution errors, plus the containment
// traps this engine adds (fuel and interruption have no spec wording).
const (
	TrapUnreachable       = "unreachable executed"
	TrapOutOfBounds       = "out of bounds memory access"
	TrapDivByZero         = "integer divide by zero"
	TrapIntOverflow       = "integer overflow"
	TrapInvalidConversion = "invalid conversion to integer"
	TrapUndefinedElement  = "undefined element"
	TrapIndirectMismatch  = "indirect call type mismatch"
	TrapStackExhausted    = "call stack exhausted"
	TrapTableOutOfBounds  = "out of bounds table access"
	TrapFuelExhausted     = "fuel exhausted"
	TrapInterrupted       = "execution interrupted"
)

// Sentinel errors for the containment surface, matched with errors.Is.
var (
	// ErrFuelExhausted matches the trap raised when a guarded instance runs
	// out of fuel (Config.Fuel / Instance.SetFuel).
	ErrFuelExhausted = errors.New("interp: fuel exhausted")
	// ErrInterrupted matches the trap raised when a guarded instance is
	// stopped asynchronously (Instance.Interrupt, context cancellation,
	// deadline expiry).
	ErrInterrupted = errors.New("interp: execution interrupted")
	// ErrLimit matches instantiation and compile failures caused by an
	// engine-configured resource limit (memory pages, table elements,
	// per-function operand-stack growth).
	ErrLimit = errors.New("interp: resource limit exceeded")
	// ErrRuntimeFault matches any *RuntimeFault: a non-trap panic out of
	// guest execution (host function bug, interpreter invariant violation)
	// converted into an error instead of crashing the host process.
	ErrRuntimeFault = errors.New("interp: runtime fault")
)

// RuntimeFault is a non-trap panic out of guest execution, captured by the
// invocation boundary and returned as an error instead of re-panicking into
// the embedder. It carries the execution context of the innermost active
// wasm frame: the function index, its name-section name when present, and
// the source-instruction offset of the most recent containment guard (pc is
// best effort — 0 when the instance runs unguarded).
type RuntimeFault struct {
	FuncIdx  uint32
	FuncName string
	PC       uint32
	Panic    any    // the recovered panic value
	Stack    []byte // the Go stack at recovery, for host-side diagnosis
}

func (f *RuntimeFault) Error() string {
	loc := fmt.Sprintf("func %d", f.FuncIdx)
	if f.FuncName != "" {
		loc = fmt.Sprintf("func %d (%s)", f.FuncIdx, f.FuncName)
	}
	return fmt.Sprintf("interp: runtime fault in %s at pc %d: %v", loc, f.PC, f.Panic)
}

// Unwrap surfaces ErrRuntimeFault (and the panic value itself when it is an
// error) to errors.Is/errors.As.
func (f *RuntimeFault) Unwrap() []error {
	if err, ok := f.Panic.(error); ok {
		return []error{ErrRuntimeFault, err}
	}
	return []error{ErrRuntimeFault}
}

func trap(code string) {
	panic(&Trap{Code: code})
}

func trapf(code, format string, args ...any) {
	panic(&Trap{Code: code, Info: fmt.Sprintf(format, args...)})
}

// faultf panics with a RuntimeFault describing a broken interpreter
// invariant (an opcode the dispatch tables do not handle, corrupt threaded
// code). The invocation boundary fills in the execution context and returns
// it as an error, so an engine gap degrades into a failed call instead of a
// crashed host process.
func faultf(format string, args ...any) {
	panic(&RuntimeFault{Panic: fmt.Sprintf(format, args...)})
}
