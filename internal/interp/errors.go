package interp

import "fmt"

// Trap is the error type for WebAssembly runtime traps. Code identifies the
// trap kind with the spec's wording.
type Trap struct {
	Code string
	Info string
}

func (t *Trap) Error() string {
	if t.Info == "" {
		return "wasm trap: " + t.Code
	}
	return "wasm trap: " + t.Code + ": " + t.Info
}

// Trap codes, mirroring the spec's execution errors.
const (
	TrapUnreachable       = "unreachable executed"
	TrapOutOfBounds       = "out of bounds memory access"
	TrapDivByZero         = "integer divide by zero"
	TrapIntOverflow       = "integer overflow"
	TrapInvalidConversion = "invalid conversion to integer"
	TrapUndefinedElement  = "undefined element"
	TrapIndirectMismatch  = "indirect call type mismatch"
	TrapStackExhausted    = "call stack exhausted"
	TrapTableOutOfBounds  = "out of bounds table access"
)

func trap(code string) {
	panic(&Trap{Code: code})
}

func trapf(code, format string, args ...any) {
	panic(&Trap{Code: code, Info: fmt.Sprintf(format, args...)})
}
