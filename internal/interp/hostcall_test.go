package interp_test

// Tests for the zero-copy host-call convention (HostFunc.Fast) and
// compile-time dead-hook elision (HostFunc.NoOp): no-op hosts are never
// called, their pure argument lowering is unwound, impure argument residue
// is dropped correctly, and Fast-only hosts work through both the threaded
// fast path and the generic invoke path.

import (
	"testing"

	"wasabi/internal/builder"
	"wasabi/internal/interp"
	"wasabi/internal/wasm"
)

func hostCounter(calls *int, params ...wasm.ValType) *interp.HostFunc {
	return &interp.HostFunc{
		Type: wasm.FuncType{Params: params},
		Fast: func(_ *interp.Instance, _ []interp.Value) error {
			*calls++
			return nil
		},
	}
}

// TestNoOpHostElided: a call to a NoOp host must be removed at compile time
// — the host is never invoked — and the pure pushes lowering its arguments
// must be unwound so the surrounding computation is unaffected.
func TestNoOpHostElided(t *testing.T) {
	b := builder.New()
	noop2 := b.ImportFunc("env", "noop2", wasm.FuncType{Params: []wasm.ValType{wasm.I32, wasm.I32}})
	f := b.Func("f", builder.V(wasm.I32), builder.V(wasm.I32))
	f.Get(0).I32(3).Op(wasm.OpI32Add) // live value below the hook args
	f.I32(1).Get(0)                   // pure arg lowering (const + local.get)
	f.Call(noop2)
	f.Done()
	var calls int
	hf := hostCounter(&calls, wasm.I32, wasm.I32)
	hf.NoOp = true
	inst, err := interp.Instantiate(b.Build(), interp.Imports{"env": {"noop2": hf}})
	if err != nil {
		t.Fatal(err)
	}
	if got := invokeI32(t, inst, "f", interp.I32(7)); got != 10 {
		t.Errorf("f(7) = %d, want 10", got)
	}
	if calls != 0 {
		t.Errorf("no-op host called %d times, want 0 (dead-hook elision)", calls)
	}
}

// TestNoOpHostImpureArgsDropped: when an argument comes from a source the
// compiler cannot unwind (a call to a defined function), the side effect
// must still happen and the residue must be dropped, keeping the stack
// balanced.
func TestNoOpHostImpureArgsDropped(t *testing.T) {
	b := builder.New()
	noop2 := b.ImportFunc("env", "noop2", wasm.FuncType{Params: []wasm.ValType{wasm.I32, wasm.I32}})
	g := b.Func("g", builder.V(wasm.I32), builder.V(wasm.I32))
	g.Get(0).I32(2).Op(wasm.OpI32Mul)
	g.Done()
	f := b.Func("f", builder.V(wasm.I32), builder.V(wasm.I32))
	f.Get(0).I32(1).Op(wasm.OpI32Add) // result value, below the hook args
	f.Get(0).Call(g.Index)            // impure arg (defined call): not unwindable
	f.I32(5)                          // pure arg above it
	f.Call(noop2)
	f.Done()
	var calls int
	hf := hostCounter(&calls, wasm.I32, wasm.I32)
	hf.NoOp = true
	inst, err := interp.Instantiate(b.Build(), interp.Imports{"env": {"noop2": hf}})
	if err != nil {
		t.Fatal(err)
	}
	if got := invokeI32(t, inst, "f", interp.I32(7)); got != 8 {
		t.Errorf("f(7) = %d, want 8", got)
	}
	if calls != 0 {
		t.Errorf("no-op host called %d times, want 0", calls)
	}
}

// TestNoOpWithResultsNotElided: NoOp is only honored for result-less hosts;
// one that produces a value must keep running.
func TestNoOpWithResultsNotElided(t *testing.T) {
	b := builder.New()
	seven := b.ImportFunc("env", "seven", wasm.FuncType{Results: []wasm.ValType{wasm.I32}})
	f := b.Func("f", nil, builder.V(wasm.I32))
	f.Call(seven)
	f.Done()
	var calls int
	hf := &interp.HostFunc{
		Type: wasm.FuncType{Results: []wasm.ValType{wasm.I32}},
		NoOp: true, // bogus flag: must be ignored for result-carrying hosts
		Fn: func(_ *interp.Instance, _ []interp.Value) ([]interp.Value, error) {
			calls++
			return []interp.Value{interp.I32(7)}, nil
		},
	}
	inst, err := interp.Instantiate(b.Build(), interp.Imports{"env": {"seven": hf}})
	if err != nil {
		t.Fatal(err)
	}
	if got := invokeI32(t, inst, "f"); got != 7 {
		t.Errorf("f() = %d, want 7", got)
	}
	if calls != 1 {
		t.Errorf("host called %d times, want 1", calls)
	}
}

// TestFastConventionReceivesStackWindow: a live Fast host sees exactly the
// lowered arguments, through both the threaded host-call opcode and the
// generic invoke path (InvokeIdx on the import index).
func TestFastConventionReceivesStackWindow(t *testing.T) {
	b := builder.New()
	sink := b.ImportFunc("env", "sink", wasm.FuncType{Params: []wasm.ValType{wasm.I32, wasm.I32}})
	f := b.Func("f", builder.V(wasm.I32), nil)
	f.Get(0).I32(41).Call(sink)
	f.Done()
	var got [][2]uint64
	hf := &interp.HostFunc{
		Type: wasm.FuncType{Params: []wasm.ValType{wasm.I32, wasm.I32}},
		Fast: func(_ *interp.Instance, args []interp.Value) error {
			// The window aliases the operand stack: copy, never retain.
			got = append(got, [2]uint64{args[0], args[1]})
			return nil
		},
	}
	inst, err := interp.Instantiate(b.Build(), interp.Imports{"env": {"sink": hf}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Invoke("f", interp.I32(9)); err != nil {
		t.Fatal(err)
	}
	if _, err := inst.InvokeIdx(sink, interp.I32(1), interp.I32(2)); err != nil {
		t.Fatal(err)
	}
	want := [][2]uint64{{9, 41}, {1, 2}}
	if len(got) != len(want) {
		t.Fatalf("saw %d calls: %v", len(got), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("call %d: args %v, want %v", i, got[i], want[i])
		}
	}
}

// TestFastOnlyHostWithResultsRejected: the Fast convention is result-less by
// contract; instantiation must reject a Fast-only host that claims results.
func TestFastOnlyHostWithResultsRejected(t *testing.T) {
	b := builder.New()
	b.ImportFunc("env", "bad", wasm.FuncType{Results: []wasm.ValType{wasm.I32}})
	f := b.Func("f", nil, nil)
	f.Done()
	hf := &interp.HostFunc{
		Type: wasm.FuncType{Results: []wasm.ValType{wasm.I32}},
		Fast: func(*interp.Instance, []interp.Value) error { return nil },
	}
	if _, err := interp.Instantiate(b.Build(), interp.Imports{"env": {"bad": hf}}); err == nil {
		t.Fatal("expected instantiation error for Fast-only host with results")
	}
}
