package interp

// In-package tests for the containment layer: guarded compilation (fuel
// metering + asynchronous interruption), resource limits, and panic-to-fault
// isolation. They live inside the package so the compiled threaded form is
// inspectable — the zero-overhead claim is structural (no guard instructions
// when disabled), not a timing assertion.

import (
	"context"
	"errors"
	"testing"
	"time"

	"wasabi/internal/builder"
	"wasabi/internal/wasm"
)

// spinModule exports "spin", an infinite loop.
func spinModule() *wasm.Module {
	b := builder.New()
	f := b.Func("spin", nil, nil)
	f.Loop().Br(0).End()
	f.Done()
	return b.Build()
}

// countModule exports "count"(n), a loop of n iterations returning n.
func countModule() *wasm.Module {
	b := builder.New()
	f := b.Func("count", builder.V(wasm.I32), builder.V(wasm.I32))
	acc := f.Local(wasm.I32)
	f.Loop()
	f.Get(acc).I32(1).Op(wasm.OpI32Add).Set(acc)
	f.Get(acc).Get(0).Op(wasm.OpI32LtU).BrIf(0)
	f.End()
	f.Get(acc)
	f.Done()
	return b.Build()
}

func countGuards(cf *compiledFunc) int {
	n := 0
	for _, in := range cf.code {
		if in.op == iGuard {
			n++
		}
	}
	return n
}

// TestUnguardedCompileEmitsNoGuards is the zero-overhead guarantee in its
// structural form: with Config.Guarded off, the threaded code contains not a
// single guard instruction — disabled metering costs nothing because there
// is nothing to execute.
func TestUnguardedCompileEmitsNoGuards(t *testing.T) {
	for name, m := range map[string]*wasm.Module{"spin": spinModule(), "count": countModule()} {
		inst, err := Instantiate(m, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range inst.funcs {
			if cf := inst.funcs[i].code; cf != nil {
				if n := countGuards(cf); n != 0 {
					t.Errorf("%s: unguarded func %d compiled with %d guard instrs", name, i, n)
				}
			}
		}
	}
}

// TestGuardedLoopHeaderIsGuarded: the loop body's guard must sit at the loop
// header position (the branch target), so every iteration re-executes it —
// that is what makes an infinite loop interruptible at all.
func TestGuardedLoopHeaderIsGuarded(t *testing.T) {
	inst, err := InstantiateWith(nil, "", spinModule(), nil, Config{Guarded: true})
	if err != nil {
		t.Fatal(err)
	}
	cf := inst.funcs[0].code
	if countGuards(cf) == 0 {
		t.Fatal("guarded compile emitted no guard instructions")
	}
	found := false
	for _, in := range cf.code {
		if in.op == iBr && cf.code[in.a].op == iGuard {
			found = true
		}
	}
	if !found {
		t.Error("loop back-edge does not target a guard instruction")
	}
}

func TestFuelExhaustionStopsInfiniteLoop(t *testing.T) {
	inst, err := InstantiateWith(nil, "", spinModule(), nil, Config{Guarded: true, Fuel: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	_, err = inst.Invoke("spin")
	if !errors.Is(err, ErrFuelExhausted) {
		t.Fatalf("infinite loop under fuel: err = %v, want ErrFuelExhausted", err)
	}
	var trap *Trap
	if !errors.As(err, &trap) || trap.Code != TrapFuelExhausted {
		t.Fatalf("err = %v, want *Trap{TrapFuelExhausted}", err)
	}
	if inst.Fuel() != 0 {
		t.Errorf("after exhaustion Fuel() = %d, want 0", inst.Fuel())
	}
	// The instance stays usable: a topped-up budget runs (and exhausts) again.
	inst.SetFuel(5_000)
	if _, err := inst.Invoke("spin"); !errors.Is(err, ErrFuelExhausted) {
		t.Fatalf("second run after SetFuel: err = %v, want ErrFuelExhausted", err)
	}
}

// TestFuelExhaustionStopsRecursion: calls are charged too (every call runs
// the callee's entry guard), so runaway recursion burns fuel before it
// exhausts the call-depth limit.
func TestFuelExhaustionStopsRecursion(t *testing.T) {
	b := builder.New()
	f := b.Func("rec", nil, nil)
	f.Call(0)
	f.Done()
	inst, err := InstantiateWith(nil, "", b.Build(), nil, Config{Guarded: true, Fuel: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Invoke("rec"); !errors.Is(err, ErrFuelExhausted) {
		t.Fatalf("infinite recursion under fuel: err = %v, want ErrFuelExhausted", err)
	}
}

// TestFuelDeterminism: identical invocations consume identical fuel, and
// consumption scales with iterations — the "deterministic" in deterministic
// metering.
func TestFuelDeterminism(t *testing.T) {
	inst, err := InstantiateWith(nil, "", countModule(), nil, Config{Guarded: true})
	if err != nil {
		t.Fatal(err)
	}
	const budget = 1 << 40
	consumed := func(n int32) uint64 {
		inst.SetFuel(budget)
		if _, err := inst.Invoke("count", I32(n)); err != nil {
			t.Fatal(err)
		}
		return budget - inst.Fuel()
	}
	c1, c1again, c2 := consumed(1000), consumed(1000), consumed(2000)
	if c1 != c1again {
		t.Errorf("same invocation consumed %d then %d fuel", c1, c1again)
	}
	if c2 <= c1 {
		t.Errorf("2000 iterations consumed %d fuel, 1000 consumed %d", c2, c1)
	}
	if c1 == 0 {
		t.Error("loop consumed no fuel")
	}
}

func TestInterruptStopsInfiniteLoop(t *testing.T) {
	inst, err := InstantiateWith(nil, "", spinModule(), nil, Config{Guarded: true})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		inst.Interrupt()
	}()
	_, err = inst.Invoke("spin")
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	// The flag is sticky until cleared: the next invocation traps at its
	// first guard.
	if _, err := inst.Invoke("spin"); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("sticky interrupt: err = %v, want ErrInterrupted", err)
	}
	inst.ClearInterrupt()
	inst.SetFuel(1000)
	if _, err := inst.Invoke("spin"); !errors.Is(err, ErrFuelExhausted) {
		t.Fatalf("after ClearInterrupt: err = %v, want ErrFuelExhausted", err)
	}
}

func TestInvokeContextCancelMidLoop(t *testing.T) {
	inst, err := InstantiateWith(nil, "", spinModule(), nil, Config{Guarded: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	_, err = inst.InvokeContext(ctx, "spin")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted too", err)
	}
	var ie *InterruptError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %T, want *InterruptError", err)
	}
	// The interrupt was cleared on the way out: the instance runs again.
	inst.SetFuel(1000)
	if _, err := inst.Invoke("spin"); !errors.Is(err, ErrFuelExhausted) {
		t.Fatalf("instance wedged after cancellation: %v", err)
	}
}

func TestInvokeContextDeadlineMidLoop(t *testing.T) {
	inst, err := InstantiateWith(nil, "", spinModule(), nil, Config{Guarded: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	if _, err := inst.InvokeContext(ctx, "spin"); !errors.Is(err, context.DeadlineExceeded) || !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want DeadlineExceeded and ErrInterrupted", err)
	}
}

// TestInvokeContextDone: an already-expired context fails fast without
// running guest code, and a context that never fires adds nothing.
func TestInvokeContextDone(t *testing.T) {
	inst, err := InstantiateWith(nil, "", countModule(), nil, Config{Guarded: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := inst.InvokeContext(ctx, "count", I32(10)); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled ctx: err = %v, want context.Canceled", err)
	}
	res, err := inst.InvokeContext(context.Background(), "count", I32(10))
	if err != nil || len(res) != 1 || AsI32(res[0]) != 10 {
		t.Fatalf("count(10) under background ctx = %v, %v", res, err)
	}
}

func TestMemoryLimitConfig(t *testing.T) {
	mod := func() *wasm.Module {
		b := builder.New().Memory(2)
		f := b.Func("pages", nil, builder.V(wasm.I32))
		f.Op(wasm.OpMemorySize)
		f.Done()
		return b.Build()
	}
	inst, err := InstantiateWith(nil, "", mod(), nil, Config{MaxMemoryPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := inst.Memory.Grow(3); got != -1 {
		t.Errorf("Grow(3) past the 4-page cap = %d, want -1", got)
	}
	if got := inst.Memory.Grow(2); got != 2 {
		t.Errorf("Grow(2) within the cap = %d, want 2", got)
	}
	// A declared minimum beyond the cap is refused at instantiation.
	if _, err := InstantiateWith(nil, "", mod(), nil, Config{MaxMemoryPages: 1}); !errors.Is(err, ErrLimit) {
		t.Errorf("min 2 pages under cap 1: err = %v, want ErrLimit", err)
	}
	// Zero still means the package default, not zero pages.
	inst, err = InstantiateWith(nil, "", mod(), nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := inst.Memory.Grow(1); got != 2 {
		t.Errorf("default-config Grow(1) = %d, want 2", got)
	}
}

func TestTableLimitConfig(t *testing.T) {
	mod := func() *wasm.Module {
		b := builder.New().Table(4)
		f := b.Func("f", nil, nil)
		f.Done()
		return b.Build()
	}
	inst, err := InstantiateWith(nil, "", mod(), nil, Config{MaxTableElems: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got := inst.Table.Grow(10); got != -1 {
		t.Errorf("Grow(10) past the 8-elem cap = %d, want -1", got)
	}
	if got := inst.Table.Grow(4); got != 4 {
		t.Errorf("Grow(4) within the cap = %d, want 4", got)
	}
	if _, err := InstantiateWith(nil, "", mod(), nil, Config{MaxTableElems: 2}); !errors.Is(err, ErrLimit) {
		t.Errorf("min 4 elems under cap 2: err = %v, want ErrLimit", err)
	}
}

func TestMaxCallDepthConfig(t *testing.T) {
	b := builder.New()
	f := b.Func("rec", nil, nil)
	f.Call(0)
	f.Done()
	inst, err := InstantiateWith(nil, "", b.Build(), nil, Config{MaxCallDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	_, err = inst.Invoke("rec")
	var trap *Trap
	if !errors.As(err, &trap) || trap.Code != TrapStackExhausted {
		t.Fatalf("err = %v, want TrapStackExhausted", err)
	}
}

func TestMaxFuncStackLimit(t *testing.T) {
	mod := func() *wasm.Module {
		b := builder.New()
		f := b.Func("deep", nil, nil)
		for i := int32(0); i < 40; i++ {
			f.I32(i)
		}
		for i := 0; i < 40; i++ {
			f.Drop()
		}
		f.Done()
		return b.Build()
	}
	if _, err := InstantiateWith(nil, "", mod(), nil, Config{MaxFuncStack: 16}); !errors.Is(err, ErrLimit) {
		t.Errorf("40-deep operand stack under cap 16: err = %v, want ErrLimit", err)
	}
	if _, err := InstantiateWith(nil, "", mod(), nil, Config{MaxFuncStack: 64}); err != nil {
		t.Errorf("cap 64: %v", err)
	}
}

// TestHostPanicBecomesFault: fault isolation end to end — a panicking host
// import fails the invocation with a typed *RuntimeFault carrying execution
// context, and the instance stays usable.
func TestHostPanicBecomesFault(t *testing.T) {
	b := builder.New()
	boom := b.ImportFunc("env", "boom", builder.Sig(nil, nil))
	f := b.Func("go", nil, nil)
	f.Call(boom)
	f.Done()
	armed := true
	imports := Imports{"env": {"boom": &HostFunc{
		Type: wasm.FuncType{},
		Fn: func(*Instance, []Value) ([]Value, error) {
			if armed {
				panic("kaboom")
			}
			return nil, nil
		},
	}}}
	inst, err := Instantiate(b.Build(), imports)
	if err != nil {
		t.Fatal(err)
	}
	_, err = inst.Invoke("go")
	var fault *RuntimeFault
	if !errors.As(err, &fault) {
		t.Fatalf("err = %T (%v), want *RuntimeFault", err, err)
	}
	if fault.Panic != any("kaboom") {
		t.Errorf("fault.Panic = %v, want kaboom", fault.Panic)
	}
	if fault.FuncIdx != 1 {
		t.Errorf("fault.FuncIdx = %d, want 1 (the calling wasm function)", fault.FuncIdx)
	}
	if len(fault.Stack) == 0 {
		t.Error("fault carries no Go stack")
	}
	if !errors.Is(err, ErrRuntimeFault) {
		t.Error("fault does not match ErrRuntimeFault")
	}
	armed = false
	if _, err := inst.Invoke("go"); err != nil {
		t.Fatalf("instance unusable after fault: %v", err)
	}
}

// TestUnhandledOpcodeFaults: the interpreter's own dispatch gaps panic with
// a typed fault (converted to an error at the invocation boundary), not a
// plain string that would crash an embedder.
func TestUnhandledOpcodeFaults(t *testing.T) {
	for name, fn := range map[string]func(){
		"binop": func() { binop(wasm.OpNop, 0, 0) },
		"unop":  func() { unop(wasm.OpNop, 0) },
	} {
		func() {
			defer func() {
				if _, ok := recover().(*RuntimeFault); !ok {
					t.Errorf("%s: unhandled opcode did not panic with *RuntimeFault", name)
				}
			}()
			fn()
		}()
	}
}
