package interp_test

import (
	"testing"

	"wasabi/internal/binary"
	"wasabi/internal/builder"
	"wasabi/internal/interp"
	"wasabi/internal/validate"
	"wasabi/internal/wasm"
)

// TestSmokeEndToEnd exercises the whole substrate stack: build a module with
// the DSL, validate it, round-trip it through the binary codec, instantiate
// it, and run a function with control flow, memory, and calls.
func TestSmokeEndToEnd(t *testing.T) {
	b := builder.New()
	b.Memory(1)

	// add(a, b) = a + b
	add := b.Func("add", builder.V(wasm.I32, wasm.I32), builder.V(wasm.I32))
	add.Get(0).Get(1).Op(wasm.OpI32Add)
	add.Done()

	// sumTo(n): sum of 0..n-1 via a loop, stored and reloaded through memory.
	f := b.Func("sumTo", builder.V(wasm.I32), builder.V(wasm.I32))
	i := f.Local(wasm.I32)
	acc := f.Local(wasm.I32)
	f.ForI32(i, func(fb *builder.FuncBuilder) { fb.Get(0) }, func(fb *builder.FuncBuilder) {
		fb.Get(acc).Get(i).Call(add.Index).Set(acc)
	})
	// Store acc at address 16, reload it, return.
	f.I32(16).Get(acc).Store(wasm.OpI32Store, 0)
	f.I32(16).Load(wasm.OpI32Load, 0)
	f.Done()

	m := b.Build()
	if err := validate.Module(m); err != nil {
		t.Fatalf("validate: %v", err)
	}

	data, err := binary.Encode(m)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	m2, err := binary.Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if err := validate.Module(m2); err != nil {
		t.Fatalf("validate after round-trip: %v", err)
	}

	inst, err := interp.Instantiate(m2, nil)
	if err != nil {
		t.Fatalf("instantiate: %v", err)
	}
	res, err := inst.Invoke("sumTo", interp.I32(10))
	if err != nil {
		t.Fatalf("invoke: %v", err)
	}
	if got := interp.AsI32(res[0]); got != 45 {
		t.Errorf("sumTo(10) = %d, want 45", got)
	}
}
