// Package runtime is the Wasabi runtime (the right-hand side of Figure 2 in
// the paper): it provides the imported low-level hook functions to the
// instrumented module and dispatches them to the high-level hooks of the
// user's analysis. On the way it re-joins split i64 values, resolves
// indirect-call table indices to the actually called function, and replays
// the end hooks of blocks traversed by br_table branches, whose set is only
// known at runtime (paper §2.4.5).
//
// Dispatch is specialized per generated hook: Imports() compiles one
// trampoline closure per core.HookSpec (see trampoline.go) instead of
// funneling every call through a generic Kind switch, and hooks the analysis
// does not implement are bound to a shared no-op that the interpreter elides
// at compile time.
package runtime

import (
	"sync"

	"wasabi/internal/analysis"
	"wasabi/internal/core"
	"wasabi/internal/interp"
)

// Shared is the per-instrumentation state every session's runtime reuses: the
// precomputed lowered-argument layout of each hook spec and the engine's
// borrowed-buffer pool. A CompiledAnalysis computes it once; binding a new
// session then only captures callbacks, never re-derives layouts.
type Shared struct {
	Layouts []core.ArgLayout // indexed like Metadata.Hooks
	Pool    *ValuePool
}

// NewShared precomputes the shared trampoline layout for meta. A nil pool
// falls back to the process-wide default pool.
func NewShared(meta *core.Metadata, pool *ValuePool) *Shared {
	if pool == nil {
		pool = &defaultPool
	}
	layouts := make([]core.ArgLayout, len(meta.Hooks))
	for i := range meta.Hooks {
		layouts[i] = meta.Hooks[i].Layout()
	}
	return &Shared{Layouts: layouts, Pool: pool}
}

// Runtime dispatches low-level hook calls to one analysis.
type Runtime struct {
	meta   *core.Metadata
	shared *Shared
	inst   *interp.Instance // bound after instantiation; fallback for table resolution
	caps   analysis.Cap     // which callbacks the analysis implements

	// Stream mode (SetEmitter): hooks in streamCaps compile to record
	// encoders writing packed events into emitter instead of callback
	// trampolines. Exclusive with callback dispatch per runtime.
	emitter    *Emitter
	streamCaps analysis.Cap

	importsOnce sync.Once
	imports     interp.Imports // compiled trampolines/encoders, built once per runtime

	// Pre-bound high-level hook callbacks; nil when the analysis does not
	// implement the corresponding interface. The trampoline builder captures
	// these once per spec.
	nop         func(analysis.Location)
	unreachable func(analysis.Location)
	ifHook      func(analysis.Location, bool)
	br          func(analysis.Location, analysis.BranchTarget)
	brIf        func(analysis.Location, analysis.BranchTarget, bool)
	brTable     func(analysis.Location, []analysis.BranchTarget, analysis.BranchTarget, uint32)
	begin       func(analysis.Location, analysis.BlockKind)
	end         func(analysis.Location, analysis.BlockKind, analysis.Location)
	constHook   func(analysis.Location, analysis.Value)
	drop        func(analysis.Location, analysis.Value)
	selectHook  func(analysis.Location, bool, analysis.Value, analysis.Value)
	unary       func(analysis.Location, string, analysis.Value, analysis.Value)
	binary      func(analysis.Location, string, analysis.Value, analysis.Value, analysis.Value)
	local       func(analysis.Location, string, uint32, analysis.Value)
	global      func(analysis.Location, string, uint32, analysis.Value)
	load        func(analysis.Location, string, analysis.MemArg, analysis.Value)
	store       func(analysis.Location, string, analysis.MemArg, analysis.Value)
	memSize     func(analysis.Location, uint32)
	memGrow     func(analysis.Location, uint32, uint32)
	callPre     func(analysis.Location, int, []analysis.Value, int64)
	callPost    func(analysis.Location, []analysis.Value)
	returnHook  func(analysis.Location, []analysis.Value)
	start       func(analysis.Location)
	blockCov    func(analysis.Location, int)
}

// New creates a runtime dispatching to the given analysis, with its own
// freshly derived shared state. Sessions created through the engine API use
// NewBound instead, so all sessions of one CompiledAnalysis reuse one layout
// table and one buffer pool.
func New(meta *core.Metadata, a any) *Runtime {
	return NewBound(meta, a, NewShared(meta, nil))
}

// NewBound creates a runtime dispatching to the given analysis, binding it
// against precomputed shared state. If the analysis implements
// analysis.ModuleInfoReceiver it receives the module info now.
func NewBound(meta *core.Metadata, a any, shared *Shared) *Runtime {
	r := &Runtime{meta: meta, shared: shared, caps: analysis.CapsOf(a)}
	if v, ok := a.(analysis.NopHooker); ok {
		r.nop = v.Nop
	}
	if v, ok := a.(analysis.UnreachableHooker); ok {
		r.unreachable = v.Unreachable
	}
	if v, ok := a.(analysis.IfHooker); ok {
		r.ifHook = v.If
	}
	if v, ok := a.(analysis.BrHooker); ok {
		r.br = v.Br
	}
	if v, ok := a.(analysis.BrIfHooker); ok {
		r.brIf = v.BrIf
	}
	if v, ok := a.(analysis.BrTableHooker); ok {
		r.brTable = v.BrTable
	}
	if v, ok := a.(analysis.BeginHooker); ok {
		r.begin = v.Begin
	}
	if v, ok := a.(analysis.EndHooker); ok {
		r.end = v.End
	}
	if v, ok := a.(analysis.ConstHooker); ok {
		r.constHook = v.Const
	}
	if v, ok := a.(analysis.DropHooker); ok {
		r.drop = v.Drop
	}
	if v, ok := a.(analysis.SelectHooker); ok {
		r.selectHook = v.Select
	}
	if v, ok := a.(analysis.UnaryHooker); ok {
		r.unary = v.Unary
	}
	if v, ok := a.(analysis.BinaryHooker); ok {
		r.binary = v.Binary
	}
	if v, ok := a.(analysis.LocalHooker); ok {
		r.local = v.Local
	}
	if v, ok := a.(analysis.GlobalHooker); ok {
		r.global = v.Global
	}
	if v, ok := a.(analysis.LoadHooker); ok {
		r.load = v.Load
	}
	if v, ok := a.(analysis.StoreHooker); ok {
		r.store = v.Store
	}
	if v, ok := a.(analysis.MemorySizeHooker); ok {
		r.memSize = v.MemorySize
	}
	if v, ok := a.(analysis.MemoryGrowHooker); ok {
		r.memGrow = v.MemoryGrow
	}
	if v, ok := a.(analysis.CallPreHooker); ok {
		r.callPre = v.CallPre
	}
	if v, ok := a.(analysis.CallPostHooker); ok {
		r.callPost = v.CallPost
	}
	if v, ok := a.(analysis.ReturnHooker); ok {
		r.returnHook = v.Return
	}
	if v, ok := a.(analysis.StartHooker); ok {
		r.start = v.Start
	}
	if v, ok := a.(analysis.BlockCoverageHooker); ok {
		r.blockCov = v.BlockCovered
	}
	if v, ok := a.(analysis.ModuleInfoReceiver); ok {
		v.SetModuleInfo(&meta.Info)
	}
	return r
}

// BindInstance gives the runtime access to the most recently instantiated
// module, used as a fallback to resolve indirect-call table indices when a
// trampoline is invoked without an instance (the interpreter always passes
// the calling instance, which takes precedence — so with multiple instances
// per session, each hook resolves against the instance that fired it).
func (r *Runtime) BindInstance(inst *interp.Instance) { r.inst = inst }

// SetEmitter switches the runtime to stream dispatch: Imports() compiles
// record encoders (encoder.go) for the hooks selected by caps, writing
// packed event records into em, and binds every other hook to an elidable
// no-op. Callback dispatch is disabled for this runtime. Must be called
// before Imports() is first consulted (i.e. before the session
// instantiates); the public layer enforces the ordering.
func (r *Runtime) SetEmitter(em *Emitter, caps analysis.Cap) {
	r.emitter = em
	r.streamCaps = caps
}

// Imports returns the host imports providing every generated low-level hook
// under the core.HookModule namespace, each bound to its compiled trampoline
// (zero-copy Fast convention) — or, in stream mode, to its compiled record
// encoder (Emit convention). Merge them with the program's own imports
// before instantiation. The dispatchers are compiled on the first call and
// reused: a session instantiating N instances binds them once.
func (r *Runtime) Imports() interp.Imports {
	r.importsOnce.Do(func() {
		fields := make(map[string]any, len(r.meta.Hooks))
		for i := range r.meta.Hooks {
			spec := &r.meta.Hooks[i]
			hf := &interp.HostFunc{Type: spec.WasmType()}
			if r.emitter != nil {
				hf.Emit, hf.NoOp = r.compileEncoder(spec, r.shared.Layouts[i], i)
			} else {
				hf.Fast, hf.NoOp = r.compileTrampoline(spec, r.shared.Layouts[i])
			}
			fields[spec.Name] = hf
		}
		r.imports = interp.Imports{core.HookModule: fields}
	})
	return r.imports
}

// TrapInvalidMetadata is the trap code reported when an instrumented module
// references instrumentation metadata that does not exist (corrupted or
// mismatched core.Metadata), or calls a hook with a mismatched argument
// vector.
const TrapInvalidMetadata = "invalid instrumentation metadata"
