// Package runtime is the Wasabi runtime (the right-hand side of Figure 2 in
// the paper): it provides the imported low-level hook functions to the
// instrumented module and dispatches them to the high-level hooks of the
// user's analysis. On the way it re-joins split i64 values, resolves
// indirect-call table indices to the actually called function, and replays
// the end hooks of blocks traversed by br_table branches, whose set is only
// known at runtime (paper §2.4.5).
package runtime

import (
	"fmt"

	"wasabi/internal/analysis"
	"wasabi/internal/core"
	"wasabi/internal/interp"
	"wasabi/internal/wasm"
)

// Runtime dispatches low-level hook calls to one analysis.
type Runtime struct {
	meta *core.Metadata
	inst *interp.Instance // bound after instantiation, for table resolution

	// Pre-bound high-level hook callbacks; nil when the analysis does not
	// implement the corresponding interface.
	nop         func(analysis.Location)
	unreachable func(analysis.Location)
	ifHook      func(analysis.Location, bool)
	br          func(analysis.Location, analysis.BranchTarget)
	brIf        func(analysis.Location, analysis.BranchTarget, bool)
	brTable     func(analysis.Location, []analysis.BranchTarget, analysis.BranchTarget, uint32)
	begin       func(analysis.Location, analysis.BlockKind)
	end         func(analysis.Location, analysis.BlockKind, analysis.Location)
	constHook   func(analysis.Location, analysis.Value)
	drop        func(analysis.Location, analysis.Value)
	selectHook  func(analysis.Location, bool, analysis.Value, analysis.Value)
	unary       func(analysis.Location, string, analysis.Value, analysis.Value)
	binary      func(analysis.Location, string, analysis.Value, analysis.Value, analysis.Value)
	local       func(analysis.Location, string, uint32, analysis.Value)
	global      func(analysis.Location, string, uint32, analysis.Value)
	load        func(analysis.Location, string, analysis.MemArg, analysis.Value)
	store       func(analysis.Location, string, analysis.MemArg, analysis.Value)
	memSize     func(analysis.Location, uint32)
	memGrow     func(analysis.Location, uint32, uint32)
	callPre     func(analysis.Location, int, []analysis.Value, int64)
	callPost    func(analysis.Location, []analysis.Value)
	returnHook  func(analysis.Location, []analysis.Value)
	start       func(analysis.Location)
}

// New creates a runtime dispatching to the given analysis. If the analysis
// implements analysis.ModuleInfoReceiver it receives the module info now.
func New(meta *core.Metadata, a any) *Runtime {
	r := &Runtime{meta: meta}
	if v, ok := a.(analysis.NopHooker); ok {
		r.nop = v.Nop
	}
	if v, ok := a.(analysis.UnreachableHooker); ok {
		r.unreachable = v.Unreachable
	}
	if v, ok := a.(analysis.IfHooker); ok {
		r.ifHook = v.If
	}
	if v, ok := a.(analysis.BrHooker); ok {
		r.br = v.Br
	}
	if v, ok := a.(analysis.BrIfHooker); ok {
		r.brIf = v.BrIf
	}
	if v, ok := a.(analysis.BrTableHooker); ok {
		r.brTable = v.BrTable
	}
	if v, ok := a.(analysis.BeginHooker); ok {
		r.begin = v.Begin
	}
	if v, ok := a.(analysis.EndHooker); ok {
		r.end = v.End
	}
	if v, ok := a.(analysis.ConstHooker); ok {
		r.constHook = v.Const
	}
	if v, ok := a.(analysis.DropHooker); ok {
		r.drop = v.Drop
	}
	if v, ok := a.(analysis.SelectHooker); ok {
		r.selectHook = v.Select
	}
	if v, ok := a.(analysis.UnaryHooker); ok {
		r.unary = v.Unary
	}
	if v, ok := a.(analysis.BinaryHooker); ok {
		r.binary = v.Binary
	}
	if v, ok := a.(analysis.LocalHooker); ok {
		r.local = v.Local
	}
	if v, ok := a.(analysis.GlobalHooker); ok {
		r.global = v.Global
	}
	if v, ok := a.(analysis.LoadHooker); ok {
		r.load = v.Load
	}
	if v, ok := a.(analysis.StoreHooker); ok {
		r.store = v.Store
	}
	if v, ok := a.(analysis.MemorySizeHooker); ok {
		r.memSize = v.MemorySize
	}
	if v, ok := a.(analysis.MemoryGrowHooker); ok {
		r.memGrow = v.MemoryGrow
	}
	if v, ok := a.(analysis.CallPreHooker); ok {
		r.callPre = v.CallPre
	}
	if v, ok := a.(analysis.CallPostHooker); ok {
		r.callPost = v.CallPost
	}
	if v, ok := a.(analysis.ReturnHooker); ok {
		r.returnHook = v.Return
	}
	if v, ok := a.(analysis.StartHooker); ok {
		r.start = v.Start
	}
	if v, ok := a.(analysis.ModuleInfoReceiver); ok {
		v.SetModuleInfo(&meta.Info)
	}
	return r
}

// BindInstance gives the runtime access to the instantiated module, needed
// to resolve indirect-call table indices. Must be called before execution
// when the analysis uses the call hook on modules with indirect calls.
func (r *Runtime) BindInstance(inst *interp.Instance) { r.inst = inst }

// Imports returns the host imports providing every generated low-level hook
// under the core.HookModule namespace. Merge them with the program's own
// imports before instantiation.
func (r *Runtime) Imports() interp.Imports {
	fields := make(map[string]any, len(r.meta.Hooks))
	for i := range r.meta.Hooks {
		spec := r.meta.Hooks[i] // copy: closures must not share the loop var's address
		fields[spec.Name] = &interp.HostFunc{
			Type: spec.WasmType(),
			Fn: func(inst *interp.Instance, args []interp.Value) ([]interp.Value, error) {
				if r.inst == nil {
					// Self-bind on first call: hooks can fire during the
					// start function, before BindInstance could run.
					r.inst = inst
				}
				return nil, r.dispatch(&spec, args)
			},
		}
	}
	return interp.Imports{core.HookModule: fields}
}

// argReader decodes the raw lowered argument vector of a hook call.
type argReader struct {
	args []interp.Value
	pos  int
}

func (ar *argReader) i32() int32 { v := int32(uint32(ar.args[ar.pos])); ar.pos++; return v }

func (ar *argReader) u32() uint32 { v := uint32(ar.args[ar.pos]); ar.pos++; return v }

// value reads one logical value of type t, re-joining i64 halves.
func (ar *argReader) value(t wasm.ValType) analysis.Value {
	if t == wasm.I64 {
		lo := uint64(uint32(ar.args[ar.pos]))
		hi := uint64(uint32(ar.args[ar.pos+1]))
		ar.pos += 2
		return analysis.Value{Type: wasm.I64, Bits: hi<<32 | lo}
	}
	v := analysis.Value{Type: t, Bits: ar.args[ar.pos]}
	ar.pos++
	return v
}

func (ar *argReader) values(ts []wasm.ValType) []analysis.Value {
	if len(ts) == 0 {
		return nil
	}
	vs := make([]analysis.Value, len(ts))
	for i, t := range ts {
		vs[i] = ar.value(t)
	}
	return vs
}

// dispatch decodes one low-level hook call and invokes the matching
// high-level hook, if the analysis implements it. A mismatch between the
// instrumented module and the metadata (which can only happen when an
// embedder corrupts or mixes up Metadata) is reported as a trap error, not a
// host-process panic: the guest instruction stream must never be able to
// take the embedder down.
func (r *Runtime) dispatch(spec *core.HookSpec, args []interp.Value) error {
	ar := &argReader{args: args}
	loc := analysis.Location{Func: int(ar.i32()), Instr: int(ar.i32())}

	switch spec.Kind {
	case analysis.KindNop:
		if r.nop != nil {
			r.nop(loc)
		}
	case analysis.KindUnreachable:
		if r.unreachable != nil {
			r.unreachable(loc)
		}
	case analysis.KindIf:
		if r.ifHook != nil {
			r.ifHook(loc, ar.u32() != 0)
		}
	case analysis.KindBr:
		if r.br != nil {
			label := ar.u32()
			instr := int(ar.i32())
			r.br(loc, analysis.BranchTarget{Label: label, Location: analysis.Location{Func: loc.Func, Instr: instr}})
		}
	case analysis.KindBrIf:
		if r.brIf != nil {
			label := ar.u32()
			instr := int(ar.i32())
			cond := ar.u32() != 0
			r.brIf(loc, analysis.BranchTarget{Label: label, Location: analysis.Location{Func: loc.Func, Instr: instr}}, cond)
		}
	case analysis.KindBrTable:
		return r.dispatchBrTable(loc, ar)
	case analysis.KindBegin:
		if r.begin != nil {
			r.begin(loc, spec.Block)
		}
	case analysis.KindEnd:
		if r.end != nil {
			begin := int(ar.i32())
			r.end(loc, spec.Block, analysis.Location{Func: loc.Func, Instr: begin})
		}
	case analysis.KindConst:
		if r.constHook != nil {
			r.constHook(loc, ar.value(spec.Types[0]))
		}
	case analysis.KindDrop:
		if r.drop != nil {
			r.drop(loc, ar.value(spec.Types[0]))
		}
	case analysis.KindSelect:
		if r.selectHook != nil {
			cond := ar.u32() != 0
			first := ar.value(spec.Types[1])
			second := ar.value(spec.Types[2])
			r.selectHook(loc, cond, first, second)
		}
	case analysis.KindUnary:
		if r.unary != nil {
			in := ar.value(spec.Types[0])
			out := ar.value(spec.Types[1])
			r.unary(loc, spec.Op.String(), in, out)
		}
	case analysis.KindBinary:
		if r.binary != nil {
			a := ar.value(spec.Types[0])
			b := ar.value(spec.Types[1])
			res := ar.value(spec.Types[2])
			r.binary(loc, spec.Op.String(), a, b, res)
		}
	case analysis.KindLocal:
		if r.local != nil {
			idx := ar.u32()
			r.local(loc, spec.Op.String(), idx, ar.value(spec.Types[1]))
		}
	case analysis.KindGlobal:
		if r.global != nil {
			idx := ar.u32()
			r.global(loc, spec.Op.String(), idx, ar.value(spec.Types[1]))
		}
	case analysis.KindLoad:
		if r.load != nil {
			offset := ar.u32()
			addr := ar.u32()
			r.load(loc, spec.Op.String(), analysis.MemArg{Addr: addr, Offset: offset}, ar.value(spec.Types[2]))
		}
	case analysis.KindStore:
		if r.store != nil {
			offset := ar.u32()
			addr := ar.u32()
			r.store(loc, spec.Op.String(), analysis.MemArg{Addr: addr, Offset: offset}, ar.value(spec.Types[2]))
		}
	case analysis.KindMemorySize:
		if r.memSize != nil {
			r.memSize(loc, ar.u32())
		}
	case analysis.KindMemoryGrow:
		if r.memGrow != nil {
			delta := ar.u32()
			r.memGrow(loc, delta, ar.u32())
		}
	case analysis.KindCall:
		r.dispatchCall(loc, spec, ar)
	case analysis.KindReturn:
		if r.returnHook != nil {
			r.returnHook(loc, ar.values(spec.Types))
		}
	case analysis.KindStart:
		if r.start != nil {
			r.start(loc)
		}
	}
	return nil
}

func (r *Runtime) dispatchCall(loc analysis.Location, spec *core.HookSpec, ar *argReader) {
	if spec.Post {
		if r.callPost != nil {
			r.callPost(loc, ar.values(spec.Types))
		}
		return
	}
	if r.callPre == nil {
		return
	}
	first := ar.u32()
	args := ar.values(spec.Types[1:])
	if !spec.Indirect {
		r.callPre(loc, int(first), args, -1)
		return
	}
	// Indirect call: resolve the runtime table index to the actually called
	// function (pre-computed information, paper §2.3) and map the
	// instrumented index back to the original index space.
	target := -1
	if r.inst != nil {
		if fidx := r.inst.ResolveTable(first); fidx >= 0 {
			target = r.meta.OriginalFuncIdx(int(fidx))
		}
	}
	r.callPre(loc, target, args, int64(first))
}

// TrapInvalidMetadata is the trap code reported when an instrumented module
// references instrumentation metadata that does not exist (corrupted or
// mismatched core.Metadata).
const TrapInvalidMetadata = "invalid instrumentation metadata"

func (r *Runtime) dispatchBrTable(loc analysis.Location, ar *argReader) error {
	metaIdx := int(ar.i32())
	idx := ar.u32()
	if metaIdx < 0 || metaIdx >= len(r.meta.BrTables) {
		// Surfaced as an interp.Trap through the host-function error path:
		// the invoking Invoke returns it as an error instead of the previous
		// unrecovered panic of the whole host process.
		return &interp.Trap{
			Code: TrapInvalidMetadata,
			Info: fmt.Sprintf("br_table metadata index %d out of range (have %d) at %v", metaIdx, len(r.meta.BrTables), loc),
		}
	}
	info := &r.meta.BrTables[metaIdx]

	taken := info.Default
	if int(idx) < len(info.Targets) {
		taken = info.Targets[idx]
	}
	// Fire the end hooks of all blocks left by the taken branch; this is the
	// runtime half of the dynamic block-nesting mechanism (paper §2.4.5).
	if r.end != nil {
		for _, e := range taken.Ends {
			r.end(analysis.Location{Func: loc.Func, Instr: e.End}, e.Kind,
				analysis.Location{Func: loc.Func, Instr: e.Begin})
		}
	}
	if r.brTable != nil {
		table := make([]analysis.BranchTarget, len(info.Targets))
		for i, t := range info.Targets {
			table[i] = analysis.BranchTarget{Label: t.Label, Location: analysis.Location{Func: loc.Func, Instr: t.Instr}}
		}
		deflt := analysis.BranchTarget{Label: info.Default.Label, Location: analysis.Location{Func: loc.Func, Instr: info.Default.Instr}}
		r.brTable(loc, table, deflt, idx)
	}
	return nil
}
