package runtime

// Per-spec compiled record encoders: the producer half of the event-stream
// surface and the sibling of trampoline.go. A trampoline decodes one lowered
// hook-argument vector and calls analysis Go code; an encoder decodes the
// same vector — through the same precomputed HookSpec.Layout() offsets,
// including the i64 lo/hi re-joins — and instead appends one packed
// analysis.Event record to the session's Emitter. Everything static about a
// record (hook index, kind, Pack byte, slot offsets and types, continuation
// plan) is computed once here, at Imports() time; the per-event path only
// copies words.
//
// Encoders use the interpreter's Emit host-call convention (the record-emit
// twin of Fast, see iCallHostEmit): args is a read-only stack window, never
// retained, and failure is reported only by a trap panic — the hot loop has
// no error check. Hooks outside the stream capability set compile to a
// shared no-op and are elided by the interpreter exactly like dead callback
// hooks.
//
// Flush points, per the stream contract: batch-full (Emitter.emit),
// top-level call completion (the session installs Emitter.Flush as the
// instance's top-return hook, independent of which hooks are streamed),
// and explicit Emitter.Flush/Close.

import (
	"fmt"

	"wasabi/internal/analysis"
	"wasabi/internal/core"
	"wasabi/internal/interp"
	"wasabi/internal/wasm"
)

// emitFn is the compiled record encoder of one low-level hook; it matches
// interp.HostFunc.Emit.
type emitFn = func(inst *interp.Instance, args []interp.Value)

// nopEmit is the shared encoder of every hook outside the stream caps.
func nopEmit(*interp.Instance, []interp.Value) {}

// emitArity panics with the same trap a trampoline would return when the
// lowered argument vector does not match the spec (Emit has no error path).
func emitArity(name string, want, got int) {
	panic(&interp.Trap{
		Code: TrapInvalidMetadata,
		Info: fmt.Sprintf("hook %s called with %d lowered args, want %d", name, got, want),
	})
}

// rawAt decodes the raw 64-bit representation of one logical value at its
// precomputed lowered offset, re-joining i64 (lo, hi) halves. It is
// valueAt without the type box — Event records carry raw bits, the types
// live in the EventTable.
func rawAt(args []interp.Value, off int, t wasm.ValType) uint64 {
	if t == wasm.I64 {
		lo := uint64(uint32(args[off]))
		hi := uint64(uint32(args[off+1]))
		return hi<<32 | lo
	}
	return args[off]
}

// setLoc fills the location header from the two leading location words.
func setLoc(e *analysis.Event, args []interp.Value) {
	e.Func = int32(uint32(args[0]))
	e.Instr = int32(uint32(args[1]))
}

// encSlot is one value of a record group: where it sits in the lowered
// vector and its logical type.
type encSlot struct {
	off int
	t   wasm.ValType
}

// encRec is the compile-time plan of one record of a group: which Vals slot
// the values start at, the precomputed Pack byte, and the slots to copy.
type encRec struct {
	pack  uint8
	start int
	slots []encSlot
}

// fillRec copies one planned record's values from the lowered vector.
func fillRec(e *analysis.Event, rec *encRec, args []interp.Value) {
	for i := range rec.slots {
		e.Vals[rec.start+i] = rawAt(args, rec.slots[i].off, rec.slots[i].t)
	}
}

// planValues lays a logical value vector out over a primary record (whose
// first Vals slot is start, with head occupying the slots before it) and as
// many continuation records as needed, 3 values each. head holds the types
// of the primary record's leading non-vector slots (e.g. call_pre's table
// index) so its Pack byte is complete.
func planValues(offs []int, ts []wasm.ValType, start int, head ...wasm.ValType) []encRec {
	recs := []encRec{{start: start}}
	cur := 0
	for i := range ts {
		if start+len(recs[cur].slots) == 3 {
			recs = append(recs, encRec{})
			cur++
			start = 0
		}
		recs[cur].slots = append(recs[cur].slots, encSlot{off: offs[i], t: ts[i]})
	}
	// Pack bytes: the primary includes the head slots, continuations only
	// their own values.
	primTypes := append(append([]wasm.ValType{}, head...), slotTypes(recs[0].slots)...)
	recs[0].pack = analysis.PackSlots(primTypes...)
	for i := 1; i < len(recs); i++ {
		recs[i].pack = analysis.PackSlots(slotTypes(recs[i].slots)...)
	}
	return recs
}

func slotTypes(slots []encSlot) []wasm.ValType {
	ts := make([]wasm.ValType, len(slots))
	for i := range slots {
		ts[i] = slots[i].t
	}
	return ts
}

// emitGroup emits a primary record and its planned continuations as one
// atomic group (never straddling a batch boundary).
func emitGroup(em *Emitter, e analysis.Event, recs []encRec, args []interp.Value) {
	em.reserve(len(recs))
	fillRec(&e, &recs[0], args)
	em.emit(e)
	for i := 1; i < len(recs); i++ {
		c := analysis.Event{
			Hook: analysis.EventCont, Kind: e.Kind, Pack: recs[i].pack,
			Func: e.Func, Instr: e.Instr,
		}
		fillRec(&c, &recs[i], args)
		em.emit(c)
	}
}

// compileEncoder builds the record encoder for one hook spec against its
// precomputed lowered-arg layout. hookIdx is the spec's index in the
// metadata hook table (what Event.Hook carries). noop reports that the
// stream capability set cannot observe this hook, so the interpreter may
// elide its call sites; the returned fn is still always callable.
func (r *Runtime) compileEncoder(spec *core.HookSpec, lay core.ArgLayout, hookIdx int) (fn emitFn, noop bool) {
	caps := r.streamCaps
	em := r.emitter
	arity := lay.Arity
	name := spec.Name
	tmpl := analysis.Event{Hook: uint16(hookIdx), Kind: spec.Kind}

	// locOnly is the shared shape of the payload-less hooks.
	locOnly := func() emitFn {
		return func(_ *interp.Instance, args []interp.Value) {
			if len(args) != arity {
				emitArity(name, arity, len(args))
			}
			e := tmpl
			setLoc(&e, args)
			em.emit(e)
		}
	}
	// auxOnly carries one scalar from lowered offset 2 in Aux.
	auxOnly := func() emitFn {
		return func(_ *interp.Instance, args []interp.Value) {
			if len(args) != arity {
				emitArity(name, arity, len(args))
			}
			e := tmpl
			setLoc(&e, args)
			e.Aux = uint32(args[2])
			em.emit(e)
		}
	}

	switch spec.Kind {
	case analysis.KindNop:
		if !caps.Has(analysis.CapNop) {
			return nopEmit, true
		}
		return locOnly(), false

	case analysis.KindUnreachable:
		if !caps.Has(analysis.CapUnreachable) {
			return nopEmit, true
		}
		return locOnly(), false

	case analysis.KindStart:
		if !caps.Has(analysis.CapStart) {
			return nopEmit, true
		}
		return locOnly(), false

	case analysis.KindBegin:
		if !caps.Has(analysis.CapBegin) {
			return nopEmit, true
		}
		return locOnly(), false

	case analysis.KindIf:
		if !caps.Has(analysis.CapIf) {
			return nopEmit, true
		}
		return auxOnly(), false

	case analysis.KindEnd:
		if !caps.Has(analysis.CapEnd) {
			return nopEmit, true
		}
		// Aux = begin instruction index; Vals[0] = block kind code, so end
		// records decode without a spec (matching the synthesized br_table
		// replays).
		tmpl.Pack = analysis.PackSlots(wasm.I32)
		tmpl.Vals[0] = uint64(spec.Block.Code())
		return auxOnly(), false

	case analysis.KindMemorySize:
		if !caps.Has(analysis.CapMemorySize) {
			return nopEmit, true
		}
		return auxOnly(), false

	case analysis.KindBlockProbe:
		// Aux = the block's last original instruction index.
		if !caps.Has(analysis.CapBlockCoverage) {
			return nopEmit, true
		}
		return auxOnly(), false

	case analysis.KindBr:
		if !caps.Has(analysis.CapBr) {
			return nopEmit, true
		}
		tmpl.Pack = analysis.PackSlots(wasm.I32)
		return func(_ *interp.Instance, args []interp.Value) {
			if len(args) != arity {
				emitArity(name, arity, len(args))
			}
			e := tmpl
			setLoc(&e, args)
			e.Aux = uint32(args[2])     // raw label
			e.Vals[0] = uint64(args[3]) // resolved target instruction
			em.emit(e)
		}, false

	case analysis.KindBrIf:
		if !caps.Has(analysis.CapBrIf) {
			return nopEmit, true
		}
		tmpl.Pack = analysis.PackSlots(wasm.I32, wasm.I32)
		return func(_ *interp.Instance, args []interp.Value) {
			if len(args) != arity {
				emitArity(name, arity, len(args))
			}
			e := tmpl
			setLoc(&e, args)
			e.Aux = uint32(args[4]) // condition
			e.Vals[0] = uint64(args[2])
			e.Vals[1] = uint64(args[3])
			em.emit(e)
		}, false

	case analysis.KindBrTable:
		if !caps.HasAny(analysis.CapBrTable | analysis.CapEnd) {
			return nopEmit, true
		}
		return r.brTableEncoder(tmpl, name, arity), false

	case analysis.KindConst:
		if !caps.Has(analysis.CapConst) {
			return nopEmit, true
		}
		return r.valueEncoder(tmpl, name, arity, 2, spec.Types[0]), false

	case analysis.KindDrop:
		if !caps.Has(analysis.CapDrop) {
			return nopEmit, true
		}
		return r.valueEncoder(tmpl, name, arity, 2, spec.Types[0]), false

	case analysis.KindSelect:
		if !caps.Has(analysis.CapSelect) {
			return nopEmit, true
		}
		t := spec.Types[1]
		o1, o2 := lay.Offs[1], lay.Offs[2]
		tmpl.Pack = analysis.PackSlots(t, t)
		return func(_ *interp.Instance, args []interp.Value) {
			if len(args) != arity {
				emitArity(name, arity, len(args))
			}
			e := tmpl
			setLoc(&e, args)
			e.Aux = uint32(args[2]) // condition
			e.Vals[0] = rawAt(args, o1, t)
			e.Vals[1] = rawAt(args, o2, t)
			em.emit(e)
		}, false

	case analysis.KindUnary:
		if !caps.Has(analysis.CapUnary) {
			return nopEmit, true
		}
		tIn, tOut := spec.Types[0], spec.Types[1]
		oOut := lay.Offs[1]
		tmpl.Pack = analysis.PackSlots(tIn, tOut)
		return func(_ *interp.Instance, args []interp.Value) {
			if len(args) != arity {
				emitArity(name, arity, len(args))
			}
			e := tmpl
			setLoc(&e, args)
			e.Vals[0] = rawAt(args, 2, tIn)
			e.Vals[1] = rawAt(args, oOut, tOut)
			em.emit(e)
		}, false

	case analysis.KindBinary:
		if !caps.Has(analysis.CapBinary) {
			return nopEmit, true
		}
		t0, t1, t2 := spec.Types[0], spec.Types[1], spec.Types[2]
		o1, o2 := lay.Offs[1], lay.Offs[2]
		tmpl.Pack = analysis.PackSlots(t0, t1, t2)
		return func(_ *interp.Instance, args []interp.Value) {
			if len(args) != arity {
				emitArity(name, arity, len(args))
			}
			e := tmpl
			setLoc(&e, args)
			e.Vals[0] = rawAt(args, 2, t0)
			e.Vals[1] = rawAt(args, o1, t1)
			e.Vals[2] = rawAt(args, o2, t2)
			em.emit(e)
		}, false

	case analysis.KindLocal:
		if !caps.Has(analysis.CapLocal) {
			return nopEmit, true
		}
		return r.indexedEncoder(tmpl, name, arity, spec.Types[1]), false

	case analysis.KindGlobal:
		if !caps.Has(analysis.CapGlobal) {
			return nopEmit, true
		}
		return r.indexedEncoder(tmpl, name, arity, spec.Types[1]), false

	case analysis.KindLoad:
		if !caps.Has(analysis.CapLoad) {
			return nopEmit, true
		}
		return r.memEncoder(tmpl, name, arity, spec.Types[2]), false

	case analysis.KindStore:
		if !caps.Has(analysis.CapStore) {
			return nopEmit, true
		}
		return r.memEncoder(tmpl, name, arity, spec.Types[2]), false

	case analysis.KindMemoryGrow:
		if !caps.Has(analysis.CapMemoryGrow) {
			return nopEmit, true
		}
		tmpl.Pack = analysis.PackSlots(wasm.I32)
		return func(_ *interp.Instance, args []interp.Value) {
			if len(args) != arity {
				emitArity(name, arity, len(args))
			}
			e := tmpl
			setLoc(&e, args)
			e.Aux = uint32(args[2])     // delta
			e.Vals[0] = uint64(args[3]) // previous size
			em.emit(e)
		}, false

	case analysis.KindCall:
		return r.callEncoder(tmpl, spec, lay)

	case analysis.KindReturn:
		if !caps.Has(analysis.CapReturn) {
			return nopEmit, true
		}
		recs := planValues(lay.Offs, spec.Types, 0)
		return func(_ *interp.Instance, args []interp.Value) {
			if len(args) != arity {
				emitArity(name, arity, len(args))
			}
			e := tmpl
			setLoc(&e, args)
			emitGroup(em, e, recs, args)
		}, false
	}

	// Unknown kind (newer metadata than this runtime): never observable.
	return nopEmit, true
}

// valueEncoder carries one typed value at lowered offset off in Vals[0]
// (const, drop).
func (r *Runtime) valueEncoder(tmpl analysis.Event, name string, arity, off int, t wasm.ValType) emitFn {
	em := r.emitter
	tmpl.Pack = analysis.PackSlots(t)
	return func(_ *interp.Instance, args []interp.Value) {
		if len(args) != arity {
			emitArity(name, arity, len(args))
		}
		e := tmpl
		setLoc(&e, args)
		e.Vals[0] = rawAt(args, off, t)
		em.emit(e)
	}
}

// indexedEncoder carries a variable index in Aux and one typed value in
// Vals[0] (local, global).
func (r *Runtime) indexedEncoder(tmpl analysis.Event, name string, arity int, t wasm.ValType) emitFn {
	em := r.emitter
	tmpl.Pack = analysis.PackSlots(t)
	return func(_ *interp.Instance, args []interp.Value) {
		if len(args) != arity {
			emitArity(name, arity, len(args))
		}
		e := tmpl
		setLoc(&e, args)
		e.Aux = uint32(args[2])
		e.Vals[0] = rawAt(args, 3, t)
		em.emit(e)
	}
}

// memEncoder carries the static offset in Aux, the dynamic address in
// Vals[0], and the accessed value in Vals[1] (load, store).
func (r *Runtime) memEncoder(tmpl analysis.Event, name string, arity int, t wasm.ValType) emitFn {
	em := r.emitter
	tmpl.Pack = analysis.PackSlots(wasm.I32, t)
	return func(_ *interp.Instance, args []interp.Value) {
		if len(args) != arity {
			emitArity(name, arity, len(args))
		}
		e := tmpl
		setLoc(&e, args)
		e.Aux = uint32(args[2])     // static offset
		e.Vals[0] = uint64(args[3]) // address
		e.Vals[1] = rawAt(args, 4, t)
		em.emit(e)
	}
}

// callEncoder specializes the three call-hook shapes, mirroring
// callTrampoline: call_post, direct call_pre, and indirect call_pre with
// table resolution. Argument/result vectors that exceed the record's free
// slots spill into continuation records (see planValues).
func (r *Runtime) callEncoder(tmpl analysis.Event, spec *core.HookSpec, lay core.ArgLayout) (emitFn, bool) {
	caps := r.streamCaps
	em := r.emitter
	arity := lay.Arity
	name := spec.Name

	if spec.Post {
		if !caps.Has(analysis.CapCallPost) {
			return nopEmit, true
		}
		recs := planValues(lay.Offs, spec.Types, 0)
		return func(_ *interp.Instance, args []interp.Value) {
			if len(args) != arity {
				emitArity(name, arity, len(args))
			}
			e := tmpl
			setLoc(&e, args)
			emitGroup(em, e, recs, args)
		}, false
	}
	if !caps.Has(analysis.CapCallPre) {
		return nopEmit, true
	}
	// Vals[0] holds the table index (i64, -1 for direct calls); the callee
	// arguments start at slot 1. Types[0] is the i32 target / table index.
	recs := planValues(lay.Offs[1:], spec.Types[1:], 1, wasm.I64)
	if !spec.Indirect {
		return func(_ *interp.Instance, args []interp.Value) {
			if len(args) != arity {
				emitArity(name, arity, len(args))
			}
			e := tmpl
			setLoc(&e, args)
			e.Aux = uint32(args[2]) // target function index (original space)
			e.Vals[0] = ^uint64(0)  // table index -1: direct call
			emitGroup(em, e, recs, args)
		}, false
	}
	meta := r.meta
	return func(inst *interp.Instance, args []interp.Value) {
		if len(args) != arity {
			emitArity(name, arity, len(args))
		}
		tblIdx := uint32(args[2])
		// Same resolution as the callback trampoline: prefer the calling
		// instance, fall back to the explicitly bound one.
		ri := inst
		if ri == nil {
			ri = r.inst
		}
		target := -1
		if ri != nil {
			if fidx := ri.ResolveTable(tblIdx); fidx >= 0 {
				target = meta.OriginalFuncIdx(int(fidx))
			}
		}
		e := tmpl
		setLoc(&e, args)
		e.Aux = uint32(int32(target))
		e.Vals[0] = uint64(int64(tblIdx))
		emitGroup(em, e, recs, args)
	}, false
}

// brTableEncoder handles the one hook whose encoding consults metadata at
// run time: it replays the end records of the blocks left by the taken
// branch (when end events are streamed) and then emits the br_table record
// itself (when br_table events are streamed) — the exact event order the
// callback dispatcher produces.
func (r *Runtime) brTableEncoder(tmpl analysis.Event, name string, arity int) emitFn {
	em := r.emitter
	meta := r.meta
	emitEnds := r.streamCaps.Has(analysis.CapEnd)
	emitTable := r.streamCaps.Has(analysis.CapBrTable)
	// Replayed end records reference the end hook's table index per block
	// kind when one was generated; when the module was instrumented without
	// end hooks (the replay data lives in the br_table metadata either way)
	// they carry the EventSynth sentinel and decode by Kind + kind code.
	endHook := map[analysis.BlockKind]uint16{}
	for i := range meta.Hooks {
		if meta.Hooks[i].Kind == analysis.KindEnd {
			endHook[meta.Hooks[i].Block] = uint16(i)
		}
	}
	endHookOf := func(k analysis.BlockKind) uint16 {
		if h, ok := endHook[k]; ok {
			return h
		}
		return analysis.EventSynth
	}
	packI32 := analysis.PackSlots(wasm.I32) // precomputed like every template Pack
	return func(_ *interp.Instance, args []interp.Value) {
		if len(args) != arity {
			emitArity(name, arity, len(args))
		}
		e := tmpl
		setLoc(&e, args)
		metaIdx := int(int32(uint32(args[2])))
		idx := uint32(args[3])
		if metaIdx < 0 || metaIdx >= len(meta.BrTables) {
			panic(&interp.Trap{
				Code: TrapInvalidMetadata,
				Info: fmt.Sprintf("br_table metadata index %d out of range (have %d) at %v", metaIdx, len(meta.BrTables), e.Loc()),
			})
		}
		info := &meta.BrTables[metaIdx]
		taken := info.Default
		if int(idx) < len(info.Targets) {
			taken = info.Targets[idx]
		}
		if emitEnds {
			for _, end := range taken.Ends {
				em.emit(analysis.Event{
					Hook:  endHookOf(end.Kind),
					Kind:  analysis.KindEnd,
					Pack:  packI32,
					Func:  e.Func,
					Instr: int32(end.End),
					Aux:   uint32(int32(end.Begin)),
					Vals:  [3]uint64{uint64(end.Kind.Code())},
				})
			}
		}
		if emitTable {
			e.Aux = idx
			e.Pack = packI32
			e.Vals[0] = uint64(uint32(metaIdx))
			em.emit(e)
		}
	}
}
