package runtime

// Golden parity suite: every generated HookSpec is dispatched through both
// the old generic Kind-switch dispatcher (kept below as a test-only
// reference implementation) and the production trampolines, on identical
// lowered argument vectors, and the resulting high-level hook invocations
// must match event for event — including i64 lo/hi re-joins, br_table
// end-replay, and indirect-call table resolution.

import (
	"fmt"
	"testing"

	"wasabi/internal/analysis"
	"wasabi/internal/builder"
	"wasabi/internal/core"
	"wasabi/internal/interp"
	"wasabi/internal/wasm"
)

// recorder implements every hook interface and records each invocation as a
// formatted event string.
type recorder struct{ events []string }

func (r *recorder) log(format string, args ...any) {
	r.events = append(r.events, fmt.Sprintf(format, args...))
}

func (r *recorder) Nop(l analysis.Location)         { r.log("nop %v", l) }
func (r *recorder) Unreachable(l analysis.Location) { r.log("unreachable %v", l) }
func (r *recorder) If(l analysis.Location, c bool)  { r.log("if %v %v", l, c) }
func (r *recorder) Br(l analysis.Location, t analysis.BranchTarget) {
	r.log("br %v %v", l, t)
}
func (r *recorder) BrIf(l analysis.Location, t analysis.BranchTarget, c bool) {
	r.log("br_if %v %v %v", l, t, c)
}
func (r *recorder) BrTable(l analysis.Location, tbl []analysis.BranchTarget, d analysis.BranchTarget, i uint32) {
	r.log("br_table %v %v %v %d", l, tbl, d, i)
}
func (r *recorder) Begin(l analysis.Location, k analysis.BlockKind) { r.log("begin %v %v", l, k) }
func (r *recorder) End(l analysis.Location, k analysis.BlockKind, b analysis.Location) {
	r.log("end %v %v %v", l, k, b)
}
func (r *recorder) Const(l analysis.Location, v analysis.Value) { r.log("const %v %v", l, v) }
func (r *recorder) Drop(l analysis.Location, v analysis.Value)  { r.log("drop %v %v", l, v) }
func (r *recorder) Select(l analysis.Location, c bool, a, b analysis.Value) {
	r.log("select %v %v %v %v", l, c, a, b)
}
func (r *recorder) Unary(l analysis.Location, op string, in, out analysis.Value) {
	r.log("unary %v %s %v %v", l, op, in, out)
}
func (r *recorder) Binary(l analysis.Location, op string, a, b, res analysis.Value) {
	r.log("binary %v %s %v %v %v", l, op, a, b, res)
}
func (r *recorder) Local(l analysis.Location, op string, i uint32, v analysis.Value) {
	r.log("local %v %s %d %v", l, op, i, v)
}
func (r *recorder) Global(l analysis.Location, op string, i uint32, v analysis.Value) {
	r.log("global %v %s %d %v", l, op, i, v)
}
func (r *recorder) Load(l analysis.Location, op string, m analysis.MemArg, v analysis.Value) {
	r.log("load %v %s %v %v", l, op, m, v)
}
func (r *recorder) Store(l analysis.Location, op string, m analysis.MemArg, v analysis.Value) {
	r.log("store %v %s %v %v", l, op, m, v)
}
func (r *recorder) MemorySize(l analysis.Location, p uint32) { r.log("memory_size %v %d", l, p) }
func (r *recorder) MemoryGrow(l analysis.Location, d, p uint32) {
	r.log("memory_grow %v %d %d", l, d, p)
}
func (r *recorder) CallPre(l analysis.Location, t int, args []analysis.Value, ti int64) {
	r.log("call_pre %v %d %v %d", l, t, args, ti)
}
func (r *recorder) CallPost(l analysis.Location, res []analysis.Value) {
	r.log("call_post %v %v", l, res)
}
func (r *recorder) Return(l analysis.Location, res []analysis.Value) {
	r.log("return %v %v", l, res)
}
func (r *recorder) Start(l analysis.Location) { r.log("start %v", l) }

// parityModule generates hooks covering every kind and every lowered layout
// shape, including i64 monomorphizations, a br_table (for metadata), an
// indirect call through a table, and an i64-heavy call signature.
func parityModule() *wasm.Module {
	b := builder.New()
	b.Memory(1)
	b.Table(4)
	g64 := b.GlobalI64(true, 5)

	callee := b.Func("callee", builder.V(wasm.I64, wasm.F64, wasm.I32), builder.V(wasm.I64))
	callee.Get(0)
	callee.Done()

	f := b.Func("f", builder.V(wasm.I32), builder.V(wasm.I32))
	l64 := f.Local(wasm.I64)
	f.Op(wasm.OpNop)
	f.I64(1 << 40).Set(l64)                      // i64 const + local
	f.Get(l64).I64(3).Op(wasm.OpI64Add).Set(l64) // i64 binary
	f.Get(l64).Op(wasm.OpI64Eqz).Drop()          // i64 unary, i32 drop
	f.Get(l64).Drop()                            // i64 drop
	f.GGet(g64).GSet(g64)                        // i64 global
	f.I32(8).Get(l64).Store(wasm.OpI64Store, 0)  // i64 store
	f.I32(8).Load(wasm.OpI64Load, 0).Drop()      // i64 load
	f.Get(l64).Get(l64).Get(0).Select()          // i64 select
	f.Drop()                                     //
	f.Op(wasm.OpMemorySize).Drop()               // memory_size
	f.I32(1).Op(wasm.OpMemoryGrow).Drop()        // memory_grow
	f.I64(7).F64(2.5).Get(0).Call(callee.Index)  // direct call, i64 sig
	f.Op(wasm.OpI32WrapI64).Drop()               //
	f.I64(9).F64(1.5).Get(0).I32(0)              // args + table idx
	f.CallIndirect(builder.V(wasm.I64, wasm.F64, wasm.I32), builder.V(wasm.I64))
	f.Op(wasm.OpI32WrapI64).Drop()
	f.Block().Get(0).BrIf(0).Op(wasm.OpUnreachable).End() // unreachable (branched over)
	f.Block().Block()
	f.Get(0).BrTable([]uint32{0}, 1) // br_table with metadata
	f.End().End()
	f.Block().Get(0).BrIf(0).Br(0).End() // br_if + br
	f.Get(0)
	f.If().Op(wasm.OpNop).Else().Op(wasm.OpNop).End()
	f.Loop().End()
	f.Get(0)
	f.Done()
	b.Elem(0, callee.Index)
	return b.Build()
}

// synthArgs builds a deterministic lowered argument vector for a spec: every
// word gets a distinctive pattern so wrong offsets or a missed i64 re-join
// change the observed events.
func synthArgs(spec *core.HookSpec, n int) []interp.Value {
	args := make([]interp.Value, n)
	for p := range args {
		args[p] = uint64(uint32(0x9E3779B9*uint32(p+1) + uint32(spec.Kind)))
	}
	// Location words: small positive indices.
	if n > 0 {
		args[0] = 3
	}
	if n > 1 {
		args[1] = 17
	}
	// Metadata-indexing and table-indexing words must be in range.
	if spec.Kind == analysis.KindBrTable && n > 3 {
		args[2] = 0 // metadata index
		args[3] = 1 // runtime branch index
	}
	if spec.Kind == analysis.KindCall && !spec.Post && n > 2 {
		args[2] = 0 // table slot 0 / function index 0
	}
	return args
}

func TestTrampolineParityWithGenericDispatch(t *testing.T) {
	m := parityModule()
	instrumented, md, err := core.Instrument(m, core.Options{Hooks: analysis.AllHooks})
	if err != nil {
		t.Fatal(err)
	}

	// One runtime per dispatcher, each with its own recorder.
	recT, recG := &recorder{}, &recorder{}
	rtT, rtG := New(md, recT), New(md, recG)

	inst, err := interp.Instantiate(instrumented, rtT.Imports())
	if err != nil {
		t.Fatal(err)
	}
	rtG.BindInstance(inst) // reference resolves indirect calls via the bound instance

	seenKinds := map[analysis.HookKind]bool{}
	for i := range md.Hooks {
		spec := &md.Hooks[i]
		seenKinds[spec.Kind] = true
		lay := spec.Layout()
		tramp, noop := rtT.compileTrampoline(spec, lay)
		if noop {
			t.Errorf("hook %s: bound no-op although the analysis implements everything", spec.Name)
			continue
		}
		vectors := [][]interp.Value{synthArgs(spec, lay.Arity)}
		if spec.Kind == analysis.KindBrTable {
			// Also exercise the default entry (index past the table).
			v := synthArgs(spec, lay.Arity)
			v[3] = 99
			vectors = append(vectors, v)
		}
		if spec.Kind == analysis.KindCall && !spec.Post && spec.Indirect {
			// Also exercise an unresolvable table index.
			v := synthArgs(spec, lay.Arity)
			v[2] = 1000
			vectors = append(vectors, v)
		}
		for vi, args := range vectors {
			recT.events, recG.events = nil, nil
			errT := tramp(inst, args)
			errG := rtG.referenceDispatch(spec, args)
			if (errT == nil) != (errG == nil) {
				t.Errorf("hook %s vector %d: trampoline err %v, reference err %v", spec.Name, vi, errT, errG)
				continue
			}
			if len(recT.events) != len(recG.events) {
				t.Errorf("hook %s vector %d: %d trampoline events vs %d reference events\n%v\n%v",
					spec.Name, vi, len(recT.events), len(recG.events), recT.events, recG.events)
				continue
			}
			for j := range recT.events {
				if recT.events[j] != recG.events[j] {
					t.Errorf("hook %s vector %d event %d:\n  trampoline: %s\n  reference:  %s",
						spec.Name, vi, j, recT.events[j], recG.events[j])
				}
			}
		}
	}

	// The module must have monomorphized every hook kind, or the suite is
	// weaker than it claims.
	for k := analysis.HookKind(0); k < analysis.HookKind(analysis.NumKinds); k++ {
		if k == analysis.KindStart {
			continue // start requires a start function; covered end-to-end elsewhere
		}
		if k == analysis.KindBlockProbe {
			// Probes are placed by a static plan, not by AllHooks
			// instrumentation; covered by the engine-level elision tests.
			continue
		}
		if !seenKinds[k] {
			t.Errorf("parity module generated no %v hook", k)
		}
	}

	// End-to-end: the full instrumented run through the trampolines must see
	// the exact event stream of a reference-dispatched run.
	runEvents := func(rec *recorder, viaReference bool) []string {
		rec2 := &recorder{}
		rt := New(md, rec2)
		var imports interp.Imports
		if viaReference {
			imports = rt.referenceImports()
		} else {
			imports = rt.Imports()
		}
		in2, err := interp.Instantiate(instrumented, imports)
		if err != nil {
			t.Fatal(err)
		}
		rt.BindInstance(in2)
		if _, err := in2.Invoke("f", interp.I32(1)); err != nil {
			t.Fatal(err)
		}
		return rec2.events
	}
	gotT := runEvents(recT, false)
	gotG := runEvents(recG, true)
	if len(gotT) == 0 {
		t.Fatal("end-to-end run produced no events")
	}
	if len(gotT) != len(gotG) {
		t.Fatalf("end-to-end: %d trampoline events vs %d reference events", len(gotT), len(gotG))
	}
	for i := range gotT {
		if gotT[i] != gotG[i] {
			t.Errorf("end-to-end event %d:\n  trampoline: %s\n  reference:  %s", i, gotT[i], gotG[i])
		}
	}
}

// ---------------------------------------------------------------------------
// Reference implementation: the pre-trampoline generic dispatcher, verbatim.
// Production code no longer uses it; it exists to pin down trampoline
// behavior.
// ---------------------------------------------------------------------------

// referenceImports exposes the reference dispatcher as hook imports, for the
// end-to-end leg of the parity suite.
func (r *Runtime) referenceImports() interp.Imports {
	fields := make(map[string]any, len(r.meta.Hooks))
	for i := range r.meta.Hooks {
		spec := r.meta.Hooks[i] // copy: closures must not share the loop var's address
		fields[spec.Name] = &interp.HostFunc{
			Type: spec.WasmType(),
			Fn: func(inst *interp.Instance, args []interp.Value) ([]interp.Value, error) {
				if r.inst == nil {
					r.inst = inst
				}
				return nil, r.referenceDispatch(&spec, args)
			},
		}
	}
	return interp.Imports{core.HookModule: fields}
}

// argReader decodes the raw lowered argument vector of a hook call.
type argReader struct {
	args []interp.Value
	pos  int
}

func (ar *argReader) i32() int32 { v := int32(uint32(ar.args[ar.pos])); ar.pos++; return v }

func (ar *argReader) u32() uint32 { v := uint32(ar.args[ar.pos]); ar.pos++; return v }

func (ar *argReader) value(t wasm.ValType) analysis.Value {
	if t == wasm.I64 {
		lo := uint64(uint32(ar.args[ar.pos]))
		hi := uint64(uint32(ar.args[ar.pos+1]))
		ar.pos += 2
		return analysis.Value{Type: wasm.I64, Bits: hi<<32 | lo}
	}
	v := analysis.Value{Type: t, Bits: ar.args[ar.pos]}
	ar.pos++
	return v
}

func (ar *argReader) values(ts []wasm.ValType) []analysis.Value {
	if len(ts) == 0 {
		return nil
	}
	vs := make([]analysis.Value, len(ts))
	for i, t := range ts {
		vs[i] = ar.value(t)
	}
	return vs
}

func (r *Runtime) referenceDispatch(spec *core.HookSpec, args []interp.Value) error {
	ar := &argReader{args: args}
	loc := analysis.Location{Func: int(ar.i32()), Instr: int(ar.i32())}

	switch spec.Kind {
	case analysis.KindNop:
		if r.nop != nil {
			r.nop(loc)
		}
	case analysis.KindUnreachable:
		if r.unreachable != nil {
			r.unreachable(loc)
		}
	case analysis.KindIf:
		if r.ifHook != nil {
			r.ifHook(loc, ar.u32() != 0)
		}
	case analysis.KindBr:
		if r.br != nil {
			label := ar.u32()
			instr := int(ar.i32())
			r.br(loc, analysis.BranchTarget{Label: label, Location: analysis.Location{Func: loc.Func, Instr: instr}})
		}
	case analysis.KindBrIf:
		if r.brIf != nil {
			label := ar.u32()
			instr := int(ar.i32())
			cond := ar.u32() != 0
			r.brIf(loc, analysis.BranchTarget{Label: label, Location: analysis.Location{Func: loc.Func, Instr: instr}}, cond)
		}
	case analysis.KindBrTable:
		return r.referenceDispatchBrTable(loc, ar)
	case analysis.KindBegin:
		if r.begin != nil {
			r.begin(loc, spec.Block)
		}
	case analysis.KindEnd:
		if r.end != nil {
			begin := int(ar.i32())
			r.end(loc, spec.Block, analysis.Location{Func: loc.Func, Instr: begin})
		}
	case analysis.KindConst:
		if r.constHook != nil {
			r.constHook(loc, ar.value(spec.Types[0]))
		}
	case analysis.KindDrop:
		if r.drop != nil {
			r.drop(loc, ar.value(spec.Types[0]))
		}
	case analysis.KindSelect:
		if r.selectHook != nil {
			cond := ar.u32() != 0
			first := ar.value(spec.Types[1])
			second := ar.value(spec.Types[2])
			r.selectHook(loc, cond, first, second)
		}
	case analysis.KindUnary:
		if r.unary != nil {
			in := ar.value(spec.Types[0])
			out := ar.value(spec.Types[1])
			r.unary(loc, spec.Op.String(), in, out)
		}
	case analysis.KindBinary:
		if r.binary != nil {
			a := ar.value(spec.Types[0])
			b := ar.value(spec.Types[1])
			res := ar.value(spec.Types[2])
			r.binary(loc, spec.Op.String(), a, b, res)
		}
	case analysis.KindLocal:
		if r.local != nil {
			idx := ar.u32()
			r.local(loc, spec.Op.String(), idx, ar.value(spec.Types[1]))
		}
	case analysis.KindGlobal:
		if r.global != nil {
			idx := ar.u32()
			r.global(loc, spec.Op.String(), idx, ar.value(spec.Types[1]))
		}
	case analysis.KindLoad:
		if r.load != nil {
			offset := ar.u32()
			addr := ar.u32()
			r.load(loc, spec.Op.String(), analysis.MemArg{Addr: addr, Offset: offset}, ar.value(spec.Types[2]))
		}
	case analysis.KindStore:
		if r.store != nil {
			offset := ar.u32()
			addr := ar.u32()
			r.store(loc, spec.Op.String(), analysis.MemArg{Addr: addr, Offset: offset}, ar.value(spec.Types[2]))
		}
	case analysis.KindMemorySize:
		if r.memSize != nil {
			r.memSize(loc, ar.u32())
		}
	case analysis.KindMemoryGrow:
		if r.memGrow != nil {
			delta := ar.u32()
			r.memGrow(loc, delta, ar.u32())
		}
	case analysis.KindCall:
		r.referenceDispatchCall(loc, spec, ar)
	case analysis.KindReturn:
		if r.returnHook != nil {
			r.returnHook(loc, ar.values(spec.Types))
		}
	case analysis.KindStart:
		if r.start != nil {
			r.start(loc)
		}
	}
	return nil
}

func (r *Runtime) referenceDispatchCall(loc analysis.Location, spec *core.HookSpec, ar *argReader) {
	if spec.Post {
		if r.callPost != nil {
			r.callPost(loc, ar.values(spec.Types))
		}
		return
	}
	if r.callPre == nil {
		return
	}
	first := ar.u32()
	args := ar.values(spec.Types[1:])
	if !spec.Indirect {
		r.callPre(loc, int(first), args, -1)
		return
	}
	target := -1
	if r.inst != nil {
		if fidx := r.inst.ResolveTable(first); fidx >= 0 {
			target = r.meta.OriginalFuncIdx(int(fidx))
		}
	}
	r.callPre(loc, target, args, int64(first))
}

func (r *Runtime) referenceDispatchBrTable(loc analysis.Location, ar *argReader) error {
	metaIdx := int(ar.i32())
	idx := ar.u32()
	if metaIdx < 0 || metaIdx >= len(r.meta.BrTables) {
		return &interp.Trap{
			Code: TrapInvalidMetadata,
			Info: fmt.Sprintf("br_table metadata index %d out of range (have %d) at %v", metaIdx, len(r.meta.BrTables), loc),
		}
	}
	info := &r.meta.BrTables[metaIdx]

	taken := info.Default
	if int(idx) < len(info.Targets) {
		taken = info.Targets[idx]
	}
	if r.end != nil {
		for _, e := range taken.Ends {
			r.end(analysis.Location{Func: loc.Func, Instr: e.End}, e.Kind,
				analysis.Location{Func: loc.Func, Instr: e.Begin})
		}
	}
	if r.brTable != nil {
		table := make([]analysis.BranchTarget, len(info.Targets))
		for i, t := range info.Targets {
			table[i] = analysis.BranchTarget{Label: t.Label, Location: analysis.Location{Func: loc.Func, Instr: t.Instr}}
		}
		deflt := analysis.BranchTarget{Label: info.Default.Label, Location: analysis.Location{Func: loc.Func, Instr: info.Default.Instr}}
		r.brTable(loc, table, deflt, idx)
	}
	return nil
}
