package runtime_test

import (
	"errors"
	"strings"
	"testing"

	"wasabi/internal/analysis"
	"wasabi/internal/builder"
	"wasabi/internal/core"
	"wasabi/internal/interp"
	wruntime "wasabi/internal/runtime"
	"wasabi/internal/wasm"
)

// nestingAnalysis checks the dynamic block-nesting invariant (paper §2.4.5):
// every end event must match the innermost open begin event, regardless of
// whether the block is left by falling through, br, br_if, br_table, or
// return.
type nestingAnalysis struct {
	stack  []analysis.Location
	errors []string
	events int
}

func (n *nestingAnalysis) Begin(loc analysis.Location, kind analysis.BlockKind) {
	n.events++
	n.stack = append(n.stack, loc)
}

func (n *nestingAnalysis) End(loc analysis.Location, kind analysis.BlockKind, begin analysis.Location) {
	n.events++
	if len(n.stack) == 0 {
		n.errors = append(n.errors, "end without open begin")
		return
	}
	top := n.stack[len(n.stack)-1]
	n.stack = n.stack[:len(n.stack)-1]
	if top != begin {
		n.errors = append(n.errors, "end/begin mismatch: got begin "+begin.String()+", open was "+top.String())
	}
}

func runWith(t *testing.T, m *wasm.Module, a any, entry string, arg int32) {
	t.Helper()
	instrumented, md, err := core.Instrument(m, core.Options{Hooks: analysis.HooksOf(a)})
	if err != nil {
		t.Fatal(err)
	}
	rt := wruntime.New(md, a)
	inst, err := interp.Instantiate(instrumented, rt.Imports())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Invoke(entry, interp.I32(arg)); err != nil {
		t.Fatalf("invoke: %v", err)
	}
}

// TestBlockNestingBalanced drives a module through every block-exit path and
// checks begin/end events stay perfectly nested.
func TestBlockNestingBalanced(t *testing.T) {
	b := builder.New()
	f := b.Func("f", builder.V(wasm.I32), builder.V(wasm.I32))
	// Nested blocks with br out of two levels.
	f.Block().Block().Loop()
	f.Get(0).I32(3).Op(wasm.OpI32GtS).BrIf(2) // conditional exit over loop+block
	f.Get(0).I32(1).Op(wasm.OpI32Eq).BrIf(1)  // another
	f.Br(1)                                   // unconditional exit of loop+block
	f.End().End().End()
	// br_table leaving a dynamic number of blocks.
	f.Block().Block().Block()
	f.Get(0).I32(3).Op(wasm.OpI32RemU)
	f.BrTable([]uint32{0, 1}, 2)
	f.End().End().End()
	// if/else arms.
	f.Get(0).I32(1).Op(wasm.OpI32And)
	f.If().Op(wasm.OpNop).Else().Op(wasm.OpNop).End()
	// Early return for some inputs.
	f.Get(0).I32(7).Op(wasm.OpI32Eq)
	f.If().I32(99).Return().End()
	f.Get(0)
	f.Done()
	m := b.Build()

	for arg := int32(0); arg < 10; arg++ {
		a := &nestingAnalysis{}
		runWith(t, m, a, "f", arg)
		for _, e := range a.errors {
			t.Errorf("arg %d: %s", arg, e)
		}
		if len(a.stack) != 0 {
			t.Errorf("arg %d: %d blocks left open (begin without end)", arg, len(a.stack))
		}
		if a.events == 0 {
			t.Errorf("arg %d: no events", arg)
		}
	}
}

// valueChecker verifies the dispatcher's value decoding: every observed
// value must match what the program actually computes, including re-joined
// i64 halves and float bit patterns.
type valueChecker struct {
	t      *testing.T
	consts []analysis.Value
	locals []analysis.Value
}

func (v *valueChecker) Const(loc analysis.Location, val analysis.Value) {
	v.consts = append(v.consts, val)
}

func (v *valueChecker) Local(loc analysis.Location, op string, idx uint32, val analysis.Value) {
	v.locals = append(v.locals, val)
}

func TestValueDecoding(t *testing.T) {
	b := builder.New()
	f := b.Func("f", builder.V(wasm.I32), builder.V(wasm.I32))
	l64 := f.Local(wasm.I64)
	lf32 := f.Local(wasm.F32)
	lf64 := f.Local(wasm.F64)
	f.I64(-2).Set(l64)                    // i64 crossing as two halves
	f.I64(0x7FFF_FFFF_1234_5678).Set(l64) // large positive i64
	f.F32(1.5).Set(lf32)
	f.F64(-2.25).Set(lf64)
	f.Get(0)
	f.Done()
	m := b.Build()

	v := &valueChecker{t: t}
	runWith(t, m, v, "f", 0)

	wantConsts := []struct {
		t wasm.ValType
		i int64
		f float64
	}{
		{wasm.I64, -2, 0},
		{wasm.I64, 0x7FFF_FFFF_1234_5678, 0},
		{wasm.F32, 0, 1.5},
		{wasm.F64, 0, -2.25},
	}
	if len(v.consts) != len(wantConsts) {
		t.Fatalf("saw %d consts: %v", len(v.consts), v.consts)
	}
	for i, w := range wantConsts {
		got := v.consts[i]
		if got.Type != w.t {
			t.Errorf("const %d type %s, want %s", i, got.Type, w.t)
			continue
		}
		switch w.t {
		case wasm.I64:
			if got.I64() != w.i {
				t.Errorf("const %d = %d, want %d", i, got.I64(), w.i)
			}
		case wasm.F32:
			if float64(got.F32()) != w.f {
				t.Errorf("const %d = %v, want %v", i, got.F32(), w.f)
			}
		case wasm.F64:
			if got.F64() != w.f {
				t.Errorf("const %d = %v, want %v", i, got.F64(), w.f)
			}
		}
	}
	// local hooks see the same values (read back from the local); the four
	// sets plus the final local.get of the parameter.
	if len(v.locals) != 5 {
		t.Fatalf("saw %d locals: %v", len(v.locals), v.locals)
	}
	if v.locals[1].I64() != 0x7FFF_FFFF_1234_5678 {
		t.Errorf("local i64 = %#x", v.locals[1].I64())
	}
}

// callOrderAnalysis checks call_pre/call_post pairing and argument decoding
// across an i64-heavy signature.
type callOrderAnalysis struct {
	depth    int
	maxDepth int
	preArgs  [][]analysis.Value
	bad      []string
}

func (c *callOrderAnalysis) CallPre(loc analysis.Location, target int, args []analysis.Value, tableIdx int64) {
	c.depth++
	if c.depth > c.maxDepth {
		c.maxDepth = c.depth
	}
	// args is a borrowed, pooled buffer: retaining it across hook calls
	// requires an explicit copy under the value-ownership contract.
	c.preArgs = append(c.preArgs, analysis.Values(args).Clone())
}

func (c *callOrderAnalysis) CallPost(loc analysis.Location, results []analysis.Value) {
	c.depth--
	if c.depth < 0 {
		c.bad = append(c.bad, "call_post without call_pre")
	}
}

func TestCallPrePostPairing(t *testing.T) {
	b := builder.New()
	callee := b.Func("callee", builder.V(wasm.I64, wasm.F64, wasm.I32), builder.V(wasm.I64))
	callee.Get(0)
	callee.Done()
	f := b.Func("f", builder.V(wasm.I32), builder.V(wasm.I32))
	f.I64(1 << 40).F64(2.5).Get(0).Call(callee.Index)
	f.Op(wasm.OpI32WrapI64)
	f.Done()
	m := b.Build()

	a := &callOrderAnalysis{}
	runWith(t, m, a, "f", 9)
	if len(a.bad) > 0 {
		t.Errorf("pairing errors: %v", a.bad)
	}
	if a.depth != 0 {
		t.Errorf("unbalanced call depth: %d", a.depth)
	}
	if len(a.preArgs) != 1 {
		t.Fatalf("expected 1 call, saw %d", len(a.preArgs))
	}
	args := a.preArgs[0]
	if len(args) != 3 || args[0].I64() != 1<<40 || args[1].F64() != 2.5 || args[2].I32() != 9 {
		t.Errorf("decoded args = %v", args)
	}
}

// TestCorruptedBrTableMetadataTraps: an out-of-range br_table metadata index
// must surface as a trap error from Invoke, not panic the host process
// (regression test: this used to be an unrecovered panic).
func TestCorruptedBrTableMetadataTraps(t *testing.T) {
	b := builder.New()
	f := b.Func("f", builder.V(wasm.I32), builder.V(wasm.I32))
	f.Block().Block()
	f.Get(0)
	f.BrTable([]uint32{0}, 1)
	f.End().End()
	f.Get(0)
	f.Done()
	m := b.Build()

	a := &nestingAnalysis{}
	instrumented, md, err := core.Instrument(m, core.Options{Hooks: analysis.AllHooks})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the metadata the way a mixed-up or truncated Metadata value
	// would look: the module still calls the br_table hook with its original
	// metadata index, which now points past the table.
	md.BrTables = nil

	rt := wruntime.New(md, a)
	inst, err := interp.Instantiate(instrumented, rt.Imports())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("corrupted metadata panicked the host: %v", r)
		}
	}()
	_, err = inst.Invoke("f", interp.I32(0))
	if err == nil {
		t.Fatal("expected a trap error for corrupted br_table metadata")
	}
	if !strings.Contains(err.Error(), wruntime.TrapInvalidMetadata) {
		t.Errorf("error %q does not mention %q", err, wruntime.TrapInvalidMetadata)
	}
	var trap *interp.Trap
	if !errors.As(err, &trap) {
		t.Errorf("error is %T, want *interp.Trap", err)
	}
	// The instance must stay usable with intact metadata semantics aside.
	if _, err := inst.Invoke("f", interp.I32(0)); err == nil {
		t.Error("second invoke should also trap, not panic")
	}
}
