package runtime

// Micro-benchmarks for the compiled trampolines: one per hook kind, hooked
// (analysis implements the callback) vs no-op-bound (it does not), plus an
// allocation guard proving that dispatch of EVERY hook is allocation-free —
// including the slice-carrying ones (call_pre/call_post/return value
// vectors, br_table's resolved-target table), which hand the analysis a
// borrowed, engine-pooled buffer under the analysis.Values ownership
// contract instead of a fresh allocation.

import (
	"fmt"
	"testing"

	"wasabi/internal/analysis"
	"wasabi/internal/core"
	"wasabi/internal/interp"
)

// counting implements every hook interface with an allocation-free body, so
// benchmark and guard numbers measure dispatch, not the analysis.
type counting struct{ n int }

func (c *counting) Nop(analysis.Location)                               { c.n++ }
func (c *counting) Unreachable(analysis.Location)                       { c.n++ }
func (c *counting) If(analysis.Location, bool)                          { c.n++ }
func (c *counting) Br(analysis.Location, analysis.BranchTarget)         { c.n++ }
func (c *counting) BrIf(analysis.Location, analysis.BranchTarget, bool) { c.n++ }
func (c *counting) BrTable(_ analysis.Location, _ []analysis.BranchTarget, _ analysis.BranchTarget, _ uint32) {
	c.n++
}
func (c *counting) Begin(analysis.Location, analysis.BlockKind)                    { c.n++ }
func (c *counting) End(analysis.Location, analysis.BlockKind, analysis.Location)   { c.n++ }
func (c *counting) Const(analysis.Location, analysis.Value)                        { c.n++ }
func (c *counting) Drop(analysis.Location, analysis.Value)                         { c.n++ }
func (c *counting) Select(analysis.Location, bool, analysis.Value, analysis.Value) { c.n++ }
func (c *counting) Unary(analysis.Location, string, analysis.Value, analysis.Value) {
	c.n++
}
func (c *counting) Binary(analysis.Location, string, analysis.Value, analysis.Value, analysis.Value) {
	c.n++
}
func (c *counting) Local(analysis.Location, string, uint32, analysis.Value)          { c.n++ }
func (c *counting) Global(analysis.Location, string, uint32, analysis.Value)         { c.n++ }
func (c *counting) Load(analysis.Location, string, analysis.MemArg, analysis.Value)  { c.n++ }
func (c *counting) Store(analysis.Location, string, analysis.MemArg, analysis.Value) { c.n++ }
func (c *counting) MemorySize(analysis.Location, uint32)                             { c.n++ }
func (c *counting) MemoryGrow(analysis.Location, uint32, uint32)                     { c.n++ }
func (c *counting) CallPre(analysis.Location, int, []analysis.Value, int64)          { c.n++ }
func (c *counting) CallPost(analysis.Location, []analysis.Value)                     { c.n++ }
func (c *counting) Return(analysis.Location, []analysis.Value)                       { c.n++ }
func (c *counting) Start(analysis.Location)                                          { c.n++ }

// sliceCarrying reports whether dispatching the hook hands the analysis a
// borrowed vector (the hooks the pooled-buffer convention exists for).
func sliceCarrying(spec *core.HookSpec) bool {
	switch spec.Kind {
	case analysis.KindBrTable:
		return true
	case analysis.KindReturn:
		return len(spec.Types) > 0
	case analysis.KindCall:
		if spec.Post {
			return len(spec.Types) > 0
		}
		return len(spec.Types) > 1 // Types[0] is the scalar target word
	}
	return false
}

// dispatchFixture instruments the parity module and compiles every
// trampoline twice: against a full analysis and against an empty one.
type dispatchFixture struct {
	md     *core.Metadata
	inst   *interp.Instance
	specs  []*core.HookSpec
	hooked []hookFn
	noop   []hookFn
	isNoop []bool
}

func newDispatchFixture(t testing.TB) *dispatchFixture {
	t.Helper()
	m := parityModule()
	instrumented, md, err := core.Instrument(m, core.Options{Hooks: analysis.AllHooks})
	if err != nil {
		t.Fatal(err)
	}
	full := New(md, &counting{})
	empty := New(md, struct{}{})
	inst, err := interp.Instantiate(instrumented, full.Imports())
	if err != nil {
		t.Fatal(err)
	}
	fx := &dispatchFixture{md: md, inst: inst}
	for i := range md.Hooks {
		spec := &md.Hooks[i]
		h, hn := full.compileTrampoline(spec, spec.Layout())
		if hn {
			t.Fatalf("hook %s: full analysis bound to no-op", spec.Name)
		}
		n, nn := empty.compileTrampoline(spec, spec.Layout())
		if !nn {
			t.Fatalf("hook %s: empty analysis not bound to no-op", spec.Name)
		}
		fx.specs = append(fx.specs, spec)
		fx.hooked = append(fx.hooked, h)
		fx.noop = append(fx.noop, n)
		fx.isNoop = append(fx.isNoop, nn)
	}
	return fx
}

// kindRep picks one representative spec per hook kind (preferring i64-free
// layouts so per-kind numbers are comparable).
func (fx *dispatchFixture) kindRep() map[analysis.HookKind]int {
	rep := map[analysis.HookKind]int{}
	for i, spec := range fx.specs {
		if _, ok := rep[spec.Kind]; !ok {
			rep[spec.Kind] = i
		}
	}
	return rep
}

func BenchmarkDispatch(b *testing.B) {
	fx := newDispatchFixture(b)
	rep := fx.kindRep()
	for k := analysis.HookKind(0); k < analysis.HookKind(analysis.NumKinds); k++ {
		i, ok := rep[k]
		if !ok {
			continue
		}
		spec := fx.specs[i]
		args := synthArgs(spec, spec.Layout().Arity)
		b.Run(fmt.Sprintf("%v/hooked", k), func(b *testing.B) {
			b.ReportAllocs()
			fn := fx.hooked[i]
			for n := 0; n < b.N; n++ {
				if err := fn(fx.inst, args); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("%v/noop", k), func(b *testing.B) {
			b.ReportAllocs()
			fn := fx.noop[i]
			for n := 0; n < b.N; n++ {
				if err := fn(fx.inst, args); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestDispatchZeroAllocs is the allocation guard: every hook — including the
// slice-carrying call/return and br_table hooks, which now fill borrowed,
// engine-pooled vectors — must dispatch with 0 allocs/op, hooked or not.
// This pins down the zero-copy convention and the borrowed-buffer convention
// end to end: any accidental escape of the argument window, re-introduced
// per-call decoding buffer, or pool-defeating slice-header boxing fails the
// guard.
func TestDispatchZeroAllocs(t *testing.T) {
	fx := newDispatchFixture(t)
	sawSliceCarrying := false
	for i, spec := range fx.specs {
		sawSliceCarrying = sawSliceCarrying || sliceCarrying(spec)
		args := synthArgs(spec, spec.Layout().Arity)
		for name, fn := range map[string]hookFn{"hooked": fx.hooked[i], "noop": fx.noop[i]} {
			fn := fn
			allocs := testing.AllocsPerRun(200, func() {
				if err := fn(fx.inst, args); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("hook %s (%s): %.1f allocs/op, want 0", spec.Name, name, allocs)
			}
		}
	}
	if !sawSliceCarrying {
		t.Error("fixture exercised no slice-carrying hook; the borrowed-buffer guard is vacuous")
	}
}
