package runtime

// Emitter is the transport of the event-stream surface: a small ring of
// fixed-capacity batch buffers between one producer (the session goroutine
// running instrumented code, appending packed records through the compiled
// encoders in encoder.go) and one consumer (the analysis goroutine pulling
// whole batches). Buffers cycle — producer fills, consumer borrows, buffer
// returns — so steady-state emission allocates nothing.
//
// Flush points: a batch is handed to the consumer when it fills, when a
// top-level call into an instance completes (the session installs Flush as
// the instance's top-return hook), and on explicit Flush/Close.
//
// Backpressure when the consumer lags is a policy choice: Block makes the
// producer wait (lossless — the instrumented program stalls until the
// consumer catches up), Drop discards the full batch and counts it
// (lossy — the program never stalls). Block requires a concurrently running
// consumer; a single-goroutine run-then-drain loop must use Drop.

import (
	"sync"
	"sync/atomic"

	"wasabi/internal/analysis"
	"wasabi/internal/failpoint"
)

// Backpressure selects what the producer does when every batch buffer is
// full because the consumer lags.
type Backpressure int

const (
	// Block stalls event production until the consumer frees a batch.
	// Lossless; requires the consumer to run concurrently.
	Block Backpressure = iota
	// Drop discards the batch being flushed when no buffer is free and keeps
	// running, counting the dropped events (Emitter.Dropped). Lossy; never
	// stalls the instrumented program.
	Drop
)

// emitterDepth is the number of filled batches that may be in flight between
// producer and consumer. Total buffers = emitterDepth + 2 (one being filled
// by the producer, one borrowed by the consumer): after any successful
// hand-off the free ring is provably non-empty, so the producer only ever
// blocks waiting for the consumer, never on its own bookkeeping.
const emitterDepth = 2

// Emitter is the producer/consumer pair of one event stream.
type Emitter struct {
	cur       []analysis.Event // batch being filled (producer-owned)
	full      chan []analysis.Event
	free      chan []analysis.Event
	batchSize int

	drop    bool
	closed  bool
	dropped atomic.Uint64

	// Interruption support: stopc is closed by Interrupt (any goroutine) to
	// unwedge a Block-mode producer waiting in Flush — the batch it carried
	// is dropped and counted, and the producer returns to guest code, which
	// traps at its next containment guard. intrMu serializes Interrupt
	// against ClearInterrupt's re-arm; stopped dedupes the close.
	intrMu  sync.Mutex
	stopc   chan struct{}
	stopped bool

	// Terminal host-side fault (fault injection today; any future emitter
	// failure). Set once by fail, read by Err from any goroutine — the
	// session's flush hook promotes it to the stream's terminal error.
	failMu  sync.Mutex
	failErr error

	prev []analysis.Event // batch last handed out by Next (consumer-owned)
}

// NewEmitter creates an emitter whose batches hold batchSize records.
func NewEmitter(batchSize int, mode Backpressure) *Emitter {
	if batchSize < 1 {
		batchSize = 1
	}
	em := &Emitter{
		full:      make(chan []analysis.Event, emitterDepth),
		free:      make(chan []analysis.Event, emitterDepth+2),
		drop:      mode == Drop,
		stopc:     make(chan struct{}),
		batchSize: batchSize,
	}
	em.cur = make([]analysis.Event, 0, batchSize)
	for i := 0; i < emitterDepth+1; i++ {
		em.free <- make([]analysis.Event, 0, batchSize)
	}
	return em
}

// emit appends one record, flushing first when the batch is full.
func (em *Emitter) emit(e analysis.Event) {
	if err := failpoint.Inject(failpoint.EmitterEmit); err != nil {
		em.fail(err)
		return
	}
	if len(em.cur) == cap(em.cur) {
		em.Flush()
	}
	em.cur = append(em.cur, e)
}

// reserve makes room for an n-record group (a primary record plus its
// continuations), so the group never straddles a batch boundary: emit's
// batch-full check cannot fire mid-group once len+n <= cap holds. A group
// larger than the batch capacity itself replaces the current buffer with a
// grown one (the undersized buffer it displaces leaves the ring, keeping
// the buffer count — and therefore the backpressure accounting — intact);
// the grown buffer then cycles like any other, so this is a rare one-time
// allocation, not a per-event one.
func (em *Emitter) reserve(n int) {
	if len(em.cur)+n <= cap(em.cur) {
		return
	}
	em.Flush()
	if n > cap(em.cur) {
		em.cur = make([]analysis.Event, 0, n)
	}
}

// Flush hands the current batch to the consumer. In Block mode it waits for
// a slot; in Drop mode it discards the batch (counting its events) when the
// consumer is behind. Safe to call with an empty batch (no-op), and after
// Close (events are counted as dropped).
func (em *Emitter) Flush() {
	if len(em.cur) == 0 {
		return
	}
	if em.closed {
		em.dropped.Add(uint64(len(em.cur)))
		em.cur = em.cur[:0]
		return
	}
	if err := failpoint.Inject(failpoint.EmitterFlush); err != nil {
		em.fail(err)
		return
	}
	if em.drop {
		select {
		case em.full <- em.cur:
			em.refill() // non-blocking by the buffer-count invariant
		default:
			em.dropped.Add(uint64(len(em.cur)))
			em.cur = em.cur[:0]
		}
		return
	}
	// Block mode. Prefer delivery when a slot is already free, then wait on
	// either the consumer or an interrupt: a deadline expiring while the
	// producer is wedged here must unblock it (the guest then traps at its
	// next containment guard), or the interruption could never take effect.
	select {
	case em.full <- em.cur:
		em.refill()
		return
	default:
	}
	select {
	case em.full <- em.cur:
		em.refill()
	case <-em.stopc:
		em.dropped.Add(uint64(len(em.cur)))
		em.cur = em.cur[:0]
	}
}

// refill takes a free buffer for cur after a successful hand-off. The
// buffer-count invariant keeps the free ring non-empty here as long as every
// consumer returns what it borrows (Next's recycle, Exchange's swap), so the
// fallback never fires on a well-behaved stream; it exists so a consumer
// that fails to return a buffer degrades into an allocation instead of a
// producer stall — which Drop mode promises never to do, and which Block
// mode must at least abandon on Interrupt.
func (em *Emitter) refill() {
	select {
	case em.cur = <-em.free:
		return
	default:
	}
	if em.drop {
		em.cur = make([]analysis.Event, 0, em.batchSize)
		return
	}
	select {
	case em.cur = <-em.free:
	case <-em.stopc:
		em.cur = make([]analysis.Event, 0, em.batchSize)
	}
}

// Interrupt unwedges a Block-mode producer blocked in Flush (dropping the
// batch it carried) and makes further Block-mode flushes non-blocking until
// ClearInterrupt. The one Emitter method safe to call from any goroutine;
// the session layer pairs it with Instance.Interrupt so a cancelled
// invocation cannot stay wedged on a lagging consumer. Idempotent.
func (em *Emitter) Interrupt() {
	em.intrMu.Lock()
	if !em.stopped {
		em.stopped = true
		close(em.stopc)
	}
	em.intrMu.Unlock()
}

// ClearInterrupt re-arms Block-mode backpressure after an Interrupt.
// Producer-side, like Flush: call it only between invocations.
func (em *Emitter) ClearInterrupt() {
	em.intrMu.Lock()
	if em.stopped {
		em.stopped = false
		em.stopc = make(chan struct{})
	}
	em.intrMu.Unlock()
}

// Close flushes the pending batch and ends the stream: after the in-flight
// batches are drained, Next reports ok == false. Close is producer-side
// like Flush: call it only when no instrumented code is running. Idempotent.
func (em *Emitter) Close() {
	if em.closed {
		return
	}
	em.Flush()
	if em.closed {
		// Flush hit a fault and already ended the stream (see fail).
		return
	}
	em.closed = true
	close(em.full)
}

// fail ends the stream with a terminal host-side error: the pending batch
// is discarded and counted, the consumer side is woken (Next drains and
// reports done), and the error is recorded for Err. Producer-side, like
// Flush; first error wins, later faults only count their dropped events.
func (em *Emitter) fail(err error) {
	em.failMu.Lock()
	if em.failErr == nil {
		em.failErr = err
	}
	em.failMu.Unlock()
	em.dropped.Add(uint64(len(em.cur)))
	em.cur = em.cur[:0]
	if !em.closed {
		em.closed = true
		close(em.full)
	}
}

// Err returns the terminal host-side fault recorded by fail, or nil. Safe
// from any goroutine.
func (em *Emitter) Err() error {
	em.failMu.Lock()
	defer em.failMu.Unlock()
	return em.failErr
}

// CloseDiscard ends the stream WITHOUT waiting for the consumer: the
// pending batch and any undelivered in-flight batches are discarded and
// counted as dropped. Unlike Close (whose final flush waits for a buffer in
// Block mode) it never blocks, which makes it the teardown path — Session
// .Close uses it so closing a session cannot hang on a consumer that
// stopped draining. Producer-side, idempotent, and safe after Close.
func (em *Emitter) CloseDiscard() {
	if !em.closed {
		em.dropped.Add(uint64(len(em.cur)))
		em.cur = em.cur[:0]
		em.closed = true
		close(em.full)
	}
	for {
		select {
		case batch, ok := <-em.full:
			if !ok {
				return
			}
			em.dropped.Add(uint64(len(batch)))
		default:
			return
		}
	}
}

// Dropped returns the total number of events discarded: under Drop
// backpressure, when emitting after Close, and by CloseDiscard's teardown.
func (em *Emitter) Dropped() uint64 { return em.dropped.Load() }

// Next returns the next filled batch, blocking until one is flushed or the
// emitter is closed and drained (ok == false). The returned slice is
// borrowed: it is recycled on the following Next call.
func (em *Emitter) Next() ([]analysis.Event, bool) {
	if em.prev != nil {
		em.free <- em.prev[:0]
		em.prev = nil
	}
	batch, ok := <-em.full
	if !ok {
		return nil, false
	}
	em.prev = batch
	return batch, true
}

// Exchange is the retain variant of Next, for consumers that broadcast
// batches instead of processing them in place (internal/fabric): the
// returned batch is RETAINED — the emitter will not recycle it — and the
// caller compensates by handing a replacement buffer into the free ring in
// the same call, keeping the ring population (and with it the backpressure
// accounting and the producer's 0-alloc steady state) intact. The spare is
// pushed before the receive, so the ring never dips below its invariant
// count; pass a fresh buffer of BatchSize capacity on the first call and a
// fully released retained buffer afterwards. A nil spare is accepted (the
// ring runs one buffer short until the next call). Consumer-side, same
// single-goroutine contract as Next; do not mix Exchange and Next consumers.
func (em *Emitter) Exchange(spare []analysis.Event) ([]analysis.Event, bool) {
	if spare != nil {
		select {
		case em.free <- spare[:0]: //borrowcheck:ignore -- feeding a released buffer back into the ring is the recycle contract
		default: // ring already at capacity; let the spare go to the GC
		}
	}
	batch, ok := <-em.full
	if !ok {
		return nil, false
	}
	return batch, true
}

// BatchSize returns the record capacity batches are created with, so an
// Exchange consumer can size the replacement buffers it feeds back.
func (em *Emitter) BatchSize() int { return em.batchSize }

// Release drops the producer-side buffers so a closed stream does not pin
// its batch memory (Session.Close calls it, after Close). Producer-side: it
// leaves the consumer's in-flight batch alone — a consumer still draining
// keeps working, and its buffers are collected with the emitter.
func (em *Emitter) Release() {
	em.cur = nil
	for {
		select {
		case <-em.free:
		default:
			return
		}
	}
}
