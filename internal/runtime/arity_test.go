package runtime

// Regression test for the argReader bounds-check hole: the old generic
// dispatcher indexed the lowered argument vector without checking its
// length, so a corrupted or mismatched instrumented module — or an embedder
// invoking a hook import directly with the wrong arguments — panicked the
// host process with index-out-of-range. Trampolines compute the expected
// arity once at bind time and trap (TrapInvalidMetadata) on any mismatch.

import (
	"strings"
	"testing"

	"wasabi/internal/analysis"
	"wasabi/internal/core"
	"wasabi/internal/interp"
)

func TestHookArityMismatchTrapsNotPanics(t *testing.T) {
	m := parityModule()
	instrumented, md, err := core.Instrument(m, core.Options{Hooks: analysis.AllHooks})
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	rt := New(md, rec)
	inst, err := interp.Instantiate(instrumented, rt.Imports())
	if err != nil {
		t.Fatal(err)
	}

	for i := range md.Hooks {
		spec := &md.Hooks[i]
		lay := spec.Layout()
		tramp, _ := rt.compileTrampoline(spec, lay)
		full := synthArgs(spec, lay.Arity)
		for _, bad := range [][]interp.Value{
			nil,
			full[:lay.Arity-1],
			append(append([]interp.Value(nil), full...), 0),
		} {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("hook %s: %d args panicked the host: %v", spec.Name, len(bad), r)
					}
				}()
				err := tramp(inst, bad)
				if err == nil {
					t.Errorf("hook %s: %d lowered args (want %d) must trap", spec.Name, len(bad), lay.Arity)
					return
				}
				trap, ok := err.(*interp.Trap)
				if !ok {
					t.Errorf("hook %s: error is %T, want *interp.Trap", spec.Name, err)
					return
				}
				if trap.Code != TrapInvalidMetadata {
					t.Errorf("hook %s: trap code %q, want %q", spec.Name, trap.Code, TrapInvalidMetadata)
				}
			}()
		}
	}
}

// TestHookImportInvokedDirectlyTraps drives the mismatch end-to-end: an
// embedder calling a hook import through the public invoke path with too few
// arguments must get an error back, not a crash.
func TestHookImportInvokedDirectlyTraps(t *testing.T) {
	m := parityModule()
	instrumented, md, err := core.Instrument(m, core.Options{Hooks: analysis.AllHooks})
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	rt := New(md, rec)
	inst, err := interp.Instantiate(instrumented, rt.Imports())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("direct hook invocation panicked the host: %v", r)
		}
	}()
	// Hook imports sit at [NumImportedFuncs, NumImportedFuncs+NumHooks) in
	// the instrumented index space, in metadata order.
	for k := range md.Hooks {
		idx := uint32(md.NumImportedFuncs + k)
		_, err := inst.InvokeIdx(idx) // zero args; every hook wants >= 2
		if err == nil {
			t.Fatalf("hook %s: 0-arg direct invocation must error", md.Hooks[k].Name)
		}
		if !strings.Contains(err.Error(), TrapInvalidMetadata) {
			t.Errorf("hook %s: error %q does not mention %q", md.Hooks[k].Name, err, TrapInvalidMetadata)
		}
	}
}
