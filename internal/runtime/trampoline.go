package runtime

// Per-spec compiled trampolines: the hot half of the runtime. Where the
// previous dispatcher re-discovered everything on every hook call — switching
// on HookSpec.Kind, re-decoding the lowered argument vector through an
// argReader, rebuilding the opcode name — compileTrampoline does all of that
// once, at Imports() time, and returns a closure that already knows its
// callback, its interned op name, its lowered argument layout (including the
// i64 lo/hi re-join offsets), and its exact arity.
//
// Trampolines use the interpreter's zero-copy host-call convention
// (interp.HostFunc.Fast): args is a read-only window aliasing the caller's
// operand stack. Trampolines therefore never retain args; everything they
// hand to the analysis is either a scalar or a borrowed, engine-pooled
// vector (the call/return value vectors and br_table's resolved-target
// table) that is valid only for the duration of the callback — analyses use
// analysis.Values.Clone to retain one. Filling a pooled buffer instead of
// allocating keeps slice-carrying hook dispatch at 0 allocs/op.
//
// Hooks whose callbacks the analysis does not implement compile to a shared
// no-op and are reported as such, which lets the interpreter's compile pass
// elide the call and its argument lowering entirely (dead-hook elision).

import (
	"fmt"

	"wasabi/internal/analysis"
	"wasabi/internal/core"
	"wasabi/internal/interp"
	"wasabi/internal/wasm"
)

// hookFn is the compiled fast-path entry of one low-level hook; it matches
// interp.HostFunc.Fast.
type hookFn = func(inst *interp.Instance, args []interp.Value) error

// nopHook is the shared trampoline of every hook the analysis ignores.
func nopHook(*interp.Instance, []interp.Value) error { return nil }

// arityTrap reports a hook call whose lowered argument vector does not match
// the spec — possible only when an embedder corrupts or mixes up Metadata,
// or invokes a hook import directly with the wrong arguments. It surfaces as
// a trap, never as an index-out-of-range panic of the host process.
func arityTrap(name string, want, got int) error {
	return &interp.Trap{
		Code: TrapInvalidMetadata,
		Info: fmt.Sprintf("hook %s called with %d lowered args, want %d", name, got, want),
	}
}

// hookLoc decodes the two location words every hook call starts with.
func hookLoc(args []interp.Value) analysis.Location {
	return analysis.Location{Func: int(int32(uint32(args[0]))), Instr: int(int32(uint32(args[1])))}
}

// valueAt decodes one logical value at the precomputed lowered offset,
// re-joining i64 (lo, hi) halves.
func valueAt(args []interp.Value, off int, t wasm.ValType) analysis.Value {
	if t == wasm.I64 {
		lo := uint64(uint32(args[off]))
		hi := uint64(uint32(args[off+1]))
		return analysis.Value{Type: wasm.I64, Bits: hi<<32 | lo}
	}
	return analysis.Value{Type: t, Bits: args[off]}
}

// fillValues decodes a value vector with precomputed offsets into a borrowed
// buffer (len(vs) == len(ts)).
func fillValues(vs []analysis.Value, args []interp.Value, offs []int, ts []wasm.ValType) {
	for i, t := range ts {
		vs[i] = valueAt(args, offs[i], t)
	}
}

// locOnly builds the trampoline shape shared by the hooks whose only
// payload is the location (nop, unreachable, start).
func locOnly(cb func(analysis.Location), name string, arity int) hookFn {
	return func(_ *interp.Instance, args []interp.Value) error {
		if len(args) != arity {
			return arityTrap(name, arity, len(args))
		}
		cb(hookLoc(args))
		return nil
	}
}

// compileTrampoline builds the specialized dispatch closure for one hook
// spec against its precomputed lowered-arg layout (shared across sessions).
// noop reports that the analysis implements no callback the hook could
// reach — decided from the capability bits computed in NewBound — so the
// interpreter may elide its call sites outright; the returned fn is still
// always callable (the shared no-op).
func (r *Runtime) compileTrampoline(spec *core.HookSpec, lay core.ArgLayout) (fn hookFn, noop bool) {
	arity := lay.Arity
	name := spec.Name

	switch spec.Kind {
	case analysis.KindNop:
		if !r.caps.Has(analysis.CapNop) {
			return nopHook, true
		}
		return locOnly(r.nop, name, arity), false

	case analysis.KindUnreachable:
		if !r.caps.Has(analysis.CapUnreachable) {
			return nopHook, true
		}
		return locOnly(r.unreachable, name, arity), false

	case analysis.KindStart:
		if !r.caps.Has(analysis.CapStart) {
			return nopHook, true
		}
		return locOnly(r.start, name, arity), false

	case analysis.KindBlockProbe:
		cb := r.blockCov
		if !r.caps.Has(analysis.CapBlockCoverage) {
			return nopHook, true
		}
		return func(_ *interp.Instance, args []interp.Value) error {
			if len(args) != arity {
				return arityTrap(name, arity, len(args))
			}
			cb(hookLoc(args), int(int32(uint32(args[2]))))
			return nil
		}, false

	case analysis.KindIf:
		cb := r.ifHook
		if !r.caps.Has(analysis.CapIf) {
			return nopHook, true
		}
		return func(_ *interp.Instance, args []interp.Value) error {
			if len(args) != arity {
				return arityTrap(name, arity, len(args))
			}
			cb(hookLoc(args), uint32(args[2]) != 0)
			return nil
		}, false

	case analysis.KindBr:
		cb := r.br
		if !r.caps.Has(analysis.CapBr) {
			return nopHook, true
		}
		return func(_ *interp.Instance, args []interp.Value) error {
			if len(args) != arity {
				return arityTrap(name, arity, len(args))
			}
			loc := hookLoc(args)
			cb(loc, analysis.BranchTarget{
				Label:    uint32(args[2]),
				Location: analysis.Location{Func: loc.Func, Instr: int(int32(uint32(args[3])))},
			})
			return nil
		}, false

	case analysis.KindBrIf:
		cb := r.brIf
		if !r.caps.Has(analysis.CapBrIf) {
			return nopHook, true
		}
		return func(_ *interp.Instance, args []interp.Value) error {
			if len(args) != arity {
				return arityTrap(name, arity, len(args))
			}
			loc := hookLoc(args)
			cb(loc, analysis.BranchTarget{
				Label:    uint32(args[2]),
				Location: analysis.Location{Func: loc.Func, Instr: int(int32(uint32(args[3])))},
			}, uint32(args[4]) != 0)
			return nil
		}, false

	case analysis.KindBrTable:
		// The br_table hook is live when either the br_table callback or the
		// end callback is implemented: the runtime half of the dynamic
		// block-nesting mechanism (paper §2.4.5) replays the end hooks of the
		// blocks left by the taken branch.
		if !r.caps.HasAny(analysis.CapBrTable | analysis.CapEnd) {
			return nopHook, true
		}
		return r.brTableTrampoline(name, arity), false

	case analysis.KindBegin:
		cb := r.begin
		if !r.caps.Has(analysis.CapBegin) {
			return nopHook, true
		}
		block := spec.Block
		return func(_ *interp.Instance, args []interp.Value) error {
			if len(args) != arity {
				return arityTrap(name, arity, len(args))
			}
			cb(hookLoc(args), block)
			return nil
		}, false

	case analysis.KindEnd:
		cb := r.end
		if !r.caps.Has(analysis.CapEnd) {
			return nopHook, true
		}
		block := spec.Block
		return func(_ *interp.Instance, args []interp.Value) error {
			if len(args) != arity {
				return arityTrap(name, arity, len(args))
			}
			loc := hookLoc(args)
			cb(loc, block, analysis.Location{Func: loc.Func, Instr: int(int32(uint32(args[2])))})
			return nil
		}, false

	case analysis.KindConst:
		cb := r.constHook
		if !r.caps.Has(analysis.CapConst) {
			return nopHook, true
		}
		t := spec.Types[0]
		return func(_ *interp.Instance, args []interp.Value) error {
			if len(args) != arity {
				return arityTrap(name, arity, len(args))
			}
			cb(hookLoc(args), valueAt(args, 2, t))
			return nil
		}, false

	case analysis.KindDrop:
		cb := r.drop
		if !r.caps.Has(analysis.CapDrop) {
			return nopHook, true
		}
		t := spec.Types[0]
		return func(_ *interp.Instance, args []interp.Value) error {
			if len(args) != arity {
				return arityTrap(name, arity, len(args))
			}
			cb(hookLoc(args), valueAt(args, 2, t))
			return nil
		}, false

	case analysis.KindSelect:
		cb := r.selectHook
		if !r.caps.Has(analysis.CapSelect) {
			return nopHook, true
		}
		t := spec.Types[1]
		o1, o2 := lay.Offs[1], lay.Offs[2]
		return func(_ *interp.Instance, args []interp.Value) error {
			if len(args) != arity {
				return arityTrap(name, arity, len(args))
			}
			cb(hookLoc(args), uint32(args[2]) != 0, valueAt(args, o1, t), valueAt(args, o2, t))
			return nil
		}, false

	case analysis.KindUnary:
		cb := r.unary
		if !r.caps.Has(analysis.CapUnary) {
			return nopHook, true
		}
		op := spec.OpName()
		tIn, tOut := spec.Types[0], spec.Types[1]
		oOut := lay.Offs[1]
		return func(_ *interp.Instance, args []interp.Value) error {
			if len(args) != arity {
				return arityTrap(name, arity, len(args))
			}
			cb(hookLoc(args), op, valueAt(args, 2, tIn), valueAt(args, oOut, tOut))
			return nil
		}, false

	case analysis.KindBinary:
		cb := r.binary
		if !r.caps.Has(analysis.CapBinary) {
			return nopHook, true
		}
		op := spec.OpName()
		t0, t1, t2 := spec.Types[0], spec.Types[1], spec.Types[2]
		o1, o2 := lay.Offs[1], lay.Offs[2]
		return func(_ *interp.Instance, args []interp.Value) error {
			if len(args) != arity {
				return arityTrap(name, arity, len(args))
			}
			cb(hookLoc(args), op, valueAt(args, 2, t0), valueAt(args, o1, t1), valueAt(args, o2, t2))
			return nil
		}, false

	case analysis.KindLocal:
		cb := r.local
		if !r.caps.Has(analysis.CapLocal) {
			return nopHook, true
		}
		op := spec.OpName()
		t := spec.Types[1]
		return func(_ *interp.Instance, args []interp.Value) error {
			if len(args) != arity {
				return arityTrap(name, arity, len(args))
			}
			cb(hookLoc(args), op, uint32(args[2]), valueAt(args, 3, t))
			return nil
		}, false

	case analysis.KindGlobal:
		cb := r.global
		if !r.caps.Has(analysis.CapGlobal) {
			return nopHook, true
		}
		op := spec.OpName()
		t := spec.Types[1]
		return func(_ *interp.Instance, args []interp.Value) error {
			if len(args) != arity {
				return arityTrap(name, arity, len(args))
			}
			cb(hookLoc(args), op, uint32(args[2]), valueAt(args, 3, t))
			return nil
		}, false

	case analysis.KindLoad:
		cb := r.load
		if !r.caps.Has(analysis.CapLoad) {
			return nopHook, true
		}
		op := spec.OpName()
		t := spec.Types[2]
		return func(_ *interp.Instance, args []interp.Value) error {
			if len(args) != arity {
				return arityTrap(name, arity, len(args))
			}
			cb(hookLoc(args), op,
				analysis.MemArg{Addr: uint32(args[3]), Offset: uint32(args[2])},
				valueAt(args, 4, t))
			return nil
		}, false

	case analysis.KindStore:
		cb := r.store
		if !r.caps.Has(analysis.CapStore) {
			return nopHook, true
		}
		op := spec.OpName()
		t := spec.Types[2]
		return func(_ *interp.Instance, args []interp.Value) error {
			if len(args) != arity {
				return arityTrap(name, arity, len(args))
			}
			cb(hookLoc(args), op,
				analysis.MemArg{Addr: uint32(args[3]), Offset: uint32(args[2])},
				valueAt(args, 4, t))
			return nil
		}, false

	case analysis.KindMemorySize:
		cb := r.memSize
		if !r.caps.Has(analysis.CapMemorySize) {
			return nopHook, true
		}
		return func(_ *interp.Instance, args []interp.Value) error {
			if len(args) != arity {
				return arityTrap(name, arity, len(args))
			}
			cb(hookLoc(args), uint32(args[2]))
			return nil
		}, false

	case analysis.KindMemoryGrow:
		cb := r.memGrow
		if !r.caps.Has(analysis.CapMemoryGrow) {
			return nopHook, true
		}
		return func(_ *interp.Instance, args []interp.Value) error {
			if len(args) != arity {
				return arityTrap(name, arity, len(args))
			}
			cb(hookLoc(args), uint32(args[2]), uint32(args[3]))
			return nil
		}, false

	case analysis.KindCall:
		return r.callTrampoline(spec, lay)

	case analysis.KindReturn:
		cb := r.returnHook
		if !r.caps.Has(analysis.CapReturn) {
			return nopHook, true
		}
		return r.valuesTrampoline(name, arity, lay.Offs, spec.Types, cb), false
	}

	// Unknown kind (newer metadata than this runtime): bind to the no-op so
	// the module still runs; nothing could be dispatched anyway.
	return nopHook, true
}

// borrowValues is the single implementation of the borrowed-buffer checkout
// protocol every slice-carrying trampoline goes through: decode the value
// vector into a pooled buffer, hand it to dispatch for the duration of the
// call, put it back. n == 0 dispatches nil without touching the pool. The
// dispatch closure must not escape (that would re-introduce a per-call
// allocation — the zero-alloc guard test watches this).
func borrowValues(pool *ValuePool, n int, args []interp.Value, offs []int, ts []wasm.ValType, dispatch func(vs []analysis.Value)) {
	if n == 0 {
		dispatch(nil)
		return
	}
	buf := pool.getValues(n)
	fillValues(buf.vs, args, offs, ts)
	dispatch(buf.vs)
	pool.putValues(buf)
}

// valuesTrampoline builds the shared shape of the two hooks whose payload is
// one borrowed value vector (return, call_post).
func (r *Runtime) valuesTrampoline(name string, arity int, offs []int, ts []wasm.ValType, cb func(analysis.Location, []analysis.Value)) hookFn {
	pool, n := r.shared.Pool, len(ts)
	return func(_ *interp.Instance, args []interp.Value) error {
		if len(args) != arity {
			return arityTrap(name, arity, len(args))
		}
		borrowValues(pool, n, args, offs, ts, func(vs []analysis.Value) {
			cb(hookLoc(args), vs)
		})
		return nil
	}
}

// callTrampoline specializes the three call-hook shapes: call_post, direct
// call_pre, and indirect call_pre (with table resolution, paper §2.3).
func (r *Runtime) callTrampoline(spec *core.HookSpec, lay core.ArgLayout) (hookFn, bool) {
	arity := lay.Arity
	name := spec.Name
	if spec.Post {
		cb := r.callPost
		if !r.caps.Has(analysis.CapCallPost) {
			return nopHook, true
		}
		return r.valuesTrampoline(name, arity, lay.Offs, spec.Types, cb), false
	}
	cb := r.callPre
	if !r.caps.Has(analysis.CapCallPre) {
		return nopHook, true
	}
	// Types[0] is the i32 target (direct) or table index (indirect); the
	// actual callee arguments follow.
	offs, ts := lay.Offs[1:], spec.Types[1:]
	pool, n := r.shared.Pool, len(ts)
	if !spec.Indirect {
		return func(_ *interp.Instance, args []interp.Value) error {
			if len(args) != arity {
				return arityTrap(name, arity, len(args))
			}
			borrowValues(pool, n, args, offs, ts, func(vs []analysis.Value) {
				cb(hookLoc(args), int(int32(uint32(args[2]))), vs, -1)
			})
			return nil
		}, false
	}
	meta := r.meta
	return func(inst *interp.Instance, args []interp.Value) error {
		if len(args) != arity {
			return arityTrap(name, arity, len(args))
		}
		tblIdx := uint32(args[2])
		// Resolve the runtime table index to the actually called function
		// and map it back to the original index space. The instance making
		// the call is preferred over the explicitly bound one, so hooks that
		// fire during the start function resolve correctly without
		// BindInstance having run.
		ri := inst
		if ri == nil {
			ri = r.inst
		}
		target := -1
		if ri != nil {
			if fidx := ri.ResolveTable(tblIdx); fidx >= 0 {
				target = meta.OriginalFuncIdx(int(fidx))
			}
		}
		borrowValues(pool, n, args, offs, ts, func(vs []analysis.Value) {
			cb(hookLoc(args), target, vs, int64(tblIdx))
		})
		return nil
	}, false
}

// brTableTrampoline handles the one hook whose dispatch consults
// instrumentation metadata at run time: which blocks a br_table leaves is
// only known once the branch index is (paper §2.4.5).
func (r *Runtime) brTableTrampoline(name string, arity int) hookFn {
	endCb := r.end
	tableCb := r.brTable
	meta := r.meta
	pool := r.shared.Pool
	return func(_ *interp.Instance, args []interp.Value) error {
		if len(args) != arity {
			return arityTrap(name, arity, len(args))
		}
		loc := hookLoc(args)
		metaIdx := int(int32(uint32(args[2])))
		idx := uint32(args[3])
		if metaIdx < 0 || metaIdx >= len(meta.BrTables) {
			return &interp.Trap{
				Code: TrapInvalidMetadata,
				Info: fmt.Sprintf("br_table metadata index %d out of range (have %d) at %v", metaIdx, len(meta.BrTables), loc),
			}
		}
		info := &meta.BrTables[metaIdx]

		taken := info.Default
		if int(idx) < len(info.Targets) {
			taken = info.Targets[idx]
		}
		// Fire the end hooks of all blocks left by the taken branch.
		if endCb != nil {
			for _, e := range taken.Ends {
				endCb(analysis.Location{Func: loc.Func, Instr: e.End}, e.Kind,
					analysis.Location{Func: loc.Func, Instr: e.Begin})
			}
		}
		if tableCb != nil {
			buf := pool.getTargets(len(info.Targets))
			for i, t := range info.Targets {
				buf.ts[i] = analysis.BranchTarget{Label: t.Label, Location: analysis.Location{Func: loc.Func, Instr: t.Instr}}
			}
			deflt := analysis.BranchTarget{Label: info.Default.Label, Location: analysis.Location{Func: loc.Func, Instr: info.Default.Instr}}
			tableCb(loc, buf.ts, deflt, idx)
			pool.putTargets(buf)
		}
		return nil
	}
}
