package runtime

// Borrowed-buffer machinery for the slice-carrying hooks (call_pre args,
// call_post/return results, br_table's resolved-target table). Instead of
// allocating a fresh vector per hook call — the last per-call allocation the
// PR 3 trampolines left behind — the trampolines fill a pooled buffer, hand
// it to the analysis for the duration of the callback, and put it back. The
// explicit ownership contract (analysis.Values: borrowed, Clone to retain)
// is what makes the reuse sound.

import (
	"sync"

	"wasabi/internal/analysis"
	"wasabi/internal/failpoint"
)

// ValuePool is the engine-level pool of borrowed hook-value buffers. One pool
// is shared by every session of an engine: buffers are taken and returned
// strictly within one hook dispatch, so sessions on different goroutines
// never see each other's vectors. The zero value is ready to use.
type ValuePool struct {
	vals sync.Pool // *valueBuf
	brs  sync.Pool // *brTargetBuf
}

// valueBuf wraps the slice so pool Put/Get moves one pointer instead of
// boxing a slice header (which would itself allocate per call).
type valueBuf struct{ vs []analysis.Value }

type brTargetBuf struct{ ts []analysis.BranchTarget }

func (p *ValuePool) getValues(n int) *valueBuf {
	if failpoint.Enabled(failpoint.ValuePoolGet) {
		// This seam is inside hook dispatch, which has no error return: the
		// injected fault panics and is contained into a typed *RuntimeFault
		// by the invocation root (Instance.call), like any host-side panic.
		panic(&failpoint.InjectedError{Point: failpoint.ValuePoolGet})
	}
	b, _ := p.vals.Get().(*valueBuf)
	if b == nil {
		b = &valueBuf{}
	}
	if cap(b.vs) < n {
		b.vs = make([]analysis.Value, n)
	}
	b.vs = b.vs[:n]
	return b
}

func (p *ValuePool) putValues(b *valueBuf) { p.vals.Put(b) }

func (p *ValuePool) getTargets(n int) *brTargetBuf {
	b, _ := p.brs.Get().(*brTargetBuf)
	if b == nil {
		b = &brTargetBuf{}
	}
	if cap(b.ts) < n {
		b.ts = make([]analysis.BranchTarget, n)
	}
	b.ts = b.ts[:n]
	return b
}

func (p *ValuePool) putTargets(b *brTargetBuf) { p.brs.Put(b) }

// defaultPool backs runtimes constructed without an engine (the deprecated
// one-shot API and direct New callers).
var defaultPool ValuePool
