package runtime

// Unit parity + allocation guard for the record encoders (the stream
// siblings of the trampolines): every generated HookSpec is dispatched
// through the callback trampoline (bound to the callback Tracer) and the
// record encoder (whose records are decoded by the StreamTracer) on
// identical lowered argument vectors, and the formatted event lines must
// match exactly — the strongest available statement that the packed record
// format carries everything the callbacks carry. The allocation guard is
// TestDispatchZeroAllocs's twin for the stream path.

import (
	"testing"
	"time"

	"wasabi/internal/analyses"
	"wasabi/internal/analysis"
	"wasabi/internal/core"
	"wasabi/internal/interp"
)

// encoderFixture compiles every encoder against an emitter, next to a
// trampoline set bound to a callback tracer on the same metadata.
type encoderFixture struct {
	md      *core.Metadata
	inst    *interp.Instance
	em      *Emitter
	tracer  *analyses.Tracer
	specs   []*core.HookSpec
	tramps  []hookFn
	encs    []emitFn
	encNoop []bool
}

func newEncoderFixture(t testing.TB, batchSize int, mode Backpressure) *encoderFixture {
	t.Helper()
	m := parityModule()
	instrumented, md, err := core.Instrument(m, core.Options{Hooks: analysis.AllHooks})
	if err != nil {
		t.Fatal(err)
	}
	tracer := analyses.NewTracer()
	rtT := New(md, tracer)

	em := NewEmitter(batchSize, mode)
	rtE := New(md, struct{}{})
	rtE.SetEmitter(em, analysis.AllCaps)

	inst, err := interp.Instantiate(instrumented, rtT.Imports())
	if err != nil {
		t.Fatal(err)
	}
	rtE.BindInstance(inst)

	fx := &encoderFixture{md: md, inst: inst, em: em, tracer: tracer}
	for i := range md.Hooks {
		spec := &md.Hooks[i]
		lay := spec.Layout()
		tramp, tn := rtT.compileTrampoline(spec, lay)
		if tn {
			t.Fatalf("hook %s: tracer bound to no-op trampoline", spec.Name)
		}
		enc, en := rtE.compileEncoder(spec, lay, i)
		if en {
			t.Fatalf("hook %s: AllCaps stream bound to no-op encoder", spec.Name)
		}
		fx.specs = append(fx.specs, spec)
		fx.tramps = append(fx.tramps, tramp)
		fx.encs = append(fx.encs, enc)
		fx.encNoop = append(fx.encNoop, en)
	}
	return fx
}

func TestEncoderParityWithTrampolines(t *testing.T) {
	fx := newEncoderFixture(t, 1<<14, Block)
	for i, spec := range fx.specs {
		args := synthArgs(spec, spec.Layout().Arity)
		if err := fx.tramps[i](fx.inst, args); err != nil {
			t.Fatalf("hook %s: trampoline: %v", spec.Name, err)
		}
		fx.encs[i](fx.inst, args)
	}
	fx.em.Close()

	st := analyses.NewStreamTracer()
	st.SetEventTable(fx.md.EventTable())
	for {
		batch, ok := fx.em.Next()
		if !ok {
			break
		}
		st.Events(batch)
	}

	// The callback tracer formats location-first; both tracers share the
	// format strings, so compare line for line.
	if len(st.Lines) != len(fx.tracer.Events) {
		t.Fatalf("stream decoded %d events, callbacks dispatched %d", len(st.Lines), len(fx.tracer.Events))
	}
	for i := range st.Lines {
		if st.Lines[i] != fx.tracer.Events[i] {
			t.Errorf("event %d:\n  callback: %s\n  stream:   %s", i, fx.tracer.Events[i], st.Lines[i])
		}
	}
	if len(st.Lines) == 0 {
		t.Fatal("parity suite produced no events")
	}
}

// TestEncoderDeadHookElision pins that hooks outside the stream capability
// set compile to elidable no-ops, exactly like dead callback hooks.
func TestEncoderDeadHookElision(t *testing.T) {
	m := parityModule()
	_, md, err := core.Instrument(m, core.Options{Hooks: analysis.AllHooks})
	if err != nil {
		t.Fatal(err)
	}
	rt := New(md, struct{}{})
	rt.SetEmitter(NewEmitter(16, Drop), analysis.CapBinary)
	for i := range md.Hooks {
		spec := &md.Hooks[i]
		_, noop := rt.compileEncoder(spec, spec.Layout(), i)
		if want := spec.Kind != analysis.KindBinary; noop != want {
			t.Errorf("hook %s: noop = %v, want %v under CapBinary-only stream", spec.Name, noop, want)
		}
	}
}

// TestStreamEmitZeroAllocs is the stream twin of TestDispatchZeroAllocs:
// steady-state record emission — including batch hand-off and Drop-mode
// recycling — must not allocate, for every hook kind.
func TestStreamEmitZeroAllocs(t *testing.T) {
	fx := newEncoderFixture(t, 256, Drop) // small batches: exercise flush/drop inside the measurement
	for i, spec := range fx.specs {
		args := synthArgs(spec, spec.Layout().Arity)
		enc := fx.encs[i]
		allocs := testing.AllocsPerRun(200, func() {
			enc(fx.inst, args)
		})
		if allocs != 0 {
			t.Errorf("hook %s: %.1f allocs/op, want 0", spec.Name, allocs)
		}
	}
	if fx.em.Dropped() == 0 {
		t.Error("no batch was dropped; the guard did not exercise the flush path")
	}
}

// TestEmitterBlockDelivery checks the lossless hand-off: a concurrent
// consumer sees every emitted record, in order, across many batch cycles.
func TestEmitterBlockDelivery(t *testing.T) {
	em := NewEmitter(64, Block)
	const n = 10_000
	got := make([]uint32, 0, n)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			batch, ok := em.Next()
			if !ok {
				return
			}
			for i := range batch {
				got = append(got, batch[i].Aux)
			}
		}
	}()
	for i := 0; i < n; i++ {
		em.emit(analysis.Event{Aux: uint32(i)})
	}
	em.Close()
	<-done
	if len(got) != n {
		t.Fatalf("consumer saw %d events, want %d", len(got), n)
	}
	for i, v := range got {
		if v != uint32(i) {
			t.Fatalf("event %d out of order: %d", i, v)
		}
	}
	if em.Dropped() != 0 {
		t.Errorf("Block mode dropped %d events", em.Dropped())
	}
}

// TestEmitterCloseDiscardNeverBlocks pins the teardown path: with the full
// ring at capacity, a non-empty current batch, and no consumer, CloseDiscard
// must return (Close's lossless final flush would wait forever here) and
// account every event as dropped.
func TestEmitterCloseDiscardNeverBlocks(t *testing.T) {
	em := NewEmitter(4, Block)
	const n = 11 // two full batches into the ring + 3 pending in cur
	for i := 0; i < n; i++ {
		em.emit(analysis.Event{Aux: uint32(i)})
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		em.CloseDiscard()
		em.CloseDiscard() // idempotent
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("CloseDiscard blocked")
	}
	if em.Dropped() != n {
		t.Errorf("dropped %d events, want all %d", em.Dropped(), n)
	}
	if _, ok := em.Next(); ok {
		t.Error("Next delivered a batch after CloseDiscard")
	}
}

// TestEmitterDropBackpressure checks the lossy mode: with no consumer the
// producer never stalls, the ring's batches survive, and the overflow is
// counted.
func TestEmitterDropBackpressure(t *testing.T) {
	em := NewEmitter(8, Drop)
	const n = 1000
	for i := 0; i < n; i++ {
		em.emit(analysis.Event{Aux: uint32(i)})
	}
	em.Close()
	var got int
	for {
		batch, ok := em.Next()
		if !ok {
			break
		}
		got += len(batch)
	}
	if got == 0 {
		t.Error("drop mode delivered nothing; the in-flight batches should survive")
	}
	if em.Dropped() == 0 {
		t.Error("drop mode with no consumer dropped nothing")
	}
	if uint64(got)+em.Dropped() != n {
		t.Errorf("delivered %d + dropped %d != emitted %d", got, em.Dropped(), n)
	}
}
