package core

// BlockSpan is one CFG basic block of a function body, as a closed range of
// ORIGINAL instruction indices. Spans of one function are disjoint, sorted by
// Start, and non-empty (Start <= End).
type BlockSpan struct {
	Start int
	End   int
}

// Plan is the static instrumentation plan computed by internal/static and
// consumed by Instrument: it elides hooks the analysis provably cannot need.
// Both slices are indexed by DEFINED function index (parallel to
// Module.Funcs); a nil Plan means "no elision" (instrument everything the
// hook set selects).
type Plan struct {
	// SkipFunc marks functions that are statically unreachable from the
	// module's exports and start function: their bodies are copied through
	// uninstrumented (no hook can ever fire in them). nil means skip none.
	SkipFunc []bool

	// Blocks lists, per function, the CFG basic blocks that receive one
	// block_probe hook each (placed immediately before the block's first
	// instruction). Only meaningful when Options.Hooks selects
	// analysis.KindBlockProbe; nil (or a nil entry) places no probes.
	Blocks [][]BlockSpan
}

// skip reports whether the plan elides all instrumentation of the defined
// function at definedIdx.
func (p *Plan) skip(definedIdx int) bool {
	return p != nil && definedIdx < len(p.SkipFunc) && p.SkipFunc[definedIdx]
}

// blocks returns the probe spans of the defined function at definedIdx.
func (p *Plan) blocks(definedIdx int) []BlockSpan {
	if p == nil || definedIdx >= len(p.Blocks) {
		return nil
	}
	return p.Blocks[definedIdx]
}
