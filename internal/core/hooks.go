package core

import (
	"sort"
	"sync"

	"wasabi/internal/analysis"
	"wasabi/internal/wasm"
)

// hookRegistry performs on-demand monomorphization (paper §2.4.3): low-level
// hooks are generated lazily, only for the instructions and type
// combinations actually present in the binary. Function bodies are
// instrumented in parallel (paper §3), so the registry is the single
// synchronization point, guarded by a readers/writer lock: the common case
// (hook already generated) takes only the read lock; the slow path upgrades
// by releasing and re-checking under the write lock.
type hookRegistry struct {
	base uint32 // placeholder index of the first hook (original NumFuncs)

	mu     sync.RWMutex
	byName map[string]uint32 // hook name → ordinal k (placeholder = base + k)
	specs  []HookSpec
}

func newHookRegistry(base uint32) *hookRegistry {
	return &hookRegistry{base: base, byName: make(map[string]uint32)}
}

// get returns the placeholder function index for the hook described by
// spec, generating the hook on first use.
func (r *hookRegistry) get(spec HookSpec) uint32 {
	r.mu.RLock()
	k, ok := r.byName[spec.Name]
	r.mu.RUnlock()
	if ok {
		return r.base + k
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if k, ok := r.byName[spec.Name]; ok {
		return r.base + k
	}
	k = uint32(len(r.specs))
	r.byName[spec.Name] = k
	r.specs = append(r.specs, spec)
	return r.base + k
}

// finalize returns the hooks sorted by name together with a permutation
// mapping the ordinal k used in placeholders to the sorted position. Sorting
// makes the instrumented binary deterministic regardless of the scheduling
// of the parallel instrumentation goroutines.
func (r *hookRegistry) finalize() (specs []HookSpec, perm []uint32) {
	specs = append([]HookSpec(nil), r.specs...)
	order := make([]int, len(specs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return specs[order[a]].Name < specs[order[b]].Name })
	perm = make([]uint32, len(specs))
	sorted := make([]HookSpec, len(specs))
	for newPos, oldK := range order {
		perm[oldK] = uint32(newPos)
		sorted[newPos] = specs[oldK]
	}
	return sorted, perm
}

// Spec constructors, one per hook family. Names are canonical and double as
// import field names and monomorphization keys.

func specSimple(name string, kind analysis.HookKind, payload ...wasm.ValType) HookSpec {
	return HookSpec{Name: name, Kind: kind, Types: payload}
}

func specConst(t wasm.ValType) HookSpec {
	return HookSpec{Name: "const_" + t.String(), Kind: analysis.KindConst, Types: []wasm.ValType{t}}
}

func specDrop(t wasm.ValType) HookSpec {
	return HookSpec{Name: "drop_" + t.String(), Kind: analysis.KindDrop, Types: []wasm.ValType{t}}
}

func specSelect(t wasm.ValType) HookSpec {
	return HookSpec{
		Name: "select_" + t.String(), Kind: analysis.KindSelect,
		Types: []wasm.ValType{wasm.I32, t, t}, // cond, first, second
	}
}

func specUnary(op wasm.Opcode) HookSpec {
	in, out, _ := wasm.NumericSig(op)
	return HookSpec{
		Name: "unary_" + op.String(), Kind: analysis.KindUnary, Op: op,
		Types: []wasm.ValType{in[0], out[0]},
	}
}

func specBinary(op wasm.Opcode) HookSpec {
	in, out, _ := wasm.NumericSig(op)
	return HookSpec{
		Name: "binary_" + op.String(), Kind: analysis.KindBinary, Op: op,
		Types: []wasm.ValType{in[0], in[1], out[0]},
	}
}

func specLoad(op wasm.Opcode) HookSpec {
	t, _ := op.LoadStoreType()
	return HookSpec{
		Name: "load_" + op.String(), Kind: analysis.KindLoad, Op: op,
		Types: []wasm.ValType{wasm.I32, wasm.I32, t}, // offset, addr, value
	}
}

func specStore(op wasm.Opcode) HookSpec {
	t, _ := op.LoadStoreType()
	return HookSpec{
		Name: "store_" + op.String(), Kind: analysis.KindStore, Op: op,
		Types: []wasm.ValType{wasm.I32, wasm.I32, t},
	}
}

func specLocal(op wasm.Opcode, t wasm.ValType) HookSpec {
	return HookSpec{
		Name: op.String() + "_" + t.String(), Kind: analysis.KindLocal, Op: op,
		Types: []wasm.ValType{wasm.I32, t}, // index, value
	}
}

func specGlobal(op wasm.Opcode, t wasm.ValType) HookSpec {
	return HookSpec{
		Name: op.String() + "_" + t.String(), Kind: analysis.KindGlobal, Op: op,
		Types: []wasm.ValType{wasm.I32, t},
	}
}

func specCallPre(sig wasm.FuncType, indirect bool) HookSpec {
	name := "call_pre"
	payload := []wasm.ValType{wasm.I32} // target func idx (direct) or table idx (indirect)
	if indirect {
		name = "call_pre_indirect"
	}
	payload = append(payload, sig.Params...)
	return HookSpec{
		Name: name + typeSuffix(sig.Params), Kind: analysis.KindCall,
		Types: payload, Indirect: indirect,
	}
}

func specCallPost(results []wasm.ValType) HookSpec {
	return HookSpec{
		Name: "call_post" + typeSuffix(results), Kind: analysis.KindCall,
		Types: results, Post: true,
	}
}

func specReturn(results []wasm.ValType) HookSpec {
	return HookSpec{
		Name: "return" + typeSuffix(results), Kind: analysis.KindReturn,
		Types: results,
	}
}

func specIf() HookSpec {
	return specSimple("if", analysis.KindIf, wasm.I32)
}

func specBr() HookSpec {
	// payload: raw label, resolved target instruction index
	return specSimple("br", analysis.KindBr, wasm.I32, wasm.I32)
}

func specBrIf() HookSpec {
	// payload: raw label, resolved target, condition
	return specSimple("br_if", analysis.KindBrIf, wasm.I32, wasm.I32, wasm.I32)
}

func specBrTable() HookSpec {
	// payload: metadata table index, runtime branch index
	return specSimple("br_table", analysis.KindBrTable, wasm.I32, wasm.I32)
}

func specBegin(kind analysis.BlockKind) HookSpec {
	return HookSpec{Name: "begin_" + string(kind), Kind: analysis.KindBegin, Block: kind}
}

func specEnd(kind analysis.BlockKind) HookSpec {
	// payload: instruction index of the matching begin
	return HookSpec{
		Name: "end_" + string(kind), Kind: analysis.KindEnd, Block: kind,
		Types: []wasm.ValType{wasm.I32},
	}
}

func specMemorySize() HookSpec {
	return specSimple("memory_size", analysis.KindMemorySize, wasm.I32)
}

func specMemoryGrow() HookSpec {
	return specSimple("memory_grow", analysis.KindMemoryGrow, wasm.I32, wasm.I32)
}

func specBlockProbe() HookSpec {
	// payload: instruction index of the block's last original instruction
	return specSimple("block_probe", analysis.KindBlockProbe, wasm.I32)
}

func specNop() HookSpec         { return specSimple("nop", analysis.KindNop) }
func specUnreachable() HookSpec { return specSimple("unreachable", analysis.KindUnreachable) }
func specStart() HookSpec       { return specSimple("start", analysis.KindStart) }
