package core

import (
	"fmt"
	"sync"

	"wasabi/internal/analysis"
	"wasabi/internal/validate"
	"wasabi/internal/wasm"
)

// ctrlEntry is one frame of the instrumenter's abstract control stack
// (paper §2.4.4, Figure 6): the block kind and the locations of the block's
// begin and matching end instruction in the ORIGINAL body.
type ctrlEntry struct {
	kind  analysis.BlockKind
	begin int // original instruction index; -1 for the function frame
	end   int
	live  bool // whether the block entry itself is reachable
}

// scratchAlloc hands out per-function scratch locals for duplicating stack
// operands ("freshly generated locals" in Table 3). Locals are reused across
// instructions but never within one: release() must be called after each
// original instruction. The per-type state lives in small arrays indexed by
// the dense ValType index (vtIdx) so the hot take/release path touches no
// maps.
type scratchAlloc struct {
	base   int // first scratch index = params + original locals
	types  []wasm.ValType
	inUse  [numValTypes]int
	byType [numValTypes][]uint32
}

// numValTypes is the number of distinct wasm value types (i32, i64, f32, f64).
const numValTypes = 4

// vtIdx maps a ValType (0x7F..0x7C) to a dense index 0..3.
func vtIdx(t wasm.ValType) int { return int(wasm.I32 - t) }

// reset prepares the allocator for the next function, keeping the capacity
// of the per-type index pools.
func (a *scratchAlloc) reset(base int) {
	a.base = base
	a.types = a.types[:0]
	for i := range a.byType {
		a.inUse[i] = 0
		a.byType[i] = a.byType[i][:0]
	}
}

func (a *scratchAlloc) take(t wasm.ValType) uint32 {
	ti := vtIdx(t)
	n := a.inUse[ti]
	a.inUse[ti] = n + 1
	pool := a.byType[ti]
	if n < len(pool) {
		return pool[n]
	}
	idx := uint32(a.base + len(a.types))
	a.types = append(a.types, t)
	a.byType[ti] = append(pool, idx)
	return idx
}

func (a *scratchAlloc) release() {
	for i := range a.inUse {
		a.inUse[i] = 0
	}
}

// funcInstrumenter instruments function bodies. One instrumenter is reused
// for many functions of the same instrumentation run (and pooled across runs
// via instrPool): all its buffers — the output instruction buffer, the
// abstract control stack, the scratch-local allocator, the type tracker, and
// the control-match tables — reach a steady-state capacity after the first
// few functions, so the per-function hot path allocates only the exact-size
// copies that escape into the instrumented module.
type funcInstrumenter struct {
	mod     *wasm.Module
	hooks   *hookRegistry
	set     analysis.HookSet
	funcIdx int    // original function index
	typeIdx uint32 // type index of the current function
	sig     wasm.FuncType
	body    []wasm.Instr
	brPool  []uint32 // current function's br_table target pool

	tr      *validate.Tracker
	ctrl    []ctrlEntry
	scratch scratchAlloc
	out     []wasm.Instr

	// Reusable scratch tables for controlMatches and saved-operand locals.
	matchEnd  []int32
	matchElse []int32
	ctrlPCs   []int
	savedBuf  []uint32

	// callSites records the output-body index of every emitted OpCall
	// instruction (original calls and hook calls alike), so the final
	// index-remap pass touches exactly those instructions instead of
	// rescanning every body.
	callSites []uint32

	// cache resolves hook indices by cheap integer keys so only the first
	// use of a hook per run constructs a HookSpec and hits the shared
	// (locked) registry. Valid for the lifetime of one Instrument run.
	cache hookIdxCache

	isStart     bool
	brTableBase int
	brTables    []BrTableInfo
	probeBlocks []BlockSpan // CFG blocks receiving one block_probe each (static plan)
}

// instrPool recycles instrumenters across Instrument runs, so repeated
// instrumentation (the Table 5 benchmarks, server-style workloads) reuses
// steady-state buffers instead of re-growing them from scratch.
var instrPool = sync.Pool{New: func() any { return new(funcInstrumenter) }}

// acquireInstrumenter prepares a pooled instrumenter for one run.
func acquireInstrumenter(mod *wasm.Module, set analysis.HookSet, hooks *hookRegistry) *funcInstrumenter {
	fi := instrPool.Get().(*funcInstrumenter)
	fi.mod = mod
	fi.hooks = hooks
	fi.set = set
	fi.cache.reset(len(mod.Types)) // hook indices are per-run; never leak across runs
	return fi
}

// releaseInstrumenter drops the per-run references — everything that could
// keep the instrumented module reachable, including the tracker's module
// pointer and the signature slices — and returns the instrumenter (with its
// grown buffers) to the pool.
func releaseInstrumenter(fi *funcInstrumenter) {
	fi.mod = nil
	fi.hooks = nil
	fi.sig = wasm.FuncType{}
	fi.body = nil
	fi.brPool = nil
	fi.brTables = nil
	if fi.tr != nil {
		fi.tr.Clear()
	}
	instrPool.Put(fi)
}

// instrumentFunc rewrites the body of the defined function at definedIdx.
// It returns the new body, the scratch locals to append, the br_table
// metadata records (whose indices start at brTableBase), and the indices of
// the emitted OpCall instructions (for the restricted remap pass). The
// returned slices are exact-size copies owned by the caller; the
// instrumenter's internal buffers are reused for the next function.
func (fi *funcInstrumenter) instrumentFunc(definedIdx int, isStart bool, brTableBase int, plan *Plan) (body []wasm.Instr, extraLocals []wasm.ValType, brTables []BrTableInfo, callSites []uint32, err error) {
	f := &fi.mod.Funcs[definedIdx]
	if plan.skip(definedIdx) {
		return copyUninstrumented(f.Body)
	}
	fi.funcIdx = fi.mod.NumImportedFuncs() + definedIdx
	fi.typeIdx = f.TypeIdx
	fi.sig = fi.mod.Types[f.TypeIdx]
	fi.body = f.Body
	fi.brPool = f.BrTargets
	if fi.tr == nil {
		fi.tr = validate.NewTracker(fi.mod, fi.sig, f.Locals, f.BrTargets)
	} else {
		fi.tr.Reset(fi.mod, fi.sig, f.Locals, f.BrTargets)
	}
	fi.scratch.reset(len(fi.sig.Params) + len(f.Locals))
	if fi.out == nil {
		// First use: size for the typical full-instrumentation expansion so
		// the very first function needs at most a couple of regrows; after
		// that the buffer is reused at its steady-state capacity.
		fi.out = make([]wasm.Instr, 0, len(f.Body)*expansionFactor(fi.set))
	} else {
		fi.out = fi.out[:0]
	}
	fi.ctrl = fi.ctrl[:0]
	fi.isStart = isStart
	fi.brTableBase = brTableBase
	fi.brTables = nil
	fi.callSites = fi.callSites[:0]
	fi.probeBlocks = nil
	if fi.set.Has(analysis.KindBlockProbe) {
		fi.probeBlocks = plan.blocks(definedIdx)
	}

	if err := fi.run(); err != nil {
		return nil, nil, nil, nil, fmt.Errorf("core: func %d: %w", fi.funcIdx, err)
	}
	body = make([]wasm.Instr, len(fi.out))
	copy(body, fi.out)
	if n := len(fi.scratch.types); n > 0 {
		extraLocals = make([]wasm.ValType, n)
		copy(extraLocals, fi.scratch.types)
	}
	if n := len(fi.callSites); n > 0 {
		callSites = make([]uint32, n)
		copy(callSites, fi.callSites)
	}
	return body, extraLocals, fi.brTables, callSites, nil
}

// expansionFactor estimates how many output instructions one input
// instruction expands to under the given hook set. It is derived from the
// emit sequences in instr(): the dominating expanders are the operand
// save/restore sequences of call (~26 including i64 lowering), binary (~14),
// and load/store (~11) hooks. The estimate only sizes the very first output
// buffer of a pooled instrumenter, so a coarse per-set bound is enough.
func expansionFactor(set analysis.HookSet) int {
	f := 1
	if set.Has(analysis.KindCall) {
		f = 12
	}
	for _, k := range [...]analysis.HookKind{analysis.KindBinary, analysis.KindLoad, analysis.KindStore} {
		if set.Has(k) {
			f += 4
		}
	}
	for _, k := range [...]analysis.HookKind{analysis.KindLocal, analysis.KindConst, analysis.KindBegin, analysis.KindEnd} {
		if set.Has(k) {
			f += 2
		}
	}
	return f
}

// savedScratch returns a reusable []uint32 of length n for saved-operand
// local indices. Only one savedScratch slice is live at a time.
func (fi *funcInstrumenter) savedScratch(n int) []uint32 {
	if cap(fi.savedBuf) < n {
		fi.savedBuf = make([]uint32, n, n*2+8)
	}
	return fi.savedBuf[:n]
}

func (fi *funcInstrumenter) has(k analysis.HookKind) bool { return fi.set.Has(k) }

func (fi *funcInstrumenter) emit(ins ...wasm.Instr) { fi.out = append(fi.out, ins...) }

// emitCall appends one OpCall instruction, recording its body index so the
// final remap pass visits only actual call sites.
func (fi *funcInstrumenter) emitCall(in wasm.Instr) {
	fi.callSites = append(fi.callSites, uint32(len(fi.out)))
	fi.out = append(fi.out, in)
}

// emitLoc pushes the two i32 location arguments every hook receives.
func (fi *funcInstrumenter) emitLoc(instrIdx int) {
	fi.emit(wasm.I32Const(int32(fi.funcIdx)), wasm.I32Const(int32(instrIdx)))
}

// emitLowerLocal pushes the value held in a local in the host-boundary
// representation: i64 is split into (lo, hi) i32 halves (paper §2.4.6,
// Table 3 row 6).
func (fi *funcInstrumenter) emitLowerLocal(t wasm.ValType, local uint32) {
	if t != wasm.I64 {
		fi.emit(wasm.LocalGet(local))
		return
	}
	fi.emit(
		wasm.LocalGet(local),
		wasm.Op1(wasm.OpI32WrapI64), // lo
		wasm.LocalGet(local),
		wasm.I64ConstInstr(32),
		wasm.Op1(wasm.OpI64ShrU),
		wasm.Op1(wasm.OpI32WrapI64), // hi
	)
}

// emitLowerGlobal is emitLowerLocal for a global variable.
func (fi *funcInstrumenter) emitLowerGlobal(t wasm.ValType, global uint32) {
	if t != wasm.I64 {
		fi.emit(wasm.GlobalGet(global))
		return
	}
	fi.emit(
		wasm.GlobalGet(global),
		wasm.Op1(wasm.OpI32WrapI64),
		wasm.GlobalGet(global),
		wasm.I64ConstInstr(32),
		wasm.Op1(wasm.OpI64ShrU),
		wasm.Op1(wasm.OpI32WrapI64),
	)
}

// emitLowerConst pushes the value of a constant instruction in lowered form;
// for i64 constants the two halves are emitted directly as i32 constants.
func (fi *funcInstrumenter) emitLowerConst(in wasm.Instr) {
	if in.Op == wasm.OpI64Const {
		v := in.Bits
		fi.emit(wasm.I32Const(int32(uint32(v))), wasm.I32Const(int32(uint32(v>>32))))
		return
	}
	fi.emit(in)
}

// frame returns the control frame n levels from the top (0 = innermost).
func (fi *funcInstrumenter) frame(n int) *ctrlEntry { return &fi.ctrl[len(fi.ctrl)-1-n] }

// resolveTarget computes the absolute instruction index a branch with the
// given relative label jumps to (paper §2.4.4): for loops the first
// instruction of the loop body (a backward jump), otherwise the instruction
// after the block's matching end (a forward jump).
func (fi *funcInstrumenter) resolveTarget(label uint32) (int, error) {
	if int(label) >= len(fi.ctrl) {
		return 0, fmt.Errorf("branch label %d exceeds control depth %d", label, len(fi.ctrl))
	}
	fr := fi.frame(int(label))
	switch fr.kind {
	case analysis.BlockLoop:
		return fr.begin + 1, nil
	case analysis.BlockFunction:
		return fr.end, nil // the implicit function end (i.e. return)
	default:
		return fr.end + 1, nil
	}
}

// endInfos collects the EndInfo records for the blocks traversed by a
// branch with the given label: every frame from the innermost through the
// target, both inclusive (paper §2.4.5). The returned slice escapes into
// br_table metadata, so it is allocated exactly.
func (fi *funcInstrumenter) endInfos(label uint32) []EndInfo {
	infos := make([]EndInfo, 0, label+1)
	for k := 0; k <= int(label); k++ {
		fr := fi.frame(k)
		infos = append(infos, EndInfo{Kind: fr.kind, End: fr.end, Begin: fr.begin})
	}
	return infos
}

// emitEndHooksFor emits inline calls to the end hooks of all traversed
// blocks for a branch with the given label, walking the control stack
// directly (no intermediate slice).
func (fi *funcInstrumenter) emitEndHooksFor(label uint32) {
	for k := 0; k <= int(label); k++ {
		fr := fi.frame(k)
		fi.emitEndHook(EndInfo{Kind: fr.kind, End: fr.end, Begin: fr.begin})
	}
}

func (fi *funcInstrumenter) emitEndHook(info EndInfo) {
	fi.emitLoc(info.End)
	fi.emit(wasm.I32Const(int32(info.Begin)))
	fi.emitEndHookCall(info.Kind)
}

func (fi *funcInstrumenter) run() error {
	matchEnd, matchElse, ctrlPCs, err := controlMatchesInto(fi.body, fi.matchEnd, fi.matchElse, fi.ctrlPCs)
	if err != nil {
		return err
	}
	fi.matchEnd, fi.matchElse, fi.ctrlPCs = matchEnd, matchElse, ctrlPCs
	fi.ctrl = append(fi.ctrl, ctrlEntry{
		kind: analysis.BlockFunction, begin: -1, end: len(fi.body) - 1, live: true,
	})

	// Module start function: the start hook fires before anything else.
	if fi.isStart && fi.has(analysis.KindStart) {
		fi.emitLoc(-1)
		fi.emitFixedHook(fhStart)
	}
	if fi.has(analysis.KindBegin) {
		fi.emitLoc(-1)
		fi.emitBeginHook(analysis.BlockFunction)
	}

	nb := 0
	for i, in := range fi.body {
		reachable := !fi.tr.UnreachableNow()
		// A block_probe sits immediately before its block's first original
		// instruction: structured control flow guarantees branches only land
		// at block leaders, so the probe fires exactly when the block is
		// entered (including loop backedges). Statically dead leaders are
		// skipped — they can never execute.
		for nb < len(fi.probeBlocks) && fi.probeBlocks[nb].Start == i {
			if reachable {
				fi.emitLoc(i)
				fi.emit(wasm.I32Const(int32(fi.probeBlocks[nb].End)))
				fi.emitFixedHook(fhBlockProbe)
			}
			nb++
		}
		if err := fi.instr(i, in, reachable, matchEnd, matchElse); err != nil {
			return fmt.Errorf("instr %d (%s): %w", i, in.Op, err)
		}
		if err := fi.tr.Step(in); err != nil {
			return fmt.Errorf("instr %d (%s): type tracking: %w", i, in.Op, err)
		}
		fi.scratch.release()
	}
	if !fi.tr.Done() {
		return fmt.Errorf("body ended with %d open blocks", fi.tr.Depth())
	}
	return nil
}

// instr emits the instrumented sequence for the original instruction at
// index i. The original instruction is always preserved; hook calls and
// operand duplication are interleaved around it (Table 3 in the paper).
func (fi *funcInstrumenter) instr(i int, in wasm.Instr, reachable bool, matchEnd, matchElse []int32) error {
	op := in.Op
	switch op {
	case wasm.OpNop:
		fi.emit(in)
		if reachable && fi.has(analysis.KindNop) {
			fi.emitLoc(i)
			fi.emitFixedHook(fhNop)
		}

	case wasm.OpUnreachable:
		// The hook must run before the trap.
		if reachable && fi.has(analysis.KindUnreachable) {
			fi.emitLoc(i)
			fi.emitFixedHook(fhUnreachable)
		}
		fi.emit(in)

	case wasm.OpBlock, wasm.OpLoop:
		kind := analysis.BlockBlock
		if op == wasm.OpLoop {
			kind = analysis.BlockLoop
		}
		fi.ctrl = append(fi.ctrl, ctrlEntry{kind: kind, begin: i, end: int(matchEnd[i]), live: reachable})
		fi.emit(in)
		if reachable && fi.has(analysis.KindBegin) {
			// For loops this call sits at the loop header and therefore
			// fires once per iteration, as the paper specifies.
			fi.emitLoc(i)
			fi.emitBeginHook(kind)
		}

	case wasm.OpIf:
		if reachable && fi.has(analysis.KindIf) {
			c := fi.scratch.take(wasm.I32)
			fi.emit(wasm.LocalTee(c))
			fi.emitLoc(i)
			fi.emit(wasm.LocalGet(c))
			fi.emitFixedHook(fhIf)
		}
		fi.ctrl = append(fi.ctrl, ctrlEntry{kind: analysis.BlockIf, begin: i, end: int(matchEnd[i]), live: reachable})
		fi.emit(in)
		if reachable && fi.has(analysis.KindBegin) {
			fi.emitLoc(i)
			fi.emitBeginHook(analysis.BlockIf)
		}

	case wasm.OpElse:
		fr := fi.frame(0)
		// The end hook of the then-branch: reached only by falling through
		// to the else, so guard on reachability at this point.
		if reachable && fi.has(analysis.KindEnd) {
			fi.emitEndHook(EndInfo{Kind: analysis.BlockIf, End: i, Begin: fr.begin})
		}
		live := fr.live
		*fr = ctrlEntry{kind: analysis.BlockElse, begin: i, end: fr.end, live: live}
		fi.emit(in)
		if live && fi.has(analysis.KindBegin) {
			fi.emitLoc(i)
			fi.emitBeginHook(analysis.BlockElse)
		}

	case wasm.OpEnd:
		fr := fi.frame(0)
		if len(fi.ctrl) == 1 {
			// Function-level end: implicit return, then the function end hook.
			if reachable && fi.has(analysis.KindReturn) {
				fi.emitReturnHook(i, true)
			}
			if reachable && fi.has(analysis.KindEnd) {
				fi.emitEndHook(EndInfo{Kind: analysis.BlockFunction, End: i, Begin: -1})
			}
		} else if reachable && fi.has(analysis.KindEnd) {
			fi.emitEndHook(EndInfo{Kind: fr.kind, End: i, Begin: fr.begin})
		}
		fi.ctrl = fi.ctrl[:len(fi.ctrl)-1]
		fi.emit(in)

	case wasm.OpBr:
		if reachable {
			if fi.has(analysis.KindBr) {
				target, err := fi.resolveTarget(in.Idx)
				if err != nil {
					return err
				}
				fi.emitLoc(i)
				fi.emit(wasm.I32Const(int32(in.Idx)), wasm.I32Const(int32(target)))
				fi.emitFixedHook(fhBr)
			}
			if fi.has(analysis.KindEnd) {
				fi.emitEndHooksFor(in.Idx)
			}
		}
		fi.emit(in)

	case wasm.OpBrIf:
		if reachable && (fi.has(analysis.KindBrIf) || fi.has(analysis.KindEnd)) {
			target, err := fi.resolveTarget(in.Idx)
			if err != nil {
				return err
			}
			c := fi.scratch.take(wasm.I32)
			fi.emit(wasm.LocalSet(c))
			if fi.has(analysis.KindBrIf) {
				fi.emitLoc(i)
				fi.emit(wasm.I32Const(int32(in.Idx)), wasm.I32Const(int32(target)), wasm.LocalGet(c))
				fi.emitFixedHook(fhBrIf)
			}
			if fi.has(analysis.KindEnd) {
				// End hooks fire only if the branch is taken (paper §2.4.5).
				fi.emit(wasm.LocalGet(c), wasm.IfInstr(wasm.BlockEmpty))
				fi.emitEndHooksFor(in.Idx)
				fi.emit(wasm.End())
			}
			fi.emit(wasm.LocalGet(c))
		}
		fi.emit(in)

	case wasm.OpBrTable:
		if reachable && (fi.has(analysis.KindBrTable) || fi.has(analysis.KindEnd)) {
			info := BrTableInfo{Loc: analysis.Location{Func: fi.funcIdx, Instr: i}}
			// Bound-check the pool span here: with SkipValidation the
			// tracker's own guard runs only after this instruction is
			// emitted, and a malformed span must surface as an error, not a
			// panic inside a worker.
			if off, cnt := in.BrTableSpan(); off+cnt > len(fi.brPool) {
				return fmt.Errorf("br_table target span [%d:%d] exceeds pool (%d)", off, off+cnt, len(fi.brPool))
			}
			for _, label := range in.BrTargets(fi.brPool) {
				target, err := fi.resolveTarget(label)
				if err != nil {
					return err
				}
				info.Targets = append(info.Targets, ResolvedTarget{Label: label, Instr: target, Ends: fi.endInfos(label)})
			}
			target, err := fi.resolveTarget(in.Idx)
			if err != nil {
				return err
			}
			info.Default = ResolvedTarget{Label: in.Idx, Instr: target, Ends: fi.endInfos(in.Idx)}
			metaIdx := fi.brTableBase + len(fi.brTables)
			fi.brTables = append(fi.brTables, info)

			idx := fi.scratch.take(wasm.I32)
			fi.emit(wasm.LocalSet(idx))
			fi.emitLoc(i)
			fi.emit(wasm.I32Const(int32(metaIdx)), wasm.LocalGet(idx))
			fi.emitFixedHook(fhBrTable)
			fi.emit(wasm.LocalGet(idx))
		}
		fi.emit(in)

	case wasm.OpReturn:
		if reachable {
			if fi.has(analysis.KindReturn) {
				fi.emitReturnHook(i, false)
			}
			if fi.has(analysis.KindEnd) {
				fi.emitEndHooksFor(uint32(len(fi.ctrl) - 1))
			}
		}
		fi.emit(in)

	case wasm.OpCall:
		if !reachable || !fi.has(analysis.KindCall) {
			fi.emitCall(in)
			return nil
		}
		typeIdx, err := fi.mod.FuncTypeIdx(in.Idx)
		if err != nil {
			return err
		}
		fi.emitCallHooks(i, in, typeIdx, false)

	case wasm.OpCallIndirect:
		if !reachable || !fi.has(analysis.KindCall) {
			fi.emit(in)
			return nil
		}
		if int(in.Idx) >= len(fi.mod.Types) {
			return fmt.Errorf("call_indirect type index %d out of range", in.Idx)
		}
		fi.emitCallHooks(i, in, in.Idx, true)

	case wasm.OpDrop:
		t := fi.tr.Top(0)
		if !reachable || !fi.has(analysis.KindDrop) || t == validate.Unknown {
			fi.emit(in)
			return nil
		}
		// The monomorphic drop hook consumes the value in place of the drop
		// (Table 3 row 4); the original drop is replaced by a local.set.
		v := fi.scratch.take(t)
		fi.emit(wasm.LocalSet(v))
		fi.emitLoc(i)
		fi.emitLowerLocal(t, v)
		fi.emitDropHook(t)

	case wasm.OpSelect:
		t := fi.tr.Top(1)
		if t == validate.Unknown {
			t = fi.tr.Top(2)
		}
		if !reachable || !fi.has(analysis.KindSelect) || t == validate.Unknown {
			fi.emit(in)
			return nil
		}
		c := fi.scratch.take(wasm.I32)
		second := fi.scratch.take(t)
		first := fi.scratch.take(t)
		fi.emit(wasm.LocalSet(c), wasm.LocalSet(second), wasm.LocalSet(first))
		fi.emitLoc(i)
		fi.emit(wasm.LocalGet(c))
		fi.emitLowerLocal(t, first)
		fi.emitLowerLocal(t, second)
		fi.emitSelectHook(t)
		fi.emit(wasm.LocalGet(first), wasm.LocalGet(second), wasm.LocalGet(c), in)

	case wasm.OpLocalGet, wasm.OpLocalSet, wasm.OpLocalTee:
		if !reachable || !fi.has(analysis.KindLocal) {
			fi.emit(in)
			return nil
		}
		t, err := fi.tr.LocalType(in.Idx)
		if err != nil {
			return err
		}
		// After the instruction executes, the local itself holds the value
		// (for get trivially; for set/tee it was just written), so the hook
		// argument is re-read from the local, with no stack juggling.
		fi.emit(in)
		fi.emitLoc(i)
		fi.emit(wasm.I32Const(int32(in.Idx)))
		fi.emitLowerLocal(t, in.Idx)
		fi.emitLocalHook(op, t)

	case wasm.OpGlobalGet, wasm.OpGlobalSet:
		if !reachable || !fi.has(analysis.KindGlobal) {
			fi.emit(in)
			return nil
		}
		gt, err := fi.mod.GlobalType(in.Idx)
		if err != nil {
			return err
		}
		fi.emit(in)
		fi.emitLoc(i)
		fi.emit(wasm.I32Const(int32(in.Idx)))
		fi.emitLowerGlobal(gt.Type, in.Idx)
		fi.emitGlobalHook(op, gt.Type)

	case wasm.OpMemorySize:
		fi.emit(in)
		if reachable && fi.has(analysis.KindMemorySize) {
			r := fi.scratch.take(wasm.I32)
			fi.emit(wasm.LocalTee(r))
			fi.emitLoc(i)
			fi.emit(wasm.LocalGet(r))
			fi.emitFixedHook(fhMemorySize)
		}

	case wasm.OpMemoryGrow:
		if !reachable || !fi.has(analysis.KindMemoryGrow) {
			fi.emit(in)
			return nil
		}
		d := fi.scratch.take(wasm.I32)
		r := fi.scratch.take(wasm.I32)
		fi.emit(wasm.LocalTee(d), in, wasm.LocalTee(r))
		fi.emitLoc(i)
		fi.emit(wasm.LocalGet(d), wasm.LocalGet(r))
		fi.emitFixedHook(fhMemoryGrow)

	case wasm.OpI32Const, wasm.OpI64Const, wasm.OpF32Const, wasm.OpF64Const:
		fi.emit(in)
		if reachable && fi.has(analysis.KindConst) {
			fi.emitLoc(i)
			fi.emitLowerConst(in)
			t, _, _ := constTypeOf(in.Op)
			fi.emitConstHook(t)
		}

	default:
		switch {
		case op.IsLoad():
			if !reachable || !fi.has(analysis.KindLoad) {
				fi.emit(in)
				return nil
			}
			t, _ := op.LoadStoreType()
			addr := fi.scratch.take(wasm.I32)
			val := fi.scratch.take(t)
			fi.emit(wasm.LocalTee(addr), in, wasm.LocalTee(val))
			fi.emitLoc(i)
			fi.emit(wasm.I32Const(int32(in.MemOffset())), wasm.LocalGet(addr))
			fi.emitLowerLocal(t, val)
			fi.emitOpHook(op)

		case op.IsStore():
			if !reachable || !fi.has(analysis.KindStore) {
				fi.emit(in)
				return nil
			}
			t, _ := op.LoadStoreType()
			val := fi.scratch.take(t)
			addr := fi.scratch.take(wasm.I32)
			fi.emit(wasm.LocalSet(val), wasm.LocalTee(addr), wasm.LocalGet(val), in)
			fi.emitLoc(i)
			fi.emit(wasm.I32Const(int32(in.MemOffset())), wasm.LocalGet(addr))
			fi.emitLowerLocal(t, val)
			fi.emitOpHook(op)

		case op.IsUnary():
			if !reachable || !fi.has(analysis.KindUnary) {
				fi.emit(in)
				return nil
			}
			ins, outs, _ := wasm.NumericSig(op)
			input := fi.scratch.take(ins[0])
			result := fi.scratch.take(outs[0])
			fi.emit(wasm.LocalTee(input), in, wasm.LocalTee(result))
			fi.emitLoc(i)
			fi.emitLowerLocal(ins[0], input)
			fi.emitLowerLocal(outs[0], result)
			fi.emitOpHook(op)

		case op.IsBinary():
			if !reachable || !fi.has(analysis.KindBinary) {
				fi.emit(in)
				return nil
			}
			ins, outs, _ := wasm.NumericSig(op)
			b := fi.scratch.take(ins[1])
			a := fi.scratch.take(ins[0])
			r := fi.scratch.take(outs[0])
			fi.emit(wasm.LocalSet(b), wasm.LocalTee(a), wasm.LocalGet(b), in, wasm.LocalTee(r))
			fi.emitLoc(i)
			fi.emitLowerLocal(ins[0], a)
			fi.emitLowerLocal(ins[1], b)
			fi.emitLowerLocal(outs[0], r)
			fi.emitOpHook(op)

		case op == wasm.OpMiscPrefix:
			// 0xFC instructions (saturating truncation, memory.copy/fill)
			// pass through unhooked: the low-level hook namespace is keyed
			// by single-byte opcode, and hooks never alter execution, so an
			// unhooked instruction preserves faithfulness — the differential
			// oracle pins the instrumented and plain semantics as equal.
			fi.emit(in)

		default:
			return fmt.Errorf("unhandled opcode %s", op)
		}
	}
	return nil
}

// emitReturnHook saves the function results into scratch locals, calls the
// (monomorphized) return hook, and restores the results. When implicit is
// true the hook fires for the implicit return at the function's final end.
func (fi *funcInstrumenter) emitReturnHook(i int, implicit bool) {
	results := fi.sig.Results
	saved := fi.savedScratch(len(results))
	for k := len(results) - 1; k >= 0; k-- {
		saved[k] = fi.scratch.take(results[k])
		fi.emit(wasm.LocalSet(saved[k]))
	}
	fi.emitLoc(i)
	for k, t := range results {
		fi.emitLowerLocal(t, saved[k])
	}
	fi.emitReturnHookCall()
	for k := range results {
		fi.emit(wasm.LocalGet(saved[k]))
	}
}

// emitCallHooks implements Table 3 row 3: save the arguments, call the
// monomorphized call_pre hook, restore the arguments, perform the call, then
// save/pass/restore the results through the call_post hook.
func (fi *funcInstrumenter) emitCallHooks(i int, in wasm.Instr, typeIdx uint32, indirect bool) {
	sig := fi.mod.Types[typeIdx]
	params := sig.Params

	var tblIdx uint32
	if indirect {
		tblIdx = fi.scratch.take(wasm.I32)
		fi.emit(wasm.LocalSet(tblIdx))
	}
	saved := fi.savedScratch(len(params))
	for k := len(params) - 1; k >= 0; k-- {
		saved[k] = fi.scratch.take(params[k])
		fi.emit(wasm.LocalSet(saved[k]))
	}

	// call_pre hook: (loc, target-or-tableIdx, args...).
	fi.emitLoc(i)
	if indirect {
		fi.emit(wasm.LocalGet(tblIdx))
	} else {
		fi.emit(wasm.I32Const(int32(in.Idx))) // original function index
	}
	for k, t := range params {
		fi.emitLowerLocal(t, saved[k])
	}
	fi.emitCallPreHook(typeIdx, sig, indirect)

	// Restore arguments and perform the original call.
	for k := range params {
		fi.emit(wasm.LocalGet(saved[k]))
	}
	if indirect {
		fi.emit(wasm.LocalGet(tblIdx))
		fi.emit(in) // call_indirect carries a type index, not a function index
	} else {
		fi.emitCall(in)
	}

	// call_post hook: (loc, results...). The arguments' saved slice is dead
	// by now (last use was the restore before the call), so the scratch
	// buffer can be reused for the results.
	results := sig.Results
	savedR := fi.savedScratch(len(results))
	for k := len(results) - 1; k >= 0; k-- {
		savedR[k] = fi.scratch.take(results[k])
		fi.emit(wasm.LocalSet(savedR[k]))
	}
	fi.emitLoc(i)
	for k, t := range results {
		fi.emitLowerLocal(t, savedR[k])
	}
	fi.emitCallPostHook(typeIdx, results)
	for k := range results {
		fi.emit(wasm.LocalGet(savedR[k]))
	}
}

func constTypeOf(op wasm.Opcode) (wasm.ValType, []wasm.ValType, bool) {
	_, outs, ok := wasm.NumericSig(op)
	if !ok || len(outs) != 1 {
		return 0, nil, false
	}
	return outs[0], outs, true
}

// copyUninstrumented passes a function body through without hooks (the
// static plan proved the function unreachable from exports/start). The body
// must still be copied — the remap pass rewrites call indices in place — and
// its direct calls recorded as call sites so that remapping happens.
func copyUninstrumented(orig []wasm.Instr) (body []wasm.Instr, extraLocals []wasm.ValType, brTables []BrTableInfo, callSites []uint32, err error) {
	body = make([]wasm.Instr, len(orig))
	copy(body, orig)
	for i := range body {
		if body[i].Op == wasm.OpCall {
			callSites = append(callSites, uint32(i))
		}
	}
	return body, nil, nil, callSites, nil
}

// controlMatches computes, for every block/loop/if instruction, the index of
// its matching end (and else, for ifs). It mirrors the interpreter's
// compile-time pass but lives here so the instrumenter has no dependency on
// the interpreter.
func controlMatches(body []wasm.Instr) (matchEnd, matchElse []int32, err error) {
	matchEnd, matchElse, _, err = controlMatchesInto(body, nil, nil, nil)
	return matchEnd, matchElse, err
}

// controlMatchesInto is controlMatches writing into caller-provided buffers
// (grown as needed), so a reused instrumenter computes the tables without
// allocating. stackBuf is scratch for the opener stack; its (possibly grown)
// backing array is returned for reuse.
func controlMatchesInto(body []wasm.Instr, endBuf, elseBuf []int32, stackBuf []int) (matchEnd, matchElse []int32, stackOut []int, err error) {
	if cap(endBuf) < len(body) {
		endBuf = make([]int32, len(body))
	}
	if cap(elseBuf) < len(body) {
		elseBuf = make([]int32, len(body))
	}
	matchEnd = endBuf[:len(body)]
	matchElse = elseBuf[:len(body)]
	for i := range body {
		matchEnd[i] = -1
		matchElse[i] = -1
	}
	stack := stackBuf[:0]
	sawFuncEnd := false
	for pc, in := range body {
		switch in.Op {
		case wasm.OpBlock, wasm.OpLoop, wasm.OpIf:
			stack = append(stack, pc)
		case wasm.OpElse:
			if len(stack) == 0 {
				return nil, nil, nil, fmt.Errorf("core: else without if at instr %d", pc)
			}
			entry := stack[len(stack)-1]
			opener := entry & 0xFFFFFFFF
			if entry>>32 != 0 || body[opener].Op != wasm.OpIf {
				return nil, nil, nil, fmt.Errorf("core: else without if at instr %d", pc)
			}
			matchElse[opener] = int32(pc)
			stack[len(stack)-1] = opener | (pc << 32)
		case wasm.OpEnd:
			if len(stack) == 0 {
				if pc != len(body)-1 {
					return nil, nil, nil, fmt.Errorf("core: function-level end at instr %d is not final", pc)
				}
				sawFuncEnd = true
				continue
			}
			entry := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			opener := entry & 0xFFFFFFFF
			matchEnd[opener] = int32(pc)
			if elsePC := entry >> 32; elsePC != 0 {
				matchEnd[elsePC] = int32(pc)
			}
		}
	}
	if len(stack) != 0 {
		return nil, nil, nil, fmt.Errorf("core: %d unclosed blocks", len(stack))
	}
	if !sawFuncEnd {
		return nil, nil, nil, fmt.Errorf("core: missing function-level end")
	}
	return matchEnd, matchElse, stack, nil
}
