package core

import (
	"fmt"

	"wasabi/internal/analysis"
	"wasabi/internal/validate"
	"wasabi/internal/wasm"
)

// ctrlEntry is one frame of the instrumenter's abstract control stack
// (paper §2.4.4, Figure 6): the block kind and the locations of the block's
// begin and matching end instruction in the ORIGINAL body.
type ctrlEntry struct {
	kind  analysis.BlockKind
	begin int // original instruction index; -1 for the function frame
	end   int
	live  bool // whether the block entry itself is reachable
}

// scratchAlloc hands out per-function scratch locals for duplicating stack
// operands ("freshly generated locals" in Table 3). Locals are reused across
// instructions but never within one: release() must be called after each
// original instruction.
type scratchAlloc struct {
	base   int // first scratch index = params + original locals
	types  []wasm.ValType
	inUse  map[wasm.ValType]int
	byType map[wasm.ValType][]uint32
}

func newScratchAlloc(base int) *scratchAlloc {
	return &scratchAlloc{
		base:   base,
		inUse:  make(map[wasm.ValType]int),
		byType: make(map[wasm.ValType][]uint32),
	}
}

func (a *scratchAlloc) take(t wasm.ValType) uint32 {
	n := a.inUse[t]
	a.inUse[t] = n + 1
	pool := a.byType[t]
	if n < len(pool) {
		return pool[n]
	}
	idx := uint32(a.base + len(a.types))
	a.types = append(a.types, t)
	a.byType[t] = append(pool, idx)
	return idx
}

func (a *scratchAlloc) release() {
	for t := range a.inUse {
		a.inUse[t] = 0
	}
}

// funcInstrumenter instruments one function body.
type funcInstrumenter struct {
	mod     *wasm.Module
	hooks   *hookRegistry
	set     analysis.HookSet
	funcIdx int // original function index
	sig     wasm.FuncType
	body    []wasm.Instr

	tr      *validate.Tracker
	ctrl    []ctrlEntry
	scratch *scratchAlloc
	out     []wasm.Instr

	// hookCache avoids hitting the shared (locked) registry for every
	// emitted hook call; only first use of a hook name per function goes to
	// the registry.
	hookCache map[string]uint32

	isStart     bool
	brTableBase int
	brTables    []BrTableInfo
}

// instrumentFunc rewrites the body of the defined function at definedIdx.
// It returns the new body, the scratch locals to append, and the br_table
// metadata records (whose indices start at brTableBase).
func instrumentFunc(mod *wasm.Module, set analysis.HookSet, hooks *hookRegistry,
	definedIdx int, isStart bool, brTableBase int) (body []wasm.Instr, extraLocals []wasm.ValType, brTables []BrTableInfo, err error) {

	f := &mod.Funcs[definedIdx]
	funcIdx := mod.NumImportedFuncs() + definedIdx
	sig := mod.Types[f.TypeIdx]

	fi := &funcInstrumenter{
		mod:         mod,
		hooks:       hooks,
		set:         set,
		funcIdx:     funcIdx,
		sig:         sig,
		body:        f.Body,
		tr:          validate.NewTracker(mod, sig, f.Locals),
		scratch:     newScratchAlloc(len(sig.Params) + len(f.Locals)),
		out:         make([]wasm.Instr, 0, len(f.Body)*3),
		hookCache:   make(map[string]uint32, 64),
		isStart:     isStart,
		brTableBase: brTableBase,
	}
	if err := fi.run(); err != nil {
		return nil, nil, nil, fmt.Errorf("core: func %d: %w", funcIdx, err)
	}
	return fi.out, fi.scratch.types, fi.brTables, nil
}

func (fi *funcInstrumenter) has(k analysis.HookKind) bool { return fi.set.Has(k) }

func (fi *funcInstrumenter) emit(ins ...wasm.Instr) { fi.out = append(fi.out, ins...) }

// emitLoc pushes the two i32 location arguments every hook receives.
func (fi *funcInstrumenter) emitLoc(instrIdx int) {
	fi.emit(wasm.I32Const(int32(fi.funcIdx)), wasm.I32Const(int32(instrIdx)))
}

// emitHookCall emits a call to the (possibly freshly monomorphized) hook.
func (fi *funcInstrumenter) emitHookCall(spec HookSpec) {
	idx, ok := fi.hookCache[spec.Name]
	if !ok {
		idx = fi.hooks.get(spec)
		fi.hookCache[spec.Name] = idx
	}
	fi.emit(wasm.Call(idx))
}

// emitLowerLocal pushes the value held in a local in the host-boundary
// representation: i64 is split into (lo, hi) i32 halves (paper §2.4.6,
// Table 3 row 6).
func (fi *funcInstrumenter) emitLowerLocal(t wasm.ValType, local uint32) {
	if t != wasm.I64 {
		fi.emit(wasm.LocalGet(local))
		return
	}
	fi.emit(
		wasm.LocalGet(local),
		wasm.Op1(wasm.OpI32WrapI64), // lo
		wasm.LocalGet(local),
		wasm.I64ConstInstr(32),
		wasm.Op1(wasm.OpI64ShrU),
		wasm.Op1(wasm.OpI32WrapI64), // hi
	)
}

// emitLowerGlobal is emitLowerLocal for a global variable.
func (fi *funcInstrumenter) emitLowerGlobal(t wasm.ValType, global uint32) {
	if t != wasm.I64 {
		fi.emit(wasm.GlobalGet(global))
		return
	}
	fi.emit(
		wasm.GlobalGet(global),
		wasm.Op1(wasm.OpI32WrapI64),
		wasm.GlobalGet(global),
		wasm.I64ConstInstr(32),
		wasm.Op1(wasm.OpI64ShrU),
		wasm.Op1(wasm.OpI32WrapI64),
	)
}

// emitLowerConst pushes the value of a constant instruction in lowered form;
// for i64 constants the two halves are emitted directly as i32 constants.
func (fi *funcInstrumenter) emitLowerConst(in wasm.Instr) {
	if in.Op == wasm.OpI64Const {
		v := uint64(in.I64)
		fi.emit(wasm.I32Const(int32(uint32(v))), wasm.I32Const(int32(uint32(v>>32))))
		return
	}
	fi.emit(in)
}

// frame returns the control frame n levels from the top (0 = innermost).
func (fi *funcInstrumenter) frame(n int) *ctrlEntry { return &fi.ctrl[len(fi.ctrl)-1-n] }

// resolveTarget computes the absolute instruction index a branch with the
// given relative label jumps to (paper §2.4.4): for loops the first
// instruction of the loop body (a backward jump), otherwise the instruction
// after the block's matching end (a forward jump).
func (fi *funcInstrumenter) resolveTarget(label uint32) (int, error) {
	if int(label) >= len(fi.ctrl) {
		return 0, fmt.Errorf("branch label %d exceeds control depth %d", label, len(fi.ctrl))
	}
	fr := fi.frame(int(label))
	switch fr.kind {
	case analysis.BlockLoop:
		return fr.begin + 1, nil
	case analysis.BlockFunction:
		return fr.end, nil // the implicit function end (i.e. return)
	default:
		return fr.end + 1, nil
	}
}

// endInfos collects the EndInfo records for the blocks traversed by a
// branch with the given label: every frame from the innermost through the
// target, both inclusive (paper §2.4.5).
func (fi *funcInstrumenter) endInfos(label uint32) []EndInfo {
	infos := make([]EndInfo, 0, label+1)
	for k := 0; k <= int(label); k++ {
		fr := fi.frame(k)
		infos = append(infos, EndInfo{Kind: fr.kind, End: fr.end, Begin: fr.begin})
	}
	return infos
}

// emitEndHooksFor emits inline calls to the end hooks of all traversed
// blocks for a branch with the given label.
func (fi *funcInstrumenter) emitEndHooksFor(label uint32) {
	for _, info := range fi.endInfos(label) {
		fi.emitEndHook(info)
	}
}

func (fi *funcInstrumenter) emitEndHook(info EndInfo) {
	fi.emitLoc(info.End)
	fi.emit(wasm.I32Const(int32(info.Begin)))
	fi.emitHookCall(specEnd(info.Kind))
}

func (fi *funcInstrumenter) run() error {
	matchEnd, matchElse, err := controlMatches(fi.body)
	if err != nil {
		return err
	}
	fi.ctrl = append(fi.ctrl, ctrlEntry{
		kind: analysis.BlockFunction, begin: -1, end: len(fi.body) - 1, live: true,
	})

	// Module start function: the start hook fires before anything else.
	if fi.isStart && fi.has(analysis.KindStart) {
		fi.emitLoc(-1)
		fi.emitHookCall(specStart())
	}
	if fi.has(analysis.KindBegin) {
		fi.emitLoc(-1)
		fi.emitHookCall(specBegin(analysis.BlockFunction))
	}

	for i, in := range fi.body {
		reachable := !fi.tr.UnreachableNow()
		if err := fi.instr(i, in, reachable, matchEnd, matchElse); err != nil {
			return fmt.Errorf("instr %d (%s): %w", i, in.Op, err)
		}
		if err := fi.tr.Step(in); err != nil {
			return fmt.Errorf("instr %d (%s): type tracking: %w", i, in.Op, err)
		}
		fi.scratch.release()
	}
	if !fi.tr.Done() {
		return fmt.Errorf("body ended with %d open blocks", fi.tr.Depth())
	}
	return nil
}

// instr emits the instrumented sequence for the original instruction at
// index i. The original instruction is always preserved; hook calls and
// operand duplication are interleaved around it (Table 3 in the paper).
func (fi *funcInstrumenter) instr(i int, in wasm.Instr, reachable bool, matchEnd, matchElse []int32) error {
	op := in.Op
	switch op {
	case wasm.OpNop:
		fi.emit(in)
		if reachable && fi.has(analysis.KindNop) {
			fi.emitLoc(i)
			fi.emitHookCall(specNop())
		}

	case wasm.OpUnreachable:
		// The hook must run before the trap.
		if reachable && fi.has(analysis.KindUnreachable) {
			fi.emitLoc(i)
			fi.emitHookCall(specUnreachable())
		}
		fi.emit(in)

	case wasm.OpBlock, wasm.OpLoop:
		kind := analysis.BlockBlock
		if op == wasm.OpLoop {
			kind = analysis.BlockLoop
		}
		fi.ctrl = append(fi.ctrl, ctrlEntry{kind: kind, begin: i, end: int(matchEnd[i]), live: reachable})
		fi.emit(in)
		if reachable && fi.has(analysis.KindBegin) {
			// For loops this call sits at the loop header and therefore
			// fires once per iteration, as the paper specifies.
			fi.emitLoc(i)
			fi.emitHookCall(specBegin(kind))
		}

	case wasm.OpIf:
		if reachable && fi.has(analysis.KindIf) {
			c := fi.scratch.take(wasm.I32)
			fi.emit(wasm.LocalTee(c))
			fi.emitLoc(i)
			fi.emit(wasm.LocalGet(c))
			fi.emitHookCall(specIf())
		}
		fi.ctrl = append(fi.ctrl, ctrlEntry{kind: analysis.BlockIf, begin: i, end: int(matchEnd[i]), live: reachable})
		fi.emit(in)
		if reachable && fi.has(analysis.KindBegin) {
			fi.emitLoc(i)
			fi.emitHookCall(specBegin(analysis.BlockIf))
		}

	case wasm.OpElse:
		fr := fi.frame(0)
		// The end hook of the then-branch: reached only by falling through
		// to the else, so guard on reachability at this point.
		if reachable && fi.has(analysis.KindEnd) {
			fi.emitEndHook(EndInfo{Kind: analysis.BlockIf, End: i, Begin: fr.begin})
		}
		live := fr.live
		*fr = ctrlEntry{kind: analysis.BlockElse, begin: i, end: fr.end, live: live}
		fi.emit(in)
		if live && fi.has(analysis.KindBegin) {
			fi.emitLoc(i)
			fi.emitHookCall(specBegin(analysis.BlockElse))
		}

	case wasm.OpEnd:
		fr := fi.frame(0)
		if len(fi.ctrl) == 1 {
			// Function-level end: implicit return, then the function end hook.
			if reachable && fi.has(analysis.KindReturn) {
				fi.emitReturnHook(i, true)
			}
			if reachable && fi.has(analysis.KindEnd) {
				fi.emitEndHook(EndInfo{Kind: analysis.BlockFunction, End: i, Begin: -1})
			}
		} else if reachable && fi.has(analysis.KindEnd) {
			fi.emitEndHook(EndInfo{Kind: fr.kind, End: i, Begin: fr.begin})
		}
		fi.ctrl = fi.ctrl[:len(fi.ctrl)-1]
		fi.emit(in)

	case wasm.OpBr:
		if reachable {
			if fi.has(analysis.KindBr) {
				target, err := fi.resolveTarget(in.Idx)
				if err != nil {
					return err
				}
				fi.emitLoc(i)
				fi.emit(wasm.I32Const(int32(in.Idx)), wasm.I32Const(int32(target)))
				fi.emitHookCall(specBr())
			}
			if fi.has(analysis.KindEnd) {
				fi.emitEndHooksFor(in.Idx)
			}
		}
		fi.emit(in)

	case wasm.OpBrIf:
		if reachable && (fi.has(analysis.KindBrIf) || fi.has(analysis.KindEnd)) {
			target, err := fi.resolveTarget(in.Idx)
			if err != nil {
				return err
			}
			c := fi.scratch.take(wasm.I32)
			fi.emit(wasm.LocalSet(c))
			if fi.has(analysis.KindBrIf) {
				fi.emitLoc(i)
				fi.emit(wasm.I32Const(int32(in.Idx)), wasm.I32Const(int32(target)), wasm.LocalGet(c))
				fi.emitHookCall(specBrIf())
			}
			if fi.has(analysis.KindEnd) {
				// End hooks fire only if the branch is taken (paper §2.4.5).
				fi.emit(wasm.LocalGet(c), wasm.IfInstr(wasm.BlockEmpty))
				fi.emitEndHooksFor(in.Idx)
				fi.emit(wasm.End())
			}
			fi.emit(wasm.LocalGet(c))
		}
		fi.emit(in)

	case wasm.OpBrTable:
		if reachable && (fi.has(analysis.KindBrTable) || fi.has(analysis.KindEnd)) {
			info := BrTableInfo{Loc: analysis.Location{Func: fi.funcIdx, Instr: i}}
			for _, label := range in.Table {
				target, err := fi.resolveTarget(label)
				if err != nil {
					return err
				}
				info.Targets = append(info.Targets, ResolvedTarget{Label: label, Instr: target, Ends: fi.endInfos(label)})
			}
			target, err := fi.resolveTarget(in.Idx)
			if err != nil {
				return err
			}
			info.Default = ResolvedTarget{Label: in.Idx, Instr: target, Ends: fi.endInfos(in.Idx)}
			metaIdx := fi.brTableBase + len(fi.brTables)
			fi.brTables = append(fi.brTables, info)

			idx := fi.scratch.take(wasm.I32)
			fi.emit(wasm.LocalSet(idx))
			fi.emitLoc(i)
			fi.emit(wasm.I32Const(int32(metaIdx)), wasm.LocalGet(idx))
			fi.emitHookCall(specBrTable())
			fi.emit(wasm.LocalGet(idx))
		}
		fi.emit(in)

	case wasm.OpReturn:
		if reachable {
			if fi.has(analysis.KindReturn) {
				fi.emitReturnHook(i, false)
			}
			if fi.has(analysis.KindEnd) {
				fi.emitEndHooksFor(uint32(len(fi.ctrl) - 1))
			}
		}
		fi.emit(in)

	case wasm.OpCall:
		if !reachable || !fi.has(analysis.KindCall) {
			fi.emit(in)
			return nil
		}
		sig, err := fi.mod.FuncType(in.Idx)
		if err != nil {
			return err
		}
		fi.emitCallHooks(i, in, sig, false)

	case wasm.OpCallIndirect:
		if !reachable || !fi.has(analysis.KindCall) {
			fi.emit(in)
			return nil
		}
		if int(in.Idx) >= len(fi.mod.Types) {
			return fmt.Errorf("call_indirect type index %d out of range", in.Idx)
		}
		fi.emitCallHooks(i, in, fi.mod.Types[in.Idx], true)

	case wasm.OpDrop:
		t := fi.tr.Top(0)
		if !reachable || !fi.has(analysis.KindDrop) || t == validate.Unknown {
			fi.emit(in)
			return nil
		}
		// The monomorphic drop hook consumes the value in place of the drop
		// (Table 3 row 4); the original drop is replaced by a local.set.
		v := fi.scratch.take(t)
		fi.emit(wasm.LocalSet(v))
		fi.emitLoc(i)
		fi.emitLowerLocal(t, v)
		fi.emitHookCall(specDrop(t))

	case wasm.OpSelect:
		t := fi.tr.Top(1)
		if t == validate.Unknown {
			t = fi.tr.Top(2)
		}
		if !reachable || !fi.has(analysis.KindSelect) || t == validate.Unknown {
			fi.emit(in)
			return nil
		}
		c := fi.scratch.take(wasm.I32)
		second := fi.scratch.take(t)
		first := fi.scratch.take(t)
		fi.emit(wasm.LocalSet(c), wasm.LocalSet(second), wasm.LocalSet(first))
		fi.emitLoc(i)
		fi.emit(wasm.LocalGet(c))
		fi.emitLowerLocal(t, first)
		fi.emitLowerLocal(t, second)
		fi.emitHookCall(specSelect(t))
		fi.emit(wasm.LocalGet(first), wasm.LocalGet(second), wasm.LocalGet(c), in)

	case wasm.OpLocalGet, wasm.OpLocalSet, wasm.OpLocalTee:
		if !reachable || !fi.has(analysis.KindLocal) {
			fi.emit(in)
			return nil
		}
		t, err := fi.tr.LocalType(in.Idx)
		if err != nil {
			return err
		}
		// After the instruction executes, the local itself holds the value
		// (for get trivially; for set/tee it was just written), so the hook
		// argument is re-read from the local, with no stack juggling.
		fi.emit(in)
		fi.emitLoc(i)
		fi.emit(wasm.I32Const(int32(in.Idx)))
		fi.emitLowerLocal(t, in.Idx)
		fi.emitHookCall(specLocal(op, t))

	case wasm.OpGlobalGet, wasm.OpGlobalSet:
		if !reachable || !fi.has(analysis.KindGlobal) {
			fi.emit(in)
			return nil
		}
		gt, err := fi.mod.GlobalType(in.Idx)
		if err != nil {
			return err
		}
		fi.emit(in)
		fi.emitLoc(i)
		fi.emit(wasm.I32Const(int32(in.Idx)))
		fi.emitLowerGlobal(gt.Type, in.Idx)
		fi.emitHookCall(specGlobal(op, gt.Type))

	case wasm.OpMemorySize:
		fi.emit(in)
		if reachable && fi.has(analysis.KindMemorySize) {
			r := fi.scratch.take(wasm.I32)
			fi.emit(wasm.LocalTee(r))
			fi.emitLoc(i)
			fi.emit(wasm.LocalGet(r))
			fi.emitHookCall(specMemorySize())
		}

	case wasm.OpMemoryGrow:
		if !reachable || !fi.has(analysis.KindMemoryGrow) {
			fi.emit(in)
			return nil
		}
		d := fi.scratch.take(wasm.I32)
		r := fi.scratch.take(wasm.I32)
		fi.emit(wasm.LocalTee(d), in, wasm.LocalTee(r))
		fi.emitLoc(i)
		fi.emit(wasm.LocalGet(d), wasm.LocalGet(r))
		fi.emitHookCall(specMemoryGrow())

	case wasm.OpI32Const, wasm.OpI64Const, wasm.OpF32Const, wasm.OpF64Const:
		fi.emit(in)
		if reachable && fi.has(analysis.KindConst) {
			fi.emitLoc(i)
			fi.emitLowerConst(in)
			t, _, _ := constTypeOf(in.Op)
			fi.emitHookCall(specConst(t))
		}

	default:
		switch {
		case op.IsLoad():
			if !reachable || !fi.has(analysis.KindLoad) {
				fi.emit(in)
				return nil
			}
			t, _ := op.LoadStoreType()
			addr := fi.scratch.take(wasm.I32)
			val := fi.scratch.take(t)
			fi.emit(wasm.LocalTee(addr), in, wasm.LocalTee(val))
			fi.emitLoc(i)
			fi.emit(wasm.I32Const(int32(in.Mem.Offset)), wasm.LocalGet(addr))
			fi.emitLowerLocal(t, val)
			fi.emitHookCall(specLoad(op))

		case op.IsStore():
			if !reachable || !fi.has(analysis.KindStore) {
				fi.emit(in)
				return nil
			}
			t, _ := op.LoadStoreType()
			val := fi.scratch.take(t)
			addr := fi.scratch.take(wasm.I32)
			fi.emit(wasm.LocalSet(val), wasm.LocalTee(addr), wasm.LocalGet(val), in)
			fi.emitLoc(i)
			fi.emit(wasm.I32Const(int32(in.Mem.Offset)), wasm.LocalGet(addr))
			fi.emitLowerLocal(t, val)
			fi.emitHookCall(specStore(op))

		case op.IsUnary():
			if !reachable || !fi.has(analysis.KindUnary) {
				fi.emit(in)
				return nil
			}
			ins, outs, _ := wasm.NumericSig(op)
			input := fi.scratch.take(ins[0])
			result := fi.scratch.take(outs[0])
			fi.emit(wasm.LocalTee(input), in, wasm.LocalTee(result))
			fi.emitLoc(i)
			fi.emitLowerLocal(ins[0], input)
			fi.emitLowerLocal(outs[0], result)
			fi.emitHookCall(specUnary(op))

		case op.IsBinary():
			if !reachable || !fi.has(analysis.KindBinary) {
				fi.emit(in)
				return nil
			}
			ins, outs, _ := wasm.NumericSig(op)
			b := fi.scratch.take(ins[1])
			a := fi.scratch.take(ins[0])
			r := fi.scratch.take(outs[0])
			fi.emit(wasm.LocalSet(b), wasm.LocalTee(a), wasm.LocalGet(b), in, wasm.LocalTee(r))
			fi.emitLoc(i)
			fi.emitLowerLocal(ins[0], a)
			fi.emitLowerLocal(ins[1], b)
			fi.emitLowerLocal(outs[0], r)
			fi.emitHookCall(specBinary(op))

		default:
			return fmt.Errorf("unhandled opcode %s", op)
		}
	}
	return nil
}

// emitReturnHook saves the function results into scratch locals, calls the
// (monomorphized) return hook, and restores the results. When implicit is
// true the hook fires for the implicit return at the function's final end.
func (fi *funcInstrumenter) emitReturnHook(i int, implicit bool) {
	results := fi.sig.Results
	saved := make([]uint32, len(results))
	for k := len(results) - 1; k >= 0; k-- {
		saved[k] = fi.scratch.take(results[k])
		fi.emit(wasm.LocalSet(saved[k]))
	}
	fi.emitLoc(i)
	for k, t := range results {
		fi.emitLowerLocal(t, saved[k])
	}
	fi.emitHookCall(specReturn(results))
	for k := range results {
		fi.emit(wasm.LocalGet(saved[k]))
	}
}

// emitCallHooks implements Table 3 row 3: save the arguments, call the
// monomorphized call_pre hook, restore the arguments, perform the call, then
// save/pass/restore the results through the call_post hook.
func (fi *funcInstrumenter) emitCallHooks(i int, in wasm.Instr, sig wasm.FuncType, indirect bool) {
	params := sig.Params

	var tblIdx uint32
	if indirect {
		tblIdx = fi.scratch.take(wasm.I32)
		fi.emit(wasm.LocalSet(tblIdx))
	}
	saved := make([]uint32, len(params))
	for k := len(params) - 1; k >= 0; k-- {
		saved[k] = fi.scratch.take(params[k])
		fi.emit(wasm.LocalSet(saved[k]))
	}

	// call_pre hook: (loc, target-or-tableIdx, args...).
	fi.emitLoc(i)
	if indirect {
		fi.emit(wasm.LocalGet(tblIdx))
	} else {
		fi.emit(wasm.I32Const(int32(in.Idx))) // original function index
	}
	for k, t := range params {
		fi.emitLowerLocal(t, saved[k])
	}
	fi.emitHookCall(specCallPre(sig, indirect))

	// Restore arguments and perform the original call.
	for k := range params {
		fi.emit(wasm.LocalGet(saved[k]))
	}
	if indirect {
		fi.emit(wasm.LocalGet(tblIdx))
	}
	fi.emit(in)

	// call_post hook: (loc, results...).
	results := sig.Results
	savedR := make([]uint32, len(results))
	for k := len(results) - 1; k >= 0; k-- {
		savedR[k] = fi.scratch.take(results[k])
		fi.emit(wasm.LocalSet(savedR[k]))
	}
	fi.emitLoc(i)
	for k, t := range results {
		fi.emitLowerLocal(t, savedR[k])
	}
	fi.emitHookCall(specCallPost(results))
	for k := range results {
		fi.emit(wasm.LocalGet(savedR[k]))
	}
}

func constTypeOf(op wasm.Opcode) (wasm.ValType, []wasm.ValType, bool) {
	_, outs, ok := wasm.NumericSig(op)
	if !ok || len(outs) != 1 {
		return 0, nil, false
	}
	return outs[0], outs, true
}

// controlMatches computes, for every block/loop/if instruction, the index of
// its matching end (and else, for ifs). It mirrors the interpreter's
// compile-time pass but lives here so the instrumenter has no dependency on
// the interpreter.
func controlMatches(body []wasm.Instr) (matchEnd, matchElse []int32, err error) {
	matchEnd = make([]int32, len(body))
	matchElse = make([]int32, len(body))
	for i := range body {
		matchEnd[i] = -1
		matchElse[i] = -1
	}
	var stack []int
	sawFuncEnd := false
	for pc, in := range body {
		switch in.Op {
		case wasm.OpBlock, wasm.OpLoop, wasm.OpIf:
			stack = append(stack, pc)
		case wasm.OpElse:
			if len(stack) == 0 {
				return nil, nil, fmt.Errorf("core: else without if at instr %d", pc)
			}
			entry := stack[len(stack)-1]
			opener := entry & 0xFFFFFFFF
			if entry>>32 != 0 || body[opener].Op != wasm.OpIf {
				return nil, nil, fmt.Errorf("core: else without if at instr %d", pc)
			}
			matchElse[opener] = int32(pc)
			stack[len(stack)-1] = opener | (pc << 32)
		case wasm.OpEnd:
			if len(stack) == 0 {
				if pc != len(body)-1 {
					return nil, nil, fmt.Errorf("core: function-level end at instr %d is not final", pc)
				}
				sawFuncEnd = true
				continue
			}
			entry := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			opener := entry & 0xFFFFFFFF
			matchEnd[opener] = int32(pc)
			if elsePC := entry >> 32; elsePC != 0 {
				matchEnd[elsePC] = int32(pc)
			}
		}
	}
	if len(stack) != 0 {
		return nil, nil, fmt.Errorf("core: %d unclosed blocks", len(stack))
	}
	if !sawFuncEnd {
		return nil, nil, fmt.Errorf("core: missing function-level end")
	}
	return matchEnd, matchElse, nil
}
