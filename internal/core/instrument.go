package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"wasabi/internal/analysis"
	"wasabi/internal/validate"
	"wasabi/internal/wasm"
)

// ErrHookNamespaceImport reports an input module that imports from the
// generated hook namespace (HookModule): instrumenting it would merge the
// program's imports with the generated hooks. The public layer wraps it into
// wasabi.ErrHookModuleCollision; matched with errors.Is.
var ErrHookNamespaceImport = errors.New("core: input module imports from the generated hook import namespace")

// Options configure an instrumentation run.
type Options struct {
	// Hooks selects which instruction classes to instrument (selective
	// instrumentation, paper §2.4.2). The zero value instruments nothing;
	// use analysis.AllHooks for full instrumentation or analysis.HooksOf to
	// derive the set from an analysis value.
	Hooks analysis.HookSet

	// Parallelism bounds the number of goroutines instrumenting function
	// bodies concurrently (paper §3). 0 means GOMAXPROCS; 1 disables
	// parallelism.
	Parallelism int

	// SkipValidation skips validating the input module first. The
	// instrumenter assumes a valid module; only skip for trusted inputs.
	SkipValidation bool

	// Plan optionally elides hooks using static-analysis results (computed
	// by internal/static): functions it marks unreachable are copied through
	// uninstrumented, and when Hooks selects analysis.KindBlockProbe one
	// probe per listed CFG block is emitted. nil disables elision.
	Plan *Plan
}

// Instrument rewrites m into an instrumented module that calls imported
// low-level hooks (module name HookModule) around the selected instruction
// classes. The input module is not modified. The returned Metadata carries
// everything the runtime dispatcher needs.
//
// Options carry only the mechanical instrumentation parameters; deriving a
// hook set from an analysis value is the analysis package's job
// (analysis.HooksOf / analysis.Cap.HookSet), wired up by the public wasabi
// layer.
func Instrument(m *wasm.Module, opts Options) (*wasm.Module, *Metadata, error) {
	if !opts.SkipValidation {
		if err := validate.Module(m); err != nil {
			return nil, nil, fmt.Errorf("core: input module invalid: %w", err)
		}
	}
	// The generated hook imports live under HookModule; a program that
	// already imports from that namespace would collide with them in the
	// instrumented output.
	for _, imp := range m.Imports {
		if imp.Module == HookModule {
			return nil, nil, fmt.Errorf("%w: input module imports %q.%q (namespace %q)", ErrHookNamespaceImport, imp.Module, imp.Name, HookModule)
		}
	}

	out := copyModule(m)
	numOldImports := m.NumImportedFuncs()
	hooks := newHookRegistry(uint32(m.NumFuncs()))

	// Pre-pass: assign deterministic br_table metadata index ranges per
	// function so parallel workers need no coordination.
	brBase := make([]int, len(m.Funcs))
	totalBrTables := 0
	for i := range m.Funcs {
		brBase[i] = totalBrTables
		for _, in := range m.Funcs[i].Body {
			if in.Op == wasm.OpBrTable {
				totalBrTables++
			}
		}
	}

	startDefined := -1
	if m.Start != nil && int(*m.Start) >= numOldImports {
		startDefined = int(*m.Start) - numOldImports
	}

	type result struct {
		body      []wasm.Instr
		locals    []wasm.ValType
		brTables  []BrTableInfo
		callSites []uint32
		err       error
	}
	results := make([]result, len(m.Funcs))

	// Fan out over a fixed-size worker pool instead of a goroutine per
	// function: each worker owns one pooled instrumenter whose buffers are
	// reused across all functions it processes. Results are written by
	// function index and hook ordering is finalized by name below, so the
	// output is byte-identical regardless of scheduling (including par == 1).
	par := opts.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(m.Funcs) {
		par = len(m.Funcs)
	}
	work := func(fi *funcInstrumenter, next *atomic.Int64) {
		for {
			i := int(next.Add(1)) - 1
			if i >= len(m.Funcs) {
				return
			}
			body, locals, brs, calls, err := fi.instrumentFunc(i, i == startDefined, brBase[i], opts.Plan)
			results[i] = result{body, locals, brs, calls, err}
		}
	}
	var next atomic.Int64
	if par <= 1 {
		fi := acquireInstrumenter(m, opts.Hooks, hooks)
		work(fi, &next)
		releaseInstrumenter(fi)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < par; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				fi := acquireInstrumenter(m, opts.Hooks, hooks)
				work(fi, &next)
				releaseInstrumenter(fi)
			}()
		}
		wg.Wait()
	}

	brTables := make([]BrTableInfo, totalBrTables)
	for i := range results {
		if results[i].err != nil {
			return nil, nil, results[i].err
		}
		out.Funcs[i].Body = results[i].body
		out.Funcs[i].Locals = append(out.Funcs[i].Locals, results[i].locals...)
		copy(brTables[brBase[i]:], results[i].brTables)
	}

	// Finalize the hook registry: sort hooks by name for deterministic
	// output and compute the placeholder→final permutation.
	specs, perm := hooks.finalize()
	k := len(specs)

	// Splice hook imports after the original imports and remap all function
	// indices: original defined functions shift by k; placeholders map into
	// the new import range.
	hookImports := make([]wasm.Import, 0, k)
	for i := range specs {
		ti := out.AddType(specs[i].WasmType())
		hookImports = append(hookImports, wasm.Import{
			Module: HookModule, Name: specs[i].Name, Kind: wasm.ExternFunc, TypeIdx: ti,
		})
	}
	// Imports must keep their relative order; hook (function) imports go at
	// the end, which keeps all original import indices stable.
	out.Imports = append(out.Imports, hookImports...)

	base := uint32(m.NumFuncs())
	remap := func(idx uint32) uint32 {
		switch {
		case idx >= base: // hook placeholder
			return uint32(numOldImports) + perm[idx-base]
		case int(idx) >= numOldImports: // original defined function
			return idx + uint32(k)
		default: // original imported function
			return idx
		}
	}
	// The instrumenter recorded the body index of every call it emitted, so
	// the remap pass touches exactly those instructions instead of rescanning
	// every (hook-call-dense) instrumented body.
	for fi := range out.Funcs {
		body := out.Funcs[fi].Body
		for _, ii := range results[fi].callSites {
			body[ii].Idx = remap(body[ii].Idx)
		}
	}
	for ei := range out.Elems {
		funcs := make([]uint32, len(out.Elems[ei].Funcs))
		for j, f := range out.Elems[ei].Funcs {
			funcs[j] = remap(f)
		}
		out.Elems[ei].Funcs = funcs
	}
	for xi := range out.Exports {
		if out.Exports[xi].Kind == wasm.ExternFunc {
			out.Exports[xi].Idx = remap(out.Exports[xi].Idx)
		}
	}
	if out.Start != nil {
		s := remap(*out.Start)
		out.Start = &s
	}
	if len(out.FuncNames) > 0 {
		names := make(map[uint32]string, len(out.FuncNames))
		for idx, name := range out.FuncNames {
			names[remap(idx)] = name
		}
		out.FuncNames = names
	}

	md := &Metadata{
		Hooks:            specs,
		BrTables:         brTables,
		HookSet:          opts.Hooks,
		NumImportedFuncs: numOldImports,
		NumHooks:         k,
		Info:             buildModuleInfo(m),
	}
	return out, md, nil
}

// buildModuleInfo extracts the static module information analyses receive,
// expressed in the ORIGINAL function index space.
func buildModuleInfo(m *wasm.Module) analysis.ModuleInfo {
	n := m.NumFuncs()
	info := analysis.ModuleInfo{
		FuncTypes:        make([]wasm.FuncType, n),
		FuncNames:        make([]string, n),
		NumImportedFuncs: m.NumImportedFuncs(),
		NumGlobals:       m.NumImportedGlobals() + len(m.Globals),
		Exports:          make(map[string]uint32),
		Start:            -1,
	}
	for i := 0; i < n; i++ {
		ft, err := m.FuncType(uint32(i))
		if err == nil {
			info.FuncTypes[i] = ft
		}
		info.FuncNames[i] = m.FuncName(uint32(i))
	}
	for _, e := range m.Exports {
		if e.Kind == wasm.ExternFunc {
			info.Exports[e.Name] = e.Idx
		}
	}
	if m.Start != nil {
		info.Start = int(*m.Start)
	}
	return info
}

// copyModule makes a copy of m deep enough that instrumentation never
// mutates the input: all top-level slices are copied; instruction slices of
// function bodies are replaced wholesale by the instrumenter.
func copyModule(m *wasm.Module) *wasm.Module {
	out := &wasm.Module{
		Types:    append([]wasm.FuncType(nil), m.Types...),
		Imports:  append([]wasm.Import(nil), m.Imports...),
		Funcs:    make([]wasm.Func, len(m.Funcs)),
		Tables:   append([]wasm.Limits(nil), m.Tables...),
		Memories: append([]wasm.Limits(nil), m.Memories...),
		Globals:  append([]wasm.Global(nil), m.Globals...),
		Exports:  append([]wasm.Export(nil), m.Exports...),
		Elems:    append([]wasm.ElemSegment(nil), m.Elems...),
		Datas:    append([]wasm.DataSegment(nil), m.Datas...),
		Customs:  append([]wasm.CustomSection(nil), m.Customs...),
	}
	for i := range m.Funcs {
		out.Funcs[i] = wasm.Func{
			TypeIdx: m.Funcs[i].TypeIdx,
			Locals:  append([]wasm.ValType(nil), m.Funcs[i].Locals...),
			Body:    m.Funcs[i].Body, // replaced by the instrumenter
			// The instrumenter preserves br_table instructions verbatim, so
			// their spans keep pointing into the original (read-only) pool.
			BrTargets: m.Funcs[i].BrTargets,
		}
	}
	if m.Start != nil {
		s := *m.Start
		out.Start = &s
	}
	if m.FuncNames != nil {
		out.FuncNames = make(map[uint32]string, len(m.FuncNames))
		for k, v := range m.FuncNames {
			out.FuncNames[k] = v
		}
	}
	return out
}
