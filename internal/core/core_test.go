package core

import (
	"strings"
	"testing"

	"wasabi/internal/analysis"
	"wasabi/internal/binary"
	"wasabi/internal/builder"
	"wasabi/internal/validate"
	"wasabi/internal/wasm"
)

// buildCallModule: an import, two defined functions, an indirect call, an
// export, elem segment, and a start function — everything the index
// remapping must handle.
func buildCallModule() *wasm.Module {
	b := builder.New()
	host := b.ImportFunc("env", "host", builder.Sig(builder.V(wasm.I32), nil))
	b.Table(2)
	b.Memory(1)

	leaf := b.Func("leaf", builder.V(wasm.I32), builder.V(wasm.I32))
	leaf.Get(0).I32(1).Op(wasm.OpI32Add)
	leaf.Done()

	b.Elem(0, leaf.Index)

	main := b.Func("main", builder.V(wasm.I32), builder.V(wasm.I32))
	main.Get(0).Call(host)
	main.Get(0).Call(leaf.Index)
	main.Get(0).I32(0).CallIndirect(builder.V(wasm.I32), builder.V(wasm.I32))
	main.Op(wasm.OpI32Add)
	main.Done()

	setup := b.Func("", nil, nil)
	setup.Op(wasm.OpNop)
	b.Start(setup.Done())
	return b.Build()
}

func TestIndexRemapping(t *testing.T) {
	m := buildCallModule()
	out, md, err := Instrument(m, Options{Hooks: analysis.AllHooks})
	if err != nil {
		t.Fatal(err)
	}
	if err := validate.Module(out); err != nil {
		t.Fatalf("instrumented module invalid: %v", err)
	}
	k := md.NumHooks
	if k == 0 {
		t.Fatal("no hooks generated")
	}
	// Hook imports sit right after the original import.
	if len(out.Imports) != 1+k {
		t.Fatalf("imports: %d, want %d", len(out.Imports), 1+k)
	}
	if out.Imports[0].Name != "host" {
		t.Error("original import not first")
	}
	for _, imp := range out.Imports[1:] {
		if imp.Module != HookModule {
			t.Errorf("hook import in wrong module %q", imp.Module)
		}
	}
	// Hook import names must be sorted (deterministic output).
	for i := 2; i < len(out.Imports); i++ {
		if out.Imports[i-1].Name > out.Imports[i].Name {
			t.Errorf("hook imports not sorted: %q > %q", out.Imports[i-1].Name, out.Imports[i].Name)
		}
	}
	// Exports shifted by k.
	origLeaf, _ := m.ExportedFunc("leaf")
	newLeaf, _ := out.ExportedFunc("leaf")
	if newLeaf != origLeaf+uint32(k) {
		t.Errorf("leaf export %d, want %d", newLeaf, origLeaf+uint32(k))
	}
	// Elem and start shifted.
	if out.Elems[0].Funcs[0] != m.Elems[0].Funcs[0]+uint32(k) {
		t.Errorf("elem not remapped: %d", out.Elems[0].Funcs[0])
	}
	if *out.Start != *m.Start+uint32(k) {
		t.Errorf("start not remapped: %d", *out.Start)
	}
	// Metadata reverse mapping.
	if got := md.OriginalFuncIdx(int(newLeaf)); got != int(origLeaf) {
		t.Errorf("OriginalFuncIdx(%d) = %d, want %d", newLeaf, got, origLeaf)
	}
	if got := md.OriginalFuncIdx(0); got != 0 {
		t.Errorf("imported function should map to itself, got %d", got)
	}
}

func TestDeterministicOutput(t *testing.T) {
	m := buildCallModule()
	enc := func(par int) []byte {
		out, _, err := Instrument(m, Options{Hooks: analysis.AllHooks, Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		data, err := binary.Encode(out)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	first := enc(1)
	for i := 0; i < 4; i++ {
		if string(enc(4)) != string(first) {
			t.Fatal("parallel instrumentation produced different bytes than sequential")
		}
	}
}

func TestInputModuleUnmodified(t *testing.T) {
	m := buildCallModule()
	before, err := binary.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Instrument(m, Options{Hooks: analysis.AllHooks}); err != nil {
		t.Fatal(err)
	}
	after, err := binary.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Error("Instrument mutated its input module")
	}
}

func TestSelectivityPerKind(t *testing.T) {
	m := buildCallModule()
	baseline := m.CountInstrs()
	// Each single-kind instrumentation must touch only matching call sites:
	// instrumenting loads in a module without loads must be a no-op.
	out, md, err := Instrument(m, Options{Hooks: analysis.Set(analysis.KindLoad)})
	if err != nil {
		t.Fatal(err)
	}
	if out.CountInstrs() != baseline || md.NumHooks != 0 {
		t.Errorf("load-instrumenting a loadless module changed it: %d instrs, %d hooks",
			out.CountInstrs(), md.NumHooks)
	}
	// Call instrumentation must generate pre+post hooks for each signature
	// (direct [i32]->[], [i32]->[i32]; indirect [i32]->[i32]).
	_, md, err = Instrument(m, Options{Hooks: analysis.Set(analysis.KindCall)})
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, h := range md.Hooks {
		names = append(names, h.Name)
	}
	// call_pre is monomorphized on parameter types only, so the [i32]->[]
	// and [i32]->[i32] callees share call_pre_i32; the result types split
	// call_post into two variants.
	want := []string{"call_post", "call_post_i32", "call_pre_i32", "call_pre_indirect_i32"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Errorf("call hooks = %v, want %v", names, want)
	}
}

func TestOnDemandMonomorphization(t *testing.T) {
	// A module with i64 and f64 drops gets exactly two drop hook variants.
	b := builder.New()
	f := b.Func("f", nil, nil)
	f.I64(1).Drop()
	f.F64(1).Drop()
	f.I64(2).Drop()
	f.Done()
	m := b.Build()
	_, md, err := Instrument(m, Options{Hooks: analysis.Set(analysis.KindDrop)})
	if err != nil {
		t.Fatal(err)
	}
	if md.NumHooks != 2 {
		t.Fatalf("expected 2 monomorphic drop hooks, got %d: %+v", md.NumHooks, md.Hooks)
	}
	seen := map[string]bool{}
	for _, h := range md.Hooks {
		seen[h.Name] = true
	}
	if !seen["drop_i64"] || !seen["drop_f64"] {
		t.Errorf("wrong drop variants: %v", seen)
	}
}

func TestHookImportSignaturesAreHostCompatible(t *testing.T) {
	// No generated hook import may take an i64 parameter: i64 values must
	// cross the host boundary as two i32 halves (paper §2.4.6).
	b := builder.New()
	f := b.Func("f", builder.V(wasm.I64), builder.V(wasm.I64))
	g := b.GlobalI64(true, 5)
	f.Get(0).I64(3).Op(wasm.OpI64Mul)
	f.GGet(g).Op(wasm.OpI64Add).GSet(g)
	f.GGet(g)
	f.Done()
	m := b.Build()
	out, md, err := Instrument(m, Options{Hooks: analysis.AllHooks})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range md.Hooks {
		wt := h.WasmType()
		for _, p := range wt.Params {
			if p == wasm.I64 {
				t.Errorf("hook %s has i64 parameter: %s", h.Name, wt)
			}
		}
		if len(wt.Results) != 0 {
			t.Errorf("hook %s has results: %s", h.Name, wt)
		}
	}
	if err := validate.Module(out); err != nil {
		t.Fatal(err)
	}
}

func TestBrTableMetadata(t *testing.T) {
	b := builder.New()
	f := b.Func("f", builder.V(wasm.I32), nil)
	f.Block()                    // instr 0, end at ...
	f.Loop()                     // instr 1
	f.Block()                    // instr 2
	f.Get(0)                     // 3
	f.BrTable([]uint32{0, 1}, 2) // 4: targets inner block, loop, outer block
	f.End()                      // 5
	f.Br(1)                      // 6 (avoid infinite loop)
	f.End()                      // 7
	f.End()                      // 8
	f.Done()
	m := b.Build()
	_, md, err := Instrument(m, Options{Hooks: analysis.AllHooks})
	if err != nil {
		t.Fatal(err)
	}
	if len(md.BrTables) != 1 {
		t.Fatalf("br_table records: %d", len(md.BrTables))
	}
	info := md.BrTables[0]
	if info.Loc.Instr != 4 {
		t.Errorf("br_table loc = %v", info.Loc)
	}
	if len(info.Targets) != 2 {
		t.Fatalf("targets: %d", len(info.Targets))
	}
	// Label 0 → inner block → lands after its end (instr 6), leaves 1 block.
	if info.Targets[0].Instr != 6 || len(info.Targets[0].Ends) != 1 {
		t.Errorf("target 0: %+v", info.Targets[0])
	}
	// Label 1 → loop → back edge to instr 2, leaves 2 blocks (block+loop).
	if info.Targets[1].Instr != 2 || len(info.Targets[1].Ends) != 2 {
		t.Errorf("target 1: %+v", info.Targets[1])
	}
	// Default label 2 → outer block → after instr 8, leaves 3 blocks.
	if info.Default.Instr != 9 || len(info.Default.Ends) != 3 {
		t.Errorf("default: %+v", info.Default)
	}
	// Ends are innermost-first.
	if info.Default.Ends[0].Kind != analysis.BlockBlock ||
		info.Default.Ends[1].Kind != analysis.BlockLoop ||
		info.Default.Ends[2].Kind != analysis.BlockBlock {
		t.Errorf("end order: %+v", info.Default.Ends)
	}
}

func TestDeadCodeNotInstrumented(t *testing.T) {
	b := builder.New()
	f := b.Func("f", nil, builder.V(wasm.I32))
	f.I32(1)
	f.Return()
	// Dead code below: must not be instrumented (no hooks can ever fire,
	// and stack types are polymorphic there).
	f.I32(2).I32(3).Op(wasm.OpI32Add).Drop()
	f.I32(9)
	f.Done()
	m := b.Build()
	out, _, err := Instrument(m, Options{Hooks: analysis.AllHooks})
	if err != nil {
		t.Fatal(err)
	}
	if err := validate.Module(out); err != nil {
		t.Fatalf("instrumented dead code invalid: %v", err)
	}
	// The live const 1 gets a hook call; the dead consts must not.
	calls := 0
	deadConstHooked := false
	body := out.Funcs[0].Body
	for i, in := range body {
		if in.Op == wasm.OpCall {
			calls++
		}
		if in.Op == wasm.OpI32Const && in.ConstI32() == 2 && i+1 < len(body) {
			// The next instructions should be the original i32.const 3.
			if body[i+1].Op != wasm.OpI32Const || body[i+1].ConstI32() != 3 {
				deadConstHooked = true
			}
		}
	}
	if calls == 0 {
		t.Error("live code not instrumented")
	}
	if deadConstHooked {
		t.Error("dead code was instrumented")
	}
}

func TestInvalidInputRejected(t *testing.T) {
	b := builder.New()
	f := b.Func("f", nil, builder.V(wasm.I32))
	f.Op(wasm.OpI32Add) // underflow
	f.Done()
	if _, _, err := Instrument(b.Build(), Options{Hooks: analysis.AllHooks}); err == nil {
		t.Error("expected invalid input to be rejected")
	}
}

func TestControlMatches(t *testing.T) {
	body := []wasm.Instr{
		wasm.BlockInstr(wasm.BlockEmpty), // 0
		wasm.LoopInstr(wasm.BlockEmpty),  // 1
		wasm.I32Const(1),                 // 2
		wasm.IfInstr(wasm.BlockEmpty),    // 3
		{Op: wasm.OpElse},                // 4
		wasm.End(),                       // 5 (if)
		wasm.End(),                       // 6 (loop)
		wasm.End(),                       // 7 (block)
		wasm.End(),                       // 8 (function)
	}
	matchEnd, matchElse, err := controlMatches(body)
	if err != nil {
		t.Fatal(err)
	}
	if matchEnd[0] != 7 || matchEnd[1] != 6 || matchEnd[3] != 5 {
		t.Errorf("matchEnd: %v", matchEnd)
	}
	if matchElse[3] != 4 {
		t.Errorf("matchElse: %v", matchElse)
	}
	if matchEnd[4] != 5 {
		t.Errorf("else shares the if's end: %v", matchEnd)
	}

	if _, _, err := controlMatches([]wasm.Instr{wasm.BlockInstr(wasm.BlockEmpty), wasm.End()}); err == nil {
		t.Error("missing function end not detected")
	}
	if _, _, err := controlMatches([]wasm.Instr{{Op: wasm.OpElse}, wasm.End()}); err == nil {
		t.Error("stray else not detected")
	}
}

func TestScratchAllocReuse(t *testing.T) {
	var a scratchAlloc
	a.reset(3)
	x := a.take(wasm.I32)
	y := a.take(wasm.I32)
	z := a.take(wasm.F64)
	if x == y {
		t.Error("same-instruction takes must differ")
	}
	if x != 3 || y != 4 || z != 5 {
		t.Errorf("indices: %d %d %d", x, y, z)
	}
	a.release()
	if got := a.take(wasm.I32); got != x {
		t.Errorf("after release, i32 scratch should be reused: %d", got)
	}
	if len(a.types) != 3 {
		t.Errorf("pool size %d, want 3", len(a.types))
	}
}

func TestHookRegistryConcurrency(t *testing.T) {
	r := newHookRegistry(100)
	done := make(chan map[string]uint32, 8)
	for g := 0; g < 8; g++ {
		go func() {
			got := map[string]uint32{}
			for i := 0; i < 100; i++ {
				for _, op := range []wasm.Opcode{wasm.OpI32Add, wasm.OpF64Mul, wasm.OpI64Xor} {
					s := specBinary(op)
					got[s.Name] = r.get(s)
				}
			}
			done <- got
		}()
	}
	first := <-done
	for g := 1; g < 8; g++ {
		other := <-done
		for k, v := range first {
			if other[k] != v {
				t.Errorf("hook %s got different indices: %d vs %d", k, v, other[k])
			}
		}
	}
	specs, perm := r.finalize()
	if len(specs) != 3 || len(perm) != 3 {
		t.Errorf("finalize: %d specs", len(specs))
	}
	for i := 1; i < len(specs); i++ {
		if specs[i-1].Name > specs[i].Name {
			t.Error("finalize must sort by name")
		}
	}
}
