package core_test

// Tests for the restricted index-remap pass: the instrumenter records the
// body index of every call it emits and the remap pass visits exactly those,
// instead of rescanning every body. These tests pin down that no call site
// escapes the recording, across hooked calls, untouched passthrough calls,
// unreachable calls, and every other index-space consumer (elems, exports,
// start, names).

import (
	"testing"

	"wasabi/internal/analysis"
	"wasabi/internal/builder"
	"wasabi/internal/core"
	"wasabi/internal/interp"
	"wasabi/internal/validate"
	"wasabi/internal/wasm"
)

// remapModule builds a module exercising every call shape the remap pass
// must cover: calls to imports, calls between defined functions, an
// indirect call through a table, a call in statically dead code, and a
// start function that calls.
func remapModule() *wasm.Module {
	b := builder.New()
	hostIdx := b.ImportFunc("env", "host", wasm.FuncType{Params: []wasm.ValType{wasm.I32}})
	b.Table(4)

	double := b.Func("double", builder.V(wasm.I32), builder.V(wasm.I32))
	double.Get(0).I32(2).Op(wasm.OpI32Mul)
	double.Done()

	addone := b.Func("addone", builder.V(wasm.I32), builder.V(wasm.I32))
	addone.Get(0).I32(1).Op(wasm.OpI32Add)
	addone.Done()

	initf := b.Func("init", nil, nil)
	initf.I32(7).Call(hostIdx)
	initf.Done()

	f := b.Func("f", builder.V(wasm.I32), builder.V(wasm.I32))
	f.Get(0).Call(double.Index) // defined → defined
	f.Get(0).Call(hostIdx)      // defined → import
	f.Get(0)                    // argument for the indirect call
	f.Get(0).I32(1).Op(wasm.OpI32And)
	f.CallIndirect(builder.V(wasm.I32), builder.V(wasm.I32))
	f.Op(wasm.OpI32Add)
	f.Return()
	f.Get(0).Call(double.Index) // statically dead call: still remapped
	f.Done()

	b.Elem(0, double.Index, addone.Index)
	b.Start(initf.Index)
	return b.Build()
}

func TestRestrictedRemapCoversEveryCallSite(t *testing.T) {
	m := remapModule()
	sets := []analysis.HookSet{
		0,                              // nothing instrumented: plain passthrough bodies
		analysis.Set(analysis.KindNop), // instrumented, but no call hooks
		analysis.Set(analysis.KindCall),
		analysis.AllHooks,
	}
	for _, set := range sets {
		out, md, err := core.Instrument(m, core.Options{Hooks: set})
		if err != nil {
			t.Fatalf("set %v: %v", set, err)
		}
		// Every call index must be in range and target the declared-type
		// function the validator expects; a missed remap leaves a stale
		// index that validation or the range check below catches.
		if err := validate.Module(out); err != nil {
			t.Fatalf("set %v: instrumented module invalid: %v", set, err)
		}
		numFuncs := out.NumFuncs()
		for fi := range out.Funcs {
			for ii, in := range out.Funcs[fi].Body {
				if in.Op == wasm.OpCall && int(in.Idx) >= numFuncs {
					t.Fatalf("set %v: func %d instr %d: unmapped call index %d (have %d funcs)", set, fi, ii, in.Idx, numFuncs)
				}
			}
		}
		// Placeholder indices live at or above the original function count;
		// after the remap none may remain below the hook-import window only
		// reachable through it. Cross-check behaviorally: the module must run
		// and compute the original result.
		var hostCalls int
		imports := interp.Imports{"env": {"host": &interp.HostFunc{
			Type: wasm.FuncType{Params: []wasm.ValType{wasm.I32}},
			Fn: func(_ *interp.Instance, _ []interp.Value) ([]interp.Value, error) {
				hostCalls++
				return nil, nil
			},
		}}}
		for name, fields := range coreImports(md) {
			imports[name] = fields
		}
		inst, err := interp.Instantiate(out, imports)
		if err != nil {
			t.Fatalf("set %v: %v", set, err)
		}
		// f(6) = double(6) + addone-or-double(6&1=0 → table[0]=double → 12) = 24
		res, err := inst.Invoke("f", interp.I32(6))
		if err != nil {
			t.Fatalf("set %v: invoke: %v", set, err)
		}
		if got := interp.AsI32(res[0]); got != 24 {
			t.Errorf("set %v: f(6) = %d, want 24", set, got)
		}
		// f(3) = 6 + addone(3)=4 → 10
		res, err = inst.Invoke("f", interp.I32(3))
		if err != nil {
			t.Fatalf("set %v: invoke: %v", set, err)
		}
		if got := interp.AsI32(res[0]); got != 10 {
			t.Errorf("set %v: f(3) = %d, want 10", set, got)
		}
		if hostCalls < 3 { // start + two invocations of f
			t.Errorf("set %v: host called %d times, want >= 3 (start remap or call remap lost)", set, hostCalls)
		}
	}
}

// coreImports builds no-op hook imports directly from the metadata, without
// pulling the runtime package into core's tests (import cycle).
func coreImports(md *core.Metadata) interp.Imports {
	fields := make(map[string]any, len(md.Hooks))
	for i := range md.Hooks {
		spec := &md.Hooks[i]
		fields[spec.Name] = &interp.HostFunc{
			Type: spec.WasmType(),
			Fast: func(*interp.Instance, []interp.Value) error { return nil },
		}
	}
	return interp.Imports{core.HookModule: fields}
}
