package core

import (
	"encoding/json"
	"reflect"
	"testing"

	"wasabi/internal/analysis"
)

// TestMetadataJSONRoundTrip: the CLI persists Metadata as JSON (the analogue
// of Wasabi's generated JavaScript glue); everything the runtime needs must
// survive serialization.
func TestMetadataJSONRoundTrip(t *testing.T) {
	m := buildCallModule()
	_, md, err := Instrument(m, Options{Hooks: analysis.AllHooks})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(md)
	if err != nil {
		t.Fatal(err)
	}
	var back Metadata
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.NumHooks != md.NumHooks || back.NumImportedFuncs != md.NumImportedFuncs {
		t.Errorf("counts lost: %+v", back)
	}
	if len(back.Hooks) != len(md.Hooks) {
		t.Fatalf("hooks lost: %d vs %d", len(back.Hooks), len(md.Hooks))
	}
	for i := range md.Hooks {
		if !reflect.DeepEqual(md.Hooks[i], back.Hooks[i]) {
			t.Errorf("hook %d changed: %+v vs %+v", i, md.Hooks[i], back.Hooks[i])
		}
	}
	if len(back.BrTables) != len(md.BrTables) {
		t.Errorf("br_table records changed: %d vs %d", len(back.BrTables), len(md.BrTables))
	}
	for i := range md.BrTables {
		if !reflect.DeepEqual(md.BrTables[i], back.BrTables[i]) {
			t.Errorf("br_table record %d changed", i)
		}
	}
	if back.HookSet != md.HookSet {
		t.Errorf("hook set changed: %v vs %v", back.HookSet, md.HookSet)
	}
}

// TestStartHookFires: the start hook must fire during instantiation, before
// any export is invoked (paper Table 2 footnote: start is one of the 23).
func TestStartHookFires(t *testing.T) {
	m := buildCallModule() // has a start function
	out, md, err := Instrument(m, Options{Hooks: analysis.Set(analysis.KindStart)})
	if err != nil {
		t.Fatal(err)
	}
	if md.NumHooks != 1 || md.Hooks[0].Name != "start" {
		t.Fatalf("hooks: %+v", md.Hooks)
	}
	// The start hook call must be inside the instrumented start function.
	startDefined := int(*out.Start) - (md.NumImportedFuncs + md.NumHooks)
	found := false
	for _, in := range out.Funcs[startDefined].Body {
		if in.Op.String() == "call" && in.Idx == uint32(md.NumImportedFuncs) {
			found = true
		}
	}
	if !found {
		t.Error("start function does not call the start hook")
	}
}
