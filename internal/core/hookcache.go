package core

import (
	"wasabi/internal/analysis"
	"wasabi/internal/wasm"
)

// numBlockKinds is the number of distinct analysis.BlockKind values.
const numBlockKinds = 5

// blockKindIdx maps a BlockKind to a dense index 0..numBlockKinds-1.
func blockKindIdx(k analysis.BlockKind) int {
	switch k {
	case analysis.BlockFunction:
		return 0
	case analysis.BlockBlock:
		return 1
	case analysis.BlockLoop:
		return 2
	case analysis.BlockIf:
		return 3
	default: // analysis.BlockElse
		return 4
	}
}

// fixedHook enumerates the hooks with exactly one monomorphic instance, so
// their cache slot is a plain array element.
type fixedHook uint8

const (
	fhNop fixedHook = iota
	fhUnreachable
	fhStart
	fhIf
	fhBr
	fhBrIf
	fhBrTable
	fhMemorySize
	fhMemoryGrow
	fhBlockProbe
	numFixedHooks
)

func fixedHookSpec(f fixedHook) HookSpec {
	switch f {
	case fhNop:
		return specNop()
	case fhUnreachable:
		return specUnreachable()
	case fhStart:
		return specStart()
	case fhIf:
		return specIf()
	case fhBr:
		return specBr()
	case fhBrIf:
		return specBrIf()
	case fhBrTable:
		return specBrTable()
	case fhMemorySize:
		return specMemorySize()
	case fhMemoryGrow:
		return specMemoryGrow()
	default:
		return specBlockProbe()
	}
}

// hookIdxCache caches resolved hook function indices for one instrumentation
// run, keyed by cheap integers (opcode, dense value-type index, block kind,
// module type index) instead of the hook's monomorphized name. This keeps
// the per-emitted-hook fast path free of string building, slice literals,
// and map hashing: a HookSpec is only constructed on the first use of a hook
// per run, when the shared registry is consulted. Slots store index+1; 0
// means unset.
type hookIdxCache struct {
	byOp   [256]uint32            // unary/binary/load/store hooks (disjoint opcode ranges)
	local  [3][numValTypes]uint32 // local.get/set/tee × value type
	global [2][numValTypes]uint32 // global.get/set × value type
	consts [numValTypes]uint32
	drop   [numValTypes]uint32
	sel    [numValTypes]uint32
	begin  [numBlockKinds]uint32
	end    [numBlockKinds]uint32
	fixed  [numFixedHooks]uint32
	// Call-related hooks are monomorphized on function signatures; the cache
	// key is the module type index. Distinct type indices with identical
	// lowered signatures are deduplicated by the registry, so the cached
	// indices agree.
	callPre    []uint32
	callPreInd []uint32
	callPost   []uint32
	ret        []uint32
}

// reset clears the cache for a run over a module with numTypes types.
func (c *hookIdxCache) reset(numTypes int) {
	c.byOp = [256]uint32{}
	c.local = [3][numValTypes]uint32{}
	c.global = [2][numValTypes]uint32{}
	c.consts = [numValTypes]uint32{}
	c.drop = [numValTypes]uint32{}
	c.sel = [numValTypes]uint32{}
	c.begin = [numBlockKinds]uint32{}
	c.end = [numBlockKinds]uint32{}
	c.fixed = [numFixedHooks]uint32{}
	c.callPre = resetIdxSlice(c.callPre, numTypes)
	c.callPreInd = resetIdxSlice(c.callPreInd, numTypes)
	c.callPost = resetIdxSlice(c.callPost, numTypes)
	c.ret = resetIdxSlice(c.ret, numTypes)
}

func resetIdxSlice(s []uint32, n int) []uint32 {
	if cap(s) < n {
		return make([]uint32, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// The emit helpers below resolve a hook through the cache and emit the call
// instruction. Each constructs the HookSpec only on a cache miss.

func (fi *funcInstrumenter) emitCached(slot *uint32, spec HookSpec) {
	*slot = fi.hooks.get(spec) + 1
	fi.emitCall(wasm.Call(*slot - 1))
}

func (fi *funcInstrumenter) emitFixedHook(f fixedHook) {
	if v := fi.cache.fixed[f]; v != 0 {
		fi.emitCall(wasm.Call(v - 1))
		return
	}
	fi.emitCached(&fi.cache.fixed[f], fixedHookSpec(f))
}

// emitOpHook emits the hook for a unary, binary, load, or store opcode.
func (fi *funcInstrumenter) emitOpHook(op wasm.Opcode) {
	if v := fi.cache.byOp[op]; v != 0 {
		fi.emitCall(wasm.Call(v - 1))
		return
	}
	var spec HookSpec
	switch {
	case op.IsLoad():
		spec = specLoad(op)
	case op.IsStore():
		spec = specStore(op)
	case op.IsUnary():
		spec = specUnary(op)
	default:
		spec = specBinary(op)
	}
	fi.emitCached(&fi.cache.byOp[op], spec)
}

func (fi *funcInstrumenter) emitLocalHook(op wasm.Opcode, t wasm.ValType) {
	slot := &fi.cache.local[op-wasm.OpLocalGet][vtIdx(t)]
	if *slot != 0 {
		fi.emitCall(wasm.Call(*slot - 1))
		return
	}
	fi.emitCached(slot, specLocal(op, t))
}

func (fi *funcInstrumenter) emitGlobalHook(op wasm.Opcode, t wasm.ValType) {
	slot := &fi.cache.global[op-wasm.OpGlobalGet][vtIdx(t)]
	if *slot != 0 {
		fi.emitCall(wasm.Call(*slot - 1))
		return
	}
	fi.emitCached(slot, specGlobal(op, t))
}

func (fi *funcInstrumenter) emitConstHook(t wasm.ValType) {
	slot := &fi.cache.consts[vtIdx(t)]
	if *slot != 0 {
		fi.emitCall(wasm.Call(*slot - 1))
		return
	}
	fi.emitCached(slot, specConst(t))
}

func (fi *funcInstrumenter) emitDropHook(t wasm.ValType) {
	slot := &fi.cache.drop[vtIdx(t)]
	if *slot != 0 {
		fi.emitCall(wasm.Call(*slot - 1))
		return
	}
	fi.emitCached(slot, specDrop(t))
}

func (fi *funcInstrumenter) emitSelectHook(t wasm.ValType) {
	slot := &fi.cache.sel[vtIdx(t)]
	if *slot != 0 {
		fi.emitCall(wasm.Call(*slot - 1))
		return
	}
	fi.emitCached(slot, specSelect(t))
}

func (fi *funcInstrumenter) emitBeginHook(kind analysis.BlockKind) {
	slot := &fi.cache.begin[blockKindIdx(kind)]
	if *slot != 0 {
		fi.emitCall(wasm.Call(*slot - 1))
		return
	}
	fi.emitCached(slot, specBegin(kind))
}

func (fi *funcInstrumenter) emitEndHookCall(kind analysis.BlockKind) {
	slot := &fi.cache.end[blockKindIdx(kind)]
	if *slot != 0 {
		fi.emitCall(wasm.Call(*slot - 1))
		return
	}
	fi.emitCached(slot, specEnd(kind))
}

func (fi *funcInstrumenter) emitCallPreHook(typeIdx uint32, sig wasm.FuncType, indirect bool) {
	cache := &fi.cache.callPre
	if indirect {
		cache = &fi.cache.callPreInd
	}
	slot := &(*cache)[typeIdx]
	if *slot != 0 {
		fi.emitCall(wasm.Call(*slot - 1))
		return
	}
	fi.emitCached(slot, specCallPre(sig, indirect))
}

func (fi *funcInstrumenter) emitCallPostHook(typeIdx uint32, results []wasm.ValType) {
	slot := &fi.cache.callPost[typeIdx]
	if *slot != 0 {
		fi.emitCall(wasm.Call(*slot - 1))
		return
	}
	fi.emitCached(slot, specCallPost(results))
}

// emitReturnHookCall emits the return hook for the current function,
// cached on the function's type index.
func (fi *funcInstrumenter) emitReturnHookCall() {
	slot := &fi.cache.ret[fi.typeIdx]
	if *slot != 0 {
		fi.emitCall(wasm.Call(*slot - 1))
		return
	}
	fi.emitCached(slot, specReturn(fi.sig.Results))
}
