// Package core implements the Wasabi instrumenter, the primary contribution
// of the paper: ahead-of-time binary instrumentation of WebAssembly modules
// that inserts calls to imported low-level analysis hooks between the
// original instructions. It implements selective instrumentation (§2.4.2),
// on-demand monomorphization of polymorphic hooks (§2.4.3), static
// resolution of relative branch labels via an abstract control stack
// (§2.4.4), dynamic block-nesting end hooks (§2.4.5), and i64 splitting for
// the host boundary (§2.4.6).
package core

import (
	"strings"

	"wasabi/internal/analysis"
	"wasabi/internal/wasm"
)

// HookModule is the import module name under which all generated low-level
// hooks are imported.
const HookModule = "wasabi_hooks"

// HookSpec describes one generated low-level hook: its import name, which
// high-level hook kind it dispatches to, the specific opcode (for hooks that
// are monomorphized per instruction, e.g. binary_i32.add), and the logical
// payload types that follow the two i32 location parameters.
//
// The wasm-level signature is derived by lowering the payload: i32, f32, and
// f64 pass through; i64 is split into two i32 halves (lo, hi) because the
// host language of the paper (JavaScript) cannot represent 64-bit integers.
type HookSpec struct {
	Name     string             `json:"name"`
	Kind     analysis.HookKind  `json:"kind"`
	Op       wasm.Opcode        `json:"op,omitempty"`
	Block    analysis.BlockKind `json:"block,omitempty"`
	Types    []wasm.ValType     `json:"types,omitempty"`
	Indirect bool               `json:"indirect,omitempty"`
	Post     bool               `json:"post,omitempty"` // call_post (vs call_pre) for KindCall
}

// WasmType returns the lowered import signature of the hook: two i32
// location parameters followed by the lowered payload, no results.
func (s *HookSpec) WasmType() wasm.FuncType {
	params := []wasm.ValType{wasm.I32, wasm.I32}
	for _, t := range s.Types {
		params = append(params, Lower(t)...)
	}
	return wasm.FuncType{Params: params}
}

// Lower maps one logical value type to its host-boundary representation.
func Lower(t wasm.ValType) []wasm.ValType {
	if t == wasm.I64 {
		return []wasm.ValType{wasm.I32, wasm.I32}
	}
	return []wasm.ValType{t}
}

// typeSuffix builds the monomorphization suffix of a hook name.
func typeSuffix(ts []wasm.ValType) string {
	if len(ts) == 0 {
		return ""
	}
	var sb strings.Builder
	for _, t := range ts {
		sb.WriteByte('_')
		sb.WriteString(t.String())
	}
	return sb.String()
}

// EndInfo describes one block "traversed" by a branch: the runtime must
// report an end hook for it (paper §2.4.5).
type EndInfo struct {
	Kind  analysis.BlockKind `json:"kind"`
	End   int                `json:"end"`   // instruction index of the block's end
	Begin int                `json:"begin"` // instruction index of the block's begin (-1 for function)
}

// ResolvedTarget is a statically resolved branch destination.
type ResolvedTarget struct {
	Label uint32    `json:"label"` // raw relative label
	Instr int       `json:"instr"` // absolute instruction index of the next instruction if taken
	Ends  []EndInfo `json:"ends"`  // blocks left when this branch is taken
}

// BrTableInfo is the instrumentation-time record for one br_table
// instruction. Which entry is taken — and therefore which blocks are left —
// is only known at runtime, so the low-level br_table hook receives an index
// into this table and the runtime selects the entry (paper §2.4.5).
type BrTableInfo struct {
	Loc     analysis.Location `json:"loc"`
	Targets []ResolvedTarget  `json:"targets"`
	Default ResolvedTarget    `json:"default"`
}

// Metadata is everything the Wasabi runtime needs beyond the instrumented
// binary itself: the generated hook table, br_table records, index-space
// bookkeeping, and static module information for the analysis. It is the
// analogue of the JavaScript glue file the original Wasabi generates, and is
// JSON-serializable for the CLI.
type Metadata struct {
	Hooks    []HookSpec       `json:"hooks"`
	BrTables []BrTableInfo    `json:"brTables,omitempty"`
	HookSet  analysis.HookSet `json:"hookSet"`

	// NumImportedFuncs is the original module's imported-function count:
	// hook imports occupy indices [NumImportedFuncs, NumImportedFuncs+NumHooks)
	// in the instrumented index space.
	NumImportedFuncs int `json:"numImportedFuncs"`
	NumHooks         int `json:"numHooks"`

	Info analysis.ModuleInfo `json:"-"`
}

// EventTable builds the decode table of the event-stream surface: one
// EventSpec per generated hook, carrying the kind, interned instruction
// name, block kind, and payload types a stream consumer needs to interpret
// packed Event records. The result is immutable; callers build it once per
// instrumentation and share it across streams.
func (md *Metadata) EventTable() *analysis.EventTable {
	specs := make([]analysis.EventSpec, len(md.Hooks))
	for i := range md.Hooks {
		h := &md.Hooks[i]
		es := analysis.EventSpec{
			Kind:     h.Kind,
			Name:     h.Name,
			Block:    h.Block,
			Types:    h.Types,
			Indirect: h.Indirect,
			Post:     h.Post,
		}
		switch h.Kind {
		case analysis.KindUnary, analysis.KindBinary, analysis.KindLocal,
			analysis.KindGlobal, analysis.KindLoad, analysis.KindStore:
			es.Op = h.OpName()
		}
		specs[i] = es
	}
	return &analysis.EventTable{Specs: specs}
}

// OriginalFuncIdx maps a function index of the instrumented index space back
// to the original one (used when resolving indirect-call targets from the
// runtime table, which holds instrumented indices).
func (md *Metadata) OriginalFuncIdx(instrumented int) int {
	if instrumented < md.NumImportedFuncs {
		return instrumented
	}
	return instrumented - md.NumHooks
}
