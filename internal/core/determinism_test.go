package core

import (
	"bytes"
	"runtime"
	"testing"

	"wasabi/internal/analysis"
	"wasabi/internal/binary"
	"wasabi/internal/synthapp"
)

// TestInstrumentDeterministic asserts the hard determinism contract of the
// worker-pool instrumenter: instrumenting the same module repeatedly — and
// serially vs. with every parallelism level up to GOMAXPROCS — produces
// byte-identical encoded modules. The synthetic app exercises every hook
// family, including br_table metadata and call monomorphization.
func TestInstrumentDeterministic(t *testing.T) {
	m := synthapp.Generate(synthapp.Config{TargetBytes: 64 << 10, Seed: 7})
	enc := func(par int) []byte {
		out, _, err := Instrument(m, Options{Hooks: analysis.AllHooks, Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		data, err := binary.Encode(out)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	serial := enc(1)
	if len(serial) == 0 {
		t.Fatal("empty encoding")
	}
	// Same module twice, serially: identical.
	if !bytes.Equal(serial, enc(1)) {
		t.Fatal("two serial instrumentation runs differ")
	}
	// Serial vs. every worker-pool width, several rounds to shake out
	// scheduling-dependent orderings.
	for par := 2; par <= runtime.GOMAXPROCS(0)+2; par++ {
		for round := 0; round < 3; round++ {
			if !bytes.Equal(serial, enc(par)) {
				t.Fatalf("parallelism %d (round %d) produced different bytes than serial", par, round)
			}
		}
	}
}

// TestInstrumentAllocs guards the allocation budget of the instrumentation
// hot path: after the pooled instrumenter reaches steady state, a full
// instrumentation run of a small kernel must stay within a small per-run
// allocation budget (the escaping outputs — bodies, locals, metadata,
// imports — not per-instruction garbage). The seed implementation spent
// ~1300 allocs on this module; the budget fails the test long before any
// per-instruction allocation pattern could return.
func TestInstrumentAllocs(t *testing.T) {
	m := synthapp.Generate(synthapp.Config{TargetBytes: 8 << 10, Seed: 3})
	opts := Options{Hooks: analysis.AllHooks, SkipValidation: true, Parallelism: 1}
	// Warm the pools and capture the output structure for the budget.
	_, md, err := Instrument(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(10, func() {
		if _, _, err := Instrument(m, opts); err != nil {
			t.Fatal(err)
		}
	})
	// Budget scales with the structures that legitimately escape into the
	// output (bodies, locals, hook imports, br_table metadata), NOT with the
	// instruction count: a per-instruction allocation regression adds at
	// least CountInstrs() (~14k here) and blows far past it. Seed behavior
	// was ~100 allocs per input instruction.
	targets := 0
	for i := range md.BrTables {
		targets += len(md.BrTables[i].Targets) + 1
	}
	budget := float64(10*len(m.Funcs) + 8*md.NumHooks + 6*len(md.BrTables) + 2*targets + 300)
	if avg > budget {
		t.Errorf("Instrument allocates %.0f/run, budget %.0f (funcs=%d hooks=%d brTables=%d)",
			avg, budget, len(m.Funcs), md.NumHooks, len(md.BrTables))
	}
	if lo := budget / 2; avg > lo {
		t.Logf("note: %.0f allocs/run is above half the budget (%.0f); investigate before it regresses further", avg, lo)
	}
}
