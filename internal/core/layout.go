package core

import "wasabi/internal/wasm"

// ArgLayout is the precomputed shape of one hook's lowered argument vector:
// the total lowered word count (including the two i32 location words every
// hook receives first) and, for each logical payload value in HookSpec.Types,
// its word offset within the vector. i64 payload values occupy two words
// (lo at Offs[i], hi at Offs[i]+1, paper §2.4.6); all other types one.
//
// The runtime's trampoline builder captures this once at bind time, so the
// per-call fast path re-joins i64 halves with precomputed offsets instead of
// walking the vector through an argReader.
type ArgLayout struct {
	Arity int   // lowered words, including the two location words
	Offs  []int // lowered word offset of each HookSpec.Types entry
}

// Layout computes the lowered argument layout of the hook. The result is
// freshly allocated; callers bind it once, not per call.
func (s *HookSpec) Layout() ArgLayout {
	offs := make([]int, len(s.Types))
	n := 2 // the two location words
	for i, t := range s.Types {
		offs[i] = n
		if t == wasm.I64 {
			n += 2
		} else {
			n++
		}
	}
	return ArgLayout{Arity: n, Offs: offs}
}

// OpName returns the interned instruction name of op-carrying hooks (unary,
// binary, load, store, local, global). The returned string header points at
// the opcode name table, so capturing it in a trampoline closure at bind time
// costs nothing per call.
func (s *HookSpec) OpName() string { return s.Op.String() }
