package static

// dominators computes immediate dominators of the CFG's reachable blocks
// with the Cooper–Harvey–Kennedy iterative algorithm over a reverse
// postorder. Idom[0] = 0 (the entry dominates itself by convention);
// unreachable blocks get -1.
func dominators(g *CFG) []int {
	n := len(g.Blocks)
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	if n == 0 {
		return idom
	}

	// Reverse postorder of the reachable subgraph (iterative DFS).
	post := make([]int, 0, n)
	state := make([]uint8, n) // 0 unvisited, 1 on stack, 2 done
	type dfsFrame struct{ b, next int }
	stack := []dfsFrame{{b: 0}}
	state[0] = 1
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		succs := g.Blocks[top.b].Succs
		if top.next < len(succs) {
			s := succs[top.next]
			top.next++
			if state[s] == 0 {
				state[s] = 1
				stack = append(stack, dfsFrame{b: s})
			}
			continue
		}
		state[top.b] = 2
		post = append(post, top.b)
		stack = stack[:len(stack)-1]
	}
	rpo := make([]int, 0, len(post))
	for i := len(post) - 1; i >= 0; i-- {
		rpo = append(rpo, post[i])
	}
	rpoNum := make([]int, n)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, b := range rpo {
		rpoNum[b] = i
	}

	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = idom[b]
			}
		}
		return a
	}

	idom[0] = 0
	for changed := true; changed; {
		changed = false
		for _, b := range rpo[1:] {
			newIdom := -1
			for _, p := range g.Blocks[b].Preds {
				if rpoNum[p] < 0 || idom[p] < 0 {
					continue // unreachable or not yet processed
				}
				if newIdom < 0 {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom >= 0 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether block a dominates block b (both must be
// reachable; every block dominates itself).
func (g *CFG) Dominates(a, b int) bool {
	if a < 0 || b < 0 || a >= len(g.Blocks) || b >= len(g.Blocks) ||
		!g.Reachable[a] || !g.Reachable[b] {
		return false
	}
	for {
		if b == a {
			return true
		}
		if b == 0 {
			return false
		}
		b = g.Idom[b]
		if b < 0 {
			return false
		}
	}
}
