package static

import (
	"fmt"

	"wasabi/internal/analysis"
	"wasabi/internal/core"
	"wasabi/internal/wasm"
)

// FuncAnalysis bundles the per-function results.
type FuncAnalysis struct {
	CFG   *CFG
	Facts *FuncFacts
}

// ModuleAnalysis is the full static profile of a module: one CFG + dataflow
// result per defined function, and the module-level call graph.
type ModuleAnalysis struct {
	Mod   *wasm.Module
	Graph *CallGraph
	Funcs []FuncAnalysis // indexed by DEFINED function index
}

// Analyze runs the whole static-analysis pipeline over a decoded module. It
// assumes a structurally decodable module but not a validated one: malformed
// bodies fail with positioned errors, never panics.
func Analyze(m *wasm.Module) (*ModuleAnalysis, error) {
	cg, err := BuildCallGraph(m)
	if err != nil {
		return nil, err
	}
	ma := &ModuleAnalysis{Mod: m, Graph: cg, Funcs: make([]FuncAnalysis, len(m.Funcs))}
	numImports := m.NumImportedFuncs()
	for di := range m.Funcs {
		f := &m.Funcs[di]
		if int(f.TypeIdx) >= len(m.Types) {
			return nil, fmt.Errorf("static: func %d: type index %d out of range", numImports+di, f.TypeIdx)
		}
		g, err := FuncCFG(f)
		if err != nil {
			return nil, fmt.Errorf("static: func %d: %w", numImports+di, err)
		}
		facts, err := FuncDataflow(m, m.Types[f.TypeIdx], f, g)
		if err != nil {
			return nil, fmt.Errorf("static: func %d: %w", numImports+di, err)
		}
		ma.Funcs[di] = FuncAnalysis{CFG: g, Facts: facts}
	}
	return ma, nil
}

// Plan derives the instrumentation plan: functions unreachable from
// exports/start are skipped outright, and when hooks selects
// analysis.KindBlockProbe every CFG-reachable basic block of the remaining
// functions gets one probe.
func (ma *ModuleAnalysis) Plan(hooks analysis.HookSet) *core.Plan {
	numImports := ma.Mod.NumImportedFuncs()
	p := &core.Plan{SkipFunc: make([]bool, len(ma.Funcs))}
	for di := range ma.Funcs {
		p.SkipFunc[di] = !ma.Graph.Reachable[numImports+di]
	}
	if hooks.Has(analysis.KindBlockProbe) {
		p.Blocks = make([][]core.BlockSpan, len(ma.Funcs))
		for di := range ma.Funcs {
			if p.SkipFunc[di] {
				continue
			}
			g := ma.Funcs[di].CFG
			spans := make([]core.BlockSpan, 0, len(g.Blocks))
			for b := range g.Blocks {
				if g.Reachable[b] {
					spans = append(spans, g.Blocks[b].Span())
				}
			}
			p.Blocks[di] = spans
		}
	}
	return p
}

// PlanFor is the one-call path the engine uses: analyze m and derive the
// elision plan for the given hook set.
func PlanFor(m *wasm.Module, hooks analysis.HookSet) (*core.Plan, error) {
	ma, err := Analyze(m)
	if err != nil {
		return nil, err
	}
	return ma.Plan(hooks), nil
}

// FuncProfile is one function's row in the module profile.
type FuncProfile struct {
	Idx       int    `json:"idx"`
	Name      string `json:"name,omitempty"`
	Dead      bool   `json:"dead,omitempty"`
	Blocks    int    `json:"blocks"`
	Reachable int    `json:"reachable_blocks"`
	MaxStack  int    `json:"max_stack"`
}

// IndirectSite is one call_indirect instruction's static fan-out.
type IndirectSite struct {
	Func   int `json:"func"`
	FanOut int `json:"fan_out"`
}

// Profile is the module's static profile, the data behind `wasabi -inspect`.
type Profile struct {
	NumFuncs      int            `json:"num_funcs"`
	NumImports    int            `json:"num_imports"`
	DeadFuncs     []uint32       `json:"dead_funcs"`
	TableFuncs    int            `json:"table_funcs"`
	Funcs         []FuncProfile  `json:"funcs"`
	IndirectSites []IndirectSite `json:"indirect_sites,omitempty"`
}

// Profile assembles the report-surface view of the analysis.
func (ma *ModuleAnalysis) Profile() *Profile {
	numImports := ma.Mod.NumImportedFuncs()
	p := &Profile{
		NumFuncs:   ma.Mod.NumFuncs(),
		NumImports: numImports,
		DeadFuncs:  ma.Graph.DeadFuncs(),
		TableFuncs: len(ma.Graph.TableFuncs),
	}
	for di := range ma.Funcs {
		idx := numImports + di
		fa := &ma.Funcs[di]
		p.Funcs = append(p.Funcs, FuncProfile{
			Idx:       idx,
			Name:      ma.Mod.FuncName(uint32(idx)),
			Dead:      !ma.Graph.Reachable[idx],
			Blocks:    len(fa.CFG.Blocks),
			Reachable: fa.CFG.NumReachable(),
			MaxStack:  fa.Facts.MaxStack,
		})
		for _, fan := range ma.Graph.IndirectSites[idx] {
			p.IndirectSites = append(p.IndirectSites, IndirectSite{Func: idx, FanOut: fan})
		}
	}
	return p
}
