package static

import (
	"fmt"
	"sort"

	"wasabi/internal/wasm"
)

// CallGraph is the static call graph over the module's function index space
// (imports first, then defined functions). Direct edges come from `call`
// instructions; indirect edges are the type-matched over-approximation of
// `call_indirect`: any function placed in a table by an element segment
// whose type equals the call's declared type is a possible callee.
type CallGraph struct {
	// Callees[f] lists f's possible callees (sorted, deduplicated);
	// imported functions have no outgoing edges.
	Callees [][]uint32

	// IndirectSites[f] lists, per call_indirect instruction in f (in body
	// order), how many table functions type-match it (the fan-out).
	IndirectSites [][]int

	// TableFuncs is the sorted set of functions any element segment places
	// in a table.
	TableFuncs []uint32

	// Reachable[f] marks functions reachable from the roots: exported
	// functions, the start function, and — when a table is exported or
	// imported (so the host can call through it) — every table function.
	Reachable []bool
}

// BuildCallGraph computes the call graph and its reachability from
// exports/start. Malformed call instructions surface as errors.
func BuildCallGraph(m *wasm.Module) (*CallGraph, error) {
	n := m.NumFuncs()
	numImports := m.NumImportedFuncs()
	cg := &CallGraph{
		Callees:       make([][]uint32, n),
		IndirectSites: make([][]int, n),
		Reachable:     make([]bool, n),
	}

	// Table functions, grouped by their structural type for call_indirect
	// matching (type indices may alias structurally identical types).
	inTable := map[uint32]bool{}
	for _, seg := range m.Elems {
		for _, f := range seg.Funcs {
			if int(f) >= n {
				return nil, fmt.Errorf("static: element segment references function %d (have %d)", f, n)
			}
			inTable[f] = true
		}
	}
	cg.TableFuncs = make([]uint32, 0, len(inTable))
	for f := range inTable {
		cg.TableFuncs = append(cg.TableFuncs, f)
	}
	sort.Slice(cg.TableFuncs, func(a, b int) bool { return cg.TableFuncs[a] < cg.TableFuncs[b] })

	matchingTableFuncs := func(ti uint32) ([]uint32, error) {
		if int(ti) >= len(m.Types) {
			return nil, fmt.Errorf("call_indirect type index %d out of range", ti)
		}
		want := m.Types[ti]
		var out []uint32
		for _, f := range cg.TableFuncs {
			ft, err := m.FuncType(f)
			if err != nil {
				return nil, err
			}
			if ft.Equal(want) {
				out = append(out, f)
			}
		}
		return out, nil
	}

	for di := range m.Funcs {
		caller := uint32(numImports + di)
		seen := map[uint32]bool{}
		var callees []uint32
		add := func(f uint32) {
			if !seen[f] {
				seen[f] = true
				callees = append(callees, f)
			}
		}
		for pc, in := range m.Funcs[di].Body {
			switch in.Op {
			case wasm.OpCall:
				if int(in.Idx) >= n {
					return nil, fmt.Errorf("static: func %d instr %d: call target %d out of range (have %d)", caller, pc, in.Idx, n)
				}
				add(in.Idx)
			case wasm.OpCallIndirect:
				targets, err := matchingTableFuncs(in.Idx)
				if err != nil {
					return nil, fmt.Errorf("static: func %d instr %d: %w", caller, pc, err)
				}
				cg.IndirectSites[caller] = append(cg.IndirectSites[caller], len(targets))
				for _, t := range targets {
					add(t)
				}
			}
		}
		sort.Slice(callees, func(a, b int) bool { return callees[a] < callees[b] })
		cg.Callees[caller] = callees
	}

	// Roots: exports, start, and table functions when the host can reach the
	// table (an exported or imported table makes every entry host-callable).
	var work []uint32
	mark := func(f uint32) {
		if int(f) < n && !cg.Reachable[f] {
			cg.Reachable[f] = true
			work = append(work, f)
		}
	}
	for _, e := range m.Exports {
		if e.Kind == wasm.ExternFunc {
			if int(e.Idx) >= n {
				return nil, fmt.Errorf("static: export %q references function %d (have %d)", e.Name, e.Idx, n)
			}
			mark(e.Idx)
		}
	}
	if m.Start != nil {
		mark(*m.Start)
	}
	tableVisible := false
	for _, e := range m.Exports {
		if e.Kind == wasm.ExternTable {
			tableVisible = true
		}
	}
	for _, imp := range m.Imports {
		if imp.Kind == wasm.ExternTable {
			tableVisible = true
		}
	}
	if tableVisible {
		for _, f := range cg.TableFuncs {
			mark(f)
		}
	}
	for len(work) > 0 {
		f := work[len(work)-1]
		work = work[:len(work)-1]
		for _, callee := range cg.Callees[f] {
			mark(callee)
		}
	}
	return cg, nil
}

// DeadFuncs returns the function indices (whole index space) not reachable
// from the roots, sorted.
func (cg *CallGraph) DeadFuncs() []uint32 {
	var dead []uint32
	for f, r := range cg.Reachable {
		if !r {
			dead = append(dead, uint32(f))
		}
	}
	return dead
}
