package static

import (
	"fmt"

	"wasabi/internal/wasm"
)

// BitSet is a dense bitset over local indices.
type BitSet []uint64

func newBitSet(n int) BitSet { return make(BitSet, (n+63)/64) }

// Has reports whether bit i is set.
func (s BitSet) Has(i int) bool { return i/64 < len(s) && s[i/64]&(1<<(i%64)) != 0 }

// Set sets bit i.
func (s BitSet) Set(i int) { s[i/64] |= 1 << (i % 64) }

// orAndNot sets s |= a &^ b, reporting whether s changed.
func (s BitSet) orAndNot(a, b BitSet) bool {
	changed := false
	for w := range s {
		v := s[w] | (a[w] &^ b[w])
		if v != s[w] {
			s[w] = v
			changed = true
		}
	}
	return changed
}

// or sets s |= a, reporting whether s changed.
func (s BitSet) or(a BitSet) bool {
	changed := false
	for w := range s {
		if v := s[w] | a[w]; v != s[w] {
			s[w] = v
			changed = true
		}
	}
	return changed
}

// Count returns the number of set bits.
func (s BitSet) Count() int {
	n := 0
	for _, w := range s {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// FuncFacts are the per-function dataflow results: the operand-stack
// high-water mark (computed with exactly the interpreter compiler's height
// algorithm, so the two agree instruction for instruction), per-block entry
// heights and high-waters, and local liveness.
type FuncFacts struct {
	// MaxStack is the operand-stack high-water mark of the body — the exact
	// value interp's compile pass derives, including its dead-code skipping.
	MaxStack int

	// Entry[b] is the operand-stack height when block b is entered; -1 for
	// blocks whose leader is statically dead. High[b] is the maximum height
	// reached inside block b (-1 for dead blocks).
	Entry []int
	High  []int

	// Local liveness per block: Gen (read before written), Kill (written),
	// and the fixpoint LiveIn/LiveOut sets. Bit i is local i (params first).
	Gen, Kill, LiveIn, LiveOut []BitSet

	NumLocals int
}

// dfFrame mirrors the interpreter compiler's control frame: the operand
// height at entry and the result arity, plus whether it is a loop (branches
// to a loop carry no values) or the function frame.
type dfFrame struct {
	op     wasm.Opcode // OpBlock/OpLoop/OpIf/OpElse; OpCall marks the function frame
	height int
	arity  int
}

func (fr *dfFrame) branchArity() int {
	if fr.op == wasm.OpLoop {
		return 0
	}
	return fr.arity
}

// stackSim replays the interpreter compiler's abstract stack-height
// interpretation (interp/compile.go) over a body: same pushes and pops per
// opcode, same dead-code regions (nothing after br/return/unreachable until
// the enclosing frame closes), same frame-height resets at else/end. This
// is deliberately NOT the validator's algorithm — the validator keeps
// simulating pushes inside unreachable code, so its high-water can exceed
// the stack the compiled function actually needs.
type stackSim struct {
	m        *wasm.Module
	nLocals  int
	ctrl     []dfFrame
	height   int
	maxStack int
	dead     bool
	deadSkip int
}

func (c *stackSim) push(n int) {
	c.height += n
	if c.height > c.maxStack {
		c.maxStack = c.height
	}
}

func (c *stackSim) popN(n int) error {
	if c.height-n < c.ctrl[len(c.ctrl)-1].height {
		return fmt.Errorf("operand stack underflow")
	}
	c.height -= n
	return nil
}

func (c *stackSim) markDead() {
	c.dead = true
	c.height = c.ctrl[len(c.ctrl)-1].height
}

func (c *stackSim) beginElse() error {
	fr := &c.ctrl[len(c.ctrl)-1]
	if fr.op != wasm.OpIf {
		return fmt.Errorf("else without matching if")
	}
	if !c.dead && c.height != fr.height+fr.arity {
		return fmt.Errorf("stack height %d at else, want %d", c.height, fr.height+fr.arity)
	}
	fr.op = wasm.OpElse
	c.height = fr.height
	c.dead = false
	c.deadSkip = 0
	return nil
}

func (c *stackSim) endFrame() error {
	fr := &c.ctrl[len(c.ctrl)-1]
	if !c.dead && c.height != fr.height+fr.arity {
		return fmt.Errorf("stack height %d at end, want %d", c.height, fr.height+fr.arity)
	}
	c.height = fr.height + fr.arity
	c.dead = false
	c.deadSkip = 0
	c.ctrl = c.ctrl[:len(c.ctrl)-1]
	return nil
}

// branchTo checks a branch with relative label n, exactly like the
// compiler's compileBr/compileBrTable entry checks. It never changes the
// height — branches only constrain it.
func (c *stackSim) branchTo(n int) error {
	if n >= len(c.ctrl) {
		return fmt.Errorf("branch label %d exceeds control depth %d", n, len(c.ctrl))
	}
	fr := &c.ctrl[len(c.ctrl)-1-n]
	arity := fr.branchArity()
	if arity > 1 {
		return fmt.Errorf("branch carrying %d values (MVP allows at most 1)", arity)
	}
	if c.height < fr.height+arity {
		return fmt.Errorf("branch carries %d values but stack height is %d (target height %d)", arity, c.height, fr.height)
	}
	return nil
}

func (c *stackSim) step(in wasm.Instr, f *wasm.Func) error {
	op := in.Op
	if len(c.ctrl) == 0 {
		return fmt.Errorf("instruction after function-level end")
	}

	if c.dead {
		switch op {
		case wasm.OpBlock, wasm.OpLoop, wasm.OpIf:
			c.deadSkip++
		case wasm.OpElse:
			if c.deadSkip == 0 {
				return c.beginElse()
			}
		case wasm.OpEnd:
			if c.deadSkip > 0 {
				c.deadSkip--
				return nil
			}
			return c.endFrame()
		}
		return nil
	}

	switch op {
	case wasm.OpNop:
	case wasm.OpUnreachable:
		c.markDead()

	case wasm.OpBlock, wasm.OpLoop:
		c.ctrl = append(c.ctrl, dfFrame{op: op, height: c.height, arity: len(in.Block.Results())})
	case wasm.OpIf:
		if err := c.popN(1); err != nil {
			return fmt.Errorf("if condition: %w", err)
		}
		c.ctrl = append(c.ctrl, dfFrame{op: op, height: c.height, arity: len(in.Block.Results())})
	case wasm.OpElse:
		return c.beginElse()
	case wasm.OpEnd:
		return c.endFrame()

	case wasm.OpBr:
		if err := c.branchTo(int(in.Idx)); err != nil {
			return err
		}
		c.markDead()
	case wasm.OpBrIf:
		if err := c.popN(1); err != nil {
			return fmt.Errorf("br_if condition: %w", err)
		}
		if err := c.branchTo(int(in.Idx)); err != nil {
			return err
		}
	case wasm.OpBrTable:
		if err := c.popN(1); err != nil {
			return fmt.Errorf("br_table index: %w", err)
		}
		off, cnt := in.BrTableSpan()
		if off+cnt > len(f.BrTargets) {
			return fmt.Errorf("br_table target span [%d:%d] exceeds pool (%d)", off, off+cnt, len(f.BrTargets))
		}
		for _, t := range in.BrTargets(f.BrTargets) {
			if err := c.branchTo(int(t)); err != nil {
				return err
			}
		}
		if err := c.branchTo(int(in.Idx)); err != nil {
			return err
		}
		c.markDead()
	case wasm.OpReturn:
		if err := c.branchTo(len(c.ctrl) - 1); err != nil {
			return err
		}
		c.markDead()

	case wasm.OpCall:
		ft, err := c.m.FuncType(in.Idx)
		if err != nil {
			return err
		}
		if err := c.popN(len(ft.Params)); err != nil {
			return fmt.Errorf("call %d: %w", in.Idx, err)
		}
		c.push(len(ft.Results))
	case wasm.OpCallIndirect:
		if int(in.Idx) >= len(c.m.Types) {
			return fmt.Errorf("call_indirect type index %d out of range", in.Idx)
		}
		ft := c.m.Types[in.Idx]
		if err := c.popN(1 + len(ft.Params)); err != nil {
			return fmt.Errorf("call_indirect: %w", err)
		}
		c.push(len(ft.Results))

	case wasm.OpDrop:
		if err := c.popN(1); err != nil {
			return fmt.Errorf("drop: %w", err)
		}
	case wasm.OpSelect:
		if err := c.popN(3); err != nil {
			return fmt.Errorf("select: %w", err)
		}
		c.push(1)

	case wasm.OpLocalGet:
		if err := c.checkLocal(in.Idx); err != nil {
			return err
		}
		c.push(1)
	case wasm.OpLocalSet:
		if err := c.checkLocal(in.Idx); err != nil {
			return err
		}
		if err := c.popN(1); err != nil {
			return fmt.Errorf("local.set: %w", err)
		}
	case wasm.OpLocalTee:
		if err := c.checkLocal(in.Idx); err != nil {
			return err
		}
		if err := c.popN(1); err != nil {
			return fmt.Errorf("local.tee: %w", err)
		}
		c.push(1)
	case wasm.OpGlobalGet:
		if _, err := c.m.GlobalType(in.Idx); err != nil {
			return err
		}
		c.push(1)
	case wasm.OpGlobalSet:
		if _, err := c.m.GlobalType(in.Idx); err != nil {
			return err
		}
		if err := c.popN(1); err != nil {
			return fmt.Errorf("global.set: %w", err)
		}

	case wasm.OpMemorySize:
		c.push(1)
	case wasm.OpMemoryGrow:
		if err := c.popN(1); err != nil {
			return fmt.Errorf("memory.grow: %w", err)
		}
		c.push(1)

	case wasm.OpI32Const, wasm.OpI64Const, wasm.OpF32Const, wasm.OpF64Const:
		c.push(1)

	case wasm.OpMiscPrefix:
		if _, _, ok := wasm.MiscTruncSatSig(in.Idx); ok {
			if err := c.popN(1); err != nil {
				return fmt.Errorf("%s: %w", wasm.MiscName(in.Idx), err)
			}
			c.push(1)
		} else {
			// memory.copy / memory.fill: three i32 operands, no result.
			if err := c.popN(3); err != nil {
				return fmt.Errorf("%s: %w", wasm.MiscName(in.Idx), err)
			}
		}

	default:
		switch {
		case op.IsLoad():
			if err := c.popN(1); err != nil {
				return fmt.Errorf("%s address: %w", op, err)
			}
			c.push(1)
		case op.IsStore():
			if err := c.popN(2); err != nil {
				return fmt.Errorf("%s: %w", op, err)
			}
		case op.IsUnary():
			if err := c.popN(1); err != nil {
				return fmt.Errorf("%s: %w", op, err)
			}
			c.push(1)
		case op.IsBinary():
			if err := c.popN(2); err != nil {
				return fmt.Errorf("%s: %w", op, err)
			}
			c.push(1)
		default:
			return fmt.Errorf("unsupported opcode %s", op)
		}
	}
	return nil
}

func (c *stackSim) checkLocal(idx uint32) error {
	if int(idx) >= c.nLocals {
		return fmt.Errorf("local index %d out of range (have %d)", idx, c.nLocals)
	}
	return nil
}

// FuncDataflow runs the stack-height simulation and local-liveness analysis
// over one function body, attributing per-block facts through the CFG.
func FuncDataflow(m *wasm.Module, sig wasm.FuncType, f *wasm.Func, g *CFG) (*FuncFacts, error) {
	nLocals := len(sig.Params) + len(f.Locals)
	nb := len(g.Blocks)
	ff := &FuncFacts{
		Entry:     make([]int, nb),
		High:      make([]int, nb),
		Gen:       make([]BitSet, nb),
		Kill:      make([]BitSet, nb),
		LiveIn:    make([]BitSet, nb),
		LiveOut:   make([]BitSet, nb),
		NumLocals: nLocals,
	}
	for b := 0; b < nb; b++ {
		ff.Entry[b], ff.High[b] = -1, -1
		ff.Gen[b] = newBitSet(nLocals)
		ff.Kill[b] = newBitSet(nLocals)
		ff.LiveIn[b] = newBitSet(nLocals)
		ff.LiveOut[b] = newBitSet(nLocals)
	}

	sim := &stackSim{m: m, nLocals: nLocals}
	sim.ctrl = append(sim.ctrl, dfFrame{op: wasm.OpCall, arity: len(sig.Results)})
	for pc, in := range f.Body {
		b := g.blockAt[pc]
		if g.Blocks[b].Start == pc && !sim.dead {
			ff.Entry[b] = sim.height
			ff.High[b] = sim.height
		}
		if !sim.dead {
			// Liveness gen/kill, over statically live code only.
			switch in.Op {
			case wasm.OpLocalGet:
				if int(in.Idx) < nLocals && !ff.Kill[b].Has(int(in.Idx)) {
					ff.Gen[b].Set(int(in.Idx))
				}
			case wasm.OpLocalSet, wasm.OpLocalTee:
				if int(in.Idx) < nLocals {
					ff.Kill[b].Set(int(in.Idx))
				}
			}
		}
		if err := sim.step(in, f); err != nil {
			return nil, fmt.Errorf("static: instr %d (%s): %w", pc, in.Op, err)
		}
		if !sim.dead && ff.High[b] >= 0 && sim.height > ff.High[b] {
			ff.High[b] = sim.height
		}
	}
	if len(sim.ctrl) != 0 {
		return nil, fmt.Errorf("static: %d unclosed blocks", len(sim.ctrl))
	}
	ff.MaxStack = sim.maxStack

	// Backward liveness fixpoint: LiveOut = ∪ LiveIn(succ);
	// LiveIn = Gen ∪ (LiveOut − Kill).
	for changed := true; changed; {
		changed = false
		for b := nb - 1; b >= 0; b-- {
			for _, s := range g.Blocks[b].Succs {
				if ff.LiveOut[b].or(ff.LiveIn[s]) {
					changed = true
				}
			}
			if ff.LiveIn[b].or(ff.Gen[b]) {
				changed = true
			}
			if ff.LiveIn[b].orAndNot(ff.LiveOut[b], ff.Kill[b]) {
				changed = true
			}
		}
	}
	return ff, nil
}
