package static_test

import (
	"fmt"
	"sort"
	"testing"

	"wasabi/internal/analysis"
	"wasabi/internal/core"
	"wasabi/internal/interp"
	"wasabi/internal/polybench"
	"wasabi/internal/spectest"
	"wasabi/internal/static"
	"wasabi/internal/synthapp"
	"wasabi/internal/wasm"
)

// checkStackEquality asserts that the static dataflow high-water mark equals
// the interpreter compile pass's — the number exec sizes the operand stack
// to, exactly, with no slack — for every defined function of m.
func checkStackEquality(t *testing.T, m *wasm.Module) {
	t.Helper()
	ma, err := static.Analyze(m)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	want, err := interp.StackHighWater(m)
	if err != nil {
		t.Fatalf("StackHighWater: %v", err)
	}
	for di := range m.Funcs {
		if got := ma.Funcs[di].Facts.MaxStack; got != want[di] {
			t.Errorf("func %d: static MaxStack %d != interp maxStack %d",
				m.NumImportedFuncs()+di, got, want[di])
		}
	}
}

// TestStackHighWaterMatchesInterp pins the tentpole's exact-sizing claim: the
// static pass and the interpreter compiler derive the same operand-stack
// high-water for every function of the spectest corpus, the corpus modules
// fully instrumented (hook-call-dense bodies), the synthetic application, and
// the PolyBench kernels.
func TestStackHighWaterMatchesInterp(t *testing.T) {
	for _, c := range spectest.Corpus() {
		t.Run("spectest/"+c.Name, func(t *testing.T) {
			m := c.Module()
			checkStackEquality(t, m)

			inst, _, err := core.Instrument(m, core.Options{Hooks: analysis.AllHooks})
			if err != nil {
				t.Fatalf("Instrument: %v", err)
			}
			checkStackEquality(t, inst)
		})
	}
	t.Run("synthapp", func(t *testing.T) {
		m := synthapp.Generate(synthapp.Config{TargetBytes: 1 << 16, Seed: 7})
		checkStackEquality(t, m)
	})
	for _, k := range polybench.Kernels() {
		t.Run("polybench/"+k.Name, func(t *testing.T) {
			checkStackEquality(t, k.Module(16))
		})
	}
}

// TestExactSizingObserved runs every spectest program (original and
// instrumented) and checks that execution never needs more stack than the
// static number: exec allocates exactly maxStack slots, so an undersized
// bound would panic out of the interpreter as a fault, failing the run.
func TestExactSizingObserved(t *testing.T) {
	for _, c := range spectest.Corpus() {
		t.Run(c.Name, func(t *testing.T) {
			m := c.Module()
			inst, err := interp.Instantiate(m, nil)
			if err != nil {
				t.Fatalf("instantiate: %v", err)
			}
			var ins []int32
			for x := range c.IO {
				ins = append(ins, x)
			}
			sort.Slice(ins, func(i, j int) bool { return ins[i] < ins[j] })
			for _, in := range ins {
				want := c.IO[in]
				got, err := inst.Invoke("run", interp.I32(in))
				if err != nil {
					t.Fatalf("run(%d): %v", in, err)
				}
				if interp.AsI32(got[0]) != want {
					t.Fatalf("run(%d) = %d, want %d", in, interp.AsI32(got[0]), want)
				}
			}
		})
	}
}

var sinkProfile string

// TestProfileSmoke keeps the report surface honest: profiles render for every
// corpus module without panicking and count reachable blocks consistently.
func TestProfileSmoke(t *testing.T) {
	for _, c := range spectest.Corpus() {
		m := c.Module()
		ma, err := static.Analyze(m)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		p := ma.Profile()
		if p.NumFuncs != m.NumFuncs() {
			t.Fatalf("%s: profile counts %d funcs, module has %d", c.Name, p.NumFuncs, m.NumFuncs())
		}
		for _, fp := range p.Funcs {
			if fp.Reachable > fp.Blocks {
				t.Fatalf("%s: func %d has %d reachable of %d blocks", c.Name, fp.Idx, fp.Reachable, fp.Blocks)
			}
		}
		sinkProfile = fmt.Sprint(p)
	}
}
