// Package static is the module-level static-analysis layer: control-flow
// graphs over decoded function bodies, reachability and dominators, a static
// call graph, and per-block dataflow (operand-stack heights, local
// liveness). Its consumers are analysis-aware instrumentation (hook elision
// via core.Plan), exact compile-time operand-stack sizing (asserted against
// the interpreter's own height tracking), and the `wasabi -inspect` report.
// Everything here works on ORIGINAL instruction indices of uninstrumented
// bodies; malformed bodies surface as errors, never panics.
package static

import (
	"fmt"

	"wasabi/internal/core"
	"wasabi/internal/wasm"
)

// Block is one basic block of a function body: a maximal straight-line run
// of instructions [Start, End] (closed range of original instruction
// indices) entered only at Start and left only after End.
type Block struct {
	Start int
	End   int
	Succs []int // successor block ids, deduplicated, in discovery order
	Preds []int
	Exits bool // has an edge to the function exit (return, final end, br to the function label)
}

// Span returns the block as the instrumentation-plan span type.
func (b *Block) Span() core.BlockSpan { return core.BlockSpan{Start: b.Start, End: b.End} }

// CFG is the control-flow graph of one function body. Block 0 is the entry
// block; Reachable marks blocks reachable from it; Idom holds immediate
// dominators (Idom[0] = 0; -1 for unreachable blocks).
type CFG struct {
	Blocks    []Block
	Reachable []bool
	Idom      []int

	// blockAt maps an original instruction index to the id of the block
	// containing it (internal; kept for dataflow and probe planning).
	blockAt []int
}

// BlockOf returns the id of the block containing instruction i, or -1.
func (g *CFG) BlockOf(i int) int {
	if i < 0 || i >= len(g.blockAt) {
		return -1
	}
	return g.blockAt[i]
}

// NumReachable counts the blocks reachable from the entry.
func (g *CFG) NumReachable() int {
	n := 0
	for _, r := range g.Reachable {
		if r {
			n++
		}
	}
	return n
}

// ctrl kinds of the frame stack used while resolving branches.
type frameKind uint8

const (
	frFunc frameKind = iota
	frBlock
	frLoop
	frIf
	frElse
)

type frame struct {
	kind  frameKind
	begin int // opener instruction index; -1 for the function frame
	end   int // matching end instruction index
}

// matches computes, for every block/loop/if/else instruction, the index of
// its matching end (and for ifs the else). It mirrors the instrumenter's
// control-match pass but reports positions in its errors so negative-corpus
// inputs fail with context.
func matches(body []wasm.Instr) (matchEnd, matchElse []int32, err error) {
	matchEnd = make([]int32, len(body))
	matchElse = make([]int32, len(body))
	for i := range body {
		matchEnd[i], matchElse[i] = -1, -1
	}
	type opener struct{ pc, elsePC int }
	var stack []opener
	sawFuncEnd := false
	for pc, in := range body {
		switch in.Op {
		case wasm.OpBlock, wasm.OpLoop, wasm.OpIf:
			stack = append(stack, opener{pc: pc, elsePC: -1})
		case wasm.OpElse:
			if len(stack) == 0 || body[stack[len(stack)-1].pc].Op != wasm.OpIf ||
				stack[len(stack)-1].elsePC >= 0 {
				return nil, nil, fmt.Errorf("static: else without open if at instr %d", pc)
			}
			top := &stack[len(stack)-1]
			top.elsePC = pc
			matchElse[top.pc] = int32(pc)
		case wasm.OpEnd:
			if len(stack) == 0 {
				if pc != len(body)-1 {
					return nil, nil, fmt.Errorf("static: function-level end at instr %d is not final", pc)
				}
				sawFuncEnd = true
				continue
			}
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			matchEnd[top.pc] = int32(pc)
			if top.elsePC >= 0 {
				matchEnd[top.elsePC] = int32(pc)
			}
		}
	}
	if len(stack) != 0 {
		return nil, nil, fmt.Errorf("static: %d unclosed blocks at end of body", len(stack))
	}
	if !sawFuncEnd {
		return nil, nil, fmt.Errorf("static: missing function-level end")
	}
	return matchEnd, matchElse, nil
}

// endsBlock reports whether the instruction at an index terminates a basic
// block, i.e. the next instruction (if any) starts a new one. Frame
// boundaries (loop/if/else/end) and transfers (br*/return/unreachable) do;
// plain `block` openers do not — their body is entered by fallthrough only.
func endsBlock(op wasm.Opcode) bool {
	switch op {
	case wasm.OpLoop, wasm.OpIf, wasm.OpElse, wasm.OpEnd,
		wasm.OpBr, wasm.OpBrIf, wasm.OpBrTable, wasm.OpReturn, wasm.OpUnreachable:
		return true
	}
	return false
}

// FuncCFG builds the control-flow graph of one decoded function body.
// Malformed bodies (unbalanced control, out-of-range labels, bad br_table
// spans, empty bodies) return an error.
func FuncCFG(f *wasm.Func) (*CFG, error) {
	body := f.Body
	if len(body) == 0 {
		return nil, fmt.Errorf("static: empty function body")
	}
	matchEnd, matchElse, err := matches(body)
	if err != nil {
		return nil, err
	}

	// Leaders: instruction 0, and every instruction following a
	// block-terminating one. Blocks are the maximal leader-to-leader runs.
	leader := make([]bool, len(body))
	leader[0] = true
	for i := 0; i < len(body)-1; i++ {
		if endsBlock(body[i].Op) {
			leader[i+1] = true
		}
	}
	g := &CFG{blockAt: make([]int, len(body))}
	for i := range body {
		if leader[i] {
			g.Blocks = append(g.Blocks, Block{Start: i, End: i})
		}
		b := len(g.Blocks) - 1
		g.Blocks[b].End = i
		g.blockAt[i] = b
	}

	// Edge pass: scan linearly, maintaining the frame stack so branch labels
	// resolve exactly like the instrumenter's resolveTarget — loops branch
	// back to begin+1, the function label means return, everything else
	// lands after the frame's matching end.
	ctrl := []frame{{kind: frFunc, begin: -1, end: len(body) - 1}}
	addEdge := func(from int, to int) {
		b := &g.Blocks[from]
		for _, s := range b.Succs {
			if s == to {
				return
			}
		}
		b.Succs = append(b.Succs, to)
	}
	// resolve appends the edge for a branch with the given relative label.
	resolve := func(from int, label uint32) error {
		if int(label) >= len(ctrl) {
			return fmt.Errorf("branch label %d exceeds control depth %d", label, len(ctrl))
		}
		fr := ctrl[len(ctrl)-1-int(label)]
		switch fr.kind {
		case frLoop:
			if fr.begin+1 >= len(body) {
				return fmt.Errorf("loop at %d has no body", fr.begin)
			}
			addEdge(from, g.blockAt[fr.begin+1])
		case frFunc:
			g.Blocks[from].Exits = true
		default:
			if fr.end+1 >= len(body) {
				return fmt.Errorf("frame end %d has no continuation", fr.end)
			}
			addEdge(from, g.blockAt[fr.end+1])
		}
		return nil
	}

	for i, in := range body {
		switch in.Op {
		case wasm.OpBlock, wasm.OpLoop:
			kind := frBlock
			if in.Op == wasm.OpLoop {
				kind = frLoop
			}
			ctrl = append(ctrl, frame{kind: kind, begin: i, end: int(matchEnd[i])})
		case wasm.OpIf:
			ctrl = append(ctrl, frame{kind: frIf, begin: i, end: int(matchEnd[i])})
		case wasm.OpElse:
			top := &ctrl[len(ctrl)-1]
			if top.kind != frIf {
				return nil, fmt.Errorf("static: instr %d: else without if", i)
			}
			top.kind = frElse
			top.begin = i
		case wasm.OpEnd:
			if len(ctrl) == 0 {
				return nil, fmt.Errorf("static: instr %d: end without open frame", i)
			}
			ctrl = ctrl[:len(ctrl)-1]
		}

		if !endsBlock(in.Op) && i != len(body)-1 {
			continue // mid-block instruction
		}
		b := g.blockAt[i]
		switch op := in.Op; op {
		case wasm.OpLoop:
			addEdge(b, g.blockAt[i+1]) // fallthrough into the loop body
		case wasm.OpIf:
			// True edge: the then arm. False edge: the else arm when present,
			// otherwise past the matching end.
			addEdge(b, g.blockAt[i+1])
			if matchEnd[i] < 0 {
				return nil, fmt.Errorf("static: instr %d: if without matching end", i)
			}
			if elsePC := matchElse[i]; elsePC >= 0 {
				addEdge(b, g.blockAt[elsePC+1])
			} else {
				if int(matchEnd[i])+1 >= len(body) {
					return nil, fmt.Errorf("static: instr %d: if end has no continuation", i)
				}
				addEdge(b, g.blockAt[matchEnd[i]+1])
			}
		case wasm.OpElse:
			// Reached by then-arm fallthrough: jump past the if's end.
			if matchEnd[i] < 0 || int(matchEnd[i])+1 >= len(body) {
				return nil, fmt.Errorf("static: instr %d: else has no continuation", i)
			}
			addEdge(b, g.blockAt[matchEnd[i]+1])
		case wasm.OpEnd:
			if i == len(body)-1 {
				g.Blocks[b].Exits = true // implicit return
			} else {
				addEdge(b, g.blockAt[i+1])
			}
		case wasm.OpBr:
			if err := resolve(b, in.Idx); err != nil {
				return nil, fmt.Errorf("static: instr %d: %w", i, err)
			}
		case wasm.OpBrIf:
			if err := resolve(b, in.Idx); err != nil {
				return nil, fmt.Errorf("static: instr %d: %w", i, err)
			}
			if i+1 >= len(body) {
				return nil, fmt.Errorf("static: instr %d: br_if has no fallthrough", i)
			}
			addEdge(b, g.blockAt[i+1])
		case wasm.OpBrTable:
			off, cnt := in.BrTableSpan()
			if off+cnt > len(f.BrTargets) {
				return nil, fmt.Errorf("static: instr %d: br_table target span [%d:%d] exceeds pool (%d)", i, off, off+cnt, len(f.BrTargets))
			}
			for _, label := range in.BrTargets(f.BrTargets) {
				if err := resolve(b, label); err != nil {
					return nil, fmt.Errorf("static: instr %d: %w", i, err)
				}
			}
			if err := resolve(b, in.Idx); err != nil { // default target
				return nil, fmt.Errorf("static: instr %d: %w", i, err)
			}
		case wasm.OpReturn:
			g.Blocks[b].Exits = true
		case wasm.OpUnreachable:
			// Traps: no successors.
		default:
			// Only the final instruction can end a block without being a
			// terminator — and matches() already required it to be an end.
			return nil, fmt.Errorf("static: instr %d: body ends in %s, not end", i, op)
		}
	}
	if len(ctrl) != 0 {
		return nil, fmt.Errorf("static: %d unclosed frames", len(ctrl))
	}

	for b := range g.Blocks {
		for _, s := range g.Blocks[b].Succs {
			g.Blocks[s].Preds = append(g.Blocks[s].Preds, b)
		}
	}
	g.Reachable = reachableBlocks(g)
	g.Idom = dominators(g)
	return g, nil
}

// reachableBlocks marks blocks reachable from the entry block.
func reachableBlocks(g *CFG) []bool {
	seen := make([]bool, len(g.Blocks))
	work := []int{0}
	seen[0] = true
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range g.Blocks[b].Succs {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return seen
}
