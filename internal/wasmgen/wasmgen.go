// Package wasmgen generates small, valid, terminating WebAssembly modules
// from a seed, for the differential-execution harness (internal/diff). The
// generator is structured (type-directed expression/statement recursion over
// the builder DSL) rather than byte-level, so every module it emits passes
// validation — the harness's job is to find disagreements between execution
// configurations, not to fuzz the decoder (FuzzDecode already does that).
//
// Coverage goals, per the differential harness's needs: multi-block control
// (block/loop/if-else at several nesting depths), br/br_if/br_table across
// those blocks, direct calls and call_indirect through a seeded table,
// loads/stores of every width, globals, select/drop, and the trap-prone
// operators (division, float→int truncation, occasionally-unmasked memory
// addresses) so trap equivalence is exercised too.
//
// Determinism: the same seed always yields the same module (math/rand's
// seeded Source is stable), which is what lets CI regenerate the corpus
// instead of checking binaries in.
package wasmgen

import (
	"math/rand"

	"wasabi/internal/builder"
	"wasabi/internal/wasm"
)

// Entry is the exported entry point of every generated module: one i32
// parameter, one i32 result, like the spectest corpus's "run".
const Entry = "run"

// gen is the state of one module generation.
type gen struct {
	rng *rand.Rand
	b   *builder.Builder

	// helpers defined so far, callable by later functions: index, signature.
	helpers []helper
}

type helper struct {
	idx     uint32
	params  []wasm.ValType
	results []wasm.ValType
}

// fgen is the state of one function-body generation.
type fgen struct {
	g  *gen
	fb *builder.FuncBuilder

	// localsByType indexes declared locals (params included) by type, so
	// expression generation can reference and assign them.
	localsByType map[wasm.ValType][]uint32

	// globals maps each scalar type to the mutable global indices of that
	// type (shared by every body of the module).
	globals map[wasm.ValType][]uint32

	// labels tracks the enclosing branch-targetable labels, innermost last.
	// Only arity-0 block labels are recorded: branching to them is valid at
	// any statement position (empty block-relative stack), and never targets
	// a loop header, which keeps every generated function terminating.
	labels int

	// budget bounds the body size so deeply seeded recursion cannot explode.
	budget int
}

// Module generates the deterministic module for seed.
func Module(seed uint64) *wasm.Module {
	g := &gen{
		rng: rand.New(rand.NewSource(int64(seed))),
		b:   builder.New(),
	}
	g.b.Memory(1)
	// Seed a data segment so loads observe nonzero memory from the start.
	data := make([]byte, 64)
	g.rng.Read(data)
	g.b.Data(int32(g.rng.Intn(512)), data)

	// Globals: a mutable one per scalar type, plus an immutable i32.
	gi32 := g.b.GlobalI32(true, int32(g.rng.Int31()))
	gi64 := g.b.GlobalI64(true, g.rng.Int63())
	gf64 := g.b.GlobalF64(true, g.rng.Float64()*1e3)
	g.b.GlobalI32(false, int32(g.rng.Int31n(1000)))
	globals := map[wasm.ValType][]uint32{
		wasm.I32: {gi32},
		wasm.I64: {gi64},
		wasm.F64: {gf64},
	}

	// Helper functions with assorted signatures, each only calling helpers
	// defined before it (the call graph is acyclic, so execution terminates).
	numHelpers := 1 + g.rng.Intn(4)
	for i := 0; i < numHelpers; i++ {
		params := g.randTypes(0, 2)
		results := g.randTypes(1, 1)
		fb := g.b.Func("", params, results)
		g.genBody(fb, params, results, globals, 20+g.rng.Intn(40))
		g.helpers = append(g.helpers, helper{idx: fb.Index, params: params, results: results})
	}

	// A funcref table over the helpers, for call_indirect. Slot j holds
	// helper j: callers mask their index by the number of helpers defined
	// before them, so an indirect call can only reach an earlier-defined
	// helper and the call graph stays acyclic (execution terminates). The
	// extra slots past the helpers are random and unreachable by generated
	// indices; they only vary the table shape.
	if len(g.helpers) > 0 {
		size := uint32(len(g.helpers) + g.rng.Intn(3))
		g.b.Table(size)
		elems := make([]uint32, 0, size)
		for i := uint32(0); i < size; i++ {
			if int(i) < len(g.helpers) {
				elems = append(elems, g.helpers[i].idx)
			} else {
				elems = append(elems, g.helpers[g.rng.Intn(len(g.helpers))].idx)
			}
		}
		g.b.Elem(0, elems...)
	}

	// The entry function.
	params := []wasm.ValType{wasm.I32}
	results := []wasm.ValType{wasm.I32}
	fb := g.b.Func(Entry, params, results)
	g.genBody(fb, params, results, globals, 60+g.rng.Intn(80))

	return g.b.Build()
}

// randTypes picks between lo and hi scalar types (i32-biased: the integer
// paths are where control flow and memory addressing live).
func (g *gen) randTypes(lo, hi int) []wasm.ValType {
	n := lo
	if hi > lo {
		n += g.rng.Intn(hi - lo + 1)
	}
	out := make([]wasm.ValType, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, g.randType())
	}
	return out
}

func (g *gen) randType() wasm.ValType {
	switch g.rng.Intn(8) {
	case 0:
		return wasm.I64
	case 1:
		return wasm.F64
	case 2:
		return wasm.F32
	default:
		return wasm.I32
	}
}

// genBody emits one function body: locals, a run of statements, and a final
// expression producing the declared results.
func (g *gen) genBody(fb *builder.FuncBuilder, params, results []wasm.ValType, globals map[wasm.ValType][]uint32, budget int) {
	f := &fgen{g: g, fb: fb, budget: budget, localsByType: map[wasm.ValType][]uint32{}}
	for i, t := range params {
		f.localsByType[t] = append(f.localsByType[t], uint32(i))
	}
	// A few extra locals per body beyond the parameters.
	for i := 0; i < 2+g.rng.Intn(3); i++ {
		t := g.randType()
		f.localsByType[t] = append(f.localsByType[t], fb.Local(t))
	}
	f.globals = globals

	for i := 0; i < 2+g.rng.Intn(6) && f.budget > 0; i++ {
		f.stmt(2)
	}
	for _, t := range results {
		f.expr(t, 3)
	}
	fb.Done()
}

func (f *fgen) spend(n int) bool {
	f.budget -= n
	return f.budget >= 0
}

// pickLocal returns a local of type t, declaring one if none exists.
func (f *fgen) pickLocal(t wasm.ValType) uint32 {
	ls := f.localsByType[t]
	if len(ls) == 0 {
		l := f.fb.Local(t)
		f.localsByType[t] = append(f.localsByType[t], l)
		return l
	}
	return ls[f.g.rng.Intn(len(ls))]
}

// addr emits an i32 memory address. Usually masked into the low page so the
// access is in bounds; occasionally unmasked, so out-of-bounds trap paths are
// exercised under every configuration too.
func (f *fgen) addr() {
	f.expr(wasm.I32, 1)
	if f.g.rng.Intn(100) < 95 {
		f.fb.I32(0xFFF).Op(wasm.OpI32And)
	}
}

// expr emits instructions leaving exactly one value of type t.
func (f *fgen) expr(t wasm.ValType, depth int) {
	g := f.g
	if depth <= 0 || !f.spend(1) {
		f.constOf(t)
		return
	}
	switch g.rng.Intn(10) {
	case 0, 1:
		f.constOf(t)
	case 2, 3:
		f.fb.Get(f.pickLocal(t))
	case 4:
		if gs := f.globals[t]; len(gs) > 0 {
			f.fb.GGet(gs[g.rng.Intn(len(gs))])
		} else {
			f.constOf(t)
		}
	case 5: // load
		f.addr()
		switch t {
		case wasm.I32:
			ops := []wasm.Opcode{wasm.OpI32Load, wasm.OpI32Load8S, wasm.OpI32Load8U, wasm.OpI32Load16S, wasm.OpI32Load16U}
			f.fb.Load(ops[g.rng.Intn(len(ops))], uint32(g.rng.Intn(64)))
		case wasm.I64:
			ops := []wasm.Opcode{wasm.OpI64Load, wasm.OpI64Load8U, wasm.OpI64Load16S, wasm.OpI64Load32S, wasm.OpI64Load32U}
			f.fb.Load(ops[g.rng.Intn(len(ops))], uint32(g.rng.Intn(64)))
		case wasm.F32:
			f.fb.Load(wasm.OpF32Load, uint32(g.rng.Intn(64)))
		default:
			f.fb.Load(wasm.OpF64Load, uint32(g.rng.Intn(64)))
		}
	case 6: // unary / conversion into t
		f.unaryInto(t, depth)
	case 7: // call a helper returning t, or fall back
		if !f.callReturning(t, depth) {
			f.binop(t, depth)
		}
	case 8: // if-expression
		f.expr(wasm.I32, depth-1)
		f.fb.IfT(t)
		f.expr(t, depth-1)
		f.fb.Else()
		f.expr(t, depth-1)
		f.fb.End()
	default:
		f.binop(t, depth)
	}
}

func (f *fgen) constOf(t wasm.ValType) {
	g := f.g
	switch t {
	case wasm.I32:
		// Small values dominate so shifts/divisors/addresses stay interesting.
		if g.rng.Intn(2) == 0 {
			f.fb.I32(int32(g.rng.Intn(64)) - 8)
		} else {
			f.fb.I32(int32(g.rng.Uint32()))
		}
	case wasm.I64:
		f.fb.I64(g.rng.Int63() - (1 << 62))
	case wasm.F32:
		f.fb.F32(float32(g.rng.NormFloat64()) * 100)
	default:
		f.fb.F64(g.rng.NormFloat64() * 1000)
	}
}

// binop emits a binary operation producing t from two sub-expressions.
func (f *fgen) binop(t wasm.ValType, depth int) {
	g := f.g
	var ops []wasm.Opcode
	switch t {
	case wasm.I32:
		if g.rng.Intn(4) == 0 { // comparisons also produce i32
			cmp := [][]wasm.Opcode{
				{wasm.OpI32Eq, wasm.OpI32LtS, wasm.OpI32GtU, wasm.OpI32LeS, wasm.OpI32Ne},
				{wasm.OpI64Eq, wasm.OpI64LtS, wasm.OpI64GtU, wasm.OpI64Ne},
				{wasm.OpF64Eq, wasm.OpF64Lt, wasm.OpF64Ge},
			}
			group := cmp[g.rng.Intn(len(cmp))]
			src := []wasm.ValType{wasm.I32, wasm.I64, wasm.F64}[0]
			switch group[0] {
			case wasm.OpI64Eq:
				src = wasm.I64
			case wasm.OpF64Eq:
				src = wasm.F64
			}
			f.expr(src, depth-1)
			f.expr(src, depth-1)
			f.fb.Op(group[g.rng.Intn(len(group))])
			return
		}
		ops = []wasm.Opcode{
			wasm.OpI32Add, wasm.OpI32Sub, wasm.OpI32Mul, wasm.OpI32And, wasm.OpI32Or,
			wasm.OpI32Xor, wasm.OpI32Shl, wasm.OpI32ShrS, wasm.OpI32ShrU, wasm.OpI32Rotl,
			wasm.OpI32Rotr, wasm.OpI32DivS, wasm.OpI32DivU, wasm.OpI32RemS, wasm.OpI32RemU,
		}
	case wasm.I64:
		ops = []wasm.Opcode{
			wasm.OpI64Add, wasm.OpI64Sub, wasm.OpI64Mul, wasm.OpI64And, wasm.OpI64Or,
			wasm.OpI64Xor, wasm.OpI64Shl, wasm.OpI64ShrS, wasm.OpI64ShrU, wasm.OpI64Rotl,
			wasm.OpI64DivS, wasm.OpI64RemU,
		}
	case wasm.F32:
		ops = []wasm.Opcode{wasm.OpF32Add, wasm.OpF32Sub, wasm.OpF32Mul, wasm.OpF32Div, wasm.OpF32Min, wasm.OpF32Max}
	default:
		ops = []wasm.Opcode{wasm.OpF64Add, wasm.OpF64Sub, wasm.OpF64Mul, wasm.OpF64Div, wasm.OpF64Min, wasm.OpF64Max, wasm.OpF64Copysign}
	}
	f.expr(t, depth-1)
	f.expr(t, depth-1)
	f.fb.Op(ops[g.rng.Intn(len(ops))])
}

// unaryInto emits a unary operation or conversion producing t.
func (f *fgen) unaryInto(t wasm.ValType, depth int) {
	g := f.g
	switch t {
	case wasm.I32:
		switch g.rng.Intn(7) {
		case 0:
			f.expr(wasm.I32, depth-1)
			f.fb.Op([]wasm.Opcode{wasm.OpI32Clz, wasm.OpI32Ctz, wasm.OpI32Popcnt, wasm.OpI32Eqz}[g.rng.Intn(4)])
		case 1:
			f.expr(wasm.I64, depth-1)
			f.fb.Op(wasm.OpI32WrapI64)
		case 2:
			f.expr(wasm.I64, depth-1)
			f.fb.Op(wasm.OpI64Eqz)
		case 3:
			// Trap-prone: float→int truncation of an arbitrary f64.
			f.expr(wasm.F64, depth-1)
			f.fb.Op(wasm.OpI32TruncF64S)
		case 4:
			// Sign-extension operators: exercise the narrow-width paths.
			f.expr(wasm.I32, depth-1)
			f.fb.Op([]wasm.Opcode{wasm.OpI32Extend8S, wasm.OpI32Extend16S}[g.rng.Intn(2)])
		case 5:
			// Saturating truncation: same arbitrary float, never traps.
			if g.rng.Intn(2) == 0 {
				f.expr(wasm.F64, depth-1)
				f.fb.Emit(wasm.MiscInstr([]uint32{wasm.MiscI32TruncSatF64S, wasm.MiscI32TruncSatF64U}[g.rng.Intn(2)]))
			} else {
				f.expr(wasm.F32, depth-1)
				f.fb.Emit(wasm.MiscInstr([]uint32{wasm.MiscI32TruncSatF32S, wasm.MiscI32TruncSatF32U}[g.rng.Intn(2)]))
			}
		default:
			f.expr(wasm.F32, depth-1)
			f.fb.Op(wasm.OpF32Abs).Op(wasm.OpF32Floor).Op(wasm.OpI32TruncF32S)
		}
	case wasm.I64:
		switch g.rng.Intn(5) {
		case 0:
			f.expr(wasm.I32, depth-1)
			f.fb.Op(wasm.OpI64ExtendI32S)
		case 1:
			f.expr(wasm.I32, depth-1)
			f.fb.Op(wasm.OpI64ExtendI32U)
		case 2:
			f.expr(wasm.I64, depth-1)
			f.fb.Op([]wasm.Opcode{wasm.OpI64Extend8S, wasm.OpI64Extend16S, wasm.OpI64Extend32S}[g.rng.Intn(3)])
		case 3:
			f.expr(wasm.F64, depth-1)
			f.fb.Emit(wasm.MiscInstr([]uint32{wasm.MiscI64TruncSatF64S, wasm.MiscI64TruncSatF64U}[g.rng.Intn(2)]))
		default:
			f.expr(wasm.I64, depth-1)
			f.fb.Op([]wasm.Opcode{wasm.OpI64Clz, wasm.OpI64Ctz, wasm.OpI64Popcnt}[g.rng.Intn(3)])
		}
	case wasm.F32:
		switch g.rng.Intn(3) {
		case 0:
			f.expr(wasm.I32, depth-1)
			f.fb.Op(wasm.OpF32ConvertI32S)
		case 1:
			f.expr(wasm.F64, depth-1)
			f.fb.Op(wasm.OpF32DemoteF64)
		default:
			f.expr(wasm.F32, depth-1)
			f.fb.Op([]wasm.Opcode{wasm.OpF32Neg, wasm.OpF32Abs, wasm.OpF32Sqrt, wasm.OpF32Nearest, wasm.OpF32Ceil}[g.rng.Intn(5)])
		}
	default:
		switch g.rng.Intn(3) {
		case 0:
			f.expr(wasm.I32, depth-1)
			f.fb.Op(wasm.OpF64ConvertI32S)
		case 1:
			f.expr(wasm.F32, depth-1)
			f.fb.Op(wasm.OpF64PromoteF32)
		default:
			f.expr(wasm.F64, depth-1)
			f.fb.Op([]wasm.Opcode{wasm.OpF64Neg, wasm.OpF64Abs, wasm.OpF64Sqrt, wasm.OpF64Trunc, wasm.OpF64Floor}[g.rng.Intn(5)])
		}
	}
}

// callReturning emits a call (sometimes indirect) to a helper whose single
// result is t. Reports false when no such helper exists.
func (f *fgen) callReturning(t wasm.ValType, depth int) bool {
	g := f.g
	var candidates []helper
	for _, h := range g.helpers {
		if h.idx >= f.fb.Index {
			continue // only earlier-defined helpers: acyclic call graph
		}
		if len(h.results) == 1 && h.results[0] == t {
			candidates = append(candidates, h)
		}
	}
	if len(candidates) == 0 {
		return false
	}
	h := candidates[g.rng.Intn(len(candidates))]
	for _, pt := range h.params {
		f.expr(pt, depth-1)
	}
	if g.rng.Intn(3) == 0 {
		// call_indirect with the index masked by the number of helpers
		// defined so far — table slot j holds helper j, so only earlier
		// helpers are reachable (acyclic). The slot may still hold a
		// different signature, so the type-mismatch trap is reachable.
		f.expr(wasm.I32, 1)
		f.fb.I32(int32(len(g.helpers))).Op(wasm.OpI32RemU)
		f.fb.CallIndirect(h.params, h.results)
	} else {
		f.fb.Call(h.idx)
	}
	return true
}

// stmt emits instructions with no net stack effect.
func (f *fgen) stmt(depth int) {
	g := f.g
	if depth <= 0 || !f.spend(2) {
		t := g.randType()
		f.expr(t, 1)
		f.fb.Set(f.pickLocal(t))
		return
	}
	switch g.rng.Intn(13) {
	case 0, 1: // local.set
		t := g.randType()
		f.expr(t, 2)
		f.fb.Set(f.pickLocal(t))
	case 2: // local.tee + drop
		t := g.randType()
		f.expr(t, 2)
		f.fb.Tee(f.pickLocal(t)).Drop()
	case 3: // global.set
		t := []wasm.ValType{wasm.I32, wasm.I64, wasm.F64}[g.rng.Intn(3)]
		f.expr(t, 2)
		f.fb.GSet(f.globals[t][0])
	case 4: // store
		f.addr()
		t := g.randType()
		f.expr(t, 2)
		switch t {
		case wasm.I32:
			ops := []wasm.Opcode{wasm.OpI32Store, wasm.OpI32Store8, wasm.OpI32Store16}
			f.fb.Store(ops[g.rng.Intn(len(ops))], uint32(g.rng.Intn(64)))
		case wasm.I64:
			ops := []wasm.Opcode{wasm.OpI64Store, wasm.OpI64Store8, wasm.OpI64Store16, wasm.OpI64Store32}
			f.fb.Store(ops[g.rng.Intn(len(ops))], uint32(g.rng.Intn(64)))
		case wasm.F32:
			f.fb.Store(wasm.OpF32Store, uint32(g.rng.Intn(64)))
		default:
			f.fb.Store(wasm.OpF64Store, uint32(g.rng.Intn(64)))
		}
	case 5: // if / if-else statement
		f.expr(wasm.I32, 2)
		f.fb.If()
		f.inBlock(func() {
			f.stmt(depth - 1)
			if g.rng.Intn(2) == 0 {
				f.stmt(depth - 1)
			}
		})
		if g.rng.Intn(2) == 0 {
			f.fb.Else()
			f.inBlock(func() { f.stmt(depth - 1) })
		}
		f.fb.End()
	case 6: // block with optional br_if / br out
		f.fb.Block()
		f.inBlock(func() {
			f.stmt(depth - 1)
			if g.rng.Intn(2) == 0 {
				f.expr(wasm.I32, 2)
				f.fb.BrIf(uint32(g.rng.Intn(f.labels)))
			}
			f.stmt(depth - 1)
			if g.rng.Intn(4) == 0 {
				f.fb.Br(uint32(g.rng.Intn(f.labels)))
			}
		})
		f.fb.End()
	case 7: // counted loop (always terminates; the loop label is never a
		// free-form branch target — only the canonical back-edge uses it).
		// The counter local is deliberately NOT registered in localsByType:
		// if body statements could assign to it, they could hold it below
		// the limit forever.
		i := f.fb.Local(wasm.I32)
		limit := int32(g.rng.Intn(9))
		f.fb.ForI32(i, func(fb *builder.FuncBuilder) { fb.I32(limit) }, func(*builder.FuncBuilder) {
			// The loop body starts a fresh label scope: the two labels ForI32
			// introduces (its block and, crucially, the loop header) are not
			// branch candidates, so generated branches can neither miss their
			// intended target nor form an uncounted back edge.
			saved := f.labels
			f.labels = 0
			f.stmt(depth - 1)
			f.labels = saved
		})
	case 8: // br_table over nested empty blocks
		n := 2 + g.rng.Intn(3)
		for i := 0; i < n; i++ {
			f.fb.Block()
			f.labels++
		}
		f.expr(wasm.I32, 2)
		targets := make([]uint32, 1+g.rng.Intn(n))
		for i := range targets {
			targets[i] = uint32(g.rng.Intn(n))
		}
		f.fb.BrTable(targets, uint32(g.rng.Intn(n)))
		for i := 0; i < n; i++ {
			f.fb.End()
			f.labels--
			if i < n-1 {
				f.stmt(depth - 1)
			}
		}
	case 9: // drop an expression
		f.expr(g.randType(), 2)
		f.fb.Drop()
	case 10: // select into a local
		t := g.randType()
		f.expr(t, 2)
		f.expr(t, 2)
		f.expr(wasm.I32, 2)
		f.fb.Select()
		f.fb.Set(f.pickLocal(t))
	case 11: // bulk memory: memory.copy / memory.fill over masked addresses
		if g.rng.Intn(2) == 0 {
			f.addr()                         // dst
			f.addr()                         // src
			f.fb.I32(int32(g.rng.Intn(128))) // len
			f.fb.Emit(wasm.MiscInstr(wasm.MiscMemoryCopy))
		} else {
			f.addr()                         // dst
			f.expr(wasm.I32, 1)              // fill byte (low 8 bits used)
			f.fb.I32(int32(g.rng.Intn(128))) // len
			f.fb.Emit(wasm.MiscInstr(wasm.MiscMemoryFill))
		}
	default: // memory.size / memory.grow(0) observation
		if g.rng.Intn(2) == 0 {
			f.fb.Op(wasm.OpMemorySize)
		} else {
			f.fb.I32(0).Op(wasm.OpMemoryGrow)
		}
		f.fb.Set(f.pickLocal(wasm.I32))
	}
}

// inBlock runs body with one more enclosing branch-targetable label.
func (f *fgen) inBlock(body func()) {
	f.labels++
	body()
	f.labels--
}
