package wasmgen

import (
	"errors"
	"testing"

	"wasabi/internal/binary"
	"wasabi/internal/refinterp"
	"wasabi/internal/validate"
)

// TestGeneratedModulesValidate is the generator's core contract: every seed
// yields a module that passes the repo's validator and round-trips through
// the binary encoder.
func TestGeneratedModulesValidate(t *testing.T) {
	for seed := uint64(0); seed < 300; seed++ {
		m := Module(seed)
		if err := validate.Module(m); err != nil {
			t.Fatalf("seed %d: invalid module: %v", seed, err)
		}
		data, err := binary.Encode(m)
		if err != nil {
			t.Fatalf("seed %d: encode: %v", seed, err)
		}
		if _, err := binary.Decode(data); err != nil {
			t.Fatalf("seed %d: decode round-trip: %v", seed, err)
		}
	}
}

// TestDeterministic pins that the same seed always produces the same
// module, so CI corpus runs are reproducible from the seed alone.
func TestDeterministic(t *testing.T) {
	for _, seed := range []uint64{0, 1, 7, 12345, 1 << 40} {
		a, err := binary.Encode(Module(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := binary.Encode(Module(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if string(a) != string(b) {
			t.Fatalf("seed %d: generation is not deterministic", seed)
		}
	}
}

// TestGeneratedModulesTerminate runs every generated entry point under the
// reference interpreter: each invocation must finish (loops are counted,
// branches cannot form uncounted back edges) with either a result or a
// legitimate runtime trap — never an internal refinterp error.
func TestGeneratedModulesTerminate(t *testing.T) {
	for seed := uint64(0); seed < 300; seed++ {
		inst, err := refinterp.Instantiate(Module(seed), nil)
		if err != nil {
			t.Fatalf("seed %d: instantiate: %v", seed, err)
		}
		for _, arg := range []uint64{0, 1, 0xFFFFFFFF, 1 << 31} {
			_, err := inst.Invoke(Entry, arg)
			if err != nil {
				var tr *refinterp.Trap
				if !errors.As(err, &tr) {
					t.Fatalf("seed %d run(%d): non-trap error %v", seed, arg, err)
				}
				if tr.Code == refinterp.TrapHostError {
					t.Fatalf("seed %d run(%d): internal error %v", seed, arg, err)
				}
			}
		}
	}
}
