package sink

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"wasabi/internal/analysis"
	"wasabi/internal/wasm"
)

// fixtureTable is a small but shape-complete decode table: a bare hook, an
// indirect call_pre with enough arguments to force continuation records,
// and a call_post — covering every EventSpec field the encoding carries.
func fixtureTable() *analysis.EventTable {
	return &analysis.EventTable{Specs: []analysis.EventSpec{
		{Kind: analysis.KindNop, Name: "nop"},
		{
			Kind: analysis.KindCall, Name: "call_pre_4", Op: "call_indirect",
			Types:    []wasm.ValType{wasm.I32, wasm.I32, wasm.I64, wasm.F32, wasm.F64},
			Indirect: true,
		},
		{
			Kind: analysis.KindCall, Name: "call_post_1", Op: "call",
			Types: []wasm.ValType{wasm.F64}, Post: true,
		},
		{Kind: analysis.KindEnd, Name: "end_loop", Block: analysis.BlockLoop},
	}}
}

// fixtureBatches is a fixed record sequence: a plain record, a 4-argument
// indirect call (primary + continuation), a post record, and an end record,
// split across two batches the way a live stream could deliver them.
func fixtureBatches() [][]analysis.Event {
	return [][]analysis.Event{
		{
			{Hook: 0, Kind: analysis.KindNop, Func: 2, Instr: 7},
			{
				Hook: 1, Kind: analysis.KindCall, Pack: analysis.PackSlots(wasm.I64, wasm.I32, wasm.I64),
				Func: 2, Instr: 8, Aux: 5, Vals: [3]uint64{3, 0x1234, 0xFFFF_FFFF_0000_0001},
			},
			{
				Hook: analysis.EventCont, Kind: analysis.KindCall,
				Pack: analysis.PackSlots(wasm.F32, wasm.F64),
				Func: 2, Instr: 8, Vals: [3]uint64{0x3F80_0000, 0x3FF0_0000_0000_0000},
			},
		},
		{
			{
				Hook: 2, Kind: analysis.KindCall, Pack: analysis.PackSlots(wasm.F64),
				Func: 2, Instr: 8, Vals: [3]uint64{0x4000_0000_0000_0000},
			},
			{Hook: 3, Kind: analysis.KindEnd, Func: 2, Instr: 11, Aux: 9, Vals: [3]uint64{uint64(analysis.BlockLoop.Code())}},
		},
	}
}

// writeFixture records the fixture stream at path.
func writeFixture(t *testing.T, path string) {
	t.Helper()
	w, err := Create(path, fixtureTable())
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for _, b := range fixtureBatches() {
		w.Events(b)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "roundtrip.evlog")
	writeFixture(t, path)
	r, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer r.Close()
	if !reflect.DeepEqual(r.Table(), fixtureTable()) {
		t.Errorf("decoded table differs:\n got %+v\nwant %+v", r.Table(), fixtureTable())
	}
	var want []analysis.Event
	for _, b := range fixtureBatches() {
		want = append(want, b...)
	}
	if got := r.Records(); !reflect.DeepEqual(got, want) {
		t.Errorf("replayed records differ:\n got %+v\nwant %+v", got, want)
	}
}

// TestGoldenFixture pins the on-disk format byte for byte: the 40-byte
// record layout, the header, and the table encoding. A diff here means old
// segment files stopped replaying — bump the format version and regenerate
// with SINK_GOLDEN_REGEN=1 only for a deliberate format change.
func TestGoldenFixture(t *testing.T) {
	if hostBigEndian {
		t.Skip("fixture records are little-endian (written on a little-endian host)")
	}
	golden := filepath.Join("testdata", "golden.evlog")
	if os.Getenv("SINK_GOLDEN_REGEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		writeFixture(t, golden)
		t.Logf("regenerated %s", golden)
	}
	fresh := filepath.Join(t.TempDir(), "fresh.evlog")
	writeFixture(t, fresh)
	wantBytes, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden fixture (regenerate with SINK_GOLDEN_REGEN=1): %v", err)
	}
	gotBytes, err := os.ReadFile(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBytes, wantBytes) {
		t.Fatalf("segment bytes diverged from the golden fixture: got %d bytes, want %d — the file format changed", len(gotBytes), len(wantBytes))
	}
	// And the checked-in fixture must still replay.
	r, err := Open(golden)
	if err != nil {
		t.Fatalf("Open golden: %v", err)
	}
	defer r.Close()
	if r.Count() != 5 {
		t.Errorf("golden fixture replays %d records, want 5", r.Count())
	}
}

// TestCrashTruncationRecovery covers the watermark rule from both sides:
// a torn tail past the watermark (crash mid-batch) is silently dropped,
// while a file shorter than its watermark promises is corrupt.
func TestCrashTruncationRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crash.evlog")
	writeFixture(t, path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Crash shape: a torn half-record plus a whole-but-uncommitted record
	// beyond the committed region. Replay must see exactly the watermark.
	torn := append(append([]byte{}, data...), make([]byte, eventSize+eventSize/2)...)
	tornPath := filepath.Join(t.TempDir(), "torn.evlog")
	if err := os.WriteFile(tornPath, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(tornPath)
	if err != nil {
		t.Fatalf("Open with torn tail: %v", err)
	}
	if r.Count() != 5 {
		t.Errorf("torn-tail replay has %d records, want the 5 committed ones", r.Count())
	}
	r.Close()

	// Missing committed data: cut one committed record off the end.
	short := data[:len(data)-eventSize]
	shortPath := filepath.Join(t.TempDir(), "short.evlog")
	if err := os.WriteFile(shortPath, short, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(shortPath)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open with missing committed records = %v, want ErrCorrupt", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("error is not a *CorruptError: %v", err)
	}
}

func TestCorruptHeaders(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.evlog")
	writeFixture(t, path)
	base, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"empty file", func(b []byte) []byte { return nil }},
		{"short header", func(b []byte) []byte { return b[:headerSize/2] }},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }},
		{"future version", func(b []byte) []byte { b[8] = 99; return b }},
		{"wrong record size", func(b []byte) []byte { b[12] = 39; return b }},
		{"foreign endianness", func(b []byte) []byte { b[24] ^= flagBigEndian; return b }},
		{"table past EOF", func(b []byte) []byte { b[28] = 0xFF; b[29] = 0xFF; b[30] = 0xFF; return b }},
		{"truncated table", func(b []byte) []byte { b[28]++; return b }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mutated := tc.mutate(append([]byte{}, base...))
			p := filepath.Join(t.TempDir(), "bad.evlog")
			if err := os.WriteFile(p, mutated, 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := Open(p)
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Open = %v, want ErrCorrupt", err)
			}
		})
	}
}

// countingSink records delivered batch boundaries for the batching test.
type countingSink struct {
	batches [][]analysis.Event
	total   int
}

func (c *countingSink) Events(batch []analysis.Event) {
	cp := append([]analysis.Event{}, batch...)
	c.batches = append(c.batches, cp)
	c.total += len(batch)
}

// TestServeKeepsContinuationGroupsWhole replays with a batch size that
// lands a boundary exactly on a continuation record and asserts Serve
// extends the batch instead of splitting the group.
func TestServeKeepsContinuationGroupsWhole(t *testing.T) {
	path := filepath.Join(t.TempDir(), "groups.evlog")
	writeFixture(t, path)
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for batchSize := 1; batchSize <= 6; batchSize++ {
		var c countingSink
		r.Serve(&c, batchSize)
		if c.total != int(r.Count()) {
			t.Fatalf("batchSize %d: served %d records, want %d", batchSize, c.total, r.Count())
		}
		for i, b := range c.batches {
			if len(b) > 0 && b[0].Hook == analysis.EventCont {
				t.Errorf("batchSize %d: batch %d starts with a continuation record — group split", batchSize, i)
			}
		}
	}
}

func TestWriterMisuse(t *testing.T) {
	path := filepath.Join(t.TempDir(), "misuse.evlog")
	w, err := Create(path, fixtureTable())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w.Events(fixtureBatches()[0])
	if !errors.Is(w.Err(), ErrSinkClosed) {
		t.Fatalf("Err after write-after-close = %v, want ErrSinkClosed", w.Err())
	}
}

// TestWriterGrowth crosses the initial mmap capacity to exercise the remap
// path (a no-op in portable mode, where the test still checks volume).
func TestWriterGrowth(t *testing.T) {
	path := filepath.Join(t.TempDir(), "grow.evlog")
	w, err := Create(path, fixtureTable())
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]analysis.Event, 1024)
	for i := range batch {
		batch[i] = analysis.Event{Hook: 0, Kind: analysis.KindNop, Func: int32(i)}
	}
	// > initialDataCap worth of records.
	n := initialDataCap/(len(batch)*eventSize) + 3
	for i := 0; i < n; i++ {
		w.Events(batch)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer r.Close()
	if want := uint64(n * len(batch)); r.Count() != want {
		t.Fatalf("replayed %d records, want %d", r.Count(), want)
	}
	recs := r.Records()
	if recs[len(recs)-1].Func != int32(len(batch)-1) {
		t.Errorf("last record corrupted across growth: %+v", recs[len(recs)-1])
	}
}
