//go:build linux

package sink

// The mmap fast path: segment writes are plain memory copies into a
// MAP_SHARED mapping and replay aliases the page cache directly (the
// zero-copy []Event view in Open). Stdlib-only — raw syscall wrappers, no
// golang.org/x/sys dependency.

import (
	"os"
	"syscall"
	"unsafe"
)

const haveMmap = true

func mapRW(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
}

func mapRO(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
}

func unmap(b []byte) error { return syscall.Munmap(b) }

// msync flushes the mapping to the file before unmap at Close. The mapping
// base is page-aligned (mmap returns pages), as MS_SYNC requires.
func msync(b []byte) error {
	if len(b) == 0 {
		return nil
	}
	_, _, errno := syscall.Syscall(syscall.SYS_MSYNC,
		uintptr(unsafe.Pointer(&b[0])), uintptr(len(b)), uintptr(syscall.MS_SYNC))
	if errno != 0 {
		return errno
	}
	return nil
}
