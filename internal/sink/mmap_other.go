//go:build !linux

package sink

// Portable fallback: no mmap, the Writer appends with WriteAt and the
// Reader loads the file with os.ReadFile. Same file format, same replay
// semantics, one extra copy on each side.

import (
	"errors"
	"os"
)

const haveMmap = false

var errNoMmap = errors.New("sink: mmap not supported on this platform")

func mapRW(*os.File, int) ([]byte, error) { return nil, errNoMmap }
func mapRO(*os.File, int) ([]byte, error) { return nil, errNoMmap }
func unmap([]byte) error                  { return nil }
func msync([]byte) error                  { return nil }
