// Package sink persists event streams as segment files and replays them.
//
// A segment file is the stream API's 40-byte records made durable with zero
// serialization: the Writer appends raw analysis.Event structs (native
// endianness, the in-memory layout) to an mmapped file behind a 64-byte
// header and the stream's encoded EventTable, and the Reader hands the
// committed region back as a []analysis.Event without decoding — offline
// analyses consume the exact surface (EventTable + EventSink batches) live
// ones do.
//
// File layout:
//
//	[0,8)    magic "WSBEVLG1"
//	[8,12)   u32 LE format version (1)
//	[12,16)  u32 LE record size (40; a layout change must bump the version)
//	[16,24)  u64 LE watermark: committed record count (the commit point)
//	[24,28)  u32 LE flags (bit 0: records are big-endian)
//	[28,32)  u32 LE event-table length in bytes
//	[32,64)  reserved, zero
//	[64,..)  event table (le encoding of every EventSpec, see encodeTable)
//	[dataOff,..) records, 40 bytes each; dataOff = 64+tableLen rounded up
//	         to the next 64-byte boundary
//
// Crash safety is the watermark rule: records are written first, the
// watermark after, so a crash mid-batch leaves a torn tail BEYOND the
// watermark, which replay silently drops — the committed prefix is always
// whole. A watermark pointing past the records actually in the file means
// committed data is missing (a truncated copy, or writeback reordering
// across a hard crash) and fails replay with a *CorruptError instead of
// returning a silently short stream.
package sink

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"unsafe"

	"wasabi/internal/analysis"
	"wasabi/internal/wasm"
)

// eventSize is the on-disk record size. The zero-length-array index pins it
// to the in-memory struct size at compile time: a layout change breaks
// every existing segment file, so it must fail the build, not skew files.
const eventSize = 40

var _ = [1]struct{}{}[unsafe.Sizeof(analysis.Event{})-eventSize]

const (
	headerSize     = 64
	formatVersion  = 1
	flagBigEndian  = 1 << 0
	initialDataCap = 256 << 10 // first mmapped data capacity; doubles on growth
)

var magic = [8]byte{'W', 'S', 'B', 'E', 'V', 'L', 'G', '1'}

// hostBigEndian reports the byte order records are laid out in on this host.
var hostBigEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 0
}()

// ErrCorrupt reports a segment file replay cannot trust: bad magic or
// version, a truncated header or event table, a foreign byte order, or a
// watermark promising more records than the file holds. Matched with
// errors.Is; errors.As with *CorruptError recovers where and why.
var ErrCorrupt = errors.New("wasabi: corrupt event-log segment")

// ErrSinkClosed reports Writer.Events after Close: the records have nowhere
// to go, and silently dropping them would defeat the sink's point.
var ErrSinkClosed = errors.New("wasabi: record sink is closed")

// CorruptError is the typed form of ErrCorrupt: which file, at what byte
// offset the check failed, and why.
type CorruptError struct {
	Path   string
	Offset int64
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("%v: %s: at byte %d: %s", ErrCorrupt, e.Path, e.Offset, e.Reason)
}

func (e *CorruptError) Unwrap() error { return ErrCorrupt }

func corrupt(path string, off int64, reason string) error {
	return &CorruptError{Path: path, Offset: off, Reason: reason}
}

// eventBytes aliases a batch's records as raw bytes for copying; the result
// borrows the batch and is consumed before any call returns it onward.
func eventBytes(batch []analysis.Event) []byte {
	if len(batch) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&batch[0])), len(batch)*eventSize)
}

// bytesEvents is the inverse view for replay; base must be 8-byte aligned.
func bytesEvents(b []byte) []analysis.Event {
	if len(b) < eventSize {
		return nil
	}
	return unsafe.Slice((*analysis.Event)(unsafe.Pointer(&b[0])), len(b)/eventSize)
}

// encodeTable serializes an EventTable deterministically (little-endian,
// length-prefixed strings) so identical instrumentations produce identical
// file headers.
func encodeTable(tbl *analysis.EventTable) []byte {
	var out []byte
	out = binary.LittleEndian.AppendUint32(out, uint32(len(tbl.Specs)))
	for i := range tbl.Specs {
		s := &tbl.Specs[i]
		var flags byte
		if s.Indirect {
			flags |= 1
		}
		if s.Post {
			flags |= 2
		}
		out = append(out, byte(s.Kind), flags, byte(len(s.Types)))
		for _, t := range s.Types {
			out = append(out, byte(t))
		}
		for _, str := range []string{s.Name, s.Op, string(s.Block)} {
			out = binary.LittleEndian.AppendUint16(out, uint16(len(str)))
			out = append(out, str...)
		}
	}
	return out
}

// decodeTable is the inverse of encodeTable; any bounds violation reports
// the blob as corrupt (via the returned error's text — Open wraps it).
func decodeTable(b []byte) (*analysis.EventTable, error) {
	if len(b) < 4 {
		return nil, errors.New("event table shorter than its count field")
	}
	n := binary.LittleEndian.Uint32(b)
	b = b[4:]
	specs := make([]analysis.EventSpec, 0, n)
	for i := uint32(0); i < n; i++ {
		if len(b) < 3 {
			return nil, fmt.Errorf("spec %d: truncated fixed fields", i)
		}
		kind, flags, nt := analysis.HookKind(b[0]), b[1], int(b[2])
		b = b[3:]
		if len(b) < nt {
			return nil, fmt.Errorf("spec %d: truncated type list", i)
		}
		var types []wasm.ValType
		if nt > 0 {
			types = make([]wasm.ValType, nt)
			for j := 0; j < nt; j++ {
				types[j] = wasm.ValType(b[j])
			}
		}
		b = b[nt:]
		var strs [3]string
		for j := range strs {
			if len(b) < 2 {
				return nil, fmt.Errorf("spec %d: truncated string length", i)
			}
			l := int(binary.LittleEndian.Uint16(b))
			b = b[2:]
			if len(b) < l {
				return nil, fmt.Errorf("spec %d: truncated string", i)
			}
			strs[j] = string(b[:l])
			b = b[l:]
		}
		specs = append(specs, analysis.EventSpec{
			Kind:     kind,
			Name:     strs[0],
			Op:       strs[1],
			Block:    analysis.BlockKind(strs[2]),
			Types:    types,
			Indirect: flags&1 != 0,
			Post:     flags&2 != 0,
		})
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%d trailing bytes after %d specs", len(b), n)
	}
	return &analysis.EventTable{Specs: specs}, nil
}

// dataOffset returns the 64-byte-aligned start of the record region for a
// given table length (alignment keeps the zero-copy []Event cast of an
// mmapped region 8-byte aligned, and record seeks cache-line friendly).
func dataOffset(tableLen int) int64 {
	return int64(headerSize+tableLen+63) &^ 63
}

// Writer appends event batches to a segment file. It implements
// analysis.EventSink, so it plugs directly into Stream.Serve or a fabric
// Subscription.Serve; like other sinks it copies out of the borrowed batch
// (into the file) and retains nothing. Write errors latch into Err — a
// sink cannot fail the stream it serves, so the stream keeps flowing and
// the recording is declared failed at Close/Err instead.
type Writer struct {
	f       *os.File
	path    string
	mapped  []byte // nil = portable WriteAt mode
	dataOff int64
	count   uint64
	err     error
	closed  bool
}

// Create creates (truncating) a segment file recording streams decoded by
// tbl — pass the Stream or Fabric's Table.
func Create(path string, tbl *analysis.EventTable) (*Writer, error) {
	blob := encodeTable(tbl)
	if len(blob) > 1<<31-1 {
		return nil, fmt.Errorf("wasabi: event table too large to record (%d bytes)", len(blob))
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := &Writer{f: f, path: path, dataOff: dataOffset(len(blob))}
	hdr := make([]byte, headerSize)
	copy(hdr, magic[:])
	binary.LittleEndian.PutUint32(hdr[8:], formatVersion)
	binary.LittleEndian.PutUint32(hdr[12:], eventSize)
	// watermark [16,24) starts 0
	if hostBigEndian {
		binary.LittleEndian.PutUint32(hdr[24:], flagBigEndian)
	}
	binary.LittleEndian.PutUint32(hdr[28:], uint32(len(blob)))
	if haveMmap {
		size := int(w.dataOff) + initialDataCap
		if err := f.Truncate(int64(size)); err == nil {
			if m, merr := mapRW(f, size); merr == nil {
				w.mapped = m
			}
		}
		// On any failure fall through to the portable path: the file was
		// created, WriteAt works everywhere.
	}
	if w.mapped != nil {
		copy(w.mapped, hdr)
		copy(w.mapped[headerSize:], blob)
		return w, nil
	}
	if _, err := f.WriteAt(hdr, 0); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.WriteAt(blob, headerSize); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// Events appends one batch. The batch is borrowed (copied into the file,
// never retained). Errors latch: after the first failure the writer drops
// further batches and reports the failure from Err and Close.
func (w *Writer) Events(batch []analysis.Event) {
	if w.err != nil {
		return
	}
	if w.closed {
		w.err = ErrSinkClosed
		return
	}
	if len(batch) == 0 {
		return
	}
	off := w.dataOff + int64(w.count)*eventSize
	src := eventBytes(batch)
	if w.mapped != nil {
		if need := off + int64(len(src)); need > int64(len(w.mapped)) {
			if err := w.grow(need); err != nil {
				w.err = err
				return
			}
		}
		copy(w.mapped[off:], src)
	} else if _, err := w.f.WriteAt(src, off); err != nil {
		w.err = err
		return
	}
	// Commit AFTER the records: the watermark only ever covers whole,
	// durable-ordered-before-it records (see the package comment).
	w.count += uint64(len(batch))
	w.putWatermark()
}

// grow remaps the file at least doubled. Only reached in mmap mode.
func (w *Writer) grow(need int64) error {
	size := int64(len(w.mapped)) * 2
	for size < need {
		size *= 2
	}
	if err := unmap(w.mapped); err != nil {
		w.mapped = nil
		return err
	}
	w.mapped = nil
	if err := w.f.Truncate(size); err != nil {
		return err
	}
	m, err := mapRW(w.f, int(size))
	if err != nil {
		return err
	}
	w.mapped = m
	return nil
}

func (w *Writer) putWatermark() {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], w.count)
	if w.mapped != nil {
		copy(w.mapped[16:24], buf[:])
		return
	}
	if _, err := w.f.WriteAt(buf[:], 16); err != nil {
		w.err = err
	}
}

// Count returns the number of committed records.
func (w *Writer) Count() uint64 { return w.count }

// Err returns the first write failure, or nil. A failed writer keeps
// accepting (and dropping) batches so the stream it serves is unaffected.
func (w *Writer) Err() error { return w.err }

// Close commits the final watermark, syncs, and truncates the file to its
// exact committed size. Idempotent; returns the first error of the
// recording (write failures latched by Events included).
func (w *Writer) Close() error {
	if w.closed {
		return w.err
	}
	w.closed = true
	if w.mapped != nil {
		if err := msync(w.mapped); err != nil && w.err == nil {
			w.err = err
		}
		if err := unmap(w.mapped); err != nil && w.err == nil {
			w.err = err
		}
		w.mapped = nil
	}
	if err := w.f.Truncate(w.dataOff + int64(w.count)*eventSize); err != nil && w.err == nil {
		w.err = err
	}
	if err := w.f.Sync(); err != nil && w.err == nil {
		w.err = err
	}
	if err := w.f.Close(); err != nil && w.err == nil {
		w.err = err
	}
	return w.err
}

// DefaultReplayBatch is Reader.Serve's batch size when none is given —
// the stream API's default, so replayed batch shapes match live ones.
const DefaultReplayBatch = 4096

// Reader replays a segment file through the stream API's decode surface:
// Table is the recorded EventTable, Records the committed region as live
// []analysis.Event batches are — zero-copy off the mmapped file where the
// platform allows.
type Reader struct {
	path   string
	data   []byte
	mapped bool
	tbl    *analysis.EventTable
	recs   []analysis.Event
}

// Open validates path's header and table and prepares the committed region
// for replay. Damage is reported as a *CorruptError (errors.Is ErrCorrupt);
// a torn tail past the watermark is crash debris, silently dropped.
func Open(path string) (*Reader, error) {
	r := &Reader{path: path}
	if err := r.load(); err != nil {
		r.Close()
		return nil, err
	}
	hdr := r.data
	if len(hdr) < headerSize {
		return nil, corrupt(path, 0, fmt.Sprintf("file is %d bytes, shorter than the %d-byte header", len(hdr), headerSize))
	}
	if [8]byte(hdr[:8]) != magic {
		return nil, corrupt(path, 0, "bad magic (not an event-log segment)")
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != formatVersion {
		return nil, corrupt(path, 8, fmt.Sprintf("format version %d, this build reads %d", v, formatVersion))
	}
	if rs := binary.LittleEndian.Uint32(hdr[12:]); rs != eventSize {
		return nil, corrupt(path, 12, fmt.Sprintf("record size %d, want %d", rs, eventSize))
	}
	flags := binary.LittleEndian.Uint32(hdr[24:])
	if big := flags&flagBigEndian != 0; big != hostBigEndian {
		return nil, corrupt(path, 24, "records were written on a host with different endianness")
	}
	tableLen := int64(binary.LittleEndian.Uint32(hdr[28:]))
	if headerSize+tableLen > int64(len(r.data)) {
		return nil, corrupt(path, 28, "event table extends past the end of the file")
	}
	tbl, err := decodeTable(r.data[headerSize : headerSize+tableLen])
	if err != nil {
		return nil, corrupt(path, headerSize, "event table: "+err.Error())
	}
	r.tbl = tbl
	watermark := binary.LittleEndian.Uint64(hdr[16:])
	dataOff := dataOffset(int(tableLen))
	var whole uint64
	if int64(len(r.data)) > dataOff {
		whole = uint64(int64(len(r.data))-dataOff) / eventSize
	}
	if watermark > whole {
		return nil, corrupt(path, 16, fmt.Sprintf("watermark commits %d records but the file holds %d — committed data is missing", watermark, whole))
	}
	if watermark > 0 {
		region := r.data[dataOff : dataOff+int64(watermark)*eventSize]
		if uintptr(unsafe.Pointer(&region[0]))%unsafe.Alignof(analysis.Event{}) == 0 {
			r.recs = bytesEvents(region)
		} else {
			// A heap-read file whose base misses Event alignment (possible
			// in principle for the portable path): fall back to one copy.
			r.recs = make([]analysis.Event, watermark)
			copy(eventBytes(r.recs), region)
		}
	}
	return r, nil
}

// load maps (or reads) the whole file.
func (r *Reader) load() error {
	if haveMmap {
		f, err := os.Open(r.path)
		if err != nil {
			return err
		}
		defer f.Close()
		st, err := f.Stat()
		if err != nil {
			return err
		}
		if st.Size() > 0 {
			if m, err := mapRO(f, int(st.Size())); err == nil {
				r.data, r.mapped = m, true
				return nil
			}
		}
		// Zero-length or unmappable: fall through to ReadFile.
	}
	data, err := os.ReadFile(r.path)
	if err != nil {
		return err
	}
	r.data = data
	return nil
}

// Table returns the recorded decode table.
func (r *Reader) Table() *analysis.EventTable { return r.tbl }

// Records returns every committed record, in order. Borrowed from the
// reader: valid until Close (it may alias the mapped file).
func (r *Reader) Records() []analysis.Event { return r.recs }

// Count returns the number of committed records.
func (r *Reader) Count() uint64 { return uint64(len(r.recs)) }

// Serve replays the committed records into sink in batches of about
// batchSize (<= 0 means DefaultReplayBatch), never splitting a primary
// record from its continuation records — the batch-boundary guarantee live
// streams give. Batches are borrowed, exactly like live ones.
func (r *Reader) Serve(sink analysis.EventSink, batchSize int) {
	if batchSize <= 0 {
		batchSize = DefaultReplayBatch
	}
	recs := r.recs
	for i := 0; i < len(recs); {
		end := i + batchSize
		if end > len(recs) {
			end = len(recs)
		}
		for end < len(recs) && recs[end].Hook == analysis.EventCont {
			end++
		}
		sink.Events(recs[i:end])
		i = end
	}
}

// Close releases the mapping. The reader (and any Records slice) is
// unusable afterwards.
func (r *Reader) Close() error {
	r.recs = nil
	data := r.data
	r.data = nil
	if r.mapped && data != nil {
		r.mapped = false
		return unmap(data)
	}
	return nil
}
