// Package analysis defines the high-level Wasabi analysis API (paper §2.3,
// Table 2). An analysis is any Go value implementing a subset of the hook
// interfaces below; the instrumenter inspects which interfaces are
// implemented and selectively instruments only the matching instruction
// classes (paper §2.4.2).
//
// The API preserves the paper's design properties: full instruction
// coverage, grouping of related instructions into 23 hooks, pre-computed
// information (resolved branch targets, resolved indirect-call targets), and
// faithful type mappings (i64 values cross the host boundary as two i32
// halves and are re-joined into Go int64, playing the role of long.js).
package analysis

import (
	"fmt"

	"wasabi/internal/wasm"
)

// Location identifies an instruction: the function index (in the original,
// uninstrumented index space) and the instruction index within that
// function's body. Instr is -1 for function-level locations (the implicit
// function block).
type Location struct {
	Func  int `json:"func"`
	Instr int `json:"instr"`
}

func (l Location) String() string { return fmt.Sprintf("%d:%d", l.Func, l.Instr) }

// Value is a typed WebAssembly value as seen by an analysis.
type Value struct {
	Type wasm.ValType
	Bits uint64 // raw representation: i32 zero-extended, floats as IEEE bits
}

// I32V constructs an i32 Value.
func I32V(v int32) Value { return Value{Type: wasm.I32, Bits: uint64(uint32(v))} }

// I64V constructs an i64 Value.
func I64V(v int64) Value { return Value{Type: wasm.I64, Bits: uint64(v)} }

// I32 extracts the i32 payload.
func (v Value) I32() int32 { return int32(uint32(v.Bits)) }

// I64 extracts the i64 payload.
func (v Value) I64() int64 { return int64(v.Bits) }

// F32 extracts the f32 payload.
func (v Value) F32() float32 { return f32frombits(uint32(v.Bits)) }

// F64 extracts the f64 payload.
func (v Value) F64() float64 { return f64frombits(v.Bits) }

// Float returns the value as float64 regardless of type (useful for generic
// numeric analyses; integers convert exactly up to 2^53).
func (v Value) Float() float64 {
	switch v.Type {
	case wasm.I32:
		return float64(v.I32())
	case wasm.I64:
		return float64(v.I64())
	case wasm.F32:
		return float64(v.F32())
	default:
		return v.F64()
	}
}

func (v Value) String() string {
	switch v.Type {
	case wasm.I32:
		return fmt.Sprintf("%d:i32", v.I32())
	case wasm.I64:
		return fmt.Sprintf("%d:i64", v.I64())
	case wasm.F32:
		return fmt.Sprintf("%v:f32", v.F32())
	default:
		return fmt.Sprintf("%v:f64", v.F64())
	}
}

// Values is a vector of hook values. The value vectors handed to the
// call/return hooks (CallPre args, CallPost and Return results) are BORROWED:
// they alias an engine-pooled buffer that is valid only for the duration of
// the hook call and is reused by later hook calls. An analysis that wants to
// keep a vector past its own return must copy it, e.g. with
// Values(args).Clone(). The same rule applies to the resolved-target table of
// the BrTable hook (copy with BranchTargets(table).Clone()). Scalar hook
// arguments (Location, Value, MemArg, ...) are plain copies and may always
// be kept.
type Values []Value

// Clone returns a freshly allocated copy the analysis owns and may retain.
func (vs Values) Clone() Values {
	if vs == nil {
		return nil
	}
	return append(make(Values, 0, len(vs)), vs...)
}

// BranchTargets is the borrowed resolved-target table of the BrTable hook;
// like Values it is valid only for the duration of the hook call.
type BranchTargets []BranchTarget

// Clone returns a freshly allocated copy the analysis owns and may retain.
func (ts BranchTargets) Clone() BranchTargets {
	if ts == nil {
		return nil
	}
	return append(make(BranchTargets, 0, len(ts)), ts...)
}

// MemArg describes one memory access: the dynamic address operand and the
// static offset immediate (effective address = Addr + Offset).
type MemArg struct {
	Addr   uint32
	Offset uint32
}

// EffAddr returns the effective address of the access.
func (m MemArg) EffAddr() uint64 { return uint64(m.Addr) + uint64(m.Offset) }

// BranchTarget pairs the raw relative label of a branch with the statically
// resolved absolute location of the next instruction executed if the branch
// is taken (paper §2.4.4).
type BranchTarget struct {
	Label    uint32
	Location Location
}

// BlockKind names the five kinds of blocks observed by begin/end hooks.
type BlockKind string

const (
	BlockFunction BlockKind = "function"
	BlockBlock    BlockKind = "block"
	BlockLoop     BlockKind = "loop"
	BlockIf       BlockKind = "if"
	BlockElse     BlockKind = "else"
)

// ModuleInfo gives analyses static information about the analyzed module
// (the paper's Wasabi.module.info).
type ModuleInfo struct {
	FuncTypes        []wasm.FuncType
	FuncNames        []string
	NumImportedFuncs int
	NumGlobals       int
	Exports          map[string]uint32 // exported function name → index
	Start            int               // start function index, -1 if none
}

// FuncName returns the name of function idx, or a numeric placeholder.
func (mi *ModuleInfo) FuncName(idx int) string {
	if idx >= 0 && idx < len(mi.FuncNames) && mi.FuncNames[idx] != "" {
		return mi.FuncNames[idx]
	}
	return fmt.Sprintf("func%d", idx)
}

// The hook interfaces. An analysis implements any subset; each corresponds
// to one high-level hook of Table 2 in the paper.

// ModuleInfoReceiver is implemented by analyses that want static module
// information before execution starts.
type ModuleInfoReceiver interface {
	SetModuleInfo(info *ModuleInfo)
}

// NopHooker observes nop instructions.
type NopHooker interface{ Nop(loc Location) }

// UnreachableHooker observes unreachable instructions (before the trap).
type UnreachableHooker interface{ Unreachable(loc Location) }

// IfHooker observes the condition of if instructions.
type IfHooker interface{ If(loc Location, cond bool) }

// BrHooker observes unconditional branches.
type BrHooker interface {
	Br(loc Location, target BranchTarget)
}

// BrIfHooker observes conditional branches (taken or not).
type BrIfHooker interface {
	BrIf(loc Location, target BranchTarget, cond bool)
}

// BrTableHooker observes multi-way branches. table lists the resolved
// targets, deflt is the default target, and idx is the runtime index. table
// is borrowed: valid only during the hook call,
// BranchTargets(table).Clone() to retain.
type BrTableHooker interface {
	BrTable(loc Location, table []BranchTarget, deflt BranchTarget, idx uint32)
}

// BeginHooker observes block entries (function, block, loop, if, else). For
// loops it fires once per iteration.
type BeginHooker interface {
	Begin(loc Location, kind BlockKind)
}

// EndHooker observes block exits, including blocks "traversed" by branches
// and returns (paper §2.4.5).
type EndHooker interface {
	End(loc Location, kind BlockKind, begin Location)
}

// ConstHooker observes constant instructions and their produced value.
type ConstHooker interface{ Const(loc Location, v Value) }

// DropHooker observes drop and the value removed.
type DropHooker interface{ Drop(loc Location, v Value) }

// SelectHooker observes select: the condition and both candidate values.
type SelectHooker interface {
	Select(loc Location, cond bool, first, second Value)
}

// UnaryHooker observes unary numeric operations; op is the instruction name
// (e.g. "f32.abs").
type UnaryHooker interface {
	Unary(loc Location, op string, input, result Value)
}

// BinaryHooker observes binary numeric operations; op is the instruction
// name (e.g. "i32.add").
type BinaryHooker interface {
	Binary(loc Location, op string, first, second, result Value)
}

// LocalHooker observes local.get/set/tee; op is the instruction name.
type LocalHooker interface {
	Local(loc Location, op string, index uint32, v Value)
}

// GlobalHooker observes global.get/set; op is the instruction name.
type GlobalHooker interface {
	Global(loc Location, op string, index uint32, v Value)
}

// LoadHooker observes memory loads; op is the instruction name.
type LoadHooker interface {
	Load(loc Location, op string, mem MemArg, v Value)
}

// StoreHooker observes memory stores; op is the instruction name.
type StoreHooker interface {
	Store(loc Location, op string, mem MemArg, v Value)
}

// MemorySizeHooker observes memory.size and its result.
type MemorySizeHooker interface {
	MemorySize(loc Location, pages uint32)
}

// MemoryGrowHooker observes memory.grow.
type MemoryGrowHooker interface {
	MemoryGrow(loc Location, delta, previousSize uint32)
}

// CallPreHooker observes calls before the callee runs. target is the callee
// function index (for indirect calls, resolved from the runtime table
// index); tableIdx is -1 for direct calls. args is borrowed (see Values):
// valid only during the hook call, Values(args).Clone() to retain.
type CallPreHooker interface {
	CallPre(loc Location, target int, args []Value, tableIdx int64)
}

// CallPostHooker observes call returns and the result values. results is
// borrowed (see Values).
type CallPostHooker interface {
	CallPost(loc Location, results []Value)
}

// ReturnHooker observes function returns (explicit and implicit). results is
// borrowed (see Values).
type ReturnHooker interface {
	Return(loc Location, results []Value)
}

// StartHooker observes execution of the module's start function.
type StartHooker interface{ Start(loc Location) }

// BlockCoverageHooker marks a coverage-class analysis that can consume one
// probe event per CFG basic block instead of a hook per instruction. loc is
// the block's first original instruction; end is the index of its last, so
// the analysis can mark the whole [loc.Instr, end] range covered from one
// event. A static-analysis-enabled engine (wasabi.WithStaticAnalysis)
// collapses the instrumentation of such analyses to block probes; without a
// static plan the probe never fires and the analysis falls back to whatever
// per-instruction hooks it also implements.
type BlockCoverageHooker interface {
	BlockCovered(loc Location, end int)
}

// BlockModeKeeper optionally refines block-probe elision: when a
// BlockCoverageHooker also implements it, the returned kinds stay
// instrumented per-instruction alongside the probes (for hooks whose payload
// — e.g. branch directions — cannot be reconstructed from block coverage
// alone). Analyses without it run on probes only.
type BlockModeKeeper interface {
	BlockModeHooks() HookSet
}
