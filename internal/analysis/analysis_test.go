package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"wasabi/internal/wasm"
)

func TestValueAccessors(t *testing.T) {
	if v := I32V(-5); v.I32() != -5 || v.Type != wasm.I32 {
		t.Errorf("I32V: %v", v)
	}
	if v := I64V(math.MinInt64); v.I64() != math.MinInt64 {
		t.Errorf("I64V: %v", v)
	}
	f32v := Value{Type: wasm.F32, Bits: uint64(math.Float32bits(2.5))}
	if f32v.F32() != 2.5 {
		t.Errorf("F32: %v", f32v.F32())
	}
	f64v := Value{Type: wasm.F64, Bits: math.Float64bits(-1.25)}
	if f64v.F64() != -1.25 {
		t.Errorf("F64: %v", f64v.F64())
	}
	if f64v.Float() != -1.25 || I32V(3).Float() != 3 {
		t.Error("Float() conversion wrong")
	}
	if I32V(7).String() != "7:i32" {
		t.Errorf("String: %s", I32V(7))
	}
}

func TestQuickValueRoundTrip(t *testing.T) {
	if err := quick.Check(func(x int64) bool {
		return I64V(x).I64() == x
	}, nil); err != nil {
		t.Error(err)
	}
	if err := quick.Check(func(x int32) bool {
		return I32V(x).I32() == x
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestMemArg(t *testing.T) {
	m := MemArg{Addr: math.MaxUint32, Offset: math.MaxUint32}
	if m.EffAddr() != 2*uint64(math.MaxUint32) {
		t.Errorf("EffAddr must not wrap: %d", m.EffAddr())
	}
}

func TestHookSetOps(t *testing.T) {
	s := Set(KindLoad, KindStore)
	if !s.Has(KindLoad) || !s.Has(KindStore) || s.Has(KindCall) {
		t.Error("Has wrong")
	}
	if s.String() != "load,store" {
		t.Errorf("String: %s", s)
	}
	if AllHooks.String() != "all" {
		t.Errorf("AllHooks String: %s", AllHooks)
	}
	// AllHooks covers every per-instruction kind but not the synthetic
	// block probe, which only exists where a static plan places it.
	if got := len(AllHooks.Kinds()); got != NumKinds-1 {
		t.Errorf("AllHooks has %d kinds, want %d", got, NumKinds-1)
	}
	if AllHooks.Has(KindBlockProbe) {
		t.Error("AllHooks must not include block_probe")
	}
	if s, ok := ParseHookSet("block_probe"); !ok || !s.Has(KindBlockProbe) {
		t.Error("block_probe must parse by name")
	}
	if HookSet(0).String() != "" || !HookSet(0).IsEmpty() {
		t.Error("empty set wrong")
	}
}

func TestParseHookSet(t *testing.T) {
	s, ok := ParseHookSet("load, store,br_if")
	if !ok || s != Set(KindLoad, KindStore, KindBrIf) {
		t.Errorf("parse: %v %v", s, ok)
	}
	if s, ok := ParseHookSet("all"); !ok || s != AllHooks {
		t.Errorf("all: %v %v", s, ok)
	}
	if _, ok := ParseHookSet("bogus"); ok {
		t.Error("bogus should fail")
	}
	// Round trip every kind name.
	for k := HookKind(0); int(k) < NumKinds; k++ {
		got, ok := KindFromName(k.String())
		if !ok || got != k {
			t.Errorf("KindFromName(%s) = %v, %v", k, got, ok)
		}
	}
}

type loadOnly struct{}

func (loadOnly) Load(Location, string, MemArg, Value) {}

type loadStoreCall struct{ loadOnly }

func (loadStoreCall) Store(Location, string, MemArg, Value) {}
func (loadStoreCall) CallPost(Location, []Value)            {}

func TestHooksOf(t *testing.T) {
	if got := HooksOf(loadOnly{}); got != Set(KindLoad) {
		t.Errorf("loadOnly: %s", got)
	}
	// call_post alone still selects the call kind (pre and post are always
	// instrumented together).
	if got := HooksOf(loadStoreCall{}); got != Set(KindLoad, KindStore, KindCall) {
		t.Errorf("loadStoreCall: %s", got)
	}
	if got := HooksOf(struct{}{}); !got.IsEmpty() {
		t.Errorf("empty analysis: %s", got)
	}
}

func TestModuleInfoFuncName(t *testing.T) {
	mi := &ModuleInfo{FuncNames: []string{"a", ""}}
	if mi.FuncName(0) != "a" || mi.FuncName(1) != "func1" || mi.FuncName(7) != "func7" {
		t.Error("FuncName fallback wrong")
	}
}
