package analysis

// Cap is a capability bitset with one bit per high-level callback an
// analysis can implement. It is finer-grained than HookSet: KindCall covers
// both the call_pre and call_post low-level hooks, but an analysis may
// implement only one of the two, and the runtime's per-spec trampolines bind
// the other to a shared no-op (which the interpreter then elides at compile
// time). The instrumenter keeps using HookSet — both call hooks must be
// instrumented together so pre/post events stay paired — while the runtime
// uses Cap to decide, per generated hook, whether dispatch can be dead.
type Cap uint32

const (
	CapNop Cap = 1 << iota
	CapUnreachable
	CapIf
	CapBr
	CapBrIf
	CapBrTable
	CapBegin
	CapEnd
	CapConst
	CapDrop
	CapSelect
	CapUnary
	CapBinary
	CapLocal
	CapGlobal
	CapLoad
	CapStore
	CapMemorySize
	CapMemoryGrow
	CapCallPre
	CapCallPost
	CapReturn
	CapStart
	// CapBlockCoverage marks an analysis that can consume one probe event
	// per CFG basic block (BlockCoverageHooker) instead of per-instruction
	// hooks: a static-analysis-enabled engine collapses its coverage-class
	// instrumentation to block probes (see internal/static).
	CapBlockCoverage
)

// AllCaps selects every per-instruction callback: instrumenting for AllCaps
// produces a module any analysis can attach to (the engine's compile-once /
// instrument-many default). CapBlockCoverage is excluded — block probes are
// an opt-in elision strategy, not part of "observe everything".
const AllCaps = Cap(1<<(numKinds+1)-1) &^ CapBlockCoverage // one bit per kind, plus the call pre/post split

// Has reports whether every bit of x is set in c.
func (c Cap) Has(x Cap) bool { return c&x == x }

// HasAny reports whether at least one bit of x is set in c.
func (c Cap) HasAny(x Cap) bool { return c&x != 0 }

// CapsOf inspects which hook interfaces the analysis implements and returns
// the matching capability bits.
func CapsOf(a any) Cap {
	var c Cap
	if _, ok := a.(NopHooker); ok {
		c |= CapNop
	}
	if _, ok := a.(UnreachableHooker); ok {
		c |= CapUnreachable
	}
	if _, ok := a.(IfHooker); ok {
		c |= CapIf
	}
	if _, ok := a.(BrHooker); ok {
		c |= CapBr
	}
	if _, ok := a.(BrIfHooker); ok {
		c |= CapBrIf
	}
	if _, ok := a.(BrTableHooker); ok {
		c |= CapBrTable
	}
	if _, ok := a.(BeginHooker); ok {
		c |= CapBegin
	}
	if _, ok := a.(EndHooker); ok {
		c |= CapEnd
	}
	if _, ok := a.(ConstHooker); ok {
		c |= CapConst
	}
	if _, ok := a.(DropHooker); ok {
		c |= CapDrop
	}
	if _, ok := a.(SelectHooker); ok {
		c |= CapSelect
	}
	if _, ok := a.(UnaryHooker); ok {
		c |= CapUnary
	}
	if _, ok := a.(BinaryHooker); ok {
		c |= CapBinary
	}
	if _, ok := a.(LocalHooker); ok {
		c |= CapLocal
	}
	if _, ok := a.(GlobalHooker); ok {
		c |= CapGlobal
	}
	if _, ok := a.(LoadHooker); ok {
		c |= CapLoad
	}
	if _, ok := a.(StoreHooker); ok {
		c |= CapStore
	}
	if _, ok := a.(MemorySizeHooker); ok {
		c |= CapMemorySize
	}
	if _, ok := a.(MemoryGrowHooker); ok {
		c |= CapMemoryGrow
	}
	if _, ok := a.(CallPreHooker); ok {
		c |= CapCallPre
	}
	if _, ok := a.(CallPostHooker); ok {
		c |= CapCallPost
	}
	if _, ok := a.(ReturnHooker); ok {
		c |= CapReturn
	}
	if _, ok := a.(StartHooker); ok {
		c |= CapStart
	}
	if _, ok := a.(BlockCoverageHooker); ok {
		c |= CapBlockCoverage
	}
	return c
}

// capOfKind maps a HookKind to its capability bits (both call bits for
// KindCall, since either callback makes the kind live).
var capOfKind = [NumKinds]Cap{
	KindNop:         CapNop,
	KindUnreachable: CapUnreachable,
	KindMemorySize:  CapMemorySize,
	KindMemoryGrow:  CapMemoryGrow,
	KindSelect:      CapSelect,
	KindDrop:        CapDrop,
	KindLoad:        CapLoad,
	KindStore:       CapStore,
	KindCall:        CapCallPre | CapCallPost,
	KindReturn:      CapReturn,
	KindConst:       CapConst,
	KindUnary:       CapUnary,
	KindBinary:      CapBinary,
	KindGlobal:      CapGlobal,
	KindLocal:       CapLocal,
	KindBegin:       CapBegin,
	KindEnd:         CapEnd,
	KindIf:          CapIf,
	KindBr:          CapBr,
	KindBrIf:        CapBrIf,
	KindBrTable:     CapBrTable,
	KindStart:       CapStart,
	KindBlockProbe:  CapBlockCoverage,
}

// HookSet converts capability bits to the coarser HookSet used by the
// instrumenter: a kind is selected when any of its callbacks is implemented.
func (c Cap) HookSet() HookSet {
	var s HookSet
	for k := HookKind(0); k < numKinds; k++ {
		if c.HasAny(capOfKind[k]) {
			s = s.With(k)
		}
	}
	return s
}
