package analysis

// The event-stream surface: hook events as packed, fixed-width records
// instead of synchronous callbacks. Where the callback API dispatches every
// low-level hook straight into analysis Go code on the program's hot path,
// the stream API appends one Event record per hook call to a per-session
// batch buffer and hands whole batches to the consumer — decoupling event
// production from analysis cost (and enabling off-thread consumers).
//
// Event is deliberately dumb: 40 bytes, pointer-free, meaningful only
// together with the instrumentation's hook table. The EventTable (built from
// core.Metadata) is the decode side: it maps Event.Hook back to the hook's
// kind, instruction name, block kind, and payload types, exactly the
// information the per-spec trampolines capture at compile time on the
// callback path.

import "wasabi/internal/wasm"

// EventCont marks a continuation record: when an event's logical value
// vector does not fit the primary record (a call with many arguments), the
// encoder emits the primary record followed by continuation records carrying
// up to 3 further values each. Continuations always directly follow their
// primary record within the same batch.
const EventCont = uint16(0xFFFF)

// EventSynth marks a synthesized record with no backing hook spec: the end
// records replayed by a br_table branch when the module was instrumented
// without end hooks (the replay data lives in the br_table metadata, so the
// callback path fires those ends too). Synthesized records are fully
// self-describing — end records carry their block kind as a code in
// Vals[0] — so consumers must decode them by Kind, not through
// EventTable.Spec.
const EventSynth = uint16(0xFFFE)

// Event is one packed hook-event record: 16 bytes of header plus up to three
// 8-byte value slots. Records are fixed-width so a batch is a flat
// []Event with no per-event allocation or pointer chasing.
//
// Which fields are meaningful depends on Kind:
//
//	Kind          Aux                  Vals[0]          Vals[1]      Vals[2]
//	nop/unreach/
//	start/begin   —                    —                —            —
//	if            condition (0/1)      —                —            —
//	br            raw label            target instr     —            —
//	br_if         condition (0/1)      raw label        target instr —
//	br_table      runtime index        metadata index   —            —
//	end           begin instr (int32)  block kind code  —            —
//	const/drop    —                    value            —            —
//	select        condition (0/1)      first            second       —
//	unary         —                    input            result       —
//	binary        —                    first            second       result
//	local/global  variable index       value            —            —
//	load/store    static offset        address          value        —
//	memory_size   current pages        —                —            —
//	memory_grow   delta pages          previous pages   —            —
//	block_probe   block end instr      —                —            —
//	call (pre)    target func (int32)  table idx (i64,  arg0         arg1
//	                                   -1 if direct)    (rest in continuations)
//	call (post)/
//	return        —                    result0          result1      result2
//
// Value slots hold the raw 64-bit representation of a wasm value (i32/f32
// zero-extended, floats as IEEE bits — the same representation as
// Value.Bits); their types are static per hook and recovered through the
// EventTable. Locations are always in the original (uninstrumented) index
// space, like the callback API's Location.
type Event struct {
	Hook  uint16   // index into the instrumentation's hook table; EventCont for continuations
	Kind  HookKind // high-level hook kind (copied from the spec; set on continuations too)
	Pack  uint8    // bits 0-1: occupied Vals slots; bits 2-3/4-5/6-7: type tags of slots 0/1/2
	Func  int32    // location: original function index
	Instr int32    // location: instruction index (-1 for function-level events)
	Aux   uint32   // kind-specific scalar, see the table above
	Vals  [3]uint64
}

// Loc returns the event's location.
func (e *Event) Loc() Location { return Location{Func: int(e.Func), Instr: int(e.Instr)} }

// NumVals returns how many Vals slots of this record are occupied.
func (e *Event) NumVals() int { return int(e.Pack & 3) }

// Val decodes occupied slot i into a typed Value using the record's packed
// type tag.
func (e *Event) Val(i int) Value {
	return Value{Type: TagType(e.Pack >> (2 + 2*uint(i)) & 3), Bits: e.Vals[i]}
}

// Type tags packed into Event.Pack, 2 bits per value slot.
const (
	tagI32 = 0
	tagI64 = 1
	tagF32 = 2
	tagF64 = 3
)

// TypeTag returns the 2-bit tag of a value type.
func TypeTag(t wasm.ValType) uint8 {
	switch t {
	case wasm.I64:
		return tagI64
	case wasm.F32:
		return tagF32
	case wasm.F64:
		return tagF64
	default:
		return tagI32
	}
}

// TagType is the inverse of TypeTag.
func TagType(tag uint8) wasm.ValType {
	switch tag {
	case tagI64:
		return wasm.I64
	case tagF32:
		return wasm.F32
	case tagF64:
		return wasm.F64
	default:
		return wasm.I32
	}
}

// PackSlots builds an Event.Pack byte for n occupied slots with the given
// types (len(ts) >= n). Encoders call this once at compile time per record
// shape, never per event.
func PackSlots(ts ...wasm.ValType) uint8 {
	p := uint8(len(ts))
	for i, t := range ts {
		p |= TypeTag(t) << (2 + 2*uint(i))
	}
	return p
}

// Block kind codes, carried by end records so they decode without a spec
// lookup (required for the synthesized br_table end replays, see
// EventSynth).
var blockKindCodes = [...]BlockKind{BlockFunction, BlockBlock, BlockLoop, BlockIf, BlockElse}

// Code returns the stable numeric code of a block kind.
func (k BlockKind) Code() uint32 {
	for i, b := range blockKindCodes {
		if b == k {
			return uint32(i)
		}
	}
	return 0
}

// BlockKindOf is the inverse of BlockKind.Code.
func BlockKindOf(code uint32) BlockKind {
	if int(code) < len(blockKindCodes) {
		return blockKindCodes[code]
	}
	return BlockFunction
}

// EventSpec is the decode-side description of one low-level hook: everything
// a stream consumer needs to turn the hook's records back into typed,
// named events. Indexed by Event.Hook in an EventTable.
type EventSpec struct {
	Kind     HookKind
	Name     string         // low-level hook name (e.g. "binary_i32.add")
	Op       string         // instruction name for op-carrying hooks (e.g. "i32.add"), else ""
	Block    BlockKind      // block kind for begin/end hooks
	Types    []wasm.ValType // logical payload types, as in the hook spec
	Indirect bool           // call_pre through a table
	Post     bool           // call_post (vs call_pre) for KindCall
}

// ValueTypes returns the types of the hook's logical value vector (call
// arguments or call/return results) for the vector-carrying hooks.
func (s *EventSpec) ValueTypes() []wasm.ValType {
	if s.Kind == KindCall && !s.Post {
		return s.Types[1:] // Types[0] is the i32 target / table index
	}
	return s.Types
}

// EventTable maps Event.Hook indices back to their specs. It is immutable
// and shared by every stream of one compiled instrumentation.
type EventTable struct {
	Specs []EventSpec
}

// Spec returns the spec of an event record. Not valid for EventCont or
// EventSynth records, which have no hook-table entry (synthesized end
// records are self-describing: Kind plus the block kind code in Vals[0]).
func (t *EventTable) Spec(e *Event) *EventSpec { return &t.Specs[e.Hook] }

// AppendValues decodes the logical value vector of the vector-carrying event
// at batch[i] (call_pre arguments, call_post/return results), reading the
// primary record and any continuation records that follow it, and appends
// the typed values to dst. It returns the extended slice and the index of
// the first record after the event. For any other event kind it appends
// nothing and returns i+1.
func (t *EventTable) AppendValues(dst []Value, batch []Event, i int) ([]Value, int) {
	e := &batch[i]
	spec := t.Spec(e)
	ts := spec.ValueTypes()
	i++
	if spec.Kind != KindCall && spec.Kind != KindReturn {
		return dst, i
	}
	// Inline slots of the primary record: call_pre holds the table index in
	// Vals[0], so its arguments start at slot 1.
	slot, rec := 0, e
	if spec.Kind == KindCall && !spec.Post {
		slot = 1
	}
	for _, vt := range ts {
		if slot == len(rec.Vals) {
			rec, slot = &batch[i], 0 // continuation records directly follow
			i++
		}
		dst = append(dst, Value{Type: vt, Bits: rec.Vals[slot]})
		slot++
	}
	return dst, i
}

// Next returns the index of the first record after the event at batch[i],
// skipping its continuation records.
func (t *EventTable) Next(batch []Event, i int) int {
	for i++; i < len(batch) && batch[i].Hook == EventCont; i++ {
	}
	return i
}

// EventSink consumes batches of hook-event records. Batches are BORROWED:
// the slice (and every record in it) is valid only until the consumer asks
// for the next batch — the same buffer is reused for later events. A sink
// that wants to retain records must copy them.
type EventSink interface {
	Events(batch []Event)
}

// EventStreamer is implemented by stream-native analyses: instead of (or in
// addition to) the callback hook interfaces, they declare which event
// classes they consume. Session.Stream uses StreamCaps to decide which
// hooks get record encoders; CompiledAnalysis.NewSession accepts an
// analysis whose only capabilities are stream capabilities.
type EventStreamer interface {
	StreamCaps() Cap
}

// EventTableReceiver is implemented by stream consumers that want the
// decode table before events start flowing (the stream-side analogue of
// ModuleInfoReceiver).
type EventTableReceiver interface {
	SetEventTable(t *EventTable)
}
