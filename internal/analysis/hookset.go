package analysis

import (
	"math"
	"strings"
)

func f32frombits(b uint32) float32 { return math.Float32frombits(b) }
func f64frombits(b uint64) float64 { return math.Float64frombits(b) }

// HookKind identifies one selectively-instrumentable class of instructions.
// The kinds correspond to the x-axis of Figures 8 and 9 in the paper (plus
// start, which the figures omit). KindCall covers both call_pre and
// call_post, which are always instrumented together.
type HookKind uint8

const (
	KindNop HookKind = iota
	KindUnreachable
	KindMemorySize
	KindMemoryGrow
	KindSelect
	KindDrop
	KindLoad
	KindStore
	KindCall
	KindReturn
	KindConst
	KindUnary
	KindBinary
	KindGlobal
	KindLocal
	KindBegin
	KindEnd
	KindIf
	KindBr
	KindBrIf
	KindBrTable
	KindStart
	// KindBlockProbe is the synthetic coverage probe emitted once per CFG
	// basic block when instrumentation runs under a static plan (see
	// internal/static): its payload is the block's last original instruction
	// index, so a coverage analysis can mark the whole [loc.Instr, end]
	// range from one event. It is not part of AllHooks — probes only exist
	// where a plan places them, never under "instrument everything".
	KindBlockProbe
	numKinds
)

var kindNames = [...]string{
	"nop", "unreachable", "memory_size", "memory_grow", "select", "drop",
	"load", "store", "call", "return", "const", "unary", "binary", "global",
	"local", "begin", "end", "if", "br", "br_if", "br_table", "start",
	"block_probe",
}

func (k HookKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "hookkind(?)"
}

// KindFromName parses a hook-kind name as printed by String.
func KindFromName(name string) (HookKind, bool) {
	for i, n := range kindNames {
		if n == name {
			return HookKind(i), true
		}
	}
	return 0, false
}

// NumKinds is the number of distinct hook kinds.
const NumKinds = int(numKinds)

// HookSet is a set of hook kinds, used to drive selective instrumentation.
type HookSet uint32

// AllHooks selects every per-instruction hook kind (full instrumentation).
// The synthetic KindBlockProbe is excluded: block probes are placed by a
// static plan, not by instrumenting every instruction of their kind.
const AllHooks = HookSet(1<<numKinds-1) &^ HookSet(1<<KindBlockProbe)

// With returns s with kind k added.
func (s HookSet) With(k HookKind) HookSet { return s | 1<<k }

// Has reports whether kind k is in the set.
func (s HookSet) Has(k HookKind) bool { return s&(1<<k) != 0 }

// IsEmpty reports whether no kinds are selected.
func (s HookSet) IsEmpty() bool { return s == 0 }

// Kinds returns the selected kinds in declaration order.
func (s HookSet) Kinds() []HookKind {
	var ks []HookKind
	for k := HookKind(0); k < numKinds; k++ {
		if s.Has(k) {
			ks = append(ks, k)
		}
	}
	return ks
}

func (s HookSet) String() string {
	if s == AllHooks {
		return "all"
	}
	var names []string
	for _, k := range s.Kinds() {
		names = append(names, k.String())
	}
	return strings.Join(names, ",")
}

// Set constructs a HookSet from kinds.
func Set(kinds ...HookKind) HookSet {
	var s HookSet
	for _, k := range kinds {
		s = s.With(k)
	}
	return s
}

// ParseHookSet parses a comma-separated list of hook names, or "all".
func ParseHookSet(s string) (HookSet, bool) {
	if s == "all" || s == "" {
		return AllHooks, true
	}
	var set HookSet
	for _, name := range strings.Split(s, ",") {
		k, ok := KindFromName(strings.TrimSpace(name))
		if !ok {
			return 0, false
		}
		set = set.With(k)
	}
	return set, true
}

// HooksOf inspects which hook interfaces the analysis implements and returns
// the matching hook set. This is how Wasabi decides what to instrument for a
// given analysis (selective instrumentation, paper §2.4.2).
func HooksOf(a any) HookSet { return CapsOf(a).HookSet() }
