package binary

import (
	"errors"
	"fmt"

	"wasabi/internal/leb128"
	"wasabi/internal/wasm"
)

// ErrBadMagic is returned for inputs that are not wasm binaries.
var ErrBadMagic = errors.New("binary: bad magic or unsupported version")

// Decode parses a WebAssembly binary into a module AST.
func Decode(data []byte) (*wasm.Module, error) {
	r := &reader{data: data}
	if len(data) < 8 {
		return nil, ErrBadMagic
	}
	for i, b := range header {
		if data[i] != b {
			return nil, ErrBadMagic
		}
	}
	r.pos = 8

	m := &wasm.Module{}
	lastSection := -1
	for !r.done() {
		id := r.byte()
		size := r.u32()
		if r.err != nil {
			return nil, r.err
		}
		end := r.pos + int(size)
		if end > len(r.data) {
			return nil, fmt.Errorf("binary: section %d length %d exceeds input", id, size)
		}
		if id != secCustom {
			if int(id) <= lastSection {
				return nil, fmt.Errorf("binary: section %d out of order", id)
			}
			lastSection = int(id)
		}
		body := &reader{data: r.data[r.pos:end]}
		var err error
		switch id {
		case secCustom:
			err = decodeCustom(body, m)
		case secType:
			err = decodeTypes(body, m)
		case secImport:
			err = decodeImports(body, m)
		case secFunction:
			err = decodeFuncDecls(body, m)
		case secTable:
			err = decodeTables(body, m)
		case secMemory:
			err = decodeMemories(body, m)
		case secGlobal:
			err = decodeGlobals(body, m)
		case secExport:
			err = decodeExports(body, m)
		case secStart:
			v := body.u32()
			m.Start = &v
			err = body.err
		case secElem:
			err = decodeElems(body, m)
		case secCode:
			err = decodeCode(body, m)
		case secData:
			err = decodeDatas(body, m)
		default:
			err = fmt.Errorf("binary: unknown section id %d", id)
		}
		if err != nil {
			return nil, err
		}
		// Non-custom section payloads must be consumed exactly.
		if id != secCustom && body.pos != len(body.data) {
			return nil, fmt.Errorf("binary: section %d has %d trailing bytes", id, len(body.data)-body.pos)
		}
		r.pos = end
	}
	// The code section is mandatory when functions are declared.
	for i := range m.Funcs {
		if m.Funcs[i].Body == nil {
			return nil, fmt.Errorf("binary: function %d has no code (missing code section)", i)
		}
	}
	return m, nil
}

// capHint bounds slice preallocation driven by unvalidated counts from the
// input: a hostile length prefix must not force a huge allocation before the
// (necessarily shorter) payload fails to parse.
func capHint(n uint32) uint32 {
	const max = 4096
	if n > max {
		return max
	}
	return n
}

type reader struct {
	data []byte
	pos  int
	err  error
}

func (r *reader) done() bool { return r.err != nil || r.pos >= len(r.data) }

func (r *reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *reader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.pos >= len(r.data) {
		r.fail(fmt.Errorf("binary: unexpected end of input at offset %d", r.pos))
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.pos+n > len(r.data) {
		r.fail(fmt.Errorf("binary: unexpected end of input at offset %d", r.pos))
		return nil
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b
}

func (r *reader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	v, n, err := leb128.U32(r.data[r.pos:])
	if err != nil {
		r.fail(err)
		return 0
	}
	r.pos += n
	return v
}

func (r *reader) s32() int32 {
	if r.err != nil {
		return 0
	}
	v, n, err := leb128.S32(r.data[r.pos:])
	if err != nil {
		r.fail(err)
		return 0
	}
	r.pos += n
	return v
}

func (r *reader) s64() int64 {
	if r.err != nil {
		return 0
	}
	v, n, err := leb128.S64(r.data[r.pos:])
	if err != nil {
		r.fail(err)
		return 0
	}
	r.pos += n
	return v
}

func (r *reader) name() string {
	n := r.u32()
	b := r.bytes(int(n))
	return string(b)
}

func (r *reader) valType() wasm.ValType {
	t := wasm.ValType(r.byte())
	if r.err == nil && !t.Valid() {
		r.fail(fmt.Errorf("binary: invalid value type 0x%02x", byte(t)))
	}
	return t
}

func (r *reader) valTypes() []wasm.ValType {
	n := r.u32()
	if r.err != nil || n == 0 {
		return nil
	}
	ts := make([]wasm.ValType, 0, capHint(n))
	for i := uint32(0); i < n && r.err == nil; i++ {
		ts = append(ts, r.valType())
	}
	return ts
}

func (r *reader) limits() wasm.Limits {
	flag := r.byte()
	var l wasm.Limits
	l.Min = r.u32()
	if flag == 0x01 {
		l.HasMax = true
		l.Max = r.u32()
	} else if flag != 0x00 {
		r.fail(fmt.Errorf("binary: invalid limits flag 0x%02x", flag))
	}
	return l
}

func (r *reader) globalType() wasm.GlobalType {
	var gt wasm.GlobalType
	gt.Type = r.valType()
	mut := r.byte()
	gt.Mutable = mut == 0x01
	if r.err == nil && mut > 1 {
		r.fail(fmt.Errorf("binary: invalid mutability flag 0x%02x", mut))
	}
	return gt
}

func decodeTypes(r *reader, m *wasm.Module) error {
	n := r.u32()
	for i := uint32(0); i < n && r.err == nil; i++ {
		if form := r.byte(); form != 0x60 && r.err == nil {
			return fmt.Errorf("binary: type %d: expected functype form 0x60, got 0x%02x", i, form)
		}
		var ft wasm.FuncType
		ft.Params = r.valTypes()
		ft.Results = r.valTypes()
		m.Types = append(m.Types, ft)
	}
	return r.err
}

func decodeImports(r *reader, m *wasm.Module) error {
	n := r.u32()
	for i := uint32(0); i < n && r.err == nil; i++ {
		var imp wasm.Import
		imp.Module = r.name()
		imp.Name = r.name()
		imp.Kind = wasm.ExternKind(r.byte())
		switch imp.Kind {
		case wasm.ExternFunc:
			imp.TypeIdx = r.u32()
		case wasm.ExternTable:
			if et := r.byte(); et != 0x70 && r.err == nil {
				return fmt.Errorf("binary: import %d: unsupported elem type 0x%02x", i, et)
			}
			imp.Table = r.limits()
		case wasm.ExternMemory:
			imp.Mem = r.limits()
		case wasm.ExternGlobal:
			imp.Global = r.globalType()
		default:
			return fmt.Errorf("binary: import %d: unknown kind 0x%02x", i, byte(imp.Kind))
		}
		m.Imports = append(m.Imports, imp)
	}
	return r.err
}

func decodeFuncDecls(r *reader, m *wasm.Module) error {
	n := r.u32()
	for i := uint32(0); i < n && r.err == nil; i++ {
		m.Funcs = append(m.Funcs, wasm.Func{TypeIdx: r.u32()})
	}
	return r.err
}

func decodeTables(r *reader, m *wasm.Module) error {
	n := r.u32()
	for i := uint32(0); i < n && r.err == nil; i++ {
		if et := r.byte(); et != 0x70 && r.err == nil {
			return fmt.Errorf("binary: table %d: unsupported elem type 0x%02x", i, et)
		}
		m.Tables = append(m.Tables, r.limits())
	}
	return r.err
}

func decodeMemories(r *reader, m *wasm.Module) error {
	n := r.u32()
	for i := uint32(0); i < n && r.err == nil; i++ {
		m.Memories = append(m.Memories, r.limits())
	}
	return r.err
}

func decodeGlobals(r *reader, m *wasm.Module) error {
	n := r.u32()
	for i := uint32(0); i < n && r.err == nil; i++ {
		var g wasm.Global
		g.Type = r.globalType()
		var err error
		g.Init, err = r.expr()
		if err != nil {
			return err
		}
		m.Globals = append(m.Globals, g)
	}
	return r.err
}

func decodeExports(r *reader, m *wasm.Module) error {
	n := r.u32()
	for i := uint32(0); i < n && r.err == nil; i++ {
		var e wasm.Export
		e.Name = r.name()
		e.Kind = wasm.ExternKind(r.byte())
		e.Idx = r.u32()
		m.Exports = append(m.Exports, e)
	}
	return r.err
}

func decodeElems(r *reader, m *wasm.Module) error {
	n := r.u32()
	for i := uint32(0); i < n && r.err == nil; i++ {
		var e wasm.ElemSegment
		e.TableIdx = r.u32()
		var err error
		e.Offset, err = r.expr()
		if err != nil {
			return err
		}
		cnt := r.u32()
		if cnt > 0 {
			e.Funcs = make([]uint32, 0, capHint(cnt))
		}
		for j := uint32(0); j < cnt && r.err == nil; j++ {
			e.Funcs = append(e.Funcs, r.u32())
		}
		m.Elems = append(m.Elems, e)
	}
	return r.err
}

func decodeDatas(r *reader, m *wasm.Module) error {
	n := r.u32()
	for i := uint32(0); i < n && r.err == nil; i++ {
		var d wasm.DataSegment
		d.MemIdx = r.u32()
		var err error
		d.Offset, err = r.expr()
		if err != nil {
			return err
		}
		sz := r.u32()
		b := r.bytes(int(sz))
		d.Data = append([]byte(nil), b...)
		m.Datas = append(m.Datas, d)
	}
	return r.err
}

func decodeCode(r *reader, m *wasm.Module) error {
	n := r.u32()
	if r.err == nil && int(n) != len(m.Funcs) {
		return fmt.Errorf("binary: code section has %d bodies but function section declared %d", n, len(m.Funcs))
	}
	for i := uint32(0); i < n && r.err == nil; i++ {
		size := r.u32()
		if r.err != nil {
			break
		}
		end := r.pos + int(size)
		if end > len(r.data) {
			return fmt.Errorf("binary: code body %d length exceeds section", i)
		}
		body := &reader{data: r.data[r.pos:end]}
		// Locals.
		runCount := body.u32()
		var locals []wasm.ValType
		total := 0
		for j := uint32(0); j < runCount && body.err == nil; j++ {
			cnt := body.u32()
			t := body.valType()
			total += int(cnt)
			if total > 1_000_000 {
				return fmt.Errorf("binary: code body %d declares too many locals", i)
			}
			for k := uint32(0); k < cnt; k++ {
				locals = append(locals, t)
			}
		}
		var brTargets []uint32
		instrs, err := body.instrsUntilEndOfInput(&brTargets)
		if err != nil {
			return fmt.Errorf("binary: code body %d: %w", i, err)
		}
		m.Funcs[i].Locals = locals
		m.Funcs[i].Body = instrs
		m.Funcs[i].BrTargets = brTargets
		r.pos = end
	}
	return r.err
}

func decodeCustom(r *reader, m *wasm.Module) error {
	name := r.name()
	if r.err != nil {
		return r.err
	}
	rest := r.data[r.pos:]
	if name != "name" {
		m.Customs = append(m.Customs, wasm.CustomSection{Name: name, Data: append([]byte(nil), rest...)})
		return nil
	}
	// Parse the function-names subsection; skip others.
	nr := &reader{data: rest}
	for !nr.done() {
		id := nr.byte()
		size := nr.u32()
		if nr.err != nil {
			// Tolerate malformed name sections: they are advisory.
			return nil
		}
		end := nr.pos + int(size)
		if end > len(nr.data) {
			return nil
		}
		if id == 1 {
			sr := &reader{data: nr.data[nr.pos:end]}
			cnt := sr.u32()
			names := make(map[uint32]string, capHint(cnt))
			for i := uint32(0); i < cnt && sr.err == nil; i++ {
				idx := sr.u32()
				names[idx] = sr.name()
			}
			if sr.err == nil {
				m.FuncNames = names
			}
		}
		nr.pos = end
	}
	return nil
}

// expr reads a constant expression terminated by end (inclusive). Constant
// expressions cannot legally contain br_table, so targets read here go into
// a discarded pool (validation rejects such expressions anyway).
func (r *reader) expr() ([]wasm.Instr, error) {
	var instrs []wasm.Instr
	var pool []uint32
	depth := 0
	for {
		in, err := r.instr(&pool)
		if err != nil {
			return nil, err
		}
		instrs = append(instrs, in)
		switch in.Op {
		case wasm.OpBlock, wasm.OpLoop, wasm.OpIf:
			depth++
		case wasm.OpEnd:
			if depth == 0 {
				return instrs, nil
			}
			depth--
		}
	}
}

// instrsUntilEndOfInput reads instructions until the input is exhausted
// (used for code bodies, whose length is given by the size prefix).
// br_table targets are appended to the function's pool.
func (r *reader) instrsUntilEndOfInput(brTargets *[]uint32) ([]wasm.Instr, error) {
	var instrs []wasm.Instr
	for !r.done() {
		in, err := r.instr(brTargets)
		if err != nil {
			return nil, err
		}
		instrs = append(instrs, in)
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(instrs) == 0 || instrs[len(instrs)-1].Op != wasm.OpEnd {
		return nil, errors.New("binary: function body not terminated by end")
	}
	return instrs, nil
}

// miscInstr decodes a 0xFC-prefixed instruction (saturating truncation,
// bulk memory) whose prefix byte has already been consumed. The subopcode
// lands in Instr.Idx. For the implemented subopcodes (trunc_sat,
// memory.copy, memory.fill) the reserved memory-index immediates must be
// zero, as the single-memory format requires; for the recognized-but-
// unimplemented subopcodes the immediates are consumed but discarded, so
// the rest of the body still decodes with correct instruction positions and
// validation rejects the instruction with a typed, positioned error.
// Subopcodes outside the known tables are not WebAssembly at all and fail
// here.
func (r *reader) miscInstr() (wasm.Instr, error) {
	off := r.pos - 1
	sub := r.u32()
	if r.err != nil {
		return wasm.Instr{}, r.err
	}
	in := wasm.MiscInstr(sub)
	switch sub {
	case 0, 1, 2, 3, 4, 5, 6, 7: // *.trunc_sat_*: no immediates
	case wasm.MiscMemoryInit: // memory.init dataidx memidx
		r.u32()
		r.byte()
	case wasm.MiscDataDrop, wasm.MiscElemDrop: // data.drop dataidx / elem.drop elemidx
		r.u32()
	case wasm.MiscMemoryCopy: // memory.copy memidx memidx
		if b := r.byte(); b != 0 && r.err == nil {
			return in, fmt.Errorf("binary: memory.copy reserved byte is 0x%02x", b)
		}
		if b := r.byte(); b != 0 && r.err == nil {
			return in, fmt.Errorf("binary: memory.copy reserved byte is 0x%02x", b)
		}
	case wasm.MiscMemoryFill: // memory.fill memidx
		if b := r.byte(); b != 0 && r.err == nil {
			return in, fmt.Errorf("binary: memory.fill reserved byte is 0x%02x", b)
		}
	case wasm.MiscTableInit, wasm.MiscTableCopy: // table.init elemidx tableidx / table.copy dst src
		r.u32()
		r.u32()
	default:
		return wasm.Instr{}, fmt.Errorf("binary: unknown 0xfc subopcode %d at offset %d", sub, off)
	}
	if r.err != nil {
		return wasm.Instr{}, r.err
	}
	return in, nil
}

func (r *reader) instr(brTargets *[]uint32) (wasm.Instr, error) {
	op := wasm.Opcode(r.byte())
	if r.err != nil {
		return wasm.Instr{}, r.err
	}
	if !op.Known() {
		if op == wasm.OpMiscPrefix {
			return r.miscInstr()
		}
		return wasm.Instr{}, fmt.Errorf("binary: unknown opcode 0x%02x at offset %d", byte(op), r.pos-1)
	}
	in := wasm.Instr{Op: op}
	switch op {
	case wasm.OpBlock, wasm.OpLoop, wasm.OpIf:
		bt := wasm.BlockType(r.byte())
		if r.err == nil && bt != wasm.BlockEmpty && !wasm.ValType(bt).Valid() {
			return in, fmt.Errorf("binary: invalid block type 0x%02x", byte(bt))
		}
		in.Block = bt
	case wasm.OpBr, wasm.OpBrIf, wasm.OpCall,
		wasm.OpLocalGet, wasm.OpLocalSet, wasm.OpLocalTee,
		wasm.OpGlobalGet, wasm.OpGlobalSet:
		in.Idx = r.u32()
	case wasm.OpBrTable:
		n := r.u32()
		if r.err == nil {
			off := len(*brTargets)
			for i := uint32(0); i < n && r.err == nil; i++ {
				*brTargets = append(*brTargets, r.u32())
			}
			deflt := r.u32()
			if r.err == nil {
				in = wasm.BrTableInstr(deflt, off, int(n))
			}
		}
	case wasm.OpCallIndirect:
		in.Idx = r.u32()
		if rsvd := r.byte(); rsvd != 0 && r.err == nil {
			return in, fmt.Errorf("binary: call_indirect reserved byte is 0x%02x", rsvd)
		}
	case wasm.OpMemorySize, wasm.OpMemoryGrow:
		if rsvd := r.byte(); rsvd != 0 && r.err == nil {
			return in, fmt.Errorf("binary: memory instruction reserved byte is 0x%02x", rsvd)
		}
	case wasm.OpI32Const:
		in.Bits = uint64(uint32(r.s32()))
	case wasm.OpI64Const:
		in.Bits = uint64(r.s64())
	case wasm.OpF32Const:
		b := r.bytes(4)
		if r.err == nil {
			in.Bits = uint64(uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24)
		}
	case wasm.OpF64Const:
		b := r.bytes(8)
		if r.err == nil {
			var bits uint64
			for i := 0; i < 8; i++ {
				bits |= uint64(b[i]) << (8 * i)
			}
			in.Bits = bits
		}
	default:
		if op.IsLoad() || op.IsStore() {
			align := r.u32()
			offset := r.u32()
			in = wasm.MemInstr(op, align, offset)
		}
	}
	return in, r.err
}
