// Package binary encodes and decodes WebAssembly modules in the binary
// format (version 1). The encoder and decoder round-trip every construct of
// the MVP, including the "name" custom section, which the instrumenter
// preserves so analyses can report human-readable function names.
package binary

import (
	"fmt"

	"wasabi/internal/leb128"
	"wasabi/internal/wasm"
)

// Magic and version header of every wasm binary.
var header = []byte{0x00, 0x61, 0x73, 0x6D, 0x01, 0x00, 0x00, 0x00}

// Section ids.
const (
	secCustom   = 0
	secType     = 1
	secImport   = 2
	secFunction = 3
	secTable    = 4
	secMemory   = 5
	secGlobal   = 6
	secExport   = 7
	secStart    = 8
	secElem     = 9
	secCode     = 10
	secData     = 11
)

// Encode serializes a module to the WebAssembly binary format. Section
// bodies are assembled first and the output buffer is then allocated at its
// exact final size, so serializing even a large (instrumented) module
// performs no buffer regrowth.
func Encode(m *wasm.Module) ([]byte, error) {
	type section struct {
		id   byte
		body []byte
	}
	sections := make([]section, 0, 12)
	add := func(id byte, body []byte) {
		sections = append(sections, section{id, body})
	}

	if len(m.Types) > 0 {
		add(secType, encodeTypes(m))
	}
	if len(m.Imports) > 0 {
		b, err := encodeImports(m)
		if err != nil {
			return nil, err
		}
		add(secImport, b)
	}
	if len(m.Funcs) > 0 {
		add(secFunction, encodeFuncDecls(m))
	}
	if len(m.Tables) > 0 {
		add(secTable, encodeTables(m))
	}
	if len(m.Memories) > 0 {
		add(secMemory, encodeMemories(m))
	}
	if len(m.Globals) > 0 {
		b, err := encodeGlobals(m)
		if err != nil {
			return nil, err
		}
		add(secGlobal, b)
	}
	if len(m.Exports) > 0 {
		add(secExport, encodeExports(m))
	}
	if m.Start != nil {
		add(secStart, leb128.AppendU32(nil, *m.Start))
	}
	if len(m.Elems) > 0 {
		b, err := encodeElems(m)
		if err != nil {
			return nil, err
		}
		add(secElem, b)
	}
	if len(m.Funcs) > 0 {
		b, err := encodeCode(m)
		if err != nil {
			return nil, err
		}
		add(secCode, b)
	}
	if len(m.Datas) > 0 {
		b, err := encodeDatas(m)
		if err != nil {
			return nil, err
		}
		add(secData, b)
	}
	if len(m.FuncNames) > 0 {
		add(secCustom, encodeNameSection(m))
	}
	for _, c := range m.Customs {
		var b []byte
		b = appendName(b, c.Name)
		b = append(b, c.Data...)
		add(secCustom, b)
	}

	total := len(header)
	for _, s := range sections {
		total += 1 + leb128.SizeU32(uint32(len(s.body))) + len(s.body)
	}
	out := make([]byte, 0, total)
	out = append(out, header...)
	for _, s := range sections {
		out = appendSection(out, s.id, s.body)
	}
	return out, nil
}

func appendSection(out []byte, id byte, body []byte) []byte {
	out = append(out, id)
	out = leb128.AppendU32(out, uint32(len(body)))
	return append(out, body...)
}

func appendName(b []byte, s string) []byte {
	b = leb128.AppendU32(b, uint32(len(s)))
	return append(b, s...)
}

func appendValTypes(b []byte, ts []wasm.ValType) []byte {
	b = leb128.AppendU32(b, uint32(len(ts)))
	for _, t := range ts {
		b = append(b, byte(t))
	}
	return b
}

func appendLimits(b []byte, l wasm.Limits) []byte {
	if l.HasMax {
		b = append(b, 0x01)
		b = leb128.AppendU32(b, l.Min)
		b = leb128.AppendU32(b, l.Max)
	} else {
		b = append(b, 0x00)
		b = leb128.AppendU32(b, l.Min)
	}
	return b
}

func appendGlobalType(b []byte, gt wasm.GlobalType) []byte {
	b = append(b, byte(gt.Type))
	if gt.Mutable {
		b = append(b, 0x01)
	} else {
		b = append(b, 0x00)
	}
	return b
}

func encodeTypes(m *wasm.Module) []byte {
	b := leb128.AppendU32(nil, uint32(len(m.Types)))
	for _, ft := range m.Types {
		b = append(b, 0x60)
		b = appendValTypes(b, ft.Params)
		b = appendValTypes(b, ft.Results)
	}
	return b
}

func encodeImports(m *wasm.Module) ([]byte, error) {
	b := leb128.AppendU32(nil, uint32(len(m.Imports)))
	for _, imp := range m.Imports {
		b = appendName(b, imp.Module)
		b = appendName(b, imp.Name)
		b = append(b, byte(imp.Kind))
		switch imp.Kind {
		case wasm.ExternFunc:
			b = leb128.AppendU32(b, imp.TypeIdx)
		case wasm.ExternTable:
			b = append(b, 0x70) // funcref
			b = appendLimits(b, imp.Table)
		case wasm.ExternMemory:
			b = appendLimits(b, imp.Mem)
		case wasm.ExternGlobal:
			b = appendGlobalType(b, imp.Global)
		default:
			return nil, fmt.Errorf("binary: unknown import kind %d", imp.Kind)
		}
	}
	return b, nil
}

func encodeFuncDecls(m *wasm.Module) []byte {
	b := leb128.AppendU32(nil, uint32(len(m.Funcs)))
	for i := range m.Funcs {
		b = leb128.AppendU32(b, m.Funcs[i].TypeIdx)
	}
	return b
}

func encodeTables(m *wasm.Module) []byte {
	b := leb128.AppendU32(nil, uint32(len(m.Tables)))
	for _, t := range m.Tables {
		b = append(b, 0x70)
		b = appendLimits(b, t)
	}
	return b
}

func encodeMemories(m *wasm.Module) []byte {
	b := leb128.AppendU32(nil, uint32(len(m.Memories)))
	for _, mem := range m.Memories {
		b = appendLimits(b, mem)
	}
	return b
}

func encodeGlobals(m *wasm.Module) ([]byte, error) {
	b := leb128.AppendU32(nil, uint32(len(m.Globals)))
	for _, g := range m.Globals {
		b = appendGlobalType(b, g.Type)
		var err error
		b, err = appendExpr(b, g.Init)
		if err != nil {
			return nil, err
		}
	}
	return b, nil
}

func encodeExports(m *wasm.Module) []byte {
	b := leb128.AppendU32(nil, uint32(len(m.Exports)))
	for _, e := range m.Exports {
		b = appendName(b, e.Name)
		b = append(b, byte(e.Kind))
		b = leb128.AppendU32(b, e.Idx)
	}
	return b
}

func encodeElems(m *wasm.Module) ([]byte, error) {
	b := leb128.AppendU32(nil, uint32(len(m.Elems)))
	for _, e := range m.Elems {
		b = leb128.AppendU32(b, e.TableIdx)
		var err error
		b, err = appendExpr(b, e.Offset)
		if err != nil {
			return nil, err
		}
		b = leb128.AppendU32(b, uint32(len(e.Funcs)))
		for _, f := range e.Funcs {
			b = leb128.AppendU32(b, f)
		}
	}
	return b, nil
}

func encodeDatas(m *wasm.Module) ([]byte, error) {
	b := leb128.AppendU32(nil, uint32(len(m.Datas)))
	for _, d := range m.Datas {
		b = leb128.AppendU32(b, d.MemIdx)
		var err error
		b, err = appendExpr(b, d.Offset)
		if err != nil {
			return nil, err
		}
		b = leb128.AppendU32(b, uint32(len(d.Data)))
		b = append(b, d.Data...)
	}
	return b, nil
}

// encodeCode serializes the code section. A cheap measure pass computes the
// exact encoded size of every function body first, so the section buffer is
// allocated once at its final size and each body is encoded directly into it
// (no per-function staging buffer, no regrowth).
func encodeCode(m *wasm.Module) ([]byte, error) {
	total := leb128.SizeU32(uint32(len(m.Funcs)))
	sizes := make([]int, len(m.Funcs))
	for i := range m.Funcs {
		f := &m.Funcs[i]
		n, err := funcBodySize(f)
		if err != nil {
			return nil, fmt.Errorf("binary: function %d: %w", i, err)
		}
		sizes[i] = n
		total += leb128.SizeU32(uint32(n)) + n
	}
	b := make([]byte, 0, total)
	b = leb128.AppendU32(b, uint32(len(m.Funcs)))
	for i := range m.Funcs {
		f := &m.Funcs[i]
		b = leb128.AppendU32(b, uint32(sizes[i]))
		b = appendLocals(b, f.Locals)
		var err error
		b, err = appendInstrs(b, f.Body, f.BrTargets)
		if err != nil {
			return nil, fmt.Errorf("binary: function %d: %w", i, err)
		}
	}
	return b, nil
}

// localRuns calls fn once per run of the run-length encoding of locals.
func localRuns(locals []wasm.ValType, fn func(count uint32, t wasm.ValType)) (numRuns int) {
	i := 0
	for i < len(locals) {
		j := i + 1
		for j < len(locals) && locals[j] == locals[i] {
			j++
		}
		fn(uint32(j-i), locals[i])
		numRuns++
		i = j
	}
	return numRuns
}

func localsSize(locals []wasm.ValType) int {
	n := 0
	runs := localRuns(locals, func(count uint32, _ wasm.ValType) {
		n += leb128.SizeU32(count) + 1
	})
	return leb128.SizeU32(uint32(runs)) + n
}

func appendLocals(b []byte, locals []wasm.ValType) []byte {
	runs := localRuns(locals, func(uint32, wasm.ValType) {})
	b = leb128.AppendU32(b, uint32(runs))
	localRuns(locals, func(count uint32, t wasm.ValType) {
		b = leb128.AppendU32(b, count)
		b = append(b, byte(t))
	})
	return b
}

// funcBodySize returns the exact encoded size of a function body (locals
// vector plus instructions), mirroring appendLocals + appendInstrs.
func funcBodySize(f *wasm.Func) (int, error) {
	n := localsSize(f.Locals)
	for i := range f.Body {
		sz, err := instrSize(&f.Body[i], f.BrTargets)
		if err != nil {
			return 0, err
		}
		n += sz
	}
	return n, nil
}

// instrSize returns the exact encoded size of one instruction, mirroring
// appendInstr.
func instrSize(in *wasm.Instr, brTargets []uint32) (int, error) {
	op := in.Op
	if !op.Known() {
		if op == wasm.OpMiscPrefix {
			return miscInstrSize(in)
		}
		return 0, fmt.Errorf("binary: unknown opcode 0x%02x", byte(op))
	}
	n := 1
	switch op {
	case wasm.OpBlock, wasm.OpLoop, wasm.OpIf:
		n++
	case wasm.OpBr, wasm.OpBrIf, wasm.OpCall,
		wasm.OpLocalGet, wasm.OpLocalSet, wasm.OpLocalTee,
		wasm.OpGlobalGet, wasm.OpGlobalSet:
		n += leb128.SizeU32(in.Idx)
	case wasm.OpBrTable:
		off, cnt := in.BrTableSpan()
		if off+cnt > len(brTargets) {
			return 0, fmt.Errorf("binary: br_table target span [%d:%d] exceeds pool (%d)", off, off+cnt, len(brTargets))
		}
		n += leb128.SizeU32(uint32(cnt))
		for _, t := range brTargets[off : off+cnt] {
			n += leb128.SizeU32(t)
		}
		n += leb128.SizeU32(in.Idx)
	case wasm.OpCallIndirect:
		n += leb128.SizeU32(in.Idx) + 1
	case wasm.OpMemorySize, wasm.OpMemoryGrow:
		n++
	case wasm.OpI32Const:
		n += leb128.SizeS32(in.ConstI32())
	case wasm.OpI64Const:
		n += leb128.SizeS64(in.ConstI64())
	case wasm.OpF32Const:
		n += 4
	case wasm.OpF64Const:
		n += 8
	default:
		if op.IsLoad() || op.IsStore() {
			n += leb128.SizeU32(in.MemAlign()) + leb128.SizeU32(in.MemOffset())
		}
	}
	return n, nil
}

// miscInstrSize returns the exact encoded size of an implemented
// 0xFC-prefixed instruction, mirroring appendMiscInstr. Unimplemented
// subopcodes are unencodable: modules carrying them never pass validation,
// so the instrumenter cannot be asked to re-encode one.
func miscInstrSize(in *wasm.Instr) (int, error) {
	n := 1 + leb128.SizeU32(in.Idx)
	switch {
	case in.Idx <= wasm.MiscI64TruncSatF64U: // trunc_sat: no immediates
	case in.Idx == wasm.MiscMemoryCopy:
		n += 2 // two reserved memory indices
	case in.Idx == wasm.MiscMemoryFill:
		n++ // one reserved memory index
	default:
		name, proposal, _ := wasm.UnsupportedInfo(*in)
		return 0, fmt.Errorf("binary: cannot encode %s (%s proposal not implemented)", name, proposal)
	}
	return n, nil
}

func appendMiscInstr(b []byte, in *wasm.Instr) ([]byte, error) {
	if _, _, unsupported := wasm.UnsupportedInfo(*in); unsupported {
		name, proposal, _ := wasm.UnsupportedInfo(*in)
		return nil, fmt.Errorf("binary: cannot encode %s (%s proposal not implemented)", name, proposal)
	}
	b = append(b, byte(wasm.OpMiscPrefix))
	b = leb128.AppendU32(b, in.Idx)
	switch in.Idx {
	case wasm.MiscMemoryCopy:
		b = append(b, 0x00, 0x00) // reserved memory indices
	case wasm.MiscMemoryFill:
		b = append(b, 0x00) // reserved memory index
	}
	return b, nil
}

// appendExpr encodes a constant expression, which must already be terminated
// by an end instruction. Constant expressions cannot contain br_table, so no
// target pool is needed.
func appendExpr(b []byte, expr []wasm.Instr) ([]byte, error) {
	if len(expr) == 0 || expr[len(expr)-1].Op != wasm.OpEnd {
		return nil, fmt.Errorf("binary: expression not terminated by end")
	}
	return appendInstrs(b, expr, nil)
}

func appendInstrs(b []byte, instrs []wasm.Instr, brTargets []uint32) ([]byte, error) {
	for i := range instrs {
		var err error
		b, err = appendInstr(b, &instrs[i], brTargets)
		if err != nil {
			return nil, err
		}
	}
	return b, nil
}

func appendInstr(b []byte, in *wasm.Instr, brTargets []uint32) ([]byte, error) {
	op := in.Op
	if !op.Known() {
		if op == wasm.OpMiscPrefix {
			return appendMiscInstr(b, in)
		}
		return nil, fmt.Errorf("binary: unknown opcode 0x%02x", byte(op))
	}
	b = append(b, byte(op))
	switch op {
	case wasm.OpBlock, wasm.OpLoop, wasm.OpIf:
		b = append(b, byte(in.Block))
	case wasm.OpBr, wasm.OpBrIf, wasm.OpCall,
		wasm.OpLocalGet, wasm.OpLocalSet, wasm.OpLocalTee,
		wasm.OpGlobalGet, wasm.OpGlobalSet:
		b = leb128.AppendU32(b, in.Idx)
	case wasm.OpBrTable:
		off, cnt := in.BrTableSpan()
		if off+cnt > len(brTargets) {
			return nil, fmt.Errorf("binary: br_table target span [%d:%d] exceeds pool (%d)", off, off+cnt, len(brTargets))
		}
		b = leb128.AppendU32(b, uint32(cnt))
		for _, t := range brTargets[off : off+cnt] {
			b = leb128.AppendU32(b, t)
		}
		b = leb128.AppendU32(b, in.Idx) // default target
	case wasm.OpCallIndirect:
		b = leb128.AppendU32(b, in.Idx) // type index
		b = append(b, 0x00)             // reserved table index
	case wasm.OpMemorySize, wasm.OpMemoryGrow:
		b = append(b, 0x00) // reserved memory index
	case wasm.OpI32Const:
		b = leb128.AppendS32(b, in.ConstI32())
	case wasm.OpI64Const:
		b = leb128.AppendS64(b, in.ConstI64())
	case wasm.OpF32Const:
		bits := uint32(in.Bits)
		b = append(b, byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24))
	case wasm.OpF64Const:
		for s := 0; s < 64; s += 8 {
			b = append(b, byte(in.Bits>>s))
		}
	default:
		if op.IsLoad() || op.IsStore() {
			b = leb128.AppendU32(b, in.MemAlign())
			b = leb128.AppendU32(b, in.MemOffset())
		}
	}
	return b, nil
}

func encodeNameSection(m *wasm.Module) []byte {
	b := appendName(nil, "name")
	// Function names subsection (id 1), sorted by index.
	idxs := make([]uint32, 0, len(m.FuncNames))
	for i := range m.FuncNames {
		idxs = append(idxs, i)
	}
	// Insertion sort: name maps are small.
	for i := 1; i < len(idxs); i++ {
		for j := i; j > 0 && idxs[j-1] > idxs[j]; j-- {
			idxs[j-1], idxs[j] = idxs[j], idxs[j-1]
		}
	}
	var sub []byte
	sub = leb128.AppendU32(sub, uint32(len(idxs)))
	for _, i := range idxs {
		sub = leb128.AppendU32(sub, i)
		sub = appendName(sub, m.FuncNames[i])
	}
	b = append(b, 1)
	b = leb128.AppendU32(b, uint32(len(sub)))
	b = append(b, sub...)
	return b
}
