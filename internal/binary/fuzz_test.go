package binary

import (
	"testing"

	"wasabi/internal/analysis"
	"wasabi/internal/core"
	"wasabi/internal/synthapp"
	"wasabi/internal/validate"
)

// FuzzDecode checks the decoder never panics on arbitrary input, and that
// anything it accepts round-trips through the encoder and, if it validates,
// survives full instrumentation. Run with `go test -fuzz=FuzzDecode`;
// the seed corpus alone runs as a regular test.
func FuzzDecode(f *testing.F) {
	// Seeds: a valid rich module, a valid generated app, truncations, and
	// a few corrupted variants.
	rich, err := Encode(buildRichModule())
	if err != nil {
		f.Fatal(err)
	}
	app, err := Encode(synthapp.Generate(synthapp.Config{TargetBytes: 2000, Seed: 1, Helpers: 3}))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(rich)
	f.Add(app)
	f.Add(rich[:len(rich)/2])
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x61, 0x73, 0x6D, 0x01, 0, 0, 0})
	corrupt := append([]byte(nil), rich...)
	for i := 8; i < len(corrupt); i += 7 {
		corrupt[i] ^= 0xA5
	}
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return // rejected: fine
		}
		// Accepted input must re-encode without error.
		out, err := Encode(m)
		if err != nil {
			t.Fatalf("decoded module failed to encode: %v", err)
		}
		// And the re-encoding must decode to something encodable again
		// (idempotence of the canonical form).
		m2, err := Decode(out)
		if err != nil {
			t.Fatalf("canonical form failed to decode: %v", err)
		}
		out2, err := Encode(m2)
		if err != nil {
			t.Fatalf("canonical form failed to re-encode: %v", err)
		}
		if string(out) != string(out2) {
			t.Fatal("canonical encoding not a fixed point")
		}
		// If it validates, the instrumenter must handle it.
		if validate.Module(m) == nil {
			if _, _, err := core.Instrument(m, core.Options{Hooks: analysis.AllHooks, SkipValidation: true}); err != nil {
				t.Fatalf("valid module failed to instrument: %v", err)
			}
		}
	})
}
