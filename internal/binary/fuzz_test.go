package binary

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"wasabi/internal/analysis"
	"wasabi/internal/core"
	"wasabi/internal/synthapp"
	"wasabi/internal/validate"
)

// fuzzSeeds returns the shared seed inputs of both fuzz targets: valid
// modules (rich + generated), truncations, the bare preamble, a corrupted
// variant, and a hostile length-prefix probe for the preallocation guards.
// The same inputs are checked in under testdata/fuzz/<Target>/ (see
// TestRegenerateFuzzCorpus) so the corpus survives without a fuzzing cache.
func fuzzSeeds() ([][]byte, error) {
	rich, err := Encode(buildRichModule())
	if err != nil {
		return nil, err
	}
	app, err := Encode(synthapp.Generate(synthapp.Config{TargetBytes: 2000, Seed: 1, Helpers: 3}))
	if err != nil {
		return nil, err
	}
	corrupt := append([]byte(nil), rich...)
	for i := 8; i < len(corrupt); i += 7 {
		corrupt[i] ^= 0xA5
	}
	return [][]byte{
		rich,
		app,
		rich[:len(rich)/2],
		{},
		{0x00, 0x61, 0x73, 0x6D, 0x01, 0, 0, 0},
		corrupt,
		hostileNameCountModule(),
	}, nil
}

// hostileNameCountModule encodes a module whose name section claims ~4
// billion function names in a few payload bytes: a length-field DoS probe
// for the decoder's preallocation guard.
func hostileNameCountModule() []byte {
	payload := []byte{4, 'n', 'a', 'm', 'e', // custom-section name
		1,                           // name subsection: function names
		5,                           // subsection size
		0xFF, 0xFF, 0xFF, 0xFF, 0xF, // count = 0xFFFFFFFF, no entries
	}
	mod := []byte{0x00, 0x61, 0x73, 0x6D, 0x01, 0, 0, 0, 0x00 /* custom */, byte(len(payload))}
	return append(mod, payload...)
}

// FuzzDecode checks the decoder never panics on arbitrary input, and that
// anything it accepts round-trips through the encoder and, if it validates,
// survives full instrumentation. Run with `go test -fuzz=FuzzDecode`;
// the seed corpus alone runs as a regular test.
func FuzzDecode(f *testing.F) {
	seeds, err := fuzzSeeds()
	if err != nil {
		f.Fatal(err)
	}
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return // rejected: fine
		}
		// Accepted input must re-encode without error.
		out, err := Encode(m)
		if err != nil {
			t.Fatalf("decoded module failed to encode: %v", err)
		}
		// And the re-encoding must decode to something encodable again
		// (idempotence of the canonical form).
		m2, err := Decode(out)
		if err != nil {
			t.Fatalf("canonical form failed to decode: %v", err)
		}
		out2, err := Encode(m2)
		if err != nil {
			t.Fatalf("canonical form failed to re-encode: %v", err)
		}
		if string(out) != string(out2) {
			t.Fatal("canonical encoding not a fixed point")
		}
		// If it validates, the instrumenter must handle it.
		if validate.Module(m) == nil {
			if _, _, err := core.Instrument(m, core.Options{Hooks: analysis.AllHooks, SkipValidation: true}); err != nil {
				t.Fatalf("valid module failed to instrument: %v", err)
			}
		}
	})
}

// FuzzInstrumentRoundTrip drives the full pipeline the embedder-facing API
// runs on untrusted bytes: decode → validate → instrument for every hook →
// encode → decode. Any accepted input must survive the whole chain without
// panicking, and the instrumented module must re-decode cleanly (the
// instrumenter's output is itself a well-formed module).
func FuzzInstrumentRoundTrip(f *testing.F) {
	seeds, err := fuzzSeeds()
	if err != nil {
		f.Fatal(err)
	}
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return // rejected: fine
		}
		if validate.Module(m) != nil {
			// Decodable but invalid: the default (validating) instrument
			// path must refuse it — instrumentation is never reached on
			// invalid input.
			if _, _, err := core.Instrument(m, core.Options{Hooks: analysis.AllHooks}); err == nil {
				t.Fatal("invalid module was instrumented instead of rejected")
			}
			return
		}
		instrumented, _, err := core.Instrument(m, core.Options{Hooks: analysis.AllHooks, SkipValidation: true})
		if err != nil {
			t.Fatalf("valid module failed to instrument: %v", err)
		}
		out, err := Encode(instrumented)
		if err != nil {
			t.Fatalf("instrumented module failed to encode: %v", err)
		}
		if _, err := Decode(out); err != nil {
			t.Fatalf("instrumented encoding failed to decode: %v", err)
		}
	})
}

// TestHostileLengthPrefixes pins the decoder's DoS guards as a plain test:
// inputs whose length fields claim enormous element counts must fail (or
// parse to nothing) quickly without attempting the huge preallocation the
// count asks for — capHint bounds every count-driven make.
func TestHostileLengthPrefixes(t *testing.T) {
	// The hostile name count is advisory-section data: the module decodes,
	// the bogus names are discarded.
	m, err := Decode(hostileNameCountModule())
	if err != nil {
		t.Fatalf("hostile name-count module failed to decode: %v", err)
	}
	if len(m.FuncNames) != 0 {
		t.Errorf("bogus name section produced %d names", len(m.FuncNames))
	}
	// A type section claiming 2^32-1 entries in an empty payload must be
	// rejected as truncated, not preallocated.
	data := []byte{0x00, 0x61, 0x73, 0x6D, 0x01, 0, 0, 0,
		0x01 /* type section */, 5, 0xFF, 0xFF, 0xFF, 0xFF, 0xF}
	if _, err := Decode(data); err == nil {
		t.Error("truncated type section with huge count was accepted")
	}
}

// TestRegenerateFuzzCorpus verifies the checked-in seed corpus exists under
// testdata/fuzz/<Target>/ (the layout `go test` merges with f.Add seeds);
// run with FUZZ_CORPUS_REGEN=1 to rewrite it after changing fuzzSeeds.
func TestRegenerateFuzzCorpus(t *testing.T) {
	targets := []string{"FuzzDecode", "FuzzInstrumentRoundTrip"}
	if os.Getenv("FUZZ_CORPUS_REGEN") != "" {
		seeds, err := fuzzSeeds()
		if err != nil {
			t.Fatal(err)
		}
		for _, target := range targets {
			dir := filepath.Join("testdata", "fuzz", target)
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			for i, seed := range seeds {
				body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
				if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("seed-%02d", i)), []byte(body), 0o644); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	for _, target := range targets {
		dir := filepath.Join("testdata", "fuzz", target)
		entries, err := os.ReadDir(dir)
		if err != nil || len(entries) == 0 {
			t.Errorf("seed corpus missing under %s (regenerate with FUZZ_CORPUS_REGEN=1)", dir)
		}
	}
}
