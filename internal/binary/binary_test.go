package binary

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"wasabi/internal/wasm"
)

// buildRichModule covers every section and every immediate encoding.
func buildRichModule() *wasm.Module {
	start := uint32(2)
	return &wasm.Module{
		Types: []wasm.FuncType{
			{},
			{Params: []wasm.ValType{wasm.I32, wasm.I64, wasm.F32, wasm.F64}, Results: []wasm.ValType{wasm.I64}},
			{Params: []wasm.ValType{wasm.I32}},
		},
		Imports: []wasm.Import{
			{Module: "env", Name: "f", Kind: wasm.ExternFunc, TypeIdx: 2},
			{Module: "env", Name: "mem", Kind: wasm.ExternMemory, Mem: wasm.Limits{Min: 1, Max: 4, HasMax: true}},
			{Module: "env", Name: "g", Kind: wasm.ExternGlobal, Global: wasm.GlobalType{Type: wasm.F64}},
		},
		Funcs: []wasm.Func{
			{TypeIdx: 0, Body: []wasm.Instr{wasm.End()}},
			{
				TypeIdx:   1,
				Locals:    []wasm.ValType{wasm.I32, wasm.I32, wasm.F64, wasm.I64},
				BrTargets: []uint32{0, 1, 2},
				Body: []wasm.Instr{
					wasm.BlockInstr(wasm.BlockType(wasm.I64)),
					wasm.LoopInstr(wasm.BlockEmpty),
					wasm.LocalGet(0),
					wasm.IfInstr(wasm.BlockEmpty),
					wasm.Br(1),
					{Op: wasm.OpElse},
					wasm.BrTableInstr(3, 0, 3), // targets 0,1,2 in BrTargets
					wasm.End(),
					wasm.End(),
					wasm.LocalGet(1),
					wasm.I64ConstInstr(math.MinInt64),
					wasm.Op1(wasm.OpI64Add),
					wasm.End(),
					wasm.F32ConstInstr(float32(math.Pi)),
					wasm.Op1(wasm.OpDrop),
					wasm.F64ConstInstr(-0.0),
					wasm.Op1(wasm.OpDrop),
					wasm.I32Const(-123456),
					wasm.MemInstr(wasm.OpI64Load, 3, 1<<16),
					wasm.Op1(wasm.OpDrop),
					wasm.I32Const(0),
					{Op: wasm.OpCallIndirect, Idx: 2},
					{Op: wasm.OpMemorySize},
					{Op: wasm.OpMemoryGrow},
					wasm.Op1(wasm.OpDrop),
					wasm.Op1(wasm.OpReturn),
					wasm.End(),
				},
			},
			{TypeIdx: 0, Body: []wasm.Instr{wasm.End()}},
		},
		Tables:  []wasm.Limits{{Min: 2}},
		Globals: []wasm.Global{{Type: wasm.GlobalType{Type: wasm.I32, Mutable: true}, Init: []wasm.Instr{wasm.I32Const(7), wasm.End()}}},
		Exports: []wasm.Export{
			{Name: "run", Kind: wasm.ExternFunc, Idx: 1},
			{Name: "tbl", Kind: wasm.ExternTable, Idx: 0},
		},
		Start:     &start,
		Elems:     []wasm.ElemSegment{{Offset: []wasm.Instr{wasm.I32Const(0), wasm.End()}, Funcs: []uint32{1, 2}}},
		Datas:     []wasm.DataSegment{{Offset: []wasm.Instr{wasm.I32Const(16), wasm.End()}, Data: []byte{1, 2, 3, 255}}},
		FuncNames: map[uint32]string{0: "env.f", 1: "empty", 2: "rich"},
		Customs:   []wasm.CustomSection{{Name: "producers", Data: []byte("wasabi-go")}},
	}
}

func TestRoundTripRichModule(t *testing.T) {
	m := buildRichModule()
	data, err := Encode(m)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	m2, err := Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(m, m2) {
		t.Errorf("round trip not identical:\n  in: %+v\n out: %+v", m, m2)
	}
	// Second encode must be byte-identical (deterministic encoder).
	data2, err := Encode(m2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Error("encoder not deterministic across a round trip")
	}
}

func TestDecodeErrors(t *testing.T) {
	valid, _ := Encode(buildRichModule())
	cases := map[string][]byte{
		"empty":         {},
		"short header":  {0x00, 0x61, 0x73},
		"bad magic":     {0x01, 0x61, 0x73, 0x6D, 0x01, 0, 0, 0},
		"bad version":   {0x00, 0x61, 0x73, 0x6D, 0x02, 0, 0, 0},
		"truncated":     valid[:len(valid)/2],
		"section order": append(append([]byte{}, valid[:8]...), 0x03, 0x01, 0x00, 0x01, 0x01, 0x00),
	}
	for name, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestDecodeUnknownOpcode(t *testing.T) {
	// A module with one empty-typed function whose body is an invalid opcode.
	data := []byte{
		0x00, 0x61, 0x73, 0x6D, 0x01, 0, 0, 0,
		0x01, 0x04, 0x01, 0x60, 0x00, 0x00, // type section: [] -> []
		0x03, 0x02, 0x01, 0x00, // function section
		0x0A, 0x05, 0x01, 0x03, 0x00, 0xFE, 0x0B, // code: opcode 0xFE
	}
	if _, err := Decode(data); err == nil {
		t.Error("expected unknown-opcode error")
	}
}

func TestCodeCountMismatch(t *testing.T) {
	data := []byte{
		0x00, 0x61, 0x73, 0x6D, 0x01, 0, 0, 0,
		0x01, 0x04, 0x01, 0x60, 0x00, 0x00,
		0x03, 0x02, 0x01, 0x00, // declares 1 function
		0x0A, 0x01, 0x00, // code section with 0 bodies
	}
	if _, err := Decode(data); err == nil {
		t.Error("expected code/function count mismatch error")
	}
}

// Property: i32/i64/f32/f64 const payloads survive the codec bit-for-bit
// (notably NaN payloads and -0).
func TestQuickConstRoundTrip(t *testing.T) {
	mk := func(body []wasm.Instr) *wasm.Module {
		return &wasm.Module{
			Types: []wasm.FuncType{{}},
			Funcs: []wasm.Func{{TypeIdx: 0, Body: append(body, wasm.End())}},
		}
	}
	roundTrip := func(body []wasm.Instr) []wasm.Instr {
		data, err := Encode(mk(body))
		if err != nil {
			t.Fatal(err)
		}
		m, err := Decode(data)
		if err != nil {
			t.Fatal(err)
		}
		return m.Funcs[0].Body[:len(m.Funcs[0].Body)-1]
	}
	if err := quick.Check(func(v int64, w int32, fbits uint32, dbits uint64) bool {
		body := []wasm.Instr{
			wasm.I64ConstInstr(v), wasm.Op1(wasm.OpDrop),
			wasm.I32Const(w), wasm.Op1(wasm.OpDrop),
			wasm.F32ConstInstr(math.Float32frombits(fbits)), wasm.Op1(wasm.OpDrop),
			wasm.F64ConstInstr(math.Float64frombits(dbits)), wasm.Op1(wasm.OpDrop),
		}
		got := roundTrip(body)
		return got[0].ConstI64() == v &&
			got[2].ConstI32() == w &&
			math.Float32bits(got[4].ConstF32()) == fbits &&
			math.Float64bits(got[6].ConstF64()) == dbits
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestLocalsRunLengthEncoding(t *testing.T) {
	m := &wasm.Module{
		Types: []wasm.FuncType{{}},
		Funcs: []wasm.Func{{
			TypeIdx: 0,
			Locals: []wasm.ValType{
				wasm.I32, wasm.I32, wasm.I32, wasm.F64, wasm.I32, wasm.I64, wasm.I64,
			},
			Body: []wasm.Instr{wasm.End()},
		}},
	}
	data, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Funcs[0].Locals, m2.Funcs[0].Locals) {
		t.Errorf("locals mangled: %v vs %v", m.Funcs[0].Locals, m2.Funcs[0].Locals)
	}
}
