package binary

// Post-MVP instruction handling: sign-extension operators, saturating
// truncation, and memory.copy/memory.fill decode, validate, and re-encode
// like any MVP instruction. The remaining 0xFC forms (passive-segment and
// table bulk memory) decode into representable form — so validation can
// reject them with a typed, positioned error — while truly unknown
// encodings still fail at decode. See wasm.UnsupportedInfo and
// validate.ErrUnsupported.

import (
	"errors"
	"strings"
	"testing"

	"wasabi/internal/validate"
	"wasabi/internal/wasm"
)

// unsupportedModule assembles a minimal binary module — one () -> ()
// function — around the given raw body bytes (locals prepended, end NOT
// appended).
func unsupportedModule(body ...byte) []byte {
	b := []byte{0x00, 0x61, 0x73, 0x6D, 0x01, 0x00, 0x00, 0x00}
	b = append(b, 0x01, 0x04, 0x01, 0x60, 0x00, 0x00) // type section: [] -> []
	b = append(b, 0x03, 0x02, 0x01, 0x00)             // function section: 1 func, type 0
	code := append([]byte{byte(len(body) + 1), 0x00}, body...)
	sec := append([]byte{0x01}, code...)
	b = append(b, 0x0A, byte(len(sec)))
	return append(b, sec...)
}

// memModule is unsupportedModule plus a one-page memory, for instructions
// that validate only in the presence of a memory.
func memModule(body ...byte) []byte {
	b := []byte{0x00, 0x61, 0x73, 0x6D, 0x01, 0x00, 0x00, 0x00}
	b = append(b, 0x01, 0x04, 0x01, 0x60, 0x00, 0x00) // type section: [] -> []
	b = append(b, 0x03, 0x02, 0x01, 0x00)             // function section: 1 func, type 0
	b = append(b, 0x05, 0x03, 0x01, 0x00, 0x01)       // memory section: 1 memory, min 1
	code := append([]byte{byte(len(body) + 1), 0x00}, body...)
	sec := append([]byte{0x01}, code...)
	b = append(b, 0x0A, byte(len(sec)))
	return append(b, sec...)
}

func TestDecodeImplementedPostMVPInstructions(t *testing.T) {
	cases := []struct {
		name  string
		mod   []byte
		instr int // index of the instruction of interest in the decoded body
		want  wasm.Instr
	}{
		{
			name:  "sign-extension",
			mod:   unsupportedModule(0x41, 0x00, 0xC0, 0x1A, 0x0B), // i32.const 0; i32.extend8_s; drop; end
			instr: 1,
			want:  wasm.Instr{Op: wasm.OpI32Extend8S},
		},
		{
			name: "saturating-trunc",
			// f64.const 0; i32.trunc_sat_f64_s; drop; end
			mod:   unsupportedModule(0x44, 0, 0, 0, 0, 0, 0, 0, 0, 0xFC, 0x02, 0x1A, 0x0B),
			instr: 1,
			want:  wasm.Instr{Op: wasm.OpMiscPrefix, Idx: wasm.MiscI32TruncSatF64S},
		},
		{
			name: "memory-fill",
			// i32.const 0 ×3; memory.fill (memidx immediate); end
			mod:   memModule(0x41, 0x00, 0x41, 0x00, 0x41, 0x08, 0xFC, 0x0B, 0x00, 0x0B),
			instr: 3,
			want:  wasm.Instr{Op: wasm.OpMiscPrefix, Idx: wasm.MiscMemoryFill},
		},
		{
			name: "memory-copy",
			// i32.const 0 ×3; memory.copy (two memidx immediates); end
			mod:   memModule(0x41, 0x00, 0x41, 0x00, 0x41, 0x08, 0xFC, 0x0A, 0x00, 0x00, 0x0B),
			instr: 3,
			want:  wasm.Instr{Op: wasm.OpMiscPrefix, Idx: wasm.MiscMemoryCopy},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := Decode(tc.mod)
			if err != nil {
				t.Fatalf("decode failed: %v", err)
			}
			got := m.Funcs[0].Body[tc.instr]
			if got != tc.want {
				t.Fatalf("decoded instr = %+v, want %+v", got, tc.want)
			}
			if verr := validate.Module(m); verr != nil {
				t.Fatalf("implemented instruction rejected: %v", verr)
			}

			// The instruction survives an encode/decode round trip.
			enc, err := Encode(m)
			if err != nil {
				t.Fatalf("encode failed: %v", err)
			}
			m2, err := Decode(enc)
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if got := m2.Funcs[0].Body[tc.instr]; got != tc.want {
				t.Errorf("round-tripped instr = %+v, want %+v", got, tc.want)
			}
		})
	}
}

func TestDecodeUnsupportedInstructions(t *testing.T) {
	cases := []struct {
		name  string
		body  []byte
		instr int // index of the unsupported instruction in the decoded body
		want  wasm.Instr
		text  string // expected text name reported by validation
	}{
		{
			name: "memory-init",
			// i32.const 0 ×3; memory.init 0 (dataidx + memidx immediates); end
			body:  []byte{0x41, 0x00, 0x41, 0x00, 0x41, 0x08, 0xFC, 0x08, 0x00, 0x00, 0x0B},
			instr: 3,
			want:  wasm.Instr{Op: wasm.OpMiscPrefix, Idx: 8},
			text:  "memory.init",
		},
		{
			name: "table-copy",
			// i32.const 0 ×3; table.copy 0 0; end
			body:  []byte{0x41, 0x00, 0x41, 0x00, 0x41, 0x08, 0xFC, 0x0E, 0x00, 0x00, 0x0B},
			instr: 3,
			want:  wasm.Instr{Op: wasm.OpMiscPrefix, Idx: 14},
			text:  "table.copy",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := Decode(unsupportedModule(tc.body...))
			if err != nil {
				t.Fatalf("decode failed, want representable instruction: %v", err)
			}
			got := m.Funcs[0].Body[tc.instr]
			if got != tc.want {
				t.Fatalf("decoded instr = %+v, want %+v", got, tc.want)
			}

			// The immediates were consumed: the body decodes to completion
			// with the trailing end in place.
			if last := m.Funcs[0].Body[len(m.Funcs[0].Body)-1]; last.Op != wasm.OpEnd {
				t.Errorf("body not terminated by end: %+v", last)
			}

			// Validation rejects the module with the typed, positioned error.
			verr := validate.Module(m)
			if verr == nil {
				t.Fatal("unsupported instruction validated")
			}
			if !errors.Is(verr, validate.ErrUnsupported) {
				t.Errorf("validate error does not wrap ErrUnsupported: %v", verr)
			}
			var ue *validate.UnsupportedError
			if !errors.As(verr, &ue) {
				t.Fatalf("validate error is %T, want to recover *UnsupportedError: %v", verr, verr)
			}
			if ue.Name != tc.text {
				t.Errorf("UnsupportedError.Name = %q, want %q", ue.Name, tc.text)
			}
			var ve *validate.Error
			if !errors.As(verr, &ve) || ve.Instr != tc.instr {
				t.Errorf("validate error not positioned at instr %d: %v", tc.instr, verr)
			}

			// The encoder refuses to re-encode what it cannot represent.
			if _, err := Encode(m); err == nil {
				t.Error("encoder accepted an unsupported instruction")
			}
		})
	}
}

func TestDecodeUnknownMiscSubopcode(t *testing.T) {
	// 0xFC with a subopcode outside every known proposal is not WebAssembly;
	// it must fail at decode, not be smuggled through as "unsupported".
	_, err := Decode(unsupportedModule(0xFC, 0x63, 0x0B))
	if err == nil {
		t.Fatal("unknown 0xfc subopcode decoded")
	}
	if !strings.Contains(err.Error(), "0xfc subopcode 99") {
		t.Errorf("error does not identify the subopcode: %v", err)
	}
}
