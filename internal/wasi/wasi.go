// Package wasi implements a deterministic wasi_snapshot_preview1 host
// provider: enough of the preview1 syscall surface to run and analyze real
// toolchain binaries (wasm32-wasi output of clang, Rust, TinyGo for
// hello-world-class programs) without giving the guest any ambient
// authority. Everything an analyzed module can observe through it is
// reproducible by construction — the clock is a mock that advances by a
// fixed step per read, random_get draws from a seeded generator, and the
// file descriptors are an in-memory table with captured stdio — so a
// recorded analysis run can be replayed bit-for-bit.
//
// The provider is a set of interp.HostFuncs (see System.Imports); each
// syscall validates guest pointers against the instance's linear memory and
// reports failures as WASI errnos, never as traps, matching how a native
// preview1 host behaves. The one exception is proc_exit, which by design
// unwinds the whole call: it surfaces as a typed *ExitError through the
// host-error path so embedders can distinguish "the program called exit(3)"
// from a crash.
package wasi

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"wasabi/internal/failpoint"
	"wasabi/internal/interp"
	"wasabi/internal/wasm"
)

// ModuleName is the import module name every preview1 binary links against.
const ModuleName = "wasi_snapshot_preview1"

// WASI preview1 errno values (the subset this provider reports).
const (
	errnoSuccess uint32 = 0
	errnoBadf    uint32 = 8
	errnoFault   uint32 = 21
	errnoInval   uint32 = 28
	errnoIO      uint32 = 29
	errnoNosys   uint32 = 52
	errnoSpipe   uint32 = 70
)

// WASI preview1 filetypes (fd_fdstat_get).
const (
	filetypeCharDevice  byte = 2
	filetypeRegularFile byte = 4
)

// Config configures one System. The zero value is a valid minimal
// environment: no args, no env, empty stdin, clock starting at zero, and
// random bytes from seed 0.
type Config struct {
	// Args are the program arguments (args_get). By convention Args[0] is
	// the program name; an empty slice is presented as-is (argc 0).
	Args []string
	// Env are the environment strings, each "KEY=VALUE" (environ_get).
	Env []string
	// Stdin is the byte stream served to fd 0 reads.
	Stdin []byte
	// ClockBase is the first value (in nanoseconds) clock_time_get returns.
	ClockBase uint64
	// ClockStep is how many nanoseconds the mock clock advances on every
	// clock_time_get. 0 means DefaultClockStep, so repeated reads are
	// strictly monotonic (real programs spin on that).
	ClockStep uint64
	// RandomSeed seeds the deterministic random_get stream.
	RandomSeed int64
	// Files preopens in-memory regular files at descriptors 3, 4, … in
	// slice order: the WASI fd surface (read/seek/close/fdstat) over a
	// sandboxed FS with no path namespace — nothing the guest does can
	// reach the host filesystem.
	Files []File
}

// File is one preopened in-memory file.
type File struct {
	Name string // diagnostic only; there is no path namespace
	Data []byte
}

// DefaultClockStep is the mock clock's advance per clock_time_get when
// Config.ClockStep is 0: 1ms, coarse enough to make "did time pass" loops
// progress quickly.
const DefaultClockStep = uint64(1_000_000)

// ExitError is how proc_exit surfaces: the guest requested termination with
// the given code. It travels the host-error path (so it unwinds the whole
// wasm stack like a trap) but is recoverable with errors.As — a zero Code
// is a successful exit, not a failure.
type ExitError struct {
	Code uint32
}

func (e *ExitError) Error() string {
	return fmt.Sprintf("wasi: module exited with code %d", e.Code)
}

// fdEntry is one open descriptor. Stdio entries stream (no seeking);
// regular-file entries support the full read/seek surface.
type fdEntry struct {
	filetype byte
	data     []byte // backing bytes for readable fds
	pos      int64  // read cursor (regular files and stdin)
	writable bool   // fd 1 / fd 2
	seekable bool   // regular files only
	out      *[]byte
	closed   bool
}

// System is the per-run WASI state: argument/environment blocks, the fd
// table, the mock clock, and the seeded random stream. One System belongs
// to one instantiation's run; it is not safe for concurrent use (matching
// the single-goroutine contract of the instance driving it).
type System struct {
	cfg    Config
	clock  uint64
	step   uint64
	rng    *rand.Rand
	fds    map[uint32]*fdEntry
	stdout []byte
	stderr []byte
	exit   *ExitError // recorded by proc_exit
}

// New builds a System from cfg.
func New(cfg Config) *System {
	step := cfg.ClockStep
	if step == 0 {
		step = DefaultClockStep
	}
	s := &System{
		cfg:   cfg,
		clock: cfg.ClockBase,
		step:  step,
		rng:   rand.New(rand.NewSource(cfg.RandomSeed)),
		fds:   make(map[uint32]*fdEntry, 3+len(cfg.Files)),
	}
	s.fds[0] = &fdEntry{filetype: filetypeCharDevice, data: cfg.Stdin}
	s.fds[1] = &fdEntry{filetype: filetypeCharDevice, writable: true, out: &s.stdout}
	s.fds[2] = &fdEntry{filetype: filetypeCharDevice, writable: true, out: &s.stderr}
	for i, f := range cfg.Files {
		s.fds[uint32(3+i)] = &fdEntry{filetype: filetypeRegularFile, data: f.Data, seekable: true}
	}
	return s
}

// Stdout returns everything the guest wrote to fd 1 so far.
func (s *System) Stdout() []byte { return s.stdout }

// Stderr returns everything the guest wrote to fd 2 so far.
func (s *System) Stderr() []byte { return s.stderr }

// Exit reports the proc_exit call, if the guest made one.
func (s *System) Exit() (code uint32, exited bool) {
	if s.exit == nil {
		return 0, false
	}
	return s.exit.Code, true
}

// Signature helpers: preview1 is uniformly (i32… [, i64]) → errno:i32,
// except proc_exit which never returns.
func sig(params ...wasm.ValType) wasm.FuncType {
	return wasm.FuncType{Params: params, Results: []wasm.ValType{wasm.I32}}
}

// syscall wraps a preview1 implementation into an interp.HostFunc body:
// the shared fault-injection seam runs first (an injected failure is a
// typed host error, indistinguishable from the provider itself failing),
// then the errno result is widened onto the stack.
func syscall(impl func(inst *interp.Instance, args []interp.Value) uint32) func(*interp.Instance, []interp.Value) ([]interp.Value, error) {
	return func(inst *interp.Instance, args []interp.Value) ([]interp.Value, error) {
		if err := failpoint.Inject(failpoint.WASIHostCall); err != nil {
			return nil, err
		}
		return []interp.Value{uint64(impl(inst, args))}, nil
	}
}

// mem returns the instance's linear memory bytes; preview1 functions that
// dereference guest pointers fail with EFAULT when the module has none.
func mem(inst *interp.Instance) []byte {
	if inst.Memory == nil {
		return nil
	}
	return inst.Memory.Data
}

// writeU32/writeU64 store little-endian values at a guest pointer,
// reporting false when the write would fall outside linear memory.
func writeU32(m []byte, ptr uint32, v uint32) bool {
	if uint64(ptr)+4 > uint64(len(m)) {
		return false
	}
	binary.LittleEndian.PutUint32(m[ptr:], v)
	return true
}

func writeU64(m []byte, ptr uint32, v uint64) bool {
	if uint64(ptr)+8 > uint64(len(m)) {
		return false
	}
	binary.LittleEndian.PutUint64(m[ptr:], v)
	return true
}

func span(m []byte, ptr, size uint32) ([]byte, bool) {
	if uint64(ptr)+uint64(size) > uint64(len(m)) {
		return nil, false
	}
	return m[ptr : uint64(ptr)+uint64(size)], true
}

// Imports returns the provider's import map, suitable for merging into
// Session.Instantiate program imports (module ModuleName). Every call into
// the returned functions mutates this System.
func (s *System) Imports() map[string]any {
	i32 := wasm.I32
	return map[string]any{
		"args_sizes_get":    &interp.HostFunc{Type: sig(i32, i32), Fn: syscall(s.argsSizesGet)},
		"args_get":          &interp.HostFunc{Type: sig(i32, i32), Fn: syscall(s.argsGet)},
		"environ_sizes_get": &interp.HostFunc{Type: sig(i32, i32), Fn: syscall(s.environSizesGet)},
		"environ_get":       &interp.HostFunc{Type: sig(i32, i32), Fn: syscall(s.environGet)},
		"clock_time_get":    &interp.HostFunc{Type: sig(i32, wasm.I64, i32), Fn: syscall(s.clockTimeGet)},
		"random_get":        &interp.HostFunc{Type: sig(i32, i32), Fn: syscall(s.randomGet)},
		"fd_write":          &interp.HostFunc{Type: sig(i32, i32, i32, i32), Fn: syscall(s.fdWrite)},
		"fd_read":           &interp.HostFunc{Type: sig(i32, i32, i32, i32), Fn: syscall(s.fdRead)},
		"fd_seek":           &interp.HostFunc{Type: sig(i32, wasm.I64, i32, i32), Fn: syscall(s.fdSeek)},
		"fd_close":          &interp.HostFunc{Type: sig(i32), Fn: syscall(s.fdClose)},
		"fd_fdstat_get":     &interp.HostFunc{Type: sig(i32, i32), Fn: syscall(s.fdFdstatGet)},
		"proc_exit": &interp.HostFunc{
			Type: wasm.FuncType{Params: []wasm.ValType{i32}},
			Fn: func(inst *interp.Instance, args []interp.Value) ([]interp.Value, error) {
				if err := failpoint.Inject(failpoint.WASIHostCall); err != nil {
					return nil, err
				}
				s.exit = &ExitError{Code: uint32(args[0])}
				return nil, s.exit
			},
		},
	}
}

// argsSizesGet writes argc and the total size of the argument block.
func (s *System) argsSizesGet(inst *interp.Instance, args []interp.Value) uint32 {
	return s.sizesGet(inst, uint32(args[0]), uint32(args[1]), s.cfg.Args)
}

func (s *System) argsGet(inst *interp.Instance, args []interp.Value) uint32 {
	return s.listGet(inst, uint32(args[0]), uint32(args[1]), s.cfg.Args)
}

func (s *System) environSizesGet(inst *interp.Instance, args []interp.Value) uint32 {
	return s.sizesGet(inst, uint32(args[0]), uint32(args[1]), s.cfg.Env)
}

func (s *System) environGet(inst *interp.Instance, args []interp.Value) uint32 {
	return s.listGet(inst, uint32(args[0]), uint32(args[1]), s.cfg.Env)
}

// sizesGet is the shared shape of args_sizes_get / environ_sizes_get:
// *countPtr = len(list), *bufSizePtr = Σ len(s)+1 (NUL-terminated).
func (s *System) sizesGet(inst *interp.Instance, countPtr, bufSizePtr uint32, list []string) uint32 {
	m := mem(inst)
	total := 0
	for _, a := range list {
		total += len(a) + 1
	}
	if !writeU32(m, countPtr, uint32(len(list))) || !writeU32(m, bufSizePtr, uint32(total)) {
		return errnoFault
	}
	return errnoSuccess
}

// listGet is the shared shape of args_get / environ_get: the pointer array
// at ptrsPtr receives one guest pointer per entry, the strings themselves
// are packed NUL-terminated at bufPtr.
func (s *System) listGet(inst *interp.Instance, ptrsPtr, bufPtr uint32, list []string) uint32 {
	m := mem(inst)
	off := bufPtr
	for i, a := range list {
		if !writeU32(m, ptrsPtr+uint32(4*i), off) {
			return errnoFault
		}
		dst, ok := span(m, off, uint32(len(a)+1))
		if !ok {
			return errnoFault
		}
		copy(dst, a)
		dst[len(a)] = 0
		off += uint32(len(a) + 1)
	}
	return errnoSuccess
}

// clockTimeGet serves every clock id from the one mock clock, advancing it
// by the configured step per read so time observably progresses.
func (s *System) clockTimeGet(inst *interp.Instance, args []interp.Value) uint32 {
	timePtr := uint32(args[2])
	now := s.clock
	s.clock += s.step
	if !writeU64(mem(inst), timePtr, now) {
		return errnoFault
	}
	return errnoSuccess
}

// randomGet fills the guest buffer from the seeded stream.
func (s *System) randomGet(inst *interp.Instance, args []interp.Value) uint32 {
	buf, ok := span(mem(inst), uint32(args[0]), uint32(args[1]))
	if !ok {
		return errnoFault
	}
	s.rng.Read(buf) // never fails
	return errnoSuccess
}

// iovec walks the guest's (ptr, len) iovec array, calling f on each
// in-bounds buffer. Returns errnoFault on any out-of-bounds element.
func iovec(m []byte, iovsPtr, iovsLen uint32, f func(b []byte)) uint32 {
	for i := uint32(0); i < iovsLen; i++ {
		rec, ok := span(m, iovsPtr+8*i, 8)
		if !ok {
			return errnoFault
		}
		ptr := binary.LittleEndian.Uint32(rec)
		n := binary.LittleEndian.Uint32(rec[4:])
		b, ok := span(m, ptr, n)
		if !ok {
			return errnoFault
		}
		f(b)
	}
	return errnoSuccess
}

func (s *System) fdWrite(inst *interp.Instance, args []interp.Value) uint32 {
	fd, iovsPtr, iovsLen, nwrittenPtr := uint32(args[0]), uint32(args[1]), uint32(args[2]), uint32(args[3])
	e := s.fds[fd]
	if e == nil || e.closed || !e.writable {
		return errnoBadf
	}
	m := mem(inst)
	var written uint32
	if rc := iovec(m, iovsPtr, iovsLen, func(b []byte) {
		*e.out = append(*e.out, b...)
		written += uint32(len(b))
	}); rc != errnoSuccess {
		return rc
	}
	if !writeU32(m, nwrittenPtr, written) {
		return errnoFault
	}
	return errnoSuccess
}

func (s *System) fdRead(inst *interp.Instance, args []interp.Value) uint32 {
	fd, iovsPtr, iovsLen, nreadPtr := uint32(args[0]), uint32(args[1]), uint32(args[2]), uint32(args[3])
	e := s.fds[fd]
	if e == nil || e.closed || e.writable {
		return errnoBadf
	}
	m := mem(inst)
	var read uint32
	if rc := iovec(m, iovsPtr, iovsLen, func(b []byte) {
		n := copy(b, e.data[min64(e.pos, int64(len(e.data))):])
		e.pos += int64(n)
		read += uint32(n)
	}); rc != errnoSuccess {
		return rc
	}
	if !writeU32(m, nreadPtr, read) {
		return errnoFault
	}
	return errnoSuccess
}

func (s *System) fdSeek(inst *interp.Instance, args []interp.Value) uint32 {
	fd, offset, whence, newPtr := uint32(args[0]), int64(args[1]), uint32(args[2]), uint32(args[3])
	e := s.fds[fd]
	if e == nil || e.closed {
		return errnoBadf
	}
	if !e.seekable {
		return errnoSpipe
	}
	var base int64
	switch whence {
	case 0: // SET
		base = 0
	case 1: // CUR
		base = e.pos
	case 2: // END
		base = int64(len(e.data))
	default:
		return errnoInval
	}
	pos := base + offset
	if pos < 0 {
		return errnoInval
	}
	e.pos = pos
	if !writeU64(mem(inst), newPtr, uint64(pos)) {
		return errnoFault
	}
	return errnoSuccess
}

func (s *System) fdClose(_ *interp.Instance, args []interp.Value) uint32 {
	e := s.fds[uint32(args[0])]
	if e == nil || e.closed {
		return errnoBadf
	}
	e.closed = true
	return errnoSuccess
}

// fdFdstatGet fills the 24-byte fdstat record: filetype, flags, and an
// everything-allowed rights mask (the sandbox is the fd table itself, not
// the rights bits).
func (s *System) fdFdstatGet(inst *interp.Instance, args []interp.Value) uint32 {
	e := s.fds[uint32(args[0])]
	if e == nil || e.closed {
		return errnoBadf
	}
	stat, ok := span(mem(inst), uint32(args[1]), 24)
	if !ok {
		return errnoFault
	}
	for i := range stat {
		stat[i] = 0
	}
	stat[0] = e.filetype
	binary.LittleEndian.PutUint64(stat[8:], ^uint64(0))  // fs_rights_base
	binary.LittleEndian.PutUint64(stat[16:], ^uint64(0)) // fs_rights_inheriting
	return errnoSuccess
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
