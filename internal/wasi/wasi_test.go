package wasi

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"wasabi/internal/builder"
	"wasabi/internal/failpoint"
	"wasabi/internal/interp"
	"wasabi/internal/wasm"
)

// memInstance fabricates an instance with one page of linear memory, enough
// for the syscall implementations (they only touch inst.Memory).
func memInstance() *interp.Instance {
	return &interp.Instance{Memory: interp.NewMemory(wasm.Limits{Min: 1})}
}

func call(t *testing.T, hf *interp.HostFunc, inst *interp.Instance, args ...interp.Value) uint32 {
	t.Helper()
	res, err := hf.Fn(inst, args)
	if err != nil {
		t.Fatalf("syscall error: %v", err)
	}
	if len(res) != 1 {
		t.Fatalf("syscall returned %d values, want errno", len(res))
	}
	return uint32(res[0])
}

func u32(m []byte, ptr uint32) uint32 {
	return uint32(m[ptr]) | uint32(m[ptr+1])<<8 | uint32(m[ptr+2])<<16 | uint32(m[ptr+3])<<24
}

func u64(m []byte, ptr uint32) uint64 {
	return uint64(u32(m, ptr)) | uint64(u32(m, ptr+4))<<32
}

func TestArgsAndEnviron(t *testing.T) {
	s := New(Config{Args: []string{"prog", "-v"}, Env: []string{"A=1"}})
	imp := s.Imports()
	inst := memInstance()
	m := inst.Memory.Data

	if rc := call(t, imp["args_sizes_get"].(*interp.HostFunc), inst, 0, 4); rc != errnoSuccess {
		t.Fatalf("args_sizes_get errno %d", rc)
	}
	if argc := u32(m, 0); argc != 2 {
		t.Errorf("argc = %d, want 2", argc)
	}
	if sz := u32(m, 4); sz != uint32(len("prog")+1+len("-v")+1) {
		t.Errorf("argv buf size = %d, want 8", sz)
	}
	if rc := call(t, imp["args_get"].(*interp.HostFunc), inst, 16, 64); rc != errnoSuccess {
		t.Fatalf("args_get errno %d", rc)
	}
	if p0, p1 := u32(m, 16), u32(m, 20); p0 != 64 || p1 != 69 {
		t.Errorf("argv pointers = %d,%d, want 64,69", p0, p1)
	}
	if got := string(m[64:72]); got != "prog\x00-v\x00" {
		t.Errorf("argv block = %q", got)
	}

	if rc := call(t, imp["environ_sizes_get"].(*interp.HostFunc), inst, 0, 4); rc != errnoSuccess {
		t.Fatal("environ_sizes_get failed")
	}
	if count, sz := u32(m, 0), u32(m, 4); count != 1 || sz != 4 {
		t.Errorf("environ sizes = %d,%d, want 1,4", count, sz)
	}
	if rc := call(t, imp["environ_get"].(*interp.HostFunc), inst, 16, 128); rc != errnoSuccess {
		t.Fatal("environ_get failed")
	}
	if got := string(m[128:132]); got != "A=1\x00" {
		t.Errorf("environ block = %q", got)
	}

	// Out-of-bounds result pointers degrade to EFAULT, never a trap.
	if rc := call(t, imp["args_sizes_get"].(*interp.HostFunc), inst, 65536, 4); rc != errnoFault {
		t.Errorf("OOB args_sizes_get errno %d, want EFAULT", rc)
	}
}

func TestClockDeterminism(t *testing.T) {
	s := New(Config{ClockBase: 1000, ClockStep: 5})
	imp := s.Imports()["clock_time_get"].(*interp.HostFunc)
	inst := memInstance()
	for i, want := range []uint64{1000, 1005, 1010} {
		if rc := call(t, imp, inst, 0, 0, 32); rc != errnoSuccess {
			t.Fatalf("clock_time_get errno %d", rc)
		}
		if got := u64(inst.Memory.Data, 32); got != want {
			t.Errorf("read %d: clock = %d, want %d", i, got, want)
		}
	}
	if New(Config{}).step != DefaultClockStep {
		t.Errorf("zero ClockStep does not default")
	}
}

func TestRandomDeterminism(t *testing.T) {
	read := func(seed int64) []byte {
		s := New(Config{RandomSeed: seed})
		inst := memInstance()
		if rc := call(t, s.Imports()["random_get"].(*interp.HostFunc), inst, 0, 16); rc != errnoSuccess {
			t.Fatalf("random_get errno %d", rc)
		}
		return append([]byte(nil), inst.Memory.Data[:16]...)
	}
	a, b := read(7), read(7)
	if !bytes.Equal(a, b) {
		t.Errorf("same seed produced different bytes: %x vs %x", a, b)
	}
	want := make([]byte, 16)
	rand.New(rand.NewSource(7)).Read(want)
	if !bytes.Equal(a, want) {
		t.Errorf("random stream not the seeded math/rand stream: %x vs %x", a, want)
	}
	if c := read(8); bytes.Equal(a, c) {
		t.Errorf("different seeds produced identical bytes")
	}
}

func TestFdTable(t *testing.T) {
	s := New(Config{
		Stdin: []byte("abcdef"),
		Files: []File{{Name: "data.bin", Data: []byte("0123456789")}},
	})
	imp := s.Imports()
	inst := memInstance()
	m := inst.Memory.Data

	// fd_read from stdin through a two-element iovec: {ptr 100, len 4},
	// {ptr 200, len 4} — 6 bytes available, so the second iovec is short.
	put32 := func(ptr, v uint32) {
		m[ptr], m[ptr+1], m[ptr+2], m[ptr+3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	}
	put32(0, 100)
	put32(4, 4)
	put32(8, 200)
	put32(12, 4)
	if rc := call(t, imp["fd_read"].(*interp.HostFunc), inst, 0, 0, 2, 64); rc != errnoSuccess {
		t.Fatalf("fd_read errno %d", rc)
	}
	if n := u32(m, 64); n != 6 {
		t.Errorf("nread = %d, want 6", n)
	}
	if got := string(m[100:104]) + string(m[200:202]); got != "abcdef" {
		t.Errorf("read bytes = %q", got)
	}

	// fd_seek on the preopened file, then fd_read picks up from there.
	if rc := call(t, imp["fd_seek"].(*interp.HostFunc), inst, 3, 4, 0, 64); rc != errnoSuccess {
		t.Fatalf("fd_seek errno %d", rc)
	}
	if pos := u64(m, 64); pos != 4 {
		t.Errorf("seek pos = %d, want 4", pos)
	}
	put32(0, 100)
	put32(4, 3)
	if rc := call(t, imp["fd_read"].(*interp.HostFunc), inst, 3, 0, 1, 64); rc != errnoSuccess {
		t.Fatalf("fd_read(file) errno %d", rc)
	}
	if got := string(m[100:103]); got != "456" {
		t.Errorf("file read = %q, want 456", got)
	}

	// Seeking a stream is ESPIPE; seeking before the start is EINVAL.
	if rc := call(t, imp["fd_seek"].(*interp.HostFunc), inst, 0, 0, 0, 64); rc != errnoSpipe {
		t.Errorf("seek(stdin) errno %d, want ESPIPE", rc)
	}
	neg := int64(-100)
	if rc := call(t, imp["fd_seek"].(*interp.HostFunc), inst, 3, uint64(neg), 0, 64); rc != errnoInval {
		t.Errorf("seek(-100) errno %d, want EINVAL", rc)
	}

	// fd_fdstat_get distinguishes stdio streams from regular files.
	if rc := call(t, imp["fd_fdstat_get"].(*interp.HostFunc), inst, 1, 300); rc != errnoSuccess {
		t.Fatal("fdstat(1) failed")
	}
	if m[300] != filetypeCharDevice {
		t.Errorf("fd 1 filetype = %d, want char device", m[300])
	}
	if rc := call(t, imp["fd_fdstat_get"].(*interp.HostFunc), inst, 3, 300); rc != errnoSuccess {
		t.Fatal("fdstat(3) failed")
	}
	if m[300] != filetypeRegularFile {
		t.Errorf("fd 3 filetype = %d, want regular file", m[300])
	}

	// fd_close, then everything on the fd is EBADF; closing twice too.
	if rc := call(t, imp["fd_close"].(*interp.HostFunc), inst, 3); rc != errnoSuccess {
		t.Fatal("fd_close failed")
	}
	if rc := call(t, imp["fd_read"].(*interp.HostFunc), inst, 3, 0, 1, 64); rc != errnoBadf {
		t.Errorf("read(closed) errno %d, want EBADF", rc)
	}
	if rc := call(t, imp["fd_close"].(*interp.HostFunc), inst, 3); rc != errnoBadf {
		t.Errorf("close(closed) errno %d, want EBADF", rc)
	}
	if rc := call(t, imp["fd_write"].(*interp.HostFunc), inst, 7, 0, 1, 64); rc != errnoBadf {
		t.Errorf("write(unknown fd) errno %d, want EBADF", rc)
	}
}

// TestFdWriteThroughWasm runs fd_write from inside a real module — the
// end-to-end shape every toolchain binary uses — and checks the capture.
func TestFdWriteThroughWasm(t *testing.T) {
	b := builder.New()
	fdWrite := b.ImportFunc(ModuleName, "fd_write",
		wasm.FuncType{Params: []wasm.ValType{wasm.I32, wasm.I32, wasm.I32, wasm.I32}, Results: []wasm.ValType{wasm.I32}})
	b.Memory(1)
	b.Data(64, []byte("hello, wasi\n"))
	f := b.Func("_start", nil, nil)
	// iovec at 0: ptr 64, len 12; errno and nwritten land at 32/36.
	f.I32(0).I32(64).Store(wasm.OpI32Store, 0)
	f.I32(4).I32(12).Store(wasm.OpI32Store, 0)
	f.I32(1).I32(0).I32(1).I32(36).Call(fdWrite).Drop()
	f.Done()

	s := New(Config{})
	inst, err := interp.Instantiate(b.Build(), interp.Imports{ModuleName: s.Imports()})
	if err != nil {
		t.Fatalf("instantiate: %v", err)
	}
	if _, err := inst.Invoke("_start"); err != nil {
		t.Fatalf("_start: %v", err)
	}
	if got := string(s.Stdout()); got != "hello, wasi\n" {
		t.Errorf("stdout = %q", got)
	}
	if n := u32(inst.Memory.Data, 36); n != 12 {
		t.Errorf("nwritten = %d, want 12", n)
	}
}

func TestProcExit(t *testing.T) {
	s := New(Config{})
	hf := s.Imports()["proc_exit"].(*interp.HostFunc)
	_, err := hf.Fn(memInstance(), []interp.Value{42})
	var xe *ExitError
	if !errors.As(err, &xe) || xe.Code != 42 {
		t.Fatalf("proc_exit error = %v, want ExitError{42}", err)
	}
	if code, exited := s.Exit(); !exited || code != 42 {
		t.Errorf("Exit() = %d,%v, want 42,true", code, exited)
	}
}

// TestFailpoint arms the WASI syscall seam: every provider function must
// surface the injected fault as a typed host error before touching state.
func TestFailpoint(t *testing.T) {
	failpoint.DisarmAll()
	t.Cleanup(failpoint.DisarmAll)
	failpoint.Arm(failpoint.WASIHostCall)

	s := New(Config{})
	inst := memInstance()
	for name, v := range s.Imports() {
		hf := v.(*interp.HostFunc)
		args := make([]interp.Value, len(hf.Type.Params))
		_, err := hf.Fn(inst, args)
		if !errors.Is(err, failpoint.ErrInjected) {
			t.Errorf("%s: err = %v, want injected fault", name, err)
		}
	}
	if _, exited := s.Exit(); exited {
		t.Error("proc_exit recorded an exit despite the injected fault")
	}
	if len(s.Stdout()) != 0 {
		t.Error("stdout written despite the injected fault")
	}
}

func TestNoMemoryIsEfault(t *testing.T) {
	s := New(Config{Args: []string{"p"}})
	inst := &interp.Instance{} // module without linear memory
	if rc := call(t, s.Imports()["args_sizes_get"].(*interp.HostFunc), inst, 0, 4); rc != errnoFault {
		t.Errorf("errno %d, want EFAULT", rc)
	}
}
