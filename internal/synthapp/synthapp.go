// Package synthapp generates large, code-diverse WebAssembly modules that
// stand in for the paper's real-world binaries (PSPDFKit, 9.6 MB, and the
// Unreal Engine Zen Garden demo, 39.5 MB), which are closed-source and not
// redistributable. What the paper's RQ3–RQ5 need from them is (a) sheer
// binary size, to measure instrumentation time and throughput, (b) a diverse
// instruction mix — unlike PolyBench's numeric loops — which is what makes
// their relative overheads lower in Figures 8 and 9, and (c) diverse
// function signatures (the Unreal binary calls functions with up to 22
// arguments), which is what makes on-demand monomorphization of call hooks
// essential (§4.5). The generator reproduces all three properties
// deterministically from a seed.
package synthapp

import (
	"wasabi/internal/builder"
	"wasabi/internal/interp"
	"wasabi/internal/wasm"
)

// Config parameterizes the generated application.
type Config struct {
	// TargetBytes is the approximate encoded size of the module.
	TargetBytes int
	// Seed makes generation deterministic.
	Seed uint64
	// TableSize bounds the indirect-call table (also the number of entry
	// functions reachable from main).
	TableSize int
	// Helpers is the size of the helper-function pool with randomized
	// multi-argument signatures (drives call-hook monomorphization).
	Helpers int
	// MaxExtraArgs bounds the number of randomly-typed parameters a helper
	// takes beyond its leading i32 depth parameter.
	MaxExtraArgs int
}

func (c *Config) fill() {
	if c.TargetBytes <= 0 {
		c.TargetBytes = 1 << 20
	}
	if c.TableSize <= 0 {
		c.TableSize = 64
	}
	if c.Helpers <= 0 {
		c.Helpers = 40
	}
	if c.MaxExtraArgs <= 0 {
		c.MaxExtraArgs = 6
	}
}

// rng is a splitmix64 generator: deterministic, seedable, stdlib-free.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

var valTypes = []wasm.ValType{wasm.I32, wasm.I64, wasm.F32, wasm.F64}

// callee describes a callable generated function.
type callee struct {
	idx uint32
	sig wasm.FuncType // params[0] is always the i32 depth parameter
}

// Generate builds the module. Every function's first parameter is an i32
// "depth" value; calls always pass depth>>4 and are guarded by depth>0, so
// recursion work is bounded. The exported "main" (i32) -> i32 drives a
// bounded workload over the function table; the module is executable,
// terminating, and trap-free for any argument.
func Generate(cfg Config) *wasm.Module {
	cfg.fill()
	r := &rng{s: cfg.Seed ^ 0xC0FFEE}

	b := builder.New()
	b.Memory(1)
	gAcc := b.GlobalI32(true, 0)
	gBig := b.GlobalI64(true, 1)

	g := &bodyGen{r: r, gAcc: gAcc, gBig: gBig}

	// Helper pool with diverse signatures. Helpers only call earlier
	// helpers, so the call graph is a DAG of depth ≤ Helpers, and the
	// shrinking depth argument bounds the dynamic call tree.
	for h := 0; h < cfg.Helpers; h++ {
		params := []wasm.ValType{wasm.I32}
		for e := r.intn(cfg.MaxExtraArgs + 1); e > 0; e-- {
			params = append(params, valTypes[r.intn(4)])
		}
		result := valTypes[r.intn(4)]
		sig := builder.Sig(params, builder.V(result))
		fb := b.Func("", sig.Params, sig.Results)
		g.genBody(fb, sig)
		g.pool = append(g.pool, callee{idx: fb.Done(), sig: sig})
	}

	// Entry functions, all (i32) -> i32 so they can share the table.
	// Rough encoded-size model: ~2.4 bytes per instruction plus overhead.
	const bytesPerInstr = 2.4
	budget := float64(cfg.TargetBytes)
	entrySig := builder.Sig(builder.V(wasm.I32), builder.V(wasm.I32))
	var entries []uint32
	for budget > 0 {
		fb := b.Func("", entrySig.Params, entrySig.Results)
		n := g.genBody(fb, entrySig)
		entries = append(entries, fb.Done())
		budget -= float64(n)*bytesPerInstr + 16
	}

	tableSize := cfg.TableSize
	if tableSize > len(entries) {
		tableSize = len(entries)
	}
	b.Table(uint32(tableSize))
	b.Elem(0, entries[:tableSize]...)

	// main(n): acc = Σ_{i<n} table[i % tableSize](i)
	fb := b.Func("main", builder.V(wasm.I32), builder.V(wasm.I32))
	i := fb.Local(wasm.I32)
	acc := fb.Local(wasm.I32)
	fb.ForI32(i, func(fb *builder.FuncBuilder) { fb.Get(0) }, func(fb *builder.FuncBuilder) {
		fb.Get(acc)
		fb.Get(i)
		fb.Get(i).I32(int32(tableSize)).Op(wasm.OpI32RemU)
		fb.CallIndirect(builder.V(wasm.I32), builder.V(wasm.I32))
		fb.Op(wasm.OpI32Add).Set(acc)
	})
	fb.Get(acc)
	fb.Done()
	return b.Build()
}

// bodyGen emits randomized, trap-free function bodies.
type bodyGen struct {
	r          *rng
	gAcc, gBig uint32
	pool       []callee
}

// genBody fills fb for a function with the given signature (params[0] is the
// i32 depth parameter) and returns the emitted instruction count.
func (g *bodyGen) genBody(fb *builder.FuncBuilder, sig wasm.FuncType) int {
	r := g.r
	t := fb.Local(wasm.I32)
	l64 := fb.Local(wasm.I64)
	lf := fb.Local(wasm.F32)
	ld := fb.Local(wasm.F64)
	cnt := fb.Local(wasm.I32)

	before := fb.Len()
	// Seed the scratch locals from the parameters.
	fb.Get(0).I32(0x5bd1e995).Op(wasm.OpI32Mul).Set(t)
	for p := 1; p < len(sig.Params); p++ {
		switch sig.Params[p] {
		case wasm.I32:
			fb.Get(t).Get(uint32(p)).Op(wasm.OpI32Xor).Set(t)
		case wasm.I64:
			fb.Get(l64).Get(uint32(p)).Op(wasm.OpI64Add).Set(l64)
		case wasm.F32:
			fb.Get(lf).Get(uint32(p)).Op(wasm.OpF32Add).Set(lf)
		case wasm.F64:
			fb.Get(ld).Get(uint32(p)).Op(wasm.OpF64Add).Set(ld)
		}
	}

	snippets := 6 + r.intn(24)
	calls := 0
	for s := 0; s < snippets; s++ {
		switch r.intn(10) {
		case 0: // i32 arithmetic chain
			fb.Get(t).I32(int32(r.next())).Op(pick(r, wasm.OpI32Add, wasm.OpI32Xor, wasm.OpI32And, wasm.OpI32Or))
			fb.Get(0).Op(pick(r, wasm.OpI32Add, wasm.OpI32Sub, wasm.OpI32Mul))
			fb.I32(int32(1 + r.intn(31))).Op(pick(r, wasm.OpI32Shl, wasm.OpI32ShrU, wasm.OpI32Rotl))
			fb.Set(t)
		case 1: // i64 traffic (exercises hook splitting)
			fb.Get(t).Op(wasm.OpI64ExtendI32U)
			fb.I64(int64(r.next())).Op(pick(r, wasm.OpI64Mul, wasm.OpI64Add, wasm.OpI64Xor))
			fb.Get(l64).Op(wasm.OpI64Add).Set(l64)
			fb.Get(l64).Op(wasm.OpI32WrapI64).Get(t).Op(wasm.OpI32Xor).Set(t)
		case 2: // float math (no trapping conversions)
			fb.Get(t).Op(wasm.OpF64ConvertI32S)
			fb.F64(1 + float64(r.intn(100))).Op(pick(r, wasm.OpF64Add, wasm.OpF64Mul, wasm.OpF64Sub, wasm.OpF64Div))
			fb.Op(wasm.OpF64Sqrt).Get(ld).Op(wasm.OpF64Add).Set(ld)
			fb.Get(t).Op(wasm.OpF32ConvertI32S).Get(lf).Op(wasm.OpF32Add).Set(lf)
		case 3: // memory round-trip, masked to the first page
			fb.Get(t).I32(0xFF8).Op(wasm.OpI32And)
			fb.Get(t).Store(wasm.OpI32Store, 16)
			fb.Get(t).I32(0xFF8).Op(wasm.OpI32And)
			fb.Load(wasm.OpI32Load, 16).Get(t).Op(wasm.OpI32Add).Set(t)
		case 4: // if/else
			fb.Get(t).I32(1).Op(wasm.OpI32And)
			fb.If()
			fb.Get(t).I32(3).Op(wasm.OpI32Mul).I32(1).Op(wasm.OpI32Add).Set(t)
			fb.Else()
			fb.Get(t).I32(1).Op(wasm.OpI32ShrU).Set(t)
			fb.End()
		case 5: // bounded loop
			fb.I32(0).Set(cnt)
			fb.Block().Loop()
			fb.Get(cnt).I32(int32(2 + r.intn(6))).Op(wasm.OpI32GeS).BrIf(1)
			fb.Get(t).Get(cnt).Op(wasm.OpI32Add).I32(0x45d9f3b).Op(wasm.OpI32Xor).Set(t)
			fb.Get(cnt).I32(1).Op(wasm.OpI32Add).Set(cnt)
			fb.Br(0)
			fb.End().End()
		case 6: // br_table over 3 arms
			fb.Block().Block().Block().Block()
			fb.Get(t).I32(3).Op(wasm.OpI32RemU)
			fb.BrTable([]uint32{0, 1, 2}, 2)
			fb.End()
			fb.Get(t).I32(13).Op(wasm.OpI32Add).Set(t)
			fb.Br(1)
			fb.End()
			fb.Get(t).I32(7).Op(wasm.OpI32Sub).Set(t)
			fb.Br(0)
			fb.End()
			fb.Get(t).I32(5).Op(wasm.OpI32Xor).Set(t)
			fb.End()
		case 7: // globals, select, drop
			fb.GGet(g.gAcc).Get(t).Op(wasm.OpI32Add).GSet(g.gAcc)
			fb.GGet(g.gBig).I64(3).Op(wasm.OpI64Mul).GSet(g.gBig)
			fb.Get(t).Get(0).Get(t).I32(0).Op(wasm.OpI32LtS).Select().Set(t)
			fb.Get(t).I32(2).Op(wasm.OpI32Mul).Drop()
		case 8: // guarded call into the helper pool; the depth argument
			// shrinks by 4 bits per level, bounding the dynamic call tree
			if len(g.pool) > 0 && calls < 2 {
				calls++
				g.emitCall(fb, t, l64, lf, ld)
			} else {
				fb.Get(t).I32(1).Op(wasm.OpI32Add).Set(t)
			}
		default: // nop plus a comparison-driven select
			fb.Op(wasm.OpNop)
			fb.Get(t).I32(1).Op(wasm.OpI32Add)
			fb.Get(t)
			fb.Get(t).Get(0).Op(pick(r, wasm.OpI32LtS, wasm.OpI32GtU, wasm.OpI32Eq))
			fb.Select().Set(t)
		}
	}

	// Produce the result from the matching scratch local.
	switch sig.Results[0] {
	case wasm.I32:
		fb.Get(t)
	case wasm.I64:
		fb.Get(l64)
	case wasm.F32:
		fb.Get(lf)
	case wasm.F64:
		fb.Get(ld)
	}
	return fb.Len() - before + 1
}

// emitCall calls a random pool function: if (depth > 0) { fold(call(depth>>4,
// scratch args...)) }.
func (g *bodyGen) emitCall(fb *builder.FuncBuilder, t, l64, lf, ld uint32) {
	c := g.pool[g.r.intn(len(g.pool))]
	fb.Get(0).I32(0).Op(wasm.OpI32GtS)
	fb.If()
	fb.Get(0).I32(4).Op(wasm.OpI32ShrU) // shrinking depth argument
	for _, p := range c.sig.Params[1:] {
		switch p {
		case wasm.I32:
			fb.Get(t)
		case wasm.I64:
			fb.Get(l64)
		case wasm.F32:
			fb.Get(lf)
		case wasm.F64:
			fb.Get(ld)
		}
	}
	fb.Call(c.idx)
	switch c.sig.Results[0] {
	case wasm.I32:
		fb.Get(t).Op(wasm.OpI32Add).Set(t)
	case wasm.I64:
		fb.Get(l64).Op(wasm.OpI64Xor).Set(l64)
	case wasm.F32:
		fb.Get(lf).Op(wasm.OpF32Add).Set(lf)
	case wasm.F64:
		fb.Get(ld).Op(wasm.OpF64Add).Set(ld)
	}
	fb.End()
}

func pick(r *rng, ops ...wasm.Opcode) wasm.Opcode { return ops[r.intn(len(ops))] }

// Run executes the generated module's main with the given n.
func Run(m *wasm.Module, n int32) (int32, error) {
	inst, err := interp.Instantiate(m, nil)
	if err != nil {
		return 0, err
	}
	res, err := inst.Invoke("main", interp.I32(n))
	if err != nil {
		return 0, err
	}
	return interp.AsI32(res[0]), nil
}
