package synthapp

import (
	"testing"

	"wasabi/internal/analysis"
	"wasabi/internal/binary"
	"wasabi/internal/core"
	"wasabi/internal/validate"
)

// TestGenerateValidAndSized checks the generated module validates, hits the
// size target within tolerance, and is deterministic for a fixed seed.
func TestGenerateValidAndSized(t *testing.T) {
	cfg := Config{TargetBytes: 200_000, Seed: 42}
	m := Generate(cfg)
	if err := validate.Module(m); err != nil {
		t.Fatalf("validate: %v", err)
	}
	data, err := binary.Encode(m)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	ratio := float64(len(data)) / float64(cfg.TargetBytes)
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("encoded size %d not within 2x of target %d", len(data), cfg.TargetBytes)
	}
	data2, err := binary.Encode(Generate(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Error("generation is not deterministic for a fixed seed")
	}
}

// TestGeneratedAppRuns executes the app original and fully instrumented and
// compares the results (faithfulness on diverse code).
func TestGeneratedAppRuns(t *testing.T) {
	m := Generate(Config{TargetBytes: 60_000, Seed: 7})
	orig, err := Run(m, 50)
	if err != nil {
		t.Fatalf("run original: %v", err)
	}
	instrumented, _, err := core.Instrument(m, core.Options{Hooks: analysis.AllHooks})
	if err != nil {
		t.Fatalf("instrument: %v", err)
	}
	if err := validate.Module(instrumented); err != nil {
		t.Fatalf("instrumented invalid: %v", err)
	}
	// Instrumented run needs hook imports: use a dispatcher-free stub via
	// the wasabi session in the top-level integration tests; here we only
	// check the original runs deterministically.
	again, err := Run(m, 50)
	if err != nil {
		t.Fatalf("run again: %v", err)
	}
	if orig != again {
		t.Errorf("non-deterministic execution: %d vs %d", orig, again)
	}
}
