package wasm

import "testing"

func TestOpcodeClassification(t *testing.T) {
	// Every known opcode must fall into exactly one instrumentation class
	// (the partition the instrumenter relies on).
	classes := func(op Opcode) []string {
		var cs []string
		if op.IsLoad() {
			cs = append(cs, "load")
		}
		if op.IsStore() {
			cs = append(cs, "store")
		}
		if op.IsConst() {
			cs = append(cs, "const")
		}
		if op.IsUnary() {
			cs = append(cs, "unary")
		}
		if op.IsBinary() {
			cs = append(cs, "binary")
		}
		return cs
	}
	for op := Opcode(0); op < 0xC0; op++ {
		if !op.Known() {
			continue
		}
		if cs := classes(op); len(cs) > 1 {
			t.Errorf("%s is in multiple classes: %v", op, cs)
		}
	}
	// Spot checks.
	if !OpI32Load8S.IsLoad() || OpI32Store.IsLoad() {
		t.Error("load classification wrong")
	}
	if !OpI64Store32.IsStore() || OpI64Load32S.IsStore() {
		t.Error("store classification wrong")
	}
	if !OpI32Eqz.IsUnary() || !OpF64PromoteF32.IsUnary() || OpI32Eq.IsUnary() {
		t.Error("unary classification wrong")
	}
	if !OpI32Add.IsBinary() || !OpF64Ge.IsBinary() || OpI32Clz.IsBinary() {
		t.Error("binary classification wrong")
	}
}

func TestNumericSigCoversAllNumerics(t *testing.T) {
	count := 0
	for op := Opcode(0x41); op <= Opcode(0xBF); op++ {
		if !op.Known() {
			t.Errorf("gap in numeric opcode space at 0x%02x", byte(op))
			continue
		}
		in, out, ok := NumericSig(op)
		if !ok {
			t.Errorf("NumericSig missing for %s", op)
			continue
		}
		count++
		if len(out) != 1 {
			t.Errorf("%s should produce exactly one value, got %d", op, len(out))
		}
		if op.IsConst() && len(in) != 0 {
			t.Errorf("%s should take no operands", op)
		}
		if op.IsUnary() && len(in) != 1 {
			t.Errorf("%s should take one operand", op)
		}
		if op.IsBinary() && len(in) != 2 {
			t.Errorf("%s should take two operands", op)
		}
	}
	// 4 consts + 123 numeric instructions (the paper's count: "123 numeric
	// instructions alone").
	if count != 127 {
		t.Errorf("expected 127 fixed-signature opcodes (4 const + 123 numeric), got %d", count)
	}
}

func TestLoadStoreTypes(t *testing.T) {
	cases := []struct {
		op   Opcode
		t    ValType
		size uint32
	}{
		{OpI32Load, I32, 4}, {OpI64Load, I64, 8}, {OpF32Load, F32, 4}, {OpF64Load, F64, 8},
		{OpI32Load8S, I32, 1}, {OpI32Load16U, I32, 2},
		{OpI64Load8U, I64, 1}, {OpI64Load16S, I64, 2}, {OpI64Load32U, I64, 4},
		{OpI32Store8, I32, 1}, {OpI64Store32, I64, 4}, {OpF64Store, F64, 8},
	}
	for _, c := range cases {
		vt, size := c.op.LoadStoreType()
		if vt != c.t || size != c.size {
			t.Errorf("%s: got (%s, %d), want (%s, %d)", c.op, vt, size, c.t, c.size)
		}
	}
}

func TestFuncTypeEqualAndKey(t *testing.T) {
	a := FuncType{Params: []ValType{I32, F64}, Results: []ValType{I64}}
	b := FuncType{Params: []ValType{I32, F64}, Results: []ValType{I64}}
	c := FuncType{Params: []ValType{I32}, Results: []ValType{I64}}
	if !a.Equal(b) || a.Equal(c) {
		t.Error("FuncType.Equal wrong")
	}
	if a.Key() == c.Key() {
		t.Error("distinct types must have distinct keys")
	}
	if a.String() != "[i32 f64] -> [i64]" {
		t.Errorf("String: %s", a.String())
	}
}

func TestModuleIndexSpaces(t *testing.T) {
	m := &Module{
		Types: []FuncType{
			{Results: []ValType{I32}},
			{Params: []ValType{F64}},
		},
		Imports: []Import{
			{Module: "env", Name: "f", Kind: ExternFunc, TypeIdx: 0},
			{Module: "env", Name: "g", Kind: ExternGlobal, Global: GlobalType{Type: I64}},
			{Module: "env", Name: "h", Kind: ExternFunc, TypeIdx: 1},
		},
		Funcs:   []Func{{TypeIdx: 1}},
		Globals: []Global{{Type: GlobalType{Type: F32, Mutable: true}}},
	}
	if got := m.NumImportedFuncs(); got != 2 {
		t.Errorf("NumImportedFuncs = %d", got)
	}
	if got := m.NumFuncs(); got != 3 {
		t.Errorf("NumFuncs = %d", got)
	}
	ft, err := m.FuncType(2) // the defined function
	if err != nil || len(ft.Params) != 1 || ft.Params[0] != F64 {
		t.Errorf("FuncType(2) = %v, %v", ft, err)
	}
	if _, err := m.FuncType(3); err == nil {
		t.Error("FuncType(3) should fail")
	}
	gt, err := m.GlobalType(0) // imported
	if err != nil || gt.Type != I64 {
		t.Errorf("GlobalType(0) = %v, %v", gt, err)
	}
	gt, err = m.GlobalType(1) // defined
	if err != nil || gt.Type != F32 || !gt.Mutable {
		t.Errorf("GlobalType(1) = %v, %v", gt, err)
	}
	if name := m.FuncName(0); name != "env.f" {
		t.Errorf("FuncName(0) = %q", name)
	}
	if name := m.FuncName(2); name != "func2" {
		t.Errorf("FuncName(2) = %q", name)
	}
}

func TestAddTypeInterning(t *testing.T) {
	m := &Module{}
	a := m.AddType(FuncType{Params: []ValType{I32}})
	b := m.AddType(FuncType{Params: []ValType{I64}})
	c := m.AddType(FuncType{Params: []ValType{I32}})
	if a == b || a != c {
		t.Errorf("interning broken: a=%d b=%d c=%d", a, b, c)
	}
	if len(m.Types) != 2 {
		t.Errorf("expected 2 interned types, got %d", len(m.Types))
	}
}

func TestConstValue(t *testing.T) {
	if v := I32Const(-1).ConstValue(); v != 0xFFFFFFFF {
		t.Errorf("i32.const -1 bits = %#x", v)
	}
	if v := I64ConstInstr(-1).ConstValue(); v != 0xFFFFFFFFFFFFFFFF {
		t.Errorf("i64.const -1 bits = %#x", v)
	}
	if v := F32ConstInstr(1.0).ConstValue(); v != 0x3F800000 {
		t.Errorf("f32.const 1.0 bits = %#x", v)
	}
	if v := F64ConstInstr(1.0).ConstValue(); v != 0x3FF0000000000000 {
		t.Errorf("f64.const 1.0 bits = %#x", v)
	}
}

func TestBlockType(t *testing.T) {
	if got := BlockEmpty.Results(); len(got) != 0 {
		t.Errorf("empty block has results %v", got)
	}
	if got := BlockType(I32).Results(); len(got) != 1 || got[0] != I32 {
		t.Errorf("i32 block results %v", got)
	}
}

func TestInstrString(t *testing.T) {
	cases := map[string]Instr{
		"i32.const 42":              I32Const(42),
		"local.tee 5":               LocalTee(5),
		"local.get 3":               LocalGet(3),
		"i32.load offset=8 align=2": MemInstr(OpI32Load, 2, 8),
		"call 7":                    Call(7),
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}

	var pool []uint32
	bt := AppendBrTable(&pool, []uint32{1, 2}, 0)
	if got := bt.StringWithPool(pool); got != "br_table 1 2 0" {
		t.Errorf("br_table StringWithPool = %q", got)
	}
	if got := bt.String(); got != "br_table [2 targets] 0" {
		t.Errorf("br_table String = %q", got)
	}
}
