package wasm

import (
	"fmt"
	"math"
	"strings"
)

// MemArg is the immediate of a load or store: an alignment hint (log2 of the
// natural alignment) and a static byte offset added to the dynamic address.
type MemArg struct {
	Align  uint32
	Offset uint32
}

// Instr is a single WebAssembly instruction. The struct is a flattened
// union: which immediate fields are meaningful depends on Op. Structured
// control flow is kept linear, exactly as in the binary format: block, loop,
// if, else, and end appear as individual instructions.
//
//	Op              meaningful fields
//	block/loop/if   Block
//	br, br_if       Idx (relative label)
//	br_table        Table (targets), Idx (default target)
//	call            Idx (function index)
//	call_indirect   Idx (type index)
//	local.*         Idx (local index)
//	global.*        Idx (global index)
//	loads/stores    Mem
//	i32.const       I64 (sign-extended 32-bit payload)
//	i64.const       I64
//	f32.const       F32
//	f64.const       F64
type Instr struct {
	Op    Opcode
	Block BlockType
	Idx   uint32
	Table []uint32
	Mem   MemArg
	I64   int64
	F32   float32
	F64   float64
}

// Convenience constructors used heavily by the builder, the instrumenter,
// and tests. They keep call sites short and make the immediates explicit.

// I32Const returns an i32.const instruction.
func I32Const(v int32) Instr { return Instr{Op: OpI32Const, I64: int64(v)} }

// I64ConstInstr returns an i64.const instruction.
func I64ConstInstr(v int64) Instr { return Instr{Op: OpI64Const, I64: v} }

// F32ConstInstr returns an f32.const instruction.
func F32ConstInstr(v float32) Instr { return Instr{Op: OpF32Const, F32: v} }

// F64ConstInstr returns an f64.const instruction.
func F64ConstInstr(v float64) Instr { return Instr{Op: OpF64Const, F64: v} }

// LocalGet returns a local.get instruction.
func LocalGet(idx uint32) Instr { return Instr{Op: OpLocalGet, Idx: idx} }

// LocalSet returns a local.set instruction.
func LocalSet(idx uint32) Instr { return Instr{Op: OpLocalSet, Idx: idx} }

// LocalTee returns a local.tee instruction.
func LocalTee(idx uint32) Instr { return Instr{Op: OpLocalTee, Idx: idx} }

// GlobalGet returns a global.get instruction.
func GlobalGet(idx uint32) Instr { return Instr{Op: OpGlobalGet, Idx: idx} }

// GlobalSet returns a global.set instruction.
func GlobalSet(idx uint32) Instr { return Instr{Op: OpGlobalSet, Idx: idx} }

// Call returns a call instruction.
func Call(funcIdx uint32) Instr { return Instr{Op: OpCall, Idx: funcIdx} }

// Op1 returns an instruction with no immediates.
func Op1(op Opcode) Instr { return Instr{Op: op} }

// Block returns a block instruction with the given block type.
func BlockInstr(bt BlockType) Instr { return Instr{Op: OpBlock, Block: bt} }

// Loop returns a loop instruction with the given block type.
func LoopInstr(bt BlockType) Instr { return Instr{Op: OpLoop, Block: bt} }

// IfInstr returns an if instruction with the given block type.
func IfInstr(bt BlockType) Instr { return Instr{Op: OpIf, Block: bt} }

// Br returns a br instruction targeting the given relative label.
func Br(label uint32) Instr { return Instr{Op: OpBr, Idx: label} }

// BrIf returns a br_if instruction targeting the given relative label.
func BrIf(label uint32) Instr { return Instr{Op: OpBrIf, Idx: label} }

// End returns an end instruction.
func End() Instr { return Instr{Op: OpEnd} }

// ConstValue returns the constant payload of a const instruction as raw
// 64-bit value bits (i32 zero-extended from its 32-bit pattern, floats as
// their IEEE 754 bit patterns).
func (in Instr) ConstValue() uint64 {
	switch in.Op {
	case OpI32Const:
		return uint64(uint32(in.I64))
	case OpI64Const:
		return uint64(in.I64)
	case OpF32Const:
		return uint64(math.Float32bits(in.F32))
	case OpF64Const:
		return math.Float64bits(in.F64)
	}
	panic("wasm: ConstValue on non-const instruction " + in.Op.String())
}

func (in Instr) String() string {
	var sb strings.Builder
	sb.WriteString(in.Op.String())
	switch in.Op {
	case OpBlock, OpLoop, OpIf:
		if in.Block != BlockEmpty {
			fmt.Fprintf(&sb, " (result %s)", in.Block)
		}
	case OpBr, OpBrIf, OpCall, OpCallIndirect, OpLocalGet, OpLocalSet, OpLocalTee, OpGlobalGet, OpGlobalSet:
		fmt.Fprintf(&sb, " %d", in.Idx)
	case OpBrTable:
		for _, t := range in.Table {
			fmt.Fprintf(&sb, " %d", t)
		}
		fmt.Fprintf(&sb, " %d", in.Idx)
	case OpI32Const:
		fmt.Fprintf(&sb, " %d", int32(in.I64))
	case OpI64Const:
		fmt.Fprintf(&sb, " %d", in.I64)
	case OpF32Const:
		fmt.Fprintf(&sb, " %v", in.F32)
	case OpF64Const:
		fmt.Fprintf(&sb, " %v", in.F64)
	default:
		if in.Op.IsLoad() || in.Op.IsStore() {
			fmt.Fprintf(&sb, " offset=%d align=%d", in.Mem.Offset, in.Mem.Align)
		}
	}
	return sb.String()
}
