package wasm

import (
	"fmt"
	"math"
	"strings"
)

// MemArg is the immediate of a load or store: an alignment hint (log2 of the
// natural alignment) and a static byte offset added to the dynamic address.
type MemArg struct {
	Align  uint32
	Offset uint32
}

// Instr is a single WebAssembly instruction. The struct is a flattened
// union: which immediate fields are meaningful depends on Op. Structured
// control flow is kept linear, exactly as in the binary format: block, loop,
// if, else, and end appear as individual instructions.
//
// The struct is deliberately 16 bytes and pointer-free: instrumentation
// expands instruction streams by an order of magnitude, so the size of this
// struct directly scales the instrumenter's memory traffic, and keeping it
// free of pointers lets the garbage collector skip instruction buffers
// entirely (no scanning, no write barriers on copies).
//
//	Op              meaningful fields
//	block/loop/if   Block
//	br, br_if       Idx (relative label)
//	br_table        Idx (default target), Bits (span into the Func.BrTargets pool)
//	call            Idx (function index)
//	call_indirect   Idx (type index)
//	local.*         Idx (local index)
//	global.*        Idx (global index)
//	loads/stores    Bits (align<<32 | offset; see MemAlign/MemOffset)
//	*.const         Bits (raw stack representation; see ConstValue)
type Instr struct {
	Op    Opcode
	Block BlockType
	Idx   uint32
	Bits  uint64
}

// Convenience constructors used heavily by the builder, the instrumenter,
// and tests. They keep call sites short and make the immediates explicit.

// I32Const returns an i32.const instruction.
func I32Const(v int32) Instr { return Instr{Op: OpI32Const, Bits: uint64(uint32(v))} }

// I64ConstInstr returns an i64.const instruction.
func I64ConstInstr(v int64) Instr { return Instr{Op: OpI64Const, Bits: uint64(v)} }

// F32ConstInstr returns an f32.const instruction.
func F32ConstInstr(v float32) Instr { return Instr{Op: OpF32Const, Bits: uint64(math.Float32bits(v))} }

// F64ConstInstr returns an f64.const instruction.
func F64ConstInstr(v float64) Instr { return Instr{Op: OpF64Const, Bits: math.Float64bits(v)} }

// LocalGet returns a local.get instruction.
func LocalGet(idx uint32) Instr { return Instr{Op: OpLocalGet, Idx: idx} }

// LocalSet returns a local.set instruction.
func LocalSet(idx uint32) Instr { return Instr{Op: OpLocalSet, Idx: idx} }

// LocalTee returns a local.tee instruction.
func LocalTee(idx uint32) Instr { return Instr{Op: OpLocalTee, Idx: idx} }

// GlobalGet returns a global.get instruction.
func GlobalGet(idx uint32) Instr { return Instr{Op: OpGlobalGet, Idx: idx} }

// GlobalSet returns a global.set instruction.
func GlobalSet(idx uint32) Instr { return Instr{Op: OpGlobalSet, Idx: idx} }

// Call returns a call instruction.
func Call(funcIdx uint32) Instr { return Instr{Op: OpCall, Idx: funcIdx} }

// Op1 returns an instruction with no immediates.
func Op1(op Opcode) Instr { return Instr{Op: op} }

// Block returns a block instruction with the given block type.
func BlockInstr(bt BlockType) Instr { return Instr{Op: OpBlock, Block: bt} }

// Loop returns a loop instruction with the given block type.
func LoopInstr(bt BlockType) Instr { return Instr{Op: OpLoop, Block: bt} }

// IfInstr returns an if instruction with the given block type.
func IfInstr(bt BlockType) Instr { return Instr{Op: OpIf, Block: bt} }

// Br returns a br instruction targeting the given relative label.
func Br(label uint32) Instr { return Instr{Op: OpBr, Idx: label} }

// BrIf returns a br_if instruction targeting the given relative label.
func BrIf(label uint32) Instr { return Instr{Op: OpBrIf, Idx: label} }

// End returns an end instruction.
func End() Instr { return Instr{Op: OpEnd} }

// MiscInstr returns a 0xFC-prefixed instruction (saturating truncation,
// bulk memory) with the given subopcode.
func MiscInstr(sub uint32) Instr { return Instr{Op: OpMiscPrefix, Idx: sub} }

// MemInstr returns a load or store instruction with the given memory
// immediate.
func MemInstr(op Opcode, align, offset uint32) Instr {
	return Instr{Op: op, Bits: uint64(align)<<32 | uint64(offset)}
}

// MemAlign returns the alignment hint of a load or store.
func (in Instr) MemAlign() uint32 { return uint32(in.Bits >> 32) }

// MemOffset returns the static offset of a load or store.
func (in Instr) MemOffset() uint32 { return uint32(in.Bits) }

// AppendBrTable returns a br_table instruction whose (non-default) targets
// are appended to the given per-function target pool (Func.BrTargets). The
// instruction stores only the pool span, which keeps Instr pointer-free.
func AppendBrTable(pool *[]uint32, targets []uint32, deflt uint32) Instr {
	off := len(*pool)
	*pool = append(*pool, targets...)
	return BrTableInstr(deflt, off, len(targets))
}

// BrTableInstr returns a br_table instruction referencing the target-pool
// span [off, off+n) with the given default label. This is the single place
// the span packing is defined; decoders and tests must use it rather than
// assembling Bits by hand.
func BrTableInstr(deflt uint32, off, n int) Instr {
	return Instr{Op: OpBrTable, Idx: deflt, Bits: uint64(uint32(off))<<32 | uint64(uint32(n))}
}

// BrTableSpan returns the offset and length of a br_table instruction's
// target list within its function's BrTargets pool.
func (in Instr) BrTableSpan() (off, n int) {
	return int(uint32(in.Bits >> 32)), int(uint32(in.Bits))
}

// BrTargets resolves a br_table instruction's (non-default) targets in the
// given per-function pool.
func (in Instr) BrTargets(pool []uint32) []uint32 {
	off, n := in.BrTableSpan()
	return pool[off : off+n]
}

// ConstValue returns the constant payload of a const instruction as raw
// 64-bit value bits (i32 zero-extended from its 32-bit pattern, floats as
// their IEEE 754 bit patterns). Constructors and the decoder store the
// payload in exactly this canonical form, so this is a plain field read.
func (in Instr) ConstValue() uint64 { return in.Bits }

// ConstI32 returns the payload of an i32.const.
func (in Instr) ConstI32() int32 { return int32(uint32(in.Bits)) }

// ConstI64 returns the payload of an i64.const.
func (in Instr) ConstI64() int64 { return int64(in.Bits) }

// ConstF32 returns the payload of an f32.const.
func (in Instr) ConstF32() float32 { return math.Float32frombits(uint32(in.Bits)) }

// ConstF64 returns the payload of an f64.const.
func (in Instr) ConstF64() float64 { return math.Float64frombits(in.Bits) }

func (in Instr) String() string { return in.StringWithPool(nil) }

// StringWithPool renders the instruction in wat-like form. The pool is the
// owning function's BrTargets pool, needed to print br_table targets; with a
// nil pool br_table targets are elided.
func (in Instr) StringWithPool(pool []uint32) string {
	if in.Op == OpMiscPrefix {
		// 0xFC instructions render by subopcode name (the prefix byte alone
		// has no text form).
		return MiscName(in.Idx)
	}
	var sb strings.Builder
	sb.WriteString(in.Op.String())
	switch in.Op {
	case OpBlock, OpLoop, OpIf:
		if in.Block != BlockEmpty {
			fmt.Fprintf(&sb, " (result %s)", in.Block)
		}
	case OpBr, OpBrIf, OpCall, OpCallIndirect, OpLocalGet, OpLocalSet, OpLocalTee, OpGlobalGet, OpGlobalSet:
		fmt.Fprintf(&sb, " %d", in.Idx)
	case OpBrTable:
		if pool != nil {
			for _, t := range in.BrTargets(pool) {
				fmt.Fprintf(&sb, " %d", t)
			}
		} else if _, n := in.BrTableSpan(); n > 0 {
			fmt.Fprintf(&sb, " [%d targets]", n)
		}
		fmt.Fprintf(&sb, " %d", in.Idx)
	case OpI32Const:
		fmt.Fprintf(&sb, " %d", in.ConstI32())
	case OpI64Const:
		fmt.Fprintf(&sb, " %d", in.ConstI64())
	case OpF32Const:
		fmt.Fprintf(&sb, " %v", in.ConstF32())
	case OpF64Const:
		fmt.Fprintf(&sb, " %v", in.ConstF64())
	default:
		if in.Op.IsLoad() || in.Op.IsStore() {
			fmt.Fprintf(&sb, " offset=%d align=%d", in.MemOffset(), in.MemAlign())
		}
	}
	return sb.String()
}
