package wasm

// numericSigs memoizes numericSigOf for all 256 opcodes: the signatures are
// static, and NumericSig sits on hot paths (the validator steps it once per
// instruction, the instrumenter once per instrumented numeric instruction),
// where allocating the type slices on every call dominates the profile.
var numericSigs = func() (tbl [256]struct {
	in, out []ValType
	ok      bool
}) {
	for op := 0; op < 256; op++ {
		tbl[op].in, tbl[op].out, tbl[op].ok = numericSigOf(Opcode(op))
	}
	return tbl
}()

// NumericSig returns the operand and result types of a fixed-signature
// numeric opcode (comparisons, arithmetic, conversions, constants). It
// reports ok=false for polymorphic, control, variable, and memory opcodes,
// whose types depend on context. The returned slices are shared and must not
// be mutated.
func NumericSig(op Opcode) (in, out []ValType, ok bool) {
	e := &numericSigs[op]
	return e.in, e.out, e.ok
}

func numericSigOf(op Opcode) (in, out []ValType, ok bool) {
	switch {
	case op.IsConst():
		return nil, []ValType{constType(op)}, true
	case op == OpI32Eqz:
		return []ValType{I32}, []ValType{I32}, true
	case op == OpI64Eqz:
		return []ValType{I64}, []ValType{I32}, true
	case op >= OpI32Eq && op <= OpI32GeU:
		return []ValType{I32, I32}, []ValType{I32}, true
	case op >= OpI64Eq && op <= OpI64GeU:
		return []ValType{I64, I64}, []ValType{I32}, true
	case op >= OpF32Eq && op <= OpF32Ge:
		return []ValType{F32, F32}, []ValType{I32}, true
	case op >= OpF64Eq && op <= OpF64Ge:
		return []ValType{F64, F64}, []ValType{I32}, true
	case op >= OpI32Clz && op <= OpI32Popcnt:
		return []ValType{I32}, []ValType{I32}, true
	case op >= OpI32Add && op <= OpI32Rotr:
		return []ValType{I32, I32}, []ValType{I32}, true
	case op >= OpI64Clz && op <= OpI64Popcnt:
		return []ValType{I64}, []ValType{I64}, true
	case op >= OpI64Add && op <= OpI64Rotr:
		return []ValType{I64, I64}, []ValType{I64}, true
	case op >= OpF32Abs && op <= OpF32Sqrt:
		return []ValType{F32}, []ValType{F32}, true
	case op >= OpF32Add && op <= OpF32Copysign:
		return []ValType{F32, F32}, []ValType{F32}, true
	case op >= OpF64Abs && op <= OpF64Sqrt:
		return []ValType{F64}, []ValType{F64}, true
	case op >= OpF64Add && op <= OpF64Copysign:
		return []ValType{F64, F64}, []ValType{F64}, true
	case op >= OpI32WrapI64 && op <= OpF64ReinterpretI64:
		from, to := conversionTypes(op)
		return []ValType{from}, []ValType{to}, true
	case op == OpI32Extend8S || op == OpI32Extend16S:
		return []ValType{I32}, []ValType{I32}, true
	case op >= OpI64Extend8S && op <= OpI64Extend32S:
		return []ValType{I64}, []ValType{I64}, true
	}
	return nil, nil, false
}

func constType(op Opcode) ValType {
	switch op {
	case OpI32Const:
		return I32
	case OpI64Const:
		return I64
	case OpF32Const:
		return F32
	case OpF64Const:
		return F64
	}
	panic("wasm: constType on non-const opcode")
}

func conversionTypes(op Opcode) (from, to ValType) {
	switch op {
	case OpI32WrapI64:
		return I64, I32
	case OpI32TruncF32S, OpI32TruncF32U:
		return F32, I32
	case OpI32TruncF64S, OpI32TruncF64U:
		return F64, I32
	case OpI64ExtendI32S, OpI64ExtendI32U:
		return I32, I64
	case OpI64TruncF32S, OpI64TruncF32U:
		return F32, I64
	case OpI64TruncF64S, OpI64TruncF64U:
		return F64, I64
	case OpF32ConvertI32S, OpF32ConvertI32U:
		return I32, F32
	case OpF32ConvertI64S, OpF32ConvertI64U:
		return I64, F32
	case OpF32DemoteF64:
		return F64, F32
	case OpF64ConvertI32S, OpF64ConvertI32U:
		return I32, F64
	case OpF64ConvertI64S, OpF64ConvertI64U:
		return I64, F64
	case OpF64PromoteF32:
		return F32, F64
	case OpI32ReinterpretF32:
		return F32, I32
	case OpI64ReinterpretF64:
		return F64, I64
	case OpF32ReinterpretI32:
		return I32, F32
	case OpF64ReinterpretI64:
		return I64, F64
	}
	panic("wasm: conversionTypes on non-conversion opcode " + op.String())
}
