package wasm

import "fmt"

// Post-MVP opcodes. The sign-extension operators (0xC0–0xC4) are implemented
// and fully Known: they decode, validate, instrument, and execute like any
// other unary numeric instruction. The 0xFC miscellaneous prefix carries its
// subopcode in Instr.Idx; the saturating-truncation and memory.copy /
// memory.fill subopcodes are implemented, while the passive-segment and
// table subopcodes remain recognized-but-rejected: the decoder represents
// them so validation can fail with a typed, positioned "unsupported" error
// instead of a generic decode failure — or worse, an unvalidated module
// faulting mid-execution.
const (
	// Sign-extension operators proposal (implemented).
	OpI32Extend8S  Opcode = 0xC0
	OpI32Extend16S Opcode = 0xC1
	OpI64Extend8S  Opcode = 0xC2
	OpI64Extend16S Opcode = 0xC3
	OpI64Extend32S Opcode = 0xC4
	// OpMiscPrefix is the 0xFC miscellaneous-instruction prefix byte
	// (saturating truncation, bulk memory). For a decoded 0xFC instruction
	// the subopcode is carried in Instr.Idx. The prefix itself is
	// deliberately NOT in opNames: Opcode.Known stays false, so every
	// consumer must dispatch on the subopcode explicitly rather than fall
	// into a single-byte generic path.
	OpMiscPrefix Opcode = 0xFC
)

// 0xFC subopcodes (the Instr.Idx of an OpMiscPrefix instruction).
const (
	MiscI32TruncSatF32S uint32 = 0
	MiscI32TruncSatF32U uint32 = 1
	MiscI32TruncSatF64S uint32 = 2
	MiscI32TruncSatF64U uint32 = 3
	MiscI64TruncSatF32S uint32 = 4
	MiscI64TruncSatF32U uint32 = 5
	MiscI64TruncSatF64S uint32 = 6
	MiscI64TruncSatF64U uint32 = 7
	MiscMemoryInit      uint32 = 8
	MiscDataDrop        uint32 = 9
	MiscMemoryCopy      uint32 = 10
	MiscMemoryFill      uint32 = 11
	MiscTableInit       uint32 = 12
	MiscElemDrop        uint32 = 13
	MiscTableCopy       uint32 = 14
)

// miscInstrs maps 0xFC subopcodes to their text name, source proposal, and
// whether the runtime implements them. Entries beyond this table are not
// valid WebAssembly and fail at decode.
var miscInstrs = map[uint32]struct {
	name, proposal string
	supported      bool
}{
	MiscI32TruncSatF32S: {"i32.trunc_sat_f32_s", "nontrapping-float-to-int", true},
	MiscI32TruncSatF32U: {"i32.trunc_sat_f32_u", "nontrapping-float-to-int", true},
	MiscI32TruncSatF64S: {"i32.trunc_sat_f64_s", "nontrapping-float-to-int", true},
	MiscI32TruncSatF64U: {"i32.trunc_sat_f64_u", "nontrapping-float-to-int", true},
	MiscI64TruncSatF32S: {"i64.trunc_sat_f32_s", "nontrapping-float-to-int", true},
	MiscI64TruncSatF32U: {"i64.trunc_sat_f32_u", "nontrapping-float-to-int", true},
	MiscI64TruncSatF64S: {"i64.trunc_sat_f64_s", "nontrapping-float-to-int", true},
	MiscI64TruncSatF64U: {"i64.trunc_sat_f64_u", "nontrapping-float-to-int", true},

	MiscMemoryInit: {"memory.init", "bulk-memory", false},
	MiscDataDrop:   {"data.drop", "bulk-memory", false},
	MiscMemoryCopy: {"memory.copy", "bulk-memory", true},
	MiscMemoryFill: {"memory.fill", "bulk-memory", true},
	MiscTableInit:  {"table.init", "bulk-memory", false},
	MiscElemDrop:   {"elem.drop", "bulk-memory", false},
	MiscTableCopy:  {"table.copy", "bulk-memory", false},
}

// MiscKnown reports whether sub is a recognized 0xFC subopcode (implemented
// or not); unrecognized subopcodes are not WebAssembly and fail at decode.
func MiscKnown(sub uint32) bool {
	_, ok := miscInstrs[sub]
	return ok
}

// MiscSupported reports whether the runtime implements 0xFC subopcode sub.
func MiscSupported(sub uint32) bool {
	return miscInstrs[sub].supported
}

// MiscName returns the text-format name of a 0xFC subopcode.
func MiscName(sub uint32) string {
	if mi, ok := miscInstrs[sub]; ok {
		return mi.name
	}
	return fmt.Sprintf("0xfc subopcode %d", sub)
}

// MiscTruncSatSig returns the operand and result types of a saturating
// truncation subopcode (0–7). ok is false for every other subopcode.
func MiscTruncSatSig(sub uint32) (from, to ValType, ok bool) {
	if sub > MiscI64TruncSatF64U {
		return 0, 0, false
	}
	from = F32
	if sub&2 != 0 {
		from = F64
	}
	to = I32
	if sub >= MiscI64TruncSatF32S {
		to = I64
	}
	return from, to, true
}

// UnsupportedInfo reports whether in is a recognized post-MVP instruction
// the runtime does not implement, and if so its text-format name and the
// proposal it belongs to.
func UnsupportedInfo(in Instr) (name, proposal string, ok bool) {
	if in.Op != OpMiscPrefix {
		return "", "", false
	}
	if mi, known := miscInstrs[in.Idx]; known {
		if mi.supported {
			return "", "", false
		}
		return mi.name, mi.proposal, true
	}
	return fmt.Sprintf("0xfc subopcode %d", in.Idx), "miscellaneous", true
}
