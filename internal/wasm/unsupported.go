package wasm

import "fmt"

// Recognized post-MVP opcodes. The runtime does not implement these, but the
// decoder accepts them into a representable Instr so that validation can
// reject the module with a typed, positioned "unsupported" error instead of
// the decoder dying with a generic "unknown opcode" — or worse, an
// unvalidated module faulting mid-execution. They are deliberately NOT part
// of opNames: Opcode.Known still reports false, so every consumer that
// gates on MVP support (the encoder, the interpreter's compiler) keeps
// rejecting them.
const (
	// Sign-extension operators proposal.
	OpI32Extend8S  Opcode = 0xC0
	OpI32Extend16S Opcode = 0xC1
	OpI64Extend8S  Opcode = 0xC2
	OpI64Extend16S Opcode = 0xC3
	OpI64Extend32S Opcode = 0xC4
	// OpMiscPrefix is the 0xFC miscellaneous-instruction prefix byte
	// (saturating truncation, bulk memory). For a decoded 0xFC instruction
	// the subopcode is carried in Instr.Idx.
	OpMiscPrefix Opcode = 0xFC
)

// signExtendNames names the single-byte sign-extension operators.
var signExtendNames = map[Opcode]string{
	OpI32Extend8S:  "i32.extend8_s",
	OpI32Extend16S: "i32.extend16_s",
	OpI64Extend8S:  "i64.extend8_s",
	OpI64Extend16S: "i64.extend16_s",
	OpI64Extend32S: "i64.extend32_s",
}

// miscInstrs maps 0xFC subopcodes to their text name and source proposal.
// Entries beyond this table are not valid WebAssembly and fail at decode.
var miscInstrs = map[uint32]struct{ name, proposal string }{
	0: {"i32.trunc_sat_f32_s", "nontrapping-float-to-int"},
	1: {"i32.trunc_sat_f32_u", "nontrapping-float-to-int"},
	2: {"i32.trunc_sat_f64_s", "nontrapping-float-to-int"},
	3: {"i32.trunc_sat_f64_u", "nontrapping-float-to-int"},
	4: {"i64.trunc_sat_f32_s", "nontrapping-float-to-int"},
	5: {"i64.trunc_sat_f32_u", "nontrapping-float-to-int"},
	6: {"i64.trunc_sat_f64_s", "nontrapping-float-to-int"},
	7: {"i64.trunc_sat_f64_u", "nontrapping-float-to-int"},

	8:  {"memory.init", "bulk-memory"},
	9:  {"data.drop", "bulk-memory"},
	10: {"memory.copy", "bulk-memory"},
	11: {"memory.fill", "bulk-memory"},
	12: {"table.init", "bulk-memory"},
	13: {"elem.drop", "bulk-memory"},
	14: {"table.copy", "bulk-memory"},
}

// Unsupported reports whether op opens a recognized post-MVP instruction
// (a sign-extension operator or the 0xFC prefix).
func (op Opcode) Unsupported() bool {
	_, sx := signExtendNames[op]
	return sx || op == OpMiscPrefix
}

// UnsupportedInfo reports whether in is a recognized post-MVP instruction
// the runtime does not implement, and if so its text-format name and the
// proposal it belongs to.
func UnsupportedInfo(in Instr) (name, proposal string, ok bool) {
	if n, sx := signExtendNames[in.Op]; sx {
		return n, "sign-extension", true
	}
	if in.Op == OpMiscPrefix {
		if mi, known := miscInstrs[in.Idx]; known {
			return mi.name, mi.proposal, true
		}
		return fmt.Sprintf("0xfc subopcode %d", in.Idx), "miscellaneous", true
	}
	return "", "", false
}
