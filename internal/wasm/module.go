package wasm

import "fmt"

// Module is the AST of a WebAssembly module (one binary file): types,
// imports, functions, at most one table and memory, globals, exports, an
// optional start function, element and data segments, and custom sections.
type Module struct {
	Types    []FuncType
	Imports  []Import
	Funcs    []Func // functions defined in this module (after imported ones in the index space)
	Tables   []Limits
	Memories []Limits
	Globals  []Global
	Exports  []Export
	Start    *uint32
	Elems    []ElemSegment
	Datas    []DataSegment

	// FuncNames holds the contents of the "name" custom section's function
	// name subsection, keyed by function index. Optional.
	FuncNames map[uint32]string

	// Customs preserves custom sections other than "name" byte-for-byte.
	Customs []CustomSection
}

// Import declares an external dependency. Exactly one of the typed
// descriptor fields is meaningful, selected by Kind.
type Import struct {
	Module string
	Name   string
	Kind   ExternKind

	TypeIdx uint32     // Kind == ExternFunc: index into Types
	Table   Limits     // Kind == ExternTable
	Mem     Limits     // Kind == ExternMemory
	Global  GlobalType // Kind == ExternGlobal
}

// Func is a function defined inside the module.
type Func struct {
	TypeIdx uint32
	Locals  []ValType // declared locals, excluding parameters
	Body    []Instr   // terminated by an explicit end instruction

	// BrTargets is the pool of br_table (non-default) target labels for this
	// function's body: each br_table instruction stores a span into it (see
	// Instr.BrTableSpan). Keeping the lists out of Instr makes instructions
	// pointer-free, which the instrumenter's throughput depends on. The pool
	// is append-only and may be shared between functions with identical
	// bodies (e.g. a function and its instrumented copy).
	BrTargets []uint32
}

// Global is a global variable with a constant initializer expression.
type Global struct {
	Type GlobalType
	Init []Instr // constant expression, terminated by end
}

// Export makes a function, table, memory, or global visible to the host.
type Export struct {
	Name string
	Kind ExternKind
	Idx  uint32
}

// ElemSegment initializes a range of the table with function indices.
type ElemSegment struct {
	TableIdx uint32
	Offset   []Instr // constant expression
	Funcs    []uint32
}

// DataSegment initializes a range of linear memory.
type DataSegment struct {
	MemIdx uint32
	Offset []Instr // constant expression
	Data   []byte
}

// CustomSection is an uninterpreted custom section.
type CustomSection struct {
	Name string
	Data []byte
}

// NumImportedFuncs returns the number of imported functions, i.e. the index
// of the first defined function in the function index space.
func (m *Module) NumImportedFuncs() int {
	n := 0
	for _, imp := range m.Imports {
		if imp.Kind == ExternFunc {
			n++
		}
	}
	return n
}

// NumImportedGlobals returns the number of imported globals.
func (m *Module) NumImportedGlobals() int {
	n := 0
	for _, imp := range m.Imports {
		if imp.Kind == ExternGlobal {
			n++
		}
	}
	return n
}

// NumFuncs returns the total size of the function index space.
func (m *Module) NumFuncs() int { return m.NumImportedFuncs() + len(m.Funcs) }

// FuncTypeIdx returns the type index of the function at the given index in
// the function index space (imports first, then defined functions).
func (m *Module) FuncTypeIdx(funcIdx uint32) (uint32, error) {
	i := funcIdx
	for _, imp := range m.Imports {
		if imp.Kind != ExternFunc {
			continue
		}
		if i == 0 {
			return imp.TypeIdx, nil
		}
		i--
	}
	if int(i) < len(m.Funcs) {
		return m.Funcs[i].TypeIdx, nil
	}
	return 0, fmt.Errorf("wasm: function index %d out of range (have %d)", funcIdx, m.NumFuncs())
}

// FuncType returns the signature of the function at funcIdx.
func (m *Module) FuncType(funcIdx uint32) (FuncType, error) {
	ti, err := m.FuncTypeIdx(funcIdx)
	if err != nil {
		return FuncType{}, err
	}
	if int(ti) >= len(m.Types) {
		return FuncType{}, fmt.Errorf("wasm: type index %d out of range (have %d)", ti, len(m.Types))
	}
	return m.Types[ti], nil
}

// GlobalType returns the type of the global at the given index in the global
// index space (imported globals first, then defined ones).
func (m *Module) GlobalType(globalIdx uint32) (GlobalType, error) {
	i := globalIdx
	for _, imp := range m.Imports {
		if imp.Kind != ExternGlobal {
			continue
		}
		if i == 0 {
			return imp.Global, nil
		}
		i--
	}
	if int(i) < len(m.Globals) {
		return m.Globals[i].Type, nil
	}
	return GlobalType{}, fmt.Errorf("wasm: global index %d out of range", globalIdx)
}

// AddType returns the index of ft in the type section, appending it if not
// yet present. It is the standard way to intern signatures.
func (m *Module) AddType(ft FuncType) uint32 {
	for i, t := range m.Types {
		if t.Equal(ft) {
			return uint32(i)
		}
	}
	m.Types = append(m.Types, ft)
	return uint32(len(m.Types) - 1)
}

// FuncName returns the debug name of a function if the module carries one,
// falling back to the import name or a numeric placeholder.
func (m *Module) FuncName(funcIdx uint32) string {
	if name, ok := m.FuncNames[funcIdx]; ok {
		return name
	}
	i := funcIdx
	for _, imp := range m.Imports {
		if imp.Kind != ExternFunc {
			continue
		}
		if i == 0 {
			return imp.Module + "." + imp.Name
		}
		i--
	}
	return fmt.Sprintf("func%d", funcIdx)
}

// ExportedFunc returns the function index exported under name, if any.
func (m *Module) ExportedFunc(name string) (uint32, bool) {
	for _, e := range m.Exports {
		if e.Kind == ExternFunc && e.Name == name {
			return e.Idx, true
		}
	}
	return 0, false
}

// CountInstrs returns the total static instruction count across all defined
// function bodies. Used for reporting and throughput metrics.
func (m *Module) CountInstrs() int {
	n := 0
	for i := range m.Funcs {
		n += len(m.Funcs[i].Body)
	}
	return n
}
