// Package wasm defines the abstract syntax of WebAssembly (MVP, binary format
// version 1) modules: value and function types, the full instruction set, and
// the module structure. It is the common vocabulary shared by the binary
// codec, the validator, the interpreter, and the Wasabi instrumenter.
package wasm

import (
	"fmt"
	"strings"
)

// ValType is one of the four WebAssembly primitive value types. The constants
// use the binary-format encodings so they can be written to the wire directly.
type ValType byte

const (
	I32 ValType = 0x7F
	I64 ValType = 0x7E
	F32 ValType = 0x7D
	F64 ValType = 0x7C
)

// Valid reports whether t is one of the four primitive types.
func (t ValType) Valid() bool {
	switch t {
	case I32, I64, F32, F64:
		return true
	}
	return false
}

func (t ValType) String() string {
	switch t {
	case I32:
		return "i32"
	case I64:
		return "i64"
	case F32:
		return "f32"
	case F64:
		return "f64"
	}
	return fmt.Sprintf("valtype(0x%02x)", byte(t))
}

// FuncType is a function signature: a vector of parameter types and a vector
// of result types. The MVP binary format restricts results to at most one,
// which the validator enforces; the AST supports the general shape.
type FuncType struct {
	Params  []ValType
	Results []ValType
}

// Equal reports whether two function types are structurally identical.
func (ft FuncType) Equal(other FuncType) bool {
	if len(ft.Params) != len(other.Params) || len(ft.Results) != len(other.Results) {
		return false
	}
	for i, p := range ft.Params {
		if p != other.Params[i] {
			return false
		}
	}
	for i, r := range ft.Results {
		if r != other.Results[i] {
			return false
		}
	}
	return true
}

// Key returns a compact string key identifying the signature, suitable for
// map lookup (used by on-demand monomorphization).
func (ft FuncType) Key() string {
	var sb strings.Builder
	for _, p := range ft.Params {
		sb.WriteString(p.String())
		sb.WriteByte('_')
	}
	sb.WriteString("->")
	for _, r := range ft.Results {
		sb.WriteByte('_')
		sb.WriteString(r.String())
	}
	return sb.String()
}

func (ft FuncType) String() string {
	var sb strings.Builder
	sb.WriteByte('[')
	for i, p := range ft.Params {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(p.String())
	}
	sb.WriteString("] -> [")
	for i, r := range ft.Results {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(r.String())
	}
	sb.WriteByte(']')
	return sb.String()
}

// BlockType describes the result arity of a structured control instruction.
// In the MVP it is either empty (0x40) or a single value type.
type BlockType byte

// BlockEmpty is the block type of a block producing no value.
const BlockEmpty BlockType = 0x40

// Results returns the result types of the block (empty or one type).
func (bt BlockType) Results() []ValType {
	if bt == BlockEmpty {
		return nil
	}
	return []ValType{ValType(bt)}
}

func (bt BlockType) String() string {
	if bt == BlockEmpty {
		return ""
	}
	return ValType(bt).String()
}

// ExternKind distinguishes the four kinds of imports and exports.
type ExternKind byte

const (
	ExternFunc   ExternKind = 0x00
	ExternTable  ExternKind = 0x01
	ExternMemory ExternKind = 0x02
	ExternGlobal ExternKind = 0x03
)

func (k ExternKind) String() string {
	switch k {
	case ExternFunc:
		return "func"
	case ExternTable:
		return "table"
	case ExternMemory:
		return "memory"
	case ExternGlobal:
		return "global"
	}
	return fmt.Sprintf("externkind(0x%02x)", byte(k))
}

// Limits bound the size of a table or memory, in elements or 64 KiB pages.
type Limits struct {
	Min    uint32
	Max    uint32
	HasMax bool
}

// GlobalType pairs a value type with mutability.
type GlobalType struct {
	Type    ValType
	Mutable bool
}

func (gt GlobalType) String() string {
	if gt.Mutable {
		return "(mut " + gt.Type.String() + ")"
	}
	return gt.Type.String()
}

// PageSize is the WebAssembly linear memory page size in bytes.
const PageSize = 65536
