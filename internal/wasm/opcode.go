package wasm

import "fmt"

// Opcode is a single-byte WebAssembly MVP opcode.
type Opcode byte

// Control instructions.
const (
	OpUnreachable  Opcode = 0x00
	OpNop          Opcode = 0x01
	OpBlock        Opcode = 0x02
	OpLoop         Opcode = 0x03
	OpIf           Opcode = 0x04
	OpElse         Opcode = 0x05
	OpEnd          Opcode = 0x0B
	OpBr           Opcode = 0x0C
	OpBrIf         Opcode = 0x0D
	OpBrTable      Opcode = 0x0E
	OpReturn       Opcode = 0x0F
	OpCall         Opcode = 0x10
	OpCallIndirect Opcode = 0x11
)

// Parametric instructions.
const (
	OpDrop   Opcode = 0x1A
	OpSelect Opcode = 0x1B
)

// Variable instructions.
const (
	OpLocalGet  Opcode = 0x20
	OpLocalSet  Opcode = 0x21
	OpLocalTee  Opcode = 0x22
	OpGlobalGet Opcode = 0x23
	OpGlobalSet Opcode = 0x24
)

// Memory instructions.
const (
	OpI32Load    Opcode = 0x28
	OpI64Load    Opcode = 0x29
	OpF32Load    Opcode = 0x2A
	OpF64Load    Opcode = 0x2B
	OpI32Load8S  Opcode = 0x2C
	OpI32Load8U  Opcode = 0x2D
	OpI32Load16S Opcode = 0x2E
	OpI32Load16U Opcode = 0x2F
	OpI64Load8S  Opcode = 0x30
	OpI64Load8U  Opcode = 0x31
	OpI64Load16S Opcode = 0x32
	OpI64Load16U Opcode = 0x33
	OpI64Load32S Opcode = 0x34
	OpI64Load32U Opcode = 0x35
	OpI32Store   Opcode = 0x36
	OpI64Store   Opcode = 0x37
	OpF32Store   Opcode = 0x38
	OpF64Store   Opcode = 0x39
	OpI32Store8  Opcode = 0x3A
	OpI32Store16 Opcode = 0x3B
	OpI64Store8  Opcode = 0x3C
	OpI64Store16 Opcode = 0x3D
	OpI64Store32 Opcode = 0x3E
	OpMemorySize Opcode = 0x3F
	OpMemoryGrow Opcode = 0x40
)

// Constants.
const (
	OpI32Const Opcode = 0x41
	OpI64Const Opcode = 0x42
	OpF32Const Opcode = 0x43
	OpF64Const Opcode = 0x44
)

// Numeric comparison instructions.
const (
	OpI32Eqz Opcode = 0x45
	OpI32Eq  Opcode = 0x46
	OpI32Ne  Opcode = 0x47
	OpI32LtS Opcode = 0x48
	OpI32LtU Opcode = 0x49
	OpI32GtS Opcode = 0x4A
	OpI32GtU Opcode = 0x4B
	OpI32LeS Opcode = 0x4C
	OpI32LeU Opcode = 0x4D
	OpI32GeS Opcode = 0x4E
	OpI32GeU Opcode = 0x4F

	OpI64Eqz Opcode = 0x50
	OpI64Eq  Opcode = 0x51
	OpI64Ne  Opcode = 0x52
	OpI64LtS Opcode = 0x53
	OpI64LtU Opcode = 0x54
	OpI64GtS Opcode = 0x55
	OpI64GtU Opcode = 0x56
	OpI64LeS Opcode = 0x57
	OpI64LeU Opcode = 0x58
	OpI64GeS Opcode = 0x59
	OpI64GeU Opcode = 0x5A

	OpF32Eq Opcode = 0x5B
	OpF32Ne Opcode = 0x5C
	OpF32Lt Opcode = 0x5D
	OpF32Gt Opcode = 0x5E
	OpF32Le Opcode = 0x5F
	OpF32Ge Opcode = 0x60

	OpF64Eq Opcode = 0x61
	OpF64Ne Opcode = 0x62
	OpF64Lt Opcode = 0x63
	OpF64Gt Opcode = 0x64
	OpF64Le Opcode = 0x65
	OpF64Ge Opcode = 0x66
)

// Numeric arithmetic instructions.
const (
	OpI32Clz    Opcode = 0x67
	OpI32Ctz    Opcode = 0x68
	OpI32Popcnt Opcode = 0x69
	OpI32Add    Opcode = 0x6A
	OpI32Sub    Opcode = 0x6B
	OpI32Mul    Opcode = 0x6C
	OpI32DivS   Opcode = 0x6D
	OpI32DivU   Opcode = 0x6E
	OpI32RemS   Opcode = 0x6F
	OpI32RemU   Opcode = 0x70
	OpI32And    Opcode = 0x71
	OpI32Or     Opcode = 0x72
	OpI32Xor    Opcode = 0x73
	OpI32Shl    Opcode = 0x74
	OpI32ShrS   Opcode = 0x75
	OpI32ShrU   Opcode = 0x76
	OpI32Rotl   Opcode = 0x77
	OpI32Rotr   Opcode = 0x78

	OpI64Clz    Opcode = 0x79
	OpI64Ctz    Opcode = 0x7A
	OpI64Popcnt Opcode = 0x7B
	OpI64Add    Opcode = 0x7C
	OpI64Sub    Opcode = 0x7D
	OpI64Mul    Opcode = 0x7E
	OpI64DivS   Opcode = 0x7F
	OpI64DivU   Opcode = 0x80
	OpI64RemS   Opcode = 0x81
	OpI64RemU   Opcode = 0x82
	OpI64And    Opcode = 0x83
	OpI64Or     Opcode = 0x84
	OpI64Xor    Opcode = 0x85
	OpI64Shl    Opcode = 0x86
	OpI64ShrS   Opcode = 0x87
	OpI64ShrU   Opcode = 0x88
	OpI64Rotl   Opcode = 0x89
	OpI64Rotr   Opcode = 0x8A

	OpF32Abs      Opcode = 0x8B
	OpF32Neg      Opcode = 0x8C
	OpF32Ceil     Opcode = 0x8D
	OpF32Floor    Opcode = 0x8E
	OpF32Trunc    Opcode = 0x8F
	OpF32Nearest  Opcode = 0x90
	OpF32Sqrt     Opcode = 0x91
	OpF32Add      Opcode = 0x92
	OpF32Sub      Opcode = 0x93
	OpF32Mul      Opcode = 0x94
	OpF32Div      Opcode = 0x95
	OpF32Min      Opcode = 0x96
	OpF32Max      Opcode = 0x97
	OpF32Copysign Opcode = 0x98

	OpF64Abs      Opcode = 0x99
	OpF64Neg      Opcode = 0x9A
	OpF64Ceil     Opcode = 0x9B
	OpF64Floor    Opcode = 0x9C
	OpF64Trunc    Opcode = 0x9D
	OpF64Nearest  Opcode = 0x9E
	OpF64Sqrt     Opcode = 0x9F
	OpF64Add      Opcode = 0xA0
	OpF64Sub      Opcode = 0xA1
	OpF64Mul      Opcode = 0xA2
	OpF64Div      Opcode = 0xA3
	OpF64Min      Opcode = 0xA4
	OpF64Max      Opcode = 0xA5
	OpF64Copysign Opcode = 0xA6
)

// Conversion instructions.
const (
	OpI32WrapI64        Opcode = 0xA7
	OpI32TruncF32S      Opcode = 0xA8
	OpI32TruncF32U      Opcode = 0xA9
	OpI32TruncF64S      Opcode = 0xAA
	OpI32TruncF64U      Opcode = 0xAB
	OpI64ExtendI32S     Opcode = 0xAC
	OpI64ExtendI32U     Opcode = 0xAD
	OpI64TruncF32S      Opcode = 0xAE
	OpI64TruncF32U      Opcode = 0xAF
	OpI64TruncF64S      Opcode = 0xB0
	OpI64TruncF64U      Opcode = 0xB1
	OpF32ConvertI32S    Opcode = 0xB2
	OpF32ConvertI32U    Opcode = 0xB3
	OpF32ConvertI64S    Opcode = 0xB4
	OpF32ConvertI64U    Opcode = 0xB5
	OpF32DemoteF64      Opcode = 0xB6
	OpF64ConvertI32S    Opcode = 0xB7
	OpF64ConvertI32U    Opcode = 0xB8
	OpF64ConvertI64S    Opcode = 0xB9
	OpF64ConvertI64U    Opcode = 0xBA
	OpF64PromoteF32     Opcode = 0xBB
	OpI32ReinterpretF32 Opcode = 0xBC
	OpI64ReinterpretF64 Opcode = 0xBD
	OpF32ReinterpretI32 Opcode = 0xBE
	OpF64ReinterpretI64 Opcode = 0xBF
)

var opNames = map[Opcode]string{
	OpUnreachable: "unreachable", OpNop: "nop", OpBlock: "block", OpLoop: "loop",
	OpIf: "if", OpElse: "else", OpEnd: "end", OpBr: "br", OpBrIf: "br_if",
	OpBrTable: "br_table", OpReturn: "return", OpCall: "call", OpCallIndirect: "call_indirect",
	OpDrop: "drop", OpSelect: "select",
	OpLocalGet: "local.get", OpLocalSet: "local.set", OpLocalTee: "local.tee",
	OpGlobalGet: "global.get", OpGlobalSet: "global.set",
	OpI32Load: "i32.load", OpI64Load: "i64.load", OpF32Load: "f32.load", OpF64Load: "f64.load",
	OpI32Load8S: "i32.load8_s", OpI32Load8U: "i32.load8_u", OpI32Load16S: "i32.load16_s", OpI32Load16U: "i32.load16_u",
	OpI64Load8S: "i64.load8_s", OpI64Load8U: "i64.load8_u", OpI64Load16S: "i64.load16_s", OpI64Load16U: "i64.load16_u",
	OpI64Load32S: "i64.load32_s", OpI64Load32U: "i64.load32_u",
	OpI32Store: "i32.store", OpI64Store: "i64.store", OpF32Store: "f32.store", OpF64Store: "f64.store",
	OpI32Store8: "i32.store8", OpI32Store16: "i32.store16",
	OpI64Store8: "i64.store8", OpI64Store16: "i64.store16", OpI64Store32: "i64.store32",
	OpMemorySize: "memory.size", OpMemoryGrow: "memory.grow",
	OpI32Const: "i32.const", OpI64Const: "i64.const", OpF32Const: "f32.const", OpF64Const: "f64.const",
	OpI32Eqz: "i32.eqz", OpI32Eq: "i32.eq", OpI32Ne: "i32.ne", OpI32LtS: "i32.lt_s", OpI32LtU: "i32.lt_u",
	OpI32GtS: "i32.gt_s", OpI32GtU: "i32.gt_u", OpI32LeS: "i32.le_s", OpI32LeU: "i32.le_u",
	OpI32GeS: "i32.ge_s", OpI32GeU: "i32.ge_u",
	OpI64Eqz: "i64.eqz", OpI64Eq: "i64.eq", OpI64Ne: "i64.ne", OpI64LtS: "i64.lt_s", OpI64LtU: "i64.lt_u",
	OpI64GtS: "i64.gt_s", OpI64GtU: "i64.gt_u", OpI64LeS: "i64.le_s", OpI64LeU: "i64.le_u",
	OpI64GeS: "i64.ge_s", OpI64GeU: "i64.ge_u",
	OpF32Eq: "f32.eq", OpF32Ne: "f32.ne", OpF32Lt: "f32.lt", OpF32Gt: "f32.gt", OpF32Le: "f32.le", OpF32Ge: "f32.ge",
	OpF64Eq: "f64.eq", OpF64Ne: "f64.ne", OpF64Lt: "f64.lt", OpF64Gt: "f64.gt", OpF64Le: "f64.le", OpF64Ge: "f64.ge",
	OpI32Clz: "i32.clz", OpI32Ctz: "i32.ctz", OpI32Popcnt: "i32.popcnt",
	OpI32Add: "i32.add", OpI32Sub: "i32.sub", OpI32Mul: "i32.mul",
	OpI32DivS: "i32.div_s", OpI32DivU: "i32.div_u", OpI32RemS: "i32.rem_s", OpI32RemU: "i32.rem_u",
	OpI32And: "i32.and", OpI32Or: "i32.or", OpI32Xor: "i32.xor",
	OpI32Shl: "i32.shl", OpI32ShrS: "i32.shr_s", OpI32ShrU: "i32.shr_u", OpI32Rotl: "i32.rotl", OpI32Rotr: "i32.rotr",
	OpI64Clz: "i64.clz", OpI64Ctz: "i64.ctz", OpI64Popcnt: "i64.popcnt",
	OpI64Add: "i64.add", OpI64Sub: "i64.sub", OpI64Mul: "i64.mul",
	OpI64DivS: "i64.div_s", OpI64DivU: "i64.div_u", OpI64RemS: "i64.rem_s", OpI64RemU: "i64.rem_u",
	OpI64And: "i64.and", OpI64Or: "i64.or", OpI64Xor: "i64.xor",
	OpI64Shl: "i64.shl", OpI64ShrS: "i64.shr_s", OpI64ShrU: "i64.shr_u", OpI64Rotl: "i64.rotl", OpI64Rotr: "i64.rotr",
	OpF32Abs: "f32.abs", OpF32Neg: "f32.neg", OpF32Ceil: "f32.ceil", OpF32Floor: "f32.floor",
	OpF32Trunc: "f32.trunc", OpF32Nearest: "f32.nearest", OpF32Sqrt: "f32.sqrt",
	OpF32Add: "f32.add", OpF32Sub: "f32.sub", OpF32Mul: "f32.mul", OpF32Div: "f32.div",
	OpF32Min: "f32.min", OpF32Max: "f32.max", OpF32Copysign: "f32.copysign",
	OpF64Abs: "f64.abs", OpF64Neg: "f64.neg", OpF64Ceil: "f64.ceil", OpF64Floor: "f64.floor",
	OpF64Trunc: "f64.trunc", OpF64Nearest: "f64.nearest", OpF64Sqrt: "f64.sqrt",
	OpF64Add: "f64.add", OpF64Sub: "f64.sub", OpF64Mul: "f64.mul", OpF64Div: "f64.div",
	OpF64Min: "f64.min", OpF64Max: "f64.max", OpF64Copysign: "f64.copysign",
	OpI32WrapI64:   "i32.wrap_i64",
	OpI32TruncF32S: "i32.trunc_f32_s", OpI32TruncF32U: "i32.trunc_f32_u",
	OpI32TruncF64S: "i32.trunc_f64_s", OpI32TruncF64U: "i32.trunc_f64_u",
	OpI64ExtendI32S: "i64.extend_i32_s", OpI64ExtendI32U: "i64.extend_i32_u",
	OpI64TruncF32S: "i64.trunc_f32_s", OpI64TruncF32U: "i64.trunc_f32_u",
	OpI64TruncF64S: "i64.trunc_f64_s", OpI64TruncF64U: "i64.trunc_f64_u",
	OpF32ConvertI32S: "f32.convert_i32_s", OpF32ConvertI32U: "f32.convert_i32_u",
	OpF32ConvertI64S: "f32.convert_i64_s", OpF32ConvertI64U: "f32.convert_i64_u",
	OpF32DemoteF64:   "f32.demote_f64",
	OpF64ConvertI32S: "f64.convert_i32_s", OpF64ConvertI32U: "f64.convert_i32_u",
	OpF64ConvertI64S: "f64.convert_i64_s", OpF64ConvertI64U: "f64.convert_i64_u",
	OpF64PromoteF32:     "f64.promote_f32",
	OpI32ReinterpretF32: "i32.reinterpret_f32", OpI64ReinterpretF64: "i64.reinterpret_f64",
	OpF32ReinterpretI32: "f32.reinterpret_i32", OpF64ReinterpretI64: "f64.reinterpret_i64",
	OpI32Extend8S: "i32.extend8_s", OpI32Extend16S: "i32.extend16_s",
	OpI64Extend8S: "i64.extend8_s", OpI64Extend16S: "i64.extend16_s", OpI64Extend32S: "i64.extend32_s",
}

var opByName = func() map[string]Opcode {
	m := make(map[string]Opcode, len(opNames))
	for op, name := range opNames {
		m[name] = op
	}
	return m
}()

// opNameTable is opNames as a dense array: String is on the hot path of the
// runtime's hook dispatch (one call per instrumented instruction executed),
// where a map lookup per event dominated the per-hook profile.
var opNameTable = func() [256]string {
	var t [256]string
	for op, name := range opNames {
		t[op] = name
	}
	// The 0xFC prefix renders as a placeholder here; Instr.String resolves
	// the real subopcode name via MiscName without the prefix becoming Known.
	t[OpMiscPrefix] = "0xfc"
	return t
}()

// OpcodeByName returns the opcode with the given text-format name.
func OpcodeByName(name string) (Opcode, bool) {
	op, ok := opByName[name]
	return op, ok
}

// Known reports whether op is a valid MVP opcode.
func (op Opcode) Known() bool {
	_, ok := opNames[op]
	return ok
}

func (op Opcode) String() string {
	if s := opNameTable[op]; s != "" {
		return s
	}
	return fmt.Sprintf("opcode(0x%02x)", byte(op))
}

// IsLoad reports whether op is one of the 14 memory load instructions.
func (op Opcode) IsLoad() bool { return op >= OpI32Load && op <= OpI64Load32U }

// IsStore reports whether op is one of the 9 memory store instructions.
func (op Opcode) IsStore() bool { return op >= OpI32Store && op <= OpI64Store32 }

// IsConst reports whether op is a typed constant instruction.
func (op Opcode) IsConst() bool { return op >= OpI32Const && op <= OpF64Const }

// IsUnary reports whether op is a unary numeric instruction (one operand,
// one result): eqz tests, integer bit-counts, float unary math, conversions,
// and the sign-extension operators.
func (op Opcode) IsUnary() bool {
	switch op {
	case OpI32Eqz, OpI64Eqz:
		return true
	}
	switch {
	case op >= OpI32Clz && op <= OpI32Popcnt,
		op >= OpI64Clz && op <= OpI64Popcnt,
		op >= OpF32Abs && op <= OpF32Sqrt,
		op >= OpF64Abs && op <= OpF64Sqrt,
		op >= OpI32WrapI64 && op <= OpF64ReinterpretI64,
		op >= OpI32Extend8S && op <= OpI64Extend32S:
		return true
	}
	return false
}

// IsBinary reports whether op is a binary numeric instruction (two operands,
// one result): comparisons (except eqz) and two-operand arithmetic.
func (op Opcode) IsBinary() bool {
	switch {
	case op >= OpI32Eq && op <= OpI32GeU,
		op >= OpI64Eq && op <= OpI64GeU,
		op >= OpF32Eq && op <= OpF64Ge,
		op >= OpI32Add && op <= OpI32Rotr,
		op >= OpI64Add && op <= OpI64Rotr,
		op >= OpF32Add && op <= OpF32Copysign,
		op >= OpF64Add && op <= OpF64Copysign:
		return true
	}
	return false
}

// LoadStoreType returns the value type read or written by a load/store
// opcode, and the number of bytes accessed in memory.
func (op Opcode) LoadStoreType() (t ValType, byteSize uint32) {
	switch op {
	case OpI32Load, OpI32Store:
		return I32, 4
	case OpI64Load, OpI64Store:
		return I64, 8
	case OpF32Load, OpF32Store:
		return F32, 4
	case OpF64Load, OpF64Store:
		return F64, 8
	case OpI32Load8S, OpI32Load8U, OpI32Store8:
		return I32, 1
	case OpI32Load16S, OpI32Load16U, OpI32Store16:
		return I32, 2
	case OpI64Load8S, OpI64Load8U, OpI64Store8:
		return I64, 1
	case OpI64Load16S, OpI64Load16U, OpI64Store16:
		return I64, 2
	case OpI64Load32S, OpI64Load32U, OpI64Store32:
		return I64, 4
	}
	panic("wasm: LoadStoreType on non-memory opcode " + op.String())
}
