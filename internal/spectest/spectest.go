// Package spectest holds a corpus of small WebAssembly programs exercising
// every instruction group, each with expected results. It plays the role of
// the official specification test suite in the paper's RQ2 evaluation: every
// program is run original and fully instrumented, and the results must
// match. The corpus doubles as an interpreter conformance suite.
package spectest

import (
	"wasabi/internal/builder"
	"wasabi/internal/wasm"
)

// Case is one corpus program: a module with an exported i32->i32 "run"
// function and expected outputs for a set of inputs.
type Case struct {
	Name   string
	Module func() *wasm.Module
	// IO maps inputs to expected outputs. TrapsOn lists inputs that must
	// trap (identically, before and after instrumentation).
	IO      map[int32]int32
	TrapsOn []int32
}

// Corpus returns all cases.
func Corpus() []Case {
	return []Case{
		arithCase(),
		i64Case(),
		floatCase(),
		controlCase(),
		brTableCase(),
		memoryCase(),
		callCase(),
		globalSelectCase(),
		trapCase(),
		loopNestCase(),
	}
}

func arithCase() Case {
	return Case{
		Name: "i32-arith",
		Module: func() *wasm.Module {
			b := builder.New()
			f := b.Func("run", builder.V(wasm.I32), builder.V(wasm.I32))
			// ((x*3 + 7) ^ (x << 2)) rotl 1, mixing signed/unsigned ops
			f.Get(0).I32(3).Op(wasm.OpI32Mul).I32(7).Op(wasm.OpI32Add)
			f.Get(0).I32(2).Op(wasm.OpI32Shl)
			f.Op(wasm.OpI32Xor).I32(1).Op(wasm.OpI32Rotl)
			f.Get(0).I32(31).Op(wasm.OpI32ShrU).Op(wasm.OpI32Or)
			f.Done()
			return b.Build()
		},
		IO: map[int32]int32{0: 14, 1: 28, -1: -15, 1000: 2110},
	}
}

func i64Case() Case {
	return Case{
		Name: "i64-roundtrip",
		Module: func() *wasm.Module {
			b := builder.New()
			f := b.Func("run", builder.V(wasm.I32), builder.V(wasm.I32))
			l := f.Local(wasm.I64)
			// Widen, multiply into the high half, shift back down.
			f.Get(0).Op(wasm.OpI64ExtendI32S)
			f.I64(0x1_0000_0003).Op(wasm.OpI64Mul).Set(l)
			f.Get(l).I64(32).Op(wasm.OpI64ShrS).Op(wasm.OpI32WrapI64)
			f.Get(l).Op(wasm.OpI32WrapI64).Op(wasm.OpI32Add)
			f.Done()
			return b.Build()
		},
		// For negative x the low half borrows into the high half:
		// -3 * (2^32+3) has high word -4 and low word -9.
		IO: map[int32]int32{0: 0, 1: 4, 7: 28, -3: -13},
	}
}

func floatCase() Case {
	return Case{
		Name: "float-mix",
		Module: func() *wasm.Module {
			b := builder.New()
			f := b.Func("run", builder.V(wasm.I32), builder.V(wasm.I32))
			// trunc(sqrt(|x|) * 10) + f32 path
			f.Get(0).Op(wasm.OpF64ConvertI32S).Op(wasm.OpF64Abs).Op(wasm.OpF64Sqrt)
			f.F64(10).Op(wasm.OpF64Mul).Op(wasm.OpF64Floor).Op(wasm.OpI32TruncF64S)
			f.Get(0).Op(wasm.OpF32ConvertI32S).F32(0.5).Op(wasm.OpF32Mul).Op(wasm.OpF32Nearest).Op(wasm.OpI32TruncF32S)
			f.Op(wasm.OpI32Add)
			f.Done()
			return b.Build()
		},
		IO: map[int32]int32{0: 0, 4: 22, 16: 48, 100: 150},
	}
}

func controlCase() Case {
	return Case{
		Name: "if-else-br",
		Module: func() *wasm.Module {
			b := builder.New()
			f := b.Func("run", builder.V(wasm.I32), builder.V(wasm.I32))
			out := f.Local(wasm.I32)
			f.Block()
			f.Get(0).I32(0).Op(wasm.OpI32LtS)
			f.If().I32(-100).Set(out).Br(1).End()
			f.Get(0).I32(10).Op(wasm.OpI32GtS)
			f.IfT(wasm.I32).I32(2).Else().I32(3).End()
			f.Get(0).Op(wasm.OpI32Mul).Set(out)
			f.End()
			f.Get(out)
			f.Done()
			return b.Build()
		},
		IO: map[int32]int32{-5: -100, 5: 15, 11: 22, 0: 0},
	}
}

func brTableCase() Case {
	return Case{
		Name: "br-table",
		Module: func() *wasm.Module {
			b := builder.New()
			f := b.Func("run", builder.V(wasm.I32), builder.V(wasm.I32))
			out := f.Local(wasm.I32)
			f.Block().Block().Block().Block()
			f.Get(0)
			f.BrTable([]uint32{0, 1, 2}, 3)
			f.End().I32(100).Set(out).Br(2)
			f.End().I32(200).Set(out).Br(1)
			f.End().I32(300).Set(out).Br(0)
			f.End()
			f.Get(out)
			f.Done()
			return b.Build()
		},
		IO: map[int32]int32{0: 100, 1: 200, 2: 300, 3: 0, 50: 0, -1: 0},
	}
}

func memoryCase() Case {
	return Case{
		Name: "memory-widths",
		Module: func() *wasm.Module {
			b := builder.New()
			b.Memory(1)
			b.Data(100, []byte{0xFF, 0x01, 0x80, 0x7F})
			f := b.Func("run", builder.V(wasm.I32), builder.V(wasm.I32))
			// Sign/zero extension through every width at data offset 100+x.
			f.Get(0).Load(wasm.OpI32Load8S, 100)
			f.Get(0).Load(wasm.OpI32Load8U, 100)
			f.Op(wasm.OpI32Add)
			f.Get(0).Load(wasm.OpI32Load16S, 100)
			f.Op(wasm.OpI32Add)
			// store16 then reload to check truncation
			f.I32(200).Get(0).I32(0x12345).Op(wasm.OpI32Add).Store(wasm.OpI32Store16, 0)
			f.I32(200).Load(wasm.OpI32Load16U, 0)
			f.Op(wasm.OpI32Add)
			f.Done()
			return b.Build()
		},
		IO: map[int32]int32{0: 0x2345 + (-1 + 255 + 0x1FF), 1: 0x2346 + (1 + 1 + (-32767))},
	}
}

func callCase() Case {
	return Case{
		Name: "calls",
		Module: func() *wasm.Module {
			b := builder.New()
			b.Table(2)
			double := b.Func("double", builder.V(wasm.I32), builder.V(wasm.I32))
			double.Get(0).I32(2).Op(wasm.OpI32Mul)
			double.Done()
			square := b.Func("square", builder.V(wasm.I32), builder.V(wasm.I32))
			square.Get(0).Get(0).Op(wasm.OpI32Mul)
			square.Done()
			b.Elem(0, double.Index, square.Index)
			f := b.Func("run", builder.V(wasm.I32), builder.V(wasm.I32))
			// double(x) + table[x&1](x)
			f.Get(0).Call(double.Index)
			f.Get(0).Get(0).I32(1).Op(wasm.OpI32And)
			f.CallIndirect(builder.V(wasm.I32), builder.V(wasm.I32))
			f.Op(wasm.OpI32Add)
			f.Done()
			return b.Build()
		},
		IO: map[int32]int32{0: 0, 2: 8, 3: 15, 10: 40},
	}
}

func globalSelectCase() Case {
	return Case{
		Name: "globals-select-drop",
		Module: func() *wasm.Module {
			b := builder.New()
			g := b.GlobalI32(true, 5)
			g64 := b.GlobalI64(true, 100)
			f := b.Func("run", builder.V(wasm.I32), builder.V(wasm.I32))
			f.GGet(g).Get(0).Op(wasm.OpI32Add).GSet(g)
			f.GGet(g64).I64(2).Op(wasm.OpI64Mul).GSet(g64)
			f.I32(111).Drop()
			f.GGet(g)
			f.GGet(g64).Op(wasm.OpI32WrapI64)
			f.Get(0).I32(0).Op(wasm.OpI32GeS)
			f.Select()
			f.Done()
			return b.Build()
		},
		// Globals persist across calls within one instance; inputs are
		// applied in ascending order by the corpus runner, so expectations
		// account for accumulated state. With inputs -1, 2:
		//   run(-1): g=4,  g64=200 -> select picks g64 -> 200
		//   run(2):  g=6,  g64=400 -> select picks g   -> 6
		IO: map[int32]int32{-1: 200, 2: 6},
	}
}

func trapCase() Case {
	return Case{
		Name: "traps",
		Module: func() *wasm.Module {
			b := builder.New()
			b.Memory(1)
			f := b.Func("run", builder.V(wasm.I32), builder.V(wasm.I32))
			// x == 0 -> division by zero; x == 1 -> OOB load; x == 2 ->
			// unreachable; else 7/x + mem[0].
			f.Get(0).I32(1).Op(wasm.OpI32Eq)
			f.If().I32(-1).Load(wasm.OpI32Load, 0).Drop().End()
			f.Get(0).I32(2).Op(wasm.OpI32Eq)
			f.If().Op(wasm.OpUnreachable).End()
			f.I32(7).Get(0).Op(wasm.OpI32DivS)
			f.I32(0).Load(wasm.OpI32Load, 0).Op(wasm.OpI32Add)
			f.Done()
			return b.Build()
		},
		IO:      map[int32]int32{7: 1, -7: -1, 3: 2},
		TrapsOn: []int32{0, 1, 2},
	}
}

func loopNestCase() Case {
	return Case{
		Name: "nested-loops",
		Module: func() *wasm.Module {
			b := builder.New()
			f := b.Func("run", builder.V(wasm.I32), builder.V(wasm.I32))
			i := f.Local(wasm.I32)
			j := f.Local(wasm.I32)
			acc := f.Local(wasm.I32)
			f.ForI32(i, func(fb *builder.FuncBuilder) { fb.Get(0) }, func(fb *builder.FuncBuilder) {
				fb.ForI32(j, func(fb *builder.FuncBuilder) { fb.Get(i) }, func(fb *builder.FuncBuilder) {
					fb.Get(acc).Get(j).Op(wasm.OpI32Add).I32(1).Op(wasm.OpI32Add).Set(acc)
				})
			})
			f.Get(acc)
			f.Done()
			return b.Build()
		},
		// acc = sum over i<n of (i*(i-1)/2 + i) = triangular sums.
		IO: map[int32]int32{0: 0, 1: 0, 2: 1, 5: 20, 10: 165},
	}
}
