package spectest

import (
	"errors"
	"testing"

	"wasabi"
	"wasabi/internal/static"
	"wasabi/internal/validate"
)

// TestNegativeCorpusValidate: every invalid module is rejected by the
// validator with a position-annotated typed error, never a panic.
func TestNegativeCorpusValidate(t *testing.T) {
	for _, c := range NegativeCorpus() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			err := validate.Module(c.Module())
			if err == nil {
				t.Fatal("invalid module validated")
			}
			var ve *validate.Error
			if !errors.As(err, &ve) {
				t.Fatalf("error is %T, want *validate.Error: %v", err, err)
			}
			if ve.FuncIdx < 0 {
				t.Errorf("error lacks a function position: %v", err)
			}
		})
	}
}

// TestNegativeCorpusStatic: the CFG builder survives every invalid module —
// structural malformations fail with an error, type-only malformations are
// out of its scope, and nothing panics.
func TestNegativeCorpusStatic(t *testing.T) {
	for _, c := range NegativeCorpus() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			_, err := static.Analyze(c.Module())
			if c.CFGMustErr && err == nil {
				t.Error("structurally malformed module analyzed without error")
			}
		})
	}
}

// TestNegativeCorpusEngine: the public API path rejects every invalid
// module before instrumentation, wrapping ErrInvalidModule.
func TestNegativeCorpusEngine(t *testing.T) {
	eng, err := wasabi.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range NegativeCorpus() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			_, err := eng.Instrument(c.Module(), wasabi.AllCaps)
			if err == nil {
				t.Fatal("engine instrumented an invalid module")
			}
			if !errors.Is(err, wasabi.ErrInvalidModule) {
				t.Errorf("error does not wrap ErrInvalidModule: %v", err)
			}
			var ve *wasabi.ValidationError
			if !errors.As(err, &ve) {
				t.Errorf("error is not a *wasabi.ValidationError: %v", err)
			}
		})
	}
}
