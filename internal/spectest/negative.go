package spectest

import (
	"wasabi/internal/wasm"
)

// NegativeCase is one deliberately invalid module. Every consumer of
// untrusted modules — the validator, the static-analysis CFG builder, the
// engine's default instrumentation path — must reject it with an error and
// never panic.
type NegativeCase struct {
	Name   string
	Module func() *wasm.Module
	// CFGMustErr marks cases whose malformation is structural (unbalanced
	// control, out-of-range labels, bad br_table spans, missing bodies):
	// static.Analyze must fail on these. Pure type errors (the rest) are
	// out of the CFG builder's scope — it must merely not panic on them.
	CFGMustErr bool
}

// badFunc assembles a single-function module with the given signature and
// raw body, bypassing the builder's conveniences so bodies can be left
// unterminated or otherwise malformed.
func badFunc(params, results []wasm.ValType, body ...wasm.Instr) *wasm.Module {
	m := &wasm.Module{}
	ti := m.AddType(wasm.FuncType{Params: params, Results: results})
	m.Funcs = append(m.Funcs, wasm.Func{TypeIdx: ti, Body: body})
	return m
}

// NegativeCorpus returns the invalid-module corpus: one case per
// malformation class the decoder can structurally represent.
func NegativeCorpus() []NegativeCase {
	i32 := []wasm.ValType{wasm.I32}
	return []NegativeCase{
		{
			Name: "stack-underflow",
			Module: func() *wasm.Module {
				return badFunc(nil, i32, wasm.Instr{Op: wasm.OpI32Add}, wasm.End())
			},
		},
		{
			Name: "type-mismatch",
			Module: func() *wasm.Module {
				return badFunc(nil, i32,
					wasm.F64ConstInstr(1), wasm.I32Const(1), wasm.Instr{Op: wasm.OpI32Add}, wasm.End())
			},
		},
		{
			Name: "local-out-of-range",
			Module: func() *wasm.Module {
				return badFunc(i32, i32, wasm.LocalGet(5), wasm.End())
			},
		},
		{
			Name: "global-out-of-range",
			Module: func() *wasm.Module {
				return badFunc(nil, i32, wasm.GlobalGet(2), wasm.End())
			},
		},
		{
			Name: "call-out-of-range",
			Module: func() *wasm.Module {
				return badFunc(nil, nil, wasm.Call(99), wasm.End())
			},
		},
		{
			Name: "missing-result",
			Module: func() *wasm.Module {
				return badFunc(nil, i32, wasm.End())
			},
		},
		{
			Name: "load-without-memory",
			Module: func() *wasm.Module {
				return badFunc(nil, i32,
					wasm.I32Const(0), wasm.Instr{Op: wasm.OpI32Load}, wasm.End())
			},
		},
		{
			Name: "branch-depth-out-of-range",
			Module: func() *wasm.Module {
				return badFunc(nil, nil, wasm.Br(4), wasm.End())
			},
			CFGMustErr: true,
		},
		{
			Name: "unclosed-block",
			Module: func() *wasm.Module {
				return badFunc(nil, nil, wasm.BlockInstr(wasm.BlockEmpty), wasm.End())
			},
			CFGMustErr: true, // block's end consumes the function-level end
		},
		{
			Name: "else-without-if",
			Module: func() *wasm.Module {
				return badFunc(nil, nil, wasm.Instr{Op: wasm.OpElse}, wasm.End())
			},
			CFGMustErr: true,
		},
		{
			Name: "body-missing-end",
			Module: func() *wasm.Module {
				return badFunc(nil, i32, wasm.I32Const(1))
			},
			CFGMustErr: true,
		},
		{
			Name: "empty-body",
			Module: func() *wasm.Module {
				return badFunc(nil, nil)
			},
			CFGMustErr: true,
		},
		{
			// Recognized post-MVP instructions the runtime still does not
			// implement (see wasm.UnsupportedInfo): decodable, but rejected
			// by validation as unsupported.
			Name: "unsupported-memory-init",
			Module: func() *wasm.Module {
				m := badFunc(nil, nil,
					wasm.I32Const(0), wasm.I32Const(0), wasm.I32Const(8),
					wasm.Instr{Op: wasm.OpMiscPrefix, Idx: wasm.MiscMemoryInit}, wasm.End())
				m.Memories = append(m.Memories, wasm.Limits{Min: 1})
				return m
			},
		},
		{
			Name: "unsupported-data-drop",
			Module: func() *wasm.Module {
				return badFunc(nil, nil,
					wasm.Instr{Op: wasm.OpMiscPrefix, Idx: wasm.MiscDataDrop}, wasm.End())
			},
		},
		{
			Name: "unsupported-table-copy",
			Module: func() *wasm.Module {
				return badFunc(nil, nil,
					wasm.I32Const(0), wasm.I32Const(0), wasm.I32Const(8),
					wasm.Instr{Op: wasm.OpMiscPrefix, Idx: wasm.MiscTableCopy}, wasm.End())
			},
		},
		{
			Name: "type-index-out-of-range",
			Module: func() *wasm.Module {
				m := &wasm.Module{}
				m.Funcs = append(m.Funcs, wasm.Func{TypeIdx: 9, Body: []wasm.Instr{wasm.End()}})
				return m
			},
			CFGMustErr: true,
		},
		{
			Name: "br-table-span-exceeds-pool",
			Module: func() *wasm.Module {
				return badFunc(i32, nil,
					wasm.LocalGet(0), wasm.BrTableInstr(0, 2, 3), wasm.End())
			},
			CFGMustErr: true,
		},
	}
}
