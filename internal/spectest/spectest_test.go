package spectest

import (
	"sort"
	"testing"

	"wasabi"
	"wasabi/internal/analyses"
	"wasabi/internal/analysis"
	"wasabi/internal/core"
	"wasabi/internal/interp"
	"wasabi/internal/validate"
)

// sortedInputs returns the case's inputs in ascending order so stateful
// modules (globals) behave deterministically.
func sortedInputs(c Case) []int32 {
	var ins []int32
	for x := range c.IO {
		ins = append(ins, x)
	}
	sort.Slice(ins, func(i, j int) bool { return ins[i] < ins[j] })
	return ins
}

// TestCorpusOriginal checks the corpus against the interpreter directly.
func TestCorpusOriginal(t *testing.T) {
	for _, c := range Corpus() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			m := c.Module()
			if err := validate.Module(m); err != nil {
				t.Fatalf("validate: %v", err)
			}
			inst, err := interp.Instantiate(m, nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, in := range sortedInputs(c) {
				res, err := inst.Invoke("run", interp.I32(in))
				if err != nil {
					t.Errorf("run(%d): %v", in, err)
					continue
				}
				if got := interp.AsI32(res[0]); got != c.IO[in] {
					t.Errorf("run(%d) = %d, want %d", in, got, c.IO[in])
				}
			}
			for _, in := range c.TrapsOn {
				if _, err := inst.Invoke("run", interp.I32(in)); err == nil {
					t.Errorf("run(%d) should trap", in)
				}
			}
		})
	}
}

// TestCorpusInstrumented re-runs the whole corpus fully instrumented with
// the empty analysis: identical results, identical traps (RQ2).
func TestCorpusInstrumented(t *testing.T) {
	for _, c := range Corpus() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			sess, err := wasabi.AnalyzeWithOptions(c.Module(), &analyses.Empty{},
				core.Options{Hooks: analysis.AllHooks})
			if err != nil {
				t.Fatal(err)
			}
			if err := validate.Module(sess.Module()); err != nil {
				t.Fatalf("instrumented validation: %v", err)
			}
			inst, err := sess.Instantiate("", nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, in := range sortedInputs(c) {
				res, err := inst.Invoke("run", interp.I32(in))
				if err != nil {
					t.Errorf("run(%d): %v", in, err)
					continue
				}
				if got := interp.AsI32(res[0]); got != c.IO[in] {
					t.Errorf("run(%d) = %d, want %d", in, got, c.IO[in])
				}
			}
			for _, in := range c.TrapsOn {
				if _, err := inst.Invoke("run", interp.I32(in)); err == nil {
					t.Errorf("run(%d) should trap when instrumented", in)
				}
			}
		})
	}
}

// TestCorpusPerHookInstrumented runs every case under every single-hook
// instrumentation (instrumentation independence, paper §2.4.2). This is the
// widest faithfulness sweep in the repository: cases × hooks × inputs.
func TestCorpusPerHookInstrumented(t *testing.T) {
	for _, c := range Corpus() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			for kind := analysis.HookKind(0); int(kind) < analysis.NumKinds; kind++ {
				if kind == analysis.KindBlockProbe {
					// Probes are placed by a static plan, not by Set(kind)
					// alone; the block-probe faithfulness sweep lives in the
					// top-level static elision tests.
					continue
				}
				sess, err := wasabi.AnalyzeWithOptions(c.Module(), &analyses.Empty{},
					core.Options{Hooks: analysis.Set(kind)})
				if err != nil {
					t.Fatalf("%s: %v", kind, err)
				}
				inst, err := sess.Instantiate("", nil)
				if err != nil {
					t.Fatalf("%s: %v", kind, err)
				}
				for _, in := range sortedInputs(c) {
					res, err := inst.Invoke("run", interp.I32(in))
					if err != nil {
						t.Errorf("%s: run(%d): %v", kind, in, err)
						continue
					}
					if got := interp.AsI32(res[0]); got != c.IO[in] {
						t.Errorf("%s: run(%d) = %d, want %d", kind, in, got, c.IO[in])
					}
				}
			}
		})
	}
}
