// Package builder provides a programmatic DSL for assembling WebAssembly
// modules. It plays the role of the toolchain (emscripten in the paper):
// the PolyBench workload generators, the synthetic-application generator,
// and many tests construct their modules through it.
package builder

import (
	"wasabi/internal/wasm"
)

// Builder assembles one module.
type Builder struct {
	m           wasm.Module
	importsDone bool
	funcNames   map[uint32]string
}

// New returns an empty module builder.
func New() *Builder {
	return &Builder{funcNames: make(map[uint32]string)}
}

// ImportFunc adds a function import and returns its function index. All
// function imports must be added before the first defined function, since
// imports come first in the index space.
func (b *Builder) ImportFunc(module, name string, ft wasm.FuncType) uint32 {
	if b.importsDone {
		panic("builder: ImportFunc after a function was defined")
	}
	ti := b.m.AddType(ft)
	b.m.Imports = append(b.m.Imports, wasm.Import{Module: module, Name: name, Kind: wasm.ExternFunc, TypeIdx: ti})
	idx := uint32(b.m.NumImportedFuncs() - 1)
	b.funcNames[idx] = module + "." + name
	return idx
}

// Memory declares the module's linear memory with min pages (no max).
func (b *Builder) Memory(minPages uint32) *Builder {
	b.m.Memories = []wasm.Limits{{Min: minPages}}
	return b
}

// ExportMemory exports the memory under the given name.
func (b *Builder) ExportMemory(name string) *Builder {
	b.m.Exports = append(b.m.Exports, wasm.Export{Name: name, Kind: wasm.ExternMemory})
	return b
}

// Table declares the module's funcref table with the given minimum size.
func (b *Builder) Table(min uint32) *Builder {
	b.m.Tables = []wasm.Limits{{Min: min}}
	return b
}

// Elem seeds table slots starting at offset with the given function indices.
func (b *Builder) Elem(offset int32, funcs ...uint32) *Builder {
	b.m.Elems = append(b.m.Elems, wasm.ElemSegment{
		Offset: []wasm.Instr{wasm.I32Const(offset), wasm.End()},
		Funcs:  funcs,
	})
	return b
}

// Data initializes memory at offset with the given bytes.
func (b *Builder) Data(offset int32, data []byte) *Builder {
	b.m.Datas = append(b.m.Datas, wasm.DataSegment{
		Offset: []wasm.Instr{wasm.I32Const(offset), wasm.End()},
		Data:   data,
	})
	return b
}

// GlobalI32 declares an i32 global and returns its index.
func (b *Builder) GlobalI32(mutable bool, init int32) uint32 {
	b.m.Globals = append(b.m.Globals, wasm.Global{
		Type: wasm.GlobalType{Type: wasm.I32, Mutable: mutable},
		Init: []wasm.Instr{wasm.I32Const(init), wasm.End()},
	})
	return uint32(b.m.NumImportedGlobals() + len(b.m.Globals) - 1)
}

// GlobalF64 declares an f64 global and returns its index.
func (b *Builder) GlobalF64(mutable bool, init float64) uint32 {
	b.m.Globals = append(b.m.Globals, wasm.Global{
		Type: wasm.GlobalType{Type: wasm.F64, Mutable: mutable},
		Init: []wasm.Instr{wasm.F64ConstInstr(init), wasm.End()},
	})
	return uint32(b.m.NumImportedGlobals() + len(b.m.Globals) - 1)
}

// GlobalI64 declares an i64 global and returns its index.
func (b *Builder) GlobalI64(mutable bool, init int64) uint32 {
	b.m.Globals = append(b.m.Globals, wasm.Global{
		Type: wasm.GlobalType{Type: wasm.I64, Mutable: mutable},
		Init: []wasm.Instr{wasm.I64ConstInstr(init), wasm.End()},
	})
	return uint32(b.m.NumImportedGlobals() + len(b.m.Globals) - 1)
}

// Start marks funcIdx as the module's start function.
func (b *Builder) Start(funcIdx uint32) *Builder {
	b.m.Start = &funcIdx
	return b
}

// Build finalizes and returns the module.
func (b *Builder) Build() *wasm.Module {
	if len(b.funcNames) > 0 {
		b.m.FuncNames = b.funcNames
	}
	return &b.m
}

// Func starts a new defined function. If name is non-empty the function is
// exported under that name and recorded in the name section.
func (b *Builder) Func(name string, params, results []wasm.ValType) *FuncBuilder {
	b.importsDone = true
	ti := b.m.AddType(wasm.FuncType{Params: params, Results: results})
	b.m.Funcs = append(b.m.Funcs, wasm.Func{TypeIdx: ti})
	idx := uint32(b.m.NumImportedFuncs() + len(b.m.Funcs) - 1)
	if name != "" {
		b.m.Exports = append(b.m.Exports, wasm.Export{Name: name, Kind: wasm.ExternFunc, Idx: idx})
		b.funcNames[idx] = name
	}
	return &FuncBuilder{
		b:         b,
		defined:   len(b.m.Funcs) - 1,
		Index:     idx,
		numParams: len(params),
	}
}

// FuncBuilder emits the body of one function. All emit methods return the
// receiver for chaining.
type FuncBuilder struct {
	b         *Builder
	defined   int
	Index     uint32
	numParams int
	locals    []wasm.ValType
	body      []wasm.Instr
	brTargets []uint32
}

// Local declares a new local of type t and returns its index.
func (fb *FuncBuilder) Local(t wasm.ValType) uint32 {
	fb.locals = append(fb.locals, t)
	return uint32(fb.numParams + len(fb.locals) - 1)
}

// Emit appends raw instructions.
func (fb *FuncBuilder) Emit(ins ...wasm.Instr) *FuncBuilder {
	fb.body = append(fb.body, ins...)
	return fb
}

// Op appends an instruction without immediates.
func (fb *FuncBuilder) Op(ops ...wasm.Opcode) *FuncBuilder {
	for _, op := range ops {
		fb.body = append(fb.body, wasm.Instr{Op: op})
	}
	return fb
}

// I32 appends i32.const v.
func (fb *FuncBuilder) I32(v int32) *FuncBuilder { return fb.Emit(wasm.I32Const(v)) }

// I64 appends i64.const v.
func (fb *FuncBuilder) I64(v int64) *FuncBuilder { return fb.Emit(wasm.I64ConstInstr(v)) }

// F32 appends f32.const v.
func (fb *FuncBuilder) F32(v float32) *FuncBuilder { return fb.Emit(wasm.F32ConstInstr(v)) }

// F64 appends f64.const v.
func (fb *FuncBuilder) F64(v float64) *FuncBuilder { return fb.Emit(wasm.F64ConstInstr(v)) }

// Get appends local.get.
func (fb *FuncBuilder) Get(local uint32) *FuncBuilder { return fb.Emit(wasm.LocalGet(local)) }

// Set appends local.set.
func (fb *FuncBuilder) Set(local uint32) *FuncBuilder { return fb.Emit(wasm.LocalSet(local)) }

// Tee appends local.tee.
func (fb *FuncBuilder) Tee(local uint32) *FuncBuilder { return fb.Emit(wasm.LocalTee(local)) }

// GGet appends global.get.
func (fb *FuncBuilder) GGet(g uint32) *FuncBuilder { return fb.Emit(wasm.GlobalGet(g)) }

// GSet appends global.set.
func (fb *FuncBuilder) GSet(g uint32) *FuncBuilder { return fb.Emit(wasm.GlobalSet(g)) }

// Call appends a direct call.
func (fb *FuncBuilder) Call(funcIdx uint32) *FuncBuilder { return fb.Emit(wasm.Call(funcIdx)) }

// CallIndirect appends call_indirect with the given signature.
func (fb *FuncBuilder) CallIndirect(params, results []wasm.ValType) *FuncBuilder {
	ti := fb.b.m.AddType(wasm.FuncType{Params: params, Results: results})
	return fb.Emit(wasm.Instr{Op: wasm.OpCallIndirect, Idx: ti})
}

// Load appends a load with natural alignment and the given static offset.
func (fb *FuncBuilder) Load(op wasm.Opcode, offset uint32) *FuncBuilder {
	_, size := op.LoadStoreType()
	return fb.Emit(wasm.MemInstr(op, log2(size), offset))
}

// Store appends a store with natural alignment and the given static offset.
func (fb *FuncBuilder) Store(op wasm.Opcode, offset uint32) *FuncBuilder {
	return fb.Load(op, offset) // identical immediate layout
}

// Block opens a block with no result.
func (fb *FuncBuilder) Block() *FuncBuilder { return fb.Emit(wasm.BlockInstr(wasm.BlockEmpty)) }

// BlockT opens a block with one result.
func (fb *FuncBuilder) BlockT(t wasm.ValType) *FuncBuilder {
	return fb.Emit(wasm.BlockInstr(wasm.BlockType(t)))
}

// Loop opens a loop with no result.
func (fb *FuncBuilder) Loop() *FuncBuilder { return fb.Emit(wasm.LoopInstr(wasm.BlockEmpty)) }

// If opens an if with no result.
func (fb *FuncBuilder) If() *FuncBuilder { return fb.Emit(wasm.IfInstr(wasm.BlockEmpty)) }

// IfT opens an if with one result.
func (fb *FuncBuilder) IfT(t wasm.ValType) *FuncBuilder {
	return fb.Emit(wasm.IfInstr(wasm.BlockType(t)))
}

// Else appends else.
func (fb *FuncBuilder) Else() *FuncBuilder { return fb.Op(wasm.OpElse) }

// End appends end.
func (fb *FuncBuilder) End() *FuncBuilder { return fb.Op(wasm.OpEnd) }

// Br appends br to the n-th enclosing label.
func (fb *FuncBuilder) Br(n uint32) *FuncBuilder { return fb.Emit(wasm.Br(n)) }

// BrIf appends br_if to the n-th enclosing label.
func (fb *FuncBuilder) BrIf(n uint32) *FuncBuilder { return fb.Emit(wasm.BrIf(n)) }

// BrTable appends br_table with the given targets and default.
func (fb *FuncBuilder) BrTable(targets []uint32, deflt uint32) *FuncBuilder {
	return fb.Emit(wasm.AppendBrTable(&fb.brTargets, targets, deflt))
}

// Return appends return.
func (fb *FuncBuilder) Return() *FuncBuilder { return fb.Op(wasm.OpReturn) }

// Drop appends drop.
func (fb *FuncBuilder) Drop() *FuncBuilder { return fb.Op(wasm.OpDrop) }

// Select appends select.
func (fb *FuncBuilder) Select() *FuncBuilder { return fb.Op(wasm.OpSelect) }

// ForI32 emits a canonical counted loop over i in [0, limit):
//
//	i = 0
//	block; loop
//	  if i >= limit: br 1
//	  body
//	  i = i + 1
//	  br 0
//	end; end
//
// limit must push a single i32 (e.g. via Get of a limit local).
func (fb *FuncBuilder) ForI32(i uint32, limit func(*FuncBuilder), body func(*FuncBuilder)) *FuncBuilder {
	fb.I32(0).Set(i)
	fb.Block().Loop()
	fb.Get(i)
	limit(fb)
	fb.Op(wasm.OpI32GeS).BrIf(1)
	body(fb)
	fb.Get(i).I32(1).Op(wasm.OpI32Add).Set(i)
	fb.Br(0)
	fb.End().End()
	return fb
}

// Len returns the number of instructions emitted so far.
func (fb *FuncBuilder) Len() int { return len(fb.body) }

// Done finalizes the function body, appending the terminating end.
func (fb *FuncBuilder) Done() uint32 {
	fb.body = append(fb.body, wasm.End())
	f := &fb.b.m.Funcs[fb.defined]
	f.Locals = fb.locals
	f.Body = fb.body
	f.BrTargets = fb.brTargets
	return fb.Index
}

func log2(v uint32) uint32 {
	n := uint32(0)
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Sig is shorthand for a function type.
func Sig(params []wasm.ValType, results []wasm.ValType) wasm.FuncType {
	return wasm.FuncType{Params: params, Results: results}
}

// V is shorthand for a value-type list.
func V(ts ...wasm.ValType) []wasm.ValType { return ts }
