package builder_test

import (
	"strings"
	"testing"

	"wasabi/internal/builder"
	"wasabi/internal/interp"
	"wasabi/internal/validate"
	"wasabi/internal/wasm"
	"wasabi/internal/wat"
)

func TestBuilderProducesValidModules(t *testing.T) {
	b := builder.New()
	b.Memory(2).ExportMemory("mem").Table(3)
	g := b.GlobalI32(true, 1)
	g64 := b.GlobalI64(false, 2)
	gf := b.GlobalF64(true, 3.5)
	host := b.ImportFunc("env", "h", builder.Sig(builder.V(wasm.F64), nil))
	b.Data(8, []byte{1, 2, 3})

	f := b.Func("f", builder.V(wasm.I32, wasm.F64), builder.V(wasm.F64))
	l := f.Local(wasm.F64)
	f.Get(1).Set(l)
	f.GGet(gf).Get(l).Op(wasm.OpF64Add).GSet(gf)
	f.GGet(g).Drop()
	f.GGet(g64).Drop()
	f.Get(l).Call(host)
	f.GGet(gf)
	f.Done()
	b.Elem(0, f.Index)

	m := b.Build()
	if err := validate.Module(m); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if f.Index != 1 { // after 1 import
		t.Errorf("func index = %d", f.Index)
	}
	if name := m.FuncName(f.Index); name != "f" {
		t.Errorf("FuncName = %q", name)
	}
	if _, ok := m.ExportedFunc("f"); !ok {
		t.Error("export missing")
	}
}

func TestLocalIndicesAfterParams(t *testing.T) {
	b := builder.New()
	f := b.Func("f", builder.V(wasm.I32, wasm.I64), builder.V(wasm.I32))
	l0 := f.Local(wasm.F32)
	l1 := f.Local(wasm.F64)
	if l0 != 2 || l1 != 3 {
		t.Errorf("locals = %d, %d; want 2, 3", l0, l1)
	}
	f.Get(0)
	f.Done()
	if err := validate.Module(b.Build()); err != nil {
		t.Fatal(err)
	}
}

func TestForI32Semantics(t *testing.T) {
	b := builder.New()
	f := b.Func("sum", builder.V(wasm.I32), builder.V(wasm.I32))
	i := f.Local(wasm.I32)
	acc := f.Local(wasm.I32)
	f.ForI32(i, func(fb *builder.FuncBuilder) { fb.Get(0) }, func(fb *builder.FuncBuilder) {
		fb.Get(acc).Get(i).Op(wasm.OpI32Add).Set(acc)
	})
	f.Get(acc)
	f.Done()
	inst, err := interp.Instantiate(b.Build(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range [][2]int32{{0, 0}, {1, 0}, {5, 10}, {100, 4950}, {-3, 0}} {
		res, err := inst.Invoke("sum", interp.I32(c[0]))
		if err != nil {
			t.Fatal(err)
		}
		if got := interp.AsI32(res[0]); got != c[1] {
			t.Errorf("sum(%d) = %d, want %d", c[0], got, c[1])
		}
	}
}

func TestWatPrinter(t *testing.T) {
	b := builder.New()
	b.Memory(1)
	f := b.Func("main", builder.V(wasm.I32), builder.V(wasm.I32))
	f.Get(0).If().Op(wasm.OpNop).Else().Op(wasm.OpNop).End()
	f.Get(0)
	f.Done()
	text := wat.ToString(b.Build())
	for _, want := range []string{"(module", "(func 0 (; main ;)", "local.get 0", "if", "else", "(memory 1)", "(export \"main\" (func 0))"} {
		if !strings.Contains(text, want) {
			t.Errorf("wat output missing %q:\n%s", want, text)
		}
	}
	// Indentation must return to module level (balanced blocks).
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	if lines[len(lines)-1] != ")" {
		t.Errorf("unbalanced output, last line %q", lines[len(lines)-1])
	}
}
