package refinterp

import (
	"errors"
	"testing"

	"wasabi/internal/builder"
	"wasabi/internal/spectest"
	"wasabi/internal/wasm"
)

// TestSpectestCorpus checks the reference interpreter against the corpus'
// expected IO and trap tables. This is the oracle's own conformance gate:
// it must agree with the hand-computed expectations before it can be
// trusted to arbitrate divergences in the production interpreter.
func TestSpectestCorpus(t *testing.T) {
	for _, c := range spectest.Corpus() {
		t.Run(c.Name, func(t *testing.T) {
			inst, err := Instantiate(c.Module(), nil)
			if err != nil {
				t.Fatalf("instantiate: %v", err)
			}
			// Globals persist across invocations; apply inputs in a fixed
			// ascending order, matching the production parity tests.
			inputs := make([]int32, 0, len(c.IO))
			for in := range c.IO {
				inputs = append(inputs, in)
			}
			for i := 0; i < len(inputs); i++ {
				for j := i + 1; j < len(inputs); j++ {
					if inputs[j] < inputs[i] {
						inputs[i], inputs[j] = inputs[j], inputs[i]
					}
				}
			}
			for _, in := range inputs {
				want := c.IO[in]
				res, err := inst.Invoke("run", Value(uint32(in)))
				if err != nil {
					t.Fatalf("run(%d): %v", in, err)
				}
				if len(res) != 1 || int32(uint32(res[0])) != want {
					t.Fatalf("run(%d) = %v, want %d", in, res, want)
				}
			}
			for _, in := range c.TrapsOn {
				_, err := inst.Invoke("run", Value(uint32(in)))
				var tr *Trap
				if !errors.As(err, &tr) {
					t.Fatalf("run(%d): want trap, got %v", in, err)
				}
			}
		})
	}
}

func TestHostFunctions(t *testing.T) {
	b := builder.New()
	b.ImportFunc("env", "add1", builder.Sig(builder.V(wasm.I64), builder.V(wasm.I64)))
	f := b.Func("run", builder.V(wasm.I64), builder.V(wasm.I64))
	f.Get(0).Call(0)
	f.Done()

	var got []Value
	inst, err := Instantiate(b.Build(), Imports{
		"env": {"add1": &HostFunc{
			Type: wasm.FuncType{Params: []wasm.ValType{wasm.I64}, Results: []wasm.ValType{wasm.I64}},
			Fn: func(args []Value) ([]Value, error) {
				got = append(got, args[0])
				return []Value{args[0] + 1}, nil
			},
		}},
	})
	if err != nil {
		t.Fatalf("instantiate: %v", err)
	}
	res, err := inst.Invoke("run", 41)
	if err != nil {
		t.Fatalf("invoke: %v", err)
	}
	if len(res) != 1 || res[0] != 42 {
		t.Fatalf("got %v, want [42]", res)
	}
	if len(got) != 1 || got[0] != 41 {
		t.Fatalf("host saw %v, want [41]", got)
	}
}

func TestHostError(t *testing.T) {
	b := builder.New()
	b.ImportFunc("env", "boom", builder.Sig(nil, nil))
	f := b.Func("run", builder.V(wasm.I32), builder.V(wasm.I32))
	f.Call(0).I32(0)
	f.Done()

	inst, err := Instantiate(b.Build(), Imports{
		"env": {"boom": &HostFunc{
			Type: wasm.FuncType{},
			Fn:   func([]Value) ([]Value, error) { return nil, errors.New("kaput") },
		}},
	})
	if err != nil {
		t.Fatalf("instantiate: %v", err)
	}
	_, err = inst.Invoke("run", 0)
	var tr *Trap
	if !errors.As(err, &tr) || tr.Code != TrapHostError {
		t.Fatalf("want host-error trap, got %v", err)
	}
}

func TestStackExhaustion(t *testing.T) {
	b := builder.New()
	f := b.Func("run", builder.V(wasm.I32), builder.V(wasm.I32))
	f.Get(0).Call(0) // unconditional self-recursion
	f.Done()
	inst, err := Instantiate(b.Build(), nil)
	if err != nil {
		t.Fatalf("instantiate: %v", err)
	}
	_, err = inst.Invoke("run", 1)
	var tr *Trap
	if !errors.As(err, &tr) || tr.Code != TrapStackExhausted {
		t.Fatalf("want stack exhaustion, got %v", err)
	}
}

func TestMissingImport(t *testing.T) {
	b := builder.New()
	b.ImportFunc("env", "gone", builder.Sig(nil, nil))
	b.Func("run", builder.V(wasm.I32), builder.V(wasm.I32)).I32(0).Done()
	if _, err := Instantiate(b.Build(), nil); err == nil {
		t.Fatal("want error for unresolved import")
	}
}

func TestMemoryGrowAndDigestInputs(t *testing.T) {
	b := builder.New()
	b.Memory(1)
	f := b.Func("run", builder.V(wasm.I32), builder.V(wasm.I32))
	f.Get(0).Op(wasm.OpMemoryGrow)
	f.Done()
	m := b.Build()
	m.Memories[0].Max, m.Memories[0].HasMax = 4, true
	inst, err := Instantiate(m, nil)
	if err != nil {
		t.Fatalf("instantiate: %v", err)
	}
	res, err := inst.Invoke("run", 1)
	if err != nil || int32(uint32(res[0])) != 1 {
		t.Fatalf("grow(1) = %v, %v; want 1", res, err)
	}
	if len(inst.Mem) != 2*wasm.PageSize {
		t.Fatalf("memory = %d bytes, want %d", len(inst.Mem), 2*wasm.PageSize)
	}
	// Growing past the declared max fails with -1, not a trap.
	res, err = inst.Invoke("run", 100)
	if err != nil || int32(uint32(res[0])) != -1 {
		t.Fatalf("grow(100) = %v, %v; want -1", res, err)
	}
}
