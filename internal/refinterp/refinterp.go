// Package refinterp is a small tree-walking reference interpreter over the
// decoded wasm.Module AST. It exists as the oracle of the differential-
// execution harness (internal/diff): an independent second implementation of
// the MVP execution semantics, structured the way the specification is
// written — structured control flow walked recursively, one plain switch per
// instruction, no instruction fusion, no threaded code, no precomputation
// beyond what the AST already carries. Everything here favors being
// obviously correct over being fast; the production interpreter (internal/
// interp) is the one that cheats, and this package is what catches it when a
// cheat changes meaning.
//
// The observable surface mirrors the production interpreter exactly: the
// same raw 64-bit value representation, the same trap-code wording, the same
// default resource ceilings (memory pages, table elements, call depth), so
// the harness can compare results, trap codes, and final memory/global state
// byte for byte.
package refinterp

import (
	"fmt"
	"math"
	"math/bits"

	"wasabi/internal/wasm"
)

// Value is the raw 64-bit representation shared with the production
// interpreter: i32 zero-extended, i64 as-is, floats as IEEE 754 bit patterns
// (f32 zero-extended).
type Value = uint64

// Trap is a WebAssembly runtime trap. Code uses the spec's wording — the
// same strings as the production interpreter's trap codes — so the
// differential harness can compare trap identity across implementations.
type Trap struct {
	Code string
	Info string
}

func (t *Trap) Error() string {
	if t.Info == "" {
		return "refinterp trap: " + t.Code
	}
	return "refinterp trap: " + t.Code + ": " + t.Info
}

// Trap codes (spec wording, identical to internal/interp's constants).
const (
	TrapUnreachable       = "unreachable executed"
	TrapOutOfBounds       = "out of bounds memory access"
	TrapDivByZero         = "integer divide by zero"
	TrapIntOverflow       = "integer overflow"
	TrapInvalidConversion = "invalid conversion to integer"
	TrapUndefinedElement  = "undefined element"
	TrapIndirectMismatch  = "indirect call type mismatch"
	TrapStackExhausted    = "call stack exhausted"
	TrapTableOutOfBounds  = "out of bounds table access"
	TrapHostError         = "host function error"
)

// Default resource ceilings, matching internal/interp's Config defaults so
// limit-sensitive behavior (memory.grow failure, deep recursion) diverges
// nowhere but in genuinely divergent semantics.
const (
	maxCallDepth   = 8192
	maxMemoryPages = 8192
)

// HostFunc is an embedder-provided function (refinterp's own type: the
// reference implementation shares no code with the production interpreter's
// host-call machinery).
type HostFunc struct {
	Type wasm.FuncType
	Fn   func(args []Value) ([]Value, error)
}

// Imports maps module name → field name → *HostFunc. The reference
// interpreter links host functions only; modules under differential test
// define their own memory, table, and globals.
type Imports map[string]map[string]*HostFunc

// Instance is an instantiated module. Not safe for concurrent use.
type Instance struct {
	Module  *wasm.Module
	Mem     []byte
	Table   []int64 // -1 = uninitialized slot
	Globals []Value

	hosts []*HostFunc // function index space: imports, then nil per defined func
	depth int
}

func trap(code string) { panic(&Trap{Code: code}) }

func trapf(code, format string, args ...any) {
	panic(&Trap{Code: code, Info: fmt.Sprintf(format, args...)})
}

// Instantiate links, allocates, and initializes an instance: imports, table,
// memory, globals, element and data segments, then the start function.
func Instantiate(m *wasm.Module, imports Imports) (inst *Instance, err error) {
	inst = &Instance{Module: m}
	for _, imp := range m.Imports {
		if imp.Kind != wasm.ExternFunc {
			return nil, fmt.Errorf("refinterp: unsupported import kind %d for %q.%q", imp.Kind, imp.Module, imp.Name)
		}
		hf := imports[imp.Module][imp.Name]
		if hf == nil {
			return nil, fmt.Errorf("refinterp: unresolved import %q.%q", imp.Module, imp.Name)
		}
		if int(imp.TypeIdx) >= len(m.Types) {
			return nil, fmt.Errorf("refinterp: import %q.%q type index out of range", imp.Module, imp.Name)
		}
		if !hf.Type.Equal(m.Types[imp.TypeIdx]) {
			return nil, fmt.Errorf("refinterp: import %q.%q type mismatch", imp.Module, imp.Name)
		}
		inst.hosts = append(inst.hosts, hf)
	}
	for range m.Funcs {
		inst.hosts = append(inst.hosts, nil)
	}

	for _, t := range m.Tables {
		inst.Table = make([]int64, t.Min)
		for i := range inst.Table {
			inst.Table[i] = -1
		}
	}
	for _, mem := range m.Memories {
		if mem.Min > maxMemoryPages {
			return nil, fmt.Errorf("refinterp: memory minimum %d pages exceeds limit %d", mem.Min, maxMemoryPages)
		}
		inst.Mem = make([]byte, int(mem.Min)*wasm.PageSize)
	}
	for i := range m.Globals {
		v, err := inst.evalConst(m.Globals[i].Init)
		if err != nil {
			return nil, fmt.Errorf("refinterp: global %d init: %w", i, err)
		}
		inst.Globals = append(inst.Globals, v)
	}
	for i, e := range m.Elems {
		off, err := inst.evalConst(e.Offset)
		if err != nil {
			return nil, fmt.Errorf("refinterp: elem %d offset: %w", i, err)
		}
		start := uint32(off)
		if uint64(start)+uint64(len(e.Funcs)) > uint64(len(inst.Table)) {
			return nil, fmt.Errorf("refinterp: elem segment %d out of table bounds", i)
		}
		for j, fidx := range e.Funcs {
			inst.Table[start+uint32(j)] = int64(fidx)
		}
	}
	for i, d := range m.Datas {
		off, err := inst.evalConst(d.Offset)
		if err != nil {
			return nil, fmt.Errorf("refinterp: data %d offset: %w", i, err)
		}
		start := uint32(off)
		if uint64(start)+uint64(len(d.Data)) > uint64(len(inst.Mem)) {
			return nil, fmt.Errorf("refinterp: data segment %d out of memory bounds", i)
		}
		copy(inst.Mem[start:], d.Data)
	}
	if m.Start != nil {
		if _, err := inst.InvokeIdx(*m.Start); err != nil {
			return nil, fmt.Errorf("refinterp: start function: %w", err)
		}
	}
	return inst, nil
}

func (inst *Instance) evalConst(expr []wasm.Instr) (Value, error) {
	if len(expr) != 2 || expr[1].Op != wasm.OpEnd {
		return 0, fmt.Errorf("unsupported constant expression")
	}
	in := expr[0]
	switch in.Op {
	case wasm.OpI32Const, wasm.OpI64Const, wasm.OpF32Const, wasm.OpF64Const:
		return in.ConstValue(), nil
	case wasm.OpGlobalGet:
		if int(in.Idx) >= len(inst.Globals) {
			return 0, fmt.Errorf("global index %d out of range", in.Idx)
		}
		return inst.Globals[in.Idx], nil
	}
	return 0, fmt.Errorf("non-constant instruction %s", in.Op)
}

// Invoke calls an exported function by name, converting traps into *Trap
// errors at this boundary.
func (inst *Instance) Invoke(name string, args ...Value) ([]Value, error) {
	idx, ok := inst.Module.ExportedFunc(name)
	if !ok {
		return nil, fmt.Errorf("refinterp: no exported function %q", name)
	}
	return inst.InvokeIdx(idx, args...)
}

// InvokeIdx calls the function at idx in the function index space.
func (inst *Instance) InvokeIdx(idx uint32, args ...Value) (results []Value, err error) {
	savedDepth := inst.depth
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		t, ok := r.(*Trap)
		if !ok {
			panic(r)
		}
		inst.depth = savedDepth
		results, err = nil, t
	}()
	results = inst.callFunc(idx, args)
	return results, nil
}

// callFunc is the trap-panicking internal call path (host or defined).
func (inst *Instance) callFunc(idx uint32, args []Value) []Value {
	if int(idx) >= len(inst.hosts) {
		trapf(TrapUndefinedElement, "function index %d out of range", idx)
	}
	if hf := inst.hosts[idx]; hf != nil {
		res, err := hf.Fn(args)
		if err != nil {
			if t, ok := err.(*Trap); ok {
				panic(t)
			}
			panic(&Trap{Code: "host function error", Info: err.Error()})
		}
		return res
	}
	inst.depth++
	if inst.depth > maxCallDepth {
		trap(TrapStackExhausted)
	}
	f := &inst.Module.Funcs[int(idx)-inst.Module.NumImportedFuncs()]
	sig := inst.Module.Types[f.TypeIdx]

	// Locals are the parameters followed by the declared locals, all
	// zero-initialized. Like the production interpreter, missing top-level
	// arguments read as zero and extras are ignored.
	fr := &frame{inst: inst}
	fr.locals = make([]Value, len(sig.Params)+len(f.Locals))
	copy(fr.locals, args)

	_, _ = fr.exec(f.Body, f.BrTargets, 0)
	// On fallthrough, explicit return, and br targeting the function block
	// alike, the function's results are the top values of the operand stack.
	arity := len(sig.Results)
	res := append([]Value(nil), fr.stack[len(fr.stack)-arity:]...)
	inst.depth--
	return res
}

// frame is the activation record of one call: its locals and operand stack.
type frame struct {
	inst   *Instance
	locals []Value
	stack  []Value
}

func (fr *frame) push(v Value) { fr.stack = append(fr.stack, v) }

func (fr *frame) pop() Value {
	v := fr.stack[len(fr.stack)-1]
	fr.stack = fr.stack[:len(fr.stack)-1]
	return v
}

// unwind implements the stack discipline of a branch: the top arity values
// (the label's result) survive, everything above the block's entry height is
// discarded beneath them.
func (fr *frame) unwind(base, arity int) {
	top := len(fr.stack)
	copy(fr.stack[base:], fr.stack[top-arity:top])
	fr.stack = fr.stack[:base+arity]
}

// Control-flow signals of exec. Branches to enclosing labels are the
// non-negative values (0 = innermost).
const (
	sigFall   = -1 // fell through to the matching end
	sigElse   = -2 // hit the else of the enclosing if's then-arm
	sigReturn = -3 // executed return (or br past the function block)
)

// blockArity is the result arity of a label (MVP: zero or one).
func blockArity(bt wasm.BlockType) int {
	if bt == wasm.BlockEmpty {
		return 0
	}
	return 1
}

// matchEnd scans forward from the block/loop/if instruction at pc to its
// matching end, also reporting the position of a same-depth else (-1 when
// absent). Rescanning on every execution is deliberate: no precomputed
// side tables to get wrong.
func matchEnd(body []wasm.Instr, pc int) (elsePC, endPC int) {
	depth := 0
	elsePC = -1
	for i := pc + 1; i < len(body); i++ {
		switch body[i].Op {
		case wasm.OpBlock, wasm.OpLoop, wasm.OpIf:
			depth++
		case wasm.OpElse:
			if depth == 0 {
				elsePC = i
			}
		case wasm.OpEnd:
			if depth == 0 {
				return elsePC, i
			}
			depth--
		}
	}
	panic(&Trap{Code: "host function error", Info: "refinterp: unterminated block"})
}

// exec runs body from pc until the sequence ends (the matching end or else at
// this nesting depth) or control leaves it. It returns the pc where execution
// stopped and a signal: sigFall/sigElse with the delimiter's position,
// sigReturn, or a branch depth relative to this sequence's enclosing label.
func (fr *frame) exec(body []wasm.Instr, pool []uint32, pc int) (int, int) {
	inst := fr.inst
	for {
		ins := body[pc]
		switch ins.Op {
		case wasm.OpEnd:
			return pc, sigFall
		case wasm.OpElse:
			return pc, sigElse

		case wasm.OpBlock:
			base := len(fr.stack)
			n, sig := fr.exec(body, pool, pc+1)
			switch {
			case sig == sigFall:
				pc = n + 1
			case sig == sigReturn:
				return n, sigReturn
			case sig == 0:
				fr.unwind(base, blockArity(ins.Block))
				_, endPC := matchEnd(body, pc)
				pc = endPC + 1
			default:
				return n, sig - 1
			}

		case wasm.OpLoop:
			base := len(fr.stack)
		loop:
			for {
				n, sig := fr.exec(body, pool, pc+1)
				switch {
				case sig == sigFall:
					pc = n + 1
					break loop
				case sig == sigReturn:
					return n, sigReturn
				case sig == 0:
					// A branch to a loop label re-enters the loop; its arity
					// is the loop's parameter count, zero in the MVP.
					fr.unwind(base, 0)
				default:
					return n, sig - 1
				}
			}

		case wasm.OpIf:
			cond := uint32(fr.pop())
			base := len(fr.stack)
			elsePC, endPC := matchEnd(body, pc)
			var n, sig int
			switch {
			case cond != 0:
				n, sig = fr.exec(body, pool, pc+1)
			case elsePC >= 0:
				n, sig = fr.exec(body, pool, elsePC+1)
			default:
				n, sig = endPC, sigFall
			}
			switch {
			case sig == sigFall || sig == sigElse:
				pc = endPC + 1
			case sig == sigReturn:
				return n, sigReturn
			case sig == 0:
				fr.unwind(base, blockArity(ins.Block))
				pc = endPC + 1
			default:
				return n, sig - 1
			}

		case wasm.OpBr:
			return pc, int(ins.Idx)
		case wasm.OpBrIf:
			if uint32(fr.pop()) != 0 {
				return pc, int(ins.Idx)
			}
			pc++
		case wasm.OpBrTable:
			i := uint32(fr.pop())
			targets := ins.BrTargets(pool)
			if int(i) < len(targets) {
				return pc, int(targets[i])
			}
			return pc, int(ins.Idx)
		case wasm.OpReturn:
			return pc, sigReturn

		case wasm.OpUnreachable:
			trap(TrapUnreachable)
		case wasm.OpNop:
			pc++

		case wasm.OpCall:
			fr.call(ins.Idx, inst.funcParams(ins.Idx))
			pc++
		case wasm.OpCallIndirect:
			ti := uint32(fr.pop())
			if inst.Table == nil || int(ti) >= len(inst.Table) {
				trapf(TrapTableOutOfBounds, "table index %d", ti)
			}
			fidx := inst.Table[ti]
			if fidx < 0 || int(fidx) >= len(inst.hosts) {
				trapf(TrapUndefinedElement, "table slot %d uninitialized", ti)
			}
			want := inst.Module.Types[ins.Idx]
			have := inst.funcType(uint32(fidx))
			if !want.Equal(have) {
				trapf(TrapIndirectMismatch, "want %s, have %s", want, have)
			}
			fr.call(uint32(fidx), len(want.Params))
			pc++

		case wasm.OpDrop:
			fr.pop()
			pc++
		case wasm.OpSelect:
			cond := uint32(fr.pop())
			b := fr.pop()
			a := fr.pop()
			if cond != 0 {
				fr.push(a)
			} else {
				fr.push(b)
			}
			pc++

		case wasm.OpLocalGet:
			fr.push(fr.locals[ins.Idx])
			pc++
		case wasm.OpLocalSet:
			fr.locals[ins.Idx] = fr.pop()
			pc++
		case wasm.OpLocalTee:
			fr.locals[ins.Idx] = fr.stack[len(fr.stack)-1]
			pc++
		case wasm.OpGlobalGet:
			fr.push(inst.Globals[ins.Idx])
			pc++
		case wasm.OpGlobalSet:
			inst.Globals[ins.Idx] = fr.pop()
			pc++

		case wasm.OpMemorySize:
			fr.push(uint64(uint32(len(inst.Mem) / wasm.PageSize)))
			pc++
		case wasm.OpMemoryGrow:
			delta := uint32(fr.pop())
			fr.push(uint64(uint32(inst.memGrow(delta))))
			pc++

		case wasm.OpI32Const, wasm.OpI64Const, wasm.OpF32Const, wasm.OpF64Const:
			fr.push(ins.ConstValue())
			pc++

		case wasm.OpMiscPrefix:
			switch sub := ins.Idx; sub {
			case wasm.MiscMemoryCopy:
				n := uint32(fr.pop())
				src := uint32(fr.pop())
				dst := uint32(fr.pop())
				if uint64(dst)+uint64(n) > uint64(len(inst.Mem)) || uint64(src)+uint64(n) > uint64(len(inst.Mem)) {
					trapf(TrapOutOfBounds, "memory.copy dst %d src %d len %d exceeds memory size %d", dst, src, n, len(inst.Mem))
				}
				copy(inst.Mem[dst:uint64(dst)+uint64(n)], inst.Mem[src:uint64(src)+uint64(n)])
			case wasm.MiscMemoryFill:
				n := uint32(fr.pop())
				val := byte(fr.pop())
				dst := uint32(fr.pop())
				if uint64(dst)+uint64(n) > uint64(len(inst.Mem)) {
					trapf(TrapOutOfBounds, "memory.fill dst %d len %d exceeds memory size %d", dst, n, len(inst.Mem))
				}
				b := inst.Mem[dst : uint64(dst)+uint64(n)]
				for i := range b {
					b[i] = val
				}
			default:
				if sub <= wasm.MiscI64TruncSatF64U {
					fr.push(refTruncSat(sub, fr.pop()))
				} else {
					trapf("host function error", "refinterp: unhandled 0xfc subopcode %d", sub)
				}
			}
			pc++

		default:
			switch {
			case ins.Op.IsLoad():
				addr := uint32(fr.pop())
				fr.push(inst.load(ins.Op, addr, ins.MemOffset()))
			case ins.Op.IsStore():
				v := fr.pop()
				addr := uint32(fr.pop())
				inst.store(ins.Op, addr, ins.MemOffset(), v)
			case ins.Op.IsUnary():
				fr.push(refUnop(ins.Op, fr.pop()))
			case ins.Op.IsBinary():
				b := fr.pop()
				a := fr.pop()
				fr.push(refBinop(ins.Op, a, b))
			default:
				trapf("host function error", "refinterp: unhandled opcode %s", ins.Op)
			}
			pc++
		}
	}
}

// call pops np arguments, invokes the callee, and pushes its results.
func (fr *frame) call(idx uint32, np int) {
	args := fr.stack[len(fr.stack)-np:]
	res := fr.inst.callFunc(idx, args)
	fr.stack = fr.stack[:len(fr.stack)-np]
	fr.stack = append(fr.stack, res...)
}

// funcParams returns the parameter count of the function at idx.
func (inst *Instance) funcParams(idx uint32) int {
	return len(inst.funcType(idx).Params)
}

func (inst *Instance) funcType(idx uint32) wasm.FuncType {
	ft, err := inst.Module.FuncType(idx)
	if err != nil {
		trapf(TrapUndefinedElement, "%v", err)
	}
	return ft
}

// memGrow implements memory.grow under the same ceiling rules as the
// production interpreter's default configuration.
func (inst *Instance) memGrow(delta uint32) int32 {
	old := uint32(len(inst.Mem) / wasm.PageSize)
	newPages := uint64(old) + uint64(delta)
	limit := uint64(maxMemoryPages)
	if len(inst.Module.Memories) > 0 {
		if l := inst.Module.Memories[0]; l.HasMax && uint64(l.Max) < limit {
			limit = uint64(l.Max)
		}
	}
	if newPages > limit {
		return -1
	}
	if delta > 0 {
		inst.Mem = append(inst.Mem, make([]byte, int(delta)*wasm.PageSize)...)
	}
	return int32(old)
}

// span bounds-checks the access [addr+offset, addr+offset+size).
func (inst *Instance) span(addr, offset, size uint32) []byte {
	ea := uint64(addr) + uint64(offset)
	if ea+uint64(size) > uint64(len(inst.Mem)) {
		trapf(TrapOutOfBounds, "address %d+%d size %d exceeds memory size %d", addr, offset, size, len(inst.Mem))
	}
	return inst.Mem[ea : ea+uint64(size)]
}

func leLoad(b []byte) uint64 {
	var v uint64
	for i := len(b) - 1; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

func leStore(b []byte, v uint64) {
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
}

func (inst *Instance) load(op wasm.Opcode, addr, offset uint32) Value {
	_, size := op.LoadStoreType()
	raw := leLoad(inst.span(addr, offset, size))
	switch op {
	case wasm.OpI32Load8S:
		return uint64(uint32(int32(int8(raw))))
	case wasm.OpI32Load16S:
		return uint64(uint32(int32(int16(raw))))
	case wasm.OpI64Load8S:
		return uint64(int64(int8(raw)))
	case wasm.OpI64Load16S:
		return uint64(int64(int16(raw)))
	case wasm.OpI64Load32S:
		return uint64(int64(int32(raw)))
	}
	return raw // full-width and zero-extending loads
}

func (inst *Instance) store(op wasm.Opcode, addr, offset uint32, v Value) {
	_, size := op.LoadStoreType()
	leStore(inst.span(addr, offset, size), v)
}

// The numeric semantics. Independent code from internal/interp's binop/unop,
// written instruction by instruction from the spec; agreement of the two is
// exactly what the differential harness tests.

func b2i(b bool) Value {
	if b {
		return 1
	}
	return 0
}

func f32(v Value) float32  { return math.Float32frombits(uint32(v)) }
func f64(v Value) float64  { return math.Float64frombits(v) }
func f32v(f float32) Value { return uint64(math.Float32bits(f)) }
func f64v(f float64) Value { return math.Float64bits(f) }

// refMin/refMax implement the spec's NaN-propagating min/max with -0 < +0.
func refMin(a, b float64) float64 {
	switch {
	case math.IsNaN(a) || math.IsNaN(b):
		return math.NaN()
	case a == 0 && b == 0:
		if math.Signbit(a) {
			return a
		}
		return b
	case a < b:
		return a
	default:
		return b
	}
}

func refMax(a, b float64) float64 {
	switch {
	case math.IsNaN(a) || math.IsNaN(b):
		return math.NaN()
	case a == 0 && b == 0:
		if !math.Signbit(a) {
			return a
		}
		return b
	case a > b:
		return a
	default:
		return b
	}
}

func truncI32(f float64) Value {
	if math.IsNaN(f) {
		trap(TrapInvalidConversion)
	}
	t := math.Trunc(f)
	if t < -2147483648 || t > 2147483647 {
		trap(TrapIntOverflow)
	}
	return uint64(uint32(int32(t)))
}

func truncU32(f float64) Value {
	if math.IsNaN(f) {
		trap(TrapInvalidConversion)
	}
	t := math.Trunc(f)
	if t < 0 || t > 4294967295 {
		trap(TrapIntOverflow)
	}
	return uint64(uint32(t))
}

func truncI64(f float64) Value {
	if math.IsNaN(f) {
		trap(TrapInvalidConversion)
	}
	t := math.Trunc(f)
	// 2^63 is exactly representable; the valid range is [-2^63, 2^63).
	if t < -9223372036854775808 || t >= 9223372036854775808 {
		trap(TrapIntOverflow)
	}
	return uint64(int64(t))
}

func truncU64(f float64) Value {
	if math.IsNaN(f) {
		trap(TrapInvalidConversion)
	}
	t := math.Trunc(f)
	if t < 0 || t >= 18446744073709551616 {
		trap(TrapIntOverflow)
	}
	return uint64(t)
}

// refTruncSat implements the saturating float→int truncations (0xFC
// subopcodes 0–7): NaN produces 0 and out-of-range values clamp to the
// target type's bounds instead of trapping.
func refTruncSat(sub uint32, v Value) Value {
	sat := func(f, lo, hi float64) float64 {
		if math.IsNaN(f) {
			return 0
		}
		t := math.Trunc(f)
		if t < lo {
			return lo
		}
		if t > hi {
			return hi
		}
		return t
	}
	switch sub {
	case wasm.MiscI32TruncSatF32S:
		return uint64(uint32(int32(sat(float64(f32(v)), -2147483648, 2147483647))))
	case wasm.MiscI32TruncSatF32U:
		return uint64(uint32(sat(float64(f32(v)), 0, 4294967295)))
	case wasm.MiscI32TruncSatF64S:
		return uint64(uint32(int32(sat(f64(v), -2147483648, 2147483647))))
	case wasm.MiscI32TruncSatF64U:
		return uint64(uint32(sat(f64(v), 0, 4294967295)))
	case wasm.MiscI64TruncSatF32S:
		return satI64(float64(f32(v)))
	case wasm.MiscI64TruncSatF32U:
		return satU64(float64(f32(v)))
	case wasm.MiscI64TruncSatF64S:
		return satI64(f64(v))
	case wasm.MiscI64TruncSatF64U:
		return satU64(f64(v))
	}
	trapf("host function error", "refinterp: unhandled trunc_sat subopcode %d", sub)
	return 0
}

// satI64/satU64 clamp at the 64-bit bounds, which are not exactly
// representable as float64 maxima — the comparisons use the representable
// boundary 2^63 (resp. 2^64) directly.
func satI64(f float64) Value {
	if math.IsNaN(f) {
		return 0
	}
	t := math.Trunc(f)
	switch {
	case t < -9223372036854775808:
		return 0x8000000000000000 // int64 min, as its raw bits
	case t >= 9223372036854775808:
		return uint64(int64(math.MaxInt64))
	}
	return uint64(int64(t))
}

func satU64(f float64) Value {
	if math.IsNaN(f) {
		return 0
	}
	t := math.Trunc(f)
	switch {
	case t < 0:
		return 0
	case t >= 18446744073709551616:
		return uint64(math.MaxUint64)
	}
	return uint64(t)
}

func refBinop(op wasm.Opcode, a, b Value) Value {
	switch op {
	case wasm.OpI32Eq:
		return b2i(uint32(a) == uint32(b))
	case wasm.OpI32Ne:
		return b2i(uint32(a) != uint32(b))
	case wasm.OpI32LtS:
		return b2i(int32(a) < int32(b))
	case wasm.OpI32LtU:
		return b2i(uint32(a) < uint32(b))
	case wasm.OpI32GtS:
		return b2i(int32(a) > int32(b))
	case wasm.OpI32GtU:
		return b2i(uint32(a) > uint32(b))
	case wasm.OpI32LeS:
		return b2i(int32(a) <= int32(b))
	case wasm.OpI32LeU:
		return b2i(uint32(a) <= uint32(b))
	case wasm.OpI32GeS:
		return b2i(int32(a) >= int32(b))
	case wasm.OpI32GeU:
		return b2i(uint32(a) >= uint32(b))

	case wasm.OpI64Eq:
		return b2i(a == b)
	case wasm.OpI64Ne:
		return b2i(a != b)
	case wasm.OpI64LtS:
		return b2i(int64(a) < int64(b))
	case wasm.OpI64LtU:
		return b2i(a < b)
	case wasm.OpI64GtS:
		return b2i(int64(a) > int64(b))
	case wasm.OpI64GtU:
		return b2i(a > b)
	case wasm.OpI64LeS:
		return b2i(int64(a) <= int64(b))
	case wasm.OpI64LeU:
		return b2i(a <= b)
	case wasm.OpI64GeS:
		return b2i(int64(a) >= int64(b))
	case wasm.OpI64GeU:
		return b2i(a >= b)

	case wasm.OpF32Eq:
		return b2i(f32(a) == f32(b))
	case wasm.OpF32Ne:
		return b2i(f32(a) != f32(b))
	case wasm.OpF32Lt:
		return b2i(f32(a) < f32(b))
	case wasm.OpF32Gt:
		return b2i(f32(a) > f32(b))
	case wasm.OpF32Le:
		return b2i(f32(a) <= f32(b))
	case wasm.OpF32Ge:
		return b2i(f32(a) >= f32(b))

	case wasm.OpF64Eq:
		return b2i(f64(a) == f64(b))
	case wasm.OpF64Ne:
		return b2i(f64(a) != f64(b))
	case wasm.OpF64Lt:
		return b2i(f64(a) < f64(b))
	case wasm.OpF64Gt:
		return b2i(f64(a) > f64(b))
	case wasm.OpF64Le:
		return b2i(f64(a) <= f64(b))
	case wasm.OpF64Ge:
		return b2i(f64(a) >= f64(b))

	case wasm.OpI32Add:
		return uint64(uint32(a) + uint32(b))
	case wasm.OpI32Sub:
		return uint64(uint32(a) - uint32(b))
	case wasm.OpI32Mul:
		return uint64(uint32(a) * uint32(b))
	case wasm.OpI32DivS:
		x, y := int32(a), int32(b)
		if y == 0 {
			trap(TrapDivByZero)
		}
		if x == math.MinInt32 && y == -1 {
			trap(TrapIntOverflow)
		}
		return uint64(uint32(x / y))
	case wasm.OpI32DivU:
		if uint32(b) == 0 {
			trap(TrapDivByZero)
		}
		return uint64(uint32(a) / uint32(b))
	case wasm.OpI32RemS:
		x, y := int32(a), int32(b)
		if y == 0 {
			trap(TrapDivByZero)
		}
		if x == math.MinInt32 && y == -1 {
			return 0
		}
		return uint64(uint32(x % y))
	case wasm.OpI32RemU:
		if uint32(b) == 0 {
			trap(TrapDivByZero)
		}
		return uint64(uint32(a) % uint32(b))
	case wasm.OpI32And:
		return uint64(uint32(a) & uint32(b))
	case wasm.OpI32Or:
		return uint64(uint32(a) | uint32(b))
	case wasm.OpI32Xor:
		return uint64(uint32(a) ^ uint32(b))
	case wasm.OpI32Shl:
		return uint64(uint32(a) << (uint32(b) & 31))
	case wasm.OpI32ShrS:
		return uint64(uint32(int32(a) >> (uint32(b) & 31)))
	case wasm.OpI32ShrU:
		return uint64(uint32(a) >> (uint32(b) & 31))
	case wasm.OpI32Rotl:
		return uint64(bits.RotateLeft32(uint32(a), int(uint32(b)&31)))
	case wasm.OpI32Rotr:
		return uint64(bits.RotateLeft32(uint32(a), -int(uint32(b)&31)))

	case wasm.OpI64Add:
		return a + b
	case wasm.OpI64Sub:
		return a - b
	case wasm.OpI64Mul:
		return a * b
	case wasm.OpI64DivS:
		x, y := int64(a), int64(b)
		if y == 0 {
			trap(TrapDivByZero)
		}
		if x == math.MinInt64 && y == -1 {
			trap(TrapIntOverflow)
		}
		return uint64(x / y)
	case wasm.OpI64DivU:
		if b == 0 {
			trap(TrapDivByZero)
		}
		return a / b
	case wasm.OpI64RemS:
		x, y := int64(a), int64(b)
		if y == 0 {
			trap(TrapDivByZero)
		}
		if x == math.MinInt64 && y == -1 {
			return 0
		}
		return uint64(x % y)
	case wasm.OpI64RemU:
		if b == 0 {
			trap(TrapDivByZero)
		}
		return a % b
	case wasm.OpI64And:
		return a & b
	case wasm.OpI64Or:
		return a | b
	case wasm.OpI64Xor:
		return a ^ b
	case wasm.OpI64Shl:
		return a << (b & 63)
	case wasm.OpI64ShrS:
		return uint64(int64(a) >> (b & 63))
	case wasm.OpI64ShrU:
		return a >> (b & 63)
	case wasm.OpI64Rotl:
		return bits.RotateLeft64(a, int(b&63))
	case wasm.OpI64Rotr:
		return bits.RotateLeft64(a, -int(b&63))

	case wasm.OpF32Add:
		return f32v(f32(a) + f32(b))
	case wasm.OpF32Sub:
		return f32v(f32(a) - f32(b))
	case wasm.OpF32Mul:
		return f32v(f32(a) * f32(b))
	case wasm.OpF32Div:
		return f32v(f32(a) / f32(b))
	case wasm.OpF32Min:
		return f32v(float32(refMin(float64(f32(a)), float64(f32(b)))))
	case wasm.OpF32Max:
		return f32v(float32(refMax(float64(f32(a)), float64(f32(b)))))
	case wasm.OpF32Copysign:
		return f32v(float32(math.Copysign(float64(f32(a)), float64(f32(b)))))

	case wasm.OpF64Add:
		return f64v(f64(a) + f64(b))
	case wasm.OpF64Sub:
		return f64v(f64(a) - f64(b))
	case wasm.OpF64Mul:
		return f64v(f64(a) * f64(b))
	case wasm.OpF64Div:
		return f64v(f64(a) / f64(b))
	case wasm.OpF64Min:
		return f64v(refMin(f64(a), f64(b)))
	case wasm.OpF64Max:
		return f64v(refMax(f64(a), f64(b)))
	case wasm.OpF64Copysign:
		return f64v(math.Copysign(f64(a), f64(b)))
	}
	trapf("host function error", "refinterp: unhandled binary opcode %s", op)
	return 0
}

func refUnop(op wasm.Opcode, v Value) Value {
	switch op {
	case wasm.OpI32Eqz:
		return b2i(uint32(v) == 0)
	case wasm.OpI64Eqz:
		return b2i(v == 0)

	case wasm.OpI32Clz:
		return uint64(uint32(bits.LeadingZeros32(uint32(v))))
	case wasm.OpI32Ctz:
		return uint64(uint32(bits.TrailingZeros32(uint32(v))))
	case wasm.OpI32Popcnt:
		return uint64(uint32(bits.OnesCount32(uint32(v))))
	case wasm.OpI64Clz:
		return uint64(bits.LeadingZeros64(v))
	case wasm.OpI64Ctz:
		return uint64(bits.TrailingZeros64(v))
	case wasm.OpI64Popcnt:
		return uint64(bits.OnesCount64(v))

	case wasm.OpF32Abs:
		return f32v(float32(math.Abs(float64(f32(v)))))
	case wasm.OpF32Neg:
		return v ^ 0x80000000
	case wasm.OpF32Ceil:
		return f32v(float32(math.Ceil(float64(f32(v)))))
	case wasm.OpF32Floor:
		return f32v(float32(math.Floor(float64(f32(v)))))
	case wasm.OpF32Trunc:
		return f32v(float32(math.Trunc(float64(f32(v)))))
	case wasm.OpF32Nearest:
		return f32v(float32(math.RoundToEven(float64(f32(v)))))
	case wasm.OpF32Sqrt:
		return f32v(float32(math.Sqrt(float64(f32(v)))))

	case wasm.OpF64Abs:
		return f64v(math.Abs(f64(v)))
	case wasm.OpF64Neg:
		return v ^ 0x8000000000000000
	case wasm.OpF64Ceil:
		return f64v(math.Ceil(f64(v)))
	case wasm.OpF64Floor:
		return f64v(math.Floor(f64(v)))
	case wasm.OpF64Trunc:
		return f64v(math.Trunc(f64(v)))
	case wasm.OpF64Nearest:
		return f64v(math.RoundToEven(f64(v)))
	case wasm.OpF64Sqrt:
		return f64v(math.Sqrt(f64(v)))

	case wasm.OpI32WrapI64:
		return uint64(uint32(v))
	case wasm.OpI32TruncF32S:
		return truncI32(float64(f32(v)))
	case wasm.OpI32TruncF32U:
		return truncU32(float64(f32(v)))
	case wasm.OpI32TruncF64S:
		return truncI32(f64(v))
	case wasm.OpI32TruncF64U:
		return truncU32(f64(v))
	case wasm.OpI64ExtendI32S:
		return uint64(int64(int32(v)))
	case wasm.OpI64ExtendI32U:
		return uint64(uint32(v))
	case wasm.OpI64TruncF32S:
		return truncI64(float64(f32(v)))
	case wasm.OpI64TruncF32U:
		return truncU64(float64(f32(v)))
	case wasm.OpI64TruncF64S:
		return truncI64(f64(v))
	case wasm.OpI64TruncF64U:
		return truncU64(f64(v))
	case wasm.OpF32ConvertI32S:
		return f32v(float32(int32(v)))
	case wasm.OpF32ConvertI32U:
		return f32v(float32(uint32(v)))
	case wasm.OpF32ConvertI64S:
		return f32v(float32(int64(v)))
	case wasm.OpF32ConvertI64U:
		return f32v(float32(v))
	case wasm.OpF32DemoteF64:
		return f32v(float32(f64(v)))
	case wasm.OpF64ConvertI32S:
		return f64v(float64(int32(v)))
	case wasm.OpF64ConvertI32U:
		return f64v(float64(uint32(v)))
	case wasm.OpF64ConvertI64S:
		return f64v(float64(int64(v)))
	case wasm.OpF64ConvertI64U:
		return f64v(float64(v))
	case wasm.OpF64PromoteF32:
		return f64v(float64(f32(v)))
	case wasm.OpI32ReinterpretF32, wasm.OpI64ReinterpretF64,
		wasm.OpF32ReinterpretI32, wasm.OpF64ReinterpretI64:
		return v

	case wasm.OpI32Extend8S:
		return uint64(uint32(int32(int8(v))))
	case wasm.OpI32Extend16S:
		return uint64(uint32(int32(int16(v))))
	case wasm.OpI64Extend8S:
		return uint64(int64(int8(v)))
	case wasm.OpI64Extend16S:
		return uint64(int64(int16(v)))
	case wasm.OpI64Extend32S:
		return uint64(int64(int32(v)))
	}
	trapf("host function error", "refinterp: unhandled unary opcode %s", op)
	return 0
}
