package borrowcheck

import (
	"go/parser"
	"go/token"
	"os"
	"strings"
	"testing"
)

// TestBrokenFixture parses the deliberately-broken testdata file and checks
// the linter flags exactly the lines marked BAD — no misses, no extras.
func TestBrokenFixture(t *testing.T) {
	const path = "testdata/broken.go.src"
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path, src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}

	want := make(map[int]bool)
	for i, line := range strings.Split(string(src), "\n") {
		if strings.Contains(line, "// BAD") {
			want[i+1] = true
		}
	}
	if len(want) == 0 {
		t.Fatal("fixture has no BAD markers")
	}

	got := make(map[int]bool)
	for _, d := range CheckFile(fset, file) {
		if got[d.Pos.Line] {
			continue
		}
		got[d.Pos.Line] = true
		if !want[d.Pos.Line] {
			t.Errorf("unexpected finding at line %d: %s", d.Pos.Line, d.Message)
		}
	}
	for line := range want {
		if !got[line] {
			t.Errorf("line %d marked BAD but not flagged", line)
		}
	}
}

// TestCleanSources runs the linter over this package's own sources: the
// checker must not flag its host repository (repo-invariant lint).
func TestCleanSources(t *testing.T) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "borrowcheck.go", nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	if diags := CheckFile(fset, file); len(diags) != 0 {
		t.Errorf("self-check found %d findings: %v", len(diags), diags)
	}
}
