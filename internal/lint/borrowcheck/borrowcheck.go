// Package borrowcheck is a repo-invariant linter for Wasabi's buffer
// ownership rule: hook callbacks and stream consumers receive BORROWED
// slices — []analysis.Value argument/result vectors, []analysis.BranchTarget
// br_table target tables, []analysis.Event batches — that are only valid
// for the duration of the callback (the buffers are pooled and recycled by
// the runtime). Retaining such a slice past the callback aliases memory the
// next event will overwrite.
//
// The check is purely syntactic (go/ast, no type information), so it can
// run as a standalone `go vet -vettool` binary without golang.org/x/tools.
// A function is in scope when it declares a parameter whose type is a slice
// of Value, BranchTarget, or Event (package-qualified or not). Within such
// a function the check flags, for every borrowed parameter that is never
// reassigned to a fresh copy:
//
//   - stores through a selector, index, or dereference (a.f = vals,
//     m[k] = vals, *p = vals): the slice escapes to heap-visible state;
//   - returning the slice;
//   - sending the slice on a channel;
//   - capturing the slice in a `go` statement's function literal or
//     arguments: the goroutine outlives the callback.
//
// Reassigning the parameter itself (vals = append(nil-slice, vals...)) is
// treated as sanitizing: the name no longer aliases the pooled buffer, and
// the function is not reported for it. Copying elements (vals[i]) is always
// fine — records are plain values. A finding can be suppressed with a
// `//borrowcheck:ignore` comment on the offending line.
package borrowcheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// BorrowedElemTypes are the element type names whose slices are borrowed.
var BorrowedElemTypes = map[string]bool{
	"Value":        true,
	"BranchTarget": true,
	"Event":        true,
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Position
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s", d.Pos, d.Message)
}

// CheckFile runs the check over one parsed file.
func CheckFile(fset *token.FileSet, file *ast.File) []Diagnostic {
	ignored := ignoredLines(fset, file)
	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		p := fset.Position(pos)
		if ignored[p.Line] {
			return
		}
		diags = append(diags, Diagnostic{Pos: p, Message: fmt.Sprintf(format, args...)})
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				checkFunc(fn.Type, fn.Body, report)
			}
		case *ast.FuncLit:
			checkFunc(fn.Type, fn.Body, report)
		}
		return true
	})
	return diags
}

// ignoredLines collects the lines carrying a //borrowcheck:ignore comment.
func ignoredLines(fset *token.FileSet, file *ast.File) map[int]bool {
	lines := make(map[int]bool)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, "//borrowcheck:ignore") {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// borrowedSliceElem returns the element type name when t is a slice of a
// borrowed record type, "" otherwise.
func borrowedSliceElem(t ast.Expr) string {
	arr, ok := t.(*ast.ArrayType)
	if !ok || arr.Len != nil {
		return ""
	}
	var name string
	switch e := arr.Elt.(type) {
	case *ast.Ident:
		name = e.Name
	case *ast.SelectorExpr:
		name = e.Sel.Name
	}
	if BorrowedElemTypes[name] {
		return name
	}
	return ""
}

// checkFunc checks one function body given its signature.
func checkFunc(sig *ast.FuncType, body *ast.BlockStmt, report func(token.Pos, string, ...any)) {
	borrowed := make(map[string]string) // param name -> element type
	if sig.Params != nil {
		for _, field := range sig.Params.List {
			elem := borrowedSliceElem(field.Type)
			if elem == "" {
				continue
			}
			for _, name := range field.Names {
				if name.Name != "_" {
					borrowed[name.Name] = elem
				}
			}
		}
	}
	if len(borrowed) == 0 {
		return
	}

	// Pass 1: names reassigned to something that does not alias a borrowed
	// buffer are sanitized — the author made a copy.
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || borrowed[id.Name] == "" {
				continue
			}
			if i < len(as.Rhs) && aliasedParam(as.Rhs[i], borrowed) == "" {
				delete(borrowed, id.Name)
			}
		}
		return true
	})
	if len(borrowed) == 0 {
		return
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.GoStmt:
			// Anything of the borrowed buffer reaching a goroutine outlives
			// the callback.
			ast.Inspect(s.Call, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && borrowed[id.Name] != "" {
					report(id.Pos(), "borrowed %s buffer %q captured by goroutine; copy it first (buffers are recycled after the callback)", borrowed[id.Name], id.Name)
				}
				return true
			})
			return false
		case *ast.AssignStmt:
			for i := range s.Rhs {
				name := aliasedParam(s.Rhs[i], borrowed)
				if name == "" {
					name = appendedParam(s.Rhs[i], borrowed)
				}
				if name == "" {
					continue
				}
				if i < len(s.Lhs) && escapes(s.Lhs[i]) {
					report(s.Rhs[i].Pos(), "borrowed %s buffer %q stored beyond the callback; copy it first (buffers are recycled after the callback)", borrowed[name], name)
				}
			}
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				if name := aliasedParam(r, borrowed); name != "" {
					report(r.Pos(), "borrowed %s buffer %q returned from the callback; copy it first (buffers are recycled after the callback)", borrowed[name], name)
				}
			}
		case *ast.SendStmt:
			if name := aliasedParam(s.Value, borrowed); name != "" {
				report(s.Value.Pos(), "borrowed %s buffer %q sent on a channel; copy it first (buffers are recycled after the callback)", borrowed[name], name)
			}
		}
		return true
	})
}

// aliasedParam reports the borrowed parameter an expression aliases: the
// bare name, a re-slice of it (vals[a:b]), or a parenthesization. Element
// reads (vals[i]) are value copies and do not alias.
func aliasedParam(e ast.Expr, borrowed map[string]string) string {
	switch x := e.(type) {
	case *ast.Ident:
		if borrowed[x.Name] != "" {
			return x.Name
		}
	case *ast.ParenExpr:
		return aliasedParam(x.X, borrowed)
	case *ast.SliceExpr:
		return aliasedParam(x.X, borrowed)
	}
	return ""
}

// appendedParam reports a borrowed parameter appended AS AN ELEMENT into
// another slice (append(r.batches, batch)): the stored slice header still
// aliases the pooled buffer. Spreading with ... copies elements and is fine.
func appendedParam(e ast.Expr, borrowed map[string]string) string {
	call, ok := e.(*ast.CallExpr)
	if !ok || call.Ellipsis.IsValid() {
		return ""
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
		return ""
	}
	if len(call.Args) < 2 {
		return ""
	}
	for _, arg := range call.Args[1:] {
		if name := aliasedParam(arg, borrowed); name != "" {
			return name
		}
	}
	return ""
}

// escapes reports whether an assignment target is heap-visible: a field,
// map/slice element, or pointer dereference. Plain local identifiers are
// not escapes by themselves (further aliasing through them is out of this
// checker's syntactic scope).
func escapes(lhs ast.Expr) bool {
	switch lhs.(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}
