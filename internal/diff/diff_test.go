package diff

import (
	"os"
	"strconv"
	"testing"

	"wasabi/internal/polybench"
	"wasabi/internal/spectest"
	"wasabi/internal/wasmgen"
)

// stdArgs are the entry arguments every generated module is probed with:
// zero, one, all-bits, and the sign bit — the corners that flush out
// sign/zero-extension and wraparound disagreements.
var stdArgs = []uint64{0, 1, 0xFFFFFFFF, 1 << 31}

// genInvocations builds the standard invocation list for a generated module.
func genInvocations() []Invocation {
	invs := make([]Invocation, 0, len(stdArgs))
	for _, a := range stdArgs {
		invs = append(invs, Invocation{Entry: wasmgen.Entry, Args: []uint64{a}})
	}
	return invs
}

// TestSpectestMatrix runs the whole spectest corpus — expected outputs AND
// expected traps — through the reference and every production config.
func TestSpectestMatrix(t *testing.T) {
	for _, c := range spectest.Corpus() {
		t.Run(c.Name, func(t *testing.T) {
			var invs []Invocation
			for _, in := range sortedInputs(c) {
				invs = append(invs, Invocation{Entry: "run", Args: []uint64{uint64(uint32(in))}})
			}
			for _, in := range c.TrapsOn {
				invs = append(invs, Invocation{Entry: "run", Args: []uint64{uint64(uint32(in))}})
			}
			rep, err := Run(c.Module(), Options{Invocations: invs})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.OK() {
				t.Fatalf("divergence:\n%s", rep)
			}
		})
	}
}

func sortedInputs(c spectest.Case) []int32 {
	ins := make([]int32, 0, len(c.IO))
	for in := range c.IO {
		ins = append(ins, in)
	}
	for i := 0; i < len(ins); i++ {
		for j := i + 1; j < len(ins); j++ {
			if ins[j] < ins[i] {
				ins[i], ins[j] = ins[j], ins[i]
			}
		}
	}
	return ins
}

// TestPolybenchMatrix runs every Fig 9 kernel (small problem size) through
// the matrix, with env.print_f64 linked and folded into the digest — the
// paper's own faithfulness oracle for these binaries.
func TestPolybenchMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, k := range polybench.Kernels() {
		t.Run(k.Name, func(t *testing.T) {
			rep, err := Run(k.Module(4), Options{
				Invocations: []Invocation{{Entry: "kernel"}},
				PrintF64:    true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.OK() {
				t.Fatalf("divergence:\n%s", rep)
			}
		})
	}
}

// TestGeneratedMatrix runs the seeded generated corpus through the matrix.
// The corpus size defaults small for the ordinary test run; CI's diff-matrix
// job raises it past 1000 via WASABI_DIFF_N.
func TestGeneratedMatrix(t *testing.T) {
	n := 50
	if s := os.Getenv("WASABI_DIFF_N"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("bad WASABI_DIFF_N %q: %v", s, err)
		}
		n = v
	}
	if testing.Short() {
		n = 10
	}
	invs := genInvocations()
	for seed := 0; seed < n; seed++ {
		rep, err := Run(wasmgen.Module(uint64(seed)), Options{Invocations: invs})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !rep.OK() {
			t.Fatalf("seed %d: divergence:\n%s", seed, rep)
		}
	}
}

// TestReportShape pins the report surface the CLI prints: per-config
// verdicts in matrix order, OK only when every config agreed.
func TestReportShape(t *testing.T) {
	rep, err := Run(spectest.Corpus()[0].Module(), Options{
		Invocations: []Invocation{{Entry: "run", Args: []uint64{1}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Configs) != len(AllConfigs()) {
		t.Fatalf("got %d config verdicts, want %d", len(rep.Configs), len(AllConfigs()))
	}
	for i, v := range rep.Configs {
		if v.Name != AllConfigs()[i] {
			t.Fatalf("config %d = %q, want %q", i, v.Name, AllConfigs()[i])
		}
	}
	if !rep.OK() {
		t.Fatalf("unexpected divergence:\n%s", rep)
	}
}

// TestConfigSubset pins Options.Configs filtering (the CLI's -diff mode and
// targeted debugging both rely on it).
func TestConfigSubset(t *testing.T) {
	rep, err := Run(spectest.Corpus()[0].Module(), Options{
		Invocations: []Invocation{{Entry: "run", Args: []uint64{0}}},
		Configs:     []string{"plain"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Configs) != 1 || rep.Configs[0].Name != "plain" {
		t.Fatalf("got %+v, want single plain verdict", rep.Configs)
	}
	if _, err := Run(spectest.Corpus()[0].Module(), Options{
		Invocations: []Invocation{{Entry: "run"}},
		Configs:     []string{"warp-speed"},
	}); err == nil {
		t.Fatal("want error for unknown config name")
	}
}

// FuzzDifferential is the continuous-fuzzing face of the harness: the fuzzer
// explores (seed, argument) space, and any divergence between the reference
// and the matrix is a crash.
func FuzzDifferential(f *testing.F) {
	for seed := uint64(0); seed < 8; seed++ {
		f.Add(seed, uint32(0))
		f.Add(seed, uint32(1<<31))
	}
	f.Fuzz(func(t *testing.T, seed uint64, arg uint32) {
		rep, err := Run(wasmgen.Module(seed), Options{
			Invocations: []Invocation{{Entry: wasmgen.Entry, Args: []uint64{uint64(arg)}}},
		})
		if err != nil {
			t.Fatalf("seed %d arg %d: %v", seed, arg, err)
		}
		if !rep.OK() {
			t.Fatalf("seed %d arg %d: divergence:\n%s", seed, arg, rep)
		}
	})
}
