package diff

import "wasabi"

// nopHooks implements every analysis callback as a no-op, so the hooked
// configurations exercise the full trampoline dispatch path (argument
// marshalling, borrowed value buffers, location decoding) without the
// analysis itself perturbing anything.
type nopHooks struct{}

func (nopHooks) Nop(wasabi.Location)                             {}
func (nopHooks) Unreachable(wasabi.Location)                     {}
func (nopHooks) If(wasabi.Location, bool)                        {}
func (nopHooks) Br(wasabi.Location, wasabi.BranchTarget)         {}
func (nopHooks) BrIf(wasabi.Location, wasabi.BranchTarget, bool) {}
func (nopHooks) BrTable(wasabi.Location, []wasabi.BranchTarget, wasabi.BranchTarget, uint32) {
}
func (nopHooks) Begin(wasabi.Location, wasabi.BlockKind)                  {}
func (nopHooks) End(wasabi.Location, wasabi.BlockKind, wasabi.Location)   {}
func (nopHooks) Const(wasabi.Location, wasabi.Value)                      {}
func (nopHooks) Drop(wasabi.Location, wasabi.Value)                       {}
func (nopHooks) Select(wasabi.Location, bool, wasabi.Value, wasabi.Value) {}
func (nopHooks) Unary(wasabi.Location, string, wasabi.Value, wasabi.Value) {
}
func (nopHooks) Binary(wasabi.Location, string, wasabi.Value, wasabi.Value, wasabi.Value) {
}
func (nopHooks) Local(wasabi.Location, string, uint32, wasabi.Value)  {}
func (nopHooks) Global(wasabi.Location, string, uint32, wasabi.Value) {}
func (nopHooks) Load(wasabi.Location, string, wasabi.MemArg, wasabi.Value) {
}
func (nopHooks) Store(wasabi.Location, string, wasabi.MemArg, wasabi.Value) {
}
func (nopHooks) MemorySize(wasabi.Location, uint32)         {}
func (nopHooks) MemoryGrow(wasabi.Location, uint32, uint32) {}
func (nopHooks) CallPre(wasabi.Location, int, []wasabi.Value, int64) {
}
func (nopHooks) CallPost(wasabi.Location, []wasabi.Value) {}
func (nopHooks) Return(wasabi.Location, []wasabi.Value)   {}
func (nopHooks) Start(wasabi.Location)                    {}

// nopStream consumes every event class and discards the records, so the
// stream configuration exercises the full record-encoding and batching path.
type nopStream struct{}

func (nopStream) StreamCaps() wasabi.Cap  { return wasabi.AllCaps }
func (nopStream) Events(_ []wasabi.Event) {}
