// Package diff is the differential-execution harness: it runs one module's
// invocations through an independent reference semantics (internal/refinterp,
// a tree-walking interpreter over the decoded AST) and through the full
// production config matrix, then asserts that every configuration computed
// exactly what the reference computed — results, trap codes, and a final
// digest over linear memory, globals, and host-observed output.
//
// This is the paper's faithfulness property (an instrumented module computes
// exactly what the original computes) turned into an executable oracle: the
// reference shares no code with the threaded interpreter, the trampoline
// dispatch, the static-elision planner, or the stream encoder, so agreement
// across the matrix is evidence rather than tautology.
//
// The matrix:
//
//	plain   — uninstrumented threaded interpreter
//	hooked  — all-hooks trampoline instrumentation, no-op callback analysis
//	static  — same, on a WithStaticAnalysis engine (hook elision active)
//	stream  — all-event record encoding into a served stream
//	fuel    — fuel-guarded execution with an ample budget
package diff

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"strings"

	"wasabi"
	"wasabi/internal/builder"
	"wasabi/internal/interp"
	"wasabi/internal/refinterp"
	"wasabi/internal/wasm"
)

// Invocation names one exported-function call of the module under test.
type Invocation struct {
	Entry string
	Args  []uint64
}

// Options configures one differential run.
type Options struct {
	// Invocations are applied in order to a single instance per config, so
	// state (globals, memory) carries across them identically everywhere.
	Invocations []Invocation

	// PrintF64 links an env.print_f64 host import on every side and folds
	// the printed values into the final digest (the PolyBench kernels use
	// printed intermediates as their faithfulness oracle).
	PrintF64 bool

	// Configs restricts the matrix to the named configs. Nil means all.
	Configs []string
}

// AllConfigs lists the production configurations in matrix order.
func AllConfigs() []string { return []string{"plain", "hooked", "static", "stream", "fuel"} }

// ampleFuel is the fuel budget for the fuel-guarded config: far beyond any
// corpus module's needs, so the guard instructions execute but never fire.
const ampleFuel = 1 << 40

// outcome is what one invocation produced under one configuration.
type outcome struct {
	results []uint64
	trap    string // trap code ("" when the call returned)
	err     string // non-trap error text ("" otherwise)
}

// runResult is everything one configuration produced for the module.
type runResult struct {
	instErr  string // instantiation error ("" on success)
	outcomes []outcome
	digest   [sha256.Size]byte
}

// Divergence records one disagreement between a configuration and the
// reference.
type Divergence struct {
	Config     string
	Invocation int // index into Options.Invocations; -1 for module-level
	Field      string
	Want, Got  string
}

func (d Divergence) String() string {
	where := "module"
	if d.Invocation >= 0 {
		where = fmt.Sprintf("invocation %d", d.Invocation)
	}
	return fmt.Sprintf("%s: %s %s: reference %s, got %s", d.Config, where, d.Field, d.Want, d.Got)
}

// ConfigVerdict is one configuration's comparison against the reference.
type ConfigVerdict struct {
	Name        string
	Divergences []Divergence
}

// OK reports whether the configuration agreed with the reference everywhere.
func (v ConfigVerdict) OK() bool { return len(v.Divergences) == 0 }

// Report is the outcome of a differential run across the matrix.
type Report struct {
	Configs []ConfigVerdict
}

// OK reports whether every configuration agreed with the reference.
func (r *Report) OK() bool {
	for _, v := range r.Configs {
		if !v.OK() {
			return false
		}
	}
	return true
}

// Divergences flattens every configuration's divergences.
func (r *Report) Divergences() []Divergence {
	var out []Divergence
	for _, v := range r.Configs {
		out = append(out, v.Divergences...)
	}
	return out
}

// String renders one per-config verdict line per configuration.
func (r *Report) String() string {
	var b strings.Builder
	for _, v := range r.Configs {
		if v.OK() {
			fmt.Fprintf(&b, "%-7s ok\n", v.Name)
			continue
		}
		fmt.Fprintf(&b, "%-7s DIVERGED\n", v.Name)
		for _, d := range v.Divergences {
			fmt.Fprintf(&b, "        %s\n", d)
		}
	}
	return b.String()
}

// Run executes the module's invocations under the reference and under each
// selected configuration, comparing results, traps, and final digests. It
// returns an error only when the reference itself cannot run the module —
// in that case there is nothing to arbitrate against.
func Run(m *wasm.Module, opts Options) (*Report, error) {
	ref, err := runReference(m, opts)
	if err != nil {
		return nil, err
	}
	configs := opts.Configs
	if configs == nil {
		configs = AllConfigs()
	}
	rep := &Report{}
	for _, name := range configs {
		got, err := runConfig(name, m, opts)
		if err != nil {
			return nil, err
		}
		rep.Configs = append(rep.Configs, ConfigVerdict{
			Name:        name,
			Divergences: compare(name, ref, got),
		})
	}
	return rep, nil
}

// runReference executes the module under the oracle.
func runReference(m *wasm.Module, opts Options) (runResult, error) {
	var printed []float64
	var imports refinterp.Imports
	if opts.PrintF64 {
		imports = refinterp.Imports{
			"env": {
				"print_f64": &refinterp.HostFunc{
					Type: builder.Sig(builder.V(wasm.F64), nil),
					Fn: func(args []refinterp.Value) ([]refinterp.Value, error) {
						printed = append(printed, math.Float64frombits(args[0]))
						return nil, nil
					},
				},
			},
		}
	}
	inst, err := refinterp.Instantiate(m, imports)
	if err != nil {
		return runResult{}, fmt.Errorf("diff: reference instantiate: %w", err)
	}
	var res runResult
	for _, inv := range opts.Invocations {
		results, err := inst.Invoke(inv.Entry, inv.Args...)
		res.outcomes = append(res.outcomes, classify(results, err))
	}
	globals := make([]uint64, len(inst.Globals))
	copy(globals, inst.Globals)
	res.digest = digest(inst.Mem, globals, printed)
	return res, nil
}

// runConfig executes the module under one production configuration. A
// non-nil error means the harness itself failed (bad config name), not that
// the configuration diverged: instantiation errors are part of the result.
func runConfig(name string, m *wasm.Module, opts Options) (runResult, error) {
	var printed []float64
	var imports interp.Imports
	if opts.PrintF64 {
		imports = interp.Imports{
			"env": {
				"print_f64": &interp.HostFunc{
					Type: builder.Sig(builder.V(wasm.F64), nil),
					Fn: func(_ *interp.Instance, args []interp.Value) ([]interp.Value, error) {
						printed = append(printed, interp.AsF64(args[0]))
						return nil, nil
					},
				},
			},
		}
	}

	var inst *interp.Instance
	var cleanup func()
	switch name {
	case "plain":
		i, err := interp.Instantiate(m, imports)
		if err != nil {
			return runResult{instErr: err.Error()}, nil
		}
		inst = i
	case "hooked", "static", "fuel":
		var engOpts []wasabi.EngineOption
		switch name {
		case "static":
			engOpts = append(engOpts, wasabi.WithStaticAnalysis())
		case "fuel":
			engOpts = append(engOpts, wasabi.WithFuel(ampleFuel))
		}
		sess, i, err := newHookedInstance(m, imports, &nopHooks{}, engOpts...)
		if err != nil {
			return runResult{instErr: err.Error()}, nil
		}
		inst = i
		cleanup = func() { sess.Close() }
	case "stream":
		// Stream-only analyses require the stream to be opened before the
		// first Instantiate, so this config cannot share newHookedInstance.
		eng, err := wasabi.NewEngine()
		if err != nil {
			return runResult{}, err
		}
		ca, err := eng.Instrument(m, wasabi.AllCaps)
		if err != nil {
			return runResult{instErr: err.Error()}, nil
		}
		sess, err := ca.NewSession(&nopStream{})
		if err != nil {
			return runResult{instErr: err.Error()}, nil
		}
		stream, err := sess.Stream()
		if err != nil {
			sess.Close()
			return runResult{instErr: err.Error()}, nil
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			stream.Serve(&nopStream{})
		}()
		i, err := sess.Instantiate("", imports)
		if err != nil {
			stream.Close()
			<-done
			sess.Close()
			return runResult{instErr: err.Error()}, nil
		}
		inst = i
		cleanup = func() {
			stream.Close()
			<-done
			sess.Close()
		}
	default:
		return runResult{}, fmt.Errorf("diff: unknown config %q", name)
	}
	if cleanup != nil {
		defer cleanup()
	}

	var res runResult
	for _, inv := range opts.Invocations {
		results, err := inst.Invoke(inv.Entry, inv.Args...)
		res.outcomes = append(res.outcomes, classify(results, err))
	}
	var mem []byte
	if inst.Memory != nil {
		mem = inst.Memory.Data
	}
	globals := make([]uint64, len(inst.Globals))
	for i, g := range inst.Globals {
		globals[i] = g.Val
	}
	res.digest = digest(mem, globals, printed)
	return res, nil
}

// newHookedInstance instruments m for all hooks on a fresh engine, opens a
// session with the given analysis, and instantiates anonymously.
func newHookedInstance(m *wasm.Module, imports interp.Imports, a any, engOpts ...wasabi.EngineOption) (*wasabi.Session, *interp.Instance, error) {
	eng, err := wasabi.NewEngine(engOpts...)
	if err != nil {
		return nil, nil, err
	}
	ca, err := eng.Instrument(m, wasabi.AllCaps)
	if err != nil {
		return nil, nil, err
	}
	sess, err := ca.NewSession(a)
	if err != nil {
		return nil, nil, err
	}
	inst, err := sess.Instantiate("", imports)
	if err != nil {
		sess.Close()
		return nil, nil, err
	}
	return sess, inst, nil
}

// classify folds an invocation's (results, error) into an outcome. Trap
// codes are compared as the spec-wording strings both interpreters share.
func classify(results []uint64, err error) outcome {
	if err == nil {
		return outcome{results: results}
	}
	var rt *refinterp.Trap
	if errors.As(err, &rt) {
		return outcome{trap: rt.Code}
	}
	var it *interp.Trap
	if errors.As(err, &it) {
		return outcome{trap: it.Code}
	}
	return outcome{err: err.Error()}
}

// digest hashes the final machine state: linear memory, then every global
// as 8 little-endian bytes, then every host-printed f64 as its IEEE bits.
func digest(mem []byte, globals []uint64, printed []float64) [sha256.Size]byte {
	h := sha256.New()
	h.Write(mem)
	var b [8]byte
	for _, g := range globals {
		putLE64(b[:], g)
		h.Write(b[:])
	}
	for _, p := range printed {
		putLE64(b[:], math.Float64bits(p))
		h.Write(b[:])
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

func putLE64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// compare diffs one configuration's run against the reference's.
func compare(config string, ref, got runResult) []Divergence {
	var out []Divergence
	if ref.instErr != got.instErr {
		return []Divergence{{
			Config: config, Invocation: -1, Field: "instantiate",
			Want: quoteOrNone(ref.instErr), Got: quoteOrNone(got.instErr),
		}}
	}
	for i := range ref.outcomes {
		r, g := ref.outcomes[i], got.outcomes[i]
		switch {
		case r.trap != g.trap:
			out = append(out, Divergence{
				Config: config, Invocation: i, Field: "trap",
				Want: quoteOrNone(r.trap), Got: quoteOrNone(g.trap),
			})
		case r.err != g.err:
			out = append(out, Divergence{
				Config: config, Invocation: i, Field: "error",
				Want: quoteOrNone(r.err), Got: quoteOrNone(g.err),
			})
		case !equalU64(r.results, g.results):
			out = append(out, Divergence{
				Config: config, Invocation: i, Field: "results",
				Want: fmt.Sprintf("%v", r.results), Got: fmt.Sprintf("%v", g.results),
			})
		}
	}
	if ref.digest != got.digest {
		out = append(out, Divergence{
			Config: config, Invocation: -1, Field: "memory/globals digest",
			Want: hex.EncodeToString(ref.digest[:8]), Got: hex.EncodeToString(got.digest[:8]),
		})
	}
	return out
}

func quoteOrNone(s string) string {
	if s == "" {
		return "<none>"
	}
	return fmt.Sprintf("%q", s)
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
