package wasabi

import (
	"fmt"

	"wasabi/internal/core"
	"wasabi/internal/interp"
	wruntime "wasabi/internal/runtime"
	"wasabi/internal/wasm"
)

// Session binds one analysis value to a CompiledAnalysis and owns the
// instances it instantiates. Hook events from every instance of the session
// dispatch to the one analysis value, so a single analysis can observe a
// whole multi-instance workload. A Session (like the instances it creates)
// must be driven from one goroutine at a time; run concurrent workloads by
// giving each goroutine its own Session off the shared CompiledAnalysis.
type Session struct {
	compiled *CompiledAnalysis
	analysis any
	rt       *wruntime.Runtime
}

// Instantiate instantiates the instrumented module: the generated hook
// imports are merged with the program's own imports, unresolved imports fall
// back to the engine's named instances (so modules can import each other's
// exports), and — when name is non-empty — the new instance is registered
// under name for later instantiations to link against. Call it repeatedly
// for multiple instances of the same instrumented module.
func (s *Session) Instantiate(name string, programImports interp.Imports) (*interp.Instance, error) {
	if name == core.HookModule {
		return nil, fmt.Errorf("%w: instance name %q is the generated hook import namespace", ErrHookModuleCollision, name)
	}
	if _, clash := programImports[core.HookModule]; clash {
		return nil, fmt.Errorf("%w: program imports provide module %q, which the instrumented module resolves its generated hooks from", ErrHookModuleCollision, core.HookModule)
	}
	merged := make(interp.Imports, len(programImports)+1)
	for mod, fields := range programImports {
		merged[mod] = fields
	}
	for mod, fields := range s.rt.Imports() {
		merged[mod] = fields
	}
	inst, err := interp.InstantiateIn(s.compiled.reg, name, s.compiled.module, merged)
	if err != nil {
		return nil, err
	}
	s.rt.BindInstance(inst)
	return inst, nil
}

// Analysis returns the analysis value the session dispatches to.
func (s *Session) Analysis() any { return s.analysis }

// Compiled returns the CompiledAnalysis the session was created from.
func (s *Session) Compiled() *CompiledAnalysis { return s.compiled }

// Module returns the instrumented module (shared and read-only; see
// CompiledAnalysis.Module).
func (s *Session) Module() *wasm.Module { return s.compiled.module }

// Metadata returns the instrumentation metadata (shared and read-only).
func (s *Session) Metadata() *core.Metadata { return s.compiled.meta }

// Info returns the static module information analyses receive.
func (s *Session) Info() *ModuleInfo { return &s.compiled.meta.Info }

// EncodedModule returns the instrumented module in the binary format.
func (s *Session) EncodedModule() ([]byte, error) { return s.compiled.Encode() }
